// Benchmarks regenerating each of the paper's tables and figures at a
// reduced, benchmark-friendly budget. Every BenchmarkFigure*/BenchmarkTable*
// reports the same series the paper plots as b.ReportMetric values, so
//
//	go test -bench=Figure6 -benchtime=1x
//
// prints one normalized-execution-time point per (model, variant) — the
// Figure 6 "Avg" bars. cmd/experiments produces the full-resolution
// versions; EXPERIMENTS.md records the paper-vs-measured comparison.
package repro

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/sdo"
	"repro/internal/workload"
)

// benchWorkloads is the representative subset used by the figure
// benchmarks: the DRAM-heavy, the L2-table, and the stride-pattern
// kernels (the three behavioural classes of the suite).
var benchWorkloads = []string{"mcf_r", "xalancbmk_r", "x264_r"}

const (
	benchWarmup  = 20_000
	benchMeasure = 20_000
)

// benchRun simulates one configuration of one workload.
func benchRun(b *testing.B, name string, v core.Variant, m pipeline.AttackModel) core.Result {
	b.Helper()
	wl, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	prog, init := wl.Build()
	machine := core.NewMachine(core.Config{
		Variant: v, Model: m, WarmupInstrs: benchWarmup, MaxInstrs: benchMeasure,
	}, prog, init)
	res, err := machine.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// baselines caches Unsafe cycle counts per (workload, model) across
// benchmark invocations.
var (
	baselineMu sync.Mutex
	baselines  = map[string]uint64{}
)

func baselineCycles(b *testing.B, name string, m pipeline.AttackModel) uint64 {
	b.Helper()
	key := fmt.Sprintf("%s/%v", name, m)
	baselineMu.Lock()
	cached, ok := baselines[key]
	baselineMu.Unlock()
	if ok {
		return cached
	}
	c := benchRun(b, name, core.Unsafe, m).Cycles
	baselineMu.Lock()
	baselines[key] = c
	baselineMu.Unlock()
	return c
}

// avgNormTime runs the benchmark subset and averages normalized times.
func avgNormTime(b *testing.B, v core.Variant, m pipeline.AttackModel) (norm float64, agg core.Result) {
	b.Helper()
	var sum float64
	for _, name := range benchWorkloads {
		r := benchRun(b, name, v, m)
		sum += float64(r.Cycles) / float64(baselineCycles(b, name, m))
		agg.Stats.Committed += r.Committed
		agg.Stats.OblIssued += r.OblIssued
		agg.Stats.PredPrecise += r.PredPrecise
		agg.Stats.PredImprecise += r.PredImprecise
		agg.Stats.PredInaccurate += r.PredInaccurate
		agg.Stats.ValidationStall += r.ValidationStall
		agg.Stats.ImprecisionCycles += r.ImprecisionCycles
		for i, n := range r.Squashes {
			agg.Stats.Squashes[i] += n
		}
	}
	return sum / float64(len(benchWorkloads)), agg
}

// BenchmarkFigure6 reports the Figure 6 series: execution time normalized
// to Unsafe, per design variant, for both attack models.
func BenchmarkFigure6(b *testing.B) {
	for _, m := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		for _, v := range core.Variants() {
			b.Run(fmt.Sprintf("%v/%v", m, v), func(b *testing.B) {
				var norm float64
				for i := 0; i < b.N; i++ {
					norm, _ = avgNormTime(b, v, m)
				}
				b.ReportMetric(norm, "norm-time")
			})
		}
	}
}

// BenchmarkFigure7 reports the Figure 7 components for each SDO variant:
// measured imprecision and validation-stall cycles plus squash counts,
// normalized per 1000 committed instructions.
func BenchmarkFigure7(b *testing.B) {
	for _, m := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		for _, v := range core.SDOVariants() {
			b.Run(fmt.Sprintf("%v/%v", m, v), func(b *testing.B) {
				var agg core.Result
				for i := 0; i < b.N; i++ {
					_, agg = avgNormTime(b, v, m)
				}
				k := float64(agg.Committed) / 1000
				b.ReportMetric(float64(agg.Squashes[2])/k, "obl-fail-squash/kinstr") // inaccurate prediction
				b.ReportMetric(float64(agg.ImprecisionCycles)/k, "imprecise-cyc/kinstr")
				b.ReportMetric(float64(agg.ValidationStall)/k, "val-stall-cyc/kinstr")
				b.ReportMetric(float64(agg.Squashes[5])/k, "tlb-squash/kinstr")
			})
		}
	}
}

// BenchmarkFigure8 reports the Figure 8 scatter: squashes per 1000
// instructions against normalized execution time, per variant.
func BenchmarkFigure8(b *testing.B) {
	variants := append([]core.Variant{core.STTLd}, core.SDOVariants()...)
	for _, m := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		for _, v := range variants {
			b.Run(fmt.Sprintf("%v/%v", m, v), func(b *testing.B) {
				var norm float64
				var agg core.Result
				for i := 0; i < b.N; i++ {
					norm, agg = avgNormTime(b, v, m)
				}
				var squashes uint64
				for _, n := range agg.Squashes {
					squashes += n
				}
				b.ReportMetric(float64(squashes)/(float64(agg.Committed)/1000), "squashes/kinstr")
				b.ReportMetric(norm, "norm-time")
			})
		}
	}
}

// BenchmarkTable3 reports predictor precision and accuracy (Table III).
func BenchmarkTable3(b *testing.B) {
	for _, m := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		for _, v := range []core.Variant{core.StaticL1, core.StaticL2, core.StaticL3, core.Hybrid} {
			b.Run(fmt.Sprintf("%v/%v", m, v), func(b *testing.B) {
				var agg core.Result
				for i := 0; i < b.N; i++ {
					_, agg = avgNormTime(b, v, m)
				}
				total := agg.PredPrecise + agg.PredImprecise + agg.PredInaccurate
				if total > 0 {
					b.ReportMetric(float64(agg.PredPrecise)/float64(total)*100, "precision-%")
					b.ReportMetric(float64(agg.PredPrecise+agg.PredImprecise)/float64(total)*100, "accuracy-%")
				}
			})
		}
	}
}

// BenchmarkPentest reproduces the §VIII-A penetration test: the Spectre V1
// attack against Unsafe (leaks) and Hybrid SDO (blocked). The metric is
// bytes recovered by the attacker.
func BenchmarkPentest(b *testing.B) {
	secret := []byte{0x5e, 0xc4}
	for _, v := range []core.Variant{core.Unsafe, core.STTLd, core.Hybrid} {
		b.Run(v.String(), func(b *testing.B) {
			var recovered int
			for i := 0; i < b.N; i++ {
				out, err := attack.RunSpectreV1(v, pipeline.Spectre, secret)
				if err != nil {
					b.Fatal(err)
				}
				recovered = 0
				for k := range secret {
					if out.Recovered[k] == secret[k] {
						recovered++
					}
				}
			}
			b.ReportMetric(float64(recovered), "bytes-leaked")
		})
	}
}

// --- Microbenchmarks of the substrates ---

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per second) on the insecure core.
func BenchmarkSimulatorThroughput(b *testing.B) {
	wl, err := workload.ByName("deepsjeng_r")
	if err != nil {
		b.Fatal(err)
	}
	var instrs uint64
	for i := 0; i < b.N; i++ {
		prog, init := wl.Build()
		m := core.NewMachine(core.Config{Variant: core.Unsafe, MaxInstrs: 50_000}, prog, init)
		r, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.Committed
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkOblLoad measures the data-oblivious lookup path in isolation.
func BenchmarkOblLoad(b *testing.B) {
	for _, lvl := range []mem.Level{mem.L1, mem.L2, mem.L3} {
		b.Run(lvl.String(), func(b *testing.B) {
			h := mem.NewHierarchy(mem.DefaultConfig())
			h.Load(0, 0x1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.OblLoad(uint64(i)*50, 0x1000, lvl)
			}
		})
	}
}

// BenchmarkSchemeDispatch measures the cost of the pluggable Scheme
// interface per simulated instruction, one sub-benchmark per registered
// scheme on the same kernel and budget. Interleaved methodology: run the
// sub-benchmarks together in one invocation (they alternate within the
// same process, so frequency scaling and cache state average out) and
// compare Unsafe's sim-instrs/s against BenchmarkSimulatorThroughput's
// trajectory record from before the refactor — the interface dispatch
// replaced an inlined Protection switch, and any measurable overhead
// would show up as an Unsafe regression.
func BenchmarkSchemeDispatch(b *testing.B) {
	wl, err := workload.ByName("deepsjeng_r")
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range core.Registered() {
		b.Run(v.String(), func(b *testing.B) {
			var instrs uint64
			for i := 0; i < b.N; i++ {
				prog, init := wl.Build()
				m := core.NewMachine(core.Config{Variant: v, MaxInstrs: 50_000}, prog, init)
				r, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				instrs += r.Committed
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
		})
	}
}

// BenchmarkNormalLoad measures the filling load path (L1 hits).
func BenchmarkNormalLoad(b *testing.B) {
	h := mem.NewHierarchy(mem.DefaultConfig())
	h.Load(0, 0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(uint64(i)*10, 0x1000)
	}
}

// BenchmarkHybridPredictor measures predict+update of the §V-D hybrid.
func BenchmarkHybridPredictor(b *testing.B) {
	p := sdo.NewHybrid(512)
	levels := []mem.Level{mem.L1, mem.L1, mem.L1, mem.L2, mem.L1, mem.L3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(i % 64 * 8)
		p.Predict(pc, 0)
		p.Update(pc, levels[i%len(levels)])
	}
}

// BenchmarkGoldenExecutor measures the functional ISA model.
func BenchmarkGoldenExecutor(b *testing.B) {
	prog := isa.NewBuilder().
		MovI(isa.R1, 0).
		MovI(isa.R2, 10_000).
		MovI(isa.R3, 0).
		Label("loop").
		Add(isa.R3, isa.R3, isa.R1).
		AddI(isa.R1, isa.R1, 1).
		Blt(isa.R1, isa.R2, "loop").
		Halt().
		MustBuild()
	memimg := isa.NewMemory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arch.Exec(prog, memimg, nil, math.MaxUint64); err != nil {
			b.Fatal(err)
		}
	}
}
