// Package coherence implements the directory-based MESI protocol from the
// paper's baseline memory system (§VI-B1, Table I). A Directory tracks, per
// cache line, which cores hold the line and in what state; loads and stores
// consult it before accessing their private hierarchies, and remote copies
// are downgraded or invalidated as the protocol requires.
//
// Invalidations delivered to a core are what make the paper's §V-C1
// machinery observable: an Obl-Ld that read a line *not* brought into the
// L1 misses the invalidation, which is why loads must be validated when
// they become safe.
package coherence

import (
	"fmt"

	"repro/internal/mem"
)

// State is a MESI line state as seen by the directory.
type State uint8

const (
	// Invalid: no core holds the line.
	Invalid State = iota
	// Shared: one or more cores hold read-only copies.
	Shared
	// Exclusive: exactly one core holds a clean, writable copy.
	Exclusive
	// Modified: exactly one core holds a dirty copy.
	Modified
)

// String returns the MESI letter.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

type dirEntry struct {
	state   State
	owner   int    // valid when state is Exclusive or Modified
	sharers uint64 // bitmask of cores with copies (Shared state)
}

// SnoopLatency is the extra delay, in cycles, charged to an access that has
// to downgrade or invalidate a remote core's copy (one mesh round trip).
const SnoopLatency = 20

// System is a multi-core memory system: one shared L3/DRAM, one private
// hierarchy per core, and the directory keeping them coherent.
type System struct {
	shared *mem.Shared
	cores  []*Core
	dir    map[uint64]*dirEntry

	// Stats.
	Invalidations uint64
	Downgrades    uint64
}

// Core is one core's coherent port into the system. It exposes the same
// access methods as mem.Hierarchy, adding directory actions; the pipeline
// uses it wherever a single-core run would use the Hierarchy directly.
type Core struct {
	sys *System
	id  int
	h   *mem.Hierarchy
}

// NewSystem builds a system with numCores cores sharing one L3/DRAM.
func NewSystem(cfg mem.Config, numCores int) *System {
	s := &System{
		shared: mem.NewShared(cfg),
		dir:    make(map[uint64]*dirEntry),
	}
	for i := 0; i < numCores; i++ {
		s.cores = append(s.cores, &Core{sys: s, id: i, h: s.shared.AttachCore()})
	}
	return s
}

// Core returns core i's port.
func (s *System) Core(i int) *Core { return s.cores[i] }

// NumCores returns the number of attached cores.
func (s *System) NumCores() int { return len(s.cores) }

// LineState returns the directory state of the line containing addr.
func (s *System) LineState(addr uint64) State {
	e := s.dir[mem.LineAddr(addr)]
	if e == nil {
		return Invalid
	}
	return e.state
}

// Sharers returns the bitmask of cores holding the line (for tests).
func (s *System) Sharers(addr uint64) uint64 {
	e := s.dir[mem.LineAddr(addr)]
	if e == nil {
		return 0
	}
	if e.state == Exclusive || e.state == Modified {
		return 1 << uint(e.owner)
	}
	return e.sharers
}

func (s *System) entry(la uint64) *dirEntry {
	e := s.dir[la]
	if e == nil {
		e = &dirEntry{state: Invalid}
		s.dir[la] = e
	}
	return e
}

// CheckInvariants verifies the MESI single-writer/multi-reader property
// for every tracked line; it returns the first violation found.
func (s *System) CheckInvariants() error {
	for la, e := range s.dir {
		switch e.state {
		case Exclusive, Modified:
			if e.owner < 0 || e.owner >= len(s.cores) {
				return fmt.Errorf("coherence: line %#x in %v with bad owner %d", la, e.state, e.owner)
			}
			if e.sharers != 0 {
				return fmt.Errorf("coherence: line %#x in %v with sharers %#x", la, e.state, e.sharers)
			}
		case Shared:
			if e.sharers == 0 {
				return fmt.Errorf("coherence: line %#x Shared with no sharers", la)
			}
		}
	}
	return nil
}

// Hierarchy returns the core's private hierarchy (for stats and the
// OnInvalidate hook).
func (c *Core) Hierarchy() *mem.Hierarchy { return c.h }

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// acquireRead obtains read permission for the line: a GetS. Returns extra
// snoop latency.
func (c *Core) acquireRead(la uint64) uint64 {
	e := c.sys.entry(la)
	var extra uint64
	switch e.state {
	case Invalid:
		e.state = Exclusive
		e.owner = c.id
	case Exclusive, Modified:
		if e.owner != c.id {
			// Downgrade the owner to Shared (implicit writeback for M).
			c.sys.Downgrades++
			extra = SnoopLatency
			e.sharers = 1<<uint(e.owner) | 1<<uint(c.id)
			e.state = Shared
			e.owner = -1
		}
	case Shared:
		e.sharers |= 1 << uint(c.id)
	}
	return extra
}

// acquireWrite obtains write permission: a GetM. All remote copies are
// invalidated (delivering the invalidation to each remote hierarchy, which
// notifies its core's load queue). Returns extra snoop latency.
func (c *Core) acquireWrite(la uint64) uint64 {
	e := c.sys.entry(la)
	var extra uint64
	inval := func(core int) {
		if core == c.id {
			return
		}
		c.sys.Invalidations++
		extra = SnoopLatency
		c.sys.cores[core].h.Invalidate(la)
	}
	switch e.state {
	case Exclusive, Modified:
		if e.owner != c.id {
			inval(e.owner)
		}
	case Shared:
		for core := range c.sys.cores {
			if e.sharers&(1<<uint(core)) != 0 {
				inval(core)
			}
		}
	}
	e.state = Modified
	e.owner = c.id
	e.sharers = 0
	return extra
}

// Load performs a coherent, filling load.
func (c *Core) Load(now uint64, addr uint64) mem.AccessResult {
	extra := c.acquireRead(mem.LineAddr(addr))
	r := c.h.Load(now, addr)
	r.Done += extra
	return r
}

// Store performs a coherent committed store (write-allocate).
func (c *Core) Store(now uint64, addr uint64) mem.AccessResult {
	extra := c.acquireWrite(mem.LineAddr(addr))
	r := c.h.Store(now, addr)
	r.Done += extra
	return r
}

// OblLoad performs the data-oblivious lookup. It deliberately does NOT
// consult or update the directory: the Obl-Ld takes no coherence
// permissions and leaves no trace — which is exactly why a later
// invalidation of the line can be missed and a validation is required
// (§V-C1).
func (c *Core) OblLoad(now uint64, addr uint64, pred mem.Level) mem.OblResult {
	return c.h.OblLoad(now, addr, pred)
}

// SetSpecMode enables the private hierarchy's speculative-visibility
// shadow (mem/spec.go).
func (c *Core) SetSpecMode(m mem.SpecMode) { c.h.SetSpecMode(m) }

// SpecTranslate delegates to the private hierarchy's speculative
// translation path.
func (c *Core) SpecTranslate(now uint64, addr uint64, seq uint64) (uint64, bool) {
	return c.h.SpecTranslate(now, addr, seq)
}

// SpecLoad performs a speculative shadow-filling load. Like OblLoad it
// deliberately takes NO directory action: a speculative fill must not be
// observable by other cores (no downgrade of a remote owner, no sharer
// entry a remote flush+reload probe could time). Coherence permissions
// are acquired when the load commits (CommitSpec).
func (c *Core) SpecLoad(now uint64, addr uint64, seq uint64) mem.AccessResult {
	return c.h.SpecLoad(now, addr, seq)
}

// CommitSpec promotes a retiring speculative fill: the line becomes a
// coherent committed copy, so read permission is acquired now.
func (c *Core) CommitSpec(addr uint64, seq uint64) {
	c.acquireRead(mem.LineAddr(addr))
	c.h.CommitSpec(addr, seq)
}

// SquashSpec discards this core's speculative fills from seq onward.
func (c *Core) SquashSpec(from uint64) { c.h.SquashSpec(from) }

// Probe, Flush, Translate, TLBProbe, FetchAccess delegate to the private
// hierarchy.
func (c *Core) Probe(addr uint64) mem.Level { return c.h.Probe(addr) }

// Flush evicts the line from this core's hierarchy and releases its
// directory permissions.
func (c *Core) Flush(addr uint64) {
	la := mem.LineAddr(addr)
	c.h.Flush(addr)
	if e := c.sys.dir[la]; e != nil {
		switch e.state {
		case Exclusive, Modified:
			if e.owner == c.id {
				e.state = Invalid
				e.owner = -1
			}
		case Shared:
			e.sharers &^= 1 << uint(c.id)
			if e.sharers == 0 {
				e.state = Invalid
			}
		}
	}
}

// Translate delegates to the private TLB's normal path.
func (c *Core) Translate(now uint64, addr uint64) (uint64, bool) {
	return c.h.Translate(now, addr)
}

// TLBProbe delegates to the private TLB's tag-only path.
func (c *Core) TLBProbe(addr uint64) bool { return c.h.TLBProbe(addr) }

// FetchAccess delegates to the instruction-fetch path (instruction lines
// are read-only here; no directory action).
func (c *Core) FetchAccess(now uint64, addr uint64) mem.AccessResult {
	return c.h.FetchAccess(now, addr)
}
