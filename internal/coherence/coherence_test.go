package coherence

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

func newSys(cores int) *System { return NewSystem(mem.DefaultConfig(), cores) }

func TestColdLoadIsExclusive(t *testing.T) {
	s := newSys(2)
	s.Core(0).Load(0, 0x1000)
	if st := s.LineState(0x1000); st != Exclusive {
		t.Fatalf("state = %v, want E", st)
	}
	if s.Sharers(0x1000) != 1 {
		t.Fatalf("sharers = %#x", s.Sharers(0x1000))
	}
}

func TestStoreIsModified(t *testing.T) {
	s := newSys(2)
	s.Core(0).Store(0, 0x1000)
	if st := s.LineState(0x1000); st != Modified {
		t.Fatalf("state = %v, want M", st)
	}
}

func TestRemoteLoadDowngradesModified(t *testing.T) {
	s := newSys(2)
	s.Core(0).Store(0, 0x1000)
	r := s.Core(1).Load(100, 0x1000)
	if st := s.LineState(0x1000); st != Shared {
		t.Fatalf("state = %v, want S", st)
	}
	if s.Sharers(0x1000) != 0b11 {
		t.Fatalf("sharers = %#b, want 0b11", s.Sharers(0x1000))
	}
	if s.Downgrades != 1 {
		t.Fatalf("downgrades = %d", s.Downgrades)
	}
	// Snoop latency was charged: the line is in the shared L3 (filled by
	// core 0's store walk), so core 1 pays L3 latency (40) plus the
	// owner-downgrade snoop (20).
	if want := uint64(100 + 40 + SnoopLatency); r.Done != want {
		t.Fatalf("M-downgrade load done=%d, want %d", r.Done, want)
	}
}

func TestRemoteStoreInvalidatesSharers(t *testing.T) {
	s := newSys(4)
	for i := 0; i < 3; i++ {
		s.Core(i).Load(uint64(i*100), 0x2000)
	}
	var invalidated []int
	for i := 0; i < 3; i++ {
		i := i
		s.Core(i).Hierarchy().OnInvalidate = func(la uint64) {
			if la == 0x2000 {
				invalidated = append(invalidated, i)
			}
		}
	}
	s.Core(3).Store(500, 0x2000)
	if st := s.LineState(0x2000); st != Modified {
		t.Fatalf("state = %v, want M", st)
	}
	if s.Sharers(0x2000) != 0b1000 {
		t.Fatalf("sharers = %#b", s.Sharers(0x2000))
	}
	if len(invalidated) != 3 {
		t.Fatalf("invalidated cores = %v, want all three sharers", invalidated)
	}
	// The sharers' private caches no longer hold the line.
	for i := 0; i < 3; i++ {
		if lvl := s.Core(i).Hierarchy().Probe(0x2000); lvl == mem.L1 || lvl == mem.L2 {
			t.Fatalf("core %d still holds the line at %v", i, lvl)
		}
	}
}

func TestWriteAfterWriteTransfersOwnership(t *testing.T) {
	s := newSys(2)
	s.Core(0).Store(0, 0x3000)
	s.Core(1).Store(100, 0x3000)
	if s.Sharers(0x3000) != 0b10 {
		t.Fatalf("sharers = %#b, want core1 only", s.Sharers(0x3000))
	}
	if s.Invalidations != 1 {
		t.Fatalf("invalidations = %d", s.Invalidations)
	}
}

func TestOwnUpgradeNoInvalidation(t *testing.T) {
	s := newSys(2)
	s.Core(0).Load(0, 0x4000)  // E
	s.Core(0).Store(1, 0x4000) // silent upgrade E->M
	if s.Invalidations != 0 {
		t.Fatalf("invalidations = %d, want 0", s.Invalidations)
	}
	if s.LineState(0x4000) != Modified {
		t.Fatal("should be M")
	}
}

func TestOblLoadTakesNoPermissions(t *testing.T) {
	s := newSys(2)
	s.Core(0).OblLoad(0, 0x5000, mem.L3)
	if s.LineState(0x5000) != Invalid {
		t.Fatal("Obl-Ld must not touch the directory")
	}
	// Core 1's store therefore does not deliver an invalidation to core 0:
	// the missed-invalidation scenario of §V-C1.
	notified := false
	s.Core(0).Hierarchy().OnInvalidate = func(uint64) { notified = true }
	s.Core(1).Store(10, 0x5000)
	if notified {
		t.Fatal("core 0 must miss the invalidation (it holds no copy)")
	}
}

func TestValidationClosesTheWindow(t *testing.T) {
	// After a validation (a normal load), the core holds the line and DOES
	// receive subsequent invalidations — the paper's fix.
	s := newSys(2)
	s.Core(0).OblLoad(0, 0x6000, mem.L3)
	s.Core(0).Load(50, 0x6000) // validation brings the line into L1
	notified := false
	s.Core(0).Hierarchy().OnInvalidate = func(la uint64) { notified = la == 0x6000 }
	s.Core(1).Store(100, 0x6000)
	if !notified {
		t.Fatal("after validation the invalidation must be delivered")
	}
}

func TestFlushReleasesPermissions(t *testing.T) {
	s := newSys(2)
	s.Core(0).Store(0, 0x7000)
	s.Core(0).Flush(0x7000)
	if s.LineState(0x7000) != Invalid {
		t.Fatalf("state after flush = %v", s.LineState(0x7000))
	}
	s.Core(0).Load(0, 0x8000)
	s.Core(1).Load(1, 0x8000)
	s.Core(0).Flush(0x8000)
	if s.Sharers(0x8000) != 0b10 {
		t.Fatalf("sharers after flush = %#b", s.Sharers(0x8000))
	}
}

func TestInvariantsUnderRandomTraffic(t *testing.T) {
	// Property: after any interleaving of loads/stores/flushes from 4 cores
	// over a small line pool, the single-writer invariant holds.
	s := newSys(4)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		core := s.Core(rng.Intn(4))
		addr := uint64(rng.Intn(16)) * 64
		switch rng.Intn(3) {
		case 0:
			core.Load(uint64(i), addr)
		case 1:
			core.Store(uint64(i), addr)
		case 2:
			core.Flush(addr)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
}
