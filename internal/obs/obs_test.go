package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.On(ClassSquash) {
		t.Fatal("nil recorder must report every class off")
	}
	r.Emit(Event{Class: ClassSquash}) // must not panic
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMaskFiltering(t *testing.T) {
	ring := NewRingSink(8)
	r := NewRecorder(ClassSquash|ClassSDO, ring)
	if r.On(ClassCache) {
		t.Fatal("cache class should be masked out")
	}
	if !r.On(ClassSquash) || !r.On(ClassSDO) {
		t.Fatal("enabled classes should be on")
	}
	r.Emit(Event{Class: ClassSquash, Kind: "squash"})
	r.Emit(Event{Class: ClassCache, Kind: "cache-miss"}) // filtered even on direct Emit
	r.Emit(Event{Class: ClassSDO, Kind: "obl-issue"})
	got := ring.Events()
	if len(got) != 2 || got[0].Kind != "squash" || got[1].Kind != "obl-issue" {
		t.Fatalf("ring = %+v, want squash + obl-issue", got)
	}
}

func TestParseClasses(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Class
	}{
		{"all", ClassAll},
		{"", ClassAll},
		{"squash", ClassSquash},
		{"squash,sdo, cache", ClassSquash | ClassSDO | ClassCache},
		{"RENAME", ClassRename},
	} {
		got, err := ParseClasses(tc.in)
		if err != nil {
			t.Fatalf("ParseClasses(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParseClasses(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseClasses("nonsense"); err == nil {
		t.Fatal("expected error for unknown class")
	}
	// Round trip through String for every single class.
	for bit := Class(1); bit < 1<<numClasses; bit <<= 1 {
		back, err := ParseClasses(bit.String())
		if err != nil || back != bit {
			t.Fatalf("round trip of %v failed: %v, %v", bit, back, err)
		}
	}
}

func TestTextSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	s := NewTextSink(&buf)
	s.Emit(Event{Cycle: 42, Class: ClassRename, Kind: "rename", Detail: "seq=7 pc=3 add r1,r2,r3"})
	s.Close()
	want := "[      42] rename         seq=7 pc=3 add r1,r2,r3\n"
	if buf.String() != want {
		t.Fatalf("text line = %q, want %q", buf.String(), want)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{Cycle: 1, Class: ClassSquash, Kind: "squash", Seq: 9, Detail: "cause=branch"})
	s.Emit(Event{Cycle: 2, Class: ClassCache, Kind: "cache-miss", Addr: 0x1000, Level: "L2"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if first["class"] != "squash" || first["kind"] != "squash" || first["seq"] != float64(9) {
		t.Fatalf("line 1 = %v", first)
	}
}

func TestChromeSinkValidJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.Emit(Event{Cycle: 10, Class: ClassIssue, Kind: "issue-load", Seq: 3, Addr: 0x40, Dur: 12})
	s.Emit(Event{Cycle: 15, Class: ClassSquash, Kind: "squash", Detail: "cause=obl-fail"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ph"] != "X" || doc.TraceEvents[0]["dur"] != float64(12) {
		t.Fatalf("span event wrong: %v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1]["ph"] != "i" {
		t.Fatalf("instant event wrong: %v", doc.TraceEvents[1])
	}
	if doc.TraceEvents[0]["tid"] == doc.TraceEvents[1]["tid"] {
		t.Fatal("distinct classes should land on distinct tracks")
	}
}

func TestChromeSinkEmptyTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty chrome trace invalid: %v", err)
	}
	if err := s.Close(); err != nil { // double close must be safe
		t.Fatal(err)
	}
}

func TestRingSinkWraps(t *testing.T) {
	s := NewRingSink(3)
	for i := 1; i <= 5; i++ {
		s.Emit(Event{Cycle: uint64(i), Class: ClassCommit, Kind: "commit"})
	}
	got := s.Events()
	if len(got) != 3 || got[0].Cycle != 3 || got[2].Cycle != 5 {
		t.Fatalf("ring = %+v, want cycles 3..5", got)
	}
	var buf bytes.Buffer
	s.WriteText(&buf)
	if n := strings.Count(buf.String(), "\n"); n != 3 {
		t.Fatalf("postmortem has %d lines, want 3", n)
	}
}
