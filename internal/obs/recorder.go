package obs

// Recorder fans events out to sinks, filtered by a class mask. Components
// hold a possibly-nil *Recorder; On is a nil-receiver method, so an
// uninstrumented run pays exactly one nil check per would-be event and
// never constructs the Event value.
//
// Usage at an emission site:
//
//	if c.obs.On(obs.ClassSquash) {
//		c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassSquash, ...})
//	}
type Recorder struct {
	mask  Class
	sinks []Sink
}

// NewRecorder builds a recorder emitting the masked classes to sinks.
func NewRecorder(mask Class, sinks ...Sink) *Recorder {
	return &Recorder{mask: mask, sinks: sinks}
}

// On reports whether events of class c should be built and emitted. Safe
// (and false) on a nil recorder — this is the zero-cost-when-disabled
// guard every instrumented site uses.
func (r *Recorder) On(c Class) bool { return r != nil && r.mask&c != 0 }

// Emit delivers the event to every sink. Callers guard with On, so a
// masked-out or nil recorder never reaches here on the hot path; Emit
// still re-checks to be safe against direct calls.
func (r *Recorder) Emit(e Event) {
	if r == nil || r.mask&e.Class == 0 {
		return
	}
	for _, s := range r.sinks {
		s.Emit(e)
	}
}

// Close closes every sink (flushing buffers, writing trailers) and
// returns the first error.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	var first error
	for _, s := range r.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
