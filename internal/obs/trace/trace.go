// Package trace is the sweep-lifecycle span model: one trace per sweep
// job, one span tree per cell, with a span for every phase a cell passes
// through on its way to a result — queue wait, cache lookup, checkpoint
// restore, sample-plan build, detailed or sampled simulation (including
// per-attempt retry spans and per-representative interval spans), result
// reconstruction, and speculative pre-execution stitched in after the
// fact.
//
// The design rule mirrors obs.Class's masking discipline one level up:
// every producer holds a possibly-nil *Tracer / *JobTrace / *CellTrace /
// *Span, and every method is nil-receiver safe. With tracing off the
// tracer is nil, StartJob returns nil, and every downstream call is a
// single nil check with no allocation — results are bit-identical to an
// untraced build. Spans propagate through the harness via
// context.Context (NewContext/FromContext), so the retry and sampling
// layers need no tracing-specific plumbing in their signatures.
package trace

import (
	"context"
	"sync"
	"time"
)

// Phase names. Direct children of a cell's root span are the phases the
// Attribution breakdown accounts; the nested names appear under
// PhaseSimulate.
const (
	// RootName is the root span of a demand cell (starts at enqueue,
	// finishes at delivery — the cell's reported wall clock).
	RootName = "cell"
	// PhaseQueue is the submit-to-start wait on the worker pool.
	PhaseQueue = "queue-wait"
	// PhaseCache is the result-cache lookup (attr hit=true|false).
	PhaseCache = "cache-lookup"
	// PhasePeer is the cache-peering fabric lookup on a local miss
	// (attrs hit=true|false, peer=<url> on a hit).
	PhasePeer = "peer-lookup"
	// PhaseAwait covers a cell that joined an identical in-flight run and
	// waited for its result instead of executing.
	PhaseAwait = "await-inflight"
	// PhasePlan is the sample-plan tier (build, disk load, or join).
	PhasePlan = "plan"
	// PhaseCheckpoint is the warmup-checkpoint tier (capture/restore).
	PhaseCheckpoint = "checkpoint"
	// PhaseSimulate wraps the harness call; its children are the attempt,
	// backoff, interval and reconstruct spans below.
	PhaseSimulate = "simulate"
	// PhaseAttempt is one RunCell attempt (attr n, outcome).
	PhaseAttempt = "attempt"
	// PhaseBackoff is the pre-retry exponential-backoff sleep.
	PhaseBackoff = "retry-backoff"
	// PhaseInterval is one sampled-mode representative interval.
	PhaseInterval = "interval"
	// PhaseReconstruct is the sampled-mode weighted reconstruction.
	PhaseReconstruct = "reconstruct"
	// PhaseSpec is a speculative pre-execution: the root of a spec cell's
	// standalone trace, and — once the demand request arrives — the name
	// of the stitched copy under the demand cell's root. Its duration was
	// spent before the demand cell's wall clock and is accounted
	// separately (Attribution.SpecUS), never summed into the phases.
	PhaseSpec = "spec-preexec"
	// PhaseProxy is a cluster request forwarded to the job's owner node
	// (attrs owner=<node>, status=<code>); lives in the cluster layer's
	// own trace, not a cell trace.
	PhaseProxy = "proxy"
	// PhaseStealClaim covers work stealing: on the owner, the wait for a
	// leased (stolen) cell's result (attrs thief, outcome); on the thief,
	// the claim + execution of a stolen cell.
	PhaseStealClaim = "steal-claim"
	// PhaseCkptPeer is an artifact-peering lookup: a checkpoint or sample
	// plan fetched from a cluster peer instead of re-captured (attrs
	// kind=ckpt|plan, hit=true|false, peer=<url> on a hit).
	PhaseCkptPeer = "ckpt-peer-lookup"
)

// Tracer owns the retained job traces (a bounded LRU by submission
// order) and the unclaimed speculative cell traces awaiting a demand
// hit. A nil *Tracer is the tracing-off state: every method no-ops.
type Tracer struct {
	maxJobs int

	mu        sync.Mutex
	jobs      map[string]*JobTrace
	order     []string
	spec      map[string]*CellTrace // by cache key, unclaimed pre-executions
	specOrder []string
}

// DefaultMaxJobs bounds retained job traces when the caller passes 0.
const DefaultMaxJobs = 64

// maxSpecTraces bounds retained unclaimed speculative traces (FIFO).
const maxSpecTraces = 1024

// New returns a tracer retaining up to maxJobs job traces (0: default).
func New(maxJobs int) *Tracer {
	if maxJobs <= 0 {
		maxJobs = DefaultMaxJobs
	}
	return &Tracer{
		maxJobs: maxJobs,
		jobs:    make(map[string]*JobTrace),
		spec:    make(map[string]*CellTrace),
	}
}

// StartJob opens a trace for one sweep job, evicting the oldest retained
// trace past the bound. Nil tracer: returns nil.
func (t *Tracer) StartJob(id string) *JobTrace {
	if t == nil {
		return nil
	}
	jt := &JobTrace{id: id, epoch: time.Now()}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.jobs[id]; !ok {
		t.order = append(t.order, id)
	}
	t.jobs[id] = jt
	for len(t.order) > t.maxJobs {
		delete(t.jobs, t.order[0])
		t.order = t.order[1:]
	}
	return jt
}

// Job returns the retained trace for a job ID (nil when evicted, never
// started, or the tracer is nil).
func (t *Tracer) Job(id string) *JobTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobs[id]
}

// Jobs reports how many job traces are retained.
func (t *Tracer) Jobs() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}

// StartSpecCell opens a standalone trace for one speculative
// pre-execution. Its root span is named PhaseSpec so a later Stitch can
// graft the whole tree under the demand cell's root unchanged.
func (t *Tracer) StartSpecCell(cell string) *CellTrace {
	if t == nil {
		return nil
	}
	now := time.Now()
	ct := &CellTrace{cell: cell, epoch: now}
	ct.root = &Span{ct: ct, name: PhaseSpec, start: now}
	return ct
}

// TrackSpec retains a completed, unclaimed speculative trace under its
// cache key so the demand cell that later hits the cached entry can
// stitch it (mirrors specexec.Tracker.Add).
func (t *Tracer) TrackSpec(key string, ct *CellTrace) {
	if t == nil || ct == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.spec[key]; !ok {
		t.specOrder = append(t.specOrder, key)
	}
	t.spec[key] = ct
	for len(t.specOrder) > maxSpecTraces {
		delete(t.spec, t.specOrder[0])
		t.specOrder = t.specOrder[1:]
	}
}

// ClaimSpec removes and returns the speculative trace for a cache key
// (nil when none is tracked — mirrors specexec.Tracker.Claim).
func (t *Tracer) ClaimSpec(key string) *CellTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ct := t.spec[key]
	delete(t.spec, key)
	return ct
}

// JobTrace is one sweep job's trace: an epoch (span offsets in the
// serialized form are relative to it) and a cell trace per scheduled
// cell.
type JobTrace struct {
	id    string
	epoch time.Time

	mu    sync.Mutex
	cells []*CellTrace
}

// StartCell opens a cell trace whose root span starts at start (the
// enqueue time, so the root's duration is the cell's reported
// wall-clock). Nil JobTrace: returns nil.
func (jt *JobTrace) StartCell(cell string, start time.Time) *CellTrace {
	if jt == nil {
		return nil
	}
	ct := &CellTrace{cell: cell, epoch: jt.epoch}
	ct.root = &Span{ct: ct, name: RootName, start: start}
	jt.mu.Lock()
	jt.cells = append(jt.cells, ct)
	jt.mu.Unlock()
	return ct
}

// CellTrace is one cell's span tree. One mutex guards the whole tree —
// span churn is a handful of operations per cell phase, never per
// simulated cycle, so contention is irrelevant and the invariants stay
// trivial.
type CellTrace struct {
	cell  string
	epoch time.Time

	mu   sync.Mutex
	root *Span
}

// Cell returns the cell's "workload/variant/model" name.
func (ct *CellTrace) Cell() string {
	if ct == nil {
		return ""
	}
	return ct.cell
}

// Root returns the root span (nil on a nil trace).
func (ct *CellTrace) Root() *Span {
	if ct == nil {
		return nil
	}
	return ct.root
}

// Finish closes the root span now.
func (ct *CellTrace) Finish() { ct.Root().Finish() }

// Stitch grafts a deep copy of a speculative pre-execution's span tree
// under this cell's root, marking it stitched. The copy is taken under
// pre's lock and attached under ct's, so a spec trace still shared with
// the tracker can be stitched into several snapshots safely.
func (ct *CellTrace) Stitch(pre *CellTrace) {
	if ct == nil || pre == nil {
		return
	}
	pre.mu.Lock()
	clone := cloneSpan(pre.root, ct)
	pre.mu.Unlock()
	if clone == nil {
		return
	}
	clone.attrs = append(clone.attrs, Attr{"stitched", "true"})
	ct.mu.Lock()
	ct.root.children = append(ct.root.children, clone)
	ct.mu.Unlock()
}

// cloneSpan deep-copies a span tree, rehoming it under owner's lock.
func cloneSpan(s *Span, owner *CellTrace) *Span {
	if s == nil {
		return nil
	}
	c := &Span{ct: owner, name: s.name, start: s.start, end: s.end,
		attrs: append([]Attr(nil), s.attrs...)}
	for _, ch := range s.children {
		c.children = append(c.children, cloneSpan(ch, owner))
	}
	return c
}

// Attr is one key/value annotation on a span.
type Attr struct{ Key, Value string }

// Span is one timed phase. All mutation goes through the owning
// CellTrace's mutex; a nil *Span no-ops every method, which is what
// makes the tracing-off path allocation-free.
type Span struct {
	ct       *CellTrace
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Child opens a sub-span starting now.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.ChildAt(name, time.Now())
}

// ChildAt opens a sub-span with an explicit start (retroactive spans
// like queue-wait, whose start predates the tracing call site).
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{ct: s.ct, name: name, start: start}
	s.ct.mu.Lock()
	s.children = append(s.children, c)
	s.ct.mu.Unlock()
	return c
}

// Finish closes the span now. Closing twice keeps the first end.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.FinishAt(time.Now())
}

// FinishAt closes the span at an explicit time.
func (s *Span) FinishAt(t time.Time) {
	if s == nil {
		return
	}
	s.ct.mu.Lock()
	if s.end.IsZero() {
		s.end = t
	}
	s.ct.mu.Unlock()
}

// Set annotates the span.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.ct.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.ct.mu.Unlock()
}

// ctxKey keys the span carried by a context.
type ctxKey struct{}

// NewContext attaches a span to ctx. A nil span returns ctx unchanged,
// so the tracing-off path allocates nothing.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span attached by NewContext (nil when none).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
