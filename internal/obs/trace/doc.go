package trace

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/obs"
)

// Node is the serialized form of one span: offsets are microseconds
// relative to the job's epoch (speculative pre-execution spans stitched
// from before the job started can therefore be negative). An unfinished
// span reports its duration up to the snapshot instant.
type Node struct {
	Name     string            `json:"name"`
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Node           `json:"children,omitempty"`
}

// CellDoc is one cell's serialized trace: the span tree plus the phase
// attribution derived from it.
type CellDoc struct {
	Cell        string       `json:"cell"`
	Spans       *Node        `json:"spans"`
	Attribution *Attribution `json:"attribution"`
}

// Doc is the GET /sweeps/{id}/trace document.
type Doc struct {
	ID    string    `json:"id"`
	Epoch time.Time `json:"epoch"`
	Cells []CellDoc `json:"cells"`
}

// Doc snapshots the job trace. Safe to call while cells are still
// running; open spans report duration-so-far.
func (jt *JobTrace) Doc() *Doc {
	if jt == nil {
		return nil
	}
	jt.mu.Lock()
	cells := append([]*CellTrace(nil), jt.cells...)
	jt.mu.Unlock()
	d := &Doc{ID: jt.id, Epoch: jt.epoch, Cells: make([]CellDoc, 0, len(cells))}
	for _, ct := range cells {
		d.Cells = append(d.Cells, CellDoc{Cell: ct.cell, Spans: ct.Node(), Attribution: ct.Attribution()})
	}
	return d
}

// Node snapshots the cell's span tree (nil on a nil trace).
func (ct *CellTrace) Node() *Node {
	if ct == nil {
		return nil
	}
	now := time.Now()
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return nodeOf(ct.root, ct.epoch, now)
}

func nodeOf(s *Span, epoch, now time.Time) *Node {
	if s == nil {
		return nil
	}
	n := &Node{Name: s.name, StartUS: s.start.Sub(epoch).Microseconds(), DurUS: spanDur(s, now).Microseconds()}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		n.Children = append(n.Children, nodeOf(c, epoch, now))
	}
	return n
}

// spanDur is a span's duration, using now for spans still open.
func spanDur(s *Span, now time.Time) time.Duration {
	end := s.end
	if end.IsZero() {
		end = now
	}
	return end.Sub(s.start)
}

// Attribution is the per-cell latency breakdown, in microseconds: where
// the cell's reported wall clock (root-span duration) went, phase by
// phase. By construction
//
//	WallUS = QueueUS + CacheUS + PeerUS + AwaitUS + PlanUS +
//	         CheckpointUS + SimulateUS + OtherUS
//
// exactly — OtherUS is defined as the remainder (scheduling gaps between
// phases), clamped at zero against timer skew. RetryUS, ReconstructUS
// and Attempts describe the inside of SimulateUS; SpecUS is the stitched
// speculative pre-execution, which ran before the demand wall clock
// started and is therefore accounted beside it, never inside it.
type Attribution struct {
	WallUS        int64 `json:"wall_us"`
	QueueUS       int64 `json:"queue_us,omitempty"`
	CacheUS       int64 `json:"cache_us,omitempty"`
	PeerUS        int64 `json:"peer_us,omitempty"`
	AwaitUS       int64 `json:"await_us,omitempty"`
	PlanUS        int64 `json:"plan_us,omitempty"`
	CheckpointUS  int64 `json:"checkpoint_us,omitempty"`
	SimulateUS    int64 `json:"simulate_us,omitempty"`
	OtherUS       int64 `json:"other_us"`
	RetryUS       int64 `json:"retry_backoff_us,omitempty"`
	ReconstructUS int64 `json:"reconstruct_us,omitempty"`
	Attempts      int   `json:"attempts,omitempty"`
	SpecUS        int64 `json:"spec_preexec_us,omitempty"`
}

// Attribution derives the breakdown from the cell's span tree (nil on a
// nil trace).
func (ct *CellTrace) Attribution() *Attribution {
	if ct == nil {
		return nil
	}
	now := time.Now()
	ct.mu.Lock()
	defer ct.mu.Unlock()
	a := &Attribution{WallUS: spanDur(ct.root, now).Microseconds()}
	var known int64
	for _, c := range ct.root.children {
		d := spanDur(c, now).Microseconds()
		switch c.name {
		case PhaseQueue:
			a.QueueUS += d
		case PhaseCache:
			a.CacheUS += d
		case PhasePeer:
			a.PeerUS += d
		case PhaseAwait:
			a.AwaitUS += d
		case PhasePlan:
			a.PlanUS += d
		case PhaseCheckpoint:
			a.CheckpointUS += d
		case PhaseSimulate:
			a.SimulateUS += d
		case PhaseSpec:
			a.SpecUS += d
			continue // pre-demand compute: beside the wall clock, not in it
		default:
			continue // unknown phases land in Other
		}
		known += d
	}
	a.OtherUS = a.WallUS - known
	if a.OtherUS < 0 {
		a.OtherUS = 0
	}
	// Attempt/backoff/reconstruct live nested under simulate (and under
	// interval spans in sampled mode); count them wherever they are, but
	// never inside a stitched spec-preexec subtree — those attempts were
	// the speculation's, already summarized by SpecUS.
	var walk func(s *Span)
	walk = func(s *Span) {
		for _, c := range s.children {
			if c.name == PhaseSpec {
				continue
			}
			switch c.name {
			case PhaseAttempt:
				a.Attempts++
			case PhaseBackoff:
				a.RetryUS += spanDur(c, now).Microseconds()
			case PhaseReconstruct:
				a.ReconstructUS += spanDur(c, now).Microseconds()
			}
			walk(c)
		}
	}
	walk(ct.root)
	return a
}

// WriteChrome renders the trace document in the Chrome trace-event
// format by feeding the span tree through the existing obs.ChromeSink
// (one microsecond of span time per "cycle"). Offsets are shifted so the
// earliest span — possibly a stitched pre-execution from before the job
// epoch — lands at ts 0, since the sink's timestamps are unsigned.
func (d *Doc) WriteChrome(w io.Writer) error {
	sink := obs.NewChromeSink(w)
	var min int64
	first := true
	var scan func(n *Node)
	scan = func(n *Node) {
		if n == nil {
			return
		}
		if first || n.StartUS < min {
			min, first = n.StartUS, false
		}
		for _, c := range n.Children {
			scan(c)
		}
	}
	for _, c := range d.Cells {
		scan(c.Spans)
	}
	var emit func(cell string, n *Node)
	emit = func(cell string, n *Node) {
		if n == nil {
			return
		}
		detail := cell
		if len(n.Attrs) > 0 {
			var parts []string
			for k, v := range n.Attrs {
				parts = append(parts, k+"="+v)
			}
			detail += " " + strings.Join(parts, " ")
		}
		dur := n.DurUS
		if dur < 0 {
			dur = 0
		}
		sink.Emit(obs.Event{
			Class:  obs.ClassTrace,
			Kind:   n.Name,
			Cycle:  uint64(n.StartUS - min),
			Dur:    uint64(dur),
			Detail: detail,
		})
		for _, c := range n.Children {
			emit(cell, c)
		}
	}
	for _, c := range d.Cells {
		emit(c.Cell, c.Spans)
	}
	return sink.Close()
}

// Summary renders a one-line human breakdown of an attribution, used by
// the slow-cell warning and sdoctl trace.
func (a *Attribution) Summary() string {
	if a == nil {
		return ""
	}
	ms := func(us int64) string { return fmt.Sprintf("%.1fms", float64(us)/1e3) }
	parts := []string{"wall " + ms(a.WallUS)}
	add := func(name string, us int64) {
		if us > 0 {
			parts = append(parts, name+" "+ms(us))
		}
	}
	add("queue", a.QueueUS)
	add("cache", a.CacheUS)
	add("peer", a.PeerUS)
	add("await", a.AwaitUS)
	add("plan", a.PlanUS)
	add("ckpt", a.CheckpointUS)
	add("sim", a.SimulateUS)
	add("other", a.OtherUS)
	add("retry-backoff", a.RetryUS)
	add("reconstruct", a.ReconstructUS)
	if a.Attempts > 1 {
		parts = append(parts, fmt.Sprintf("attempts %d", a.Attempts))
	}
	add("spec-preexec", a.SpecUS)
	return strings.Join(parts, " | ")
}
