package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// TestNilSafety drives the whole API through nil receivers — the
// tracing-off configuration — and checks nothing panics and nothing is
// allocated into a trace.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	jt := tr.StartJob("sweep-1")
	if jt != nil {
		t.Fatalf("nil tracer StartJob = %v, want nil", jt)
	}
	if got := tr.Job("sweep-1"); got != nil {
		t.Fatalf("nil tracer Job = %v, want nil", got)
	}
	if n := tr.Jobs(); n != 0 {
		t.Fatalf("nil tracer Jobs = %d, want 0", n)
	}
	ct := jt.StartCell("wl/v/m", time.Now())
	if ct != nil {
		t.Fatalf("nil job StartCell = %v, want nil", ct)
	}
	sp := ct.Root()
	if sp != nil {
		t.Fatalf("nil cell Root = %v, want nil", sp)
	}
	// Every span operation must no-op.
	child := sp.Child("x")
	child.Set("k", "v")
	child.Finish()
	sp.ChildAt("y", time.Now()).FinishAt(time.Now())
	ct.Finish()
	ct.Stitch(nil)
	if a := ct.Attribution(); a != nil {
		t.Fatalf("nil cell Attribution = %v, want nil", a)
	}
	if n := ct.Node(); n != nil {
		t.Fatalf("nil cell Node = %v, want nil", n)
	}
	if d := jt.Doc(); d != nil {
		t.Fatalf("nil job Doc = %v, want nil", d)
	}
	if s := ct.Cell(); s != "" {
		t.Fatalf("nil cell Cell = %q, want empty", s)
	}
	tr.TrackSpec("k", nil)
	if got := tr.ClaimSpec("k"); got != nil {
		t.Fatalf("nil tracer ClaimSpec = %v, want nil", got)
	}
	if got := tr.StartSpecCell("wl/v/m"); got != nil {
		t.Fatalf("nil tracer StartSpecCell = %v, want nil", got)
	}
	if s := (&Attribution{}).Summary(); s == "" {
		t.Fatal("zero attribution Summary is empty")
	}
	var nilAtt *Attribution
	if s := nilAtt.Summary(); s != "" {
		t.Fatalf("nil attribution Summary = %q, want empty", s)
	}
}

// TestContextPropagation checks NewContext/FromContext round-trip a span
// and leave the context untouched for a nil span.
func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if got := NewContext(ctx, nil); got != ctx {
		t.Fatal("NewContext(nil span) must return ctx unchanged")
	}
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
	tr := New(0)
	ct := tr.StartJob("sweep-1").StartCell("wl/v/m", time.Now())
	sp := ct.Root()
	if got := FromContext(NewContext(ctx, sp)); got != sp {
		t.Fatalf("FromContext = %v, want %v", got, sp)
	}
}

// TestSpanTree builds a representative cell tree and checks the
// serialized shape and timing.
func TestSpanTree(t *testing.T) {
	tr := New(0)
	jt := tr.StartJob("sweep-1")
	start := time.Now().Add(-50 * time.Millisecond)
	ct := jt.StartCell("wl/v/m", start)
	q := ct.Root().ChildAt(PhaseQueue, start)
	q.FinishAt(start.Add(10 * time.Millisecond))
	sim := ct.Root().Child(PhaseSimulate)
	a1 := sim.Child(PhaseAttempt)
	a1.Set("n", "1")
	a1.Set("outcome", "panic")
	a1.Finish()
	sim.Child(PhaseBackoff).Finish()
	a2 := sim.Child(PhaseAttempt)
	a2.Set("n", "2")
	a2.Set("outcome", "ok")
	a2.Finish()
	sim.Finish()
	ct.Finish()

	n := ct.Node()
	if n.Name != RootName {
		t.Fatalf("root name = %q, want %q", n.Name, RootName)
	}
	if len(n.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(n.Children))
	}
	if n.Children[0].Name != PhaseQueue || n.Children[0].DurUS < 9_000 {
		t.Fatalf("queue child = %+v, want ~10ms %s", n.Children[0], PhaseQueue)
	}
	simN := n.Children[1]
	if simN.Name != PhaseSimulate || len(simN.Children) != 3 {
		t.Fatalf("simulate child = %+v, want 3 children", simN)
	}
	if simN.Children[0].Attrs["outcome"] != "panic" || simN.Children[2].Attrs["outcome"] != "ok" {
		t.Fatalf("attempt attrs wrong: %+v", simN.Children)
	}
	if n.DurUS < 49_000 {
		t.Fatalf("root duration = %dus, want >= ~50ms", n.DurUS)
	}

	doc := jt.Doc()
	if doc.ID != "sweep-1" || len(doc.Cells) != 1 || doc.Cells[0].Cell != "wl/v/m" {
		t.Fatalf("doc = %+v", doc)
	}
}

// TestAttributionSums checks the exact-sum invariant: wall equals the
// sum of the known phases plus Other, with retry/reconstruct/attempt
// counters derived from the nested spans.
func TestAttributionSums(t *testing.T) {
	tr := New(0)
	base := time.Now().Add(-time.Second)
	ct := tr.StartJob("sweep-1").StartCell("wl/v/m", base)
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	span := func(parent *Span, name string, from, to int) *Span {
		s := parent.ChildAt(name, at(from))
		s.FinishAt(at(to))
		return s
	}
	span(ct.Root(), PhaseQueue, 0, 100)
	span(ct.Root(), PhaseCache, 100, 110)
	sim := ct.Root().ChildAt(PhaseSimulate, at(120))
	span(sim, PhaseAttempt, 120, 300)
	span(sim, PhaseBackoff, 300, 350)
	span(sim, PhaseAttempt, 350, 700)
	span(sim, PhaseReconstruct, 700, 720)
	sim.FinishAt(at(720))
	ct.Root().FinishAt(at(1000))

	a := ct.Attribution()
	if a.WallUS != 1_000_000 {
		t.Fatalf("wall = %d, want 1000000", a.WallUS)
	}
	sum := a.QueueUS + a.CacheUS + a.AwaitUS + a.PlanUS + a.CheckpointUS + a.SimulateUS + a.OtherUS
	if sum != a.WallUS {
		t.Fatalf("phase sum %d != wall %d (%+v)", sum, a.WallUS, a)
	}
	if a.QueueUS != 100_000 || a.CacheUS != 10_000 || a.SimulateUS != 600_000 {
		t.Fatalf("phases wrong: %+v", a)
	}
	if a.OtherUS != 290_000 { // 10ms gap cache->simulate + 280ms tail
		t.Fatalf("other = %d, want 290000", a.OtherUS)
	}
	if a.Attempts != 2 || a.RetryUS != 50_000 || a.ReconstructUS != 20_000 {
		t.Fatalf("nested counters wrong: %+v", a)
	}
}

// TestStitch checks a speculative pre-execution trace is deep-copied
// under the demand root, excluded from the phase sum, and counted as
// SpecUS — and that mutating the original afterwards does not reach the
// stitched copy.
func TestStitch(t *testing.T) {
	tr := New(0)
	preStart := time.Now().Add(-2 * time.Second)
	pre := tr.StartSpecCell("wl/v/m")
	pre.root.start = preStart
	inner := pre.Root().ChildAt(PhaseAttempt, preStart)
	inner.FinishAt(preStart.Add(800 * time.Millisecond))
	pre.Root().FinishAt(preStart.Add(time.Second))
	tr.TrackSpec("key", pre)

	base := time.Now().Add(-100 * time.Millisecond)
	ct := tr.StartJob("sweep-1").StartCell("wl/v/m", base)
	got := tr.ClaimSpec("key")
	if got != pre {
		t.Fatalf("ClaimSpec = %v, want the tracked trace", got)
	}
	if again := tr.ClaimSpec("key"); again != nil {
		t.Fatalf("second ClaimSpec = %v, want nil", again)
	}
	ct.Stitch(got)
	ct.Root().FinishAt(base.Add(100 * time.Millisecond))

	n := ct.Node()
	if len(n.Children) != 1 || n.Children[0].Name != PhaseSpec {
		t.Fatalf("stitched tree = %+v", n)
	}
	st := n.Children[0]
	if st.Attrs["stitched"] != "true" {
		t.Fatalf("stitched span attrs = %v", st.Attrs)
	}
	if len(st.Children) != 1 || st.Children[0].Name != PhaseAttempt {
		t.Fatalf("stitched children = %+v", st.Children)
	}
	// The copy is independent of the original.
	inner.Set("late", "mutation")
	if n2 := ct.Node(); n2.Children[0].Children[0].Attrs["late"] != "" {
		t.Fatal("stitched copy shares state with the original spec trace")
	}

	a := ct.Attribution()
	if a.SpecUS != 1_000_000 {
		t.Fatalf("spec = %d, want 1000000", a.SpecUS)
	}
	// Spec is beside the wall clock, not in it: the sum invariant holds
	// without it, and the attempt inside the spec subtree is not counted.
	sum := a.QueueUS + a.CacheUS + a.AwaitUS + a.PlanUS + a.CheckpointUS + a.SimulateUS + a.OtherUS
	if sum != a.WallUS || a.WallUS != 100_000 {
		t.Fatalf("sum %d wall %d: %+v", sum, a.WallUS, a)
	}
	if a.Attempts != 0 {
		t.Fatalf("attempts = %d, want 0 (spec subtree excluded)", a.Attempts)
	}
}

// TestJobLRU checks the tracer's retention bound.
func TestJobLRU(t *testing.T) {
	tr := New(2)
	tr.StartJob("a")
	tr.StartJob("b")
	tr.StartJob("c")
	if tr.Job("a") != nil {
		t.Fatal("oldest job not evicted")
	}
	if tr.Job("b") == nil || tr.Job("c") == nil {
		t.Fatal("recent jobs evicted")
	}
	if n := tr.Jobs(); n != 2 {
		t.Fatalf("Jobs = %d, want 2", n)
	}
}

// TestWriteChrome checks the Chrome export is valid JSON with one event
// per span and non-negative shifted timestamps.
func TestWriteChrome(t *testing.T) {
	tr := New(0)
	jt := tr.StartJob("sweep-1")
	base := time.Now()
	ct := jt.StartCell("wl/v/m", base)
	ct.Root().ChildAt(PhaseQueue, base.Add(-time.Second)).Finish() // pre-epoch start
	ct.Root().Child(PhaseSimulate).Finish()
	ct.Finish()

	var buf bytes.Buffer
	if err := jt.Doc().WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event ts = %v, want non-negative number", ev["ts"])
		}
	}
}

// TestConcurrentSpans hammers one cell trace from several goroutines
// (run with -race).
func TestConcurrentSpans(t *testing.T) {
	tr := New(0)
	ct := tr.StartJob("sweep-1").StartCell("wl/v/m", time.Now())
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				s := ct.Root().Child(fmt.Sprintf("g%d", g))
				s.Set("i", "x")
				s.Finish()
				ct.Node()
				ct.Attribution()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
