package obs

import "testing"

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q_test_seconds", "test", []float64{0.1, 1, 10})
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 90 fast samples, 9 medium, 1 slow.
	for i := 0; i < 90; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.5)
	}
	h.Observe(5)
	if got := h.Quantile(0.5); got != 0.1 {
		t.Fatalf("p50 = %v, want 0.1 (first bucket bound)", got)
	}
	if got := h.Quantile(0.95); got != 1 {
		t.Fatalf("p95 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	// Overflow samples are attributed 2x the last finite bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 20 {
		t.Fatalf("p100 with overflow = %v, want 20", got)
	}
	// Out-of-range q clamps rather than panicking.
	if got := h.Quantile(-1); got <= 0 {
		t.Fatalf("clamped q=-1 gave %v", got)
	}
}
