package obs

import (
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"
)

// Build is the process's build identity, read once from the Go build
// info embedded in the binary (runtime/debug.ReadBuildInfo). Fields the
// toolchain did not stamp (e.g. VCS data in a `go test` binary) are
// empty.
type Build struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo Build
)

// ReadBuild returns the process's build identity.
func ReadBuild() Build {
	buildOnce.Do(func() {
		buildInfo.GoVersion = runtime.Version()
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Path = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// memSampler caches one runtime.ReadMemStats per interval, so a scrape
// of several heap gauges pays for a single (stop-the-world) read.
type memSampler struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

const memSampleInterval = time.Second

func (m *memSampler) sample() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); now.Sub(m.at) >= memSampleInterval {
		runtime.ReadMemStats(&m.stat)
		m.at = now
	}
	return m.stat
}

// RegisterProcessMetrics adds process-level collectors to a registry:
// the sdo_build_info info gauge (version/commit labels from the embedded
// build info) plus goroutine, heap and GC gauges sampled at scrape time.
func RegisterProcessMetrics(r *Registry) {
	b := ReadBuild()
	r.NewInfo("sdo_build_info",
		"Build identity of the serving binary; the value is always 1.",
		[][2]string{
			{"go_version", b.GoVersion},
			{"path", b.Path},
			{"version", b.Version},
			{"revision", b.Revision},
			{"modified", strconv.FormatBool(b.Modified)},
		})
	r.NewGaugeFunc("sdo_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	mem := &memSampler{}
	r.NewGaugeFunc("sdo_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(mem.sample().HeapAlloc) })
	r.NewGaugeFunc("sdo_heap_sys_bytes", "Bytes of heap obtained from the OS.",
		func() float64 { return float64(mem.sample().HeapSys) })
	r.NewGaugeFunc("sdo_heap_objects", "Live heap objects.",
		func() float64 { return float64(mem.sample().HeapObjects) })
	r.NewCounterFunc("sdo_gc_runs_total", "Completed GC cycles.",
		func() float64 { return float64(mem.sample().NumGC) })
	r.NewCounterFunc("sdo_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(mem.sample().PauseTotalNs) / 1e9 })
}
