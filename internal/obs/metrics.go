package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is a minimal Prometheus-client substitute (stdlib only, per
// the repo's no-new-dependencies rule): counters, gauges, histograms and
// function-backed variants, collected by a Registry that writes the text
// exposition format (version 0.0.4).

// metric is anything the registry can expose.
type metric interface {
	name() string
	write(w io.Writer)
}

// Registry holds metrics and renders them. Registration happens at
// service construction; Write/ServeHTTP may run concurrently with metric
// updates (all metrics are internally synchronised).
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]bool)} }

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[m.name()] {
		panic("obs: duplicate metric " + m.name())
	}
	r.byName[m.name()] = true
	r.metrics = append(r.metrics, m)
	sort.Slice(r.metrics, func(i, j int) bool { return r.metrics[i].name() < r.metrics[j].name() })
}

// WriteText renders every metric in the Prometheus text format, sorted by
// name so the output is stable.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		m.write(w)
	}
}

// ServeHTTP implements the /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteText(w)
}

// header writes the HELP/TYPE preamble.
func header(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// formatValue renders floats the way Prometheus expects (integers bare).
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// --- Counter ---

// Counter is a monotonically increasing metric.
type Counter struct {
	nm, help string
	v        atomic.Uint64
}

// NewCounter registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{nm: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) name() string { return c.nm }
func (c *Counter) write(w io.Writer) {
	header(w, c.nm, "counter", c.help)
	fmt.Fprintf(w, "%s %d\n", c.nm, c.v.Load())
}

// --- Gauge ---

// Gauge is a settable value.
type Gauge struct {
	nm, help string
	bits     atomic.Uint64 // float64 bits
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{nm: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) name() string { return g.nm }
func (g *Gauge) write(w io.Writer) {
	header(w, g.nm, "gauge", g.help)
	fmt.Fprintf(w, "%s %s\n", g.nm, formatValue(g.Value()))
}

// --- Info metric ---

// infoMetric is the Prometheus "info" idiom: a gauge pinned at 1 whose
// labels carry build/version strings (sdo_build_info).
type infoMetric struct {
	nm, help string
	labels   [][2]string
}

// NewInfo registers a constant gauge of value 1 with the given label
// pairs (rendered in the order given; values are escaped).
func (r *Registry) NewInfo(name, help string, labels [][2]string) {
	r.register(&infoMetric{nm: name, help: help, labels: labels})
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func (m *infoMetric) name() string { return m.nm }
func (m *infoMetric) write(w io.Writer) {
	header(w, m.nm, "gauge", m.help)
	parts := make([]string, 0, len(m.labels))
	for _, l := range m.labels {
		parts = append(parts, fmt.Sprintf("%s=%q", l[0], escapeLabel(l[1])))
	}
	fmt.Fprintf(w, "%s{%s} 1\n", m.nm, strings.Join(parts, ","))
}

// --- Function-backed metrics ---

// funcMetric samples a callback at scrape time — the bridge for values
// that already live elsewhere (cache sizes, pool depths).
type funcMetric struct {
	nm, help, typ string
	fn            func() float64
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time. fn must be monotonic for the counter semantics to hold.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{nm: name, help: help, typ: "counter", fn: fn})
}

// NewGaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{nm: name, help: help, typ: "gauge", fn: fn})
}

func (f *funcMetric) name() string { return f.nm }
func (f *funcMetric) write(w io.Writer) {
	header(w, f.nm, f.typ, f.help)
	fmt.Fprintf(w, "%s %s\n", f.nm, formatValue(f.fn()))
}

// --- Histogram ---

// Histogram accumulates observations into cumulative buckets, with the
// standard _bucket/_sum/_count exposition.
type Histogram struct {
	nm, help string
	bounds   []float64
	mu       sync.Mutex
	counts   []uint64
	sum      float64
	count    uint64
}

// DefaultLatencyBuckets suits sub-second to multi-minute simulation
// timings, in seconds.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30, 120}
}

// NewHistogram registers a histogram with the given upper bounds
// (ascending; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{
		nm: name, help: help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile estimates the q-quantile (0..1) from the bucket counts: the
// upper bound of the first bucket whose cumulative count reaches
// q*count. Samples in the overflow (+Inf) bucket are attributed twice
// the last finite bound — a deliberate overestimate, since callers use
// quantiles to derive deadlines and an underestimate would kill healthy
// runs. With no observations (or no finite bounds) it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := q * float64(h.count)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		if float64(cum) >= need {
			return b
		}
	}
	return 2 * h.bounds[len(h.bounds)-1]
}

func (h *Histogram) name() string { return h.nm }
func (h *Histogram) write(w io.Writer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	header(w, h.nm, "histogram", h.help)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.nm, formatValue(b), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.nm, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", h.nm, h.count)
}
