// Package obs is the simulator's observability layer: a typed, zero-cost-
// when-disabled event bus with pluggable sinks (human text, JSONL, Chrome
// trace-event JSON, bounded ring buffer), plus small Prometheus-style
// metric helpers for the simulation service.
//
// Design rule: every emission site is guarded by Recorder.On, which is a
// nil-receiver method — with no recorder attached an instrumented hot path
// costs one nil check and no allocation. Event construction (including any
// fmt work for the Detail field) happens only inside the guard.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Class is a bitmask of event categories. Sinks receive only events whose
// class is enabled in the recorder's mask, so a trace can be narrowed to
// (say) squashes and SDO activity without paying for cache noise.
type Class uint32

const (
	// ClassRename covers rename/dispatch of instructions into the ROB.
	ClassRename Class = 1 << iota
	// ClassIssue covers instructions leaving the issue queue (loads,
	// stores, SDO FP operations).
	ClassIssue
	// ClassCommit covers in-order retirement.
	ClassCommit
	// ClassSquash covers pipeline squashes, with their cause.
	ClassSquash
	// ClassBranch covers branch resolutions (direction, mispredictions).
	ClassBranch
	// ClassCache covers cache hits/misses and MSHR merges per level.
	ClassCache
	// ClassDRAM covers DRAM row-buffer hits and conflicts.
	ClassDRAM
	// ClassTLB covers TLB misses on the normal translation path.
	ClassTLB
	// ClassSDO covers the Obl-Ld state machine: issue, validate, expose,
	// early-forward, drop and fail.
	ClassSDO
	// ClassFP covers SDO floating-point fast-path issue and failure.
	ClassFP
	// ClassFault covers fault-tolerance activity above the pipeline:
	// injected chaos faults, cell panics/timeouts/stalls, retries, cache
	// corruption quarantine, and persistence degradation.
	ClassFault
	// ClassSample covers SimPoint-style sampled simulation above the
	// pipeline: BBV profiling passes, clustering outcomes (sampling-plan
	// builds) and sampled-cell reconstruction.
	ClassSample
	// ClassSpec covers speculative sweep pre-execution above the pipeline:
	// prediction rounds, speculative cell starts/completions, demand hits
	// on pre-executed entries, cancellations and governor throttling.
	ClassSpec
	// ClassTrace covers sweep-lifecycle tracing above the pipeline: cell
	// phase spans rendered through the Chrome sink (internal/obs/trace)
	// and slow-cell straggler warnings.
	ClassTrace

	numClasses = 14
)

// ClassAll enables every event class.
const ClassAll Class = 1<<numClasses - 1

// classNames maps the canonical spelling of each class (used by
// ParseClasses and the JSONL/Chrome sinks).
var classNames = map[Class]string{
	ClassRename: "rename",
	ClassIssue:  "issue",
	ClassCommit: "commit",
	ClassSquash: "squash",
	ClassBranch: "branch",
	ClassCache:  "cache",
	ClassDRAM:   "dram",
	ClassTLB:    "tlb",
	ClassSDO:    "sdo",
	ClassFP:     "fp",
	ClassFault:  "fault",
	ClassSample: "sample",
	ClassSpec:   "spec",
	ClassTrace:  "trace",
}

// ClassNames returns the canonical class names in stable order.
func ClassNames() []string {
	out := make([]string, 0, len(classNames))
	for _, n := range classNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String renders the mask as a comma-separated class list.
func (c Class) String() string {
	if c == ClassAll {
		return "all"
	}
	var parts []string
	for bit := Class(1); bit < 1<<numClasses; bit <<= 1 {
		if c&bit != 0 {
			parts = append(parts, classNames[bit])
		}
	}
	return strings.Join(parts, ",")
}

// ParseClasses parses a comma-separated class list ("squash,sdo,cache")
// into a mask. "all" (or "") selects every class.
func ParseClasses(s string) (Class, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return ClassAll, nil
	}
	byName := make(map[string]Class, len(classNames))
	for c, n := range classNames {
		byName[n] = c
	}
	var mask Class
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		if part == "" {
			continue
		}
		c, ok := byName[part]
		if !ok {
			return 0, fmt.Errorf("obs: unknown event class %q (known: %s, or \"all\")",
				part, strings.Join(ClassNames(), ","))
		}
		mask |= c
	}
	if mask == 0 {
		return 0, fmt.Errorf("obs: empty event-class list %q", s)
	}
	return mask, nil
}

// Event is one observation. Numeric fields are structured so machine sinks
// (JSONL, Chrome) can index them; Detail carries the human-readable rest
// and is what the text sink prints (preserving the legacy SetTracer
// format). Zero-valued optional fields are omitted from JSON.
type Event struct {
	Cycle uint64 `json:"cycle"`
	Class Class  `json:"-"`
	// Kind names the event within its class: "rename", "issue-load",
	// "obl-validate", "cache-miss", "dram-row-hit", ...
	Kind   string `json:"kind"`
	Seq    uint64 `json:"seq,omitempty"`
	PC     int    `json:"pc,omitempty"`
	Addr   uint64 `json:"addr,omitempty"`
	Level  string `json:"level,omitempty"`
	Dur    uint64 `json:"dur,omitempty"` // cycles, for span-shaped events
	Detail string `json:"detail,omitempty"`
}

// ClassName returns the canonical name of the event's class.
func (e Event) ClassName() string { return classNames[e.Class] }
