package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Operations.")
	g := r.NewGauge("test_depth", "Depth.")
	r.NewGaugeFunc("test_live", "Live value.", func() float64 { return 7 })
	h := r.NewHistogram("test_latency_seconds", "Latency.", []float64{0.1, 1})

	c.Add(3)
	g.Set(2.5)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"# HELP test_ops_total Operations.",
		"# TYPE test_ops_total counter",
		"test_ops_total 3",
		"# TYPE test_depth gauge",
		"test_depth 2.5",
		"test_live 7",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	// Output must be sorted by metric name (stable scrapes).
	iDepth := strings.Index(body, "# HELP test_depth")
	iOps := strings.Index(body, "# HELP test_ops_total")
	if iDepth > iOps {
		t.Fatal("metrics not sorted by name")
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("b_seconds", "x", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	var sb strings.Builder
	r.WriteText(&sb)
	if !strings.Contains(sb.String(), `b_seconds_bucket{le="1"} 1`) {
		t.Fatalf("boundary observation not cumulative in le=\"1\":\n%s", sb.String())
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	r.NewCounter("dup_total", "y")
}
