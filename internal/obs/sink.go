package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink consumes events. Sinks are driven from the single simulation
// goroutine; they need not be safe for concurrent use.
type Sink interface {
	Emit(Event)
	// Close flushes buffered output and writes any trailer the format
	// needs (the Chrome sink's closing bracket). A sink must tolerate
	// being closed more than once.
	Close() error
}

// --- Text sink ---

// TextSink renders events in the legacy SetTracer line format:
//
//	[   cycle] kind           detail
//
// one line per event, suitable for eyeballing and diffing.
type TextSink struct {
	w io.Writer
}

// NewTextSink returns a text sink writing to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit writes one line.
func (s *TextSink) Emit(e Event) {
	fmt.Fprintf(s.w, "[%8d] %-14s %s\n", e.Cycle, e.Kind, e.Detail)
}

// Close flushes the underlying writer when it is buffered.
func (s *TextSink) Close() error {
	if f, ok := s.w.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// --- JSONL sink ---

// JSONLSink writes one JSON object per line: the Event's structured
// fields plus its class name. The stream is greppable and trivially
// loadable into pandas/jq.
type JSONLSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLSink returns a JSONL sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// jsonlEvent adds the class name to the wire form.
type jsonlEvent struct {
	Event
	ClassName string `json:"class"`
}

// Emit writes one line.
func (s *JSONLSink) Emit(e Event) {
	s.enc.Encode(jsonlEvent{Event: e, ClassName: e.ClassName()})
}

// Close flushes the buffer.
func (s *JSONLSink) Close() error { return s.bw.Flush() }

// --- Chrome trace-event sink ---

// ChromeSink writes the Chrome trace-event format (the JSON object form,
// {"traceEvents":[...]}), loadable in Perfetto (https://ui.perfetto.dev)
// and chrome://tracing. One simulated cycle maps to one microsecond of
// trace time. Events with a duration become complete ("X") slices; the
// rest become instant ("i") events. Each event class gets its own track
// (tid), so Perfetto renders squashes, SDO activity and cache traffic as
// separate rows.
type ChromeSink struct {
	bw    *bufio.Writer
	n     int
	open  bool
	close bool
}

// NewChromeSink returns a Chrome trace sink writing to w.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{bw: bufio.NewWriter(w)}
}

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// tid maps a class to its track index (1-based, in bit order).
func tid(c Class) int {
	t := 1
	for bit := Class(1); bit < 1<<numClasses; bit <<= 1 {
		if c == bit {
			return t
		}
		t++
	}
	return 0
}

// Emit appends one trace event.
func (s *ChromeSink) Emit(e Event) {
	if !s.open {
		s.bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
		s.open = true
	}
	if s.n > 0 {
		s.bw.WriteByte(',')
	}
	s.bw.WriteByte('\n')
	ce := chromeEvent{
		Name:  e.Kind,
		Cat:   e.ClassName(),
		Phase: "i",
		TS:    e.Cycle,
		PID:   0,
		TID:   tid(e.Class),
		Scope: "t",
	}
	if e.Dur > 0 {
		ce.Phase = "X"
		ce.Dur = e.Dur
		ce.Scope = ""
	}
	args := make(map[string]any, 4)
	if e.Seq != 0 {
		args["seq"] = e.Seq
	}
	if e.PC != 0 {
		args["pc"] = e.PC
	}
	if e.Addr != 0 {
		args["addr"] = fmt.Sprintf("%#x", e.Addr)
	}
	if e.Level != "" {
		args["level"] = e.Level
	}
	if e.Detail != "" {
		args["detail"] = e.Detail
	}
	if len(args) > 0 {
		ce.Args = args
	}
	b, err := json.Marshal(ce)
	if err != nil {
		return
	}
	s.bw.Write(b)
	s.n++
}

// Close writes the trailer and flushes. An empty trace still produces a
// valid document.
func (s *ChromeSink) Close() error {
	if s.close {
		return nil
	}
	s.close = true
	if !s.open {
		s.bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	}
	s.bw.WriteString("\n]}\n")
	return s.bw.Flush()
}

// --- Ring sink ---

// RingSink keeps the last N events in a bounded ring buffer, for
// "what happened just before the squash/halt/watchdog" postmortems with
// no I/O on the hot path.
type RingSink struct {
	buf  []Event
	next int
	full bool
}

// NewRingSink returns a ring buffer holding the most recent n events.
func NewRingSink(n int) *RingSink {
	if n <= 0 {
		n = 1
	}
	return &RingSink{buf: make([]Event, n)}
}

// Emit records the event, overwriting the oldest once full.
func (s *RingSink) Emit(e Event) {
	s.buf[s.next] = e
	s.next++
	if s.next == len(s.buf) {
		s.next, s.full = 0, true
	}
}

// Close is a no-op; the ring is read after the run.
func (s *RingSink) Close() error { return nil }

// Events returns the buffered events, oldest first.
func (s *RingSink) Events() []Event {
	if !s.full {
		return append([]Event(nil), s.buf[:s.next]...)
	}
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// WriteText dumps the buffered events, oldest first, in the text-sink
// format — the postmortem report.
func (s *RingSink) WriteText(w io.Writer) {
	t := NewTextSink(w)
	for _, e := range s.Events() {
		t.Emit(e)
	}
}

// --- Concurrency-safe ring sink ---

// SafeRingSink is a RingSink safe for concurrent emitters and readers —
// the flight recorder for services whose events come from many worker
// goroutines, read live over HTTP (/debug/flight) rather than after the
// run. Plain RingSink stays lock-free for the single-goroutine simulator
// hot path.
type SafeRingSink struct {
	mu   sync.Mutex
	ring *RingSink
}

// NewSafeRingSink returns a concurrent ring holding the last n events.
func NewSafeRingSink(n int) *SafeRingSink {
	return &SafeRingSink{ring: NewRingSink(n)}
}

// Emit records the event, overwriting the oldest once full.
func (s *SafeRingSink) Emit(e Event) {
	s.mu.Lock()
	s.ring.Emit(e)
	s.mu.Unlock()
}

// Close is a no-op (the ring is read live).
func (s *SafeRingSink) Close() error { return nil }

// Events returns a snapshot of the buffered events, oldest first.
func (s *SafeRingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring.Events()
}
