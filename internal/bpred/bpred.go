// Package bpred implements the tournament branch predictor from the
// simulated architecture (Table I): a local history predictor, a global
// (gshare-style) predictor, a choice predictor arbitrating between them,
// and a branch target buffer.
//
// Under STT (§III-B) predictions are always safe to make: the predictor's
// state is never a function of tainted data because the core delays Update
// calls for tainted branches until their predicate is untainted.
package bpred

import "fmt"

// Config sizes the predictor tables. All counts must be powers of two.
type Config struct {
	LocalHistoryEntries int // per-PC history registers
	LocalHistoryBits    int // bits of local history
	LocalCounters       int // 2-bit counters indexed by local history
	GlobalCounters      int // 2-bit counters indexed by global history ^ PC
	ChoiceCounters      int // 2-bit counters selecting local vs global
	BTBEntries          int // direct-mapped target buffer
}

// DefaultConfig mirrors a mid-size tournament predictor comparable to
// gem5's default (the paper's Table I says only "Tournament").
func DefaultConfig() Config {
	return Config{
		LocalHistoryEntries: 2048,
		LocalHistoryBits:    11,
		LocalCounters:       2048,
		GlobalCounters:      8192,
		ChoiceCounters:      8192,
		BTBEntries:          4096,
	}
}

type btbEntry struct {
	valid  bool
	pc     uint64
	target int
}

// Predictor is a tournament branch direction predictor plus BTB. The zero
// value is not usable; call New.
type Predictor struct {
	cfg           Config
	localHistory  []uint64
	localCounters []uint8 // 2-bit saturating
	globalCounts  []uint8
	choiceCounts  []uint8
	globalHistory uint64
	btb           []btbEntry

	// Stats
	Lookups     uint64
	Mispredicts uint64
}

// New returns a predictor with the given configuration; zero fields fall
// back to DefaultConfig values.
func New(cfg Config) *Predictor {
	def := DefaultConfig()
	if cfg.LocalHistoryEntries == 0 {
		cfg.LocalHistoryEntries = def.LocalHistoryEntries
	}
	if cfg.LocalHistoryBits == 0 {
		cfg.LocalHistoryBits = def.LocalHistoryBits
	}
	if cfg.LocalCounters == 0 {
		cfg.LocalCounters = def.LocalCounters
	}
	if cfg.GlobalCounters == 0 {
		cfg.GlobalCounters = def.GlobalCounters
	}
	if cfg.ChoiceCounters == 0 {
		cfg.ChoiceCounters = def.ChoiceCounters
	}
	if cfg.BTBEntries == 0 {
		cfg.BTBEntries = def.BTBEntries
	}
	p := &Predictor{
		cfg:           cfg,
		localHistory:  make([]uint64, cfg.LocalHistoryEntries),
		localCounters: make([]uint8, cfg.LocalCounters),
		globalCounts:  make([]uint8, cfg.GlobalCounters),
		choiceCounts:  make([]uint8, cfg.ChoiceCounters),
		btb:           make([]btbEntry, cfg.BTBEntries),
	}
	// Weakly bias all counters toward taken=false / choice=global.
	for i := range p.localCounters {
		p.localCounters[i] = 1
	}
	for i := range p.globalCounts {
		p.globalCounts[i] = 1
	}
	for i := range p.choiceCounts {
		p.choiceCounts[i] = 1
	}
	return p
}

func taken(counter uint8) bool { return counter >= 2 }

func bump(c uint8, t bool) uint8 {
	if t {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

func (p *Predictor) localIdx(pc uint64) (hist uint64, counterIdx int) {
	hIdx := int(pc) & (p.cfg.LocalHistoryEntries - 1)
	hist = p.localHistory[hIdx] & ((1 << p.cfg.LocalHistoryBits) - 1)
	// Hash the PC into the counter index to reduce cross-branch aliasing of
	// identical history patterns.
	return hist, int(hist^(pc*0x9e3779b9)) & (p.cfg.LocalCounters - 1)
}

func (p *Predictor) globalIdx(pc, hist uint64) int {
	return int(hist^pc) & (p.cfg.GlobalCounters - 1)
}

// Snapshot captures the speculative global history so it can be restored
// on a squash (the core checkpoints it per branch).
type Snapshot struct{ globalHistory uint64 }

// PredictDirection predicts taken/not-taken for the conditional branch at
// pc and speculatively updates the global history with the prediction. The
// returned Snapshot restores history as of *before* this prediction.
func (p *Predictor) PredictDirection(pc uint64) (bool, Snapshot) {
	p.Lookups++
	snap := Snapshot{p.globalHistory}
	_, li := p.localIdx(pc)
	gi := p.globalIdx(pc, p.globalHistory)
	localPred := taken(p.localCounters[li])
	globalPred := taken(p.globalCounts[gi])
	useLocal := taken(p.choiceCounts[gi])
	pred := globalPred
	if useLocal {
		pred = localPred
	}
	p.globalHistory = p.globalHistory<<1 | b2u(pred)
	return pred, snap
}

// Restore rewinds speculative global history to the snapshot (taken at the
// squashed branch's prediction time).
func (p *Predictor) Restore(s Snapshot) { p.globalHistory = s.globalHistory }

// Update trains the direction tables with the resolved outcome of the
// branch at pc, using the Snapshot captured when the branch was predicted
// so the trained global/choice counters are the ones the prediction read.
// mispredicted additionally corrects the speculative global history (shift
// in the true outcome in place of the prediction).
func (p *Predictor) Update(pc uint64, outcome, mispredicted bool, snap Snapshot) {
	hIdx := int(pc) & (p.cfg.LocalHistoryEntries - 1)
	_, li := p.localIdx(pc)
	gi := p.globalIdx(pc, snap.globalHistory)

	localPred := taken(p.localCounters[li])
	globalPred := taken(p.globalCounts[gi])
	// Train the choice predictor only when the components disagree.
	if localPred != globalPred {
		p.choiceCounts[gi] = bump(p.choiceCounts[gi], localPred == outcome)
	}
	p.localCounters[li] = bump(p.localCounters[li], outcome)
	p.globalCounts[gi] = bump(p.globalCounts[gi], outcome)
	p.localHistory[hIdx] = p.localHistory[hIdx]<<1 | b2u(outcome)
	if mispredicted {
		p.Mispredicts++
		// Replace the wrongly-speculated history bit: rebuild from the
		// prediction-time snapshot with the true outcome shifted in.
		p.globalHistory = snap.globalHistory<<1 | b2u(outcome)
	}
}

// LookupTarget consults the BTB for the branch at pc.
func (p *Predictor) LookupTarget(pc uint64) (target int, ok bool) {
	e := p.btb[int(pc)&(p.cfg.BTBEntries-1)]
	if e.valid && e.pc == pc {
		return e.target, true
	}
	return 0, false
}

// UpdateTarget installs the resolved target of the branch at pc.
func (p *Predictor) UpdateTarget(pc uint64, target int) {
	p.btb[int(pc)&(p.cfg.BTBEntries-1)] = btbEntry{valid: true, pc: pc, target: target}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTBEntryState is one serializable BTB entry.
type BTBEntryState struct {
	Valid  bool
	PC     uint64
	Target int
}

// State is the predictor's full serializable state: every table, the
// speculative global history, and the stat counters. It is what warmup
// checkpoints (internal/arch) capture and restore, so a restored
// predictor is indistinguishable from one trained in place.
type State struct {
	LocalHistory  []uint64
	LocalCounters []uint8
	GlobalCounts  []uint8
	ChoiceCounts  []uint8
	GlobalHistory uint64
	BTB           []BTBEntryState

	Lookups     uint64
	Mispredicts uint64
}

// State snapshots the predictor.
func (p *Predictor) State() State {
	s := State{
		LocalHistory:  append([]uint64(nil), p.localHistory...),
		LocalCounters: append([]uint8(nil), p.localCounters...),
		GlobalCounts:  append([]uint8(nil), p.globalCounts...),
		ChoiceCounts:  append([]uint8(nil), p.choiceCounts...),
		GlobalHistory: p.globalHistory,
		BTB:           make([]BTBEntryState, len(p.btb)),
		Lookups:       p.Lookups,
		Mispredicts:   p.Mispredicts,
	}
	for i, e := range p.btb {
		s.BTB[i] = BTBEntryState{Valid: e.valid, PC: e.pc, Target: e.target}
	}
	return s
}

// SetState restores a snapshot taken from a predictor of identical
// configuration.
func (p *Predictor) SetState(s State) error {
	if len(s.LocalHistory) != len(p.localHistory) ||
		len(s.LocalCounters) != len(p.localCounters) ||
		len(s.GlobalCounts) != len(p.globalCounts) ||
		len(s.ChoiceCounts) != len(p.choiceCounts) ||
		len(s.BTB) != len(p.btb) {
		return fmt.Errorf("bpred: state table sizes do not match the predictor's configuration")
	}
	copy(p.localHistory, s.LocalHistory)
	copy(p.localCounters, s.LocalCounters)
	copy(p.globalCounts, s.GlobalCounts)
	copy(p.choiceCounts, s.ChoiceCounts)
	p.globalHistory = s.GlobalHistory
	for i, e := range s.BTB {
		p.btb[i] = btbEntry{valid: e.Valid, pc: e.PC, target: e.Target}
	}
	p.Lookups, p.Mispredicts = s.Lookups, s.Mispredicts
	return nil
}
