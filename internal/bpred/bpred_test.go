package bpred

import (
	"testing"
	"testing/quick"
)

func trainLoop(p *Predictor, pc uint64, pattern []bool, reps int) {
	for r := 0; r < reps; r++ {
		for _, outcome := range pattern {
			pred, snap := p.PredictDirection(pc)
			p.Update(pc, outcome, pred != outcome, snap)
		}
	}
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(Config{})
	trainLoop(p, 0x40, []bool{true}, 64)
	pred, _ := p.PredictDirection(0x40)
	if !pred {
		t.Error("should predict taken after unanimous training")
	}
}

func TestLearnsAlwaysNotTaken(t *testing.T) {
	p := New(Config{})
	trainLoop(p, 0x80, []bool{false}, 64)
	pred, _ := p.PredictDirection(0x80)
	if pred {
		t.Error("should predict not-taken after unanimous training")
	}
}

func TestLearnsLoopExitPattern(t *testing.T) {
	// Pattern TTTN (loop of 4): the local predictor with history should get
	// high accuracy after warmup.
	p := New(Config{})
	pattern := []bool{true, true, true, false}
	trainLoop(p, 0x100, pattern, 200)
	correct := 0
	total := 0
	for r := 0; r < 50; r++ {
		for _, outcome := range pattern {
			pred, snap := p.PredictDirection(0x100)
			p.Update(0x100, outcome, pred != outcome, snap)
			if pred == outcome {
				correct++
			}
			total++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("TTTN accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestMispredictCounting(t *testing.T) {
	p := New(Config{})
	pred, snap := p.PredictDirection(0x10)
	p.Update(0x10, !pred, true, snap)
	if p.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d, want 1", p.Mispredicts)
	}
	if p.Lookups != 1 {
		t.Fatalf("lookups = %d, want 1", p.Lookups)
	}
}

func TestSnapshotRestore(t *testing.T) {
	p := New(Config{})
	trainLoop(p, 0x20, []bool{true}, 32) // make the prediction taken
	before := p.globalHistory
	_, snap := p.PredictDirection(0x20)
	_, _ = p.PredictDirection(0x20)
	if p.globalHistory == before {
		t.Fatal("history should have advanced")
	}
	p.Restore(snap)
	if p.globalHistory != before {
		t.Fatalf("restore: history = %#x, want %#x", p.globalHistory, before)
	}
}

func TestBTB(t *testing.T) {
	p := New(Config{})
	if _, ok := p.LookupTarget(0x400); ok {
		t.Fatal("cold BTB should miss")
	}
	p.UpdateTarget(0x400, 17)
	target, ok := p.LookupTarget(0x400)
	if !ok || target != 17 {
		t.Fatalf("target = %d, ok=%v", target, ok)
	}
	// Aliasing PC with same index must not false-hit (tag check).
	alias := 0x400 + uint64(p.cfg.BTBEntries)
	if _, ok := p.LookupTarget(alias); ok {
		t.Fatal("aliasing PC must not hit")
	}
	// Alias replaces.
	p.UpdateTarget(alias, 99)
	if _, ok := p.LookupTarget(0x400); ok {
		t.Fatal("replaced entry should miss")
	}
}

func TestCountersStayInBounds(t *testing.T) {
	// Property: after arbitrary update sequences, all 2-bit counters remain
	// in [0,3].
	p := New(Config{LocalHistoryEntries: 16, LocalCounters: 16, GlobalCounters: 16, ChoiceCounters: 16, BTBEntries: 16})
	f := func(pcs []uint8, outcomes []bool) bool {
		n := len(pcs)
		if len(outcomes) < n {
			n = len(outcomes)
		}
		for i := 0; i < n; i++ {
			pc := uint64(pcs[i])
			pred, snap := p.PredictDirection(pc)
			p.Update(pc, outcomes[i], pred != outcomes[i], snap)
		}
		for _, c := range p.localCounters {
			if c > 3 {
				return false
			}
		}
		for _, c := range p.globalCounts {
			if c > 3 {
				return false
			}
		}
		for _, c := range p.choiceCounts {
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New(Config{})
	def := DefaultConfig()
	if p.cfg != def {
		t.Fatalf("zero config should expand to defaults, got %+v", p.cfg)
	}
}

func TestDistinctPCsIndependent(t *testing.T) {
	// Two branches with opposite biases, trained interleaved (as a real
	// program would). In steady state each must predict its own bias with
	// high accuracy despite sharing tables.
	p := New(Config{})
	step := func(count bool) (correct, total int) {
		for _, br := range []struct {
			pc      uint64
			outcome bool
		}{{0x1000, true}, {0x2000, false}} {
			pred, snap := p.PredictDirection(br.pc)
			p.Update(br.pc, br.outcome, pred != br.outcome, snap)
			if count {
				total++
				if pred == br.outcome {
					correct++
				}
			}
		}
		return correct, total
	}
	for i := 0; i < 200; i++ {
		step(false)
	}
	correct, total := 0, 0
	for i := 0; i < 50; i++ {
		c, n := step(true)
		correct += c
		total += n
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("steady-state accuracy = %.2f, want >= 0.9", acc)
	}
}
