// Package workload provides the benchmark programs the evaluation runs:
// ten synthetic kernels standing in for the SPEC CPU2017 suite, plus a
// random structured-program generator used for differential testing.
//
// SPEC binaries and their reference inputs are not available here (and the
// simulator runs its own ISA), so each kernel is engineered to reproduce
// the *memory-level and speculation-level* behaviour of the benchmark it
// is named after. The properties that matter to STT/SDO are:
//
//   - which loads have tainted (load-dependent) addresses — only those are
//     delayed by STT or turned into Obl-Lds by SDO;
//   - the cache level each such static load stably hits (real programs'
//     static loads have per-PC-stable levels, which is what makes the
//     paper's PC-indexed location predictors work; Table III measures an
//     aggregate of ~72-75% L1 / ~7% L2 / ~5% L3 / ~11-15% DRAM);
//   - how long branch predicates take to resolve (Spectre-model taint
//     windows exist only under unresolved branches);
//   - working-set sizes and stride patterns (the §V-D access patterns).
//
// Each kernel composes loads from four regions — a hot table (L1 after
// warmup), an L2-resident region, an L3-resident region, and a
// DRAM-resident region — with per-benchmark weights spanning the same
// space the SPEC suite spans. See DESIGN.md for the substitution argument.
package workload

import (
	"fmt"

	"repro/internal/isa"
)

// Workload is one runnable benchmark.
type Workload struct {
	// Name matches the SPEC benchmark the kernel imitates.
	Name string
	// Desc summarises the behaviour being imitated.
	Desc string
	// FP reports whether the kernel exercises floating-point transmitters.
	FP bool
	// Build returns the program and its initial memory image. The program
	// halts on its own after the default iteration count; harness runs cut
	// earlier with a committed-instruction budget.
	Build func() (*isa.Program, func(*isa.Memory))
}

// All returns the full suite in a stable order.
func All() []Workload {
	return []Workload{
		mcf(),
		omnetpp(),
		xalancbmk(),
		gcc(),
		deepsjeng(),
		exchange2(),
		x264(),
		perlbench(),
		leela(),
		xz(),
		lbm(),
		namd(),
		cactuBSSN(),
		fotonik3d(),
	}
}

// ByName finds a workload by its name.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists all workload names in order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// Shared memory-region geometry (slot counts of 8-byte words).
const (
	hotSlots = 1 << 11 // 16KB: L1-resident after warmup
	l2Slots  = 1 << 14 // 128KB: L2-resident
	l3Slots  = 1 << 17 // 1MB: L3-resident
	bigSlots = 1 << 19 // 4MB: spills to DRAM
)

// xorshift is the deterministic PRNG used by every init function.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// fillRegion writes n slot values produced by gen at base.
func fillRegion(m *isa.Memory, base uint64, n int, gen func(i int) uint64) {
	for i := 0; i < n; i++ {
		m.Write64(base+uint64(i)*8, gen(i))
	}
}

// Register conventions for the kernels:
// R1..R9 scratch values, R10..R18 region bases/masks, R20..R23 loop state.
const (
	kIdx   = isa.R20 // loop counter
	kN     = isa.R21 // iteration bound
	kAcc   = isa.R4  // accumulator
	kHot   = isa.R10 // hot region base
	kL2    = isa.R11 // L2 region base
	kL3    = isa.R12 // L3 region base
	kBig   = isa.R13 // big region base
	kHotM  = isa.R14 // hot mask (slot-aligned bytes)
	kMask2 = isa.R15 // L2-region mask
	kMaskB = isa.R16 // big-region mask
	kSh3   = isa.R17 // constant 3
	kOne   = isa.R18 // constant 1
	kMask3 = isa.R19 // L3-region mask
	kCur   = isa.R22 // streaming cursor
	kTmp   = isa.R23
	kChase = isa.R24 // loop-carried pointer-chase register
)

// prologue emits the shared register setup.
func prologue(b *isa.Builder, iters int64, hot, l2, l3, big uint64) {
	b.MovI(kIdx, 0)
	b.MovI(kN, iters)
	b.MovI(kAcc, 0)
	b.MovI(kHot, int64(hot))
	b.MovI(kL2, int64(l2))
	b.MovI(kL3, int64(l3))
	b.MovI(kBig, int64(big))
	b.MovI(kHotM, (hotSlots-1)*8)
	b.MovI(kMask2, (l2Slots-1)*8)
	b.MovI(kMask3, (l3Slots-1)*8)
	b.MovI(kMaskB, (bigSlots-1)*8)
	b.MovI(kSh3, 3)
	b.MovI(kOne, 1)
	b.MovI(kChase, 0)
}

// epilogue emits the loop close and halt.
func epilogue(b *isa.Builder, label string) {
	b.AddI(kIdx, kIdx, 1)
	b.Blt(kIdx, kN, label)
	b.Halt()
}

// gather emits rd = mem[base + ((rs*8) & mask)]: a dependent
// (tainted-address) load into a region.
func gather(b *isa.Builder, rd, rs, base, mask isa.Reg) {
	b.Shl(rd, rs, kSh3)
	b.And(rd, rd, mask)
	b.Add(rd, rd, base)
	b.Load(rd, rd, 0)
}

// mcf imitates 605.mcf_s: network-simplex arc scanning. An index array
// streams in (untainted addresses); every arc triggers dependent gathers —
// three into the hot cost tables (L1), one into the 1MB node region (L3)
// and one across the full 4MB arc array (DRAM) — and the pricing branch
// tests a DRAM-loaded value, keeping speculation windows long. The
// heaviest kernel for every protection, as in the paper.
func mcf() Workload {
	const (
		hot   = 0x100_0000
		l3r   = 0x110_0000
		big   = 0x140_0000
		iters = 14_000
	)
	return Workload{
		Name: "mcf_r",
		Desc: "arc scan: L1 cost tables + L3 nodes + DRAM arcs, pricing branch on DRAM data",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, hot, 0, l3r, big)
			b.MovI(kCur, 0x9E3779B9)
			b.MovI(isa.R9, 17)
			b.Label("loop")
			// Arc id from induction arithmetic (mcf scans arc blocks with
			// computed addresses): pure ALU, so the DRAM arc gather below
			// keeps an untainted address and full memory-level parallelism.
			b.Mul(isa.R1, kIdx, kCur)
			b.Shr(isa.R2, isa.R1, isa.R9)
			b.Xor(isa.R1, isa.R1, isa.R2)
			// Dependent gathers with per-PC-stable levels. The arc stream
			// itself is DRAM-bound but has an untainted address; the
			// tainted gathers hit the caches (as SPEC's do — Table III).
			gather(b, isa.R2, isa.R1, kBig, kMaskB) // arc record: 4MB, DRAM (untainted addr)
			gather(b, isa.R3, isa.R1, kHot, kHotM)  // cost coefficient: L1, tainted
			// The node tree is compact (32KB) so it stays cache-resident
			// despite the arc stream flooding the LLC — R8 holds its mask.
			b.MovI(isa.R8, (4096-1)*8)
			gather(b, isa.R5, isa.R2, kL3, isa.R8) // node from arc value: tainted
			gather(b, isa.R6, isa.R5, kHot, kHotM) // potential: L1, tainted
			gather(b, isa.R7, isa.R3, kHot, kHotM) // basis flag: L1, tainted
			// Pricing branch on the DRAM-loaded arc record: resolves late
			// but is well-predicted (negative reduced costs are rare).
			b.MovI(kTmp, 63)
			b.And(isa.R8, isa.R2, kTmp)
			b.Beq(isa.R8, kTmp, "neg")
			b.Add(kAcc, kAcc, isa.R6)
			b.Jmp("join")
			b.Label("neg")
			b.Sub(kAcc, kAcc, isa.R7)
			b.Label("join")
			// Loop-carried node walk (the network-simplex tree traversal):
			// each step's address is the previous step's loaded value — the
			// pattern STT serialises to one step per taint window and SDO
			// restores to cache speed.
			b.MovI(isa.R8, (4096-1)*8)
			gather(b, kChase, kChase, kL3, isa.R8) // compact node walk, tainted
			gather(b, isa.R3, kChase, kHot, kHotM) // depth/potential: L1, tainted
			b.Add(kAcc, kAcc, isa.R3)
			b.Add(kAcc, kAcc, isa.R5)
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				rng := xorshift(0x9e3779b97f4a7c15)
				fillRegion(m, hot, hotSlots, func(int) uint64 { return rng.next() % 997 })
				fillRegion(m, l3r, l2Slots, func(int) uint64 { return rng.next() % 4096 })
				fillRegion(m, big, bigSlots, func(int) uint64 { return rng.next() })
			}
			return prog, init
		},
	}
}

// omnetpp imitates 620.omnetpp_s: discrete-event simulation. Event records
// live in an L3-resident 1MB heap; handler state is hot; each event's
// payload pointer is dereferenced (dependent load back into the heap).
func omnetpp() Workload {
	const (
		hot   = 0x200_0000
		l3r   = 0x210_0000
		iters = 16_000
	)
	return Workload{
		Name: "omnetpp_r",
		Desc: "event heap: L1 handler state + L3-resident records and payload derefs",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, hot, 0, l3r, 0)
			b.MovI(isa.R9, 0x9E3779B9)
			b.MovI(kTmp, 16)
			b.Label("loop")
			// Event-id hash (untainted address into the heap).
			b.Mul(isa.R1, kIdx, isa.R9)
			b.Shr(isa.R2, isa.R1, kTmp)
			b.Xor(isa.R1, isa.R1, isa.R2)
			b.Shl(isa.R1, isa.R1, kSh3)
			b.And(isa.R1, isa.R1, kMask3)
			b.Add(isa.R1, isa.R1, kL3)
			b.Load(isa.R2, isa.R1, 0)              // event record: L3
			gather(b, isa.R3, isa.R2, kL3, kMask3) // payload deref: L3, tainted
			gather(b, isa.R5, isa.R2, kHot, kHotM) // handler state: L1, tainted
			gather(b, isa.R6, isa.R3, kHot, kHotM) // module state: L1, tainted
			// Dispatch branch on the L3-loaded record: resolves after ~40
			// cycles, opening Spectre-model speculation windows over the
			// next events' gathers.
			b.MovI(isa.R8, 31)
			b.And(isa.R7, isa.R2, isa.R8)
			b.Beq(isa.R7, isa.R8, "timer")
			b.Add(kAcc, kAcc, isa.R5)
			b.Jmp("sched")
			b.Label("timer")
			b.Add(kAcc, kAcc, isa.R6)
			b.Label("sched")
			// Heap percolation: parent pointers chase through hot memory.
			gather(b, kChase, kChase, kHot, kHotM) // L1-resident walk, tainted
			b.Add(kAcc, kAcc, kChase)
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				rng := xorshift(42)
				fillRegion(m, hot, hotSlots, func(int) uint64 { return rng.next() % 127 })
				fillRegion(m, l3r, l3Slots, func(int) uint64 { return rng.next() })
			}
			return prog, init
		},
	}
}

// xalancbmk imitates 623.xalancbmk_s: XML symbol-table lookups. Hash
// probes into an L2-resident table; matched entries chase one chain link
// (dependent, L2) and touch hot interning state (L1); a branch tests the
// probed value.
func xalancbmk() Workload {
	const (
		hot   = 0x300_0000
		l2r   = 0x310_0000
		iters = 16_000
	)
	return Workload{
		Name: "xalancbmk_r",
		Desc: "hash probes into an L2 table with dependent chain links and value branches",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, hot, l2r, 0, 0)
			b.MovI(isa.R9, 0x85EB)
			b.MovI(kTmp, 11)
			b.MovI(isa.R8, 1330)
			b.Label("loop")
			b.Mul(isa.R1, kIdx, isa.R9)
			b.Shr(isa.R2, isa.R1, kTmp)
			b.Xor(isa.R1, isa.R1, isa.R2)
			b.Shl(isa.R1, isa.R1, kSh3)
			b.And(isa.R1, isa.R1, kMask2)
			b.Add(isa.R1, isa.R1, kL2)
			b.Load(isa.R2, isa.R1, 0)              // table probe: L2 (untainted addr)
			gather(b, isa.R3, isa.R2, kL2, kMask2) // chain link: L2, tainted
			gather(b, isa.R5, isa.R2, kHot, kHotM) // interned symbol: L1, tainted
			gather(b, isa.R6, isa.R5, kHot, kHotM) // symbol attrs: L1, tainted
			b.Blt(isa.R2, isa.R8, "small")         // branch on the L2-loaded value
			b.Add(kAcc, kAcc, isa.R3)
			b.Jmp("next")
			b.Label("small")
			b.Add(kAcc, kAcc, isa.R6)
			b.Label("next")
			// DOM-tree descent: child pointers chase through hot memory.
			gather(b, kChase, kChase, kHot, kHotM) // L1-resident walk, tainted
			b.Add(kAcc, kAcc, kChase)
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				rng := xorshift(7)
				fillRegion(m, hot, hotSlots, func(int) uint64 { return rng.next() % 251 })
				fillRegion(m, l2r, l2Slots, func(int) uint64 { return rng.next() % 1400 })
			}
			return prog, init
		},
	}
}

// gcc imitates 602.gcc_s: IR walks — mostly hot data with dependent
// derefs, some L2 traffic, integer div/mul, and mixed branches.
func gcc() Workload {
	const (
		hot   = 0x400_0000
		l2r   = 0x410_0000
		iters = 15_000
	)
	return Workload{
		Name: "gcc_r",
		Desc: "IR walk: hot node derefs, some L2 traffic, div/mul, mixed branches",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, hot, l2r, 0, 0)
			b.MovI(isa.R9, 13)
			b.Label("loop")
			b.Shl(isa.R1, kIdx, kSh3)
			b.And(isa.R1, isa.R1, kMask2)
			b.Add(isa.R1, isa.R1, kL2)
			b.Load(isa.R2, isa.R1, 0)              // IR node: L2 stream (untainted)
			gather(b, isa.R3, isa.R2, kHot, kHotM) // operand: L1, tainted
			gather(b, isa.R5, isa.R3, kHot, kHotM) // type info: L1, tainted
			gather(b, isa.R6, isa.R2, kL2, kMask2) // use-chain: L2, tainted
			b.Div(isa.R7, isa.R2, isa.R9)
			b.Mul(isa.R7, isa.R7, isa.R9)
			b.Sub(isa.R7, isa.R2, isa.R7) // R2 % 13
			b.Beq(isa.R7, kOne, "fold")
			b.Add(kAcc, kAcc, isa.R5)
			b.Jmp("next")
			b.Label("fold")
			b.Add(kAcc, kAcc, isa.R6)
			b.Label("next")
			// Def-use chain walk through hot IR nodes.
			gather(b, kChase, kChase, kHot, kHotM) // L1-resident walk, tainted
			b.Add(kAcc, kAcc, kChase)
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				rng := xorshift(1234)
				fillRegion(m, hot, hotSlots, func(int) uint64 { return rng.next() % 509 })
				fillRegion(m, l2r, l2Slots, func(int) uint64 { return rng.next() % 100_000 })
			}
			return prog, init
		},
	}
}

// deepsjeng imitates 631.deepsjeng_s: alpha-beta search — everything hot
// (L1), dominated by unpredictable branches on loaded values; protection
// cost comes from short taint windows and implicit-channel handling.
func deepsjeng() Workload {
	const (
		hot   = 0x500_0000
		iters = 20_000
	)
	return Workload{
		Name: "deepsjeng_r",
		Desc: "L1-resident search with unpredictable data-dependent branches",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, hot, 0, 0, 0)
			b.MovI(isa.R9, 33)
			b.Label("loop")
			b.Shl(isa.R1, kIdx, kSh3)
			b.And(isa.R1, isa.R1, kHotM)
			b.Add(isa.R1, isa.R1, kHot)
			b.Load(isa.R2, isa.R1, 0)              // position entry: L1
			gather(b, isa.R3, isa.R2, kHot, kHotM) // transposition probe: L1, tainted
			gather(b, isa.R5, isa.R3, kHot, kHotM) // history slot: L1, tainted
			b.Xor(kAcc, kAcc, isa.R3)
			b.And(isa.R6, isa.R2, kOne)
			b.Beq(isa.R6, kOne, "cut") // ~50/50 branch on loaded data
			b.Add(kAcc, kAcc, isa.R5)
			b.Jmp("next")
			b.Label("cut")
			b.Mul(kAcc, kAcc, isa.R9)
			b.Label("next")
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				rng := xorshift(99)
				fillRegion(m, hot, hotSlots, func(int) uint64 { return rng.next() })
			}
			return prog, init
		},
	}
}

// exchange2 imitates 648.exchange2_s: tiny working set, perfectly
// predictable control flow, no tainted-address loads — the low-overhead
// extreme for every protection.
func exchange2() Workload {
	const (
		hot   = 0x600_0000
		iters = 18_000
	)
	return Workload{
		Name: "exchange2_r",
		Desc: "tiny working set, predictable branches, no load-dependent addresses",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, hot, 0, 0, 0)
			b.MovI(isa.R9, 81*8-8)
			b.MovI(isa.R8, 5)
			b.Label("loop")
			b.Shl(isa.R1, kIdx, kSh3)
			b.And(isa.R1, isa.R1, isa.R9)
			b.Add(isa.R1, isa.R1, kHot)
			b.Load(isa.R2, isa.R1, 0) // board cell (index from counter)
			b.Mul(isa.R3, isa.R2, isa.R8)
			b.AddI(isa.R3, isa.R3, 7)
			b.And(isa.R3, isa.R3, kHotM)
			b.Store(isa.R3, isa.R1, 0)
			b.Add(kAcc, kAcc, isa.R3)
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				fillRegion(m, hot, 81, func(i int) uint64 { return uint64(i%9 + 1) })
			}
			return prog, init
		},
	}
}

// x264 imitates 625.x264_s: motion estimation — a dependent load that
// strides sequentially through an L2-resident reference frame, producing
// the periodic (7x L1-hit, 1x L2-miss) per-PC pattern the paper's loop
// predictor targets (§V-D access pattern 2).
func x264() Workload {
	const (
		hot   = 0x700_0000
		l2r   = 0x710_0000
		idxB  = 0x720_0000
		iters = 16_000
	)
	return Workload{
		Name: "x264_r",
		Desc: "strided dependent loads through an L2 frame: periodic L1-miss pattern",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, hot, l2r, 0, 0)
			b.MovI(kCur, idxB)
			b.Label("loop")
			b.Load(isa.R1, kCur, 0) // motion vector: sequential values 0,1,2,...
			b.AddI(kCur, kCur, 8)
			// Dependent *strided* gather: address = frame + mv*8. Since mv
			// increments, this load walks cache lines: 7 hits then a miss.
			b.Shl(isa.R2, isa.R1, kSh3)
			b.And(isa.R2, isa.R2, kMask2)
			b.Add(isa.R2, isa.R2, kL2)
			b.Load(isa.R3, isa.R2, 0)              // reference block: stride pattern
			b.Load(isa.R5, isa.R2, 8)              // neighbour block
			gather(b, isa.R6, isa.R3, kHot, kHotM) // SAD table: L1, tainted
			b.Sub(isa.R7, isa.R3, isa.R5)
			// Early-termination branch on the reference block value.
			b.MovI(isa.R8, 242)
			b.Bge(isa.R3, isa.R8, "skip")
			b.Add(kAcc, kAcc, isa.R7)
			b.Label("skip")
			b.Add(kAcc, kAcc, isa.R6)
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				rng := xorshift(2024)
				fillRegion(m, hot, hotSlots, func(int) uint64 { return rng.next() % 255 })
				fillRegion(m, l2r, l2Slots, func(int) uint64 { return rng.next() % 255 })
				fillRegion(m, idxB, iters+8, func(i int) uint64 { return uint64(i) })
			}
			return prog, init
		},
	}
}

// lbm imitates 619.lbm_s: lattice-Boltzmann — FP streaming over DRAM-sized
// arrays; the collision step multiplies loaded distributions (tainted FP
// transmitters) and writes back.
func lbm() Workload {
	const (
		src   = 0x800_0000
		dst   = 0x840_0000
		iters = 13_000
	)
	return Workload{
		Name: "lbm_r",
		FP:   true,
		Desc: "FP streaming over 2x4MB arrays; collision fmuls on loaded data",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, src, dst, 0, 0)
			b.MovI(kCur, 0) // byte offset
			b.MovI(isa.R9, 3)
			b.ItoF(isa.R9, isa.R9)
			b.Label("loop")
			b.Add(isa.R1, kHot, kCur) // kHot holds the src base here
			b.Load(isa.R2, isa.R1, 0)
			b.Load(isa.R3, isa.R1, 8)
			b.FMul(isa.R5, isa.R2, isa.R9) // tainted FP transmitter
			b.FAdd(isa.R5, isa.R5, isa.R3)
			b.Add(isa.R6, kL2, kCur) // kL2 holds the dst base
			b.Store(isa.R5, isa.R6, 0)
			b.AddI(kCur, kCur, 8)
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				fillRegion(m, src, iters+8, func(i int) uint64 {
					return 4602891378046628709 + uint64(i) // ~0.5 + i ulps
				})
			}
			return prog, init
		},
	}
}

// namd imitates 644.namd_s: molecular dynamics — FP-dense compute on hot
// (L1) data, with fmul/fsqrt transmitters fed by loads and rare subnormal
// intermediates (the §I-A slow-path case).
func namd() Workload {
	const (
		hot   = 0x900_0000
		iters = 14_000
	)
	return Workload{
		Name: "namd_r",
		FP:   true,
		Desc: "FP-dense L1-resident force loop with rare subnormal operands",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, hot, 0, 0, 0)
			b.MovI(kAcc, 0)
			b.ItoF(kAcc, kAcc)
			b.Label("loop")
			b.Shl(isa.R1, kIdx, kSh3)
			b.And(isa.R1, isa.R1, kHotM)
			b.Add(isa.R1, isa.R1, kHot)
			b.Load(isa.R2, isa.R1, 0)      // coordinate
			b.Load(isa.R3, isa.R1, 8)      // charge
			b.FMul(isa.R5, isa.R2, isa.R3) // tainted transmitter; rarely subnormal
			b.FAdd(kAcc, kAcc, isa.R5)
			b.FSqrt(isa.R6, isa.R5) // tainted transmitter
			b.FAdd(kAcc, kAcc, isa.R6)
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				fillRegion(m, hot, hotSlots, func(i int) uint64 {
					if i%61 == 17 {
						return uint64(i + 1) // tiny subnormal
					}
					return 4602891378046628709 + uint64(i)*997
				})
			}
			return prog, init
		},
	}
}

// fotonik3d imitates 649.fotonik3d_s: 3D FDTD — strided sweeps with a far
// plane neighbour, an FDiv transmitter, and a hot coefficient lookup
// indexed by loaded material ids.
func fotonik3d() Workload {
	const (
		hot   = 0xA00_0000
		grid  = 0xA10_0000
		iters = 13_000
	)
	return Workload{
		Name: "fotonik3d_r",
		FP:   true,
		Desc: "3D stencil: strided grid sweeps, far-plane neighbours, fdiv on loaded data",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			const planeStride = 1 << 13 // 8KB: the "z" neighbour
			b := isa.NewBuilder()
			prologue(b, iters, hot, 0, grid, 0)
			b.MovI(kCur, 0)
			b.MovI(isa.R9, 5)
			b.ItoF(isa.R9, isa.R9)
			b.MovI(kMask2, (1<<20)-8) // 1MB sweep window
			b.Label("loop")
			b.Add(isa.R1, kL3, kCur)            // kL3 holds the grid base
			b.Load(isa.R2, isa.R1, 0)           // x neighbour
			b.Load(isa.R3, isa.R1, planeStride) // z neighbour (far)
			b.FAdd(isa.R6, isa.R2, isa.R3)
			b.FDiv(isa.R6, isa.R6, isa.R9) // tainted transmitter
			b.FtoI(isa.R7, isa.R6)
			gather(b, isa.R5, isa.R7, kHot, kHotM) // coefficient from the FP result: L1
			b.Add(kAcc, kAcc, isa.R7)
			b.Add(kAcc, kAcc, isa.R5)
			b.AddI(kCur, kCur, 264)
			b.And(kCur, kCur, kMask2)
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				rng := xorshift(31337)
				fillRegion(m, hot, hotSlots, func(int) uint64 { return rng.next() % 89 })
				fillRegion(m, grid, (1<<20)/8+planeStride/8+8, func(i int) uint64 {
					if i%3 == 2 {
						return rng.next() % 4096 // material ids interleaved
					}
					return 4602891378046628709 + uint64(i)
				})
			}
			return prog, init
		},
	}
}
