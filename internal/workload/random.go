package workload

import (
	"math/rand"

	"repro/internal/isa"
)

// RandomOptions bounds the shape of generated programs.
type RandomOptions struct {
	Blocks        int // straight-line blocks
	BlockLen      int // max instructions per block
	Loops         int // bounded counted loops wrapping random bodies
	MaxIterations int // per loop
	// ArenaBase overrides the memory arena's base address (0 uses the
	// default). Programs meant to run on separate cores of one shared
	// memory should use disjoint arenas.
	ArenaBase uint64
}

// DefaultRandomOptions returns a medium-size program shape.
func DefaultRandomOptions() RandomOptions {
	return RandomOptions{Blocks: 6, BlockLen: 12, Loops: 3, MaxIterations: 24}
}

// Register conventions for generated programs: the generator mutates only
// r1..r15; r16+ are reserved plumbing (arena base, masks, loop counters)
// so loops always terminate.
const (
	rndArenaBase  = isa.R16
	rndAddrMask   = isa.R17
	rndAlignMask  = isa.R18
	rndLoopReg0   = isa.R20 // R20..R25: loop counters/bounds
	rndScratchLo  = 1
	rndScratchHi  = 15
	rndArenaAddr  = 0x10_0000
	rndArenaBytes = 1 << 16 // 64KB arena keeps runs cache-interesting
)

// RandomProgram generates a structured, guaranteed-terminating program:
// random ALU/FP/memory instructions inside straight-line blocks, counted
// loops, and forward conditional branches on data values. All memory
// accesses land inside a 64KB arena (addresses are masked), so the golden
// model and every pipeline configuration can be compared byte-for-byte.
//
// OpRdCyc is never generated (its value is timing-dependent by design) and
// OpFlush is (it is architecturally inert).
func RandomProgram(rng *rand.Rand, opt RandomOptions) (*isa.Program, func(*isa.Memory)) {
	b := isa.NewBuilder()
	labelN := 0
	newLabel := func() string {
		labelN++
		return "L" + string(rune('a'+labelN%26)) + itoa(labelN)
	}

	scratch := func() isa.Reg {
		return isa.Reg(rndScratchLo + rng.Intn(rndScratchHi-rndScratchLo+1))
	}

	arena := opt.ArenaBase
	if arena == 0 {
		arena = rndArenaAddr
	}

	// Plumbing.
	b.MovI(rndArenaBase, int64(arena))
	b.MovI(rndAddrMask, rndArenaBytes-8)
	b.MovI(rndAlignMask, ^int64(7))
	for r := rndScratchLo; r <= rndScratchHi; r++ {
		b.MovI(isa.Reg(r), rng.Int63n(1<<20))
	}

	// emitMemAddr computes a masked, aligned arena address into rd.
	emitMemAddr := func(rd isa.Reg) {
		src := scratch()
		b.And(rd, src, rndAddrMask)
		b.And(rd, rd, rndAlignMask)
		b.Add(rd, rd, rndArenaBase)
	}

	emitInstr := func() {
		switch rng.Intn(10) {
		case 0, 1, 2: // int ALU
			ops := []func(rd, rs, rt isa.Reg) *isa.Builder{b.Add, b.Sub, b.Mul, b.And, b.Or, b.Xor}
			ops[rng.Intn(len(ops))](scratch(), scratch(), scratch())
		case 3: // shift / div
			if rng.Intn(2) == 0 {
				b.Shl(scratch(), scratch(), scratch())
			} else {
				b.Div(scratch(), scratch(), scratch())
			}
		case 4: // immediates
			b.AddI(scratch(), scratch(), rng.Int63n(4096)-2048)
		case 5, 6: // load (possibly byte)
			addr := scratch()
			emitMemAddr(addr)
			if rng.Intn(4) == 0 {
				b.LoadB(scratch(), addr, int64(rng.Intn(8)))
			} else {
				b.Load(scratch(), addr, 0)
			}
		case 7: // store
			addr := scratch()
			emitMemAddr(addr)
			if rng.Intn(4) == 0 {
				b.StoreB(scratch(), addr, int64(rng.Intn(8)))
			} else {
				b.Store(scratch(), addr, 0)
			}
		case 8: // FP
			x, y, z := scratch(), scratch(), scratch()
			b.ItoF(x, x)
			b.ItoF(y, y)
			switch rng.Intn(4) {
			case 0:
				b.FAdd(z, x, y)
			case 1:
				b.FMul(z, x, y)
			case 2:
				b.FDiv(z, x, y)
			case 3:
				b.FSqrt(z, x)
			}
			b.FtoI(z, z)
		case 9: // forward data-dependent branch over one instruction
			skip := newLabel()
			ops := []func(rs, rt isa.Reg, l string) *isa.Builder{b.Beq, b.Bne, b.Blt, b.Bge}
			ops[rng.Intn(len(ops))](scratch(), scratch(), skip)
			b.Add(scratch(), scratch(), scratch())
			b.Label(skip)
		}
	}

	emitBlock := func() {
		n := 1 + rng.Intn(opt.BlockLen)
		for i := 0; i < n; i++ {
			emitInstr()
		}
	}

	loopsLeft := opt.Loops
	for blk := 0; blk < opt.Blocks; blk++ {
		if loopsLeft > 0 && rng.Intn(2) == 0 {
			loopsLeft--
			ctr := rndLoopReg0 + isa.Reg(loopsLeft*2)
			bound := ctr + 1
			top := newLabel()
			b.MovI(ctr, 0)
			b.MovI(bound, int64(1+rng.Intn(opt.MaxIterations)))
			b.Label(top)
			emitBlock()
			b.AddI(ctr, ctr, 1)
			b.Blt(ctr, bound, top)
		} else {
			emitBlock()
		}
	}
	b.Halt()

	prog := b.MustBuild()
	seed := rng.Int63()
	init := func(m *isa.Memory) {
		r := rand.New(rand.NewSource(seed))
		for off := 0; off < rndArenaBytes; off += 8 {
			m.Write64(arena+uint64(off), uint64(r.Int63()))
		}
	}
	return prog, init
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
