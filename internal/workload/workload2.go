package workload

import "repro/internal/isa"

// This file holds the second half of the suite: kernels imitating
// 500.perlbench_r, 641.leela_s, 657.xz_s and 607.cactuBSSN_s, extending
// coverage to byte-granularity string processing, game-tree search,
// compression match-finding and dense FP stencils.

// perlbench imitates 500.perlbench_r: interpreter/string processing —
// byte loads sweeping an L2-resident text buffer, per-character hash
// arithmetic, a character-class branch, and dependent lookups into hot
// interpreter tables (opcode dispatch).
func perlbench() Workload {
	const (
		hot   = 0xB00_0000
		text  = 0xB10_0000
		tlen  = 1 << 17 // 128KB text: L2-resident
		iters = 18_000
	)
	return Workload{
		Name: "perlbench_r",
		Desc: "byte-wise string hashing over an L2 text buffer with hot dispatch tables",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, hot, text, 0, 0)
			b.MovI(kCur, 0)      // text offset
			b.MovI(isa.R9, 31)   // hash multiplier
			b.MovI(kTmp, tlen-1) // text mask
			b.MovI(isa.R8, 0x20) // character-class threshold
			b.Label("loop")
			b.Add(isa.R1, kL2, kCur)               // kL2 holds the text base
			b.LoadB(isa.R2, isa.R1, 0)             // next character (byte load)
			b.Mul(kAcc, kAcc, isa.R9)              // hash = hash*31 + c
			b.Add(kAcc, kAcc, isa.R2)              //
			gather(b, isa.R3, isa.R2, kHot, kHotM) // opcode dispatch: L1, tainted
			gather(b, isa.R5, isa.R3, kHot, kHotM) // handler data: L1, tainted
			b.Blt(isa.R2, isa.R8, "control")       // control characters are rare
			b.Add(kAcc, kAcc, isa.R5)
			b.Jmp("next")
			b.Label("control")
			b.Xor(kAcc, kAcc, isa.R5)
			b.Label("next")
			b.AddI(kCur, kCur, 1)
			b.And(kCur, kCur, kTmp)
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				rng := xorshift(500)
				fillRegion(m, hot, hotSlots, func(int) uint64 { return rng.next() % 251 })
				for i := 0; i < tlen; i++ {
					// Mostly printable bytes; ~3% control characters.
					c := byte(0x20 + rng.next()%95)
					if rng.next()%32 == 0 {
						c = byte(rng.next() % 0x20)
					}
					m.Write8(text+uint64(i), c)
				}
			}
			return prog, init
		},
	}
}

// leela imitates 641.leela_s: Monte-Carlo tree search — a loop-carried
// descent through an L3-resident tree, pattern-table lookups (hot), and a
// playout branch on node statistics (biased but data-dependent).
func leela() Workload {
	const (
		hot   = 0xC00_0000
		tree  = 0xC10_0000 // 512KB node pool: L3-resident
		iters = 16_000
	)
	return Workload{
		Name: "leela_r",
		Desc: "MCTS descent: loop-carried chase through an L3 tree + hot pattern tables",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, hot, 0, tree, 0)
			b.MovI(kTmp, (1<<16-1)*8) // 64K-slot node-pool mask (512KB)
			b.MovI(isa.R9, 7)
			b.Label("loop")
			// Descend: child = tree[node & mask] (tainted, loop-carried).
			b.Shl(isa.R1, kChase, kSh3)
			b.And(isa.R1, isa.R1, kTmp)
			b.Add(isa.R1, isa.R1, kL3)
			b.Load(kChase, isa.R1, 0)              // child pointer: L3
			b.Load(isa.R2, isa.R1, 8)              // visit count: L3 (same line)
			gather(b, isa.R3, kChase, kHot, kHotM) // pattern weight: L1, tainted
			b.And(isa.R5, isa.R2, isa.R9)
			b.Beq(isa.R5, isa.R9, "expand") // expansion is rare (1/8)
			b.Add(kAcc, kAcc, isa.R3)
			b.Jmp("next")
			b.Label("expand")
			gather(b, isa.R6, isa.R3, kHot, kHotM) // prior table: L1, tainted
			b.Add(kAcc, kAcc, isa.R6)
			b.Label("next")
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				rng := xorshift(641)
				fillRegion(m, hot, hotSlots, func(int) uint64 { return rng.next() % 361 })
				fillRegion(m, tree, 1<<16, func(int) uint64 { return rng.next() })
			}
			return prog, init
		},
	}
}

// xz imitates 657.xz_s: LZMA match finding — hash-chain chases across a
// multi-megabyte dictionary window (L3/DRAM mix), a streamed literal load,
// and a biased match/no-match branch on dictionary data. The
// high-memory-pressure integer benchmark alongside mcf.
func xz() Workload {
	const (
		hot   = 0xD00_0000
		dict  = 0xD10_0000 // 4MB dictionary window
		iters = 13_000
	)
	return Workload{
		Name: "xz_r",
		Desc: "LZMA match finder: hash-chain chases across a 4MB window (L3/DRAM)",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, hot, 0, dict, 0)
			b.MovI(kTmp, (bigSlots-1)*8) // 4MB window mask
			b.MovI(isa.R9, 0x9E3779B9)
			b.MovI(isa.R8, 14)
			b.Label("loop")
			// Position hash (untainted address arithmetic).
			b.Mul(isa.R1, kIdx, isa.R9)
			b.Shr(isa.R2, isa.R1, isa.R8)
			b.Xor(isa.R1, isa.R1, isa.R2)
			b.Shl(isa.R1, isa.R1, kSh3)
			b.And(isa.R1, isa.R1, kTmp)
			b.Add(isa.R1, isa.R1, kL3) // kL3 holds the dictionary base
			b.Load(isa.R3, isa.R1, 0)  // head of hash chain: full window, L3/DRAM
			// Chain hop into the *recent* part of the window: match chains
			// cluster near the current position, so the tainted hop stays
			// cache-resident even though heads roam the whole 4MB.
			b.MovI(isa.R2, (1<<13-1)*8) // 64KB recent-history mask
			b.Shl(isa.R5, isa.R3, kSh3)
			b.And(isa.R5, isa.R5, isa.R2)
			b.Add(isa.R5, isa.R5, kL3)
			b.Load(isa.R6, isa.R5, 0)              // chain entry: tainted, L2/L3
			gather(b, isa.R7, isa.R6, kHot, kHotM) // length table: L1, tainted
			b.MovI(isa.R2, 60)
			b.And(isa.R5, isa.R6, isa.R2)
			b.Beq(isa.R5, isa.R2, "match") // long matches are rare
			b.Add(kAcc, kAcc, isa.R7)
			b.Jmp("next")
			b.Label("match")
			b.Sub(kAcc, kAcc, isa.R7)
			b.Label("next")
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				rng := xorshift(657)
				fillRegion(m, hot, hotSlots, func(int) uint64 { return rng.next() % 273 })
				fillRegion(m, dict, bigSlots, func(int) uint64 { return rng.next() })
			}
			return prog, init
		},
	}
}

// cactuBSSN imitates 607.cactuBSSN_s: numerical relativity — a very
// FP-dense stencil over an L2-resident grid: every loaded value feeds a
// chain of fmul/fdiv/fsqrt transmitters, making it the stress case for
// STT{ld+fp} vs SDO's data-oblivious FP execution.
func cactuBSSN() Workload {
	const (
		grid   = 0xE00_0000
		gslots = 1 << 14 // 128KB grid: L2-resident
		iters  = 12_000
	)
	return Workload{
		Name: "cactuBSSN_r",
		FP:   true,
		Desc: "dense FP stencil: chains of fmul/fdiv/fsqrt on every loaded value",
		Build: func() (*isa.Program, func(*isa.Memory)) {
			b := isa.NewBuilder()
			prologue(b, iters, grid, 0, 0, 0)
			b.MovI(kTmp, (gslots-1)*8)
			b.MovI(isa.R9, 3)
			b.ItoF(isa.R9, isa.R9)
			b.MovI(kAcc, 0)
			b.ItoF(kAcc, kAcc)
			b.Label("loop")
			b.Shl(isa.R1, kIdx, kSh3)
			b.And(isa.R1, isa.R1, kTmp)
			b.Add(isa.R1, isa.R1, kHot)    // kHot holds the grid base
			b.Load(isa.R2, isa.R1, 0)      // metric component
			b.Load(isa.R3, isa.R1, 8)      // neighbour
			b.FMul(isa.R5, isa.R2, isa.R3) // tainted transmitters, chained:
			b.FMul(isa.R6, isa.R5, isa.R2)
			b.FDiv(isa.R7, isa.R6, isa.R9)
			b.FSqrt(isa.R8, isa.R7)
			b.FAdd(kAcc, kAcc, isa.R8)
			// Adaptive-refinement lookup addressed by the FP result: a
			// tainted load at the end of the FP transmitter chain, so
			// delaying the chain (STT{ld+fp}) or the load (both STT modes)
			// stretches the per-iteration critical path.
			b.Shr(isa.R5, isa.R8, kSh3)
			gather(b, isa.R6, isa.R5, kHot, kHotM)
			b.Add(kAcc, kAcc, isa.R6)
			epilogue(b, "loop")
			prog := b.MustBuild()
			init := func(m *isa.Memory) {
				fillRegion(m, grid, gslots, func(i int) uint64 {
					return 4602891378046628709 + uint64(i)*131
				})
			}
			return prog, init
		},
	}
}
