package workload

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/sdo"
)

func TestAllKernelsHaltFunctionally(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, init := w.Build()
			if err := prog.Validate(); err != nil {
				t.Fatal(err)
			}
			m := isa.NewMemory()
			init(m)
			res, err := arch.Exec(prog, m, nil, 5_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Halted {
				t.Fatal("did not halt")
			}
			if res.LoadCount == 0 {
				t.Error("kernel performs no loads")
			}
			if res.Instrs < 10_000 {
				t.Errorf("kernel too short: %d dynamic instrs", res.Instrs)
			}
		})
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) != 14 {
		t.Fatalf("suite has %d workloads, want 14", len(names))
	}
	w, err := ByName("mcf_r")
	if err != nil || w.Name != "mcf_r" {
		t.Fatalf("ByName(mcf_r): %v", err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("ByName should fail for unknown workload")
	}
}

func TestFPKernelsMarked(t *testing.T) {
	fp := map[string]bool{"lbm_r": true, "namd_r": true, "fotonik3d_r": true, "cactuBSSN_r": true}
	for _, w := range All() {
		if w.FP != fp[w.Name] {
			t.Errorf("%s: FP = %v, want %v", w.Name, w.FP, fp[w.Name])
		}
	}
}

func TestKernelsUseDistinctAddressRanges(t *testing.T) {
	// Each kernel initialises its own memory region; two kernels must not
	// rely on the same pages (so multi-workload harness runs stay clean).
	seen := map[uint64]string{}
	for _, w := range All() {
		_, init := w.Build()
		m := isa.NewMemory()
		init(m)
		// Spot check: record one page per workload via a probe of its own
		// initialised data (pages counted instead of exact overlap).
		if m.Pages() == 0 {
			t.Errorf("%s initialises no memory", w.Name)
		}
		_ = seen
	}
}

func TestNamdHasSubnormals(t *testing.T) {
	w, _ := ByName("namd_r")
	_, init := w.Build()
	m := isa.NewMemory()
	init(m)
	found := false
	for i := 0; i < 257; i++ {
		if isa.IsSubnormalBits(m.Read64(uint64(0x900_0000 + i*8))) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("namd working set should contain subnormal values")
	}
}

func TestRandomProgramTerminatesAndValidates(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog, init := RandomProgram(rng, DefaultRandomOptions())
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := isa.NewMemory()
		init(m)
		res, err := arch.Exec(prog, m, nil, 2_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Halted {
			t.Fatalf("seed %d: did not halt", seed)
		}
	}
}

func TestRandomProgramDeterministicInit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, init := RandomProgram(rng, DefaultRandomOptions())
	a, b := isa.NewMemory(), isa.NewMemory()
	init(a)
	init(b)
	if !a.Equal(b) {
		t.Fatal("init must be deterministic")
	}
}

// TestRandomDifferential is the cornerstone correctness property: random
// programs must produce identical architectural results on the golden
// model and on every pipeline configuration — a defense may change timing
// but never semantics.
func TestRandomDifferential(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		prog, init := RandomProgram(rng, DefaultRandomOptions())

		goldenMem := isa.NewMemory()
		init(goldenMem)
		golden, err := arch.Exec(prog, goldenMem, nil, 5_000_000)
		if err != nil {
			t.Fatalf("seed %d: golden: %v", seed, err)
		}

		type cfgCase struct {
			name string
			prot pipeline.Protection
			mod  pipeline.AttackModel
			pred func(h *mem.Hierarchy) sdo.LocationPredictor
		}
		cases := []cfgCase{
			{"unsafe", pipeline.ProtNone, pipeline.Spectre, nil},
			{"stt-spectre", pipeline.ProtSTT, pipeline.Spectre, nil},
			{"stt-futuristic", pipeline.ProtSTT, pipeline.Futuristic, nil},
			{"sdo-l1-spectre", pipeline.ProtSDO, pipeline.Spectre,
				func(*mem.Hierarchy) sdo.LocationPredictor { return sdo.Static{Level: mem.L1} }},
			{"sdo-l3-futuristic", pipeline.ProtSDO, pipeline.Futuristic,
				func(*mem.Hierarchy) sdo.LocationPredictor { return sdo.Static{Level: mem.L3} }},
			{"sdo-hybrid-spectre", pipeline.ProtSDO, pipeline.Spectre,
				func(*mem.Hierarchy) sdo.LocationPredictor { return sdo.NewHybrid(512) }},
			{"sdo-perfect-futuristic", pipeline.ProtSDO, pipeline.Futuristic,
				func(h *mem.Hierarchy) sdo.LocationPredictor { return sdo.Perfect{Probe: h.Probe} }},
		}
		for _, cs := range cases {
			data := isa.NewMemory()
			init(data)
			h := mem.NewHierarchy(mem.DefaultConfig())
			cfg := pipeline.DefaultConfig()
			cfg.Protection = cs.prot
			cfg.Model = cs.mod
			cfg.FPTransmitters = cs.prot != pipeline.ProtNone
			if cs.pred != nil {
				cfg.LocPred = cs.pred(h)
			}
			core := pipeline.New(cfg, prog, data, h)
			if _, err := core.Run(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, cs.name, err)
			}
			if !core.Halted() {
				t.Fatalf("seed %d %s: did not halt", seed, cs.name)
			}
			regs := core.Regs()
			for r := 0; r < isa.NumRegs; r++ {
				if regs[r] != golden.Regs[r] {
					t.Fatalf("seed %d %s: r%d = %#x, golden %#x",
						seed, cs.name, r, regs[r], golden.Regs[r])
				}
			}
			if !data.Equal(goldenMem) {
				t.Fatalf("seed %d %s: memory diverged", seed, cs.name)
			}
		}
	}
}

// TestMulticoreRandomDifferential runs two independent random programs on
// two coherent cores over disjoint arenas of one shared memory: each core's
// final registers and its arena contents must match its own golden run.
// This drives the MESI directory and the consistency-squash machinery with
// arbitrary store traffic while preserving a checkable oracle.
func TestMulticoreRandomDifferential(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		optA := DefaultRandomOptions()
		optA.ArenaBase = 0x10_0000
		optB := DefaultRandomOptions()
		optB.ArenaBase = 0x20_0000

		rngA := rand.New(rand.NewSource(9000 + seed))
		progA, initA := RandomProgram(rngA, optA)
		rngB := rand.New(rand.NewSource(9500 + seed))
		progB, initB := RandomProgram(rngB, optB)

		goldenA := isa.NewMemory()
		initA(goldenA)
		gA, err := arch.Exec(progA, goldenA, nil, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		goldenB := isa.NewMemory()
		initB(goldenB)
		gB, err := arch.Exec(progB, goldenB, nil, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}

		for _, variant := range []core.Variant{core.Unsafe, core.STTLd, core.Hybrid} {
			mc := core.NewMulticore(core.Config{Variant: variant, Model: pipeline.Futuristic},
				[]*isa.Program{progA, progB}, func(m *isa.Memory) {
					initA(m)
					initB(m)
				})
			if err := mc.Run(10_000_000); err != nil {
				t.Fatalf("seed %d %v: %v", seed, variant, err)
			}
			for r := 0; r < isa.NumRegs; r++ {
				if got := mc.Core(0).Regs()[r]; got != gA.Regs[r] {
					t.Fatalf("seed %d %v: core0 r%d = %#x, golden %#x", seed, variant, r, got, gA.Regs[r])
				}
				if got := mc.Core(1).Regs()[r]; got != gB.Regs[r] {
					t.Fatalf("seed %d %v: core1 r%d = %#x, golden %#x", seed, variant, r, got, gB.Regs[r])
				}
			}
			// Each arena must match its own golden image.
			for off := uint64(0); off < 1<<16; off += 8 {
				if got, want := mc.Memory().Read64(0x10_0000+off), goldenA.Read64(0x10_0000+off); got != want {
					t.Fatalf("seed %d %v: arena A at +%#x = %#x, want %#x", seed, variant, off, got, want)
				}
				if got, want := mc.Memory().Read64(0x20_0000+off), goldenB.Read64(0x20_0000+off); got != want {
					t.Fatalf("seed %d %v: arena B at +%#x = %#x, want %#x", seed, variant, off, got, want)
				}
			}
		}
	}
}
