package arch

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Warmup runs the functional emulator for up to warmupInstrs committed
// instructions (or to halt), touch-warming the memory hierarchy and
// branch predictor through the warm access paths (see Warmer.Advance for
// the exact access model).
//
// Because execution is in-order and non-speculative, the resulting warm
// state is a function of the program and warmupInstrs only — never of a
// design variant, attack model or ablation — and the handoff is exact:
// the returned State has executed exactly min(warmupInstrs, instructions
// to halt) instructions.
func Warmup(p *isa.Program, data *isa.Memory, hier *mem.Hierarchy, bp *bpred.Predictor, codeBase uint64, warmupInstrs uint64) State {
	return NewWarmer(p, data, hier, bp, codeBase).Advance(warmupInstrs)
}
