package arch

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Warmup runs the functional emulator for up to warmupInstrs committed
// instructions (or to halt), touch-warming the memory hierarchy and
// branch predictor through the warm access paths: instruction lines warm
// the L1I (once per line, mirroring the pipeline's fetch), loads warm the
// TLB and the data path, stores warm the write path, conditional branches
// run a predict/train pair, and clflushes flush.
//
// Because execution is in-order and non-speculative, the resulting warm
// state is a function of the program and warmupInstrs only — never of a
// design variant, attack model or ablation — and the handoff is exact:
// the returned State has executed exactly min(warmupInstrs, instructions
// to halt) instructions.
func Warmup(p *isa.Program, data *isa.Memory, hier *mem.Hierarchy, bp *bpred.Predictor, codeBase uint64, warmupInstrs uint64) State {
	var st State
	var lastLine uint64 // last I-line warmed (0 = none, matching the pipeline)
	for st.Instrs < warmupInstrs && !st.Halted {
		pcAddr := codeBase + uint64(st.PC)*8
		if line := mem.LineAddr(pcAddr); line != lastLine {
			hier.WarmFetch(pcAddr)
			lastLine = line
		}
		info := st.Step(p, data)
		switch {
		case info.Branch && info.Cond:
			pred, snap := bp.PredictDirection(pcAddr)
			bp.Update(pcAddr, info.Taken, pred != info.Taken, snap)
		case info.IsLoad:
			hier.WarmTranslate(info.Addr)
			hier.WarmLoad(info.Addr)
		case info.Mem:
			hier.WarmStore(info.Addr)
		case info.Flush:
			hier.Flush(info.FlushAddr)
		}
	}
	return st
}
