// Package arch is the simulator's architectural-state layer: the
// committed machine state (registers, PC, halted flag) plus a
// one-instruction functional Step whose per-opcode semantics are the same
// internal/isa definitions the cycle-level pipeline executes — EvalALU,
// BranchTaken, LoadValue, StoreValue — so the two interpreters cannot
// diverge. On top of Step the package provides the golden functional
// executor (Exec), the touch-warming functional warmup used by
// checkpointed sweeps (Warmup), and the serializable warmup Checkpoint.
package arch

import (
	"errors"

	"repro/internal/isa"
)

// State is the architectural state of a single core: everything the
// committed side of the machine holds, and nothing the speculative side
// does. The zero value is the reset state (PC 0, zero registers).
type State struct {
	Regs   [isa.NumRegs]uint64
	PC     int
	Halted bool

	// Dynamic-instruction counters (the halt counts as an instruction,
	// matching the pipeline's committed count).
	Instrs   uint64
	Loads    uint64
	Stores   uint64
	Branches uint64
}

// StepInfo describes the instruction a Step executed, for drivers that
// observe the instruction stream (warmup touch-warming, differential
// tests).
type StepInfo struct {
	PC    int // PC of the executed instruction
	Instr isa.Instr

	Mem    bool   // the instruction accessed memory
	IsLoad bool   // ... as a load (else a store)
	Addr   uint64 // effective address, valid when Mem

	Branch bool // the instruction was a branch (conditional or jump)
	Cond   bool // ... a conditional one
	Taken  bool // resolved direction, valid when Branch

	Flush     bool   // the instruction was a clflush
	FlushAddr uint64 // its effective address
}

// Step executes one instruction functionally: in-order, no speculation,
// no timing. OpRdCyc yields the dynamic instruction count — the
// functional model's only notion of time. Stepping a halted state is a
// no-op.
func (s *State) Step(p *isa.Program, m *isa.Memory) StepInfo {
	if s.Halted {
		return StepInfo{PC: s.PC}
	}
	in := p.At(s.PC)
	info := StepInfo{PC: s.PC, Instr: in}
	s.Instrs++
	switch {
	case in.Op == isa.OpHalt:
		s.Halted = true
	case in.Op == isa.OpNop:
		s.PC++
	case in.Op == isa.OpFlush:
		info.Flush = true
		info.FlushAddr = s.Regs[in.Rs] + uint64(in.Imm)
		s.PC++
	case in.Op.IsBranch():
		s.Branches++
		info.Branch = true
		info.Cond = in.Op.IsCondBranch()
		info.Taken = isa.BranchTaken(in.Op, s.Regs[in.Rs], s.Regs[in.Rt])
		if info.Taken {
			s.PC = in.Target
		} else {
			s.PC++
		}
	case in.Op.IsLoad():
		s.Loads++
		addr := s.Regs[in.Rs] + uint64(in.Imm)
		info.Mem, info.IsLoad, info.Addr = true, true, addr
		s.Regs[in.Rd] = isa.LoadValue(m, in.Op, addr)
		s.PC++
	case in.Op.IsStore():
		s.Stores++
		addr := s.Regs[in.Rs] + uint64(in.Imm)
		info.Mem, info.Addr = true, addr
		isa.StoreValue(m, in.Op, addr, s.Regs[in.Rt])
		s.PC++
	default:
		s.Regs[in.Rd] = isa.EvalALU(in, s.Regs[in.Rs], s.Regs[in.Rt], s.Instrs)
		s.PC++
	}
	return info
}

// ExecResult summarises a functional execution.
type ExecResult struct {
	Regs      [isa.NumRegs]uint64
	Instrs    uint64 // dynamic instructions executed (including the halt)
	Halted    bool   // false if the step budget ran out first
	LoadCount uint64
	StoreCount,
	BranchCount uint64
}

// ErrStepBudget is returned by Exec when the program did not halt within
// the given number of dynamic instructions.
var ErrStepBudget = errors.New("arch: step budget exhausted before halt")

// Exec runs the program on the golden functional model. It mutates mem
// and returns the final architectural registers. regs gives initial
// register values (may be nil for all-zero).
//
// Exec is the reference against which every cycle-level configuration is
// differentially tested: a correct defense changes timing, never
// architectural results.
func Exec(p *isa.Program, mem *isa.Memory, regs *[isa.NumRegs]uint64, maxInstrs uint64) (ExecResult, error) {
	var st State
	if regs != nil {
		st.Regs = *regs
	}
	for st.Instrs < maxInstrs && !st.Halted {
		st.Step(p, mem)
	}
	r := ExecResult{
		Regs: st.Regs, Instrs: st.Instrs, Halted: st.Halted,
		LoadCount: st.Loads, StoreCount: st.Stores, BranchCount: st.Branches,
	}
	if !st.Halted {
		return r, ErrStepBudget
	}
	return r, nil
}
