package arch

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
)

// testProgram is a small kernel with branches, loads and stores: enough
// to leave nontrivial state in every warm structure.
func testProgram() (*isa.Program, func(*isa.Memory)) {
	p := isa.NewBuilder().
		MovI(isa.R1, 0x2000).
		MovI(isa.R2, 0).
		MovI(isa.R3, 500).
		Label("loop").
		Load(isa.R4, isa.R1, 0).
		AddI(isa.R4, isa.R4, 3).
		Store(isa.R4, isa.R1, 0).
		AddI(isa.R1, isa.R1, 64).
		AddI(isa.R2, isa.R2, 1).
		Blt(isa.R2, isa.R3, "loop").
		Halt().
		MustBuild()
	init := func(m *isa.Memory) {
		for i := uint64(0); i < 500; i++ {
			m.Write64(0x2000+i*64, i)
		}
	}
	return p, init
}

func captureTest(warmup uint64) *Checkpoint {
	p, init := testProgram()
	return Capture(p, init, mem.DefaultConfig(), bpred.DefaultConfig(), pipeline.DefaultConfig().CodeBase, warmup)
}

func TestWarmupExactBoundary(t *testing.T) {
	// Functional warmup must execute exactly the budget — no commit-width
	// overshoot like detailed warmup.
	for _, budget := range []uint64{1, 7, 100, 1001, 2500} {
		ck := captureTest(budget)
		if ck.Arch.Instrs != budget {
			t.Errorf("warmup %d: executed %d instructions", budget, ck.Arch.Instrs)
		}
		if ck.Arch.Halted {
			t.Errorf("warmup %d: halted inside the budget", budget)
		}
	}
}

func TestWarmupStopsAtHalt(t *testing.T) {
	ck := captureTest(10_000_000)
	if !ck.Arch.Halted {
		t.Fatal("program should have halted inside a huge budget")
	}
	if ck.Arch.Instrs >= 10_000_000 {
		t.Fatalf("executed %d instructions", ck.Arch.Instrs)
	}
}

func TestWarmupMatchesExec(t *testing.T) {
	// The warmup loop wraps State.Step; its architectural outcome must
	// match plain Exec over the same instruction count.
	const n = 1234
	ck := captureTest(n)
	p, init := testProgram()
	data := isa.NewMemory()
	init(data)
	var st State
	for st.Instrs < n && !st.Halted {
		st.Step(p, data)
	}
	if st.Regs != ck.Arch.Regs || st.PC != ck.Arch.PC {
		t.Fatal("warmup architectural state diverges from bare stepping")
	}
	if !reflect.DeepEqual(data.Image(), ck.Mem) {
		t.Fatal("warmup memory image diverges from bare stepping")
	}
}

func TestWarmupWarmsState(t *testing.T) {
	ck := captureTest(2000)
	if ck.Hier.L1D.Hits+ck.Hier.L1D.Misses == 0 {
		t.Error("no L1D traffic during warmup")
	}
	if ck.Hier.L1I.Hits+ck.Hier.L1I.Misses == 0 {
		t.Error("no L1I traffic during warmup")
	}
	if ck.Hier.TLB.Hits+ck.Hier.TLB.Misses == 0 {
		t.Error("no TLB traffic during warmup")
	}
	if ck.BP.Lookups == 0 {
		t.Error("no branch predictor lookups during warmup")
	}
	warmLines := 0
	for _, l := range ck.Hier.L1D.Lines {
		if l.Valid {
			warmLines++
		}
	}
	if warmLines == 0 {
		t.Error("L1D has no valid lines after warmup")
	}
}

func TestCheckpointGobRoundTrip(t *testing.T) {
	ck := captureTest(2000)
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatal("checkpoint changed across encode/decode")
	}
}

func TestCaptureDeterministic(t *testing.T) {
	a, b := captureTest(2000), captureTest(2000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two captures of the same (workload, warmup) differ")
	}
}
