package arch

import (
	"encoding/gob"
	"io"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Checkpoint is a restorable functional-warmup snapshot: the
// architectural state and memory image at the warmup boundary plus the
// serialized warm state of the memory hierarchy and branch predictor.
//
// A checkpoint is captured once per (workload, warmup budget) and
// restored into a fresh detailed machine for every variant/model/ablation
// cell of a sweep. Reuse is sound because Warmup is non-speculative: no
// field of the snapshot depends on the design variant the measurement
// window will run (see DESIGN.md, "Functional warmup and checkpoints").
// Transient timing state (cache banks, MSHRs, the DRAM scheduler queue)
// is empty at the boundary by construction and is therefore not part of
// the format.
type Checkpoint struct {
	// WarmupInstrs is the budget the checkpoint was captured with (the
	// executed count is Arch.Instrs, smaller only if the program halted).
	WarmupInstrs uint64
	Arch         State
	Mem          map[uint64][]byte // page image (isa.Memory.Image)
	Hier         mem.HierState
	BP           bpred.State
}

// Capture builds fresh memory/hierarchy/predictor state for prog, runs
// functional warmup, and snapshots the result. init (optional) populates
// the initial memory image.
func Capture(p *isa.Program, init func(*isa.Memory), memCfg mem.Config, bpCfg bpred.Config, codeBase uint64, warmupInstrs uint64) *Checkpoint {
	cks := CaptureSeries(p, init, memCfg, bpCfg, codeBase, []uint64{warmupInstrs})
	return cks[0]
}

// CaptureSeries runs one continuous functional warmup over prog,
// snapshotting a Checkpoint at each of the given committed-instruction
// boundaries (which must be non-decreasing). Each snapshot is
// bit-identical to a fresh Capture with that boundary as the budget —
// warmup is deterministic and snapshots are deep copies — but the whole
// series costs a single pass instead of one pass per boundary. This is
// the capture primitive of SimPoint-style multi-checkpoint sampling:
// functional cache/TLB/bpred warmup is carried across the skipped
// intervals between representatives.
func CaptureSeries(p *isa.Program, init func(*isa.Memory), memCfg mem.Config, bpCfg bpred.Config, codeBase uint64, boundaries []uint64) []*Checkpoint {
	data := isa.NewMemory()
	if init != nil {
		init(data)
	}
	w := NewWarmer(p, data, mem.NewHierarchy(memCfg), bpred.New(bpCfg), codeBase)
	out := make([]*Checkpoint, len(boundaries))
	for i, b := range boundaries {
		w.Advance(b)
		ck := w.Snapshot()
		// Restore matches on the configured budget, not the executed
		// count (the program may halt inside the last interval).
		ck.WarmupInstrs = b
		out[i] = ck
	}
	return out
}

// Encode writes the checkpoint in its serialized (gob) form.
func (c *Checkpoint) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(c)
}

// Decode reads a checkpoint serialized by Encode.
func Decode(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, err
	}
	return &c, nil
}
