package arch_test

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/workload"
)

// lockstep runs wl on the detailed pipeline under variant and advances the
// functional emulator to every commit boundary, failing on any divergence
// in committed registers, memory (checked every memEvery instructions and
// at the end), or halt state. It returns the emulator's state for
// coverage assertions.
func lockstep(t *testing.T, wl workload.Workload, variant core.Variant, budget, memEvery uint64) arch.State {
	t.Helper()
	prog, init := wl.Build()
	machine := core.NewMachine(core.Config{
		Variant:   variant,
		MaxInstrs: budget,
	}, prog, init)
	pipe := machine.Core()

	fnMem := isa.NewMemory()
	if init != nil {
		init(fnMem)
	}
	var fn arch.State

	nextMemCheck := memEvery
	committed := uint64(0)
	for !pipe.Halted() && committed < budget {
		if err := pipe.Step(); err != nil {
			t.Fatal(err)
		}
		now := pipe.Stats().Committed
		if now == committed {
			continue
		}
		for fn.Instrs < now && !fn.Halted {
			fn.Step(prog, fnMem)
		}
		committed = now
		if fn.Instrs != committed {
			t.Fatalf("emulator executed %d instructions at pipeline boundary %d (halted=%v)",
				fn.Instrs, committed, fn.Halted)
		}
		if pipe.Regs() != fn.Regs {
			t.Fatalf("committed registers diverge at instruction %d:\npipeline %v\nemulator %v",
				committed, pipe.Regs(), fn.Regs)
		}
		if committed >= nextMemCheck {
			nextMemCheck += memEvery
			if !reflect.DeepEqual(machine.Memory().Image(), fnMem.Image()) {
				t.Fatalf("committed memory diverges at instruction %d", committed)
			}
		}
	}
	if committed == 0 {
		t.Fatal("pipeline committed nothing")
	}
	if pipe.Halted() != fn.Halted {
		t.Fatalf("halt state diverges: pipeline %v, emulator %v", pipe.Halted(), fn.Halted)
	}
	if !reflect.DeepEqual(machine.Memory().Image(), fnMem.Image()) {
		t.Fatal("final committed memory diverges")
	}
	return fn
}

// TestDifferentialFunctionalVsDetailed locksteps the functional emulator
// against the Unsafe detailed pipeline over every workload: after every
// cycle in which the pipeline commits, the emulator is advanced to the
// same committed-instruction count and the committed register files must
// match exactly. Memory images are compared periodically and at the end
// (a full per-boundary memory diff is prohibitively slow). This is the
// contract that makes functional warmup a drop-in replacement for
// detailed warmup's architectural effects.
func TestDifferentialFunctionalVsDetailed(t *testing.T) {
	const (
		budget   = 100_000
		memEvery = 25_000
	)
	wls := workload.All()
	if testing.Short() {
		wls = wls[:3]
	}
	var storeTotal atomic.Uint64
	t.Cleanup(func() {
		if !testing.Short() && storeTotal.Load() == 0 {
			t.Error("no workload exercised stores; the memory differential is vacuous")
		}
	})
	for _, wl := range wls {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			fn := lockstep(t, wl, core.Unsafe, budget, memEvery)
			// Stores are rare in the read-dominated kernels; coverage for
			// them is asserted suite-wide above.
			storeTotal.Add(fn.Stores)
			if fn.Loads == 0 || fn.Branches == 0 {
				t.Errorf("kernel exercised loads=%d branches=%d; differential coverage is weak",
					fn.Loads, fn.Branches)
			}
		})
	}
}

// TestDifferentialEveryScheme locksteps the emulator against the detailed
// pipeline under every registered protection scheme. Whatever a scheme
// does to timing — delaying loads, issuing Obl-Lds, filling and
// discarding shadow structures — committed architectural state must stay
// exactly the Unsafe/functional semantics. A reduced budget keeps the
// (schemes × workloads) grid affordable; the Unsafe row above covers the
// long differential.
func TestDifferentialEveryScheme(t *testing.T) {
	const (
		budget   = 20_000
		memEvery = 10_000
	)
	wls := workload.All()[:2]
	for _, v := range core.Registered() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			for _, wl := range wls {
				fn := lockstep(t, wl, v, budget, memEvery)
				if fn.Loads == 0 {
					t.Errorf("%s: kernel exercised no loads; scheme coverage is weak", wl.Name)
				}
			}
		})
	}
}
