package arch

import (
	"testing"

	"repro/internal/isa"
)

func TestExecLoopSum(t *testing.T) {
	// Sum 1..100 into R3.
	p := isa.NewBuilder().
		MovI(isa.R1, 1).
		MovI(isa.R2, 101).
		MovI(isa.R3, 0).
		Label("loop").
		Add(isa.R3, isa.R3, isa.R1).
		AddI(isa.R1, isa.R1, 1).
		Blt(isa.R1, isa.R2, "loop").
		Halt().
		MustBuild()
	res, err := Exec(p, isa.NewMemory(), nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("program should halt")
	}
	if res.Regs[isa.R3] != 5050 {
		t.Fatalf("sum = %d, want 5050", res.Regs[isa.R3])
	}
	if res.BranchCount != 100 {
		t.Fatalf("branches = %d, want 100", res.BranchCount)
	}
}

func TestExecMemoryOps(t *testing.T) {
	p := isa.NewBuilder().
		MovI(isa.R1, 0x2000).
		MovI(isa.R2, 42).
		Store(isa.R2, isa.R1, 0).
		Load(isa.R3, isa.R1, 0).
		StoreB(isa.R2, isa.R1, 100).
		LoadB(isa.R4, isa.R1, 100).
		Halt().
		MustBuild()
	mem := isa.NewMemory()
	res, err := Exec(p, mem, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[isa.R3] != 42 || res.Regs[isa.R4] != 42 {
		t.Fatalf("R3=%d R4=%d, want 42/42", res.Regs[isa.R3], res.Regs[isa.R4])
	}
	if res.LoadCount != 2 || res.StoreCount != 2 {
		t.Fatalf("loads=%d stores=%d", res.LoadCount, res.StoreCount)
	}
	if mem.Read64(0x2000) != 42 {
		t.Fatal("store not visible in memory")
	}
}

func TestExecStepBudget(t *testing.T) {
	p := isa.NewBuilder().Label("spin").Jmp("spin").MustBuild()
	_, err := Exec(p, isa.NewMemory(), nil, 1000)
	if err != ErrStepBudget {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

func TestExecRdCycIsInstrCount(t *testing.T) {
	p := isa.NewBuilder().Nop().Nop().RdCyc(isa.R5).Halt().MustBuild()
	res, err := Exec(p, isa.NewMemory(), nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[isa.R5] != 3 {
		t.Fatalf("rdcyc = %d, want 3", res.Regs[isa.R5])
	}
}

func TestExecInitialRegs(t *testing.T) {
	var regs [isa.NumRegs]uint64
	regs[isa.R1] = 99
	p := isa.NewBuilder().AddI(isa.R2, isa.R1, 1).Halt().MustBuild()
	res, err := Exec(p, isa.NewMemory(), &regs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[isa.R2] != 100 {
		t.Fatalf("R2 = %d, want 100", res.Regs[isa.R2])
	}
}

func TestBuilderEveryOpChains(t *testing.T) {
	// Exercise the full builder surface in one program and verify it
	// assembles, validates and runs on the functional emulator.
	p := isa.NewBuilder().
		Nop().
		MovI(isa.R1, 10).
		MovI(isa.R2, 3).
		AddI(isa.R3, isa.R1, 1).
		Add(isa.R3, isa.R3, isa.R2).
		Sub(isa.R4, isa.R3, isa.R2).
		Mul(isa.R5, isa.R4, isa.R2).
		Div(isa.R6, isa.R5, isa.R2).
		And(isa.R7, isa.R6, isa.R1).
		Or(isa.R8, isa.R7, isa.R2).
		Xor(isa.R9, isa.R8, isa.R1).
		Shl(isa.R10, isa.R9, isa.R2).
		Shr(isa.R11, isa.R10, isa.R2).
		ItoF(isa.R12, isa.R11).
		ItoF(isa.R13, isa.R2).
		FAdd(isa.R14, isa.R12, isa.R13).
		FSub(isa.R15, isa.R14, isa.R13).
		FMul(isa.R16, isa.R15, isa.R13).
		FDiv(isa.R17, isa.R16, isa.R13).
		FSqrt(isa.R18, isa.R17).
		FtoI(isa.R19, isa.R18).
		MovI(isa.R20, 0x3000).
		Store(isa.R19, isa.R20, 0).
		StoreB(isa.R19, isa.R20, 8).
		Load(isa.R21, isa.R20, 0).
		LoadB(isa.R22, isa.R20, 8).
		Flush(isa.R20, 0).
		RdCyc(isa.R23).
		Beq(isa.R21, isa.R21, "fin").
		Raw(isa.Instr{Op: isa.OpNop}).
		Label("fin").
		Halt().
		MustBuild()
	res, err := Exec(p, isa.NewMemory(), nil, 1000)
	if err != nil || !res.Halted {
		t.Fatalf("run: %v halted=%v", err, res.Halted)
	}
	if res.Regs[isa.R21] != res.Regs[isa.R19] {
		t.Fatal("store/load roundtrip failed")
	}
}
