package arch

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Warmer is the incremental form of Warmup: it holds the functional
// emulator plus the microarchitectural state it is touch-warming, and
// advances to successive committed-instruction boundaries on demand. At
// any boundary the warm state can be snapshotted into a Checkpoint.
//
// The execution path is identical to a single Warmup call with the same
// final budget — snapshotting at an intermediate boundary never perturbs
// the instructions that follow (every snapshot is a deep copy) — so a
// checkpoint taken at boundary b by a Warmer that previously snapshotted
// earlier boundaries is bit-identical to one captured by a fresh
// Warmup(p, ..., b). This is what makes one continuous warmup pass able
// to serve a whole SimPoint-style multi-checkpoint schedule.
type Warmer struct {
	prog     *isa.Program
	data     *isa.Memory
	hier     *mem.Hierarchy
	bp       *bpred.Predictor
	codeBase uint64

	st       State
	lastLine uint64 // last I-line warmed (0 = none, matching the pipeline)
}

// NewWarmer wraps prog and the given warm-state sinks in an incremental
// warmer positioned at the reset state.
func NewWarmer(p *isa.Program, data *isa.Memory, hier *mem.Hierarchy, bp *bpred.Predictor, codeBase uint64) *Warmer {
	return &Warmer{prog: p, data: data, hier: hier, bp: bp, codeBase: codeBase}
}

// State returns the current architectural state.
func (w *Warmer) State() State { return w.st }

// Halted reports whether the program has halted.
func (w *Warmer) Halted() bool { return w.st.Halted }

// Advance executes functionally until toInstrs committed instructions (or
// halt), touch-warming the memory hierarchy and branch predictor through
// the warm access paths: instruction lines warm the L1I (once per line,
// mirroring the pipeline's fetch), loads warm the TLB and the data path,
// stores warm the write path, conditional branches run a predict/train
// pair, and clflushes flush. Returns the architectural state at the
// boundary.
func (w *Warmer) Advance(toInstrs uint64) State {
	for w.st.Instrs < toInstrs && !w.st.Halted {
		pcAddr := w.codeBase + uint64(w.st.PC)*8
		if line := mem.LineAddr(pcAddr); line != w.lastLine {
			w.hier.WarmFetch(pcAddr)
			w.lastLine = line
		}
		info := w.st.Step(w.prog, w.data)
		switch {
		case info.Branch && info.Cond:
			pred, snap := w.bp.PredictDirection(pcAddr)
			w.bp.Update(pcAddr, info.Taken, pred != info.Taken, snap)
		case info.IsLoad:
			w.hier.WarmTranslate(info.Addr)
			w.hier.WarmLoad(info.Addr)
		case info.Mem:
			w.hier.WarmStore(info.Addr)
		case info.Flush:
			w.hier.Flush(info.FlushAddr)
		}
	}
	return w.st
}

// Snapshot deep-copies the current warm state into a restorable
// Checkpoint whose WarmupInstrs is the executed instruction count, so a
// Machine configured with exactly that warmup budget can Restore it.
func (w *Warmer) Snapshot() *Checkpoint {
	return &Checkpoint{
		WarmupInstrs: w.st.Instrs,
		Arch:         w.st,
		Mem:          w.data.Image(),
		Hier:         w.hier.State(),
		BP:           w.bp.State(),
	}
}
