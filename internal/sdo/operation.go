// Package sdo implements the paper's contribution: Speculative
// Data-Oblivious execution.
//
// It has two halves. The first is the general SDO-operation framework of
// §IV: given a transmitter f, a set of data-oblivious variants Obl-f_i
// (Definition 1: a variant that returns success produced f's result;
// Definition 2: a variant's resource usage is independent of its operands)
// and a DO predictor choosing which variant to run, Operation assembles the
// Obl-f construction of Figure 2 — issue the predicted variant immediately
// with tainted operands, forward the (tainted) result unconditionally, and
// resolve (predictor update or squash) only once the operands untaint.
//
// The second half is the load instance of that framework (§V): the
// location predictors that choose which cache level an Obl-Ld should look
// up. The Obl-Ld datapath itself lives in internal/mem (OblLoad) and the
// event-ordering state machine in internal/pipeline; this package owns the
// prediction policy.
package sdo

// Variant is one data-oblivious implementation Obl-f_i of a transmitter
// (Equation 1). It returns success and, when successful, the same result
// f would have produced; on failure the result is undefined (Definition 1).
//
// Definition 2 (operand-independent resource usage) is a property of the
// implementation that this type cannot enforce by construction; the tests
// check it for the variants shipped here by comparing cost metadata across
// operands.
type Variant[A, R any] func(args A) (success bool, presult R)

// DOPredictor selects which DO variant to execute (Equation 2/3). Predict
// and Update must be functions of untainted inputs only — under STT the PC
// is always untainted, so predictors here key on the PC.
type DOPredictor interface {
	// Predict returns the index of the variant to run for the transmitter
	// at pc.
	Predict(pc uint64) int
	// Update trains the predictor with the variant that would have
	// succeeded. Called only once the operands are untainted (Figure 2,
	// lines 11-16).
	Update(pc uint64, actual int)
}

// Operation is an SDO operation Obl-f assembled from a transmitter's
// reference implementation, its DO variants, and a DO predictor.
type Operation[A, R any] struct {
	// Name identifies the operation in diagnostics.
	Name string
	// Reference is the original transmitter f, used when a failed
	// prediction is re-executed after the squash (Figure 2 line 16).
	Reference func(A) R
	// Variants are the DO variants Obl-f_1..Obl-f_N.
	Variants []Variant[A, R]
	// Predictor selects a variant per dynamic instance.
	Predictor DOPredictor
}

// Issued records Part 1 of Figure 2: the variant chosen, whether it
// succeeded, and the (tainted) result that was unconditionally forwarded.
// Success and Result must be treated as tainted until resolution.
type Issued[R any] struct {
	Variant int
	Success bool
	Result  R
}

// Issue executes Part 1 of Figure 2 for the transmitter at pc with
// (possibly tainted) args: predict a variant, run it, and return its
// outcome. The caller forwards Result to dependents regardless of Success,
// tainting it under STT so no dependent can reveal whether it is correct.
func (op *Operation[A, R]) Issue(pc uint64, args A) Issued[R] {
	i := op.Predictor.Predict(pc)
	if i < 0 || i >= len(op.Variants) {
		i = 0
	}
	ok, res := op.Variants[i](args)
	return Issued[R]{Variant: i, Success: ok, Result: res}
}

// Resolution is the outcome of Part 2 of Figure 2.
type Resolution[R any] struct {
	// Squash is true when the prediction failed: the core must squash
	// instructions starting at the transmitter and replay with Result.
	Squash bool
	// Result is the architecturally correct value: the issued result on
	// success, or the reference re-execution on failure.
	Result R
}

// Resolve executes Part 2 of Figure 2, once args are untainted: on success
// it trains the predictor and confirms the forwarded result; on failure it
// demands a squash and re-executes the reference transmitter (which is now
// safe, since args are untainted).
func (op *Operation[A, R]) Resolve(pc uint64, args A, iss Issued[R]) Resolution[R] {
	if iss.Success {
		op.Predictor.Update(pc, iss.Variant)
		return Resolution[R]{Result: iss.Result}
	}
	// Optional update with the correct variant when known is the caller's
	// choice; the generic framework re-executes f and, if some variant
	// would have succeeded, callers can call Predictor.Update themselves.
	return Resolution[R]{Squash: true, Result: op.Reference(args)}
}

// StaticDOPredictor always predicts the same variant (the paper's static
// predictors, and the "statically predict normal" FP policy of §I-A).
type StaticDOPredictor int

// Predict returns the fixed variant index.
func (s StaticDOPredictor) Predict(uint64) int { return int(s) }

// Update is a no-op: static predictors have no state, and therefore
// trivially satisfy the no-tainted-updates rule.
func (s StaticDOPredictor) Update(uint64, int) {}
