package sdo

// ExecuteAll is the naïve data-oblivious strategy §I-A describes before
// introducing prediction: run *every* DO variant of the transmitter and,
// once all complete, select the result of the one that succeeded. It is
// secure without a predictor — which variant produced the result is hidden
// because all of them always run and the consumer waits for the slowest —
// but it pays worst-case work and worst-case latency on every invocation.
//
// The SDO paper's contribution is precisely to replace this with a safe
// prediction; ExecuteAll exists as the baseline that motivates it, and for
// transmitters whose variant set is small enough that worst-case execution
// is acceptable.
type ExecuteAll[A, R any] struct {
	// Variants are the DO variants; at least one must succeed for every
	// reachable argument, otherwise Run reports ok == false.
	Variants []Variant[A, R]
	// Cost returns the latency of variant i (a constant per variant, by
	// Definition 2). Optional: used by RunCost.
	Cost func(i int) uint64
}

// Run executes every variant and returns the first (closest-to-index-0)
// successful result. ok is false when no variant succeeded — the caller
// must then treat the operation like a failed prediction (squash and
// re-execute non-speculatively).
func (e *ExecuteAll[A, R]) Run(args A) (result R, ok bool) {
	found := false
	var out R
	// Every variant runs unconditionally: resource usage is the same for
	// all arguments.
	for _, v := range e.Variants {
		success, r := v(args)
		if success && !found {
			out = r
			found = true
		}
	}
	return out, found
}

// RunCost executes every variant like Run and also returns the operation's
// latency: the maximum variant cost, independent of which variant
// succeeded (the consumer may not learn which class the argument was in).
func (e *ExecuteAll[A, R]) RunCost(args A) (result R, ok bool, latency uint64) {
	result, ok = e.Run(args)
	if e.Cost != nil {
		for i := range e.Variants {
			if c := e.Cost(i); c > latency {
				latency = c
			}
		}
	}
	return result, ok, latency
}
