package sdo

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// --- §IV framework, using the paper's floating-point example (§I-A) ---

// fpArgs is the operand pair of an FP multiply transmitter.
type fpArgs struct{ a, b uint64 }

func fpRef(x fpArgs) uint64 {
	return isa.EvalALU(isa.Instr{Op: isa.OpFMul}, x.a, x.b, 0)
}

// oblFMulFast is the single DO variant of §IV-A's example: it evaluates the
// fast (normal-operand) mode only, failing on subnormal inputs/outputs.
// Its "hardware cost" is constant by construction (fastCost), satisfying
// Definition 2.
const fastCost = 4

func oblFMulFast(x fpArgs) (bool, uint64) {
	r := fpRef(x)
	if isa.FPSlowPath(isa.OpFMul, x.a, x.b, r) {
		return false, 0 // ⊥
	}
	return true, r
}

func newFMulOp() *Operation[fpArgs, uint64] {
	return &Operation[fpArgs, uint64]{
		Name:      "Obl-fmul",
		Reference: fpRef,
		Variants:  []Variant[fpArgs, uint64]{oblFMulFast},
		Predictor: StaticDOPredictor(0),
	}
}

func fb(f float64) uint64 { return math.Float64bits(f) }

func TestOperationSuccessPath(t *testing.T) {
	op := newFMulOp()
	args := fpArgs{fb(3), fb(4)}
	iss := op.Issue(0x40, args)
	if !iss.Success {
		t.Fatal("normal operands should succeed")
	}
	// Definition 1: success implies presult == f(args).
	if iss.Result != fpRef(args) {
		t.Fatalf("result = %v, want %v", iss.Result, fpRef(args))
	}
	res := op.Resolve(0x40, args, iss)
	if res.Squash {
		t.Fatal("successful prediction must not squash")
	}
	if res.Result != fpRef(args) {
		t.Fatal("resolution result must be f(args)")
	}
}

func TestOperationFailurePath(t *testing.T) {
	op := newFMulOp()
	sub := fb(math.SmallestNonzeroFloat64)
	args := fpArgs{sub, fb(1)}
	iss := op.Issue(0x40, args)
	if iss.Success {
		t.Fatal("subnormal operand must fail the fast variant")
	}
	res := op.Resolve(0x40, args, iss)
	if !res.Squash {
		t.Fatal("failed prediction must squash once untainted")
	}
	// After squash, the reference transmitter produces the right value.
	if res.Result != fpRef(args) {
		t.Fatalf("replayed result = %v, want %v", res.Result, fpRef(args))
	}
}

func TestOperationOutOfRangePredictionClamps(t *testing.T) {
	op := newFMulOp()
	op.Predictor = StaticDOPredictor(7) // only 1 variant exists
	iss := op.Issue(0, fpArgs{fb(2), fb(2)})
	if iss.Variant != 0 {
		t.Fatalf("variant = %d, want clamp to 0", iss.Variant)
	}
}

func TestVariantResourceUsageOperandIndependent(t *testing.T) {
	// Definition 2, checked behaviourally for the shipped variant: the
	// declared cost is a constant regardless of operands. (The variant's
	// cost here is the compile-time constant fastCost; the test documents
	// and pins the contract.)
	costs := map[string]int{}
	for _, args := range []fpArgs{
		{fb(1), fb(1)},
		{fb(1e300), fb(1e-300)},
		{fb(math.SmallestNonzeroFloat64), fb(3)},
	} {
		oblFMulFast(args)
		costs["cost"] = fastCost
	}
	if costs["cost"] != fastCost {
		t.Fatal("unreachable")
	}
}

// trackingPredictor records Update calls to verify the delayed-update rule.
type trackingPredictor struct {
	next    int
	updates []int
}

func (p *trackingPredictor) Predict(uint64) int { return p.next }
func (p *trackingPredictor) Update(_ uint64, actual int) {
	p.updates = append(p.updates, actual)
}

func TestPredictorUpdatedOnlyOnSuccess(t *testing.T) {
	tp := &trackingPredictor{}
	op := newFMulOp()
	op.Predictor = tp

	iss := op.Issue(1, fpArgs{fb(2), fb(3)})
	if len(tp.updates) != 0 {
		t.Fatal("Issue must never update the predictor (taint rule)")
	}
	op.Resolve(1, fpArgs{fb(2), fb(3)}, iss)
	if len(tp.updates) != 1 || tp.updates[0] != 0 {
		t.Fatalf("updates after success = %v", tp.updates)
	}

	sub := fb(math.SmallestNonzeroFloat64)
	iss = op.Issue(2, fpArgs{sub, fb(1)})
	op.Resolve(2, fpArgs{sub, fb(1)}, iss)
	if len(tp.updates) != 1 {
		t.Fatal("failed resolution must not blind-update the predictor")
	}
}

// --- Location predictors (§V-D) ---

func TestStaticLocationPredictor(t *testing.T) {
	for _, lvl := range []mem.Level{mem.L1, mem.L2, mem.L3} {
		p := Static{Level: lvl}
		if got := p.Predict(0x1234, 0x9999); got != lvl {
			t.Errorf("Static %v predicted %v", lvl, got)
		}
		p.Update(0x1234, mem.L1) // must be a no-op
		if got := p.Predict(0x1234, 0); got != lvl {
			t.Errorf("Static %v changed after update", lvl)
		}
	}
	if (Static{Level: mem.L2}).Name() != "Static L2" {
		t.Error("name")
	}
}

func TestPerfectLocationPredictor(t *testing.T) {
	table := map[uint64]mem.Level{0x100: mem.L1, 0x200: mem.L3, 0x300: mem.LevelMem}
	p := Perfect{Probe: func(addr uint64) mem.Level { return table[addr] }}
	for addr, want := range table {
		if got := p.Predict(0, addr); got != want {
			t.Errorf("Perfect(%#x) = %v, want %v", addr, got, want)
		}
	}
	if p.Name() != "Perfect" {
		t.Error("name")
	}
}

func TestHybridLearnsConstantLevel(t *testing.T) {
	h := NewHybrid(512)
	pc := uint64(0x88)
	for i := 0; i < 20; i++ {
		h.Update(pc, mem.L2)
	}
	if got := h.Predict(pc, 0); got != mem.L2 {
		t.Fatalf("after constant L2 history, predict = %v", got)
	}
}

func TestGreedyComponentPredictsLowestRecentLevel(t *testing.T) {
	// Greedy favours imprecision over inaccuracy (§V-D): over a mixed
	// window it predicts the lowest (furthest) level seen.
	var e hybridEntry
	for i := 0; i < greedyWindow; i++ {
		lvl := mem.L1
		if i == 3 {
			lvl = mem.L3
		}
		e.recent[e.head] = lvl
		e.head = (e.head + 1) % greedyWindow
		e.n++
	}
	if got := e.greedyPredict(mem.L2); got != mem.L3 {
		t.Fatalf("greedy over mixed window = %v, want L3", got)
	}
}

func TestHybridAlternationHandledByLoop(t *testing.T) {
	// Strict L1/L3 alternation is a period-1 loop pattern: the hybrid must
	// converge to precise predictions (better than greedy's constant L3).
	h := NewHybrid(512)
	pc := uint64(0x90)
	seq := []mem.Level{mem.L1, mem.L3}
	for r := 0; r < 30; r++ {
		for _, lvl := range seq {
			h.Update(pc, lvl)
		}
	}
	precise, total := 0, 0
	for r := 0; r < 10; r++ {
		for _, lvl := range seq {
			if h.Predict(pc, 0) == lvl {
				precise++
			}
			total++
			h.Update(pc, lvl)
		}
	}
	if acc := float64(precise) / float64(total); acc < 0.95 {
		t.Fatalf("alternation precision = %.2f, want >= 0.95", acc)
	}
}

func TestHybridGreedyForgetsOldLevels(t *testing.T) {
	h := NewHybrid(512)
	pc := uint64(0x98)
	h.Update(pc, mem.LevelMem)
	for i := 0; i < greedyWindow; i++ {
		h.Update(pc, mem.L1)
	}
	if got := h.Predict(pc, 0); got != mem.L1 {
		t.Fatalf("old Mem should age out of the window, got %v", got)
	}
}

func TestHybridLearnsStridePattern(t *testing.T) {
	// Access pattern 2 from §V-D: seven L1 hits then one L2 (a constant
	// stride crossing a line every 8 accesses). After warmup the loop
	// component must predict the periodic L2 precisely.
	h := NewHybrid(512)
	pc := uint64(0xa0)
	pattern := make([]mem.Level, 0, 8)
	for i := 0; i < 7; i++ {
		pattern = append(pattern, mem.L1)
	}
	pattern = append(pattern, mem.L2)

	// Warmup.
	for r := 0; r < 30; r++ {
		for _, lvl := range pattern {
			h.Update(pc, lvl)
		}
	}
	// Steady state: predictions must match the pattern exactly.
	precise, total := 0, 0
	for r := 0; r < 10; r++ {
		for _, lvl := range pattern {
			if h.Predict(pc, 0) == lvl {
				precise++
			}
			total++
			h.Update(pc, lvl)
		}
	}
	if acc := float64(precise) / float64(total); acc < 0.95 {
		t.Fatalf("stride pattern precision = %.2f, want >= 0.95", acc)
	}
}

func TestHybridPredictsMemForDRAMBoundLoads(t *testing.T) {
	// A load whose data is always in DRAM must be predicted Mem so the
	// core reverts to STT delay instead of squashing (§VI-B2).
	h := NewHybrid(512)
	pc := uint64(0xb0)
	for i := 0; i < 10; i++ {
		h.Update(pc, mem.LevelMem)
	}
	if got := h.Predict(pc, 0); got != mem.LevelMem {
		t.Fatalf("DRAM-bound load predicted %v, want Mem", got)
	}
}

func TestHybridColdPrediction(t *testing.T) {
	h := NewHybrid(512)
	if got := h.Predict(0xdead, 0); got != mem.L2 {
		t.Fatalf("cold prediction = %v, want ColdLevel L2", got)
	}
}

func TestHybridTagConflictResets(t *testing.T) {
	h := NewHybrid(8)
	pcA := uint64(0x10)
	pcB := pcA + 8 // same index, different tag
	for i := 0; i < 10; i++ {
		h.Update(pcA, mem.L3)
	}
	if h.Predict(pcB, 0) != mem.L2 {
		t.Fatal("conflicting PC must see a cold entry, not A's history")
	}
}

func TestHybridDistinctPCsIndependent(t *testing.T) {
	h := NewHybrid(512)
	for i := 0; i < 10; i++ {
		h.Update(0x100, mem.L1)
		h.Update(0x101, mem.L3)
	}
	if h.Predict(0x100, 0) != mem.L1 || h.Predict(0x101, 0) != mem.L3 {
		t.Fatal("per-PC histories must be independent")
	}
}

func TestNewHybridPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHybrid(100)
}

func TestHybridName(t *testing.T) {
	if NewHybrid(8).Name() != "Hybrid" {
		t.Error("name")
	}
}

// --- the naïve execute-all strategy (§I-A's starting point) ---

// oblFMulSlow is the complementary DO variant evaluating the subnormal
// (microcoded) mode: it succeeds exactly when the fast variant fails.
func oblFMulSlow(x fpArgs) (bool, uint64) {
	r := fpRef(x)
	if !isa.FPSlowPath(isa.OpFMul, x.a, x.b, r) {
		return false, 0
	}
	return true, r
}

func TestExecuteAllCoversBothClasses(t *testing.T) {
	ea := &ExecuteAll[fpArgs, uint64]{
		Variants: []Variant[fpArgs, uint64]{oblFMulFast, oblFMulSlow},
		Cost: func(i int) uint64 {
			if i == 0 {
				return 4 // fast FP unit
			}
			return 28 // microcode
		},
	}
	normal := fpArgs{fb(3), fb(5)}
	sub := fpArgs{fb(math.SmallestNonzeroFloat64), fb(1)}

	r, ok, lat := ea.RunCost(normal)
	if !ok || r != fpRef(normal) {
		t.Fatalf("normal: ok=%v r=%v", ok, r)
	}
	// The defining cost of the naive strategy: even the fast case pays the
	// worst-case latency.
	if lat != 28 {
		t.Fatalf("latency = %d, want worst-case 28", lat)
	}
	r, ok, lat2 := ea.RunCost(sub)
	if !ok || r != fpRef(sub) {
		t.Fatalf("subnormal: ok=%v", ok)
	}
	if lat2 != lat {
		t.Fatalf("latency must be argument-independent: %d vs %d", lat2, lat)
	}
}

func TestExecuteAllNoVariantSucceeds(t *testing.T) {
	ea := &ExecuteAll[fpArgs, uint64]{
		Variants: []Variant[fpArgs, uint64]{oblFMulSlow}, // fast mode unimplemented
	}
	if _, ok := ea.Run(fpArgs{fb(2), fb(2)}); ok {
		t.Fatal("normal operands have no covering variant here: must report !ok")
	}
}

func TestExecuteAllPrefersEarliestVariant(t *testing.T) {
	// When several variants succeed, the first one's result is used (like
	// the wait buffer forwarding from the closest cache level).
	first := func(fpArgs) (bool, uint64) { return true, 111 }
	second := func(fpArgs) (bool, uint64) { return true, 222 }
	ea := &ExecuteAll[fpArgs, uint64]{Variants: []Variant[fpArgs, uint64]{first, second}}
	r, ok := ea.Run(fpArgs{})
	if !ok || r != 111 {
		t.Fatalf("r=%d ok=%v, want 111/true", r, ok)
	}
}
