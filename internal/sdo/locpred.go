package sdo

import "repro/internal/mem"

// LocationPredictor predicts which memory level an Obl-Ld should look up
// (§V-D). A prediction of mem.LevelMem means "the data is in DRAM": per
// §VI-B2 the core then reverts to STT's delay-until-safe for that load
// instead of issuing an Obl-Ld, avoiding a guaranteed squash.
//
// Predict takes the load's static PC — public information under STT — and,
// for the oracle predictor only, the load address. Update is called only
// when the load is safe (per §V-C3: on success with the found level; after
// a failed Obl-Ld, with the level the validation found data in).
type LocationPredictor interface {
	Predict(pc uint64, addr uint64) mem.Level
	Update(pc uint64, actual mem.Level)
	Name() string
}

// Static always predicts a fixed cache level (Table II's Static L1/L2/L3).
type Static struct{ Level mem.Level }

// Predict returns the fixed level.
func (s Static) Predict(uint64, uint64) mem.Level { return s.Level }

// Update is a no-op.
func (s Static) Update(uint64, mem.Level) {}

// Name returns e.g. "Static L2".
func (s Static) Name() string { return "Static " + s.Level.String() }

// Perfect is the oracle predictor of Table II: it always predicts the
// level that actually holds the data, by probing the hierarchy with the
// load address. It exists to bound SDO's potential (§VIII-B); a real
// implementation could not use the tainted address.
type Perfect struct {
	// Probe returns the closest level currently holding addr.
	Probe func(addr uint64) mem.Level
}

// Predict returns the true level (LevelMem delays the load until safe).
func (p Perfect) Predict(_ uint64, addr uint64) mem.Level { return p.Probe(addr) }

// Update is a no-op.
func (p Perfect) Update(uint64, mem.Level) {}

// Name returns "Perfect".
func (p Perfect) Name() string { return "Perfect" }

// hybridEntry is one per-PC slot of the Hybrid predictor. The fields pack
// conceptually into 8 bytes (greedy ring: 8x3 bits; loop: 2x6+2+2 bits;
// choice: 2 bits; partial tag), giving the paper's 4 KB budget at 512
// entries.
type hybridEntry struct {
	tag uint32

	// greedy state: the levels of the last GreedyWindow dynamic instances.
	recent [greedyWindow]mem.Level
	n      uint8 // valid entries in recent
	head   uint8

	// loop state: runs of L1 hits separated by single lower-level hits.
	curRun   uint16    // L1 hits since the last non-L1 access
	period   uint16    // learned run length
	lowLevel mem.Level // the level the periodic miss goes to
	perConf  uint8     // 2-bit confidence that period repeats

	// choice: 2-bit counter; >=2 selects loop, else greedy.
	choice uint8
}

const greedyWindow = 8

// Hybrid is the paper's hybrid location predictor (§V-D): per-PC, it
// arbitrates between a greedy component (predict the lowest level seen in
// the last m instances — favouring imprecision over inaccuracy) and a loop
// component (predict the frequency of lower-level accesses in
// constant-stride streams), via a saturating confidence counter.
type Hybrid struct {
	entries []hybridEntry
	mask    uint32

	// ColdLevel is predicted for PCs with no history yet.
	ColdLevel mem.Level
}

// NewHybrid returns a hybrid predictor with the given number of entries
// (power of two; 512 entries ≈ the paper's 4 KB state).
func NewHybrid(entries int) *Hybrid {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("sdo: hybrid entries must be a positive power of two")
	}
	return &Hybrid{
		entries:   make([]hybridEntry, entries),
		mask:      uint32(entries - 1),
		ColdLevel: mem.L2,
	}
}

// Name returns "Hybrid".
func (h *Hybrid) Name() string { return "Hybrid" }

func (h *Hybrid) slot(pc uint64) *hybridEntry {
	idx := uint32(pc) & h.mask
	tag := uint32(pc >> 1)
	e := &h.entries[idx]
	if e.tag != tag {
		*e = hybridEntry{tag: tag}
	}
	return e
}

func (e *hybridEntry) greedyPredict(cold mem.Level) mem.Level {
	if e.n == 0 {
		return cold
	}
	max := mem.LevelNone
	for i := uint8(0); i < e.n; i++ {
		if e.recent[i] > max {
			max = e.recent[i]
		}
	}
	return max
}

func (e *hybridEntry) loopPredict() mem.Level {
	if e.perConf < 2 || e.period == 0 {
		// No stable period learned; behave like an L1 predictor within a
		// run (the common case for pattern 2 is L1 hits).
		return mem.L1
	}
	if e.curRun >= e.period {
		// The next access is due to miss to the learned lower level.
		return e.lowLevel
	}
	return mem.L1
}

// Predict returns the level for the load at pc (addr is ignored: the
// hybrid predictor is PC-indexed, as evaluated in the paper).
func (h *Hybrid) Predict(pc uint64, _ uint64) mem.Level {
	e := h.slot(pc)
	if e.choice >= 2 {
		return e.loopPredict()
	}
	return e.greedyPredict(h.ColdLevel)
}

// Update trains all three components with the actual level.
func (h *Hybrid) Update(pc uint64, actual mem.Level) {
	e := h.slot(pc)

	// What would each component have predicted? (Evaluated before state
	// changes, mirroring hardware that trains on the resolved instance.)
	gp := e.greedyPredict(h.ColdLevel)
	lp := e.loopPredict()

	// Choice policy: inaccuracy (predicting above the actual level) causes
	// a squash, which costs far more than imprecision costs latency — so a
	// component that would have squashed is deselected hard, and exact
	// matches nudge the counter (the §V-D "favour imprecision over
	// inaccuracy" principle applied to arbitration).
	gGood := gp == actual
	lGood := lp == actual
	gBad := gp < actual && gp != mem.LevelMem
	lBad := lp < actual && lp != mem.LevelMem
	switch {
	case lBad && !gBad:
		e.choice = 0 // the loop component would have squashed: use greedy
	case gBad && !lBad:
		if e.choice < 3 {
			e.choice++
		}
	case lGood && !gGood:
		if e.choice < 3 {
			e.choice++
		}
	case gGood && !lGood:
		if e.choice > 0 {
			e.choice--
		}
	}

	// Greedy ring.
	e.recent[e.head] = actual
	e.head = (e.head + 1) % greedyWindow
	if e.n < greedyWindow {
		e.n++
	}

	// Loop component.
	if actual == mem.L1 {
		if e.curRun < ^uint16(0) {
			e.curRun++
		}
		return
	}
	if e.period != 0 && e.curRun == e.period && e.lowLevel == actual {
		if e.perConf < 3 {
			e.perConf++
		}
	} else {
		if e.perConf > 0 {
			e.perConf--
		}
		e.period = e.curRun
		e.lowLevel = actual
	}
	e.curRun = 0
}
