package specexec

import (
	"testing"
	"time"
)

func TestGovernorBudgetExhaustion(t *testing.T) {
	g := NewGovernor(GovernorConfig{BudgetCPU: 100 * time.Millisecond})
	if !g.Allow() {
		t.Fatal("fresh governor should allow")
	}
	g.Waste(60 * time.Millisecond)
	if !g.Allow() {
		t.Fatal("under budget should still allow")
	}
	g.Waste(60 * time.Millisecond)
	if g.State() != StateExhausted {
		t.Fatalf("state %v, want exhausted past the budget", g.State())
	}
	if g.Allow() {
		t.Fatal("exhausted governor should not allow")
	}
	// Exhaustion is sticky: later hits do not resurrect speculation.
	for i := 0; i < 100; i++ {
		g.Hit(time.Millisecond)
	}
	if g.State() != StateExhausted {
		t.Fatal("exhaustion should be sticky")
	}
}

func TestGovernorHitRateThrottle(t *testing.T) {
	g := NewGovernor(GovernorConfig{MinHitRate: 0.5, MinSamples: 4})
	// Below MinSamples: never throttled, whatever the rate.
	g.Waste(time.Millisecond)
	g.Waste(time.Millisecond)
	if g.State() != StateOK {
		t.Fatalf("state %v with only 2 samples, want ok", g.State())
	}
	g.Waste(time.Millisecond)
	g.Waste(time.Millisecond)
	if g.State() != StateThrottled {
		t.Fatalf("state %v at 0/4 hit-rate, want throttled", g.State())
	}
	if g.Allow() {
		t.Fatal("throttled governor should not allow")
	}
	// Recoverable: demand hits on already pre-executed entries raise the
	// rate back over the bar.
	for i := 0; i < 4; i++ {
		g.Hit(time.Millisecond)
	}
	if g.State() != StateOK {
		t.Fatalf("state %v at 4/8 hit-rate, want ok again", g.State())
	}
}

func TestGovernorSnapshot(t *testing.T) {
	g := NewGovernor(GovernorConfig{BudgetCPU: time.Second})
	g.Hit(200 * time.Millisecond)
	g.Waste(100 * time.Millisecond)
	st := g.Snapshot()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.HitRate)
	}
	if st.UsefulCPUSeconds != 0.2 || st.WastedCPUSeconds != 0.1 {
		t.Fatalf("cpu accounting %v/%v, want 0.2/0.1", st.UsefulCPUSeconds, st.WastedCPUSeconds)
	}
	if st.State != "ok" {
		t.Fatalf("state %q, want ok", st.State)
	}
}

func TestTrackerClaimAndExpiry(t *testing.T) {
	tr := NewTracker(2)
	tr.Add("k1", 10*time.Millisecond)
	tr.Add("k2", 20*time.Millisecond)
	if tr.Len() != 2 {
		t.Fatalf("len %d, want 2", tr.Len())
	}
	cpu, ok := tr.Claim("k1")
	if !ok || cpu != 10*time.Millisecond {
		t.Fatalf("claim k1 = %v,%v", cpu, ok)
	}
	if _, ok := tr.Claim("k1"); ok {
		t.Fatal("double claim succeeded")
	}
	if _, ok := tr.Claim("absent"); ok {
		t.Fatal("claimed an untracked key")
	}
	// k2 survives 2 rounds, expires on the 3rd.
	for i := 0; i < 2; i++ {
		if n, _ := tr.Advance(); n != 0 {
			t.Fatalf("round %d expired %d entries early", i, n)
		}
	}
	n, cpu := tr.Advance()
	if n != 1 || cpu != 20*time.Millisecond {
		t.Fatalf("expiry = %d entries, %v cpu; want 1, 20ms", n, cpu)
	}
	if tr.Len() != 0 {
		t.Fatalf("len %d after expiry, want 0", tr.Len())
	}
}
