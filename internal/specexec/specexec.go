// Package specexec is a safe-prediction layer above the simulator: it
// applies the paper's thesis — speculation is free when mispredictions
// cannot leave observable side effects — to the sweep service itself.
//
// The service's unit of speculation is a whole simulation cell. The
// predictor learns from the submission history which sweeps tend to
// follow which (a sampled survey is usually confirmed by a detailed run;
// a new workload probed on a variant subset usually gets the full grid
// next; an ablation study is usually followed by a re-sweep of the
// touched cells) and emits confidence-scored candidate requests. The
// service pre-executes their cells on *idle* worker capacity into the
// content-addressed result cache, so the real request — if it arrives —
// is a pure cache hit.
//
// Squashing is sound by construction: a cancelled or wrong pre-execution
// leaves nothing behind except (possibly) cache entries, and cache
// entries are sound regardless of why they were produced, because the
// simulator is deterministic (see the simsvc package comment). The only
// cost of a misprediction is wasted CPU, which the Governor bounds.
package specexec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Submission is one observed sweep request: its canonical signature plus
// the normalized request document it was derived from. The document must
// round-trip through the service's request decoder, because predicted
// candidates are re-submitted through the same resolution path.
type Submission struct {
	Sig string          `json:"sig"`
	Raw json.RawMessage `json:"req"`
}

// Candidate is one predicted follow-up request. Reason is the rule that
// produced it: "markov2" / "markov1" (history transitions) or one of the
// grid heuristics ("sampled-confirmation", "grid-completion",
// "ablation-resweep").
type Candidate struct {
	Sig        string          `json:"sig"`
	Raw        json.RawMessage `json:"req"`
	Confidence float64         `json:"confidence"`
	Reason     string          `json:"reason"`
}

// Signature derives the canonical signature of a request document:
// a short SHA-256 over the JSON with object keys sorted, so two encodings
// of the same request (struct-ordered vs map-ordered) sign identically.
// Non-JSON input is hashed as-is rather than rejected — the signature
// only needs to be stable, not meaningful.
func Signature(raw json.RawMessage) string {
	b := canonical(raw)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// canonical re-encodes a JSON document with sorted object keys
// (encoding/json sorts map keys); undecodable input is returned as-is.
func canonical(raw json.RawMessage) []byte {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return raw
	}
	b, err := json.Marshal(v)
	if err != nil {
		return raw
	}
	return b
}
