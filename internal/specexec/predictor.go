package specexec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// PredictorConfig tunes the history predictor.
type PredictorConfig struct {
	// JournalPath persists the submission history as JSONL ("" disables
	// persistence; the in-memory predictor still works).
	JournalPath string
	// MaxHistory bounds the transition history (0: default 512). The
	// journal is compacted to the bound once it grows well past it.
	MaxHistory int
	// MinConfidence drops candidates scored below it (0: default 0.2).
	MinConfidence float64
}

func (c PredictorConfig) withDefaults() PredictorConfig {
	if c.MaxHistory <= 0 {
		c.MaxHistory = 512
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.2
	}
	return c
}

// markovSep joins two signatures into an order-2 context key.
const markovSep = "\x1f"

// compactFactor triggers journal compaction once the file holds this
// many times MaxHistory entries.
const compactFactor = 4

// Predictor learns which sweep requests tend to follow which. It keeps
// order-1 and order-2 Markov transition tables over canonical request
// signatures, plus enough request structure to apply grid-completion
// heuristics to the most recent submission.
type Predictor struct {
	cfg PredictorConfig

	mu    sync.Mutex
	hist  []string                   // signatures, oldest first, bounded
	raw   map[string]json.RawMessage // sig -> latest request document
	t1    map[string]map[string]int  // order-1: prev -> next -> count
	t2    map[string]map[string]int  // order-2: prev2+prev1 -> next -> count
	seen  map[string]bool            // workload names ever submitted
	novel bool                       // latest submission introduced a new workload

	journalLen  int // entries in the journal file (for compaction)
	journalErrs int // write failures (journal degrades to memory-only)
}

// NewPredictor builds a predictor and, when a journal path is set,
// replays the persisted history. An unreadable journal never prevents
// startup: the predictor starts cold and overwrites on the next append.
func NewPredictor(cfg PredictorConfig) *Predictor {
	p := &Predictor{
		cfg:  cfg.withDefaults(),
		raw:  make(map[string]json.RawMessage),
		t1:   make(map[string]map[string]int),
		t2:   make(map[string]map[string]int),
		seen: make(map[string]bool),
	}
	p.load()
	return p
}

// requestDoc mirrors the request fields the heuristics inspect (tags
// match simsvc.SweepRequest).
type requestDoc struct {
	Workloads []string `json:"workloads"`
	Variants  []string `json:"variants"`
	SimMode   string   `json:"sim_mode"`
	Ablations bool     `json:"ablations"`
}

// load replays the journal (best-effort: malformed lines are skipped).
func (p *Predictor) load() {
	if p.cfg.JournalPath == "" {
		return
	}
	f, err := os.Open(p.cfg.JournalPath)
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var sub Submission
		if err := json.Unmarshal([]byte(line), &sub); err != nil || sub.Sig == "" {
			continue
		}
		p.observeLocked(sub)
		p.journalLen++
	}
}

// Observe records one live submission: the transition tables and
// heuristic state are updated and the entry is appended to the journal.
func (p *Predictor) Observe(sub Submission) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observeLocked(sub)
	p.appendLocked(sub)
}

// observeLocked updates in-memory state only (shared by Observe and
// journal replay). Caller holds p.mu (or has exclusive access in load).
func (p *Predictor) observeLocked(sub Submission) {
	var doc requestDoc
	json.Unmarshal(sub.Raw, &doc)
	p.novel = false
	for _, w := range doc.Workloads {
		if !p.seen[w] {
			p.seen[w] = true
			p.novel = true
		}
	}
	p.raw[sub.Sig] = sub.Raw
	if n := len(p.hist); n >= 1 {
		prev := p.hist[n-1]
		bump(p.t1, prev, sub.Sig)
		if n >= 2 {
			bump(p.t2, p.hist[n-2]+markovSep+prev, sub.Sig)
		}
	}
	p.hist = append(p.hist, sub.Sig)
	if len(p.hist) > p.cfg.MaxHistory {
		p.hist = p.hist[len(p.hist)-p.cfg.MaxHistory:]
	}
}

func bump(t map[string]map[string]int, ctx, next string) {
	m := t[ctx]
	if m == nil {
		m = make(map[string]int)
		t[ctx] = m
	}
	m[next]++
}

// appendLocked writes one journal line; after a few failures the journal
// degrades to memory-only rather than hammering a dead disk.
func (p *Predictor) appendLocked(sub Submission) {
	if p.cfg.JournalPath == "" || p.journalErrs >= 3 {
		return
	}
	if p.journalLen >= compactFactor*p.cfg.MaxHistory {
		p.compactLocked()
	}
	line, err := json.Marshal(sub)
	if err != nil {
		return
	}
	f, err := os.OpenFile(p.cfg.JournalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		p.journalErrs++
		return
	}
	_, werr := fmt.Fprintf(f, "%s\n", line)
	if cerr := f.Close(); werr != nil || cerr != nil {
		p.journalErrs++
		return
	}
	p.journalErrs = 0
	p.journalLen++
}

// compactLocked rewrites the journal with just the bounded history
// (atomic temp+rename, like the cache and checkpoint stores).
func (p *Predictor) compactLocked() {
	tmp := p.cfg.JournalPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	w := bufio.NewWriter(f)
	ok := true
	for _, sig := range p.hist {
		line, err := json.Marshal(Submission{Sig: sig, Raw: p.raw[sig]})
		if err != nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
			ok = false
			break
		}
	}
	if err := w.Flush(); err != nil {
		ok = false
	}
	if err := f.Close(); err != nil {
		ok = false
	}
	if !ok {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, p.cfg.JournalPath); err != nil {
		os.Remove(tmp)
		return
	}
	p.journalLen = len(p.hist)
}

// Predict scores likely follow-ups to the latest submission: order-2
// transitions first (full weight), order-1 (damped), then the grid
// heuristics; per signature the highest-confidence rule wins. The latest
// submission itself is never a candidate (its cells are already demand
// work), and candidates below MinConfidence are dropped. The result is
// sorted by confidence (ties by signature) for deterministic scheduling.
func (p *Predictor) Predict() []Candidate {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.hist)
	if n == 0 {
		return nil
	}
	last := p.hist[n-1]
	cands := make(map[string]Candidate)
	add := func(sig string, raw json.RawMessage, conf float64, reason string) {
		if sig == last || raw == nil || conf < p.cfg.MinConfidence {
			return
		}
		if c, ok := cands[sig]; ok && c.Confidence >= conf {
			return
		}
		cands[sig] = Candidate{Sig: sig, Raw: raw, Confidence: conf, Reason: reason}
	}
	if n >= 2 {
		if m := p.t2[p.hist[n-2]+markovSep+last]; len(m) > 0 {
			total := 0
			for _, c := range m {
				total += c
			}
			for sig, c := range m {
				add(sig, p.raw[sig], float64(c)/float64(total), "markov2")
			}
		}
	}
	if m := p.t1[last]; len(m) > 0 {
		total := 0
		for _, c := range m {
			total += c
		}
		for sig, c := range m {
			add(sig, p.raw[sig], 0.8*float64(c)/float64(total), "markov1")
		}
	}
	for _, h := range p.heuristics(p.raw[last]) {
		add(h.Sig, h.Raw, h.Confidence, h.Reason)
	}
	out := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Sig < out[j].Sig
	})
	return out
}

// heuristics derives structural follow-ups from the latest request:
//   - a sampled survey is usually confirmed with a detailed run of the
//     same grid;
//   - a new workload probed on a variant subset usually gets the full
//     variant grid next;
//   - an ablation study is usually followed by a plain re-sweep of the
//     touched configuration.
//
// Caller holds p.mu.
func (p *Predictor) heuristics(raw json.RawMessage) []Candidate {
	if raw == nil {
		return nil
	}
	var doc requestDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil
	}
	var out []Candidate
	if doc.SimMode == "sampled" {
		if c, ok := mutate(raw, 0.5, "sampled-confirmation",
			"sim_mode", "sample_interval_instrs", "sample_max_k", "sample_seed"); ok {
			out = append(out, c)
		}
	}
	if p.novel && len(doc.Variants) > 0 {
		if c, ok := mutate(raw, 0.4, "grid-completion", "variants"); ok {
			out = append(out, c)
		}
	}
	if doc.Ablations {
		if c, ok := mutate(raw, 0.4, "ablation-resweep", "ablations"); ok {
			out = append(out, c)
		}
	}
	return out
}

// mutate produces a candidate from raw with the named keys removed
// (re-encoded canonically: map marshalling sorts keys).
func mutate(raw json.RawMessage, conf float64, reason string, drop ...string) (Candidate, bool) {
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return Candidate{}, false
	}
	for _, k := range drop {
		delete(doc, k)
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return Candidate{}, false
	}
	return Candidate{Sig: Signature(b), Raw: b, Confidence: conf, Reason: reason}, true
}

// Stats describes the predictor for the /spec endpoint.
type Stats struct {
	History       int `json:"history"`
	Order1Entries int `json:"order1_contexts"`
	Order2Entries int `json:"order2_contexts"`
	Workloads     int `json:"workloads_seen"`
}

// Snapshot reports the predictor's state.
func (p *Predictor) Snapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		History:       len(p.hist),
		Order1Entries: len(p.t1),
		Order2Entries: len(p.t2),
		Workloads:     len(p.seen),
	}
}
