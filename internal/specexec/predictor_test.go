package specexec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func sub(t *testing.T, doc string) Submission {
	t.Helper()
	raw := json.RawMessage(doc)
	return Submission{Sig: Signature(raw), Raw: raw}
}

func TestSignatureCanonical(t *testing.T) {
	a := Signature(json.RawMessage(`{"b":1,"a":"x"}`))
	b := Signature(json.RawMessage(`{"a":"x", "b": 1}`))
	if a != b {
		t.Fatalf("signature not canonical: %q vs %q", a, b)
	}
	c := Signature(json.RawMessage(`{"a":"x","b":2}`))
	if a == c {
		t.Fatalf("distinct documents share signature %q", a)
	}
}

func TestPredictMarkovOrder1(t *testing.T) {
	p := NewPredictor(PredictorConfig{})
	a := sub(t, `{"workloads":["mcf_r"],"max_instrs":1000}`)
	b := sub(t, `{"workloads":["mcf_r"],"max_instrs":2000}`)
	// Teach A -> B twice, then land on A again.
	for i := 0; i < 2; i++ {
		p.Observe(a)
		p.Observe(b)
	}
	p.Observe(a)
	cands := p.Predict()
	if len(cands) == 0 {
		t.Fatal("no candidates after A->B history")
	}
	if cands[0].Sig != b.Sig {
		t.Fatalf("top candidate %q (%s), want B %q", cands[0].Sig, cands[0].Reason, b.Sig)
	}
	if cands[0].Confidence <= 0 || cands[0].Confidence > 1 {
		t.Fatalf("confidence %v out of range", cands[0].Confidence)
	}
}

func TestPredictMarkovOrder2Disambiguates(t *testing.T) {
	p := NewPredictor(PredictorConfig{})
	a := sub(t, `{"max_instrs":1}`)
	b := sub(t, `{"max_instrs":2}`)
	c := sub(t, `{"max_instrs":3}`)
	d := sub(t, `{"max_instrs":4}`)
	// A,B -> C (twice); D,B -> D (twice). After [A,B] the order-2 table
	// should put C strictly above D even though order-1 B->{C,D} ties.
	for i := 0; i < 2; i++ {
		p.Observe(a)
		p.Observe(b)
		p.Observe(c)
		p.Observe(d)
		p.Observe(b)
		p.Observe(d)
	}
	p.Observe(a)
	p.Observe(b)
	cands := p.Predict()
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if cands[0].Sig != c.Sig {
		t.Fatalf("top candidate %q (%s), want order-2 winner C %q", cands[0].Sig, cands[0].Reason, c.Sig)
	}
	if cands[0].Reason != "markov2" {
		t.Fatalf("top reason %q, want markov2", cands[0].Reason)
	}
}

func TestPredictNeverRepeatsLast(t *testing.T) {
	p := NewPredictor(PredictorConfig{})
	a := sub(t, `{"max_instrs":1}`)
	for i := 0; i < 3; i++ {
		p.Observe(a) // A -> A self-transitions only
	}
	for _, c := range p.Predict() {
		if c.Sig == a.Sig {
			t.Fatalf("predicted the submission that just arrived (%s)", c.Reason)
		}
	}
}

func TestHeuristicSampledConfirmation(t *testing.T) {
	p := NewPredictor(PredictorConfig{})
	s := sub(t, `{"workloads":["mcf_r"],"max_instrs":20000,"sim_mode":"sampled","sample_max_k":4}`)
	p.Observe(s)
	cands := p.Predict()
	var hit *Candidate
	for i := range cands {
		if cands[i].Reason == "sampled-confirmation" {
			hit = &cands[i]
		}
	}
	if hit == nil {
		t.Fatalf("no sampled-confirmation candidate in %+v", cands)
	}
	var doc map[string]any
	if err := json.Unmarshal(hit.Raw, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["sim_mode"]; ok {
		t.Fatal("confirmation candidate still sampled")
	}
	if _, ok := doc["sample_max_k"]; ok {
		t.Fatal("confirmation candidate kept sampling params")
	}
	if doc["max_instrs"] != float64(20000) {
		t.Fatalf("confirmation candidate lost the grid: %v", doc)
	}
}

func TestHeuristicGridCompletion(t *testing.T) {
	p := NewPredictor(PredictorConfig{})
	// A brand-new workload probed on a variant subset.
	s := sub(t, `{"workloads":["xz_r"],"variants":["Unsafe","SDO-Hybrid"],"max_instrs":1000}`)
	p.Observe(s)
	var hit *Candidate
	for _, c := range p.Predict() {
		if c.Reason == "grid-completion" {
			hit = &c
			break
		}
	}
	if hit == nil {
		t.Fatal("no grid-completion candidate for a new workload probe")
	}
	var doc map[string]any
	json.Unmarshal(hit.Raw, &doc)
	if _, ok := doc["variants"]; ok {
		t.Fatal("grid-completion candidate still restricted to a variant subset")
	}

	// The same request again: the workload is known now, no novelty.
	p.Observe(s)
	for _, c := range p.Predict() {
		if c.Reason == "grid-completion" {
			t.Fatal("grid-completion predicted for an already-seen workload")
		}
	}
}

func TestHeuristicAblationResweep(t *testing.T) {
	p := NewPredictor(PredictorConfig{})
	p.Observe(sub(t, `{"workloads":["mcf_r"],"ablations":true,"max_instrs":1000}`))
	var hit *Candidate
	for _, c := range p.Predict() {
		if c.Reason == "ablation-resweep" {
			hit = &c
			break
		}
	}
	if hit == nil {
		t.Fatal("no ablation-resweep candidate")
	}
	var doc map[string]any
	json.Unmarshal(hit.Raw, &doc)
	if _, ok := doc["ablations"]; ok {
		t.Fatal("resweep candidate still an ablation study")
	}
}

func TestJournalPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.jsonl")
	a := sub(t, `{"max_instrs":1}`)
	b := sub(t, `{"max_instrs":2}`)

	p := NewPredictor(PredictorConfig{JournalPath: path})
	p.Observe(a)
	p.Observe(b)
	p.Observe(a)

	// A fresh predictor over the same journal predicts B after A.
	q := NewPredictor(PredictorConfig{JournalPath: path})
	if st := q.Snapshot(); st.History != 3 {
		t.Fatalf("replayed history %d, want 3", st.History)
	}
	cands := q.Predict()
	if len(cands) == 0 || cands[0].Sig != b.Sig {
		t.Fatalf("restarted predictor candidates %+v, want B first", cands)
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.jsonl")
	p := NewPredictor(PredictorConfig{JournalPath: path, MaxHistory: 4})
	for i := 0; i < 40; i++ {
		p.Observe(sub(t, `{"max_instrs":1}`))
		p.Observe(sub(t, `{"max_instrs":2}`))
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 80 entries at ~60 bytes each would be ~5KB without compaction; the
	// compacted journal holds at most compactFactor*MaxHistory entries.
	if fi.Size() > 4*4*128 {
		t.Fatalf("journal grew unbounded: %d bytes", fi.Size())
	}
	q := NewPredictor(PredictorConfig{JournalPath: path, MaxHistory: 4})
	if st := q.Snapshot(); st.History == 0 || st.History > 4 {
		t.Fatalf("replayed history %d, want 1..4", st.History)
	}
}

func TestMinConfidenceFilters(t *testing.T) {
	p := NewPredictor(PredictorConfig{MinConfidence: 0.9})
	a := sub(t, `{"max_instrs":1}`)
	// A followed by ten different successors: each order-1 edge ~0.1.
	p.Observe(a)
	for i := 0; i < 10; i++ {
		p.Observe(sub(t, fmt.Sprintf(`{"max_instrs":%d}`, 100+i)))
		p.Observe(a)
	}
	for _, c := range p.Predict() {
		if c.Confidence < 0.9 {
			t.Fatalf("candidate below MinConfidence: %+v", c)
		}
	}
}
