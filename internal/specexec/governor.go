package specexec

import (
	"sync"
	"time"
)

// State is the governor's throttle state, exported as a gauge: 0 while
// speculation is productive, 1 while throttled by a low hit-rate, 2 once
// the wasted-compute budget is exhausted (sticky).
type State int

const (
	StateOK State = iota
	StateThrottled
	StateExhausted
)

func (s State) String() string {
	switch s {
	case StateThrottled:
		return "throttled"
	case StateExhausted:
		return "exhausted"
	default:
		return "ok"
	}
}

// GovernorConfig tunes the speculation budget governor.
type GovernorConfig struct {
	// BudgetCPU bounds cumulative wasted compute: once expired, stale or
	// cancelled speculative work exceeds it, speculation is disabled for
	// the life of the process (0: default 5m).
	BudgetCPU time.Duration
	// MinHitRate throttles speculation while the observed hit-rate over
	// resolved speculations sits below it (0: default 0.25). Throttling
	// is recoverable: demand hits on already pre-executed entries raise
	// the rate back over the bar.
	MinHitRate float64
	// MinSamples delays hit-rate throttling until at least this many
	// speculations have resolved (0: default 8), so a cold start is not
	// punished for an empty numerator.
	MinSamples int
}

func (c GovernorConfig) withDefaults() GovernorConfig {
	if c.BudgetCPU <= 0 {
		c.BudgetCPU = 5 * time.Minute
	}
	if c.MinHitRate <= 0 {
		c.MinHitRate = 0.25
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	return c
}

// Governor accounts speculative compute as useful (a demand request
// claimed the pre-executed result) or wasted (cancelled, failed, or
// expired unclaimed) and throttles or disables speculation when the
// overhead stops paying for itself — the service-level analogue of
// snippet-style cancellation thresholds.
type Governor struct {
	cfg GovernorConfig

	mu        sync.Mutex
	hits      uint64
	misses    uint64
	useful    time.Duration
	wasted    time.Duration
	exhausted bool
}

// NewGovernor builds a governor.
func NewGovernor(cfg GovernorConfig) *Governor {
	return &Governor{cfg: cfg.withDefaults()}
}

// Hit credits one useful speculation worth cpu of compute.
func (g *Governor) Hit(cpu time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.hits++
	g.useful += cpu
}

// Waste debits one wasted speculation worth cpu of compute (cancelled
// mid-run, failed, or expired unclaimed).
func (g *Governor) Waste(cpu time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.misses++
	g.wasted += cpu
	if g.wasted > g.cfg.BudgetCPU {
		g.exhausted = true
	}
}

// Allow reports whether new speculative work may start.
func (g *Governor) Allow() bool {
	return g.State() == StateOK
}

// State reports the current throttle state.
func (g *Governor) State() State {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stateLocked()
}

func (g *Governor) stateLocked() State {
	if g.exhausted {
		return StateExhausted
	}
	resolved := g.hits + g.misses
	if resolved >= uint64(g.cfg.MinSamples) &&
		float64(g.hits)/float64(resolved) < g.cfg.MinHitRate {
		return StateThrottled
	}
	return StateOK
}

// GovernorStats describes the governor for the /spec endpoint.
type GovernorStats struct {
	State            string  `json:"state"`
	Hits             uint64  `json:"hits"`
	Misses           uint64  `json:"misses"`
	HitRate          float64 `json:"hit_rate"`
	UsefulCPUSeconds float64 `json:"useful_cpu_seconds"`
	WastedCPUSeconds float64 `json:"wasted_cpu_seconds"`
	BudgetCPUSeconds float64 `json:"budget_cpu_seconds"`
}

// Snapshot reports the governor's accounting.
func (g *Governor) Snapshot() GovernorStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := GovernorStats{
		State:            g.stateLocked().String(),
		Hits:             g.hits,
		Misses:           g.misses,
		UsefulCPUSeconds: g.useful.Seconds(),
		WastedCPUSeconds: g.wasted.Seconds(),
		BudgetCPUSeconds: g.cfg.BudgetCPU.Seconds(),
	}
	if resolved := g.hits + g.misses; resolved > 0 {
		st.HitRate = float64(g.hits) / float64(resolved)
	}
	return st
}

// Tracker remembers which cache entries were produced speculatively and
// what they cost, so a later demand lookup can be credited as a
// speculation hit — and entries nothing ever claims can be expired as
// waste. Rounds advance on each new prediction round; an entry unclaimed
// for StaleRounds rounds expires.
type Tracker struct {
	mu      sync.Mutex
	stale   uint64
	round   uint64
	entries map[string]trackedEntry
}

type trackedEntry struct {
	cpu   time.Duration
	round uint64
}

// NewTracker builds a tracker that expires entries unclaimed after
// staleRounds prediction rounds (<=0: default 4).
func NewTracker(staleRounds int) *Tracker {
	if staleRounds <= 0 {
		staleRounds = 4
	}
	return &Tracker{stale: uint64(staleRounds), entries: make(map[string]trackedEntry)}
}

// Add records a speculatively-produced cache entry and its compute cost.
func (t *Tracker) Add(key string, cpu time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[key] = trackedEntry{cpu: cpu, round: t.round}
}

// Claim consumes a tracked entry, returning its compute cost. The second
// result is false when the key was not speculatively produced (or was
// already claimed or expired).
func (t *Tracker) Claim(key string) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if !ok {
		return 0, false
	}
	delete(t.entries, key)
	return e.cpu, true
}

// Advance starts a new prediction round and expires entries unclaimed
// for the configured number of rounds, returning how many expired and
// their total compute cost (the caller accounts it as waste).
func (t *Tracker) Advance() (expired int, cpu time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.round++
	for k, e := range t.entries {
		if t.round-e.round > t.stale {
			delete(t.entries, k)
			expired++
			cpu += e.cpu
		}
	}
	return expired, cpu
}

// Len reports how many unclaimed speculative entries are tracked.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
