package mem

import (
	"testing"
	"testing/quick"
)

// These tests check Definition 2 at the memory-system level: a DO lookup's
// observable resource interference (bank occupancy seen by a concurrent
// party) must be independent of its address — with the positive control
// that the *normal* path does leak through the same channel.

// l3BankLatency measures core B's access latency to probeAddr at time now,
// right after core A touched victimAddr the same cycle.
func l3BankLatency(t *testing.T, victimAddr, probeAddr uint64, oblivious bool) uint64 {
	t.Helper()
	cfg := DefaultConfig()
	s := NewShared(cfg)
	a := s.AttachCore()
	b := s.AttachCore()
	// Warm both lines into the L3 but keep them out of B's private caches;
	// evict from A's private caches as well so the L3 is really accessed.
	a.Load(0, victimAddr)
	a.Load(10, probeAddr)
	a.L1D().Invalidate(victimAddr)
	a.L2().Invalidate(victimAddr)

	const now = 1000
	if oblivious {
		a.OblLoad(now, victimAddr, L3)
	} else {
		a.Load(now, victimAddr)
	}
	r := b.Load(now, probeAddr)
	return r.Done - now
}

func TestNormalLoadLeaksThroughL3BankContention(t *testing.T) {
	// Positive control: the victim's normal load occupies exactly its
	// address's L3 bank, so the attacker's same-bank probe is slower than a
	// different-bank probe — the port/bank-contention channel (§VI-B2's
	// motivation for all-bank DO lookups).
	probe := uint64(0x10_0000) // some L3-resident line
	sameBank := probe + 8*64*uint64(DefaultConfig().L3.Banks)
	diffBank := probe + 8*64*uint64(DefaultConfig().L3.Banks) + 64

	latSame := l3BankLatency(t, sameBank, probe, false)
	latDiff := l3BankLatency(t, diffBank, probe, false)
	if latSame == latDiff {
		t.Fatalf("bank-contention channel should be observable on the normal path: %d vs %d",
			latSame, latDiff)
	}
}

func TestOblLoadClosesL3BankChannel(t *testing.T) {
	// Definition 2: with the victim using a DO lookup, the attacker's probe
	// latency is identical whatever the victim's address (the Obl-Ld blocks
	// every bank, so interference is a function of "an Obl-Ld ran" only).
	probe := uint64(0x10_0000)
	sameBank := probe + 8*64*uint64(DefaultConfig().L3.Banks)
	diffBank := probe + 8*64*uint64(DefaultConfig().L3.Banks) + 64

	latSame := l3BankLatency(t, sameBank, probe, true)
	latDiff := l3BankLatency(t, diffBank, probe, true)
	if latSame != latDiff {
		t.Fatalf("DO lookup leaked through bank contention: %d vs %d", latSame, latDiff)
	}
}

func TestOblLoadTimingIndependentOfCacheContents(t *testing.T) {
	// Property: for ANY pair of addresses and any warmed state, two
	// hierarchies that differ only in which address the Obl-Ld probes
	// produce identical Obl-Ld timing for the same prediction.
	f := func(a32, b32 uint32, predSel uint8, warm []uint16) bool {
		pred := Level(predSel%3) + L1
		build := func(target uint64) OblResult {
			h := NewHierarchy(DefaultConfig())
			for i, w := range warm {
				h.Load(uint64(i)*7, uint64(w)*64)
			}
			return h.OblLoad(100_000, target, pred)
		}
		ra := build(uint64(a32) & 0xff_ffff)
		rb := build(uint64(b32) & 0xff_ffff)
		return ra.Start == rb.Start && ra.Done == rb.Done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOblLoadMSHROccupancyAddressIndependent(t *testing.T) {
	// The number of MSHRs an Obl-Ld holds depends only on the prediction.
	for _, pred := range []Level{L1, L2, L3} {
		hA := NewHierarchy(DefaultConfig())
		hB := NewHierarchy(DefaultConfig())
		hA.Load(0, 0x4000) // A's target is cached
		hA.OblLoad(500, 0x4000, pred)
		hB.OblLoad(500, 0x999000, pred) // B's target is not
		if a, b := hA.L1D().OutstandingMisses(500), hB.L1D().OutstandingMisses(500); a != b {
			t.Errorf("pred %v: L1 MSHR occupancy differs: %d vs %d", pred, a, b)
		}
		if a, b := hA.L2().OutstandingMisses(500), hB.L2().OutstandingMisses(500); a != b {
			t.Errorf("pred %v: L2 MSHR occupancy differs: %d vs %d", pred, a, b)
		}
	}
}
