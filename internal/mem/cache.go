package mem

// line is one tag-array entry. Caches model tags and replacement state
// only; data lives in isa.Memory (see the package comment).
type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64 // last-touch stamp; larger = more recent
}

// Cache is a single set-associative, banked, write-back/write-allocate
// cache with a bounded MSHR file. It exposes three access paths:
//
//   - Lookup: tag check only, no state change (the DO variant's probe).
//   - Touch / Fill: the normal path — LRU update, allocation, eviction.
//   - Bank and MSHR reservation helpers used by Hierarchy for timing.
type Cache struct {
	cfg      CacheConfig
	sets     [][]line
	setMask  uint64
	stamp    uint64
	bankBusy []uint64

	// mshr maps outstanding miss line-addresses to the cycle their data
	// returns. Entries are pruned lazily.
	mshr map[uint64]uint64

	// Stats.
	Hits, Misses    uint64
	BankWaitCycles  uint64
	MSHRWaitCycles  uint64
	Evictions       uint64
	DirtyWritebacks uint64
	InvalidationsIn uint64
}

// NewCache returns a cache with the given geometry. Sets = Size / (Line *
// Ways); the set count must be a power of two.
func NewCache(cfg CacheConfig) *Cache {
	numSets := cfg.SizeBytes / (LineBytes * cfg.Ways)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("mem: cache set count must be a positive power of two")
	}
	sets := make([][]line, numSets)
	backing := make([]line, numSets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setMask:  uint64(numSets - 1),
		bankBusy: make([]uint64, cfg.Banks),
		mshr:     make(map[uint64]uint64),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) setIdx(lineAddr uint64) uint64 {
	return (lineAddr / LineBytes) & c.setMask
}

// Lookup reports whether the line containing addr is present, without
// modifying any cache state (LRU included). This is the tag-only probe a
// DO variant performs: by construction it cannot perturb state another
// access could observe.
func (c *Cache) Lookup(addr uint64) bool {
	la := LineAddr(addr)
	for i := range c.sets[c.setIdx(la)] {
		l := &c.sets[c.setIdx(la)][i]
		if l.valid && l.tag == la {
			return true
		}
	}
	return false
}

// Touch performs a normal-path tag access: on hit it updates LRU (and the
// dirty bit if write) and returns true. On miss it returns false and
// changes nothing; the caller decides whether to Fill.
func (c *Cache) Touch(addr uint64, write bool) bool {
	la := LineAddr(addr)
	set := c.sets[c.setIdx(la)]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			c.stamp++
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Fill allocates the line containing addr, evicting the LRU way if needed.
// It returns the evicted line's address and whether it was dirty (valid
// only if evicted is true). The filled line is clean unless write is set.
func (c *Cache) Fill(addr uint64, write bool) (evictedAddr uint64, evictedDirty, evicted bool) {
	la := LineAddr(addr)
	set := c.sets[c.setIdx(la)]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == la {
			// Already present (e.g. racing fills); just touch.
			c.stamp++
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			return 0, false, false
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		evicted = true
		evictedAddr = v.tag
		evictedDirty = v.dirty
		c.Evictions++
		if v.dirty {
			c.DirtyWritebacks++
		}
	}
	c.stamp++
	*v = line{valid: true, dirty: write, tag: la, lru: c.stamp}
	return evictedAddr, evictedDirty, evicted
}

// Invalidate removes the line containing addr if present, returning
// whether it was present and whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	la := LineAddr(addr)
	set := c.sets[c.setIdx(la)]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			dirty = set[i].dirty
			set[i] = line{}
			c.InvalidationsIn++
			return true, dirty
		}
	}
	return false, false
}

// bank returns the bank index serving the line containing addr.
func (c *Cache) bank(addr uint64) int {
	return int(LineAddr(addr)/LineBytes) % c.cfg.Banks
}

// ReserveBank models a normal access occupying its address's bank for one
// cycle: the access starts when the bank frees, and the returned start time
// already includes any wait. Stats record contention.
func (c *Cache) ReserveBank(now uint64, addr uint64) (start uint64) {
	b := c.bank(addr)
	start = now
	if c.bankBusy[b] > start {
		c.BankWaitCycles += c.bankBusy[b] - start
		start = c.bankBusy[b]
	}
	c.bankBusy[b] = start + 1
	return start
}

// ReserveAllBanks models a DO lookup: it waits for every bank to free and
// then blocks all of them for dur cycles (§VI-B2 "access all cache banks").
// The wait and hold depend only on prior public contention, never on the
// address.
func (c *Cache) ReserveAllBanks(now, dur uint64) (start uint64) {
	start = now
	for _, busy := range c.bankBusy {
		if busy > start {
			start = busy
		}
	}
	if start > now {
		c.BankWaitCycles += start - now
	}
	for i := range c.bankBusy {
		c.bankBusy[i] = start + dur
	}
	return start
}

// pruneMSHR drops entries whose data has returned by now.
func (c *Cache) pruneMSHR(now uint64) {
	for la, done := range c.mshr {
		if done <= now {
			delete(c.mshr, la)
		}
	}
}

// AcquireMSHR allocates a miss-status register at time now for the line
// containing addr, to be held until the returned start time plus the
// caller-determined completion. If an outstanding miss for the same line
// exists and merge is true, the request piggybacks: it returns that miss's
// completion time in mergedDone. If the file is full, the request waits for
// the earliest release (counted in MSHRWaitCycles).
//
// DO variants call this with merge=false and a synthetic per-request key so
// that MSHR occupancy depends only on the fact the Obl-Ld is executing
// (§VI-B2 "every Obl-Ld must allocate an MSHR; it cannot share").
func (c *Cache) AcquireMSHR(now uint64, key uint64, merge bool) (start uint64, mergedDone uint64, merged bool) {
	c.pruneMSHR(now)
	if merge {
		if done, ok := c.mshr[key]; ok {
			return now, done, true
		}
	}
	start = now
	for len(c.mshr) >= c.cfg.MSHRs {
		// Wait for the earliest outstanding miss to complete.
		min := uint64(0)
		first := true
		for _, done := range c.mshr {
			if first || done < min {
				min = done
				first = false
			}
		}
		if min > start {
			c.MSHRWaitCycles += min - start
			start = min
		}
		c.pruneMSHR(start)
	}
	return start, 0, false
}

// CommitMSHR records the completion time of the miss registered under key.
func (c *Cache) CommitMSHR(key uint64, done uint64) { c.mshr[key] = done }

// OutstandingMisses returns the current number of live MSHR entries as of
// time now (for tests).
func (c *Cache) OutstandingMisses(now uint64) int {
	c.pruneMSHR(now)
	return len(c.mshr)
}

// Contents returns the number of valid lines (for tests).
func (c *Cache) Contents() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.valid {
				n++
			}
		}
	}
	return n
}
