package mem

// This file is the speculative-visibility layer protection schemes hook
// into: shadow structures that hold the fills of in-flight speculative
// loads so the committed hierarchy never observes a squashed access.
// Two published designs use it (see internal/core's registry):
//
//   - SafeSpec (SpecShadow): speculative loads fill a small per-core
//     shadow cache and shadow TLB; on retire the fill is promoted into
//     the committed hierarchy, on squash it is discarded. The shadow is
//     bounded (shadowLines / shadowTLBEntries) like the paper's
//     MSHR-sized shadow structures.
//   - SpecBox (SpecLabel): cache lines filled speculatively carry a
//     speculation label and stay invisible to probes and to other cores
//     until the filling load commits, which clears the label by moving
//     the line into the committed arrays. The label store is unbounded
//     (labels live in the existing arrays in hardware); translation uses
//     the normal TLB path — SpecBox shields caches only.
//
// Both modes share one timing rule that closes the same-core reload
// channel: a speculative access that misses the shadow consults the
// committed levels tag-only (no Touch, no Fill, no DRAM row-buffer
// update) and a full miss is charged the constant worst-case row-miss
// latency. Timing therefore depends only on committed state established
// before speculation began, never on earlier transient fills — except
// through the shadow itself, whose contents die with the squash.

// SpecMode selects how a Hierarchy treats speculative fills.
type SpecMode uint8

const (
	// SpecOff: no shadow structures; SpecLoad must not be called.
	SpecOff SpecMode = iota
	// SpecShadow is SafeSpec's bounded shadow cache + shadow TLB.
	SpecShadow
	// SpecLabel is SpecBox's unbounded speculation-labelled line store.
	SpecLabel
)

// String names the mode.
func (m SpecMode) String() string {
	switch m {
	case SpecShadow:
		return "shadow"
	case SpecLabel:
		return "label"
	}
	return "off"
}

// Shadow capacity in SpecShadow mode, sized like the load queue it backs
// (one in-flight fill per LQ entry, doubled for squash slack).
const (
	shadowLines      = 64
	shadowTLBEntries = 16
)

// specEntry is one speculatively-filled line.
type specEntry struct {
	seq uint64 // sequence number of the filling load (squash filter)
	lru uint64 // shadow replacement stamp (SpecShadow eviction)
}

// SetSpecMode switches the hierarchy's speculative-visibility mode and
// allocates the shadow structures. The pipeline calls it once at core
// construction; switching modes mid-run discards shadow contents.
func (h *Hierarchy) SetSpecMode(m SpecMode) {
	h.specMode = m
	if m == SpecOff {
		h.spec, h.specTLB = nil, nil
		return
	}
	h.spec = make(map[uint64]specEntry)
	h.specTLB = make(map[uint64]uint64)
}

// SpecModeActive returns the hierarchy's current speculative mode.
func (h *Hierarchy) SpecModeActive() SpecMode { return h.specMode }

// SpecContents returns the line addresses currently held by the shadow
// (tests and debugging).
func (h *Hierarchy) SpecContents() []uint64 {
	out := make([]uint64, 0, len(h.spec))
	for la := range h.spec {
		out = append(out, la)
	}
	return out
}

// SpecTranslate is the translation path for speculative loads; seq is
// the translating load's sequence number (the squash-filter tag for a
// shadow-TLB fill). Under SpecLabel it is the normal TLB path (SpecBox
// shields caches only). Under SpecShadow the committed TLB is consulted
// tag-only; a miss walks into the shadow TLB, so committed TLB entries
// and replacement state carry no trace of squashed speculation.
func (h *Hierarchy) SpecTranslate(now uint64, addr uint64, seq uint64) (done uint64, hit bool) {
	if h.specMode != SpecShadow {
		return h.tlb.Translate(now, addr)
	}
	if h.tlb.Probe(addr) {
		return now, true
	}
	page := addr >> h.cfg.TLB.PageBits
	if _, ok := h.specTLB[page]; ok {
		return now, true // shadow TLB hit: L1-equivalent
	}
	h.SpecTLBWalks++
	if len(h.specTLB) >= shadowTLBEntries {
		// Evict the entry with the smallest fill seq (oldest speculation;
		// deterministic: seqs are unique).
		var victim uint64
		var vseq uint64 = ^uint64(0)
		for p, s := range h.specTLB {
			if s < vseq {
				victim, vseq = p, s
			}
		}
		delete(h.specTLB, victim)
	}
	h.specTLB[page] = seq
	return now + h.cfg.TLB.WalkCycles, false
}

// SpecLoad performs a speculative load under the active SpecMode: shadow
// hits cost L1 timing; misses consult the committed levels tag-only and
// fill the shadow, never the committed arrays. seq is the load's
// sequence number, the handle CommitSpec/SquashSpec resolve it by.
func (h *Hierarchy) SpecLoad(now uint64, addr uint64, seq uint64) AccessResult {
	if h.specMode == SpecOff {
		panic("mem: SpecLoad without SetSpecMode")
	}
	h.SpecLoads++
	la := LineAddr(addr)
	if e, ok := h.spec[la]; ok {
		h.SpecShadowHits++
		h.specStamp++
		e.lru = h.specStamp
		h.spec[la] = e
		t := h.l1d.ReserveBank(now, addr) + h.inc(L1)
		return AccessResult{Done: t, Level: L1}
	}

	// Committed presence, tag-only: no Touch, no Fill, no row-buffer
	// update — the walk leaves committed state byte-identical.
	slice := h.shared.slice(addr)
	var level Level
	switch {
	case h.l1d.Lookup(addr):
		level = L1
	case h.l2.Lookup(addr):
		level = L2
	case slice.Lookup(addr):
		level = L3
	default:
		level = LevelMem
	}

	t := h.l1d.ReserveBank(now, addr) + h.inc(L1)
	if level != L1 {
		// A private, non-merged MSHR is held at the L1 for the miss's
		// duration (merging with a committed miss would couple their
		// timing; the synthetic key lives in the Obl-Ld key space).
		h.oblSeq++
		key := 1<<63 | h.oblSeq
		start, _, _ := h.l1d.AcquireMSHR(t, key, false)
		t = start
		t = h.l2.ReserveBank(t, addr) + h.inc(L2)
		if level != L2 {
			t = slice.ReserveBank(t, addr) + h.inc(L3)
			if level != L3 {
				// Constant worst-case DRAM: row-state-blind, so the
				// latency of a squashed miss teaches the prober nothing.
				t += h.cfg.DRAM.RowMissLat
			}
		}
		h.l1d.CommitMSHR(key, t)
	}
	h.fillShadow(la, seq)
	return AccessResult{Done: t, Level: level}
}

// fillShadow inserts a line into the shadow, evicting LRU in the bounded
// SpecShadow mode.
func (h *Hierarchy) fillShadow(la uint64, seq uint64) {
	if h.specMode == SpecShadow && len(h.spec) >= shadowLines {
		var victim uint64
		var vlru uint64 = ^uint64(0)
		for a, e := range h.spec {
			if e.lru < vlru {
				victim, vlru = a, e.lru
			}
		}
		delete(h.spec, victim)
		h.SpecEvictions++
	}
	h.specStamp++
	h.spec[la] = specEntry{seq: seq, lru: h.specStamp}
}

// CommitSpec promotes a retiring speculative load's fill into the
// committed hierarchy: the line is filled at every level (as the
// original walk would have) and, under SpecShadow, the page is installed
// in the committed TLB. The shadow entry is released.
func (h *Hierarchy) CommitSpec(addr uint64, seq uint64) {
	la := LineAddr(addr)
	delete(h.spec, la)
	h.SpecCommits++
	h.shared.slice(addr).Fill(addr, false)
	h.l2.Fill(addr, false)
	h.l1d.Fill(addr, false)
	if h.specMode == SpecShadow {
		delete(h.specTLB, addr>>h.cfg.TLB.PageBits)
		h.tlb.Install(addr)
	}
}

// SquashSpec discards every shadow entry filled by a load with sequence
// number >= from: squashed speculation leaves no trace anywhere.
func (h *Hierarchy) SquashSpec(from uint64) {
	for la, e := range h.spec {
		if e.seq >= from {
			delete(h.spec, la)
			h.SpecDiscards++
		}
	}
	if h.specMode == SpecShadow {
		for p, s := range h.specTLB {
			if s >= from {
				delete(h.specTLB, p)
			}
		}
	}
}

// specFlush drops the shadow copy of a flushed line (clflush reaches the
// shadow too: a line the attacker flushed must not linger speculatively
// visible).
func (h *Hierarchy) specFlush(addr uint64) {
	if h.spec != nil {
		delete(h.spec, LineAddr(addr))
	}
}

// specInvalidate drops the shadow copy of an externally-invalidated line.
func (h *Hierarchy) specInvalidate(lineAddr uint64) {
	if h.spec != nil {
		delete(h.spec, LineAddr(lineAddr))
	}
}

// specReset clears all speculative state (checkpoint restore: the shadow
// is transient by definition and never part of a warm snapshot).
func (h *Hierarchy) specReset() {
	if h.specMode == SpecOff {
		return
	}
	h.spec = make(map[uint64]specEntry)
	h.specTLB = make(map[uint64]uint64)
}
