package mem

// DRAM models the single shared memory controller of §VI-B1: accesses are
// spread over banks, each bank has an open row (row-buffer), and latency is
// a function of recent and outstanding requests — a row hit is much cheaper
// than a row miss, and busy banks queue. This is precisely why the paper
// does not build a DO variant for DRAM: making this path oblivious would
// require forgoing the row buffer entirely (§VI-B2).
type DRAM struct {
	cfg      DRAMConfig
	openRow  []uint64
	rowValid []bool
	bankBusy []uint64
	queue    []uint64 // completion times of in-flight requests

	// Stats.
	Accesses  uint64
	RowHits   uint64
	RowMisses uint64
	QueueWait uint64
}

// NewDRAM returns a controller with the given configuration.
func NewDRAM(cfg DRAMConfig) *DRAM {
	return &DRAM{
		cfg:      cfg,
		openRow:  make([]uint64, cfg.Banks),
		rowValid: make([]bool, cfg.Banks),
		bankBusy: make([]uint64, cfg.Banks),
	}
}

func (d *DRAM) bank(addr uint64) int {
	// Interleave rows across banks.
	return int(addr/uint64(d.cfg.RowBytes)) % d.cfg.Banks
}

func (d *DRAM) row(addr uint64) uint64 { return addr / uint64(d.cfg.RowBytes) }

// Access schedules a read/write of addr arriving at the controller at time
// now and returns its completion time.
func (d *DRAM) Access(now uint64, addr uint64) (done uint64) {
	d.Accesses++
	start := now
	// Controller queue: if too many requests are in flight, wait for one
	// to drain.
	live := d.queue[:0]
	for _, t := range d.queue {
		if t > start {
			live = append(live, t)
		}
	}
	d.queue = live
	for len(d.queue) >= d.cfg.QueueEntries {
		min := d.queue[0]
		for _, t := range d.queue {
			if t < min {
				min = t
			}
		}
		d.QueueWait += min - start
		start = min
		live = d.queue[:0]
		for _, t := range d.queue {
			if t > start {
				live = append(live, t)
			}
		}
		d.queue = live
	}

	b := d.bank(addr)
	if d.bankBusy[b] > start {
		start = d.bankBusy[b]
	}
	row := d.row(addr)
	lat := d.cfg.RowMissLat
	if d.rowValid[b] && d.openRow[b] == row {
		lat = d.cfg.RowHitLat
		d.RowHits++
	} else {
		d.RowMisses++
	}
	d.openRow[b] = row
	d.rowValid[b] = true
	d.bankBusy[b] = start + d.cfg.BurstCycles
	done = start + lat
	d.queue = append(d.queue, done)
	return done
}
