package mem

import (
	"fmt"

	"repro/internal/obs"
)

// SetObserver attaches an event recorder to this core's view of the
// memory system. Cache hit/miss outcomes, MSHR merges, DRAM row-buffer
// hits/conflicts, and TLB misses emit typed events through it, filtered
// by the recorder's class mask. Pass nil to detach; with no recorder
// every emission site reduces to a nil check.
//
// core.Machine wires the same recorder here and into the pipeline
// (pipeline.Core.SetObserver) so a single sink sees both sides.
func (h *Hierarchy) SetObserver(r *obs.Recorder) { h.obs = r }

// Observer returns the attached recorder (nil when tracing is off).
func (h *Hierarchy) Observer() *obs.Recorder { return h.obs }

// walkTraced is the instrumented copy of Hierarchy.walk (hierarchy.go),
// entered only when a recorder is attached. It must mutate exactly the
// same state and return exactly the same result as walk for every input —
// observation may not perturb the simulation. That equivalence is pinned
// by TestTracedWalkEquivalence, which diffs whole traced and untraced
// runs counter-for-counter; keep the two bodies in sync when editing
// either.
func (h *Hierarchy) walkTraced(l1 *Cache, now uint64, addr uint64, write bool) AccessResult {
	la := LineAddr(addr)
	slice := h.shared.slice(addr)

	var level Level
	switch {
	case l1.Lookup(addr):
		level = L1
	case h.l2.Lookup(addr):
		level = L2
	case slice.Lookup(addr):
		level = L3
	default:
		level = LevelMem
	}

	ifetch := l1 == h.l1i
	t := l1.ReserveBank(now, addr) + h.inc(L1)
	if level == L1 {
		l1.Touch(addr, write)
		r := AccessResult{Done: t, Level: L1}
		h.emitAccess(now, addr, write, ifetch, r)
		return r
	}
	l1.Touch(addr, write) // records the miss
	start, mdone, merged := l1.AcquireMSHR(t, la, true)
	if merged {
		done := mdone
		if done < t {
			done = t
		}
		h.emitMSHRMerge(now, addr, L1, done)
		r := AccessResult{Done: done, Level: level}
		h.emitAccess(now, addr, write, ifetch, r)
		return r
	}
	t = start

	t = h.l2.ReserveBank(t, addr) + h.inc(L2)
	var done uint64
	if level == L2 {
		h.l2.Touch(addr, false)
		done = t
	} else {
		h.l2.Touch(addr, false)
		start, mdone, merged := h.l2.AcquireMSHR(t, la, true)
		if merged {
			done = mdone
			if done < t {
				done = t
			}
			h.emitMSHRMerge(now, addr, L2, done)
			h.l2.CommitMSHR(la, done)
			l1.CommitMSHR(la, done)
			l1.Fill(addr, write)
			r := AccessResult{Done: done, Level: level}
			h.emitAccess(now, addr, write, ifetch, r)
			return r
		}
		t = start
		t = slice.ReserveBank(t, addr) + h.inc(L3)
		if level == L3 {
			slice.Touch(addr, false)
			done = t
		} else {
			slice.Touch(addr, false)
			start, mdone, merged := slice.AcquireMSHR(t, la, true)
			if merged {
				done = mdone
				if done < t {
					done = t
				}
				h.emitMSHRMerge(now, addr, L3, done)
			} else {
				t = start
				rowHitsBefore := h.shared.dram.RowHits
				done = h.shared.dram.Access(t, addr)
				h.emitDRAM(t, addr, h.shared.dram.RowHits > rowHitsBefore, done)
			}
			slice.CommitMSHR(la, done)
			slice.Fill(addr, false)
		}
		h.l2.CommitMSHR(la, done)
		h.l2.Fill(addr, false)
	}
	l1.CommitMSHR(la, done)
	l1.Fill(addr, write)
	r := AccessResult{Done: done, Level: level}
	h.emitAccess(now, addr, write, ifetch, r)
	return r
}

// emitAccess reports a completed normal-path walk: "cache-hit" for an L1
// hit, "cache-miss" (with the serving level) otherwise. Span-shaped so
// trace viewers render the access latency.
func (h *Hierarchy) emitAccess(now, addr uint64, write, ifetch bool, r AccessResult) {
	if !h.obs.On(obs.ClassCache) {
		return
	}
	kind := "cache-miss"
	if r.Level == L1 {
		kind = "cache-hit"
	}
	h.obs.Emit(obs.Event{Cycle: now, Class: obs.ClassCache, Kind: kind,
		Addr: addr, Level: r.Level.String(), Dur: r.Done - now,
		Detail: fmt.Sprintf("addr=%#x level=%v write=%v ifetch=%v done=%d",
			addr, r.Level, write, ifetch, r.Done)})
}

// emitMSHRMerge reports a miss merged into an outstanding MSHR at level at.
func (h *Hierarchy) emitMSHRMerge(now, addr uint64, at Level, done uint64) {
	if !h.obs.On(obs.ClassCache) {
		return
	}
	h.obs.Emit(obs.Event{Cycle: now, Class: obs.ClassCache, Kind: "mshr-merge",
		Addr: addr, Level: at.String(),
		Detail: fmt.Sprintf("addr=%#x merged-at=%v done=%d", addr, at, done)})
}

// emitDRAM reports one DRAM controller access as a row-buffer hit or
// conflict (row miss).
func (h *Hierarchy) emitDRAM(now, addr uint64, rowHit bool, done uint64) {
	if !h.obs.On(obs.ClassDRAM) {
		return
	}
	kind := "dram-row-conflict"
	if rowHit {
		kind = "dram-row-hit"
	}
	h.obs.Emit(obs.Event{Cycle: now, Class: obs.ClassDRAM, Kind: kind,
		Addr: addr, Dur: done - now,
		Detail: fmt.Sprintf("addr=%#x done=%d", addr, done)})
}

// emitTLBMiss reports a normal-path translation that missed the L1 TLB.
func (h *Hierarchy) emitTLBMiss(now, addr, done uint64) {
	if !h.obs.On(obs.ClassTLB) {
		return
	}
	h.obs.Emit(obs.Event{Cycle: now, Class: obs.ClassTLB, Kind: "tlb-miss",
		Addr: addr, Dur: done - now,
		Detail: fmt.Sprintf("addr=%#x page=%#x done=%d", addr, h.tlb.page(addr), done)})
}
