package mem

import "fmt"

// This file is the warm-state layer used by functional-warmup checkpoints
// (internal/arch): a serializable snapshot of every piece of memory-system
// state that survives a warmup/measurement handoff, plus timing-free
// "warm" access paths that update exactly that state and nothing else.
//
// The split matters for soundness. Persistent state — tags, replacement
// stamps, dirty bits, TLB entries, DRAM row buffers, and the stat counters
// derived from them — is what warmup exists to establish, and it is fully
// captured here. Transient timing state — bank busy times, MSHR files, the
// DRAM scheduler queue — is deliberately excluded: the warm paths never
// touch it, so at the warmup boundary it is empty by construction, and a
// restored machine is indistinguishable from one that warmed up in place.

// LineState is one tag-array entry of a CacheState.
type LineState struct {
	Valid bool
	Dirty bool
	Tag   uint64
	LRU   uint64
}

// CacheState is the persistent state of a Cache: every tag-array entry
// (sets × ways, row-major), the LRU stamp, and the stat counters.
type CacheState struct {
	Lines []LineState
	Stamp uint64

	Hits, Misses    uint64
	BankWaitCycles  uint64
	MSHRWaitCycles  uint64
	Evictions       uint64
	DirtyWritebacks uint64
	InvalidationsIn uint64
}

// State snapshots the cache's persistent state.
func (c *Cache) State() CacheState {
	s := CacheState{
		Lines:           make([]LineState, 0, len(c.sets)*c.cfg.Ways),
		Stamp:           c.stamp,
		Hits:            c.Hits,
		Misses:          c.Misses,
		BankWaitCycles:  c.BankWaitCycles,
		MSHRWaitCycles:  c.MSHRWaitCycles,
		Evictions:       c.Evictions,
		DirtyWritebacks: c.DirtyWritebacks,
		InvalidationsIn: c.InvalidationsIn,
	}
	for _, set := range c.sets {
		for _, l := range set {
			s.Lines = append(s.Lines, LineState{Valid: l.valid, Dirty: l.dirty, Tag: l.tag, LRU: l.lru})
		}
	}
	return s
}

// SetState restores a snapshot taken from a cache of identical geometry.
// Transient timing state (bank reservations, MSHRs) is reset.
func (c *Cache) SetState(s CacheState) error {
	if len(s.Lines) != len(c.sets)*c.cfg.Ways {
		return fmt.Errorf("mem: cache state has %d lines, geometry wants %d",
			len(s.Lines), len(c.sets)*c.cfg.Ways)
	}
	i := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := s.Lines[i]
			c.sets[si][wi] = line{valid: l.Valid, dirty: l.Dirty, tag: l.Tag, lru: l.LRU}
			i++
		}
	}
	c.stamp = s.Stamp
	c.Hits, c.Misses = s.Hits, s.Misses
	c.BankWaitCycles, c.MSHRWaitCycles = s.BankWaitCycles, s.MSHRWaitCycles
	c.Evictions, c.DirtyWritebacks = s.Evictions, s.DirtyWritebacks
	c.InvalidationsIn = s.InvalidationsIn
	for i := range c.bankBusy {
		c.bankBusy[i] = 0
	}
	c.mshr = make(map[uint64]uint64)
	return nil
}

// TLBLevelState is one fully-associative TLB level's entries.
type TLBLevelState struct {
	Pages []uint64
	Valid []bool
	LRUAt []uint64
	Stamp uint64
}

func (l *tlbLevel) state() TLBLevelState {
	return TLBLevelState{
		Pages: append([]uint64(nil), l.pages...),
		Valid: append([]bool(nil), l.valid...),
		LRUAt: append([]uint64(nil), l.lruAt...),
		Stamp: l.stamp,
	}
}

func (l *tlbLevel) setState(s TLBLevelState) error {
	if len(s.Pages) != len(l.pages) {
		return fmt.Errorf("mem: TLB level state has %d entries, geometry wants %d",
			len(s.Pages), len(l.pages))
	}
	copy(l.pages, s.Pages)
	copy(l.valid, s.Valid)
	copy(l.lruAt, s.LRUAt)
	l.stamp = s.Stamp
	return nil
}

// TLBState is the persistent state of a two-level TLB.
type TLBState struct {
	L1 TLBLevelState
	L2 *TLBLevelState // nil when the L2 TLB is disabled

	Hits, Misses uint64
	L2Hits       uint64
	Walks        uint64
}

// State snapshots the TLB.
func (t *TLB) State() TLBState {
	s := TLBState{L1: t.l1.state(), Hits: t.Hits, Misses: t.Misses, L2Hits: t.L2Hits, Walks: t.Walks}
	if t.l2 != nil {
		l2 := t.l2.state()
		s.L2 = &l2
	}
	return s
}

// SetState restores a TLB snapshot of identical geometry.
func (t *TLB) SetState(s TLBState) error {
	if err := t.l1.setState(s.L1); err != nil {
		return err
	}
	if (t.l2 == nil) != (s.L2 == nil) {
		return fmt.Errorf("mem: TLB state L2 presence mismatch")
	}
	if t.l2 != nil {
		if err := t.l2.setState(*s.L2); err != nil {
			return err
		}
	}
	t.Hits, t.Misses, t.L2Hits, t.Walks = s.Hits, s.Misses, s.L2Hits, s.Walks
	return nil
}

// DRAMState is the persistent state of the memory controller: the open
// row per bank and the stat counters. Scheduler state (bank busy times,
// the request queue) is transient and excluded.
type DRAMState struct {
	OpenRow  []uint64
	RowValid []bool

	Accesses  uint64
	RowHits   uint64
	RowMisses uint64
	QueueWait uint64
}

// State snapshots the controller.
func (d *DRAM) State() DRAMState {
	return DRAMState{
		OpenRow:   append([]uint64(nil), d.openRow...),
		RowValid:  append([]bool(nil), d.rowValid...),
		Accesses:  d.Accesses,
		RowHits:   d.RowHits,
		RowMisses: d.RowMisses,
		QueueWait: d.QueueWait,
	}
}

// SetState restores a controller snapshot of identical geometry and
// resets the transient scheduler state.
func (d *DRAM) SetState(s DRAMState) error {
	if len(s.OpenRow) != len(d.openRow) {
		return fmt.Errorf("mem: DRAM state has %d banks, geometry wants %d",
			len(s.OpenRow), len(d.openRow))
	}
	copy(d.openRow, s.OpenRow)
	copy(d.rowValid, s.RowValid)
	d.Accesses, d.RowHits, d.RowMisses, d.QueueWait = s.Accesses, s.RowHits, s.RowMisses, s.QueueWait
	for i := range d.bankBusy {
		d.bankBusy[i] = 0
	}
	d.queue = d.queue[:0]
	return nil
}

// WarmAccess updates the controller's persistent row-buffer state (and the
// derived counters) for one warm access, without consulting or advancing
// the scheduler.
func (d *DRAM) WarmAccess(addr uint64) {
	d.Accesses++
	b := d.bank(addr)
	row := d.row(addr)
	if d.rowValid[b] && d.openRow[b] == row {
		d.RowHits++
	} else {
		d.RowMisses++
	}
	d.openRow[b] = row
	d.rowValid[b] = true
}

// HierState is the serializable warm state of one core's whole memory
// system: the private caches and TLB plus the shared L3 slices and DRAM
// controller. It is captured and restored as a unit by warmup
// checkpoints; restoring it into a multi-core Shared system would
// overwrite state other cores contributed to, so it is a single-core
// facility (exactly the harness's use).
type HierState struct {
	L1I, L1D, L2 CacheState
	TLB          TLBState
	L3           []CacheState
	DRAM         DRAMState
	OblLookups   uint64
	OblFound     uint64
}

// State snapshots the hierarchy (private and shared levels).
func (h *Hierarchy) State() HierState {
	s := HierState{
		L1I:        h.l1i.State(),
		L1D:        h.l1d.State(),
		L2:         h.l2.State(),
		TLB:        h.tlb.State(),
		DRAM:       h.shared.dram.State(),
		OblLookups: h.OblLookups,
		OblFound:   h.OblFound,
	}
	for _, sl := range h.shared.slices {
		s.L3 = append(s.L3, sl.State())
	}
	return s
}

// SetState restores a hierarchy snapshot into a system of identical
// configuration.
func (h *Hierarchy) SetState(s HierState) error {
	if len(s.L3) != len(h.shared.slices) {
		return fmt.Errorf("mem: hierarchy state has %d L3 slices, geometry wants %d",
			len(s.L3), len(h.shared.slices))
	}
	if err := h.l1i.SetState(s.L1I); err != nil {
		return err
	}
	if err := h.l1d.SetState(s.L1D); err != nil {
		return err
	}
	if err := h.l2.SetState(s.L2); err != nil {
		return err
	}
	if err := h.tlb.SetState(s.TLB); err != nil {
		return err
	}
	for i, sl := range h.shared.slices {
		if err := sl.SetState(s.L3[i]); err != nil {
			return err
		}
	}
	if err := h.shared.dram.SetState(s.DRAM); err != nil {
		return err
	}
	h.OblLookups, h.OblFound = s.OblLookups, s.OblFound
	// Shadow fills are transient speculation; a restored machine starts
	// with an empty shadow, like one that warmed up in place.
	h.specReset()
	return nil
}

// WarmLoad, WarmStore and WarmFetch are the functional-warmup access
// paths: they perform the same presence/LRU/fill/stat updates as the
// detailed walk (hierarchy.go) but charge no timing — banks, MSHRs and
// the DRAM scheduler are untouched, so transient state stays empty across
// the warmup boundary.
func (h *Hierarchy) WarmLoad(addr uint64) { h.warmWalk(h.l1d, addr, false) }

// WarmStore warms the write path (write-allocate: the L1 line is dirtied).
func (h *Hierarchy) WarmStore(addr uint64) { h.warmWalk(h.l1d, addr, true) }

// WarmFetch warms the instruction cache for the line containing addr.
func (h *Hierarchy) WarmFetch(addr uint64) { h.warmWalk(h.l1i, addr, false) }

// WarmTranslate warms the TLB for addr's page (normal-path replacement
// and walk counters; the walk's latency is discarded).
func (h *Hierarchy) WarmTranslate(addr uint64) { h.tlb.Translate(0, addr) }

// warmWalk mirrors the detailed walk's presence transitions: touch each
// level until a hit, fill the missed levels on the way back, and open the
// DRAM row on a full miss.
func (h *Hierarchy) warmWalk(l1 *Cache, addr uint64, write bool) {
	if l1.Touch(addr, write) {
		return
	}
	if !h.l2.Touch(addr, false) {
		slice := h.shared.slice(addr)
		if !slice.Touch(addr, false) {
			h.shared.dram.WarmAccess(addr)
			slice.Fill(addr, false)
		}
		h.l2.Fill(addr, false)
	}
	l1.Fill(addr, write)
}
