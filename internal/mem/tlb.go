package mem

// tlbLevel is one fully-associative, LRU translation buffer.
type tlbLevel struct {
	pages []uint64
	valid []bool
	lruAt []uint64
	stamp uint64
}

func newTLBLevel(entries int) *tlbLevel {
	return &tlbLevel{
		pages: make([]uint64, entries),
		valid: make([]bool, entries),
		lruAt: make([]uint64, entries),
	}
}

func (l *tlbLevel) lookup(page uint64, refresh bool) bool {
	for i := range l.pages {
		if l.valid[i] && l.pages[i] == page {
			if refresh {
				l.stamp++
				l.lruAt[i] = l.stamp
			}
			return true
		}
	}
	return false
}

func (l *tlbLevel) install(page uint64) {
	victim := 0
	for i := range l.pages {
		if !l.valid[i] {
			victim = i
			break
		}
		if l.lruAt[i] < l.lruAt[victim] {
			victim = i
		}
	}
	l.stamp++
	l.pages[victim] = page
	l.valid[victim] = true
	l.lruAt[victim] = l.stamp
}

// TLB is a two-level data TLB (fully associative, LRU at both levels).
// Translation itself is the identity (the simulator runs on physical
// addresses); the TLB exists because hits and misses have different timing
// and — per §V-B — an Obl-Ld may only consult the L1 TLB without a walk: a
// miss yields ⊥ and a later squash, because both the L2 TLB lookup and the
// page-table walk would create address-dependent resource usage.
type TLB struct {
	cfg TLBConfig
	l1  *tlbLevel
	l2  *tlbLevel // nil when disabled

	// Stats.
	Hits, Misses uint64 // L1-TLB hits / misses (normal path)
	L2Hits       uint64 // L1 misses served by the L2 TLB
	Walks        uint64 // full page-table walks
}

// NewTLB returns a TLB with the given configuration.
func NewTLB(cfg TLBConfig) *TLB {
	t := &TLB{cfg: cfg, l1: newTLBLevel(cfg.Entries)}
	if cfg.L2Entries > 0 {
		t.l2 = newTLBLevel(cfg.L2Entries)
	}
	return t
}

func (t *TLB) page(addr uint64) uint64 { return addr >> t.cfg.PageBits }

// Probe reports whether addr's page is mapped in the L1 TLB, without any
// replacement-state change. This is the DO path: an L1 tag check only.
func (t *TLB) Probe(addr uint64) bool { return t.l1.lookup(t.page(addr), false) }

// Translate performs the normal path: L1 hit is free; an L1 miss consults
// the L2 TLB (L2Latency) and finally walks the page table (WalkCycles).
// Translations are installed on the way back, as a hardware walker would.
func (t *TLB) Translate(now uint64, addr uint64) (done uint64, hit bool) {
	p := t.page(addr)
	if t.l1.lookup(p, true) {
		t.Hits++
		return now, true
	}
	t.Misses++
	if t.l2 != nil {
		if t.l2.lookup(p, true) {
			t.L2Hits++
			t.l1.install(p)
			return now + t.cfg.L2Latency, false
		}
	}
	t.Walks++
	t.l1.install(p)
	if t.l2 != nil {
		t.l2.install(p)
	}
	done = now + t.cfg.WalkCycles
	if t.l2 != nil {
		done += t.cfg.L2Latency
	}
	return done, false
}

// Install maps addr's page without timing (used by tests).
func (t *TLB) Install(addr uint64) {
	p := t.page(addr)
	if !t.l1.lookup(p, false) {
		t.l1.install(p)
	}
	if t.l2 != nil && !t.l2.lookup(p, false) {
		t.l2.install(p)
	}
}
