package mem

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	// 4 sets x 2 ways x 64B = 512B
	return NewCache(CacheConfig{SizeBytes: 512, Ways: 2, Latency: 2, Banks: 2, MSHRs: 2})
}

func TestCacheFillThenLookup(t *testing.T) {
	c := smallCache()
	if c.Lookup(0x1000) {
		t.Fatal("cold cache should miss")
	}
	c.Fill(0x1000, false)
	if !c.Lookup(0x1000) {
		t.Fatal("filled line should hit")
	}
	// Same line, different offset.
	if !c.Lookup(0x1004) {
		t.Fatal("same line, different word should hit")
	}
	// Different line.
	if c.Lookup(0x1040) {
		t.Fatal("adjacent line should miss")
	}
}

func TestCacheLookupDoesNotPerturbState(t *testing.T) {
	// The DO-variant property: Lookup must not affect replacement.
	// Fill A then B into a 2-way set; touching A (normal) then filling C
	// must evict B. Repeating with Lookup(A) in place of Touch(A) must
	// evict A instead — proving Lookup didn't refresh LRU.
	c := smallCache()
	a, b, cc := uint64(0), uint64(0x100), uint64(0x200) // same set (4 sets: line/64 %4)
	c.Fill(a, false)
	c.Fill(b, false)
	c.Touch(a, false)
	c.Fill(cc, false)
	if !c.Lookup(a) || c.Lookup(b) {
		t.Fatal("normal touch should have protected A and evicted B")
	}

	c2 := smallCache()
	c2.Fill(a, false)
	c2.Fill(b, false)
	c2.Lookup(a) // tag-only: must not refresh
	c2.Fill(cc, false)
	if c2.Lookup(a) || !c2.Lookup(b) {
		t.Fatal("oblivious lookup must not refresh LRU: A should be evicted")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache()
	// Three lines in the same set, 2 ways: first fill is evicted.
	c.Fill(0x000, false)
	c.Fill(0x100, false)
	evAddr, _, ev := c.Fill(0x200, false)
	if !ev || evAddr != 0x000 {
		t.Fatalf("evicted %#x (ev=%v), want 0x0", evAddr, ev)
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := smallCache()
	c.Fill(0x000, true) // dirty
	c.Fill(0x100, false)
	_, dirty, ev := c.Fill(0x200, false)
	if !ev || !dirty {
		t.Fatalf("dirty line eviction: ev=%v dirty=%v", ev, dirty)
	}
	if c.DirtyWritebacks != 1 {
		t.Fatalf("writebacks = %d", c.DirtyWritebacks)
	}
}

func TestCacheTouchMarksDirty(t *testing.T) {
	c := smallCache()
	c.Fill(0x40, false)
	c.Touch(0x40, true)
	c.Fill(0x140, false)
	_, dirty, ev := c.Fill(0x240, false)
	if !ev || !dirty {
		t.Fatalf("store-touched line should evict dirty: ev=%v dirty=%v", ev, dirty)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := smallCache()
	c.Fill(0x80, true)
	present, dirty := c.Invalidate(0x80)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Lookup(0x80) {
		t.Fatal("line should be gone")
	}
	present, _ = c.Invalidate(0x80)
	if present {
		t.Fatal("double invalidate should report absent")
	}
}

func TestCacheFillIdempotentWhenPresent(t *testing.T) {
	c := smallCache()
	c.Fill(0x40, false)
	_, _, ev := c.Fill(0x40, false)
	if ev {
		t.Fatal("refilling a present line must not evict")
	}
	if c.Contents() != 1 {
		t.Fatalf("contents = %d, want 1", c.Contents())
	}
}

func TestBankReservationSerialises(t *testing.T) {
	c := smallCache()
	// Two same-bank lines accessed at the same cycle: second waits.
	// bank = line/64 % 2; 0x00 and 0x80 are both bank 0.
	s1 := c.ReserveBank(10, 0x00)
	s2 := c.ReserveBank(10, 0x80)
	if s1 != 10 || s2 != 11 {
		t.Fatalf("starts = %d,%d, want 10,11", s1, s2)
	}
	// Different bank proceeds in parallel.
	s3 := c.ReserveBank(10, 0x40)
	if s3 != 10 {
		t.Fatalf("other bank start = %d, want 10", s3)
	}
	if c.BankWaitCycles != 1 {
		t.Fatalf("bank wait = %d, want 1", c.BankWaitCycles)
	}
}

func TestReserveAllBanksBlocksEverything(t *testing.T) {
	c := smallCache()
	start := c.ReserveAllBanks(5, 3)
	if start != 5 {
		t.Fatalf("start = %d", start)
	}
	// Any subsequent access must wait until 8.
	if s := c.ReserveBank(5, 0x00); s != 8 {
		t.Fatalf("bank0 start = %d, want 8", s)
	}
	if s := c.ReserveBank(5, 0x40); s != 8 {
		t.Fatalf("bank1 start = %d, want 8", s)
	}
}

func TestReserveAllBanksWaitsForBusyBank(t *testing.T) {
	c := smallCache()
	c.ReserveBank(10, 0x00) // bank 0 busy until 11
	start := c.ReserveAllBanks(10, 2)
	if start != 11 {
		t.Fatalf("oblivious start = %d, want 11", start)
	}
}

func TestMSHRMerge(t *testing.T) {
	c := smallCache()
	start, _, merged := c.AcquireMSHR(100, 0x1000, true)
	if merged || start != 100 {
		t.Fatalf("first acquire: start=%d merged=%v", start, merged)
	}
	c.CommitMSHR(0x1000, 150)
	_, mdone, merged := c.AcquireMSHR(110, 0x1000, true)
	if !merged || mdone != 150 {
		t.Fatalf("second acquire: merged=%v done=%d", merged, mdone)
	}
}

func TestMSHRFullStalls(t *testing.T) {
	c := smallCache() // 2 MSHRs
	c.AcquireMSHR(100, 1, false)
	c.CommitMSHR(1, 200)
	c.AcquireMSHR(100, 2, false)
	c.CommitMSHR(2, 300)
	start, _, _ := c.AcquireMSHR(100, 3, false)
	if start != 200 {
		t.Fatalf("third acquire start = %d, want 200 (earliest release)", start)
	}
	if c.MSHRWaitCycles != 100 {
		t.Fatalf("mshr wait = %d, want 100", c.MSHRWaitCycles)
	}
}

func TestMSHRPruning(t *testing.T) {
	c := smallCache()
	c.AcquireMSHR(100, 1, false)
	c.CommitMSHR(1, 150)
	if got := c.OutstandingMisses(120); got != 1 {
		t.Fatalf("outstanding at 120 = %d, want 1", got)
	}
	if got := c.OutstandingMisses(150); got != 0 {
		t.Fatalf("outstanding at 150 = %d, want 0", got)
	}
}

func TestCachePropertyFillAlwaysHitsAfter(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 4096, Ways: 4, Latency: 2, Banks: 4, MSHRs: 4})
	f := func(addr uint64) bool {
		addr &= 0xffffff
		c.Fill(addr, false)
		return c.Lookup(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCachePropertyContentsBounded(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 1024, Ways: 2, Latency: 2, Banks: 2, MSHRs: 2}
	c := NewCache(cfg)
	capacity := cfg.SizeBytes / LineBytes
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Fill(uint64(a), a%3 == 0)
		}
		return c.Contents() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two set count")
		}
	}()
	NewCache(CacheConfig{SizeBytes: 192, Ways: 1, Banks: 1, MSHRs: 1})
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Fatalf("LineAddr(0x1234) = %#x", LineAddr(0x1234))
	}
	if LineAddr(0x1240) != 0x1240 {
		t.Fatal("aligned address should be unchanged")
	}
}
