package mem

import (
	"testing"
	"testing/quick"
)

func testConfig() Config {
	cfg := DefaultConfig()
	return cfg
}

func TestWalkLatenciesMatchTableI(t *testing.T) {
	h := NewHierarchy(testConfig())
	addr := uint64(0x10000)

	// Cold: DRAM. Row miss: 2 + 10 + 28 + 100 = 140.
	r := h.Load(0, addr)
	if r.Level != LevelMem {
		t.Fatalf("cold load level = %v", r.Level)
	}
	if r.Done != 140 {
		t.Fatalf("cold load done = %d, want 140", r.Done)
	}

	// Now it's in L1.
	r = h.Load(1000, addr)
	if r.Level != L1 || r.Done != 1002 {
		t.Fatalf("L1 hit: level=%v done=%d, want L1/1002", r.Level, r.Done)
	}

	// Evict from L1 only: hits L2 at +12.
	h.L1D().Invalidate(addr)
	r = h.Load(2000, addr)
	if r.Level != L2 || r.Done != 2012 {
		t.Fatalf("L2 hit: level=%v done=%d, want L2/2012", r.Level, r.Done)
	}

	// Evict from L1+L2: hits L3 at +40.
	h.L1D().Invalidate(addr)
	h.L2().Invalidate(addr)
	r = h.Load(3000, addr)
	if r.Level != L3 || r.Done != 3040 {
		t.Fatalf("L3 hit: level=%v done=%d, want L3/3040", r.Level, r.Done)
	}
}

func TestLoadFillsAllLevels(t *testing.T) {
	h := NewHierarchy(testConfig())
	addr := uint64(0x40)
	h.Load(0, addr)
	if h.Probe(addr) != L1 {
		t.Fatalf("after load, probe = %v, want L1", h.Probe(addr))
	}
	h.L1D().Invalidate(addr)
	if h.Probe(addr) != L2 {
		t.Fatalf("after L1 invalidate, probe = %v, want L2", h.Probe(addr))
	}
	h.L2().Invalidate(addr)
	if h.Probe(addr) != L3 {
		t.Fatalf("after L2 invalidate, probe = %v, want L3", h.Probe(addr))
	}
}

func TestDRAMRowBufferLocality(t *testing.T) {
	h := NewHierarchy(testConfig())
	// Two cold loads in the same DRAM row, far enough apart in time to
	// avoid queueing effects: the second is faster (row hit).
	r1 := h.Load(0, 0x100000)
	r2 := h.Load(10000, 0x100000+4096) // same 8KB row, different line/sets
	lat1 := r1.Done - 0
	lat2 := r2.Done - 10000
	if lat2 >= lat1 {
		t.Fatalf("row-hit latency %d should beat row-miss %d", lat2, lat1)
	}
}

func TestOblLoadTimingIsAddressIndependent(t *testing.T) {
	// Definition 2: for the same prediction, two different addresses (one
	// present in L1, one absent everywhere) produce identical timing.
	mk := func() (*Hierarchy, uint64, uint64) {
		h := NewHierarchy(testConfig())
		present, absent := uint64(0x1000), uint64(0x900000)
		h.Load(0, present) // fill into L1
		return h, present, absent
	}
	for _, pred := range []Level{L1, L2, L3} {
		h1, present, _ := mk()
		r1 := h1.OblLoad(500, present, pred)
		h2, _, absent := mk()
		r2 := h2.OblLoad(500, absent, pred)
		if r1.Done != r2.Done || r1.Start != r2.Start {
			t.Errorf("pred %v: timing differs for present (%+v) vs absent (%+v)", pred, r1, r2)
		}
	}
}

func TestOblLoadDoesNotChangeCacheState(t *testing.T) {
	h := NewHierarchy(testConfig())
	victim := uint64(0x2000)
	h.Load(0, victim)
	before := h.Probe(victim)
	// A DO lookup of a different address must not evict or refresh anything.
	h.OblLoad(100, 0x700000, L3)
	if h.Probe(victim) != before {
		t.Fatal("OblLoad changed cache state")
	}
	if h.Probe(0x700000) != LevelMem {
		t.Fatal("OblLoad must not fill the looked-up line")
	}
	if h.L1D().Hits != 0 || h.L1D().Misses != 1 {
		t.Fatalf("OblLoad must not count as a normal hit/miss: hits=%d misses=%d",
			h.L1D().Hits, h.L1D().Misses)
	}
}

func TestOblLoadFindsClosestLevel(t *testing.T) {
	h := NewHierarchy(testConfig())
	addr := uint64(0x3000)
	h.Load(0, addr) // in L1, L2, L3
	r := h.OblLoad(100, addr, L3)
	if r.Found != L1 {
		t.Fatalf("found = %v, want L1", r.Found)
	}
	h.L1D().Invalidate(addr)
	r = h.OblLoad(200, addr, L3)
	if r.Found != L2 {
		t.Fatalf("found = %v, want L2", r.Found)
	}
	// Predicting L1 when data is only in L2 fails.
	r = h.OblLoad(300, addr, L1)
	if r.Found != LevelNone {
		t.Fatalf("under-prediction: found = %v, want none", r.Found)
	}
}

func TestOblLoadLatencyMatchesPredictedLevel(t *testing.T) {
	h := NewHierarchy(testConfig())
	addr := uint64(0x4000)
	h.Load(0, addr)
	// Predicting L3 completes at L3 latency even though data is in L1...
	r := h.OblLoad(1000, addr, L3)
	if got := r.Done - 1000; got != 40 {
		t.Fatalf("obl L3 latency = %d, want 40", got)
	}
	// ...but the L1 response (EarlyDone) arrives at L1 latency.
	if got := r.EarlyDone - 1000; got != 2 {
		t.Fatalf("obl early latency = %d, want 2", got)
	}
	// Predicting L1 with data in L1 is as fast as an insecure load (§V-A).
	r = h.OblLoad(2000, addr, L1)
	if got := r.Done - 2000; got != 2 {
		t.Fatalf("obl L1 latency = %d, want 2", got)
	}
}

func TestOblLoadBlocksBanks(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.OblLoad(100, 0x5000, L1)
	// A normal load issued the same cycle must wait for the blocked banks.
	r := h.Load(100, 0x6000)
	wait := r.Done
	h2 := NewHierarchy(testConfig())
	r2 := h2.Load(100, 0x6000)
	if wait <= r2.Done {
		t.Fatalf("normal load after Obl-Ld should be delayed: %d vs %d", wait, r2.Done)
	}
}

func TestOblLoadHoldsPrivateMSHRs(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.OblLoad(100, 0x5000, L3)
	if got := h.L1D().OutstandingMisses(100); got != 1 {
		t.Fatalf("L1 outstanding = %d, want 1", got)
	}
	if got := h.L2().OutstandingMisses(100); got != 1 {
		t.Fatalf("L2 outstanding = %d, want 1", got)
	}
	// Two Obl-Lds to the SAME line still take two MSHRs (no merging).
	h.OblLoad(100, 0x5000, L3)
	if got := h.L1D().OutstandingMisses(100); got != 2 {
		t.Fatalf("L1 outstanding after same-line obl = %d, want 2 (no merge)", got)
	}
}

func TestOblLoadPanicsOnBadPrediction(t *testing.T) {
	h := NewHierarchy(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for LevelNone prediction")
		}
	}()
	h.OblLoad(0, 0, LevelNone)
}

func TestOblLoadDRAMVariant(t *testing.T) {
	// The (ablation-only) DO DRAM variant: constant worst-case timing,
	// always finds the data, no row-buffer state consulted or updated.
	h := NewHierarchy(testConfig())
	r := h.OblLoad(100, 0xABC000, LevelMem)
	if r.Found != LevelMem {
		t.Fatalf("found = %v, want Mem", r.Found)
	}
	want := uint64(100 + 40 + 100) // L3 walk + constant row-miss latency
	if r.Done != want {
		t.Fatalf("done = %d, want %d", r.Done, want)
	}
	if h.Shared().DRAMStats().Accesses != 0 {
		t.Fatal("DO DRAM access must not touch controller/row state")
	}
	// Cached data is still found at its cache level.
	h.Load(1000, 0xDEF000)
	r = h.OblLoad(2000, 0xDEF000, LevelMem)
	if r.Found != L1 {
		t.Fatalf("cached line found = %v, want L1", r.Found)
	}
	if r.EarlyDone-2000 != 2 {
		t.Fatalf("early response at +%d, want +2", r.EarlyDone-2000)
	}
	// Timing is identical for present and absent lines (Definition 2).
	h2 := NewHierarchy(testConfig())
	r2 := h2.OblLoad(2000, 0x900000, LevelMem)
	if r2.Done != r.Done {
		t.Fatalf("DO DRAM timing differs: %d vs %d", r2.Done, r.Done)
	}
}

func TestMSHRMergeInWalk(t *testing.T) {
	h := NewHierarchy(testConfig())
	addr := uint64(0x9000)
	r1 := h.Load(100, addr)
	// Second load to the same line while the miss is outstanding merges
	// and completes no later than the first.
	r2 := h.Load(101, addr+8)
	if r2.Done > r1.Done {
		t.Fatalf("merged load done=%d after original=%d", r2.Done, r1.Done)
	}
}

func TestFlushRemovesEverywhere(t *testing.T) {
	h := NewHierarchy(testConfig())
	addr := uint64(0xa000)
	h.Load(0, addr)
	h.Flush(addr)
	if h.Probe(addr) != LevelMem {
		t.Fatalf("after flush probe = %v", h.Probe(addr))
	}
}

func TestTLBHitMiss(t *testing.T) {
	h := NewHierarchy(testConfig())
	done, hit := h.Translate(100, 0x5000)
	if hit || done != 138 { // walk (30) + L2-TLB lookup (8)
		t.Fatalf("cold translate: hit=%v done=%d, want miss/138", hit, done)
	}
	done, hit = h.Translate(200, 0x5008)
	if !hit || done != 200 {
		t.Fatalf("warm translate: hit=%v done=%d", hit, done)
	}
	if !h.TLBProbe(0x5ff0) {
		t.Fatal("probe same page should hit")
	}
	if h.TLBProbe(0x999000) {
		t.Fatal("probe unmapped page should miss")
	}
}

func TestTLBProbeDoesNotInstall(t *testing.T) {
	h := NewHierarchy(testConfig())
	h.TLBProbe(0x7000)
	if h.TLB().Hits != 0 || h.TLB().Misses != 0 {
		t.Fatal("probe must not count as access")
	}
	_, hit := h.Translate(0, 0x7000)
	if hit {
		t.Fatal("probe must not have installed the page")
	}
}

func TestTLBLRUReplacement(t *testing.T) {
	cfg := testConfig()
	cfg.TLB.Entries = 2
	h := NewHierarchy(cfg)
	const page = 1 << 16 // default TLB page size
	h.Translate(0, 1*page)
	h.Translate(1, 2*page)
	h.Translate(2, 1*page) // refresh page 1
	h.Translate(3, 3*page) // evicts page 2
	if !h.TLBProbe(1 * page) {
		t.Fatal("page 1 should survive (recently used)")
	}
	if h.TLBProbe(2 * page) {
		t.Fatal("page 2 should be evicted (LRU)")
	}
}

func TestSharedSlicesPartitionLines(t *testing.T) {
	cfg := testConfig()
	cfg.L3Slices = 4
	s := NewShared(cfg)
	h := s.AttachCore()
	// Slice selection is a pure function of the line address.
	for _, addr := range []uint64{0, 0x40, 0x1000, 0xdeadbe00} {
		a := s.slice(addr)
		b := s.slice(addr + 63) // same line
		if a != b {
			t.Fatalf("same line mapped to two slices for %#x", addr)
		}
	}
	// A fill lands in exactly one slice and Probe finds it.
	h.Load(0, 0x4000)
	h.L1D().Invalidate(0x4000)
	h.L2().Invalidate(0x4000)
	if h.Probe(0x4000) != L3 {
		t.Fatal("line should be in some L3 slice")
	}
	n := 0
	for _, sl := range s.slices {
		if sl.Lookup(0x4000) {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("line present in %d slices, want 1", n)
	}
}

func TestInvalidateNotifiesListener(t *testing.T) {
	h := NewHierarchy(testConfig())
	var got []uint64
	h.OnInvalidate = func(la uint64) { got = append(got, la) }
	h.Load(0, 0x8000)
	h.Invalidate(0x8000)
	if len(got) != 1 || got[0] != 0x8000 {
		t.Fatalf("listener got %v", got)
	}
	if h.Probe(0x8000) == L1 || h.Probe(0x8000) == L2 {
		t.Fatal("line should be gone from private caches")
	}
}

func TestFetchAccessUsesICache(t *testing.T) {
	h := NewHierarchy(testConfig())
	r := h.FetchAccess(0, 0x100)
	if r.Level != LevelMem {
		t.Fatalf("cold fetch level = %v", r.Level)
	}
	r = h.FetchAccess(1000, 0x100)
	if r.Level != L1 || r.Done != 1002 {
		t.Fatalf("warm fetch: %+v", r)
	}
	// Instruction fills must not pollute the D-cache.
	if h.L1D().Lookup(0x100) {
		t.Fatal("fetch filled the D-cache")
	}
}

func TestPropertyOblNeverChangesProbe(t *testing.T) {
	h := NewHierarchy(testConfig())
	// Preload a few lines.
	for i := uint64(0); i < 32; i++ {
		h.Load(i*10, 0x1000+i*64)
	}
	f := func(addr uint32, predSel uint8) bool {
		pred := Level(predSel%3) + L1
		target := uint64(addr) & 0xfffff
		before := make([]Level, 32)
		for i := range before {
			before[i] = h.Probe(0x1000 + uint64(i)*64)
		}
		h.OblLoad(uint64(addr), target, pred)
		for i := range before {
			if h.Probe(0x1000+uint64(i)*64) != before[i] {
				return false
			}
		}
		return h.Probe(target) == before[func() int {
			if target >= 0x1000 && target < 0x1000+32*64 {
				return int((target - 0x1000) / 64)
			}
			return 0
		}()] || true // target presence itself must also be unchanged; checked above for tracked range
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyOf(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.LatencyOf(L1) != 2 || cfg.LatencyOf(L2) != 12 || cfg.LatencyOf(L3) != 40 {
		t.Fatal("LatencyOf must match Table I")
	}
	if cfg.LatencyOf(LevelMem) != 140 {
		t.Fatalf("LatencyOf(Mem) = %d", cfg.LatencyOf(LevelMem))
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{LevelNone: "none", L1: "L1", L2: "L2", L3: "L3", LevelMem: "Mem"} {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestTwoLevelTLB(t *testing.T) {
	cfg := testConfig()
	cfg.TLB.Entries = 2
	cfg.TLB.L2Entries = 8
	h := NewHierarchy(cfg)
	const page = 1 << 16

	// Walk three pages: page 1 is evicted from the tiny L1 TLB but stays
	// in the L2 TLB.
	h.Translate(0, 1*page)
	h.Translate(1, 2*page)
	h.Translate(2, 3*page)
	if h.TLBProbe(1 * page) {
		t.Fatal("page 1 should have left the L1 TLB")
	}
	done, hit := h.Translate(100, 1*page)
	if hit {
		t.Fatal("L1 TLB should miss")
	}
	if got := done - 100; got != cfg.TLB.L2Latency {
		t.Fatalf("L2-TLB hit latency = %d, want %d", got, cfg.TLB.L2Latency)
	}
	if h.TLB().L2Hits != 1 {
		t.Fatalf("L2 hits = %d, want 1", h.TLB().L2Hits)
	}
	// And the translation was re-installed in the L1 TLB.
	if !h.TLBProbe(1 * page) {
		t.Fatal("L2 hit should re-install into the L1 TLB")
	}
	// Obl-Ld translation (Probe) still only sees the L1 TLB: a page
	// resident only in the L2 TLB is ⊥ for a DO lookup (§V-B).
	if h.TLBProbe(2 * page) {
		t.Fatal("page 2 must be L1-TLB-miss for the DO path")
	}
}
