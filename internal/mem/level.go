// Package mem models the timing of the memory subsystem from the paper's
// §VI-B1: per-core private L1I/L1D and L2 caches, a shared sliced L3, a
// DRAM memory controller with row-buffer locality, and an L1 TLB. Caches
// are banked, write-back/write-allocate, LRU, with a bounded number of
// MSHRs; concurrent requests contend for banks, MSHRs and DRAM banks.
//
// The model is *timing and presence only*: caches track tags, not data.
// Architectural data lives in isa.Memory, which the pipeline reads and
// writes directly; this package answers "when does the access complete and
// which level served it". This split keeps every configuration's
// architectural behaviour identical by construction — exactly the property
// a speculative-execution defense must have.
//
// The data-oblivious lookup path required by SDO (§VI-B2) is OblLoad: a
// tag-only probe of levels L1..p whose resource usage (banks blocked, MSHRs
// held, response timing) is a function of the predicted level p alone,
// never of the address.
package mem

import "fmt"

// Level identifies a level of the memory hierarchy. It is also the domain
// of the SDO location predictor: a prediction is a Level.
type Level uint8

const (
	// LevelNone means "not present anywhere / no result".
	LevelNone Level = iota
	// L1 is the private first-level data cache.
	L1
	// L2 is the private second-level cache.
	L2
	// L3 is the shared, sliced last-level cache.
	L3
	// LevelMem is DRAM.
	LevelMem
)

// NumCacheLevels is the number of cache levels (excluding DRAM).
const NumCacheLevels = 3

// String returns a short name for the level.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case LevelMem:
		return "Mem"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// LineBytes is the cache line size used throughout (Table I: 64B).
const LineBytes = 64

// LineAddr returns the line-aligned address containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ (LineBytes - 1) }

// CacheConfig sizes one cache level.
type CacheConfig struct {
	SizeBytes int
	Ways      int
	Latency   uint64 // total load-to-use latency when hitting this level
	Banks     int
	MSHRs     int
}

// DRAMConfig parameterises the memory controller model.
type DRAMConfig struct {
	Banks        int
	RowBytes     int    // row-buffer size
	RowHitLat    uint64 // extra cycles beyond L3 latency on a row-buffer hit
	RowMissLat   uint64 // extra cycles on a row-buffer miss (precharge+activate)
	BurstCycles  uint64 // bank occupancy per access
	QueueEntries int    // controller queue; full queue stalls new requests
}

// TLBConfig parameterises the two-level data TLB. An L1-TLB miss that
// hits the L2 TLB costs L2Latency; a full miss costs WalkCycles. Obl-Lds
// consult only the L1 TLB (§V-B: even the L2 TLB lookup would be an
// address-dependent resource use observable by an SMT sibling).
type TLBConfig struct {
	Entries    int // L1 TLB entries (fully associative)
	L2Entries  int // L2 TLB entries (fully associative; 0 disables)
	PageBits   int
	L2Latency  uint64 // added cycles for an L1-miss/L2-hit translation
	WalkCycles uint64 // page-table walk latency on a full miss
}

// Config collects the whole hierarchy's parameters.
type Config struct {
	L1I, L1D, L2, L3 CacheConfig
	L3Slices         int // the shared L3 is split into this many slices
	DRAM             DRAMConfig
	TLB              TLBConfig
	// OblBlockCycles is how long an Obl-Ld blocks *all* banks of a cache it
	// looks up (the §VI-B2 "all succeeding requests are blocked" rule).
	OblBlockCycles uint64
}

// DefaultConfig returns the paper's Table I parameters (latencies in core
// cycles; DRAM ≈ 50 ns past the L2 at 2 GHz).
func DefaultConfig() Config {
	return Config{
		L1I:      CacheConfig{SizeBytes: 32 << 10, Ways: 4, Latency: 2, Banks: 4, MSHRs: 16},
		L1D:      CacheConfig{SizeBytes: 32 << 10, Ways: 8, Latency: 2, Banks: 4, MSHRs: 16},
		L2:       CacheConfig{SizeBytes: 256 << 10, Ways: 8, Latency: 12, Banks: 8, MSHRs: 16},
		L3:       CacheConfig{SizeBytes: 2 << 20, Ways: 8, Latency: 40, Banks: 8, MSHRs: 16},
		L3Slices: 1,
		DRAM: DRAMConfig{
			Banks:        8,
			RowBytes:     8 << 10,
			RowHitLat:    60,
			RowMissLat:   100,
			BurstCycles:  4,
			QueueEntries: 32,
		},
		// 64 entries x 64KB pages cover 4MB: SPEC-class L1-TLB miss rates
		// stay low (§V-B relies on this), as with large pages on real HW.
		// A 512-entry L2 TLB catches most of the remainder at 8 cycles.
		TLB:            TLBConfig{Entries: 64, L2Entries: 512, PageBits: 16, L2Latency: 8, WalkCycles: 30},
		OblBlockCycles: 1,
	}
}

// LatencyOf returns the load-to-use latency of hitting the given level
// (for LevelMem the DRAM row-miss worst case past the L3).
func (c *Config) LatencyOf(l Level) uint64 {
	switch l {
	case L1:
		return c.L1D.Latency
	case L2:
		return c.L2.Latency
	case L3:
		return c.L3.Latency
	case LevelMem:
		return c.L3.Latency + c.DRAM.RowMissLat
	}
	return 0
}
