package mem

import "repro/internal/obs"

// AccessResult describes a completed normal-path access.
type AccessResult struct {
	Done  uint64 // cycle the data is available
	Level Level  // level that served the request
}

// OblResult describes a data-oblivious lookup (the Obl-Ld's DO variant
// execution, §V-B). Timing is a function of the predicted level and public
// contention only.
type OblResult struct {
	Start     uint64 // when the lookup began, after public contention
	Done      uint64 // when the response from the *predicted* level arrives
	EarlyDone uint64 // when the hit level's response arrives (== Done if no hit)
	Found     Level  // closest level holding the line, LevelNone if absent up to the prediction
}

// Shared is the memory system state shared by all cores: the sliced L3,
// the DRAM controller, and the list of attached cores (used to broadcast
// invalidations; the full MESI directory lives in internal/coherence).
type Shared struct {
	cfg    Config
	slices []*Cache
	dram   *DRAM
	cores  []*Hierarchy
}

// NewShared builds the shared L3 + DRAM. The configured L3 size is split
// evenly across L3Slices slices.
func NewShared(cfg Config) *Shared {
	if cfg.L3Slices <= 0 {
		cfg.L3Slices = 1
	}
	sliceCfg := cfg.L3
	sliceCfg.SizeBytes = cfg.L3.SizeBytes / cfg.L3Slices
	s := &Shared{cfg: cfg, dram: NewDRAM(cfg.DRAM)}
	for i := 0; i < cfg.L3Slices; i++ {
		s.slices = append(s.slices, NewCache(sliceCfg))
	}
	return s
}

// Config returns the shared configuration.
func (s *Shared) Config() Config { return s.cfg }

// DRAMStats exposes the controller for stats readers.
func (s *Shared) DRAMStats() *DRAM { return s.dram }

// LLCStats returns the aggregate hit/miss counts across the L3 slices
// (the whole last-level cache), for MPKI-style derived statistics.
func (s *Shared) LLCStats() (hits, misses uint64) {
	for _, sl := range s.slices {
		hits += sl.Hits
		misses += sl.Misses
	}
	return hits, misses
}

// slice returns the L3 slice serving addr ("a hash function set at design
// time determines the slice associated with a cache line", §VI-B1).
func (s *Shared) slice(addr uint64) *Cache {
	if len(s.slices) == 1 {
		return s.slices[0]
	}
	h := (LineAddr(addr) / LineBytes) * 0x9e3779b97f4a7c15
	return s.slices[(h>>33)%uint64(len(s.slices))]
}

// AttachCore creates a new core-private hierarchy bound to this shared
// system and returns it.
func (s *Shared) AttachCore() *Hierarchy {
	h := &Hierarchy{
		cfg:    s.cfg,
		shared: s,
		coreID: len(s.cores),
		l1i:    NewCache(s.cfg.L1I),
		l1d:    NewCache(s.cfg.L1D),
		l2:     NewCache(s.cfg.L2),
		tlb:    NewTLB(s.cfg.TLB),
	}
	s.cores = append(s.cores, h)
	return h
}

// Hierarchy is one core's view of the memory system: private L1I/L1D/L2 and
// TLB, plus the shared L3/DRAM. It implements every access path the
// pipeline needs, including the data-oblivious one.
type Hierarchy struct {
	cfg    Config
	shared *Shared
	coreID int
	l1i    *Cache
	l1d    *Cache
	l2     *Cache
	tlb    *TLB

	obs *obs.Recorder // typed event recorder (nil: tracing off)

	oblSeq uint64 // synthetic MSHR keys for non-merging Obl-Ld allocations

	// Speculative-visibility shadow structures (spec.go): active only
	// when a protection scheme selected a SpecMode.
	specMode  SpecMode
	spec      map[uint64]specEntry // line addr -> speculative fill
	specTLB   map[uint64]uint64    // page -> fill seq (SpecShadow only)
	specStamp uint64               // shadow LRU clock

	// OnInvalidate, if set, is called when a line is invalidated in this
	// core's private caches by an external request (coherence). The load
	// queue registers here to detect consistency violations (§V-C1).
	OnInvalidate func(lineAddr uint64)

	// Stats.
	OblLookups uint64
	OblFound   uint64

	// Speculative-shadow stats (spec.go).
	SpecLoads      uint64 // loads routed through the shadow path
	SpecShadowHits uint64 // served by an existing shadow entry
	SpecCommits    uint64 // fills promoted to the committed hierarchy
	SpecDiscards   uint64 // fills discarded by a squash
	SpecEvictions  uint64 // bounded-shadow capacity evictions (SpecShadow)
	SpecTLBWalks   uint64 // shadow-TLB walks (SpecShadow)
}

// NewHierarchy is a convenience for single-core use: it builds a Shared
// system with the given config and attaches one core.
func NewHierarchy(cfg Config) *Hierarchy { return NewShared(cfg).AttachCore() }

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// CoreID returns the index of this core in its shared system.
func (h *Hierarchy) CoreID() int { return h.coreID }

// L1D, L2, TLB expose subcomponents for stats readers and tests.
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L2 returns the private second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// L1I returns the private instruction cache.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// TLB returns the core's data TLB.
func (h *Hierarchy) TLB() *TLB { return h.tlb }

// Shared returns the shared L3/DRAM system.
func (h *Hierarchy) Shared() *Shared { return h.shared }

// incremental latencies: the per-level additional delay such that a hit at
// level k completes at sum of increments 1..k under zero contention,
// matching the Table I "total" latencies.
func (h *Hierarchy) inc(l Level) uint64 {
	switch l {
	case L1:
		return h.cfg.L1D.Latency
	case L2:
		return h.cfg.L2.Latency - h.cfg.L1D.Latency
	case L3:
		return h.cfg.L3.Latency - h.cfg.L2.Latency
	}
	return 0
}

// Probe returns the closest level holding addr without any state change:
// the oracle used by the Perfect predictor and by tests.
func (h *Hierarchy) Probe(addr uint64) Level {
	switch {
	case h.l1d.Lookup(addr):
		return L1
	case h.l2.Lookup(addr):
		return L2
	case h.shared.slice(addr).Lookup(addr):
		return L3
	default:
		return LevelMem
	}
}

// Load performs a normal (filling, LRU-updating) data load issued at time
// now and returns its completion time and serving level.
func (h *Hierarchy) Load(now uint64, addr uint64) AccessResult {
	return h.walk(h.l1d, now, addr, false)
}

// Store performs the cache access for a committed store (write-allocate,
// write-back).
func (h *Hierarchy) Store(now uint64, addr uint64) AccessResult {
	return h.walk(h.l1d, now, addr, true)
}

// FetchAccess performs an instruction fetch for the line containing addr.
func (h *Hierarchy) FetchAccess(now uint64, addr uint64) AccessResult {
	return h.walk(h.l1i, now, addr, false)
}

// walk is the shared normal-path state machine: check/fill each level in
// order, modelling bank and MSHR contention at every level crossed.
//
// With a recorder attached it dispatches to walkTraced (obs.go), an
// instrumented copy of this body: keeping the emits out of this function
// entirely — rather than behind nil checks at each exit — is what keeps
// the untraced L1-hit path at its pre-instrumentation cost (the checks'
// register pressure alone measured ~5% on BenchmarkNormalLoad). The
// traced-run-equivalence test pins the two bodies to identical timing.
func (h *Hierarchy) walk(l1 *Cache, now uint64, addr uint64, write bool) AccessResult {
	if h.obs != nil {
		return h.walkTraced(l1, now, addr, write)
	}
	la := LineAddr(addr)
	slice := h.shared.slice(addr)

	// Presence is determined up front (tag-only); the walk then charges
	// timing for every level it crosses and performs the fills.
	var level Level
	switch {
	case l1.Lookup(addr):
		level = L1
	case h.l2.Lookup(addr):
		level = L2
	case slice.Lookup(addr):
		level = L3
	default:
		level = LevelMem
	}

	t := l1.ReserveBank(now, addr) + h.inc(L1)
	if level == L1 {
		l1.Touch(addr, write)
		return AccessResult{Done: t, Level: L1}
	}
	l1.Touch(addr, write) // records the miss
	start, mdone, merged := l1.AcquireMSHR(t, la, true)
	if merged {
		done := mdone
		if done < t {
			done = t
		}
		return AccessResult{Done: done, Level: level}
	}
	t = start

	t = h.l2.ReserveBank(t, addr) + h.inc(L2)
	var done uint64
	if level == L2 {
		h.l2.Touch(addr, false)
		done = t
	} else {
		h.l2.Touch(addr, false)
		start, mdone, merged := h.l2.AcquireMSHR(t, la, true)
		if merged {
			done = mdone
			if done < t {
				done = t
			}
			h.l2.CommitMSHR(la, done)
			l1.CommitMSHR(la, done)
			l1.Fill(addr, write)
			return AccessResult{Done: done, Level: level}
		}
		t = start
		t = slice.ReserveBank(t, addr) + h.inc(L3)
		if level == L3 {
			slice.Touch(addr, false)
			done = t
		} else {
			slice.Touch(addr, false)
			start, mdone, merged := slice.AcquireMSHR(t, la, true)
			if merged {
				done = mdone
				if done < t {
					done = t
				}
			} else {
				t = start
				done = h.shared.dram.Access(t, addr)
			}
			slice.CommitMSHR(la, done)
			slice.Fill(addr, false)
		}
		h.l2.CommitMSHR(la, done)
		h.l2.Fill(addr, false)
	}
	l1.CommitMSHR(la, done)
	l1.Fill(addr, write)
	return AccessResult{Done: done, Level: level}
}

// OblLoad performs a data-oblivious lookup of levels L1..pred (§V-B,
// §VI-B2). It never modifies cache state; it blocks all banks of each
// level it visits; it allocates a private, non-merged MSHR at each level it
// crosses; and for the L3 it visits *all* slices. Its timing is therefore
// a function of pred and public contention only.
//
// pred is normally a cache level (L1..L3): predictions of LevelMem revert
// to STT delay in the core and never reach the memory system. When the
// optional DO variant for DRAM (§VI-B2 discusses and rejects it as a poor
// complexity/performance trade-off; Config's ablation support architects
// it anyway) is requested with pred == LevelMem, the lookup additionally
// performs a constant worst-case DRAM access: always row-miss timing, no
// row-buffer or scheduler state is consulted or updated.
func (h *Hierarchy) OblLoad(now uint64, addr uint64, pred Level) OblResult {
	if pred < L1 || pred > LevelMem {
		panic("mem: OblLoad prediction must be L1, L2, L3 or Mem")
	}
	h.OblLookups++
	res := OblResult{Found: LevelNone}
	t := now
	var mshrKeys []struct {
		c   *Cache
		key uint64
	}
	cacheDepth := pred
	if cacheDepth > L3 {
		cacheDepth = L3
	}
	for lvl := L1; lvl <= cacheDepth; lvl++ {
		switch lvl {
		case L1:
			t = h.l1d.ReserveAllBanks(t, h.cfg.OblBlockCycles) + h.inc(L1)
			if res.Start == 0 {
				res.Start = t - h.inc(L1)
			}
			if res.Found == LevelNone && h.l1d.Lookup(addr) {
				res.Found = L1
			}
		case L2:
			t = h.l2.ReserveAllBanks(t, h.cfg.OblBlockCycles) + h.inc(L2)
			if res.Found == LevelNone && h.l2.Lookup(addr) {
				res.Found = L2
			}
		case L3:
			// All slices are looked up; the request completes when the
			// slowest slice responds.
			start := t
			for _, sl := range h.shared.slices {
				if s := sl.ReserveAllBanks(t, h.cfg.OblBlockCycles); s > start {
					start = s
				}
			}
			t = start + h.inc(L3)
			if res.Found == LevelNone && h.shared.slice(addr).Lookup(addr) {
				res.Found = L3
			}
		}
		if res.Found == lvl {
			res.EarlyDone = t
		}
		// Crossing to the next level holds a private MSHR until the whole
		// operation completes.
		if lvl < cacheDepth {
			var c *Cache
			if lvl == L1 {
				c = h.l1d
			} else {
				c = h.l2
			}
			h.oblSeq++
			key := 1<<63 | h.oblSeq // cannot collide with line addresses
			start, _, _ := c.AcquireMSHR(t, key, false)
			t = start
			mshrKeys = append(mshrKeys, struct {
				c   *Cache
				key uint64
			}{c, key})
		}
	}
	if pred == LevelMem {
		// The DO DRAM variant: one constant, row-buffer-blind access.
		t += h.cfg.DRAM.RowMissLat
		if res.Found == LevelNone {
			res.Found = LevelMem // DRAM always holds the data
			res.EarlyDone = t
		}
	}
	res.Done = t
	if res.Found == LevelNone {
		res.EarlyDone = res.Done
	}
	for _, mk := range mshrKeys {
		mk.c.CommitMSHR(mk.key, res.Done)
	}
	if res.Found != LevelNone {
		h.OblFound++
	}
	return res
}

// Flush removes the line containing addr from the entire hierarchy
// (clflush). Architecturally a no-op; dirty data is already current in
// isa.Memory by construction.
func (h *Hierarchy) Flush(addr uint64) {
	h.l1d.Invalidate(addr)
	h.l1i.Invalidate(addr)
	h.l2.Invalidate(addr)
	for _, sl := range h.shared.slices {
		sl.Invalidate(addr)
	}
	h.specFlush(addr)
}

// Translate runs the normal TLB path (LRU update, walk on miss).
func (h *Hierarchy) Translate(now uint64, addr uint64) (done uint64, hit bool) {
	done, hit = h.tlb.Translate(now, addr)
	if !hit && h.obs != nil {
		h.emitTLBMiss(now, addr, done)
	}
	return done, hit
}

// TLBProbe is the DO translation path: L1-TLB tag check only (§V-B).
func (h *Hierarchy) TLBProbe(addr uint64) bool { return h.tlb.Probe(addr) }

// Invalidate removes the line from this core's private caches on behalf of
// an external coherence request and notifies the registered listener
// (typically the core's load queue).
func (h *Hierarchy) Invalidate(lineAddr uint64) {
	h.l1d.Invalidate(lineAddr)
	h.l2.Invalidate(lineAddr)
	h.specInvalidate(lineAddr)
	// The listener is notified even when the line was not present in the
	// private caches: loads may have read the line obliviously without
	// caching it (the missed-invalidation problem, §V-C1 — exactly why
	// validations exist). The listener filters by address.
	if h.OnInvalidate != nil {
		h.OnInvalidate(LineAddr(lineAddr))
	}
}
