package mem

import "testing"

// specHierarchy returns a hierarchy in the given speculative mode.
func specHierarchy(m SpecMode) *Hierarchy {
	h := NewHierarchy(testConfig())
	h.SetSpecMode(m)
	return h
}

func TestSpecLoadInvisibleToCommittedState(t *testing.T) {
	for _, m := range []SpecMode{SpecShadow, SpecLabel} {
		h := specHierarchy(m)
		addr := uint64(0x40000)
		r := h.SpecLoad(0, addr, 10)
		if r.Level != LevelMem {
			t.Fatalf("%v: cold spec load level = %v, want mem", m, r.Level)
		}
		if h.Probe(addr) != LevelMem {
			t.Fatalf("%v: spec load leaked into committed caches (probe=%v)", m, h.Probe(addr))
		}
		// A second committed-path load still pays the full miss: the shadow
		// fill is invisible to the committed walk.
		if got := h.Load(100_000, addr); got.Level != LevelMem {
			t.Fatalf("%v: committed load after spec fill hit %v, want mem", m, got.Level)
		}
	}
}

func TestSpecLoadShadowHitTiming(t *testing.T) {
	h := specHierarchy(SpecShadow)
	addr := uint64(0x40000)
	h.SpecLoad(0, addr, 10)
	// Re-access far later (no bank conflicts): shadow hit at L1 timing.
	r := h.SpecLoad(50_000, addr, 11)
	if r.Level != L1 || r.Done != 50_000+uint64(h.cfg.L1D.Latency) {
		t.Fatalf("shadow hit: level=%v done=%d, want L1/+%d", r.Level, r.Done-50_000, h.cfg.L1D.Latency)
	}
	if h.SpecShadowHits != 1 {
		t.Fatalf("SpecShadowHits = %d, want 1", h.SpecShadowHits)
	}
}

// TestSpecLoadTimingIsRowStateBlind checks the constant-DRAM rule: two
// spec misses to the same DRAM row cost the same as two to different
// rows, so row-buffer state opened by transient accesses teaches a
// same-core prober nothing.
func TestSpecLoadTimingIsRowStateBlind(t *testing.T) {
	h := specHierarchy(SpecShadow)
	r1 := h.SpecLoad(0, 0x100000, 10)
	r2 := h.SpecLoad(50_000, 0x100000+4096, 11) // same 8KB row
	h2 := specHierarchy(SpecShadow)
	r3 := h2.SpecLoad(0, 0x100000, 10)
	r4 := h2.SpecLoad(50_000, 0x900000, 11) // different row
	if r2.Done-50_000 != r4.Done-50_000 || r1.Done != r3.Done {
		t.Fatalf("spec miss latency depends on DRAM row state: same-row %d/%d, cross-row %d/%d",
			r1.Done, r2.Done-50_000, r3.Done, r4.Done-50_000)
	}
}

func TestSpecLoadIsTagOnlyOnCommitted(t *testing.T) {
	h := specHierarchy(SpecLabel)
	hot := uint64(0x40)
	h.Load(0, hot) // committed: now in L1
	// A spec load of a committed-hot line reports its true level but must
	// not refresh committed LRU state. Fill enough conflicting committed
	// lines to evict, then verify the hot line actually left L1.
	if r := h.SpecLoad(10_000, hot, 5); r.Level != L1 {
		t.Fatalf("spec load of L1-hot line: level %v", r.Level)
	}
	if h.SpecLoads != 1 || h.SpecShadowHits != 0 {
		t.Fatalf("counters: loads=%d hits=%d", h.SpecLoads, h.SpecShadowHits)
	}
}

func TestCommitSpecPromotes(t *testing.T) {
	for _, m := range []SpecMode{SpecShadow, SpecLabel} {
		h := specHierarchy(m)
		addr := uint64(0x40000)
		h.SpecLoad(0, addr, 10)
		h.CommitSpec(addr, 10)
		if h.Probe(addr) != L1 {
			t.Fatalf("%v: after commit, probe = %v, want L1", m, h.Probe(addr))
		}
		if len(h.SpecContents()) != 0 {
			t.Fatalf("%v: shadow entry not released at commit", m)
		}
		if h.SpecCommits != 1 {
			t.Fatalf("%v: SpecCommits = %d, want 1", m, h.SpecCommits)
		}
	}
}

func TestSquashSpecDiscards(t *testing.T) {
	h := specHierarchy(SpecShadow)
	h.SpecLoad(0, 0x40000, 10)
	h.SpecLoad(100, 0x50000, 20)
	h.SquashSpec(15) // squash from seq 15: keeps 10, drops 20
	if n := len(h.SpecContents()); n != 1 {
		t.Fatalf("after squash, %d shadow lines, want 1", n)
	}
	if h.SpecDiscards != 1 {
		t.Fatalf("SpecDiscards = %d, want 1", h.SpecDiscards)
	}
	// The squashed line left no committed trace and no shadow trace: a
	// later spec load of it walks to memory again.
	if r := h.SpecLoad(50_000, 0x50000, 30); r.Level != LevelMem {
		t.Fatalf("squashed line still visible: level %v", r.Level)
	}
}

func TestShadowBounded(t *testing.T) {
	h := specHierarchy(SpecShadow)
	for i := 0; i < shadowLines+8; i++ {
		h.SpecLoad(uint64(i)*1000, uint64(0x100000+i*64), uint64(i+1))
	}
	if n := len(h.SpecContents()); n != shadowLines {
		t.Fatalf("shadow holds %d lines, want bounded at %d", n, shadowLines)
	}
	if h.SpecEvictions != 8 {
		t.Fatalf("SpecEvictions = %d, want 8", h.SpecEvictions)
	}
	// SpecLabel is unbounded (labels live in the arrays themselves).
	h2 := specHierarchy(SpecLabel)
	for i := 0; i < shadowLines+8; i++ {
		h2.SpecLoad(uint64(i)*1000, uint64(0x100000+i*64), uint64(i+1))
	}
	if n := len(h2.SpecContents()); n != shadowLines+8 {
		t.Fatalf("label store holds %d lines, want %d", n, shadowLines+8)
	}
}

func TestSpecTranslateShadowTLB(t *testing.T) {
	h := specHierarchy(SpecShadow)
	addr := uint64(0x40000)
	// Cold page: committed TLB miss, walk into the shadow TLB.
	done, hit := h.SpecTranslate(0, addr, 10)
	if hit || done != uint64(h.cfg.TLB.WalkCycles) {
		t.Fatalf("cold spec translate: hit=%v done=%d, want miss/+%d", hit, done, h.cfg.TLB.WalkCycles)
	}
	if h.SpecTLBWalks != 1 {
		t.Fatalf("SpecTLBWalks = %d, want 1", h.SpecTLBWalks)
	}
	// Same page again: shadow TLB hit, free.
	if done, hit = h.SpecTranslate(100, addr, 11); !hit || done != 100 {
		t.Fatalf("shadow TLB re-hit: hit=%v done=%d", hit, done)
	}
	// The committed TLB saw nothing: a committed translate still walks.
	if _, chit := h.tlb.Translate(200, addr); chit {
		t.Fatal("speculative walk leaked into the committed TLB")
	}
}

func TestSpecTranslateCommitInstallsTLB(t *testing.T) {
	h := specHierarchy(SpecShadow)
	addr := uint64(0x40000)
	h.SpecTranslate(0, addr, 10)
	h.SpecLoad(10, addr, 10)
	h.CommitSpec(addr, 10)
	// Promotion installed the page: committed translate now hits.
	if _, hit := h.tlb.Translate(1000, addr); !hit {
		t.Fatal("commit did not install the page in the committed TLB")
	}
}

func TestSquashPrunesShadowTLB(t *testing.T) {
	h := specHierarchy(SpecShadow)
	h.SpecTranslate(0, 0x40000, 10)
	h.SquashSpec(5)
	// The shadow TLB entry died with the squash: the next spec translate
	// walks again.
	if _, hit := h.SpecTranslate(100, 0x40000, 20); hit {
		t.Fatal("shadow TLB entry survived the squash")
	}
	if h.SpecTLBWalks != 2 {
		t.Fatalf("SpecTLBWalks = %d, want 2", h.SpecTLBWalks)
	}
}

func TestSpecLabelUsesNormalTLB(t *testing.T) {
	h := specHierarchy(SpecLabel)
	addr := uint64(0x40000)
	// SpecBox shields caches only: translation is the normal TLB path and
	// installs into the committed TLB.
	h.SpecTranslate(0, addr, 10)
	if _, hit := h.tlb.Translate(1000, addr); !hit {
		t.Fatal("SpecLabel translate should use (and fill) the committed TLB")
	}
	if h.SpecTLBWalks != 0 {
		t.Fatalf("SpecTLBWalks = %d, want 0 under SpecLabel", h.SpecTLBWalks)
	}
}

func TestFlushReachesShadow(t *testing.T) {
	h := specHierarchy(SpecShadow)
	addr := uint64(0x40000)
	h.SpecLoad(0, addr, 10)
	h.Flush(addr)
	if n := len(h.SpecContents()); n != 0 {
		t.Fatalf("flushed line lingers in the shadow (%d entries)", n)
	}
}

func TestSpecResetOnSetState(t *testing.T) {
	h := specHierarchy(SpecShadow)
	h.SpecLoad(0, 0x40000, 10)
	h.SpecTranslate(0, 0x40000, 10)
	if err := h.SetState(specHierarchy(SpecShadow).State()); err != nil {
		t.Fatal(err)
	}
	if len(h.SpecContents()) != 0 {
		t.Fatal("checkpoint restore kept shadow lines; the shadow is transient")
	}
	if _, hit := h.SpecTranslate(100, 0x40000, 20); hit {
		t.Fatal("checkpoint restore kept shadow TLB entries")
	}
}
