package harness

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// quickSweep runs a reduced sweep for tests: three contrasting workloads,
// all variants, both models, small instruction budget.
func quickSweep(t *testing.T) *Results {
	t.Helper()
	opt := DefaultOptions()
	opt.MaxInstrs = 12_000
	var wls []workload.Workload
	for _, name := range []string{"mcf_r", "deepsjeng_r", "x264_r"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, w)
	}
	opt.Workloads = wls
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSweepCompleteness(t *testing.T) {
	res := quickSweep(t)
	want := 3 * len(core.Variants()) * 2
	if len(res.Runs) != want {
		t.Fatalf("sweep produced %d runs, want %d", len(res.Runs), want)
	}
	for k, r := range res.Runs {
		// Detailed warmup can overshoot its boundary by up to the commit
		// width, so the measured window may be short by as much. (With
		// WarmupFunctional the handoff is exact and the window is never
		// short — TestFunctionalSweepExactWindow asserts that.)
		if r.Committed < res.Opt.MaxInstrs-8 {
			t.Errorf("%v: committed %d < budget %d", k, r.Committed, res.Opt.MaxInstrs)
		}
		if r.Cycles == 0 {
			t.Errorf("%v: zero cycles", k)
		}
	}
}

// smallFunctionalOptions is a reduced functional-warmup sweep grid.
func smallFunctionalOptions(t *testing.T) Options {
	t.Helper()
	opt := DefaultOptions()
	opt.WarmupInstrs = 10_000
	opt.MaxInstrs = 8_000
	opt.WarmupMode = core.WarmupFunctional
	var wls []workload.Workload
	for _, name := range []string{"mcf_r", "x264_r"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, w)
	}
	opt.Workloads = wls
	return opt
}

func TestFunctionalSweepExactWindow(t *testing.T) {
	// With functional warmup the handoff is exact: warmup executes exactly
	// WarmupInstrs, so the measurement window is never short — every run
	// commits at least the full budget (no commit-width slack).
	opt := smallFunctionalOptions(t)
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(opt.Workloads) * len(opt.Variants) * len(opt.Models); len(res.Runs) != want {
		t.Fatalf("sweep produced %d runs, want %d", len(res.Runs), want)
	}
	for k, r := range res.Runs {
		if r.Committed < opt.MaxInstrs {
			t.Errorf("%v: committed %d < budget %d", k, r.Committed, opt.MaxInstrs)
		}
	}
	// Checkpoint accounting: one capture per workload, warmup simulated
	// exactly once per workload.
	if res.CheckpointsCaptured != len(opt.Workloads) {
		t.Errorf("captured %d checkpoints, want %d", res.CheckpointsCaptured, len(opt.Workloads))
	}
	if want := uint64(len(opt.Workloads)) * opt.WarmupInstrs; res.WarmupInstrsSimulated != want {
		t.Errorf("simulated %d warmup instructions, want exactly %d", res.WarmupInstrsSimulated, want)
	}
}

func TestCheckpointReuseBitIdentical(t *testing.T) {
	// The sweep's headline contract: restoring per-workload checkpoints
	// must produce bit-identical results to re-running functional warmup
	// in every cell — while simulating far fewer warmup instructions.
	opt := smallFunctionalOptions(t)
	reuse, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.NoCheckpointReuse = true
	noReuse, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(reuse.Runs) != len(noReuse.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(reuse.Runs), len(noReuse.Runs))
	}
	for k, a := range reuse.Runs {
		b, ok := noReuse.Runs[k]
		if !ok {
			t.Fatalf("missing run %v", k)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: checkpoint reuse changed the result:\nreuse    %+v\nno-reuse %+v", k, a, b)
		}
	}
	cells := uint64(len(opt.Cells()))
	if want := cells * opt.WarmupInstrs; noReuse.WarmupInstrsSimulated != want {
		t.Errorf("no-reuse simulated %d warmup instructions, want %d", noReuse.WarmupInstrsSimulated, want)
	}
	if reuse.WarmupInstrsSimulated >= noReuse.WarmupInstrsSimulated {
		t.Errorf("reuse simulated %d warmup instructions, no-reuse %d: no savings",
			reuse.WarmupInstrsSimulated, noReuse.WarmupInstrsSimulated)
	}
	if noReuse.CheckpointsCaptured != 0 {
		t.Errorf("no-reuse captured %d checkpoints", noReuse.CheckpointsCaptured)
	}
}

func TestAblationCheckpointReuse(t *testing.T) {
	// Ablation cells share the workload checkpoint (ablations only alter
	// speculative execution, which functional warmup has none of), so
	// reuse on/off must agree exactly here too.
	opt := smallFunctionalOptions(t)
	opt.Workloads = opt.Workloads[:1]
	reuse, err := RunAblations(opt, pipeline.Spectre)
	if err != nil {
		t.Fatal(err)
	}
	opt.NoCheckpointReuse = true
	noReuse, err := RunAblations(opt, pipeline.Spectre)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reuse, noReuse) {
		t.Fatalf("ablation rows differ:\nreuse    %+v\nno-reuse %+v", reuse, noReuse)
	}
	for _, r := range reuse {
		if r.NormTime <= 0 {
			t.Fatalf("%s: no measurement", r.Name)
		}
	}
}

func TestExpectedShapeHolds(t *testing.T) {
	// The qualitative results the paper reports, asserted on the reduced
	// sweep (see DESIGN.md "Expected shape").
	res := quickSweep(t)
	for _, m := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		// 1. Unsafe normalizes to 1; protections cost something on the
		// taint-heavy workloads.
		if got := res.AvgNormTime(core.Unsafe, m); got != 1.0 {
			t.Errorf("%v: unsafe normalized time = %.3f", m, got)
		}
		stt := res.AvgNormTime(core.STTLd, m)
		if stt <= 1.0 {
			t.Errorf("%v: STT{ld} should cost something, got %.3f", m, stt)
		}
		// 2. STT{ld+fp} >= STT{ld} (more transmitters delayed).
		if res.AvgNormTime(core.STTLdFp, m)+1e-9 < stt {
			t.Errorf("%v: STT{ld+fp} (%.3f) cheaper than STT{ld} (%.3f)",
				m, res.AvgNormTime(core.STTLdFp, m), stt)
		}
		// 3. Perfect SDO beats both STT baselines.
		if res.AvgNormTime(core.Perfect, m) >= res.AvgNormTime(core.STTLdFp, m) {
			t.Errorf("%v: Perfect (%.3f) should beat STT{ld+fp} (%.3f)",
				m, res.AvgNormTime(core.Perfect, m), res.AvgNormTime(core.STTLdFp, m))
		}
	}
}

func TestPredictorQualityShape(t *testing.T) {
	res := quickSweep(t)
	for _, m := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		p1, a1 := res.PredictorQuality(core.StaticL1, m)
		if p1 != a1 {
			t.Errorf("%v: Static L1 precision (%f) must equal accuracy (%f)", m, p1, a1)
		}
		p3, a3 := res.PredictorQuality(core.StaticL3, m)
		if p3 > a3 {
			t.Errorf("%v: precision cannot exceed accuracy", m)
		}
		// Static L3 accuracy >= Static L1 accuracy (deeper predictions
		// cover more), and its precision is lower than the hybrid's.
		if a3+1e-9 < a1 {
			t.Errorf("%v: Static L3 accuracy (%.3f) < Static L1 (%.3f)", m, a3, a1)
		}
		ph, _ := res.PredictorQuality(core.Hybrid, m)
		if ph <= p3 {
			t.Errorf("%v: Hybrid precision (%.3f) should beat Static L3 (%.3f)", m, ph, p3)
		}
	}
}

func TestBreakdownConsistency(t *testing.T) {
	res := quickSweep(t)
	for _, v := range core.SDOVariants() {
		b := res.BreakdownFor(v, pipeline.Spectre)
		sum := b.Inaccurate + b.Imprecise + b.Validation + b.TLB + b.Other
		if b.TotalPct < 0 {
			t.Errorf("%v: negative total overhead %.2f", v, b.TotalPct)
		}
		if sum > b.TotalPct+1e-6 {
			t.Errorf("%v: components (%.2f) exceed total (%.2f)", v, sum, b.TotalPct)
		}
		if b.Inaccurate < 0 || b.Imprecise < 0 || b.Validation < 0 || b.TLB < 0 || b.Other < 0 {
			t.Errorf("%v: negative component: %+v", v, b)
		}
	}
}

func TestReportsRender(t *testing.T) {
	res := quickSweep(t)
	var buf bytes.Buffer
	res.WriteAll(&buf)
	out := buf.String()
	for _, want := range []string{
		"TABLE I", "TABLE II", "FIGURE 6", "FIGURE 7", "FIGURE 8",
		"TABLE III", "SUMMARY",
		"Hybrid", "Static L2", "Perfect", "STT{ld+fp}",
		"mcf_r", "Avg",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	// Two identical sweeps must agree bit-for-bit on cycle counts.
	a := quickSweep(t)
	b := quickSweep(t)
	for k, ra := range a.Runs {
		rb, ok := b.Runs[k]
		if !ok {
			t.Fatalf("missing run %v", k)
		}
		if ra.Cycles != rb.Cycles || ra.Committed != rb.Committed ||
			ra.TotalSquashes() != rb.TotalSquashes() {
			t.Fatalf("%v: nondeterministic results: %d/%d vs %d/%d cycles",
				k, ra.Cycles, ra.Committed, rb.Cycles, rb.Committed)
		}
	}
}

func TestSerialEqualsParallel(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxInstrs = 6_000
	wl, err := workload.ByName("xalancbmk_r")
	if err != nil {
		t.Fatal(err)
	}
	opt.Workloads = []workload.Workload{wl}
	par, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallel = false
	ser, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	for k, rp := range par.Runs {
		if rs := ser.Runs[k]; rs.Cycles != rp.Cycles {
			t.Fatalf("%v: parallel %d cycles vs serial %d", k, rp.Cycles, rs.Cycles)
		}
	}
}

func TestJSONExport(t *testing.T) {
	res := quickSweep(t)
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var ex Export
	if err := json.Unmarshal(buf.Bytes(), &ex); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(ex.Runs) != len(res.Runs) {
		t.Fatalf("exported %d runs, want %d", len(ex.Runs), len(res.Runs))
	}
	if len(ex.Figure6) == 0 || len(ex.Figure7) == 0 || len(ex.Figure8) == 0 ||
		len(ex.TableIII) == 0 || len(ex.Summary) == 0 {
		t.Fatal("export missing sections")
	}
	// Exported Figure 6 averages must agree with the live computation.
	for _, row := range ex.Figure6 {
		if row.Variant == "Unsafe" && row.NormTime != 1.0 {
			t.Fatalf("unsafe norm time = %v", row.NormTime)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxInstrs = 6_000
	opt.WarmupInstrs = 6_000
	wl, err := workload.ByName("xalancbmk_r")
	if err != nil {
		t.Fatal(err)
	}
	opt.Workloads = []workload.Workload{wl}
	rows, err := RunAblations(opt, pipeline.Spectre)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d ablation rows", len(rows))
	}
	for _, r := range rows {
		if r.NormTime <= 0 {
			t.Fatalf("%s: no measurement", r.Name)
		}
	}
	var buf bytes.Buffer
	WriteAblations(&buf, pipeline.Spectre, rows)
	if !strings.Contains(buf.String(), "no early forwarding") {
		t.Fatal("ablation table incomplete")
	}
}
