package harness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strconv"
	"sync"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs/trace"
	"repro/internal/pipeline"
	"repro/internal/simpoint"
	"repro/internal/workload"
)

// SimMode selects how a sweep executes each cell's measurement window.
type SimMode string

const (
	// SimDetailed simulates the whole window cycle-accurately — the
	// default, and the mode every golden file is produced in.
	SimDetailed SimMode = "detailed"
	// SimSampled is SimPoint-style sampled simulation: the window is BBV-
	// profiled and clustered once per workload (internal/simpoint), only
	// the representative interval of each cluster runs detailed (restored
	// from a functional checkpoint at its start), and whole-window stats
	// are reconstructed as the weighted combination of the
	// representatives' per-instruction rates (ReconstructResult).
	SimSampled SimMode = "sampled"
)

// ParseSimMode parses a -sim-mode flag value ("" means detailed).
func ParseSimMode(s string) (SimMode, error) {
	switch SimMode(s) {
	case "", SimDetailed:
		return SimDetailed, nil
	case SimSampled:
		return SimSampled, nil
	}
	return "", fmt.Errorf("harness: unknown sim mode %q (want %q or %q)", s, SimDetailed, SimSampled)
}

// SamplePlan is a workload's executable sampling plan: the clustering
// result plus one functional-warmup checkpoint at each representative's
// start boundary. A plan depends only on (workload, warmup, window,
// simpoint.Config) — never on variant, model or ablation — so one plan is
// shared by every cell of a sweep grid, exactly like the detailed path's
// single warmup checkpoint.
type SamplePlan struct {
	Plan *simpoint.Plan
	// Checkpoints[i] restores representative Plan.Reps[i]: captured at
	// Reps[i].Start by one continuous warmup pass, so cache/TLB/predictor
	// warmup is carried across the skipped intervals in between.
	Checkpoints []*arch.Checkpoint
}

// BuildSamplePlan profiles one workload's measurement window
// [warmup, warmup+window), clusters it, and captures the representative
// checkpoints in a single warmup pass.
func BuildSamplePlan(wl workload.Workload, warmup, window uint64, cfg simpoint.Config) (*SamplePlan, error) {
	prog, init := wl.Build()
	pr, err := simpoint.ProfileProgram(prog, init, warmup, window, cfg)
	if err != nil {
		return nil, err
	}
	plan, err := pr.Cluster()
	if err != nil {
		return nil, err
	}
	cks := core.CaptureCheckpoints(core.Config{}, prog, init, plan.Boundaries())
	return &SamplePlan{Plan: plan, Checkpoints: cks}, nil
}

// repParams derives the RunParams of one representative interval from the
// cell's base params: restore the representative's checkpoint (functional
// warmup to its start boundary) and run detailed for its length. Interval
// sampling (IntervalCycles) is inherited: each representative produces
// its own time series, collected into Result.SampledWindows by
// ReconstructResult's callers rather than flattened into one fake
// whole-window series.
func (sp *SamplePlan) repParams(base RunParams, ri int) RunParams {
	p := base
	p.WarmupMode = core.WarmupFunctional
	p.WarmupInstrs = sp.Plan.Reps[ri].Start
	p.MaxInstrs = sp.Plan.Reps[ri].Len
	p.Checkpoint = sp.Checkpoints[ri]
	return p
}

// subtractWarmBase removes the checkpoint's warm-access counter baseline
// from a representative's memory-system counters. A restored machine's
// hierarchy counters start at the values functional warmup accumulated by
// the representative's start boundary; subtracting them leaves the
// counts of the representative's own window, which is what the weighted
// per-instruction-rate reconstruction needs. (Detailed whole-window runs
// keep their historical warmup-inclusive memory counters; see DESIGN.md.)
func subtractWarmBase(r core.Result, ck *arch.Checkpoint) core.Result {
	sub := func(v, base uint64) uint64 {
		if v < base {
			return 0
		}
		return v - base
	}
	r.L1DHits = sub(r.L1DHits, ck.Hier.L1D.Hits)
	r.L1DMisses = sub(r.L1DMisses, ck.Hier.L1D.Misses)
	r.L2Hits = sub(r.L2Hits, ck.Hier.L2.Hits)
	r.L2Misses = sub(r.L2Misses, ck.Hier.L2.Misses)
	r.TLBMisses = sub(r.TLBMisses, ck.Hier.TLB.Misses)
	r.DRAMRowHits = sub(r.DRAMRowHits, ck.Hier.DRAM.RowHits)
	r.DRAMRowMisses = sub(r.DRAMRowMisses, ck.Hier.DRAM.RowMisses)
	return r
}

// RunSampledCell executes one sweep cell in sampled mode: every
// representative interval of the plan runs as its own fault-isolated
// RunCell (retries, deadlines and the stall watchdog apply per interval),
// up to workers of them concurrently, and the results are recombined into
// one whole-window core.Result. Returns the reconstructed result and the
// total retries across intervals.
func RunSampledCell(ctx context.Context, workers int, wl workload.Workload, v core.Variant, m pipeline.AttackModel,
	ab core.Ablation, sp *SamplePlan, p RunParams, pol RunPolicy, inj *faults.Injector) (core.Result, int, error) {
	reps := make([]core.Result, len(sp.Plan.Reps))
	parent := trace.FromContext(ctx)
	var mu sync.Mutex
	var retries int
	err := RunPool(ctx, workers, len(reps), func(ctx context.Context, i int) error {
		// One span per representative interval; its RunCell's attempt
		// spans nest underneath it.
		iv := parent.Child(trace.PhaseInterval)
		iv.Set("start", strconv.FormatUint(sp.Plan.Reps[i].Start, 10))
		iv.Set("len", strconv.FormatUint(sp.Plan.Reps[i].Len, 10))
		r, rt, err := RunCell(trace.NewContext(ctx, iv), wl, v, m, ab, sp.repParams(p, i), pol, inj)
		iv.Finish()
		mu.Lock()
		defer mu.Unlock()
		retries += rt
		if err != nil {
			return err
		}
		reps[i] = subtractWarmBase(r, sp.Checkpoints[i])
		return nil
	})
	if err != nil {
		return core.Result{}, retries, err
	}
	rec := parent.Child(trace.PhaseReconstruct)
	out := ReconstructResult(sp.Plan, reps)
	attachSampledWindows(sp.Plan, reps, &out)
	rec.Finish()
	return out, retries, nil
}

// attachSampledWindows collects the representatives' interval series
// (present when the cell ran with IntervalCycles > 0) into the
// reconstructed result as weighted per-window series. Counters stay the
// weighted whole-window reconstruction; the time series is reported in
// its honest per-window form instead of being silently dropped.
func attachSampledWindows(plan *simpoint.Plan, reps []core.Result, out *core.Result) {
	for i, rep := range plan.Reps {
		if i >= len(reps) || len(reps[i].Intervals) == 0 {
			continue
		}
		out.IntervalCycles = reps[i].IntervalCycles // config echo
		out.SampledWindows = append(out.SampledWindows, core.SampledWindow{
			Start:     rep.Start,
			Len:       rep.Len,
			Weight:    rep.Weight,
			Intervals: reps[i].Intervals,
		})
	}
}

// ReconstructResult recombines the representatives' results into the
// whole-window estimate: every uint64 counter c becomes
//
//	round( Σ_reps weight · (c_rep / committed_rep) · window )
//
// i.e. the weighted per-instruction rate of each cluster applied to the
// whole window's instruction count. Committed therefore reconstructs to
// ≈ the window itself, Cycles to the estimated whole-window execution
// time, and ratio metrics (IPC, normalized time, squashes/kilo-instr)
// follow. Occupancy histograms are whole-window artifacts and stay nil;
// interval series are carried per representative window (see
// attachSampledWindows), not flattened here; Result.IntervalCycles is
// config echo, not a counter, and is skipped by name.
func ReconstructResult(plan *simpoint.Plan, reps []core.Result) core.Result {
	var out core.Result
	var acc []float64
	for i, rep := range plan.Reps {
		if i >= len(reps) || reps[i].Committed == 0 {
			continue
		}
		f := rep.Weight * float64(plan.WindowInstrs) / float64(reps[i].Committed)
		vals := flattenCounters(reflect.ValueOf(reps[i]), nil)
		if acc == nil {
			acc = make([]float64, len(vals))
			out.Variant, out.Model = reps[i].Variant, reps[i].Model
		}
		for j, v := range vals {
			acc[j] += f * v
		}
	}
	if acc != nil {
		idx := 0
		unflattenCounters(reflect.ValueOf(&out).Elem(), acc, &idx)
	}
	return out
}

// reconstructSkip names the uint64 fields that are configuration echo
// rather than accumulating counters.
func reconstructSkip(name string) bool { return name == "IntervalCycles" }

// flattenCounters appends every uint64 counter reachable from v (struct
// fields and array elements, recursively) in deterministic traversal
// order. Slices, bools and non-uint64 scalars are not counters and are
// skipped; unflattenCounters mirrors the traversal exactly.
func flattenCounters(v reflect.Value, out []float64) []float64 {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if t.Field(i).PkgPath != "" || reconstructSkip(t.Field(i).Name) {
				continue
			}
			out = flattenCounters(v.Field(i), out)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			out = flattenCounters(v.Index(i), out)
		}
	case reflect.Uint64:
		out = append(out, float64(v.Uint()))
	}
	return out
}

func unflattenCounters(v reflect.Value, vals []float64, idx *int) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if t.Field(i).PkgPath != "" || reconstructSkip(t.Field(i).Name) {
				continue
			}
			unflattenCounters(v.Field(i), vals, idx)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			unflattenCounters(v.Index(i), vals, idx)
		}
	case reflect.Uint64:
		v.SetUint(uint64(math.Round(vals[*idx])))
		*idx++
	}
}

// runSampledSweep is RunContext's sampled-mode grid: one sampling plan
// per workload (built concurrently), then one flat pool over every
// (cell, representative) unit — per-interval parallelism and fault
// isolation across the whole grid, not just within a cell — and finally
// per-cell reconstruction.
func runSampledSweep(ctx context.Context, opt Options, res *Results, byName map[string]workload.Workload, cells []Key) (*Results, error) {
	res.SamplePlans = make(map[string]*simpoint.Plan)
	plans := make(map[string]*SamplePlan)
	var pmu sync.Mutex
	if err := RunPool(ctx, opt.Workers(), len(opt.Workloads), func(ctx context.Context, i int) error {
		wl := opt.Workloads[i]
		sp, err := BuildSamplePlan(wl, opt.WarmupInstrs, opt.MaxInstrs, TunedSampleConfig(wl.Name, opt.Sample))
		if err != nil {
			return fmt.Errorf("harness: sample plan for %s: %w", wl.Name, err)
		}
		pmu.Lock()
		defer pmu.Unlock()
		plans[wl.Name] = sp
		res.SamplePlans[wl.Name] = sp.Plan
		res.ProfiledInstrs += sp.Plan.ProfiledInstrs
		res.CheckpointsCaptured += len(sp.Checkpoints)
		if n := len(sp.Checkpoints); n > 0 {
			// One continuous pass warms to the last boundary.
			res.WarmupInstrsSimulated += sp.Checkpoints[n-1].Arch.Instrs
		}
		return nil
	}); err != nil {
		return res, err
	}

	type unit struct{ ci, ri int }
	var units []unit
	perCell := make([][]core.Result, len(cells))
	for ci, k := range cells {
		n := len(plans[k.Workload].Plan.Reps)
		perCell[ci] = make([]core.Result, n)
		for ri := 0; ri < n; ri++ {
			units = append(units, unit{ci, ri})
		}
	}
	failed := make([]bool, len(cells))
	var mu sync.Mutex
	err := RunPool(ctx, opt.Workers(), len(units), func(ctx context.Context, ui int) error {
		u := units[ui]
		k := cells[u.ci]
		sp := plans[k.Workload]
		r, retries, err := RunCell(ctx, byName[k.Workload], k.Variant, k.Model, core.Ablation{},
			sp.repParams(opt.Params(), u.ri), opt.Policy, opt.Faults)
		mu.Lock()
		defer mu.Unlock()
		res.Retries += uint64(retries)
		if err != nil {
			var ce *CellError
			if opt.TolerateFailures && errors.As(err, &ce) {
				// One permanently-failed interval invalidates the cell's
				// reconstruction (its cluster would be unrepresented), so
				// the whole cell is recorded as failed — once.
				if !failed[u.ci] {
					failed[u.ci] = true
					res.Failures = append(res.Failures, CellFailure{
						Key: k, Kind: string(ce.Kind), Attempts: ce.Attempts, Err: ce.Err.Error()})
				}
				return nil
			}
			return fmt.Errorf("harness: %s/%v/%v interval@%d: %w",
				k.Workload, k.Variant, k.Model, sp.Plan.Reps[u.ri].Start, err)
		}
		perCell[u.ci][u.ri] = subtractWarmBase(r, sp.Checkpoints[u.ri])
		res.DetailedInstrsSimulated += r.Committed
		return nil
	})
	if err != nil {
		return res, err
	}
	for ci, k := range cells {
		if failed[ci] {
			continue
		}
		r := ReconstructResult(plans[k.Workload].Plan, perCell[ci])
		attachSampledWindows(plans[k.Workload].Plan, perCell[ci], &r)
		res.Runs[k] = r
		if opt.Progress != nil {
			opt.Progress(FormatProgress(k, r))
		}
	}
	return res, nil
}
