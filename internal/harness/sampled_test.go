package harness

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/simpoint"
	"repro/internal/workload"
)

func byName(t *testing.T, name string) workload.Workload {
	t.Helper()
	wl, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func TestParseSimMode(t *testing.T) {
	for s, want := range map[string]SimMode{"": SimDetailed, "detailed": SimDetailed, "sampled": SimSampled} {
		got, err := ParseSimMode(s)
		if err != nil || got != want {
			t.Errorf("ParseSimMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseSimMode("fast"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestSamplePlanDeterminism(t *testing.T) {
	wl := byName(t, "omnetpp_r")
	cfg := simpoint.Config{IntervalInstrs: 2000}
	a, err := BuildSamplePlan(wl, 5000, 30_000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSamplePlan(wl, 5000, 30_000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Plan, b.Plan) {
		t.Fatal("same (workload, window, config) produced different plans")
	}
	if len(a.Checkpoints) != len(a.Plan.Reps) {
		t.Fatalf("%d checkpoints for %d representatives", len(a.Checkpoints), len(a.Plan.Reps))
	}
	for i, ck := range a.Checkpoints {
		if ck.WarmupInstrs != a.Plan.Reps[i].Start {
			t.Errorf("checkpoint %d at boundary %d, want %d", i, ck.WarmupInstrs, a.Plan.Reps[i].Start)
		}
	}
}

// TestSampledSingleIntervalExact pins the reconstruction identity: with
// one interval covering the whole window (weight 1), the sampled result
// must equal exactly what ReconstructResult produces from the equivalent
// functional-warmup detailed run — warm-base subtraction on the memory
// counters followed by normalization to the window length (a detailed run
// may overshoot its budget by a few instructions on a wide commit).
func TestSampledSingleIntervalExact(t *testing.T) {
	const warmup, window = 2000, 4000
	wl := byName(t, "mcf_r")
	sp, err := BuildSamplePlan(wl, warmup, window, simpoint.Config{IntervalInstrs: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Plan.Reps) != 1 {
		t.Fatalf("%d representatives, want 1", len(sp.Plan.Reps))
	}
	got, _, err := RunSampledCell(context.Background(), 1, wl, core.Hybrid, pipeline.Futuristic,
		core.Ablation{}, sp, RunParams{}, RunPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := RunCell(context.Background(), wl, core.Hybrid, pipeline.Futuristic, core.Ablation{},
		RunParams{WarmupInstrs: warmup, MaxInstrs: window, WarmupMode: core.WarmupFunctional},
		RunPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := ReconstructResult(sp.Plan, []core.Result{subtractWarmBase(direct, sp.Checkpoints[0])})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-interval sampled run is not exact:\n got %+v\nwant %+v", got, want)
	}
	if got.Committed != window {
		t.Errorf("reconstructed Committed %d, want exactly the window %d", got.Committed, window)
	}
}

// TestSampledAccuracy is the subsystem's headline contract (documented in
// DESIGN.md): sampled-mode IPC stays within 6% of the full detailed run
// while executing measurably fewer detailed instructions. Three
// contrasting workloads under both attack models.
func TestSampledAccuracy(t *testing.T) {
	const warmup, window, tolerance = 20_000, 40_000, 0.06

	opt := DefaultOptions()
	opt.WarmupInstrs = warmup
	opt.MaxInstrs = window
	opt.Variants = []core.Variant{core.Hybrid}
	opt.Workloads = []workload.Workload{byName(t, "mcf_r"), byName(t, "gcc_r"), byName(t, "xz_r")}

	detailed, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	sopt := opt
	sopt.SimMode = SimSampled
	sampled, err := Run(sopt)
	if err != nil {
		t.Fatal(err)
	}

	if sampled.SamplePlans == nil || sampled.DetailedInstrsSimulated == 0 {
		t.Fatal("sampled run missing plan/instruction accounting")
	}
	full := uint64(len(sopt.Cells())) * window
	if sampled.DetailedInstrsSimulated >= full {
		t.Errorf("sampled mode simulated %d detailed instrs, full grid is %d — no savings",
			sampled.DetailedInstrsSimulated, full)
	}

	for k, d := range detailed.Runs {
		s, ok := sampled.Runs[k]
		if !ok {
			t.Errorf("%v: missing sampled run", k)
			continue
		}
		dIPC := float64(d.Committed) / float64(d.Cycles)
		sIPC := float64(s.Committed) / float64(s.Cycles)
		if rel := math.Abs(sIPC-dIPC) / dIPC; rel > tolerance {
			t.Errorf("%v: sampled IPC %.4f vs detailed %.4f (%.1f%% error, tolerance %.0f%%)",
				k, sIPC, dIPC, 100*rel, 100*tolerance)
		}
		// Committed must reconstruct to ≈ the window (weights sum to 1).
		if math.Abs(float64(s.Committed)-float64(window)) > 1 {
			t.Errorf("%v: reconstructed Committed %d, want ≈%d", k, s.Committed, window)
		}
	}
}

// TestSampledSweepDeterminism: two identical sampled sweeps are
// bit-identical — the property that makes sampled results cacheable.
func TestSampledSweepDeterminism(t *testing.T) {
	opt := DefaultOptions()
	opt.WarmupInstrs = 2000
	opt.MaxInstrs = 12_000
	opt.SimMode = SimSampled
	opt.Sample = simpoint.Config{IntervalInstrs: 3000}
	opt.Variants = []core.Variant{core.Unsafe, core.Hybrid}
	opt.Models = []pipeline.AttackModel{pipeline.Spectre}
	opt.Workloads = []workload.Workload{byName(t, "deepsjeng_r"), byName(t, "x264_r")}

	a, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Fatal("repeated sampled sweep differs")
	}
}
