package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/pipeline"
)

// WriteTableI prints the simulated architecture parameters (Table I).
func WriteTableI(w io.Writer) {
	mc := mem.DefaultConfig()
	pc := pipeline.DefaultConfig()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TABLE I: Simulated architecture parameters.")
	fmt.Fprintf(tw, "Pipeline\t%d fetch/decode/issue/commit, %d/%d SQ/LQ entries, %d ROB, %d MSHRs, Tournament branch predictor\n",
		pc.Width, pc.SQSize, pc.LQSize, pc.ROBSize, mc.L1D.MSHRs)
	fmt.Fprintf(tw, "L1 I-Cache\t%dKB, %dB line, %d-way, %d-cycle latency\n",
		mc.L1I.SizeBytes>>10, mem.LineBytes, mc.L1I.Ways, mc.L1I.Latency)
	fmt.Fprintf(tw, "L1 D-Cache\t%dKB, %dB line, %d-way, %d-cycle latency\n",
		mc.L1D.SizeBytes>>10, mem.LineBytes, mc.L1D.Ways, mc.L1D.Latency)
	fmt.Fprintf(tw, "L2 Cache\t%dKB, %dB line, %d-way, %d-cycle latency\n",
		mc.L2.SizeBytes>>10, mem.LineBytes, mc.L2.Ways, mc.L2.Latency)
	fmt.Fprintf(tw, "L3 Cache\t%dMB, %dB line, %d-way, %d-cycle latency\n",
		mc.L3.SizeBytes>>20, mem.LineBytes, mc.L3.Ways, mc.L3.Latency)
	fmt.Fprintf(tw, "Coherence Protocol\tDirectory-based MESI protocol\n")
	fmt.Fprintf(tw, "DRAM\t%d-cycle row-miss latency after L3 (~50ns), %d banks, %dKB row buffers\n",
		mc.DRAM.RowMissLat, mc.DRAM.Banks, mc.DRAM.RowBytes>>10)
	tw.Flush()
}

// WriteTableII prints the evaluated design variants (Table II).
func WriteTableII(w io.Writer) {
	fmt.Fprintln(w, "TABLE II: Evaluated design variants.")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Configuration\tDescription\n")
	for _, v := range core.Variants() {
		fmt.Fprintf(tw, "%s\t%s\n", v, v.Description())
	}
	tw.Flush()
}

// WriteFigure6 prints the normalized execution time of every variant on
// every workload, for both models (Figure 6).
func (r *Results) WriteFigure6(w io.Writer) {
	for _, m := range r.Opt.Models {
		fmt.Fprintf(w, "FIGURE 6 (%s model): execution time normalized to Unsafe.\n", m)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintf(tw, "benchmark\t")
		for _, v := range r.Opt.Variants {
			fmt.Fprintf(tw, "%s\t", v)
		}
		fmt.Fprintln(tw)
		for _, wl := range r.workloadNames() {
			fmt.Fprintf(tw, "%s\t", wl)
			for _, v := range r.Opt.Variants {
				fmt.Fprintf(tw, "%.3f\t", r.NormTime(wl, v, m))
			}
			fmt.Fprintln(tw)
		}
		fmt.Fprintf(tw, "Avg\t")
		for _, v := range r.Opt.Variants {
			fmt.Fprintf(tw, "%.3f\t", r.AvgNormTime(v, m))
		}
		fmt.Fprintln(tw)
		tw.Flush()
		fmt.Fprintln(w)
	}
}

// WriteFigure7 prints the overhead breakdown per SDO variant (Figure 7).
func (r *Results) WriteFigure7(w io.Writer) {
	fmt.Fprintln(w, "FIGURE 7: performance overhead breakdown (vs Unsafe), % of Unsafe execution time,")
	fmt.Fprintln(w, "averaged over the workload suite.")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "variant\tmodel\ttotal%%\tinaccurate%%\timprecise%%\tvalidation%%\ttlb/vm%%\tother%%\t\n")
	for _, m := range r.Opt.Models {
		for _, v := range r.Opt.Variants {
			if !v.IsSDO() {
				continue
			}
			b := r.BreakdownFor(v, m)
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t\n",
				v, m, b.TotalPct, b.Inaccurate, b.Imprecise, b.Validation, b.TLB, b.Other)
		}
	}
	tw.Flush()
}

// WriteFigure8 prints squashes vs normalized execution time (Figure 8).
func (r *Results) WriteFigure8(w io.Writer) {
	fmt.Fprintln(w, "FIGURE 8: squashes vs execution time (normalized to Unsafe), averaged over")
	fmt.Fprintln(w, "the workload suite. One point per SDO variant and model.")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "model\tvariant\tsquashes/kinstr\tnorm. time\t\n")
	for _, m := range r.Opt.Models {
		for _, v := range r.Opt.Variants {
			if !v.IsSDO() && v != core.STTLd {
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.3f\t\n",
				m, v, r.SquashesPerKInstr(v, m), r.AvgNormTime(v, m))
		}
	}
	tw.Flush()
}

// WriteTableIII prints predictor precision/accuracy (Table III).
func (r *Results) WriteTableIII(w io.Writer) {
	fmt.Fprintln(w, "TABLE III: Precision and Accuracy of evaluated SDO predictors,")
	fmt.Fprintln(w, "averaged over the workload suite.")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "configuration\t")
	for _, m := range r.Opt.Models {
		fmt.Fprintf(tw, "%s precision\t%s accuracy\t", m, m)
	}
	fmt.Fprintln(tw)
	for _, v := range r.Opt.Variants {
		if !v.IsSDO() || v == core.Perfect {
			continue
		}
		fmt.Fprintf(tw, "%s\t", v)
		for _, m := range r.Opt.Models {
			p, a := r.PredictorQuality(v, m)
			fmt.Fprintf(tw, "%.2f%%\t%.2f%%\t", p*100, a*100)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// WriteSummary prints the §VIII-B headline numbers: average overheads and
// the improvement of each SDO variant over the STT baselines.
func (r *Results) WriteSummary(w io.Writer) {
	fmt.Fprintln(w, "SUMMARY (§VIII-B): average overhead vs Unsafe, and improvement relative to STT.")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "model\tvariant\toverhead%%\tvs STT{ld}\tvs STT{ld+fp}\t\n")
	for _, m := range r.Opt.Models {
		for _, v := range r.Opt.Variants {
			if v == core.Unsafe {
				continue
			}
			line := fmt.Sprintf("%s\t%s\t%.2f\t", m, v, r.AvgOverheadPct(v, m))
			if v.IsSDO() {
				line += fmt.Sprintf("%.1f%%\t%.1f%%\t",
					r.ImprovementPct(v, core.STTLd, m),
					r.ImprovementPct(v, core.STTLdFp, m))
			} else {
				line += "-\t-\t"
			}
			fmt.Fprintln(tw, line)
		}
	}
	tw.Flush()
}

// WriteAll emits every table and figure.
func (r *Results) WriteAll(w io.Writer) {
	WriteTableI(w)
	fmt.Fprintln(w)
	WriteTableII(w)
	fmt.Fprintln(w)
	r.WriteFigure6(w)
	r.WriteFigure7(w)
	fmt.Fprintln(w)
	r.WriteFigure8(w)
	fmt.Fprintln(w)
	r.WriteTableIII(w)
	fmt.Fprintln(w)
	r.WriteSummary(w)
}

// WriteAblations prints the design-space study table.
func WriteAblations(w io.Writer, model pipeline.AttackModel, rows []AblationRow) {
	fmt.Fprintf(w, "ABLATIONS (%s model): STT+SDO with the Hybrid predictor, one mechanism changed.\n", model)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "configuration\tnorm. time\toverhead%%\t\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.2f\t\n", r.Name, r.NormTime, (r.NormTime-1)*100)
	}
	tw.Flush()
}
