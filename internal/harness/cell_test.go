package harness

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func testWorkload(t *testing.T) workload.Workload {
	t.Helper()
	wl, err := workload.ByName("mcf_r")
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// cellParams must run long enough to poll the in-pipeline check hook
// (every 4096 cycles) several times, while staying fast.
func cellParams() RunParams {
	return RunParams{WarmupInstrs: 1000, MaxInstrs: 30_000}
}

// With a zero policy and no injector, RunCell is RunOne plus a recover
// frame: bit-identical result, no retries.
func TestRunCellZeroPolicyMatchesRunOne(t *testing.T) {
	wl := testWorkload(t)
	p := cellParams()
	want, err := RunOne(wl, core.Unsafe, pipeline.Spectre, core.Ablation{}, p)
	if err != nil {
		t.Fatal(err)
	}
	got, retries, err := RunCell(context.Background(), wl, core.Unsafe, pipeline.Spectre,
		core.Ablation{}, p, RunPolicy{}, nil)
	if err != nil || retries != 0 {
		t.Fatalf("RunCell: retries=%d err=%v", retries, err)
	}
	if got.Cycles != want.Cycles || got.Committed != want.Committed {
		t.Fatalf("RunCell result %+v != RunOne result %+v", got, want)
	}
}

// transientPanicSeed finds a seed whose injected panic hits attempt 0 of
// the given cell but not attempt 1 — the transient shape retries recover.
func transientPanicSeed(t *testing.T, fk string, prob float64) uint64 {
	t.Helper()
	for seed := uint64(0); seed < 1000; seed++ {
		f := faults.New(faults.Config{Seed: seed, PanicProb: prob})
		if f.WouldPanic(fk, 0) && !f.WouldPanic(fk, 1) {
			return seed
		}
	}
	t.Fatal("no transient-panic seed found")
	return 0
}

// An injected panic on attempt 0 is recovered (not propagated, not fatal
// to the caller) and retried; the retry succeeds with the same result a
// clean run produces — failure recovery must not perturb determinism.
func TestRunCellRecoversTransientPanic(t *testing.T) {
	wl := testWorkload(t)
	p := cellParams()
	fk := faultKey(Key{wl.Name, core.Unsafe, pipeline.Spectre}, core.Ablation{})
	seed := transientPanicSeed(t, fk, 0.5)
	inj := faults.New(faults.Config{Seed: seed, PanicProb: 0.5})

	var events []CellEvent
	pol := RunPolicy{MaxAttempts: 3, RetryBackoff: time.Millisecond,
		Notify: func(ev CellEvent) { events = append(events, ev) }}
	got, retries, err := RunCell(context.Background(), wl, core.Unsafe, pipeline.Spectre,
		core.Ablation{}, p, pol, inj)
	if err != nil {
		t.Fatal(err)
	}
	if retries != 1 {
		t.Fatalf("retries = %d, want 1", retries)
	}
	want, _ := RunOne(wl, core.Unsafe, pipeline.Spectre, core.Ablation{}, cellParams())
	if got.Cycles != want.Cycles {
		t.Fatalf("retried result cycles=%d, clean run cycles=%d", got.Cycles, want.Cycles)
	}
	if len(events) != 2 || events[0].Kind != "panic" || events[1].Kind != "retry" {
		t.Fatalf("events = %+v", events)
	}
	if inj.Stats().Panics != 1 {
		t.Fatalf("injected panics = %d", inj.Stats().Panics)
	}
}

// A permanent panic (PanicKey matches every attempt) exhausts retries and
// surfaces as a typed CellError with an accurate attempt count and stack.
func TestRunCellPermanentPanicExhaustsRetries(t *testing.T) {
	wl := testWorkload(t)
	inj := faults.New(faults.Config{PanicKey: "mcf_r"})
	pol := RunPolicy{MaxAttempts: 3, RetryBackoff: time.Millisecond}
	_, retries, err := RunCell(context.Background(), wl, core.Unsafe, pipeline.Spectre,
		core.Ablation{}, cellParams(), pol, inj)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CellError", err)
	}
	if ce.Kind != FailPanic || ce.Attempts != 3 || retries != 2 {
		t.Fatalf("kind=%s attempts=%d retries=%d", ce.Kind, ce.Attempts, retries)
	}
	if ce.Stack == "" {
		t.Fatal("panic CellError has no stack")
	}
	if !ce.Transient() {
		t.Fatal("panic should be transient")
	}
}

// A frozen cell (wall time passes, committed count stops advancing) is
// killed by the progress-based stall watchdog, not by a cycle count.
func TestRunCellStallWatchdog(t *testing.T) {
	wl := testWorkload(t)
	inj := faults.New(faults.Config{FreezeProb: 1, FreezeFor: 400 * time.Millisecond})
	pol := RunPolicy{StallTimeout: 50 * time.Millisecond}
	_, _, err := RunCell(context.Background(), wl, core.Unsafe, pipeline.Spectre,
		core.Ablation{}, cellParams(), pol, inj)
	var ce *CellError
	if !errors.As(err, &ce) || ce.Kind != FailStall {
		t.Fatalf("err = %v, want stall CellError", err)
	}
	if !errors.Is(err, ErrCellStalled) {
		t.Fatal("stall error does not unwrap to ErrCellStalled")
	}
}

// A cell that exceeds its wall-clock deadline is killed with FailTimeout.
func TestRunCellDeadline(t *testing.T) {
	wl := testWorkload(t)
	inj := faults.New(faults.Config{FreezeProb: 1, FreezeFor: 120 * time.Millisecond})
	pol := RunPolicy{CellTimeout: 30 * time.Millisecond}
	_, _, err := RunCell(context.Background(), wl, core.Unsafe, pipeline.Spectre,
		core.Ablation{}, cellParams(), pol, inj)
	var ce *CellError
	if !errors.As(err, &ce) || ce.Kind != FailTimeout {
		t.Fatalf("err = %v, want timeout CellError", err)
	}
}

// A deterministic simulation error is FailExec and is never retried.
func TestRunCellExecErrorNotRetried(t *testing.T) {
	wl := testWorkload(t)
	attempts := 0
	pol := RunPolicy{MaxAttempts: 5, RetryBackoff: time.Millisecond,
		Notify: func(ev CellEvent) { attempts++ }}
	// Functional-warmup restore with a detailed-mode config is a
	// deterministic config error inside RunOne.
	p := cellParams()
	p.Checkpoint = CaptureCheckpoint(wl, 500)
	_, retries, err := RunCell(context.Background(), wl, core.Unsafe, pipeline.Spectre,
		core.Ablation{}, p, pol, nil)
	var ce *CellError
	if !errors.As(err, &ce) || ce.Kind != FailExec {
		t.Fatalf("err = %v, want exec CellError", err)
	}
	if retries != 0 || ce.Attempts != 1 {
		t.Fatalf("exec failure retried: retries=%d attempts=%d", retries, ce.Attempts)
	}
}

// Cancellation interrupts a running cell mid-simulation and propagates
// as ctx.Err(), not as a CellError, and is not retried.
func TestRunCellCancellationMidRun(t *testing.T) {
	wl := testWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	inj := faults.New(faults.Config{FreezeProb: 1, FreezeFor: 100 * time.Millisecond})
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, _, err := RunCell(ctx, wl, core.Unsafe, pipeline.Spectre,
		core.Ablation{}, cellParams(), RunPolicy{MaxAttempts: 3}, inj)
	var ce *CellError
	if errors.As(err, &ce) {
		t.Fatalf("cancellation wrapped in CellError: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Abort (flight abandonment) kills the attempt with ErrCellAbandoned.
func TestRunCellAbort(t *testing.T) {
	wl := testWorkload(t)
	pol := RunPolicy{Abort: func() bool { return true }}
	_, _, err := RunCell(context.Background(), wl, core.Unsafe, pipeline.Spectre,
		core.Ablation{}, cellParams(), pol, nil)
	if !errors.Is(err, ErrCellAbandoned) {
		t.Fatalf("err = %v, want ErrCellAbandoned", err)
	}
}

// Backoff is deterministic per (key, attempt) and doubles with attempts.
func TestBackoffDeterministicWithJitter(t *testing.T) {
	pol := RunPolicy{RetryBackoff: 100 * time.Millisecond}
	k := Key{"mcf_r", core.Hybrid, pipeline.Spectre}
	d1 := pol.backoffFor(k, 1)
	if d1 != pol.backoffFor(k, 1) {
		t.Fatal("backoff not deterministic")
	}
	if d1 < 50*time.Millisecond || d1 >= 150*time.Millisecond {
		t.Fatalf("attempt-1 backoff %v outside [50ms, 150ms)", d1)
	}
	d2 := pol.backoffFor(k, 2)
	if d2 < 100*time.Millisecond || d2 >= 300*time.Millisecond {
		t.Fatalf("attempt-2 backoff %v outside [100ms, 300ms)", d2)
	}
}

// A tolerant sweep with a permanently-failing workload completes, records
// the failures, and exports the surviving workloads identically to a
// sweep that never contained the failed workload.
func TestTolerantSweepDegrades(t *testing.T) {
	wl1 := testWorkload(t)
	wl2, err := workload.ByName("x264_r")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		WarmupInstrs: 1000, MaxInstrs: 5000,
		Workloads: []workload.Workload{wl1, wl2},
		Variants:  []core.Variant{core.Unsafe, core.Hybrid},
		Models:    []pipeline.AttackModel{pipeline.Spectre},
		Parallel:  true,
		Policy:    RunPolicy{MaxAttempts: 2, RetryBackoff: time.Millisecond},
		Faults:    faults.New(faults.Config{PanicKey: "x264_r"}),

		TolerateFailures: true,
	}
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 2 {
		t.Fatalf("failures = %+v, want 2 (x264_r cells)", res.Failures)
	}
	for _, f := range res.Failures {
		if f.Key.Workload != "x264_r" || f.Attempts != 2 {
			t.Fatalf("unexpected failure record %+v", f)
		}
	}
	if res.Retries == 0 {
		t.Fatal("no retries counted")
	}
	clean := opt
	clean.Workloads = []workload.Workload{wl1}
	clean.Faults, clean.Policy = nil, RunPolicy{}
	want, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want.Runs {
		if g, ok := res.Runs[k]; !ok || g.Cycles != w.Cycles {
			t.Fatalf("surviving cell %v: got %+v want %+v", k, res.Runs[k], w)
		}
	}
}
