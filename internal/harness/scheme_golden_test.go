package harness

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the scheme-refactor golden export")

// schemeGoldenOptions is the pinned sweep the refactor-equivalence golden
// was captured with: every Table II variant (all three protection modes and
// all five predictors) over two behaviourally-distinct workloads under both
// attack models. Small enough to run in CI, wide enough that any semantic
// drift in the Unsafe/STT/STT+SDO paths changes some counter in some cell.
func schemeGoldenOptions(t *testing.T) Options {
	t.Helper()
	var wls []workload.Workload
	for _, name := range []string{"mcf_r", "x264_r"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, w)
	}
	return Options{
		WarmupInstrs: 3000,
		MaxInstrs:    6000,
		Workloads:    wls,
		Variants:     core.Variants(),
		Models:       []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic},
		Parallel:     true,
	}
}

// TestSchemeRefactorGoldenExport pins the Unsafe/STT/STT+SDO behaviour
// across the protection-scheme refactor: the export produced today must be
// byte-identical to the snapshot captured before protection was extracted
// into the pluggable Scheme interface. Any change to the legacy schemes'
// cycle-level behaviour — intended or not — fails this test; regenerate
// with -update only for a deliberate, documented semantics change.
func TestSchemeRefactorGoldenExport(t *testing.T) {
	res, err := Run(schemeGoldenOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "scheme_refactor_export.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export diverges from the pre-refactor golden (%d bytes, want %d).\n"+
			"The Unsafe/STT/STT+SDO schemes must stay byte-identical across the\n"+
			"Scheme-interface refactor; run with -update only for a deliberate change.",
			buf.Len(), len(want))
	}
}

// TestGoldenVariantColumns guards the published expected_results.txt
// against registry drift: the Table II sweep (core.Variants()) must keep
// exactly the eight rows, named as the golden's column headers spell them.
// New schemes join via core.Registered() without widening the default
// sweep, so the full-budget golden stays reproducible from the same
// command line.
func TestGoldenVariantColumns(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "expected_results.txt"))
	if err != nil {
		t.Skipf("expected_results.txt unavailable: %v", err)
	}
	text := string(data)
	vs := core.Variants()
	if len(vs) != 8 {
		t.Fatalf("core.Variants() has %d rows, the published golden has 8", len(vs))
	}
	header := "benchmark"
	for _, v := range vs {
		header += fmt.Sprintf("  %s", v.String())
	}
	// Every Figure 6 table header lists the variants in sweep order.
	if !strings.Contains(strings.Join(strings.Fields(text), " "),
		strings.Join(strings.Fields(header), " ")) {
		t.Fatalf("expected_results.txt does not contain the Table II column sequence %q", header)
	}
}
