package harness

import "repro/internal/simpoint"

// Per-workload sampled-mode tuning. The one-size default sampling
// config (simpoint.DefaultIntervalInstrs / DefaultMaxK) treats a
// pointer-chasing workload and a streaming kernel identically, but the
// phase structure they expose to BBV clustering is very different:
// irregular workloads need finer intervals (and benefit from more
// clusters) to keep reconstruction error down, while regular kernels
// reach the same accuracy with coarser intervals and fewer
// representatives — strictly cheaper plans. This table is consulted
// only for fields the caller left unset (zero), so explicit flags and
// request parameters always win, and workloads without an entry fall
// back to the package defaults. TestSampledAccuracy pins the tuned
// configs to the same ≤6% IPC error bound as the defaults.
var sampleTuning = map[string]simpoint.Config{
	"mcf_r":       {IntervalInstrs: 4000, MaxK: 8}, // pointer-chasing, irregular phases
	"omnetpp_r":   {IntervalInstrs: 4000, MaxK: 8}, // event-queue churn, fine phases
	"x264_r":      {IntervalInstrs: 4000, MaxK: 8}, // frame-type alternation
	"gcc_r":       {IntervalInstrs: 5000, MaxK: 8}, // many phases; default interval fits
	"xalancbmk_r": {IntervalInstrs: 5000, MaxK: 8}, // branchy traversal
	"deepsjeng_r": {IntervalInstrs: 5000, MaxK: 6}, // search plies repeat
	"xz_r":        {IntervalInstrs: 6000, MaxK: 6}, // long match/literal phases
	"exchange2_r": {IntervalInstrs: 6000, MaxK: 6}, // recursive but self-similar
	"lbm_r":       {IntervalInstrs: 8000, MaxK: 4}, // streaming stencil, near-uniform
	"namd_r":      {IntervalInstrs: 8000, MaxK: 4}, // regular force loops
	"fotonik3d_r": {IntervalInstrs: 8000, MaxK: 4}, // regular FDTD sweeps
}

// TunedSampleConfig fills the unset (zero) fields of a sampling config
// from the per-workload tuning table, then from the package defaults.
// Explicitly-set fields pass through untouched, so callers that pin a
// sampling config get exactly what they asked for on every workload.
func TunedSampleConfig(workloadName string, cfg simpoint.Config) simpoint.Config {
	t := sampleTuning[workloadName]
	if cfg.IntervalInstrs == 0 {
		cfg.IntervalInstrs = t.IntervalInstrs
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = t.MaxK
	}
	return cfg.WithDefaults()
}
