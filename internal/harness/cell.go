package harness

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs/trace"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// FailKind classifies why a cell attempt failed.
type FailKind string

const (
	// FailExec is a deterministic simulation error (bad config, pipeline
	// watchdog deadlock, checkpoint mismatch). Retrying re-runs the same
	// deterministic simulation, so exec failures are never retried.
	FailExec FailKind = "exec"
	// FailPanic is a panic recovered from the cell's goroutine. Treated
	// as transient (environmental corruption, injected chaos).
	FailPanic FailKind = "panic"
	// FailTimeout is a per-cell wall-clock deadline expiry.
	FailTimeout FailKind = "timeout"
	// FailStall is the progress-based watchdog: wall time kept passing
	// while the committed-instruction count stopped advancing.
	FailStall FailKind = "stall"
)

// Sentinel errors the in-pipeline check hook returns; RunCell classifies
// them into CellError kinds.
var (
	ErrCellTimeout = errors.New("harness: cell exceeded its wall-clock deadline")
	ErrCellStalled = errors.New("harness: cell stopped committing instructions (stalled)")
	// ErrCellAbandoned aborts a cell none of whose consumers still wants
	// the result (see RunPolicy.Abort). Treated like cancellation: never
	// retried, never wrapped in a CellError.
	ErrCellAbandoned = errors.New("harness: cell abandoned (no live waiters)")
)

// CellError is the typed failure of one sweep cell after all attempts.
type CellError struct {
	Key      Key
	Kind     FailKind
	Attempts int    // attempts performed (≥ 1)
	Stack    string // goroutine stack for FailPanic, else empty
	Err      error  // the last attempt's underlying error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("harness: cell %s/%v/%v failed (%s after %d attempt(s)): %v",
		e.Key.Workload, e.Key.Variant, e.Key.Model, e.Kind, e.Attempts, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// Transient reports whether this failure kind is worth retrying.
func (e *CellError) Transient() bool { return e.Kind != FailExec }

// CellEvent notifies RunPolicy.Notify observers of per-attempt outcomes:
// Kind is "panic", "timeout", "stall" or "exec" when an attempt fails,
// and "retry" when a new attempt is about to start after a failure.
type CellEvent struct {
	Kind    string
	Key     Key
	Attempt int
	Err     error
}

// RunPolicy is the per-cell fault-tolerance policy. The zero value means
// one attempt, no deadline, no stall watchdog — exactly the historical
// behavior.
type RunPolicy struct {
	// MaxAttempts bounds attempts per cell (≤ 0 or 1: no retries).
	MaxAttempts int
	// RetryBackoff is the base delay before attempt 2; it doubles per
	// subsequent attempt, with a deterministic ±50% jitter drawn from the
	// cell key. 0 with retries enabled uses 100ms.
	RetryBackoff time.Duration
	// CellTimeout is a wall-clock deadline per attempt (0: none).
	CellTimeout time.Duration
	// StallTimeout kills an attempt whose committed-instruction count has
	// not advanced for this long of wall time (0: no stall watchdog). It
	// catches live-but-stuck simulations the cycle-count watchdog cannot
	// (the pipeline watchdog counts simulated cycles, which stop
	// advancing too when the simulator thread is wedged).
	StallTimeout time.Duration
	// Abort, when non-nil, is polled from inside the simulation; true
	// aborts the attempt with ErrCellAbandoned. The simulation service
	// uses it to abandon cells whose waiting jobs have all terminated.
	Abort func() bool
	// Notify, when non-nil, observes per-attempt outcomes (metrics).
	Notify func(CellEvent)
}

func (pol RunPolicy) attempts() int {
	if pol.MaxAttempts <= 0 {
		return 1
	}
	return pol.MaxAttempts
}

func (pol RunPolicy) notify(ev CellEvent) {
	if pol.Notify != nil {
		pol.Notify(ev)
	}
}

// backoffFor returns the pre-attempt backoff: base doubling per attempt
// beyond the first retry, scaled by a deterministic jitter factor in
// [0.5, 1.5) drawn from (key, attempt) so concurrent retries de-correlate
// without making chaos runs unrepeatable.
func (pol RunPolicy) backoffFor(k Key, attempt int) time.Duration {
	base := pol.RetryBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base << uint(attempt-1)
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%v/%v|%d", k.Workload, k.Variant, k.Model, attempt)
	jitter := 0.5 + float64(h.Sum64()>>11)/(1<<53) // [0.5, 1.5)
	return time.Duration(float64(d) * jitter)
}

// faultKey is the cell identity string fault draws key on. The ablation
// suffix keeps design-study cells (which reuse the same Key) distinct.
func faultKey(k Key, ab core.Ablation) string {
	s := fmt.Sprintf("%s/%v/%v", k.Workload, k.Variant, k.Model)
	if ab != (core.Ablation{}) {
		s += fmt.Sprintf("/ab%+v", ab)
	}
	return s
}

// RunCell executes one sweep cell under a fault-tolerance policy: panics
// are recovered into CellErrors, each attempt runs under the optional
// wall-clock deadline and progress-based stall watchdog, and transient
// failures are retried up to pol.MaxAttempts with exponential backoff.
// It returns the result, the number of retries performed (attempts - 1),
// and the terminal error, which is a *CellError for cell failures or a
// plain cancellation error (ctx.Err(), ErrCellAbandoned) when the caller
// stopped caring. With a zero policy and nil injector this is RunOne plus
// one recover frame.
func RunCell(ctx context.Context, wl workload.Workload, v core.Variant, m pipeline.AttackModel,
	ab core.Ablation, p RunParams, pol RunPolicy, inj *faults.Injector) (core.Result, int, error) {
	k := Key{wl.Name, v, m}
	fk := faultKey(k, ab)
	// The parent span (nil with tracing off — every span call below is
	// then a bare nil check) gets a child per attempt and per backoff
	// sleep, so a retried cell's trace shows where the wall clock went.
	parent := trace.FromContext(ctx)
	var last *CellError
	for attempt := 0; attempt < pol.attempts(); attempt++ {
		if attempt > 0 {
			pol.notify(CellEvent{Kind: "retry", Key: k, Attempt: attempt, Err: last})
			bo := parent.Child(trace.PhaseBackoff)
			t := time.NewTimer(pol.backoffFor(k, attempt))
			select {
			case <-ctx.Done():
				t.Stop()
				bo.Finish()
				return core.Result{}, attempt, ctx.Err()
			case <-t.C:
			}
			bo.Finish()
		}
		as := parent.Child(trace.PhaseAttempt)
		as.Set("n", strconv.Itoa(attempt+1))
		r, err := runAttempt(ctx, wl, v, m, ab, p, pol, inj, fk, attempt)
		if err == nil {
			as.Set("outcome", "ok")
			as.Finish()
			return r, attempt, nil
		}
		var ce *CellError
		if !errors.As(err, &ce) {
			// Cancellation / abandonment: the caller stopped caring;
			// pass it through untyped and unretried.
			as.Set("outcome", "cancelled")
			as.Finish()
			return core.Result{}, attempt, err
		}
		ce.Key = k
		ce.Attempts = attempt + 1
		last = ce
		as.Set("outcome", string(ce.Kind))
		as.Finish()
		pol.notify(CellEvent{Kind: string(ce.Kind), Key: k, Attempt: attempt, Err: ce.Err})
		if !ce.Transient() {
			break
		}
	}
	return core.Result{}, last.Attempts - 1, last
}

// runAttempt performs one attempt: fault injection at the boundary, the
// check hook wired into the pipeline, and panic recovery.
func runAttempt(ctx context.Context, wl workload.Workload, v core.Variant, m pipeline.AttackModel,
	ab core.Ablation, p RunParams, pol RunPolicy, inj *faults.Injector,
	fk string, attempt int) (r core.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &CellError{Kind: FailPanic, Stack: string(debug.Stack()),
				Err: fmt.Errorf("panic: %v", rec)}
		}
	}()
	inj.PanicNow(fk, attempt)
	if d := inj.Delay(fk, attempt); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return core.Result{}, ctx.Err()
		case <-t.C:
		}
	}
	check, stop := buildCheck(ctx, pol, inj.Freeze(fk, attempt))
	if stop != nil {
		defer stop()
	}
	p.Check = check
	r, runErr := RunOne(wl, v, m, ab, p)
	if runErr == nil {
		return r, nil
	}
	switch {
	case errors.Is(runErr, ErrCellTimeout):
		return core.Result{}, &CellError{Kind: FailTimeout, Err: runErr}
	case errors.Is(runErr, ErrCellStalled):
		return core.Result{}, &CellError{Kind: FailStall, Err: runErr}
	case errors.Is(runErr, context.Canceled), errors.Is(runErr, context.DeadlineExceeded),
		errors.Is(runErr, ErrCellAbandoned):
		return core.Result{}, runErr
	default:
		return core.Result{}, &CellError{Kind: FailExec, Err: runErr}
	}
}

// buildCheck assembles the in-pipeline check hook for one attempt, and a
// stop function for the stall-watchdog goroutine (nil when no watchdog
// runs). Returns (nil, nil) when nothing needs checking, keeping the
// untouched path's per-cycle cost at a single nil compare.
func buildCheck(ctx context.Context, pol RunPolicy, freeze time.Duration) (func(cycle, committed uint64) error, func()) {
	needCtx := ctx.Done() != nil
	if !needCtx && pol.CellTimeout <= 0 && pol.StallTimeout <= 0 && pol.Abort == nil && freeze == 0 {
		return nil, nil
	}
	var deadline time.Time
	if pol.CellTimeout > 0 {
		deadline = time.Now().Add(pol.CellTimeout)
	}

	// The stall watchdog reads the committed count the check hook
	// publishes. It cannot live inside the hook itself: a wedged
	// simulator thread stops calling the hook, which is exactly the
	// condition to detect.
	var committed atomic.Uint64
	var stalled atomic.Bool
	var stop func()
	if pol.StallTimeout > 0 {
		done := make(chan struct{})
		go func() {
			tick := pol.StallTimeout / 8
			if tick < time.Millisecond {
				tick = time.Millisecond
			}
			t := time.NewTicker(tick)
			defer t.Stop()
			last := committed.Load()
			lastAdvance := time.Now()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					if cur := committed.Load(); cur != last {
						last = cur
						lastAdvance = time.Now()
						continue
					}
					if time.Since(lastAdvance) >= pol.StallTimeout {
						stalled.Store(true)
						return
					}
				}
			}
		}()
		stop = func() { close(done) }
	}

	froze := false
	check := func(cycle, c uint64) error {
		committed.Store(c)
		if needCtx {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		if pol.Abort != nil && pol.Abort() {
			return ErrCellAbandoned
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return ErrCellTimeout
		}
		if freeze > 0 && !froze {
			// Injected freeze: wall time passes while the committed
			// count stays put — the stall watchdog's trigger condition.
			froze = true
			time.Sleep(freeze)
		}
		if stalled.Load() {
			return ErrCellStalled
		}
		return nil
	}
	return check, stop
}
