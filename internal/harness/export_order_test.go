package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// tinySweep is a minimal sweep (2 workloads x 3 variants x 1 model) for
// serialization tests.
func tinySweep(t *testing.T) *Results {
	t.Helper()
	var wls []workload.Workload
	for _, name := range []string{"gcc_r", "exchange2_r"} {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, w)
	}
	res, err := Run(Options{
		WarmupInstrs: 1000,
		MaxInstrs:    3000,
		Workloads:    wls,
		Variants:     []core.Variant{core.Unsafe, core.STTLd, core.Hybrid},
		Models:       []pipeline.AttackModel{pipeline.Spectre},
		Parallel:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExportGoldenOrdering locks down the Export document's layout: two
// identical sweeps must marshal to byte-identical JSON (the cache-parity
// and CI-trajectory comparisons depend on it), rows must be sorted, and
// the field order must match the documented golden sequence.
func TestExportGoldenOrdering(t *testing.T) {
	a, b := tinySweep(t), tinySweep(t)
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("two identical sweeps marshalled to different bytes")
	}

	// Runs are sorted by (workload, model, variant), ascending.
	ex := a.Export()
	if len(ex.Runs) != 6 {
		t.Fatalf("%d runs, want 6", len(ex.Runs))
	}
	variantOrd := func(s string) int {
		v, err := core.ParseVariant(s)
		if err != nil {
			t.Fatal(err)
		}
		return int(v)
	}
	modelOrd := func(s string) int {
		if s == pipeline.Spectre.String() {
			return 0
		}
		return 1
	}
	for i := 1; i < len(ex.Runs); i++ {
		p, q := ex.Runs[i-1], ex.Runs[i]
		// Sorted by workload name, then model, then Table II variant order.
		before := p.Workload < q.Workload ||
			(p.Workload == q.Workload && modelOrd(p.Model) < modelOrd(q.Model)) ||
			(p.Workload == q.Workload && p.Model == q.Model &&
				variantOrd(p.Variant) < variantOrd(q.Variant))
		if !before {
			t.Fatalf("runs not sorted at %d: %v/%v/%v then %v/%v/%v",
				i, p.Workload, p.Model, p.Variant, q.Workload, q.Model, q.Variant)
		}
	}

	// Golden field sequences: top-level document and per-run rows.
	doc := bufA.String()
	assertOrder(t, doc, []string{
		`"max_instrs"`, `"warmup_instrs"`, `"runs"`,
		`"figure6"`, `"figure7"`, `"figure8"`, `"table3"`, `"summary"`,
	})
	firstRun := doc[strings.Index(doc, `"runs"`):]
	assertOrder(t, firstRun, []string{
		`"workload"`, `"variant"`, `"model"`, `"cycles"`, `"committed"`,
		`"ipc"`, `"norm_time"`, `"squashes"`, `"delayed_loads"`,
		`"obl_issued"`, `"obl_fail"`, `"validations"`, `"exposures"`,
		`"pred_precise"`, `"pred_imprecise"`, `"pred_inaccurate"`,
		`"validation_stall"`,
	})

	// And the document round-trips.
	var back Export
	if err := json.Unmarshal(bufA.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.MaxInstrs != a.Opt.MaxInstrs || len(back.Runs) != len(ex.Runs) {
		t.Fatal("round-trip lost data")
	}
}

// assertOrder checks that each key first appears after its predecessor.
func assertOrder(t *testing.T, s string, keys []string) {
	t.Helper()
	pos := -1
	for _, k := range keys {
		i := strings.Index(s, k)
		if i < 0 {
			t.Fatalf("missing field %s", k)
		}
		if i < pos {
			t.Fatalf("field %s out of order", k)
		}
		pos = i
	}
}
