package harness

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/obs/trace"
)

// Export is the machine-readable form of a sweep: everything the text
// reports print, as one JSON document (for plotting scripts and regression
// tooling).
type Export struct {
	MaxInstrs      uint64      `json:"max_instrs"`
	WarmupInstrs   uint64      `json:"warmup_instrs"`
	IntervalCycles uint64      `json:"interval_cycles,omitempty"`
	Runs           []ExportRun `json:"runs"`
	Figure6        []Fig6Row   `json:"figure6"`
	Figure7        []Fig7Row   `json:"figure7"`
	Figure8        []Fig8Row   `json:"figure8"`
	TableIII       []T3Row     `json:"table3"`
	Summary        []SumRow    `json:"summary"`
}

// ExportRun is one simulation's key counters.
type ExportRun struct {
	Workload        string  `json:"workload"`
	Variant         string  `json:"variant"`
	Model           string  `json:"model"`
	Cycles          uint64  `json:"cycles"`
	Committed       uint64  `json:"committed"`
	IPC             float64 `json:"ipc"`
	NormTime        float64 `json:"norm_time"`
	Squashes        uint64  `json:"squashes"`
	DelayedLoads    uint64  `json:"delayed_loads"`
	OblIssued       uint64  `json:"obl_issued"`
	OblFail         uint64  `json:"obl_fail"`
	Validations     uint64  `json:"validations"`
	Exposures       uint64  `json:"exposures"`
	PredPrecise     uint64  `json:"pred_precise"`
	PredImprecise   uint64  `json:"pred_imprecise"`
	PredInaccurate  uint64  `json:"pred_inaccurate"`
	ValidationStall uint64  `json:"validation_stall"`

	// Interval time series (present only when the sweep ran with
	// Options.IntervalCycles > 0).
	Intervals  []core.IntervalPoint `json:"intervals,omitempty"`
	ROBOccHist []uint64             `json:"rob_occ_hist,omitempty"`
	LQOccHist  []uint64             `json:"lq_occ_hist,omitempty"`

	// Attribution is the per-cell latency breakdown (present only when the
	// producing service ran with tracing enabled; see internal/obs/trace).
	Attribution *trace.Attribution `json:"attribution,omitempty"`
}

// Fig6Row is one Figure 6 series point (the per-variant average).
type Fig6Row struct {
	Model    string  `json:"model"`
	Variant  string  `json:"variant"`
	NormTime float64 `json:"norm_time"`
}

// Fig7Row is one Figure 7 breakdown row.
type Fig7Row struct {
	Model      string  `json:"model"`
	Variant    string  `json:"variant"`
	TotalPct   float64 `json:"total_pct"`
	Inaccurate float64 `json:"inaccurate_pct"`
	Imprecise  float64 `json:"imprecise_pct"`
	Validation float64 `json:"validation_pct"`
	TLB        float64 `json:"tlb_pct"`
	Other      float64 `json:"other_pct"`
}

// Fig8Row is one Figure 8 scatter point.
type Fig8Row struct {
	Model           string  `json:"model"`
	Variant         string  `json:"variant"`
	SquashesPerKIns float64 `json:"squashes_per_kinstr"`
	NormTime        float64 `json:"norm_time"`
}

// T3Row is one Table III row (per model).
type T3Row struct {
	Model     string  `json:"model"`
	Variant   string  `json:"variant"`
	Precision float64 `json:"precision"`
	Accuracy  float64 `json:"accuracy"`
}

// SumRow is one summary row.
type SumRow struct {
	Model       string  `json:"model"`
	Variant     string  `json:"variant"`
	OverheadPct float64 `json:"overhead_pct"`
	VsSTTLd     float64 `json:"improvement_vs_stt_ld_pct"`
	VsSTTLdFp   float64 `json:"improvement_vs_stt_ldfp_pct"`
}

// Export builds the machine-readable summary.
func (r *Results) Export() Export {
	ex := Export{MaxInstrs: r.Opt.MaxInstrs, WarmupInstrs: r.Opt.WarmupInstrs, IntervalCycles: r.Opt.IntervalCycles}
	var keys []Key
	for k := range r.Runs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		return a.Variant < b.Variant
	})
	for _, k := range keys {
		run := r.Runs[k]
		ex.Runs = append(ex.Runs, ExportRun{
			Workload:        k.Workload,
			Variant:         k.Variant.String(),
			Model:           k.Model.String(),
			Cycles:          run.Cycles,
			Committed:       run.Committed,
			IPC:             run.IPC(),
			NormTime:        r.NormTime(k.Workload, k.Variant, k.Model),
			Squashes:        run.TotalSquashes(),
			DelayedLoads:    run.DelayedLoads,
			OblIssued:       run.OblIssued,
			OblFail:         run.OblFail,
			Validations:     run.Validations,
			Exposures:       run.Exposures,
			PredPrecise:     run.PredPrecise,
			PredImprecise:   run.PredImprecise,
			PredInaccurate:  run.PredInaccurate,
			ValidationStall: run.ValidationStall,
			Intervals:       run.Intervals,
			ROBOccHist:      run.ROBOccHist,
			LQOccHist:       run.LQOccHist,
			Attribution:     r.Attrib[k], // nil (omitted) when untraced
		})
	}
	for _, m := range r.Opt.Models {
		for _, v := range r.Opt.Variants {
			ex.Figure6 = append(ex.Figure6, Fig6Row{m.String(), v.String(), r.AvgNormTime(v, m)})
			if v.IsSDO() {
				b := r.BreakdownFor(v, m)
				ex.Figure7 = append(ex.Figure7, Fig7Row{
					Model: m.String(), Variant: v.String(),
					TotalPct: b.TotalPct, Inaccurate: b.Inaccurate,
					Imprecise: b.Imprecise, Validation: b.Validation,
					TLB: b.TLB, Other: b.Other,
				})
				p, a := r.PredictorQuality(v, m)
				ex.TableIII = append(ex.TableIII, T3Row{m.String(), v.String(), p, a})
			}
			if v.IsSDO() || v == core.STTLd {
				ex.Figure8 = append(ex.Figure8, Fig8Row{m.String(), v.String(),
					r.SquashesPerKInstr(v, m), r.AvgNormTime(v, m)})
			}
			ex.Summary = append(ex.Summary, SumRow{
				Model: m.String(), Variant: v.String(),
				OverheadPct: r.AvgOverheadPct(v, m),
				VsSTTLd:     r.ImprovementPct(v, core.STTLd, m),
				VsSTTLdFp:   r.ImprovementPct(v, core.STTLdFp, m),
			})
		}
	}
	return ex
}

// WriteJSON emits the Export document.
func (r *Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Export())
}
