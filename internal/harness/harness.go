// Package harness runs the paper's evaluation (§VIII): it sweeps the Table
// II design variants over the workload suite under both attack models and
// regenerates Figure 6 (normalized execution time), Figure 7 (overhead
// breakdown), Figure 8 (squashes vs. execution time), Table III (predictor
// precision/accuracy) and the §VIII-B headline summary.
//
// Methodology: like the paper's SimPoint fragments, every run commits the
// same fixed instruction budget, so execution time (cycles) is directly
// comparable across configurations and normalizes against the Unsafe run
// of the same workload.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs/trace"
	"repro/internal/pipeline"
	"repro/internal/simpoint"
	"repro/internal/workload"
)

// Options configures a sweep.
type Options struct {
	// WarmupInstrs warms caches/TLB/predictors before measurement.
	WarmupInstrs uint64
	// WarmupMode selects detailed (default) or functional warmup. With
	// functional warmup the sweep captures one warmup checkpoint per
	// workload and restores it for every (variant, model) cell instead of
	// re-simulating warmup per cell (see NoCheckpointReuse).
	WarmupMode core.WarmupMode
	// NoCheckpointReuse forces functional warmup to run in place for every
	// cell instead of restoring the per-workload checkpoint. Results are
	// bit-identical either way (the CI smoke asserts it); the switch exists
	// to measure and test exactly that.
	NoCheckpointReuse bool
	// MaxInstrs is the committed-instruction budget per measured run. The
	// sum of warmup and measurement must stay below every kernel's natural
	// dynamic length.
	MaxInstrs uint64
	// SimMode selects detailed (default) or SimPoint-sampled execution of
	// each cell's measurement window. Sampled mode requires MaxInstrs > 0
	// (the window must be finite to profile) and ignores IntervalCycles
	// and the warmup/checkpoint knobs' reuse switch: sampling is built on
	// per-representative functional checkpoints.
	SimMode SimMode
	// Sample holds the sampled-mode parameters; the zero value selects the
	// simpoint package defaults. Ignored in detailed mode.
	Sample simpoint.Config
	// Workloads is the benchmark list (default: workload.All()).
	Workloads []workload.Workload
	// Variants are the Table II rows to run (default: all).
	Variants []core.Variant
	// Models are the attack models to run (default: Spectre, Futuristic).
	Models []pipeline.AttackModel
	// IntervalCycles, when non-zero, collects an interval statistics
	// point every IntervalCycles cycles of each run's measurement window
	// (core.Config.IntervalCycles); the series rides along in each
	// core.Result and in the JSON export.
	IntervalCycles uint64
	// Parallel runs independent simulations on all CPUs.
	Parallel bool
	// Progress, if non-nil, receives a line per completed run.
	Progress func(string)

	// Policy is the per-cell fault-tolerance policy (retries, deadlines,
	// stall watchdog). The zero value preserves historical behavior.
	Policy RunPolicy
	// Faults optionally injects chaos faults into cell execution; nil
	// (production) injects nothing and costs a nil compare per site.
	Faults *faults.Injector
	// TolerateFailures records permanently-failed cells in
	// Results.Failures and completes the sweep without them, instead of
	// failing the whole sweep on the first bad cell.
	TolerateFailures bool
}

// DefaultOptions returns the full sweep at a laptop-scale budget.
func DefaultOptions() Options {
	return Options{
		WarmupInstrs: 50_000,
		MaxInstrs:    60_000,
		Workloads:    workload.All(),
		Variants:     core.Variants(),
		Models:       []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic},
		Parallel:     true,
	}
}

// Normalized returns opt with unset fields filled from the defaults, so
// every consumer (CLI sweep, simulation service) resolves a request the
// same way.
func (o Options) Normalized() Options {
	if o.MaxInstrs == 0 {
		o.MaxInstrs = DefaultOptions().MaxInstrs
	}
	if o.Workloads == nil {
		o.Workloads = workload.All()
	}
	if o.Variants == nil {
		o.Variants = core.Variants()
	}
	if o.Models == nil {
		o.Models = []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic}
	}
	if o.SimMode == "" {
		o.SimMode = SimDetailed
	}
	// o.Sample is deliberately NOT default-filled here: zero fields mean
	// "unset", and the per-workload tuning table (TunedSampleConfig)
	// resolves them at plan-build time, per workload. Filling global
	// defaults here would erase the distinction between "caller asked
	// for 5000" and "caller left it to us".
	return o
}

// Workers returns the worker-pool size the options imply.
func (o Options) Workers() int {
	if o.Parallel {
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// Key identifies one run.
type Key struct {
	Workload string
	Variant  core.Variant
	Model    pipeline.AttackModel
}

// Cells enumerates the sweep's (workload, variant, model) grid in the
// canonical order (workloads outermost, models innermost).
func (o Options) Cells() []Key {
	o = o.Normalized()
	var cells []Key
	for _, wl := range o.Workloads {
		for _, v := range o.Variants {
			for _, m := range o.Models {
				cells = append(cells, Key{wl.Name, v, m})
			}
		}
	}
	return cells
}

// Results holds a completed sweep.
type Results struct {
	Opt  Options
	Runs map[Key]core.Result

	// WarmupInstrsSimulated counts warmup instructions actually simulated
	// across the sweep (nominal budget per warmed cell, actual executed
	// count per checkpoint capture). With checkpoint reuse a sweep warms
	// once per workload instead of once per cell, so this counter is what
	// the CI speedup smoke compares. Deliberately not part of the JSON
	// Export: reuse on/off exports must stay byte-identical.
	WarmupInstrsSimulated uint64
	// CheckpointsCaptured counts per-workload warmup checkpoints captured
	// (0 unless functional warmup with checkpoint reuse ran).
	CheckpointsCaptured int

	// Sampled-mode bookkeeping (nil/zero in detailed mode). SamplePlans
	// maps workload name to its clustering plan, for run summaries
	// (chosen k, sampled fraction, error estimate). ProfiledInstrs counts
	// functional instructions the BBV profiling pass executed. Like the
	// warmup counters these never enter the JSON Export: a sampled export
	// carries only the reconstructed runs.
	SamplePlans    map[string]*simpoint.Plan
	ProfiledInstrs uint64
	// DetailedInstrsSimulated counts instructions committed by the
	// detailed pipeline across the sweep — in sampled mode only the
	// representative intervals, which is what the "measurably fewer
	// detailed instructions" summary line compares against the full
	// window.
	DetailedInstrsSimulated uint64

	// Retries counts cell attempts beyond the first across the sweep
	// (non-zero only under a retrying Policy). Like the warmup counters,
	// deliberately not part of the JSON Export: a chaos run that recovers
	// through retries must export byte-identically to a clean run.
	Retries uint64
	// Failures lists cells that failed permanently. Empty unless
	// Options.TolerateFailures let the sweep complete around them.
	Failures []CellFailure

	// Attrib carries per-cell latency attributions when the producer ran
	// with tracing enabled (the simulation service's trace layer); nil
	// otherwise. Unlike the counters above it DOES enter the JSON Export
	// (ExportRun.Attribution, omitted when absent): attribution is an
	// explicitly opt-in annotation, and an untraced run's export stays
	// byte-identical to one produced before tracing existed.
	Attrib map[Key]*trace.Attribution
}

// CellFailure records one permanently-failed cell of a tolerant sweep.
type CellFailure struct {
	Key      Key    `json:"key"`
	Kind     string `json:"kind"`
	Attempts int    `json:"attempts"`
	Err      string `json:"error"`
}

// RunParams carries the per-run bounds and warmup policy of a cell —
// everything RunOne needs beyond the cell's identity.
type RunParams struct {
	WarmupInstrs   uint64
	MaxInstrs      uint64
	IntervalCycles uint64
	WarmupMode     core.WarmupMode
	// Checkpoint, when non-nil, is a pre-captured functional-warmup
	// snapshot restored instead of re-running warmup (requires
	// WarmupFunctional and a matching WarmupInstrs).
	Checkpoint *arch.Checkpoint
	// Check, when non-nil, is polled by the pipeline every few thousand
	// cycles; a non-nil return aborts the run. RunCell assembles this
	// from its policy (cancellation, deadline, stall watchdog); direct
	// RunOne callers normally leave it nil.
	Check func(cycle, committed uint64) error
}

// Params returns the per-run parameters the options imply (without a
// checkpoint; RunContext fills that in per workload when reuse is on).
func (o Options) Params() RunParams {
	return RunParams{
		WarmupInstrs:   o.WarmupInstrs,
		MaxInstrs:      o.MaxInstrs,
		IntervalCycles: o.IntervalCycles,
		WarmupMode:     o.WarmupMode,
	}
}

// reuseCheckpoints reports whether the sweep warms via per-workload
// checkpoints.
func (o Options) reuseCheckpoints() bool {
	return o.WarmupMode == core.WarmupFunctional && !o.NoCheckpointReuse && o.WarmupInstrs > 0
}

// CaptureCheckpoint runs functional warmup for one workload and snapshots
// the result for reuse across every cell that shares (workload, warmup).
func CaptureCheckpoint(wl workload.Workload, warmup uint64) *arch.Checkpoint {
	prog, init := wl.Build()
	return core.CaptureCheckpoint(core.Config{WarmupInstrs: warmup}, prog, init)
}

// RunOne executes a single simulation cell: one workload under one design
// variant and attack model. This is the single execution path shared by
// the CLI sweep, the ablation study and the simulation service.
func RunOne(wl workload.Workload, v core.Variant, m pipeline.AttackModel, ab core.Ablation, p RunParams) (core.Result, error) {
	prog, init := wl.Build()
	machine := core.NewMachine(core.Config{
		Variant:        v,
		Model:          m,
		Ablate:         ab,
		WarmupInstrs:   p.WarmupInstrs,
		WarmupMode:     p.WarmupMode,
		MaxInstrs:      p.MaxInstrs,
		IntervalCycles: p.IntervalCycles,
		Check:          p.Check,
	}, prog, init)
	if p.Checkpoint != nil {
		if err := machine.Restore(p.Checkpoint); err != nil {
			return core.Result{}, err
		}
	}
	return machine.Run()
}

// FormatProgress renders the per-run progress line.
func FormatProgress(k Key, r core.Result) string {
	return fmt.Sprintf("%-14s %-11s %-10s %9d cycles (IPC %.2f)",
		k.Workload, k.Variant, k.Model, r.Cycles, r.IPC())
}

// Run executes the sweep.
func Run(opt Options) (*Results, error) {
	return RunContext(context.Background(), opt)
}

// RunContext executes the sweep on a fixed-size worker pool, stopping
// (no new simulations are started) as soon as ctx is cancelled or any
// run fails.
func RunContext(ctx context.Context, opt Options) (*Results, error) {
	opt = opt.Normalized()
	res := &Results{Opt: opt, Runs: make(map[Key]core.Result)}

	byName := make(map[string]workload.Workload, len(opt.Workloads))
	for _, wl := range opt.Workloads {
		byName[wl.Name] = wl
	}
	cells := opt.Cells()

	if opt.SimMode == SimSampled {
		return runSampledSweep(ctx, opt, res, byName, cells)
	}

	// With functional warmup, capture one checkpoint per workload up front
	// and restore it into every (variant, model) cell: the grid then warms
	// each workload once instead of len(variants)×len(models) times.
	checkpoints := make(map[string]*arch.Checkpoint)
	if opt.reuseCheckpoints() {
		var cmu sync.Mutex
		if err := RunPool(ctx, opt.Workers(), len(opt.Workloads), func(ctx context.Context, i int) error {
			wl := opt.Workloads[i]
			ck := CaptureCheckpoint(wl, opt.WarmupInstrs)
			cmu.Lock()
			defer cmu.Unlock()
			checkpoints[wl.Name] = ck
			res.CheckpointsCaptured++
			res.WarmupInstrsSimulated += ck.Arch.Instrs
			return nil
		}); err != nil {
			return res, err
		}
	}

	var mu sync.Mutex
	err := RunPool(ctx, opt.Workers(), len(cells), func(ctx context.Context, i int) error {
		k := cells[i]
		p := opt.Params()
		p.Checkpoint = checkpoints[k.Workload]
		r, retries, err := RunCell(ctx, byName[k.Workload], k.Variant, k.Model, core.Ablation{}, p, opt.Policy, opt.Faults)
		mu.Lock()
		defer mu.Unlock()
		res.Retries += uint64(retries)
		if err != nil {
			var ce *CellError
			if opt.TolerateFailures && errors.As(err, &ce) {
				res.Failures = append(res.Failures, CellFailure{
					Key: k, Kind: string(ce.Kind), Attempts: ce.Attempts, Err: ce.Err.Error()})
				return nil
			}
			return fmt.Errorf("harness: %s/%v/%v: %w", k.Workload, k.Variant, k.Model, err)
		}
		res.Runs[k] = r
		res.DetailedInstrsSimulated += r.Committed
		if p.Checkpoint == nil && opt.WarmupInstrs > 0 {
			res.WarmupInstrsSimulated += opt.WarmupInstrs
		}
		if opt.Progress != nil {
			opt.Progress(FormatProgress(k, r))
		}
		return nil
	})
	return res, err
}

// Get returns one run's result.
func (r *Results) Get(wl string, v core.Variant, m pipeline.AttackModel) (core.Result, bool) {
	res, ok := r.Runs[Key{wl, v, m}]
	return res, ok
}

// NormTime returns the run's execution time normalized to the Unsafe run
// of the same workload/model (Figure 6's metric).
func (r *Results) NormTime(wl string, v core.Variant, m pipeline.AttackModel) float64 {
	base, ok1 := r.Get(wl, core.Unsafe, m)
	run, ok2 := r.Get(wl, v, m)
	if !ok1 || !ok2 || base.Cycles == 0 {
		return 0
	}
	return float64(run.Cycles) / float64(base.Cycles)
}

// workloadNames lists the workloads present in the sweep, in suite order.
func (r *Results) workloadNames() []string {
	var names []string
	for _, wl := range r.Opt.Workloads {
		names = append(names, wl.Name)
	}
	return names
}

// AvgNormTime averages NormTime over all workloads (the "Avg" bars of
// Figure 6).
func (r *Results) AvgNormTime(v core.Variant, m pipeline.AttackModel) float64 {
	var sum float64
	var n int
	for _, wl := range r.workloadNames() {
		if t := r.NormTime(wl, v, m); t > 0 {
			sum += t
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AvgOverheadPct is the average overhead vs Unsafe, in percent.
func (r *Results) AvgOverheadPct(v core.Variant, m pipeline.AttackModel) float64 {
	return (r.AvgNormTime(v, m) - 1) * 100
}

// ImprovementPct returns how much variant v improves on baseline b, as the
// paper reports it: the fraction of the baseline's overhead eliminated.
func (r *Results) ImprovementPct(v, b core.Variant, m pipeline.AttackModel) float64 {
	ob := r.AvgOverheadPct(b, m)
	ov := r.AvgOverheadPct(v, m)
	if ob <= 0 {
		return 0
	}
	return (ob - ov) / ob * 100
}

// PredictorQuality aggregates Table III for one variant/model: precision =
// precise / all, accuracy = (precise + imprecise) / all, over all resolved
// Obl-Lds in the sweep.
func (r *Results) PredictorQuality(v core.Variant, m pipeline.AttackModel) (precision, accuracy float64) {
	var precise, imprecise, inaccurate uint64
	for _, wl := range r.workloadNames() {
		if run, ok := r.Get(wl, v, m); ok {
			precise += run.PredPrecise
			imprecise += run.PredImprecise
			inaccurate += run.PredInaccurate
		}
	}
	total := precise + imprecise + inaccurate
	if total == 0 {
		return 0, 0
	}
	return float64(precise) / float64(total), float64(precise+imprecise) / float64(total)
}

// SquashesPerKInstr averages total squashes per 1000 committed
// instructions (Figure 8's x-axis).
func (r *Results) SquashesPerKInstr(v core.Variant, m pipeline.AttackModel) float64 {
	var squashes, instrs uint64
	for _, wl := range r.workloadNames() {
		if run, ok := r.Get(wl, v, m); ok {
			squashes += run.TotalSquashes()
			instrs += run.Committed
		}
	}
	if instrs == 0 {
		return 0
	}
	return float64(squashes) / float64(instrs) * 1000
}

// Breakdown is Figure 7's decomposition of one SDO variant's slowdown.
// Components are percentages of execution time added over Unsafe,
// averaged across workloads.
type Breakdown struct {
	Variant    core.Variant
	Model      pipeline.AttackModel
	TotalPct   float64 // total overhead vs Unsafe
	Inaccurate float64 // squashes from failed Obl-Lds
	Imprecise  float64 // waiting for over-predicted levels
	Validation float64 // commit stalls on validations
	TLB        float64 // ⊥-translation squashes (§V-B)
	Other      float64 // no-fill misses, implicit channels, contention
}

// squashRefillCost approximates the pipeline refill penalty charged per
// squash when attributing slowdown (frontend redirect + re-dispatch).
const squashRefillCost = 16.0

// BreakdownFor computes the Figure 7 attribution for one variant/model.
// ImprecisionCycles and ValidationStall are measured exactly; squash costs
// are counted as squashed-instruction refill estimates; the remainder of
// the measured slowdown is "other".
func (r *Results) BreakdownFor(v core.Variant, m pipeline.AttackModel) Breakdown {
	b := Breakdown{Variant: v, Model: m}
	var over, inacc, imprec, val, tlb float64
	var n int
	for _, wl := range r.workloadNames() {
		base, ok1 := r.Get(wl, core.Unsafe, m)
		run, ok2 := r.Get(wl, v, m)
		if !ok1 || !ok2 || base.Cycles == 0 {
			continue
		}
		n++
		slow := float64(run.Cycles) - float64(base.Cycles)
		if slow < 0 {
			slow = 0
		}
		sq := run.SquashesByCause()
		ci := float64(sq["obl-fail"]) * squashRefillCost
		ct := float64(sq["tlb"]) * squashRefillCost
		cv := float64(run.ValidationStall)
		cp := float64(run.ImprecisionCycles)
		sum := ci + ct + cv + cp
		if sum > slow && sum > 0 {
			// The components overlap with latency hiding; scale to fit.
			f := slow / sum
			ci, ct, cv, cp = ci*f, ct*f, cv*f, cp*f
			sum = slow
		}
		den := float64(base.Cycles)
		over += slow / den * 100
		inacc += ci / den * 100
		imprec += cp / den * 100
		val += cv / den * 100
		tlb += ct / den * 100
	}
	if n == 0 {
		return b
	}
	fn := float64(n)
	b.TotalPct = over / fn
	b.Inaccurate = inacc / fn
	b.Imprecise = imprec / fn
	b.Validation = val / fn
	b.TLB = tlb / fn
	b.Other = b.TotalPct - b.Inaccurate - b.Imprecise - b.Validation - b.TLB
	if b.Other < 0 {
		b.Other = 0
	}
	return b
}

// AblationRow is one row of the design-space study: the paper's full
// STT+SDO with one mechanism changed.
type AblationRow struct {
	Name     string        `json:"name"`
	Ablate   core.Ablation `json:"ablate"`
	NormTime float64       `json:"norm_time"` // vs Unsafe, averaged over the sweep's workloads
}

// AblationRows returns the design-space study's row templates in report
// order (NormTime unset): the paper's full STT+SDO and one-mechanism-off
// variations of it. Shared by RunAblations and the simulation service's
// cell enumeration.
func AblationRows() []AblationRow {
	return []AblationRow{
		{Name: "STT+SDO (paper)"},
		{Name: "no early forwarding", Ablate: core.Ablation{DisableEarlyForward: true}},
		{Name: "no exposures (always validate)", Ablate: core.Ablation{AlwaysValidate: true}},
		{Name: "no implicit-channel protection (INSECURE)", Ablate: core.Ablation{NoImplicitChannelProtection: true}},
		{Name: "with DO DRAM variant", Ablate: core.Ablation{OblDRAMVariant: true}},
	}
}

// AggregateAblations fills in each row's NormTime from per-(workload, row)
// cycle counts: cycles[wi][0] is workload wi's Unsafe baseline and
// cycles[wi][1+ri] the Hybrid run with rows[ri].Ablate. A workload with a
// zero baseline is skipped. Shared by RunAblations and the service's
// ablation-export path.
func AggregateAblations(rows []AblationRow, cycles [][]uint64) {
	sums := make([]float64, len(rows))
	counts := make([]int, len(rows))
	for _, wc := range cycles {
		if len(wc) != len(rows)+1 || wc[0] == 0 {
			continue
		}
		for ri := range rows {
			sums[ri] += float64(wc[1+ri]) / float64(wc[0])
			counts[ri]++
		}
	}
	for i := range rows {
		rows[i].NormTime = 0
		if counts[i] > 0 {
			rows[i].NormTime = sums[i] / float64(counts[i])
		}
	}
}

// RunAblations measures the contribution of individual SDO/STT mechanisms
// on the Hybrid configuration: the §V-C2 early-forwarding optimisation,
// InvisiSpec exposures, STT's implicit-channel rules, and the DO DRAM
// variant the paper declines to build (§VI-B2). Functional warmup with
// checkpoint reuse warms each workload once and shares the snapshot
// across the baseline and every ablation cell — sound because ablations
// only alter speculative execution, which functional warmup has none of.
func RunAblations(opt Options, model pipeline.AttackModel) ([]AblationRow, error) {
	return RunAblationsContext(context.Background(), opt, model)
}

// RunAblationsContext is RunAblations with cancellation.
func RunAblationsContext(ctx context.Context, opt Options, model pipeline.AttackModel) ([]AblationRow, error) {
	if opt.MaxInstrs == 0 {
		opt.MaxInstrs = DefaultOptions().MaxInstrs
	}
	if opt.Workloads == nil {
		opt.Workloads = workload.All()
	}
	rows := AblationRows()
	cycles := make([][]uint64, len(opt.Workloads))
	err := RunPool(ctx, opt.Workers(), len(opt.Workloads), func(ctx context.Context, wi int) error {
		wl := opt.Workloads[wi]
		p := opt.Params()
		p.IntervalCycles = 0
		if opt.reuseCheckpoints() {
			p.Checkpoint = CaptureCheckpoint(wl, opt.WarmupInstrs)
		}
		// A permanent failure anywhere in a tolerant ablation block zeroes
		// the whole workload block: AggregateAblations skips zero-baseline
		// workloads, so the table aggregates only fully-measured ones.
		wc := make([]uint64, 1+len(rows))
		base, _, err := RunCell(ctx, wl, core.Unsafe, model, core.Ablation{}, p, opt.Policy, opt.Faults)
		if err != nil {
			var ce *CellError
			if opt.TolerateFailures && errors.As(err, &ce) {
				return nil
			}
			return err
		}
		wc[0] = base.Cycles
		if base.Cycles != 0 {
			for ri := range rows {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				r, _, err := RunCell(ctx, wl, core.Hybrid, model, rows[ri].Ablate, p, opt.Policy, opt.Faults)
				if err != nil {
					var ce *CellError
					if opt.TolerateFailures && errors.As(err, &ce) {
						return nil
					}
					return err
				}
				wc[1+ri] = r.Cycles
			}
		}
		cycles[wi] = wc
		return nil
	})
	if err != nil {
		return nil, err
	}
	AggregateAblations(rows, cycles)
	return rows, nil
}
