package harness

import (
	"context"
	"sync"
)

// Pool is the scheduling machinery shared by the CLI sweep (Run) and the
// simulation service (internal/simsvc): a fixed set of worker goroutines
// dequeuing tasks from a FIFO queue. Workers always invoke the task with
// the pool's context; tasks observe cancellation themselves, so a
// cancelled pool drains its queue quickly (each task bails out early)
// while runs that already started are allowed to finish — exactly the
// graceful-shutdown behaviour the service needs, and the error behaviour
// the sweep needs (no new simulations once one has failed).
type Pool struct {
	ctx    context.Context
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func(context.Context)
	closed bool
	active int
	wg     sync.WaitGroup
}

// NewPool starts a pool of `workers` goroutines (minimum 1) bound to ctx.
func NewPool(ctx context.Context, workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{ctx: ctx}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		fn := p.queue[0]
		p.queue = p.queue[1:]
		p.active++
		p.mu.Unlock()
		fn(p.ctx)
		p.mu.Lock()
		p.active--
		p.mu.Unlock()
	}
}

// Submit enqueues fn. It reports false (dropping fn) once Close has been
// called.
func (p *Pool) Submit(fn func(context.Context)) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.queue = append(p.queue, fn)
	p.cond.Signal()
	return true
}

// Close stops intake; workers exit once the queue has drained.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Wait blocks until Close has been called and every queued task has run.
func (p *Pool) Wait() { p.wg.Wait() }

// QueueDepth returns the number of tasks waiting for a worker.
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Active returns the number of tasks currently executing.
func (p *Pool) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// RunPool runs fn(ctx, i) for every i in [0, n) on a pool of `workers`
// goroutines and waits for completion. The first error cancels the
// derived context, which stops remaining tasks from starting (they are
// dequeued but return immediately); in-flight tasks finish. Returns the
// first task error, or the parent context's error if it was cancelled.
func RunPool(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex
	var firstErr error
	p := NewPool(ctx, workers)
	for i := 0; i < n; i++ {
		i := i
		p.Submit(func(ctx context.Context) {
			if ctx.Err() != nil {
				return
			}
			if err := fn(ctx, i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel()
			}
		})
	}
	p.Close()
	p.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr == nil && parent.Err() != nil {
		return parent.Err()
	}
	return firstErr
}
