package harness

import (
	"testing"

	"repro/internal/simpoint"
	"repro/internal/workload"
)

// TestTunedSampleConfigTable pins the contract of the per-workload
// tuning table: every suite workload resolves to a fully defaulted
// config, tuned entries actually differ where claimed, and explicitly
// set fields always win over the table.
func TestTunedSampleConfigTable(t *testing.T) {
	for _, wl := range workload.All() {
		cfg := TunedSampleConfig(wl.Name, simpoint.Config{})
		if cfg.IntervalInstrs == 0 || cfg.MaxK <= 0 || cfg.Seed == 0 {
			t.Errorf("%s: unresolved tuned config %+v", wl.Name, cfg)
		}
	}

	// Tuned entries diverge from the one-size defaults in both directions.
	if got := TunedSampleConfig("mcf_r", simpoint.Config{}); got.IntervalInstrs >= simpoint.DefaultIntervalInstrs {
		t.Errorf("mcf_r tuned interval %d not finer than default %d",
			got.IntervalInstrs, simpoint.DefaultIntervalInstrs)
	}
	if got := TunedSampleConfig("lbm_r", simpoint.Config{}); got.IntervalInstrs <= simpoint.DefaultIntervalInstrs || got.MaxK >= simpoint.DefaultMaxK {
		t.Errorf("lbm_r tuned config %+v not coarser/cheaper than defaults", got)
	}

	// Unknown workloads fall back to the package defaults.
	got := TunedSampleConfig("no-such-workload", simpoint.Config{})
	want := simpoint.Config{}.WithDefaults()
	if got != want {
		t.Errorf("unknown workload: got %+v, want package defaults %+v", got, want)
	}

	// Explicit fields pass through untouched on every workload.
	pin := simpoint.Config{IntervalInstrs: 1234, MaxK: 3, Seed: 7}
	for _, name := range []string{"mcf_r", "lbm_r", "no-such-workload"} {
		if got := TunedSampleConfig(name, pin); got != pin {
			t.Errorf("%s: explicit config rewritten: got %+v, want %+v", name, got, pin)
		}
	}
}
