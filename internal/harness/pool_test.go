package harness

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunPoolRunsAll(t *testing.T) {
	var ran atomic.Int32
	if err := RunPool(context.Background(), 4, 100, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", ran.Load())
	}
}

func TestRunPoolStopsDequeuingAfterError(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	const n = 1000
	err := RunPool(context.Background(), 2, n, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The old implementation kept running all n jobs after the first
	// error; the pool must stop starting new ones once it is recorded.
	if s := started.Load(); s > n/2 {
		t.Fatalf("%d of %d tasks still started after the error", s, n)
	}
}

func TestRunPoolParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var started atomic.Int32
	err := RunPool(ctx, 2, 50, func(ctx context.Context, i int) error {
		started.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started.Load() != 0 {
		t.Fatalf("%d tasks started under a cancelled context", started.Load())
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(context.Background(), 1)
	p.Close()
	if p.Submit(func(context.Context) {}) {
		t.Fatal("Submit accepted a task after Close")
	}
	p.Wait()
}

func TestPoolCounters(t *testing.T) {
	p := NewPool(context.Background(), 1)
	release := make(chan struct{})
	running := make(chan struct{})
	p.Submit(func(context.Context) { close(running); <-release })
	p.Submit(func(context.Context) {})
	<-running
	if d := p.QueueDepth(); d != 1 {
		t.Fatalf("queue depth = %d, want 1", d)
	}
	if a := p.Active(); a != 1 {
		t.Fatalf("active = %d, want 1", a)
	}
	close(release)
	p.Close()
	p.Wait()
	if p.QueueDepth() != 0 || p.Active() != 0 {
		t.Fatalf("pool not drained: depth=%d active=%d", p.QueueDepth(), p.Active())
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := DefaultOptions()
	opt.MaxInstrs = 2000
	if _, err := RunContext(ctx, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
