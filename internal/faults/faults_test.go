package faults

import (
	"errors"
	"testing"
	"time"
)

// A nil injector must answer "no fault" from every method — it is the
// production configuration.
func TestNilInjectorIsInert(t *testing.T) {
	var f *Injector
	if f.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	f.PanicNow("k", 0) // must not panic
	if f.WouldPanic("k", 0) {
		t.Fatal("nil injector would panic")
	}
	if d := f.Delay("k", 0); d != 0 {
		t.Fatalf("nil injector delay = %v", d)
	}
	if d := f.Freeze("k", 0); d != 0 {
		t.Fatalf("nil injector freeze = %v", d)
	}
	if err := f.LoadErr(); err != nil {
		t.Fatalf("nil injector load err = %v", err)
	}
	if err := f.SaveErr(); err != nil {
		t.Fatalf("nil injector save err = %v", err)
	}
	if s := f.Stats(); s.Total() != 0 {
		t.Fatalf("nil injector stats = %+v", s)
	}
}

// The same seed must make the same decisions for the same (key, attempt),
// independent of call order — determinism is what makes chaos runs
// reproducible.
func TestDrawsAreDeterministic(t *testing.T) {
	mk := func() *Injector {
		return New(Config{Seed: 42, PanicProb: 0.5, SlowProb: 0.5, SlowDelay: time.Millisecond})
	}
	a, b := mk(), mk()
	keys := []string{"mcf_r/Hybrid/Spectre", "x264_r/Unsafe/Spectre", "lbm_r/Delay/Futuristic"}
	// b queries in reverse order with extra interleaved calls; decisions
	// must match a's exactly.
	type dec struct{ p, s bool }
	got := map[string]dec{}
	for _, k := range keys {
		for at := 0; at < 4; at++ {
			got[k+string(rune('0'+at))] = dec{a.WouldPanic(k, at), a.WouldSlow(k, at)}
		}
	}
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		for at := 3; at >= 0; at-- {
			b.WouldSlow("noise", 9)
			d := dec{b.WouldPanic(k, at), b.WouldSlow(k, at)}
			if d != got[k+string(rune('0'+at))] {
				t.Fatalf("decision for (%s, %d) not deterministic: %+v", k, at, d)
			}
		}
	}
}

// Distinct attempts must draw independently: with prob 0.5 across many
// keys, some panic on attempt 0 but not attempt 1 (the transient shape
// retries recover from), and a different seed flips some decisions.
func TestDrawsVaryByAttemptAndSeed(t *testing.T) {
	f1 := New(Config{Seed: 1, PanicProb: 0.5})
	f2 := New(Config{Seed: 2, PanicProb: 0.5})
	transient, seedDiff := false, false
	for i := 0; i < 64; i++ {
		k := "cell-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if f1.WouldPanic(k, 0) && !f1.WouldPanic(k, 1) {
			transient = true
		}
		if f1.WouldPanic(k, 0) != f2.WouldPanic(k, 0) {
			seedDiff = true
		}
	}
	if !transient {
		t.Error("no key panics on attempt 0 and recovers on attempt 1")
	}
	if !seedDiff {
		t.Error("seed does not change decisions")
	}
}

func TestPanicNowThrowsTypedValue(t *testing.T) {
	f := New(Config{PanicKey: "mcf_r"})
	defer func() {
		v := recover()
		p, ok := v.(Panic)
		if !ok {
			t.Fatalf("recovered %T (%v), want faults.Panic", v, v)
		}
		if p.Key != "mcf_r/Hybrid" || p.Attempt != 3 {
			t.Fatalf("panic value = %+v", p)
		}
		if f.Stats().Panics != 1 {
			t.Fatalf("panic counter = %d", f.Stats().Panics)
		}
	}()
	f.PanicNow("x264_r/Unsafe", 0) // no substring match: must not panic
	f.PanicNow("mcf_r/Hybrid", 3)
	t.Fatal("PanicNow did not panic")
}

// PanicKey is a permanent fault: every attempt panics.
func TestPanicKeyIsPermanent(t *testing.T) {
	f := New(Config{PanicKey: "deepsjeng"})
	for at := 0; at < 5; at++ {
		if !f.WouldPanic("deepsjeng_r/Hybrid/Spectre", at) {
			t.Fatalf("attempt %d did not panic", at)
		}
	}
}

func TestDiskFullFailsFirstNPersists(t *testing.T) {
	f := New(Config{DiskFullPersists: 2})
	for i := 0; i < 2; i++ {
		if err := f.SaveErr(); !errors.Is(err, ErrDiskFull) || !errors.Is(err, ErrInjected) {
			t.Fatalf("persist %d: err = %v, want ErrDiskFull", i, err)
		}
	}
	if err := f.SaveErr(); err != nil {
		t.Fatalf("persist after disk-full window: %v", err)
	}
	if got := f.Stats().DiskFulls; got != 2 {
		t.Fatalf("disk-full counter = %d", got)
	}
}

func TestLoadErrProbability(t *testing.T) {
	f := New(Config{Seed: 7, CacheReadErrProb: 1})
	if err := f.LoadErr(); !errors.Is(err, ErrInjected) {
		t.Fatalf("LoadErr with prob 1 = %v", err)
	}
	g := New(Config{Seed: 7})
	if err := g.LoadErr(); err != nil {
		t.Fatalf("LoadErr with prob 0 = %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	f, err := Parse("seed=11, panic=0.25,panic-key=mcf, slow=0.5,slow-delay=15ms," +
		"freeze=0.1,freeze-for=200ms,cache-read=0.2,cache-write=0.3,disk-full=2")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 11, PanicProb: 0.25, PanicKey: "mcf",
		SlowProb: 0.5, SlowDelay: 15 * time.Millisecond,
		FreezeProb: 0.1, FreezeFor: 200 * time.Millisecond,
		CacheReadErrProb: 0.2, CacheWriteErrProb: 0.3, DiskFullPersists: 2,
	}
	if got := f.Config(); got != want {
		t.Fatalf("parsed config = %+v, want %+v", got, want)
	}
}

func TestParseDefaultsAndErrors(t *testing.T) {
	if f, err := Parse(""); f != nil || err != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", f, err)
	}
	// slow without slow-delay gets a usable default.
	f, err := Parse("slow=1")
	if err != nil || f.Config().SlowDelay == 0 {
		t.Fatalf("slow default: cfg=%+v err=%v", f.Config(), err)
	}
	for _, bad := range []string{"panic", "panic=2", "panic=x", "bogus=1", "slow-delay=5"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestFromEnv(t *testing.T) {
	f, err := FromEnv(func(string) (string, bool) { return "", false })
	if f != nil || err != nil {
		t.Fatalf("unset env = (%v, %v)", f, err)
	}
	f, err = FromEnv(func(k string) (string, bool) {
		if k != EnvVar {
			t.Fatalf("looked up %q", k)
		}
		return "seed=3,panic=0.1", true
	})
	if err != nil || f == nil || f.Config().Seed != 3 {
		t.Fatalf("set env = (%+v, %v)", f, err)
	}
}
