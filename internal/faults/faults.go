// Package faults is a deterministic, seedable fault injector for chaos
// testing the sweep harness and the simulation service. It can inject
// panics into cell execution, artificial cell slowness, a mid-run freeze
// (the committed-instruction stream stops advancing, which is what the
// harness's stall watchdog kills), cache read/write I/O errors, and
// disk-full failures on cache persists.
//
// Two design rules:
//
//   - Determinism without coordination. Every decision is a pure function
//     of (seed, site, key, attempt) — a hash draw, not a shared PRNG
//     stream — so the same seed injects the same faults into the same
//     cells regardless of worker count or scheduling order. A cell that
//     draws a panic on attempt 0 usually draws clean on attempt 1, which
//     is exactly the "transient fault" shape retry logic exists for.
//
//   - Zero cost when disabled. Every method is nil-receiver safe: a nil
//     *Injector answers "no fault" after a single nil check, so
//     production call sites pay one pointer compare and no allocation.
//
// Activation for chaos CI is a spec string (flag or the SDO_FAULTS
// environment variable), e.g.:
//
//	SDO_FAULTS="seed=11,panic=0.3,slow=0.3,slow-delay=10ms,disk-full=1"
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// EnvVar is the environment variable FromEnv reads the fault spec from.
const EnvVar = "SDO_FAULTS"

// ErrInjected marks every error produced by the injector, so callers can
// distinguish injected faults from real ones with errors.Is.
var ErrInjected = errors.New("faults: injected fault")

// ErrDiskFull is the injected persist failure (ENOSPC-shaped). It wraps
// ErrInjected.
var ErrDiskFull = fmt.Errorf("%w: disk full on persist", ErrInjected)

// Panic is the value thrown by injected panics; recover sites can
// type-assert it to recognize chaos-injected crashes.
type Panic struct {
	Key     string
	Attempt int
}

func (p Panic) String() string {
	return fmt.Sprintf("faults: injected panic (key=%s attempt=%d)", p.Key, p.Attempt)
}

// Config selects what to inject. All probabilities are in [0, 1] and are
// drawn independently per (key, attempt) — see the package comment.
type Config struct {
	// Seed makes every draw reproducible.
	Seed uint64
	// PanicProb injects a panic at the start of a cell attempt.
	PanicProb float64
	// PanicKey, when non-empty, makes every attempt of every cell whose
	// key contains this substring panic — a permanent failure, for
	// exercising retry exhaustion and degraded sweeps.
	PanicKey string
	// SlowProb/SlowDelay delay a cell attempt by SlowDelay before it
	// starts simulating (artificial cell slowness; with a per-cell
	// deadline configured this produces timeouts).
	SlowProb  float64
	SlowDelay time.Duration
	// FreezeProb/FreezeFor freeze a cell mid-run for FreezeFor: the
	// committed-instruction stream stops advancing while wall time
	// passes, which is the failure shape the harness's progress-based
	// stall watchdog detects.
	FreezeProb float64
	FreezeFor  time.Duration
	// CacheReadErrProb fails cache loads; CacheWriteErrProb fails cache
	// saves. Drawn per operation (sequence-numbered).
	CacheReadErrProb  float64
	CacheWriteErrProb float64
	// DiskFullPersists fails the first N cache persists with ErrDiskFull.
	DiskFullPersists int
	// JournalErrProb fails job-journal appends (the write-ahead record is
	// lost before the fsync, simulating a crash between write and sync).
	JournalErrProb float64
	// PeerErrProb fails peer cache lookups outright (connection-level
	// failure); PeerSlowProb/PeerSlowDelay delay a peer response (exercises
	// hedging and timeouts); PeerCorruptProb corrupts a peer response body
	// (exercises checksum validation). Drawn per (peer, key) pair.
	PeerErrProb     float64
	PeerSlowProb    float64
	PeerSlowDelay   time.Duration
	PeerCorruptProb float64
}

// Stats counts injected faults by kind.
type Stats struct {
	Panics, Slows, Freezes        uint64
	CacheReadErrs, CacheWriteErrs uint64
	DiskFulls                     uint64
	JournalErrs                   uint64
	PeerErrs, PeerSlows           uint64
	PeerCorrupts                  uint64
}

// Total sums every injected-fault counter.
func (s Stats) Total() uint64 {
	return s.Panics + s.Slows + s.Freezes + s.CacheReadErrs + s.CacheWriteErrs +
		s.DiskFulls + s.JournalErrs + s.PeerErrs + s.PeerSlows + s.PeerCorrupts
}

// Injector injects the configured faults. A nil *Injector is valid and
// injects nothing.
type Injector struct {
	cfg Config

	panics, slows, freezes atomic.Uint64
	readErrs, writeErrs    atomic.Uint64
	diskFulls              atomic.Uint64
	readSeq, writeSeq      atomic.Uint64
	persistSeq             atomic.Uint64
	journalErrs            atomic.Uint64
	journalSeq             atomic.Uint64
	peerErrs, peerSlows    atomic.Uint64
	peerCorrupts           atomic.Uint64
}

// New builds an injector for cfg.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Enabled reports whether any injection can happen.
func (f *Injector) Enabled() bool { return f != nil }

// Config returns the injector's configuration (zero value on nil).
func (f *Injector) Config() Config {
	if f == nil {
		return Config{}
	}
	return f.cfg
}

// Stats snapshots the injected-fault counters.
func (f *Injector) Stats() Stats {
	if f == nil {
		return Stats{}
	}
	return Stats{
		Panics:         f.panics.Load(),
		Slows:          f.slows.Load(),
		Freezes:        f.freezes.Load(),
		CacheReadErrs:  f.readErrs.Load(),
		CacheWriteErrs: f.writeErrs.Load(),
		DiskFulls:      f.diskFulls.Load(),
		JournalErrs:    f.journalErrs.Load(),
		PeerErrs:       f.peerErrs.Load(),
		PeerSlows:      f.peerSlows.Load(),
		PeerCorrupts:   f.peerCorrupts.Load(),
	}
}

// draw returns a deterministic uniform value in [0, 1) for (site, key,
// attempt) under the injector's seed.
func (f *Injector) draw(site, key string, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", f.cfg.Seed, site, key, attempt)
	// FNV-1a diffuses trailing bytes (the attempt number) weakly into the
	// high bits, so finish with a murmur3-style avalanche before taking
	// the top 53 bits → exactly representable float64 in [0, 1).
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / (1 << 53)
}

// WouldPanic reports whether PanicNow would panic for (key, attempt),
// without side effects — for tests that need to pick seeds.
func (f *Injector) WouldPanic(key string, attempt int) bool {
	if f == nil {
		return false
	}
	if f.cfg.PanicKey != "" && strings.Contains(key, f.cfg.PanicKey) {
		return true
	}
	return f.cfg.PanicProb > 0 && f.draw("panic", key, attempt) < f.cfg.PanicProb
}

// PanicNow panics with a Panic value if the draw for (key, attempt) says
// so. Call inside a recover scope.
func (f *Injector) PanicNow(key string, attempt int) {
	if f.WouldPanic(key, attempt) {
		f.panics.Add(1)
		panic(Panic{Key: key, Attempt: attempt})
	}
}

// WouldSlow reports whether Delay would return a non-zero delay.
func (f *Injector) WouldSlow(key string, attempt int) bool {
	return f != nil && f.cfg.SlowProb > 0 && f.cfg.SlowDelay > 0 &&
		f.draw("slow", key, attempt) < f.cfg.SlowProb
}

// Delay returns the artificial start-of-attempt delay for (key, attempt),
// or 0.
func (f *Injector) Delay(key string, attempt int) time.Duration {
	if !f.WouldSlow(key, attempt) {
		return 0
	}
	f.slows.Add(1)
	return f.cfg.SlowDelay
}

// Freeze returns how long (key, attempt) should freeze mid-run, or 0.
// The caller sleeps for the returned duration at its next progress-check
// point while the simulated instruction stream stays put.
func (f *Injector) Freeze(key string, attempt int) time.Duration {
	if f == nil || f.cfg.FreezeProb <= 0 || f.cfg.FreezeFor <= 0 ||
		f.draw("freeze", key, attempt) >= f.cfg.FreezeProb {
		return 0
	}
	f.freezes.Add(1)
	return f.cfg.FreezeFor
}

// LoadErr returns an injected cache-read error, or nil. Each call is a
// fresh sequence-numbered draw.
func (f *Injector) LoadErr() error {
	if f == nil || f.cfg.CacheReadErrProb <= 0 {
		return nil
	}
	seq := f.readSeq.Add(1)
	if f.draw("cache-read", "", int(seq)) >= f.cfg.CacheReadErrProb {
		return nil
	}
	f.readErrs.Add(1)
	return fmt.Errorf("%w: cache read I/O error (op %d)", ErrInjected, seq)
}

// SaveErr returns an injected cache-write error, or nil. The first
// Config.DiskFullPersists calls fail with ErrDiskFull; after that,
// CacheWriteErrProb draws apply.
func (f *Injector) SaveErr() error {
	if f == nil {
		return nil
	}
	seq := f.persistSeq.Add(1)
	if int(seq) <= f.cfg.DiskFullPersists {
		f.diskFulls.Add(1)
		return ErrDiskFull
	}
	if f.cfg.CacheWriteErrProb > 0 {
		wseq := f.writeSeq.Add(1)
		if f.draw("cache-write", "", int(wseq)) < f.cfg.CacheWriteErrProb {
			f.writeErrs.Add(1)
			return fmt.Errorf("%w: cache write I/O error (op %d)", ErrInjected, wseq)
		}
	}
	return nil
}

// JournalErr returns an injected job-journal append error, or nil. Each
// call is a fresh sequence-numbered draw, simulating a crash between the
// record write and its fsync: the caller must treat the record as never
// having been durably written.
func (f *Injector) JournalErr() error {
	if f == nil || f.cfg.JournalErrProb <= 0 {
		return nil
	}
	seq := f.journalSeq.Add(1)
	if f.draw("journal", "", int(seq)) >= f.cfg.JournalErrProb {
		return nil
	}
	f.journalErrs.Add(1)
	return fmt.Errorf("%w: journal append I/O error (op %d)", ErrInjected, seq)
}

// PeerErr returns an injected peer-lookup failure for (peer, key), or nil.
func (f *Injector) PeerErr(peer, key string) error {
	if f == nil || f.cfg.PeerErrProb <= 0 ||
		f.draw("peer-err", peer+"|"+key, 0) >= f.cfg.PeerErrProb {
		return nil
	}
	f.peerErrs.Add(1)
	return fmt.Errorf("%w: peer lookup failure (peer=%s)", ErrInjected, peer)
}

// PeerDelay returns the artificial peer-response delay for (peer, key),
// or 0.
func (f *Injector) PeerDelay(peer, key string) time.Duration {
	if f == nil || f.cfg.PeerSlowProb <= 0 || f.cfg.PeerSlowDelay <= 0 ||
		f.draw("peer-slow", peer+"|"+key, 0) >= f.cfg.PeerSlowProb {
		return 0
	}
	f.peerSlows.Add(1)
	return f.cfg.PeerSlowDelay
}

// PeerCorrupt reports whether the peer response body for (peer, key)
// should be corrupted before validation.
func (f *Injector) PeerCorrupt(peer, key string) bool {
	if f == nil || f.cfg.PeerCorruptProb <= 0 ||
		f.draw("peer-corrupt", peer+"|"+key, 0) >= f.cfg.PeerCorruptProb {
		return false
	}
	f.peerCorrupts.Add(1)
	return true
}

// Parse builds an injector from a comma-separated spec, e.g.
//
//	seed=11,panic=0.3,panic-key=mcf_r,slow=0.5,slow-delay=10ms,
//	freeze=0.2,freeze-for=300ms,cache-read=0.1,cache-write=0.1,disk-full=2
//
// An empty spec returns (nil, nil): injection disabled.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var cfg Config
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad spec element %q (want key=value)", part)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(v, 10, 64)
		case "panic":
			cfg.PanicProb, err = parseProb(v)
		case "panic-key":
			cfg.PanicKey = v
		case "slow":
			cfg.SlowProb, err = parseProb(v)
		case "slow-delay":
			cfg.SlowDelay, err = time.ParseDuration(v)
		case "freeze":
			cfg.FreezeProb, err = parseProb(v)
		case "freeze-for":
			cfg.FreezeFor, err = time.ParseDuration(v)
		case "cache-read":
			cfg.CacheReadErrProb, err = parseProb(v)
		case "cache-write":
			cfg.CacheWriteErrProb, err = parseProb(v)
		case "disk-full":
			cfg.DiskFullPersists, err = strconv.Atoi(v)
		case "journal-err":
			cfg.JournalErrProb, err = parseProb(v)
		case "peer-err":
			cfg.PeerErrProb, err = parseProb(v)
		case "peer-slow":
			cfg.PeerSlowProb, err = parseProb(v)
		case "peer-slow-delay":
			cfg.PeerSlowDelay, err = time.ParseDuration(v)
		case "peer-corrupt":
			cfg.PeerCorruptProb, err = parseProb(v)
		default:
			return nil, fmt.Errorf("faults: unknown spec key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: bad value for %q: %v", k, err)
		}
	}
	if cfg.SlowProb > 0 && cfg.SlowDelay == 0 {
		cfg.SlowDelay = 10 * time.Millisecond
	}
	if cfg.FreezeProb > 0 && cfg.FreezeFor == 0 {
		cfg.FreezeFor = 100 * time.Millisecond
	}
	if cfg.PeerSlowProb > 0 && cfg.PeerSlowDelay == 0 {
		cfg.PeerSlowDelay = 10 * time.Millisecond
	}
	return New(cfg), nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

// FromEnv builds an injector from the SDO_FAULTS environment variable via
// lookup (so tests can stub the lookup). Returns (nil, nil) when unset.
func FromEnv(lookup func(string) (string, bool)) (*Injector, error) {
	spec, ok := lookup(EnvVar)
	if !ok {
		return nil, nil
	}
	return Parse(spec)
}
