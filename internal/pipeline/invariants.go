package pipeline

import (
	"fmt"

	"repro/internal/isa"
)

// CheckInvariants verifies internal consistency of the core's speculative
// state. It is exercised by tests after every cycle of randomized runs; a
// violation indicates a bookkeeping bug (rename repair, queue trimming,
// frontier monotonicity within a squash-free region, ...).
func (c *Core) CheckInvariants() error {
	if c.tailSeq < c.headSeq {
		return fmt.Errorf("pipeline: tail %d < head %d", c.tailSeq, c.headSeq)
	}
	if c.tailSeq-c.headSeq > uint64(c.cfg.ROBSize) {
		return fmt.Errorf("pipeline: ROB window %d exceeds capacity %d",
			c.tailSeq-c.headSeq, c.cfg.ROBSize)
	}

	// The rename map points at live producers that write the mapped
	// register, at committed producers (squash repair may restore a
	// mapping whose producer has since retired; reads then fall back to
	// the architectural regfile), or at the regfile sentinel.
	for r, prod := range c.renameMap {
		if prod < 0 || uint64(prod) < c.headSeq {
			continue
		}
		seq := uint64(prod)
		if seq >= c.tailSeq {
			return fmt.Errorf("pipeline: renameMap[r%d] = %d beyond tail %d", r, seq, c.tailSeq)
		}
		e := c.entry(seq)
		if !e.hasDest || e.in.Rd != isa.Reg(r) {
			return fmt.Errorf("pipeline: renameMap[r%d] = %d, but that entry writes r%d (hasDest=%v)",
				r, seq, e.in.Rd, e.hasDest)
		}
	}

	// LQ and SQ are age-ordered subsets of the live window containing
	// exactly the live loads / stores+flushes.
	checkQueue := func(name string, q []uint64, member func(*robEntry) bool) error {
		prev := uint64(0)
		seen := make(map[uint64]bool, len(q))
		for _, seq := range q {
			if seq <= prev {
				return fmt.Errorf("pipeline: %s not age-ordered at %d", name, seq)
			}
			prev = seq
			if !c.live(seq) {
				return fmt.Errorf("pipeline: %s holds dead seq %d", name, seq)
			}
			if !member(c.entry(seq)) {
				return fmt.Errorf("pipeline: %s holds wrong-kind seq %d (%v)", name, seq, c.entry(seq).in)
			}
			seen[seq] = true
		}
		for seq := c.headSeq; seq < c.tailSeq; seq++ {
			if member(c.entry(seq)) && !seen[seq] {
				return fmt.Errorf("pipeline: %s is missing live seq %d (%v)", name, seq, c.entry(seq).in)
			}
		}
		return nil
	}
	if err := checkQueue("LQ", c.lq, func(e *robEntry) bool { return e.isLoad() }); err != nil {
		return err
	}
	if err := checkQueue("SQ", c.sq, func(e *robEntry) bool {
		return e.isStore() || e.in.Op == isa.OpFlush
	}); err != nil {
		return err
	}

	// The IQ holds only live, un-issued instructions.
	for _, seq := range c.iq {
		if !c.live(seq) {
			return fmt.Errorf("pipeline: IQ holds dead seq %d", seq)
		}
		if st := c.entry(seq).state; st != stWaiting {
			return fmt.Errorf("pipeline: IQ holds seq %d in state %d", seq, st)
		}
	}

	// Parked squashes reference live instructions.
	for _, p := range c.parked {
		if p.from >= c.tailSeq {
			return fmt.Errorf("pipeline: parked squash for dead seq %d", p.from)
		}
	}

	// Entry-level sanity for the live window.
	for seq := c.headSeq; seq < c.tailSeq; seq++ {
		e := c.entry(seq)
		if e.seq != seq {
			return fmt.Errorf("pipeline: ROB slot for %d holds seq %d", seq, e.seq)
		}
		if e.state == stDone && e.hasDest && e.destRoot > e.seq {
			return fmt.Errorf("pipeline: seq %d has taint root %d younger than itself", seq, e.destRoot)
		}
		if e.obl != oblNone && !e.isLoad() {
			return fmt.Errorf("pipeline: non-load seq %d has Obl state %d", seq, e.obl)
		}
	}

	// The frontier never exceeds the allocation point.
	if c.frontier > c.tailSeq {
		return fmt.Errorf("pipeline: frontier %d beyond tail %d", c.frontier, c.tailSeq)
	}
	return nil
}
