package pipeline

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
)

// entryState tracks an instruction's progress through the backend.
type entryState uint8

const (
	stWaiting   entryState = iota // in IQ, operands not ready / delayed
	stExecuting                   // issued, completes at doneAt
	stDone                        // result bound (register-writing value final)
)

// oblState is the Obl-Ld execution state machine (§V-C2, the 4-bit
// "Obl-Ld State" load-queue field of §VI-A).
type oblState uint8

const (
	oblNone       oblState = iota // not an Obl-Ld
	oblInFlight                   // issued; waiting for wait-buffer responses (before B)
	oblComplete                   // B reached before C; waiting to become safe
	oblSafeWaitB                  // C reached before B; validation issued; waiting for B (or D)
	oblValidating                 // safe, success, validation in flight (waiting D)
	oblResolved                   // fully resolved (validated / exposed / squash applied)
)

// squashCause labels squash statistics.
type squashCause uint8

const (
	sqBranch squashCause = iota
	sqMemOrder
	sqOblFail
	sqValidation
	sqConsistency
	sqTLB
	sqFPFail
	numSquashCauses
)

var squashCauseNames = [numSquashCauses]string{
	"branch", "mem-order", "obl-fail", "validation", "consistency", "tlb", "fp-fail",
}

// operand is one renamed source: either the committed register file value
// (producer < 0) or the output of the in-flight producer with that
// sequence number.
type operand struct {
	reg      isa.Reg
	producer int64 // -1 when the value comes from the committed regfile
}

// robEntry is one in-flight instruction. It embeds the load/store-queue
// fields (the §VI-A extensions included) since LQ/SQ entries correspond
// 1:1 with their ROB entries.
type robEntry struct {
	seq  uint64
	pc   int
	in   isa.Instr
	src  [2]operand
	nSrc int

	state  entryState
	doneAt uint64 // valid when state >= stExecuting

	// Destination (merged rename: value lives in the ROB entry).
	hasDest  bool
	destVal  uint64
	destRoot uint64 // YRoT: 0 = untainted
	prevProd int64  // previous producer of in.Rd, for squash repair

	// Branch bookkeeping.
	predTaken     bool
	predTarget    int
	bpSnap        bpred.Snapshot
	resolved      bool // outcome computed
	actualTaken   bool
	actualTarget  int
	mispredicted  bool
	effectApplied bool // resolution effects (squash/train) performed

	// Memory bookkeeping.
	addrValid   bool
	addr        uint64
	addrRoot    uint64 // taint root of the address operands
	sqData      uint64 // store: value to write
	sqDataReady bool
	sqForward   int64 // load: seq of forwarding store, -1 if from memory
	memLevel    mem.Level
	specFill    bool // load filled the speculative shadow (promote at commit)

	// Obl-Ld state machine (§V-C2 / §VI-A fields).
	obl           oblState
	oblRes        mem.OblResult
	oblPred       mem.Level // predicted level ("Actual Level" trains the predictor)
	oblTLBOK      bool      // L1 TLB probe hit (⊥ translation forces fail)
	exposure      bool      // §VI-A Validation/Exposure bit
	valDone       uint64    // D: validation completion cycle
	valLevel      mem.Level // level the validation found data in
	valSnapshot   uint64    // value the Obl-Ld forwarded (compared at D)
	valInFlight   bool
	oblDropped    bool // fail revealed while safe; waiting for the validation
	oblMemDelayed bool // SDO predicted DRAM: delayed until safe (§VI-B2)
	pendingInval  bool // line invalidated while speculative (§V-C1)

	// SDO floating-point operation.
	fpSDO     bool // executed on the predicted fast path with tainted args
	fpFail    bool // args turned out subnormal: squash when safe
	fpArgs    [2]uint64
	pendingSq bool // Pending Squash bit (§VI-A): squash when safe

	// STT transmitter-delay accounting.
	delayedSince uint64 // cycle the instruction first stalled on taint (0 = never)
}

func (e *robEntry) isBranch() bool { return e.in.Op.IsBranch() }
func (e *robEntry) isLoad() bool   { return e.in.Op.IsLoad() }
func (e *robEntry) isStore() bool  { return e.in.Op.IsStore() }

// Stats aggregates everything the experiment harness reads. All counters
// are cumulative over a run.
type Stats struct {
	Cycles    uint64
	Committed uint64
	Fetched   uint64

	Squashes       [numSquashCauses]uint64
	SquashedInstrs uint64
	BranchesResolved,
	BranchMispredicts uint64

	Loads, Stores uint64

	// STT delay accounting.
	DelayedLoads        uint64 // loads that ever stalled on a tainted address
	LoadDelayCycles     uint64 // total cycles loads spent taint-stalled
	DelayedFPs          uint64
	FPDelayCycles       uint64
	DelayedResolutions  uint64 // branch resolutions parked on tainted predicates
	PendingSquashDelays uint64 // squashes parked until untaint (implicit-channel rule)

	// SDO accounting.
	OblIssued       uint64
	OblSuccess      uint64
	OblFail         uint64
	OblPredMem      uint64 // predicted-DRAM loads delayed until safe (§VI-B2)
	OblTLBMiss      uint64 // Obl-Lds with ⊥ translation (§V-B)
	OblEarlyForward uint64 // early wait-buffer forwards (§V-C2 optimisation)
	Validations     uint64
	Exposures       uint64
	ValidationStall uint64 // commit-blocked cycles waiting for validations
	FPSDOIssued     uint64
	FPSDOFail       uint64
	// FPSlowPathExecs counts FP executions that actually took the
	// operand-dependent slow path (the timing channel). SDO and STT{ld+fp}
	// keep this at zero for speculatively-accessed operands.
	FPSlowPathExecs uint64

	// Location-predictor quality (Table III): counted per resolved Obl-Ld.
	PredPrecise    uint64 // predicted == actual
	PredImprecise  uint64 // predicted > actual (success, slower than needed)
	PredInaccurate uint64 // predicted < actual (fail)
	// ImprecisionCycles sums latency(predicted)-latency(actual) over
	// imprecise successes (feeds the Figure 7 breakdown).
	ImprecisionCycles uint64

	Halted bool
}

// SquashesByCause returns a map of cause name to count.
func (s *Stats) SquashesByCause() map[string]uint64 {
	m := make(map[string]uint64, numSquashCauses)
	for c, n := range s.Squashes {
		m[squashCauseNames[c]] = n
	}
	return m
}

// TotalSquashes sums all squash causes.
func (s *Stats) TotalSquashes() uint64 {
	var t uint64
	for _, n := range s.Squashes {
		t += n
	}
	return t
}

// Sub returns s - base, counter-wise: the statistics accrued strictly
// after base was captured. Used to exclude cache-warmup from measurement.
func (s Stats) Sub(base Stats) Stats {
	d := s
	d.Cycles -= base.Cycles
	d.Committed -= base.Committed
	d.Fetched -= base.Fetched
	for i := range d.Squashes {
		d.Squashes[i] -= base.Squashes[i]
	}
	d.SquashedInstrs -= base.SquashedInstrs
	d.BranchesResolved -= base.BranchesResolved
	d.BranchMispredicts -= base.BranchMispredicts
	d.Loads -= base.Loads
	d.Stores -= base.Stores
	d.DelayedLoads -= base.DelayedLoads
	d.LoadDelayCycles -= base.LoadDelayCycles
	d.DelayedFPs -= base.DelayedFPs
	d.FPDelayCycles -= base.FPDelayCycles
	d.DelayedResolutions -= base.DelayedResolutions
	d.PendingSquashDelays -= base.PendingSquashDelays
	d.OblIssued -= base.OblIssued
	d.OblSuccess -= base.OblSuccess
	d.OblFail -= base.OblFail
	d.OblPredMem -= base.OblPredMem
	d.OblTLBMiss -= base.OblTLBMiss
	d.OblEarlyForward -= base.OblEarlyForward
	d.Validations -= base.Validations
	d.Exposures -= base.Exposures
	d.ValidationStall -= base.ValidationStall
	d.FPSDOIssued -= base.FPSDOIssued
	d.FPSDOFail -= base.FPSDOFail
	d.FPSlowPathExecs -= base.FPSlowPathExecs
	d.PredPrecise -= base.PredPrecise
	d.PredImprecise -= base.PredImprecise
	d.PredInaccurate -= base.PredInaccurate
	d.ImprecisionCycles -= base.ImprecisionCycles
	return d
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}
