package pipeline

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/obs"
)

// resolve runs the untaint-driven machinery once per cycle: it computes
// the visibility frontier, then — oldest first — applies parked squashes
// whose predicates untainted, branch resolutions (delayed for tainted
// predicates per STT's implicit-channel rule), Obl-Ld state transitions,
// and SDO floating-point resolutions.
func (c *Core) resolve() {
	c.frontier = c.computeFrontier()
	c.applyParked()
	c.resolveBranches()
	c.stepOblAll()
	c.resolveFPSDO()
}

// computeFrontier returns the first sequence number that is still
// speculative under the configured attack model. Everything older is
// non-speculative: its taint roots compare as untainted.
//
// Spectre: an access instruction reaches its visibility point when all
// older control-flow instructions have resolved (and their resolution
// effects applied — a resolved-but-parked branch can still squash).
//
// Futuristic: when nothing older can squash it for any reason: branches,
// stores with unresolved addresses (memory-order violations), loads whose
// own value/validation story is not finished, unresolved SDO operations,
// and parked squashes.
func (c *Core) computeFrontier() uint64 {
	for seq := c.headSeq; seq < c.tailSeq; seq++ {
		if c.blocksFrontier(c.entry(seq)) {
			return seq
		}
	}
	return c.tailSeq
}

func (c *Core) blocksFrontier(e *robEntry) bool {
	if e.pendingSq {
		return true
	}
	if c.cfg.Model == Spectre {
		return e.in.Op.IsCondBranch() && !e.effectApplied
	}
	// Futuristic.
	if e.isBranch() && !e.effectApplied {
		return true
	}
	if e.isStore() && !e.addrValid {
		return true
	}
	if e.isLoad() {
		if e.obl != oblNone {
			if e.obl != oblResolved {
				return true
			}
		} else if e.state != stDone {
			return true
		}
	}
	if e.fpSDO && !e.effectApplied {
		return true
	}
	return false
}

// applyParked applies, oldest first, every parked squash whose predicate
// root has untainted.
func (c *Core) applyParked() {
	for {
		best := -1
		for i, p := range c.parked {
			if p.from >= c.tailSeq {
				continue // squashed away already; pruned below
			}
			if p.vpSelf {
				if c.frontier < p.from {
					continue // the load has not reached its VP yet
				}
			} else if c.tainted(p.root) {
				continue
			}
			if best == -1 || p.from < c.parked[best].from {
				best = i
			}
		}
		if best == -1 {
			break
		}
		p := c.parked[best]
		c.parked = append(c.parked[:best], c.parked[best+1:]...)
		c.squash(p.from, p.cause, p.refetch)
	}
	// Prune entries referring to already-squashed instructions.
	kept := c.parked[:0]
	for _, p := range c.parked {
		if p.from < c.tailSeq {
			kept = append(kept, p)
		}
	}
	c.parked = kept
}

// resolveBranches applies branch resolution effects, oldest first. Under
// STT/SDO a tainted predicate parks the resolution (and the predictor
// update) until it untaints — the resolution-based implicit channel rule.
func (c *Core) resolveBranches() {
	for seq := c.headSeq; seq < c.tailSeq; seq++ {
		e := c.entry(seq)
		if !e.in.Op.IsCondBranch() || !e.resolved || e.effectApplied {
			continue
		}
		if c.schemeTaint && !c.cfg.NoImplicitChannelProtection && c.tainted(e.destRoot) {
			if e.delayedSince == 0 {
				e.delayedSince = c.cycle
				c.stats.DelayedResolutions++
			}
			continue
		}
		e.effectApplied = true
		c.stats.BranchesResolved++
		if c.obs.On(obs.ClassBranch) {
			c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassBranch, Kind: "resolve-branch",
				Seq: e.seq, PC: e.pc,
				Detail: fmt.Sprintf("seq=%d pc=%d taken=%v mispredicted=%v target=%d",
					e.seq, e.pc, e.actualTaken, e.mispredicted, e.actualTarget)})
		}
		if e.mispredicted {
			c.stats.BranchMispredicts++
			c.squash(e.seq+1, sqBranch, e.actualTarget)
		}
		c.bp.Update(c.pcAddr(e.pc), e.actualTaken, e.mispredicted, e.bpSnap)
		if e.mispredicted {
			return // younger state is gone; nothing left to scan
		}
	}
}

// resolveFPSDO resolves SDO floating-point operations whose arguments have
// untainted: success trains nothing (the static predictor has no state);
// failure squashes starting at the operation, which then re-executes on
// the normal (data-dependent latency) path.
func (c *Core) resolveFPSDO() {
	for seq := c.headSeq; seq < c.tailSeq; seq++ {
		e := c.entry(seq)
		if !e.fpSDO || e.effectApplied || e.state == stWaiting {
			continue
		}
		if c.tainted(argsRoot(e)) {
			continue
		}
		e.effectApplied = true
		if e.fpFail {
			c.stats.FPSDOFail++
			if c.obs.On(obs.ClassFP) {
				c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassFP, Kind: "fp-sdo-fail",
					Seq: e.seq, PC: e.pc,
					Detail: fmt.Sprintf("seq=%d pc=%d %v subnormal operands", e.seq, e.pc, e.in)})
			}
			c.squash(e.seq, sqFPFail, e.pc)
			return
		}
	}
}

// argsRoot returns the taint root of an instruction's source operands
// (for fpSDO entries destRoot holds exactly that).
func argsRoot(e *robEntry) uint64 { return e.destRoot }

// squash discards every instruction with seq >= from, repairs the rename
// map and branch-history state, redirects fetch to refetch, and records
// statistics.
func (c *Core) squash(from uint64, cause squashCause, refetch int) {
	if from < c.headSeq {
		panic("pipeline: squash of committed instructions")
	}
	c.stats.Squashes[cause]++
	if c.obs.On(obs.ClassSquash) {
		c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassSquash, Kind: "squash",
			Seq: from, PC: refetch,
			Detail: fmt.Sprintf("from=%d cause=%s refetch-pc=%d tail-was=%d",
				from, squashCauseNames[cause], refetch, c.tailSeq)})
	}

	if from < c.tailSeq {
		c.stats.SquashedInstrs += c.tailSeq - from
		restored := false
		var snap = c.entry(from).bpSnap // placeholder; fixed in the loop below
		for seq := c.tailSeq; seq > from; {
			seq--
			e := c.entry(seq)
			if e.hasDest {
				c.renameMap[e.in.Rd] = e.prevProd
			}
			if e.in.Op.IsCondBranch() {
				snap = e.bpSnap
				restored = true
			}
		}
		if restored {
			c.bp.Restore(snap)
		}

		trim := func(q []uint64) []uint64 {
			for len(q) > 0 && q[len(q)-1] >= from {
				q = q[:len(q)-1]
			}
			return q
		}
		c.iq = trimUnordered(c.iq, from)
		c.lq = trim(c.lq)
		c.sq = trim(c.sq)

		kept := c.parked[:0]
		for _, p := range c.parked {
			if p.from < from {
				kept = append(kept, p)
			}
		}
		c.parked = kept

		c.tailSeq = from
	}

	if c.specActive {
		c.scheme.OnSquash(c, from)
	}

	// The frontend redirect happens even when no ROB entry is younger than
	// the squash point: wrong-path instructions may still sit in the fetch
	// buffer.
	c.fetchBuf = c.fetchBuf[:0]
	c.fetchPC = refetch
	c.fetchHalted = false
	c.fetchLine = ^uint64(0)
	if c.fetchStallUntil < c.cycle+1 {
		c.fetchStallUntil = c.cycle + 1 // one-cycle redirect bubble
	}
}

// trimUnordered removes seqs >= from from a queue that may not be sorted
// (the IQ is age-ordered on append but issue removes from the middle).
func trimUnordered(q []uint64, from uint64) []uint64 {
	kept := q[:0]
	for _, s := range q {
		if s < from {
			kept = append(kept, s)
		}
	}
	return kept
}

// commit retires completed instructions in order, applying stores and
// flushes to the architectural memory and the cache hierarchy.
func (c *Core) commit() {
	for n := 0; n < c.cfg.Width; n++ {
		if c.headSeq == c.tailSeq {
			return
		}
		e := c.entry(c.headSeq)
		if e.pendingSq {
			return // a parked squash will remove this instruction's path
		}
		switch {
		case e.in.Op == isa.OpHalt:
			c.halted = true
			c.stats.Committed++
			c.lastCommitCycle = c.cycle
			c.headSeq++
			return
		case e.in.Op.IsCondBranch():
			if !e.effectApplied {
				return
			}
		case e.isStore():
			if !e.addrValid || !e.sqDataReady {
				return
			}
			isa.StoreValue(c.data, e.in.Op, e.addr, e.sqData)
			c.port.Store(c.cycle, e.addr)
		case e.in.Op == isa.OpFlush:
			// Address sources are committed by now; read the regfile.
			c.port.Flush(c.regs[e.in.Rs] + uint64(e.in.Imm))
		case e.isLoad():
			if e.state != stDone {
				return
			}
			if e.obl != oblNone && e.obl != oblResolved {
				if e.valInFlight && !e.exposure {
					c.stats.ValidationStall++
				}
				return
			}
			if e.valInFlight && !e.exposure {
				// Validation must complete before retirement (§V-C1);
				// exposures retire immediately.
				c.stats.ValidationStall++
				return
			}
		case e.fpSDO && !e.effectApplied:
			return // resolution (and possible squash) still pending
		default:
			if e.state != stDone {
				return
			}
		}
		if e.hasDest {
			c.regs[e.in.Rd] = e.destVal
			if c.renameMap[e.in.Rd] == int64(e.seq) {
				c.renameMap[e.in.Rd] = -1
			}
		}
		if len(c.lq) > 0 && c.lq[0] == e.seq {
			c.lq = c.lq[1:]
		}
		if len(c.sq) > 0 && c.sq[0] == e.seq {
			c.sq = c.sq[1:]
		}
		if c.obs.On(obs.ClassCommit) {
			c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassCommit, Kind: "commit",
				Seq: e.seq, PC: e.pc,
				Detail: fmt.Sprintf("seq=%d pc=%d %v val=%#x", e.seq, e.pc, e.in, e.destVal)})
		}
		if c.specActive {
			c.scheme.OnCommit(c, e)
		}
		c.headSeq++
		c.stats.Committed++
		c.lastCommitCycle = c.cycle
	}
}
