package pipeline

import (
	"io"

	"repro/internal/obs"
)

// SetObserver attaches an event recorder to the core. Components emit
// typed events (rename, issue, squash, commit, branch resolution, the
// Obl-Ld state machine, SDO FP operations) to the recorder's sinks,
// filtered by its class mask. Pass nil to detach. With no recorder
// attached every emission site reduces to a nil check (obs.Recorder.On
// has a nil receiver fast path), so an untraced simulation pays nothing.
//
// The memory system has its own observer (mem.Hierarchy.SetObserver);
// core.Machine wires both to the same recorder.
func (c *Core) SetObserver(r *obs.Recorder) { c.obs = r }

// Observer returns the attached recorder (nil when tracing is off).
func (c *Core) Observer() *obs.Recorder { return c.obs }

// SetTracer directs a cycle-by-cycle event log (rename, load issue, branch
// resolution, squash, commit) to w. Pass nil to disable.
//
// Deprecated: SetTracer predates the typed event bus and remains for
// compatibility. It is equivalent to SetObserver with a text sink and all
// event classes enabled; the line format is unchanged:
//
//	[cycle] event <details>
//
// New code should build an obs.Recorder (choosing sinks and an event-class
// mask) and call SetObserver; cmd/sdosim exposes this as -trace-format and
// -trace-events.
func (c *Core) SetTracer(w io.Writer) {
	if w == nil {
		c.obs = nil
		return
	}
	c.obs = obs.NewRecorder(obs.ClassAll, obs.NewTextSink(w))
}
