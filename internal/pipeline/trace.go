package pipeline

import (
	"fmt"
	"io"
)

// SetTracer directs a cycle-by-cycle event log (rename, load issue, branch
// resolution, squash, commit) to w. Pass nil to disable. The format is one
// line per event:
//
//	[cycle] event seq=.. pc=.. <details>
//
// Tracing is for debugging and teaching; it does not affect simulation
// results.
func (c *Core) SetTracer(w io.Writer) { c.tracer = w }

func (c *Core) trace(event string, format string, args ...any) {
	if c.tracer == nil {
		return
	}
	fmt.Fprintf(c.tracer, "[%8d] %-14s %s\n", c.cycle, event, fmt.Sprintf(format, args...))
}
