// Package pipeline implements the cycle-level, execute-driven out-of-order
// core: an 8-wide speculative pipeline with a 192-entry ROB, 32/32 load and
// store queues, register renaming, a tournament branch predictor, wrong-path
// execution and squash recovery (Table I) — extended with STT's taint
// tracking and protection rules (§III) and with SDO's Obl-Ld and
// floating-point DO operations (§V, §VI-A).
//
// The core is execute-driven: transient (doomed-to-squash) instructions
// really execute and really touch the memory-system model, which is what
// makes the in-simulator Spectre penetration test meaningful.
package pipeline

import (
	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sdo"
)

// Protection selects the defense configuration (Table II rows).
type Protection uint8

const (
	// ProtNone is the unmodified insecure processor ("Unsafe").
	ProtNone Protection = iota
	// ProtSTT delays execution of tainted transmitters (STT{ld} /
	// STT{ld+fp} depending on Config.FPTransmitters).
	ProtSTT
	// ProtSDO executes tainted transmitters as SDO operations: loads as
	// Obl-Lds via the location predictor, FP transmitters (when enabled) at
	// the statically-predicted normal latency.
	ProtSDO
)

// String names the protection mode.
func (p Protection) String() string {
	switch p {
	case ProtNone:
		return "Unsafe"
	case ProtSTT:
		return "STT"
	case ProtSDO:
		return "STT+SDO"
	}
	return "Protection(?)"
}

// AttackModel selects the visibility point definition (§III).
type AttackModel uint8

const (
	// Spectre: an access instruction reaches its visibility point when all
	// older control-flow instructions have resolved.
	Spectre AttackModel = iota
	// Futuristic: when the access instruction can no longer be squashed by
	// any cause.
	Futuristic
)

// String names the attack model.
func (m AttackModel) String() string {
	if m == Futuristic {
		return "Futuristic"
	}
	return "Spectre"
}

// MemPort is the memory-system interface the core drives. *mem.Hierarchy
// (single core) and *coherence.Core (multi-core) both satisfy it.
type MemPort interface {
	Load(now uint64, addr uint64) mem.AccessResult
	Store(now uint64, addr uint64) mem.AccessResult
	OblLoad(now uint64, addr uint64, pred mem.Level) mem.OblResult
	Probe(addr uint64) mem.Level
	Flush(addr uint64)
	Translate(now uint64, addr uint64) (done uint64, hit bool)
	TLBProbe(addr uint64) bool
	FetchAccess(now uint64, addr uint64) mem.AccessResult
}

// Config parameterises one core.
type Config struct {
	Width   int // fetch/decode/issue/commit width
	ROBSize int
	IQSize  int
	LQSize  int
	SQSize  int

	IntALUs  int // integer units (also execute branches)
	FPUnits  int
	MemPorts int // AGU/cache ports shared by loads and stores

	Protection Protection
	// Scheme, when non-nil, selects the protection scheme directly; nil
	// derives it from the legacy Protection enum (schemeFor), so Configs
	// that predate the Scheme interface behave unchanged.
	Scheme Scheme
	Model  AttackModel
	// FPTransmitters treats fmul/fdiv/fsqrt as transmitters (STT{ld+fp}
	// and all SDO configurations, per §VIII-A).
	FPTransmitters bool
	// LocPred chooses cache levels for Obl-Lds (required when Protection
	// is ProtSDO).
	LocPred sdo.LocationPredictor

	BP bpred.Config

	// --- Ablations (design-space studies; defaults preserve the paper's
	// STT+SDO semantics) ---

	// DisableEarlyForward turns off the §V-C2 optimisation that forwards
	// a success response from the wait buffer once the load is safe.
	DisableEarlyForward bool
	// AlwaysValidate disables InvisiSpec exposures: every resolved,
	// non-store-forwarded Obl-Ld pays a full validation before retiring.
	AlwaysValidate bool
	// NoImplicitChannelProtection applies branch resolutions and
	// memory-order/consistency squashes immediately, even with tainted
	// predicates. INSECURE — exists only to measure the cost of STT's
	// implicit-channel rules (the paper reports 1-3%).
	NoImplicitChannelProtection bool
	// OblDRAMVariant architects the DO variant for DRAM that §VI-B2
	// rejects: Mem predictions issue an Obl-Ld with a constant worst-case
	// DRAM access instead of reverting to delay.
	OblDRAMVariant bool

	// CodeBase is the synthetic byte address of instruction 0 (instruction
	// addresses feed the branch predictor and the I-cache).
	CodeBase uint64

	// WatchdogCycles aborts the simulation if no instruction commits for
	// this many cycles (deadlock detector). 0 uses a default.
	WatchdogCycles uint64

	// Check, when non-nil, is polled every checkInterval cycles with the
	// current cycle and committed-instruction counts; a non-nil return
	// aborts the simulation with that error. Harness-level cancellation,
	// per-cell deadlines and the progress-based stall watchdog all hang
	// off this single hook, so an unconfigured core pays one nil compare
	// per cycle.
	Check func(cycle, committed uint64) error

	// MaxInstrs bounds committed instructions (0 = until halt).
	MaxInstrs uint64
	// MaxCycles bounds simulated cycles (0 = until halt).
	MaxCycles uint64
}

// DefaultConfig returns the Table I core: 8-wide, 192 ROB, 32/32 LQ/SQ.
func DefaultConfig() Config {
	return Config{
		Width:          8,
		ROBSize:        192,
		IQSize:         64,
		LQSize:         32,
		SQSize:         32,
		IntALUs:        6,
		FPUnits:        4,
		MemPorts:       4,
		Protection:     ProtNone,
		Model:          Spectre,
		CodeBase:       0x40_0000,
		WatchdogCycles: 200_000,
	}
}

// Latency of each opcode class in cycles. FP transmitters have two
// latencies: the fast (normal-operand) path and the slow (subnormal,
// microcoded) path — the operand-dependent timing that makes them
// transmitters (§I-A).
const (
	latALU       = 1
	latMul       = 3
	latDiv       = 20
	latFAdd      = 4
	latConv      = 2
	latFMulFast  = 4
	latFMulSlow  = 28
	latFDivFast  = 18
	latFDivSlow  = 52
	latFSqrtFast = 24
	latFSqrtSlow = 60
)

// opLatency returns the execution latency for in, given its operand values
// (FP transmitters are operand-dependent unless forceFast, which is the SDO
// fast-path execution).
func opLatency(in isa.Instr, rs, rt, result uint64, forceFast bool) uint64 {
	slow := !forceFast && isa.FPSlowPath(in.Op, rs, rt, result)
	switch in.Op {
	case isa.OpMul:
		return latMul
	case isa.OpDiv:
		return latDiv
	case isa.OpFAdd, isa.OpFSub:
		return latFAdd
	case isa.OpItoF, isa.OpFtoI:
		return latConv
	case isa.OpFMul:
		if slow {
			return latFMulSlow
		}
		return latFMulFast
	case isa.OpFDiv:
		if slow {
			return latFDivSlow
		}
		return latFDivFast
	case isa.OpFSqrt:
		if slow {
			return latFSqrtSlow
		}
		return latFSqrtFast
	default:
		return latALU
	}
}
