package pipeline

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
)

// runUnsafe executes prog on a default insecure core and returns it.
func runUnsafe(t *testing.T, prog *isa.Program, init func(*isa.Memory)) *Core {
	t.Helper()
	data := isa.NewMemory()
	if init != nil {
		init(data)
	}
	core := New(DefaultConfig(), prog, data, mem.NewHierarchy(mem.DefaultConfig()))
	if _, err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if !core.Halted() {
		t.Fatal("did not halt")
	}
	return core
}

func TestStoreForwardContainmentByteFrom64(t *testing.T) {
	// A byte load contained in an older in-flight 64-bit store must forward
	// the right byte.
	prog := isa.NewBuilder().
		MovI(isa.R1, 0x4000).
		MovI(isa.R2, 0x1122334455667788).
		Store(isa.R2, isa.R1, 0).
		LoadB(isa.R3, isa.R1, 2). // byte 2 = 0x66
		LoadB(isa.R4, isa.R1, 7). // byte 7 = 0x11
		Load(isa.R5, isa.R1, 0).  // full word
		Halt().
		MustBuild()
	core := runUnsafe(t, prog, nil)
	r := core.Regs()
	if r[isa.R3] != 0x66 || r[isa.R4] != 0x11 || r[isa.R5] != 0x1122334455667788 {
		t.Fatalf("forwarded r3=%#x r4=%#x r5=%#x", r[isa.R3], r[isa.R4], r[isa.R5])
	}
}

func TestStoreForwardPartialOverlapStalls(t *testing.T) {
	// A 64-bit load overlapping (but not contained in) an older byte store
	// cannot forward; it must wait and still read the merged bytes.
	prog := isa.NewBuilder().
		MovI(isa.R1, 0x5000).
		MovI(isa.R2, 0xAB).
		StoreB(isa.R2, isa.R1, 3).
		Load(isa.R3, isa.R1, 0). // needs memory+store merge
		Halt().
		MustBuild()
	init := func(m *isa.Memory) { m.Write64(0x5000, 0x1111111111111111) }
	core := runUnsafe(t, prog, init)
	want := uint64(0x11111111AB111111)
	if got := core.Regs()[isa.R3]; got != want {
		t.Fatalf("merged load = %#x, want %#x", got, want)
	}
}

func TestLoadForwardsFromYoungestMatchingStore(t *testing.T) {
	prog := isa.NewBuilder().
		MovI(isa.R1, 0x6000).
		MovI(isa.R2, 111).
		MovI(isa.R3, 222).
		Store(isa.R2, isa.R1, 0).
		Store(isa.R3, isa.R1, 0).
		Load(isa.R4, isa.R1, 0). // must see 222 (the youngest older store)
		Halt().
		MustBuild()
	core := runUnsafe(t, prog, nil)
	if got := core.Regs()[isa.R4]; got != 222 {
		t.Fatalf("load = %d, want 222", got)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	// Tiny queues force dispatch stalls; the program must still complete
	// correctly (backpressure, not deadlock or loss).
	b := isa.NewBuilder().
		MovI(isa.R1, 0x7000).
		MovI(isa.R2, 0).
		MovI(isa.R3, 64)
	b.Label("loop")
	b.Store(isa.R2, isa.R1, 0)
	b.Load(isa.R4, isa.R1, 0)
	b.Add(isa.R5, isa.R5, isa.R4)
	b.AddI(isa.R1, isa.R1, 8)
	b.AddI(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, "loop")
	b.Halt()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.LQSize, cfg.SQSize, cfg.IQSize, cfg.ROBSize = 2, 2, 4, 16
	data := isa.NewMemory()
	core := New(cfg, prog, data, mem.NewHierarchy(mem.DefaultConfig()))
	if _, err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if !core.Halted() {
		t.Fatal("did not halt under tiny queues")
	}
	// sum of 0..63 = 2016
	if got := core.Regs()[isa.R5]; got != 2016 {
		t.Fatalf("sum = %d, want 2016", got)
	}
}

func TestFlushOrdersWithStores(t *testing.T) {
	// A flush between a store and a reload must not corrupt data (flush is
	// architecturally inert) and must actually evict the line.
	prog := isa.NewBuilder().
		MovI(isa.R1, 0x8000).
		MovI(isa.R2, 42).
		Store(isa.R2, isa.R1, 0).
		Flush(isa.R1, 0).
		Load(isa.R3, isa.R1, 0).
		Halt().
		MustBuild()
	data := isa.NewMemory()
	h := mem.NewHierarchy(mem.DefaultConfig())
	core := New(DefaultConfig(), prog, data, h)
	if _, err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if got := core.Regs()[isa.R3]; got != 42 {
		t.Fatalf("reload after flush = %d, want 42", got)
	}
	if data.Read64(0x8000) != 42 {
		t.Fatal("store lost")
	}
}

func TestDeepBranchNest(t *testing.T) {
	// Nested data-dependent branches with a tight ROB: stresses squash
	// recovery of the rename map through multiple in-flight branches.
	b := isa.NewBuilder().
		MovI(isa.R1, 0x9000).
		MovI(isa.R2, 0).
		MovI(isa.R3, 128).
		MovI(isa.R8, 1).
		MovI(isa.R9, 2)
	b.Label("loop")
	b.Shl(isa.R4, isa.R2, isa.R8)
	b.Shl(isa.R4, isa.R4, isa.R9) // i*8
	b.Add(isa.R4, isa.R4, isa.R1)
	b.Load(isa.R5, isa.R4, 0)
	b.And(isa.R6, isa.R5, isa.R8)
	b.Beq(isa.R6, isa.R8, "odd")
	b.And(isa.R6, isa.R5, isa.R9)
	b.Beq(isa.R6, isa.R9, "two")
	b.AddI(isa.R7, isa.R7, 1)
	b.Jmp("next")
	b.Label("two")
	b.AddI(isa.R7, isa.R7, 2)
	b.Jmp("next")
	b.Label("odd")
	b.And(isa.R6, isa.R5, isa.R9)
	b.Beq(isa.R6, isa.R9, "three")
	b.AddI(isa.R7, isa.R7, 5)
	b.Jmp("next")
	b.Label("three")
	b.AddI(isa.R7, isa.R7, 7)
	b.Label("next")
	b.AddI(isa.R2, isa.R2, 1)
	b.Blt(isa.R2, isa.R3, "loop")
	b.Halt()
	prog := b.MustBuild()
	init := func(m *isa.Memory) {
		x := uint64(77)
		for i := 0; i < 128; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			m.Write64(uint64(0x9000+i*8), x>>33)
		}
	}
	// Golden.
	gm := isa.NewMemory()
	init(gm)
	g, err := arch.Exec(prog, gm, nil, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ROBSize = 16
	cfg.IQSize = 8
	data := isa.NewMemory()
	init(data)
	core := New(cfg, prog, data, mem.NewHierarchy(mem.DefaultConfig()))
	if _, err := core.Run(); err != nil {
		t.Fatal(err)
	}
	if got := core.Regs()[isa.R7]; got != g.Regs[isa.R7] {
		t.Fatalf("nested-branch sum = %d, golden %d", got, g.Regs[isa.R7])
	}
}
