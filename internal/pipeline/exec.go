package pipeline

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/obs"
)

// issue selects ready instructions from the issue queue in age order,
// subject to functional-unit availability and the active protection
// policy's transmitter rules, and begins their execution.
func (c *Core) issue() {
	issued := 0
	kept := c.iq[:0]
	for _, seq := range c.iq {
		e := c.entry(seq)
		if issued >= c.cfg.Width {
			kept = append(kept, seq)
			continue
		}
		ok := false
		switch {
		case e.in.Op.IsCondBranch():
			ok = c.issueBranch(e)
		case e.isLoad():
			ok = c.issueLoad(e)
		case e.isStore():
			ok = c.issueStore(e)
		case e.in.Op.IsFP():
			ok = c.issueFP(e)
		default:
			ok = c.issueALU(e)
		}
		if ok {
			issued++
		} else {
			kept = append(kept, seq)
		}
	}
	c.iq = kept
}

func (c *Core) issueALU(e *robEntry) bool {
	// OpRdCyc is fully serialising (lfence;rdtsc;lfence): it issues only
	// once it is the oldest instruction, so timing reads order with every
	// older access — which is what makes the in-simulator covert-channel
	// measurements meaningful.
	if e.in.Op == isa.OpRdCyc && e.seq != c.headSeq {
		return false
	}
	ready, vals, root := c.srcsReady(e)
	if !ready || c.intPortsBusy >= c.cfg.IntALUs {
		return false
	}
	c.intPortsBusy++
	e.destVal = isa.EvalALU(e.in, vals[0], vals[1], c.cycle)
	e.destRoot = root
	e.doneAt = c.cycle + opLatency(e.in, vals[0], vals[1], e.destVal, false)
	e.state = stExecuting
	return true
}

func (c *Core) issueFP(e *robEntry) bool {
	ready, vals, root := c.srcsReady(e)
	if !ready {
		return false
	}
	isTx := e.in.Op.IsFPTransmitter() && c.cfg.FPTransmitters
	if isTx && c.tainted(root) {
		// The scheme's transmitter rule (STT delay, SDO fast-path DO
		// execution); handled=false falls through to the normal path.
		if issued, handled := c.scheme.IssueTaintedFP(c, e, vals, root); handled {
			return issued
		}
	}
	if c.fpPortsBusy >= c.cfg.FPUnits {
		return false
	}
	c.fpPortsBusy++
	e.destVal = isa.EvalALU(e.in, vals[0], vals[1], c.cycle)
	e.destRoot = root
	if isa.FPSlowPath(e.in.Op, vals[0], vals[1], e.destVal) {
		// An operand-dependent slow-path execution: the timing channel the
		// FP transmitter protections exist to close.
		c.stats.FPSlowPathExecs++
	}
	e.doneAt = c.cycle + opLatency(e.in, vals[0], vals[1], e.destVal, false)
	e.state = stExecuting
	return true
}

func (c *Core) issueBranch(e *robEntry) bool {
	ready, vals, root := c.srcsReady(e)
	if !ready || c.intPortsBusy >= c.cfg.IntALUs {
		return false
	}
	c.intPortsBusy++
	e.actualTaken = isa.BranchTaken(e.in.Op, vals[0], vals[1])
	if e.actualTaken {
		e.actualTarget = e.in.Target
	} else {
		e.actualTarget = e.pc + 1
	}
	e.mispredicted = e.actualTaken != e.predTaken
	e.destRoot = root // predicate root: gates the resolution effects
	e.doneAt = c.cycle + latALU
	e.state = stExecuting
	return true
}

func (c *Core) issueStore(e *robEntry) bool {
	// AGU: the address source must be ready; data may bind later.
	v, ok, root := c.operandInfo(e.src[0])
	if !ok || c.memPortsBusy >= c.cfg.MemPorts {
		return false
	}
	c.memPortsBusy++
	e.addr = v + uint64(e.in.Imm)
	e.addrValid = true
	e.addrRoot = root
	if dv, dok, _ := c.operandInfo(e.src[1]); dok {
		e.sqData = dv
		e.sqDataReady = true
		e.state = stDone
	} else {
		e.state = stExecuting
		e.doneAt = ^uint64(0) // completed by data bind, not by time
	}
	c.stats.Stores++
	if c.obs.On(obs.ClassIssue) {
		c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassIssue, Kind: "issue-store",
			Seq: e.seq, PC: e.pc, Addr: e.addr,
			Detail: fmt.Sprintf("seq=%d pc=%d addr=%#x data-ready=%v", e.seq, e.pc, e.addr, e.sqDataReady)})
	}
	c.checkStoreViolation(e)
	return true
}

// completeExecution retires finished executions into the "done" state and
// binds late store data.
func (c *Core) completeExecution() {
	for seq := c.headSeq; seq < c.tailSeq; seq++ {
		e := c.entry(seq)
		if e.state == stExecuting && e.obl == oblNone && !e.isStore() && c.cycle >= e.doneAt {
			e.state = stDone
			if e.in.Op.IsCondBranch() {
				e.resolved = true
			}
		}
		if e.isStore() && e.addrValid && !e.sqDataReady {
			if dv, ok, _ := c.operandInfo(e.src[1]); ok {
				e.sqData = dv
				e.sqDataReady = true
				e.state = stDone
			}
		}
	}
}
