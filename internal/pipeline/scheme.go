package pipeline

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Scheme is a pluggable speculative-execution protection policy. The
// core consults it at exactly the points the paper's defenses diverge:
//
//   - IssueLoad: what a load does when it leaves the issue queue
//     (normal fill, STT delay, SDO Obl-Ld, shadow fill, ...).
//   - IssueTaintedFP: what a tainted FP transmitter does (delay, SDO
//     fast-path, or nothing special).
//   - TracksTaint: whether STT's taint rules apply — the store-queue
//     tainted-address rule and the implicit-channel parking of branch
//     resolutions and memory-order/consistency squashes.
//   - SpecMode: whether the memory system must interpose shadow
//     structures (mem/spec.go); non-SpecOff schemes require the port to
//     implement SpecMemPort.
//   - OnCommit / OnSquash: retirement and recovery hooks (promote or
//     discard shadow fills). Called only when SpecMode is active, so
//     legacy schemes pay a single bool test.
//
// Schemes are stateless singletons: per-run state lives in the Core and
// the memory system, so one Scheme value is safely shared by concurrent
// simulations.
type Scheme interface {
	// Name is the scheme's display name (matches the core registry).
	Name() string
	// TracksTaint reports whether STT taint tracking gates the
	// store-queue search and the implicit-channel squash/resolution
	// machinery.
	TracksTaint() bool
	// SpecMode selects the memory system's speculative-visibility mode.
	SpecMode() mem.SpecMode
	// IssueLoad issues a load whose address just resolved (e.addr,
	// e.addrValid, e.addrRoot are set). It returns true when the load
	// left the issue queue this cycle.
	IssueLoad(c *Core, e *robEntry) bool
	// IssueTaintedFP handles an FP transmitter with tainted operands.
	// handled=false means the scheme has no special rule and the normal
	// (operand-dependent latency) path runs; otherwise issued reports
	// whether the instruction issued this cycle.
	IssueTaintedFP(c *Core, e *robEntry, vals [2]uint64, root uint64) (issued, handled bool)
	// OnCommit runs as an instruction retires (before head advances).
	OnCommit(c *Core, e *robEntry)
	// OnSquash runs after a squash discarded every seq >= from.
	OnSquash(c *Core, from uint64)
}

// SpecMemPort is the optional port extension schemes with an active
// SpecMode need: *mem.Hierarchy and *coherence.Core both implement it.
type SpecMemPort interface {
	SetSpecMode(m mem.SpecMode)
	SpecTranslate(now uint64, addr uint64, seq uint64) (done uint64, hit bool)
	SpecLoad(now uint64, addr uint64, seq uint64) mem.AccessResult
	CommitSpec(addr uint64, seq uint64)
	SquashSpec(from uint64)
}

// The built-in schemes. SchemeUnsafe/SchemeSTT/SchemeSDO reproduce the
// three legacy Protection modes bit-for-bit; SchemeSafeSpec and
// SchemeSpecBox are the shadow-structure defenses layered on
// mem/spec.go.
var (
	SchemeUnsafe   Scheme = schemeUnsafe{}
	SchemeSTT      Scheme = schemeSTT{}
	SchemeSDO      Scheme = schemeSDO{}
	SchemeSafeSpec Scheme = schemeShadow{name: "SafeSpec", mode: mem.SpecShadow}
	SchemeSpecBox  Scheme = schemeShadow{name: "SpecBox", mode: mem.SpecLabel}
)

// schemeFor derives the Scheme from the legacy Protection enum, keeping
// Configs that predate the Scheme field working unchanged.
func schemeFor(p Protection) Scheme {
	switch p {
	case ProtSTT:
		return SchemeSTT
	case ProtSDO:
		return SchemeSDO
	}
	return SchemeUnsafe
}

// --- Unsafe: the unmodified insecure processor ---

type schemeUnsafe struct{}

func (schemeUnsafe) Name() string           { return "Unsafe" }
func (schemeUnsafe) TracksTaint() bool      { return false }
func (schemeUnsafe) SpecMode() mem.SpecMode { return mem.SpecOff }

func (schemeUnsafe) IssueLoad(c *Core, e *robEntry) bool { return c.issueNormalLoad(e) }

func (schemeUnsafe) IssueTaintedFP(*Core, *robEntry, [2]uint64, uint64) (bool, bool) {
	return false, false
}
func (schemeUnsafe) OnCommit(*Core, *robEntry) {}
func (schemeUnsafe) OnSquash(*Core, uint64)    {}

// --- STT: delay tainted transmitters until their operands untaint ---

type schemeSTT struct{}

func (schemeSTT) Name() string           { return "STT" }
func (schemeSTT) TracksTaint() bool      { return true }
func (schemeSTT) SpecMode() mem.SpecMode { return mem.SpecOff }

func (schemeSTT) IssueLoad(c *Core, e *robEntry) bool {
	if c.tainted(e.addrRoot) {
		if e.delayedSince == 0 {
			e.delayedSince = c.cycle
			c.stats.DelayedLoads++
		}
		c.stats.LoadDelayCycles++
		return false
	}
	return c.issueNormalLoad(e)
}

func (schemeSTT) IssueTaintedFP(c *Core, e *robEntry, _ [2]uint64, _ uint64) (bool, bool) {
	// STT{ld+fp}: delay the transmitter until its operands untaint.
	if e.delayedSince == 0 {
		e.delayedSince = c.cycle
		c.stats.DelayedFPs++
	}
	c.stats.FPDelayCycles++
	return false, true
}

func (schemeSTT) OnCommit(*Core, *robEntry) {}
func (schemeSTT) OnSquash(*Core, uint64)    {}

// --- STT+SDO: execute tainted transmitters as DO operations ---

type schemeSDO struct{}

func (schemeSDO) Name() string           { return "STT+SDO" }
func (schemeSDO) TracksTaint() bool      { return true }
func (schemeSDO) SpecMode() mem.SpecMode { return mem.SpecOff }

func (schemeSDO) IssueLoad(c *Core, e *robEntry) bool {
	if !c.tainted(e.addrRoot) {
		return c.issueNormalLoad(e)
	}
	// SDO: predict a level and issue an Obl-Ld.
	pred := c.cfg.LocPred.Predict(c.pcAddr(e.pc), e.addr)
	if pred == mem.LevelNone {
		pred = mem.LevelMem
	}
	if pred == mem.LevelMem && c.cfg.OblDRAMVariant {
		// Ablation: the architected DO DRAM variant (§VI-B2).
		return c.issueOblLoad(e, mem.LevelMem)
	}
	if pred == mem.LevelMem {
		// §VI-B2: predicted-DRAM loads revert to STT delay.
		if e.delayedSince == 0 {
			e.delayedSince = c.cycle
			e.oblMemDelayed = true
			c.stats.OblPredMem++
		}
		c.stats.LoadDelayCycles++
		return false
	}
	return c.issueOblLoad(e, pred)
}

func (schemeSDO) IssueTaintedFP(c *Core, e *robEntry, vals [2]uint64, root uint64) (bool, bool) {
	if c.fpPortsBusy >= c.cfg.FPUnits {
		return false, true
	}
	c.fpPortsBusy++
	// §I-A: statically predict "normal" and execute the fast DO
	// variant. The operation fails if the operands/result are
	// actually subnormal; resolution happens once args untaint.
	e.destVal = isa.EvalALU(e.in, vals[0], vals[1], c.cycle)
	e.destRoot = root
	e.fpSDO = true
	e.fpArgs = [2]uint64{vals[0], vals[1]}
	e.fpFail = isa.FPSlowPath(e.in.Op, vals[0], vals[1], e.destVal)
	e.doneAt = c.cycle + opLatency(e.in, vals[0], vals[1], e.destVal, true)
	e.state = stExecuting
	c.stats.FPSDOIssued++
	if c.obs.On(obs.ClassFP) {
		c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassFP, Kind: "fp-sdo-issue",
			Seq: e.seq, PC: e.pc, Dur: e.doneAt - c.cycle,
			Detail: fmt.Sprintf("seq=%d pc=%d %v will-fail=%v", e.seq, e.pc, e.in, e.fpFail)})
	}
	return true, true
}

func (schemeSDO) OnCommit(*Core, *robEntry) {}
func (schemeSDO) OnSquash(*Core, uint64)    {}

// --- SafeSpec / SpecBox: shadow-structure defenses ---

// schemeShadow covers both shadow-structure schemes; they differ only in
// the SpecMode the memory system runs under (bounded shadow cache + TLB
// for SafeSpec, unbounded labelled lines with a normal TLB for SpecBox).
// Neither tracks taint: every load executes immediately, but its fill is
// invisible to probes and to other cores until the load retires.
type schemeShadow struct {
	name string
	mode mem.SpecMode
}

func (s schemeShadow) Name() string           { return s.name }
func (schemeShadow) TracksTaint() bool        { return false }
func (s schemeShadow) SpecMode() mem.SpecMode { return s.mode }

func (schemeShadow) IssueLoad(c *Core, e *robEntry) bool { return c.issueSpecLoad(e) }

func (schemeShadow) IssueTaintedFP(*Core, *robEntry, [2]uint64, uint64) (bool, bool) {
	return false, false
}

func (schemeShadow) OnCommit(c *Core, e *robEntry) {
	if e.specFill {
		c.specPort.CommitSpec(e.addr, e.seq)
	}
}

func (schemeShadow) OnSquash(c *Core, from uint64) { c.specPort.SquashSpec(from) }
