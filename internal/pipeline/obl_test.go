package pipeline

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sdo"
)

// oblScenario builds a program with one controllable taint window and one
// tainted load, so the Obl-Ld event orderings (§V-C2) can be forced:
//
//	windowHops  controls when the load becomes safe (event C): the guard
//	            branch's predicate sits behind a pointer chase of that many
//	            cold DRAM hops.
//	pred        controls when the Obl-Ld completes (event B): deeper
//	            predictions take longer.
//
// The tainted load's data is pre-cached in the L1, so the lookup always
// succeeds and the only variables are the B/C/D orderings.
func oblScenario(t *testing.T, windowHops int, pred mem.Level, model AttackModel) (*Core, Stats) {
	t.Helper()
	const (
		chainBase = 0x1_0000
		hotBase   = 0x2_0000
		srcBase   = 0x3_0000
	)
	b := isa.NewBuilder()
	b.MovI(isa.R10, chainBase)
	b.MovI(isa.R11, hotBase)
	b.MovI(isa.R12, srcBase)
	b.MovI(isa.R13, 64) // guard comparand

	// Warm the data the tainted load will touch.
	b.Load(isa.R1, isa.R12, 0) // source value (warms src line)
	b.Load(isa.R2, isa.R11, 0) // warms the hot line

	// Open the window: a guard whose predicate resolves after
	// `windowHops` cold chase loads. windowHops == 0 instead hangs the
	// guard off a 20-cycle divide of the warm source value — long enough
	// that the transmitter issues inside the window, short enough that the
	// window closes before a deep lookup completes. The guard is NOT
	// taken, so the gadget below is on the architectural path.
	if windowHops == 0 {
		b.MovI(isa.R7, 3)
		b.Load(isa.R3, isa.R12, 0)
		b.Div(isa.R3, isa.R3, isa.R7) // 2/3 = 0, after ~20 cycles
	} else {
		b.Add(isa.R3, isa.R10, isa.R0)
		for i := 0; i < windowHops; i++ {
			b.Load(isa.R3, isa.R3, 0)
		}
	}
	b.Blt(isa.R13, isa.R3, "out") // 64 < small value: never taken

	// In the window: an access instruction + the tainted transmitter.
	b.Load(isa.R4, isa.R12, 0) // access (L1 hit: warmed)
	b.And(isa.R4, isa.R4, isa.R13)
	b.Add(isa.R4, isa.R4, isa.R11)
	b.Load(isa.R5, isa.R4, 0) // tainted address; data warmed in L1
	b.Add(isa.R6, isa.R5, isa.R5)

	b.Label("out")
	b.Halt()
	prog := b.MustBuild()

	init := func(m *isa.Memory) {
		// A chase of exactly windowHops loads ending in the value 1 (so
		// the guard is not taken). Hops sit on distinct pages/rows.
		next := uint64(chainBase)
		for i := 0; i < windowHops-1; i++ {
			to := uint64(chainBase) + uint64(i+1)*0x4000
			m.Write64(next, to)
			next = to
		}
		if windowHops > 0 {
			m.Write64(next, 1)
		}
		m.Write64(srcBase, 2)
		m.Write64(hotBase, 0xabcd)
	}

	data := isa.NewMemory()
	init(data)
	h := mem.NewHierarchy(mem.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Protection = ProtSDO
	cfg.Model = model
	cfg.LocPred = sdo.Static{Level: pred}
	core := New(cfg, prog, data, h)
	st, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !core.Halted() {
		t.Fatal("did not halt")
	}
	return core, st
}

func TestOblCase1_BBeforeC(t *testing.T) {
	// Long window (3 cold hops ≈ 300+ cycles), shallow prediction: the
	// Obl-Ld completes long before the load becomes safe. Success path:
	// forward tainted, then validate/expose at safety.
	_, st := oblScenario(t, 3, mem.L1, Spectre)
	if st.OblIssued == 0 {
		t.Fatal("no Obl-Ld issued")
	}
	if st.OblSuccess == 0 {
		t.Fatalf("expected success (data warmed): %+v", st)
	}
	if st.OblFail != 0 {
		t.Fatalf("unexpected fails: %+v", st)
	}
	// L1 hit => exposure, not validation (§VI-A).
	if st.Exposures == 0 {
		t.Errorf("L1-hit Obl-Ld should expose: %+v", st)
	}
}

func TestOblCase2_CBeforeB(t *testing.T) {
	// Tiny window (guard on a register compare resolves almost instantly
	// relative to an L3-deep lookup): the load becomes safe before the
	// wait buffer fills, so a validation is issued at C (§V-C2 case 2/3).
	_, st := oblScenario(t, 0, mem.L3, Spectre)
	if st.OblIssued == 0 {
		t.Fatal("no Obl-Ld issued")
	}
	if st.Validations == 0 {
		t.Errorf("C-before-B should issue a validation: %+v", st)
	}
	if st.TotalSquashes() > 1 { // the guard branch may mispredict once
		t.Errorf("success path must not squash: %v", st.SquashesByCause())
	}
}

func TestOblEarlyForwardCounted(t *testing.T) {
	// C before B with the hit coming from the L1 while the prediction
	// points at the L3: once safe, the L1 response is forwarded without
	// waiting for the L3 response (§V-C2 optimisation).
	_, st := oblScenario(t, 0, mem.L3, Spectre)
	if st.OblEarlyForward == 0 {
		t.Errorf("early forward should trigger: %+v", st)
	}
}

func TestOblFailSquashesOnlyWhenSafe(t *testing.T) {
	// Prediction L1 but data evicted to L2: lookup fails; the squash must
	// not occur before the window closes, and exactly one obl-fail squash
	// happens in total.
	const (
		chainBase = 0x1_0000
		victim    = 0x5_0000
	)
	const srcLine = 0x6_0000
	b := isa.NewBuilder()
	b.MovI(isa.R10, chainBase)
	b.MovI(isa.R11, victim)
	b.MovI(isa.R12, srcLine)
	b.MovI(isa.R13, 64)
	// Put the victim line in L2 only: load it, then evict it from the
	// (8-way, 4KB-stride sets) L1 by touching nine conflicting lines. The
	// access load below uses a *different* line so it does not re-fetch
	// the victim.
	b.Load(isa.R1, isa.R11, 0)
	for i := 1; i <= 9; i++ {
		b.Load(isa.R2, isa.R11, int64(i*32768)) // same L1 set, different lines
	}
	b.Load(isa.R1, isa.R12, 0) // warm the access line
	b.RdCyc(isa.R9)
	// Window: two cold hops.
	b.Add(isa.R3, isa.R10, isa.R9)
	b.Sub(isa.R3, isa.R3, isa.R9)
	b.Load(isa.R3, isa.R3, 0)
	b.Load(isa.R3, isa.R3, 0)
	b.Blt(isa.R13, isa.R3, "out") // 64 < 1: never taken — gadget is architectural
	// Access load (separate line) feeding a tainted load to the evicted
	// victim line: Static L1 prediction fails.
	b.Load(isa.R4, isa.R12, 0) // access: value 0
	b.Add(isa.R4, isa.R4, isa.R11)
	b.Load(isa.R5, isa.R4, 0) // tainted address = victim: L2-resident
	b.Label("out")
	b.Halt()
	prog := b.MustBuild()
	init := func(m *isa.Memory) {
		m.Write64(chainBase, chainBase+0x4000)
		m.Write64(chainBase+0x4000, 1)
		m.Write64(victim, 0)
		m.Write64(srcLine, 0)
	}
	data := isa.NewMemory()
	init(data)
	h := mem.NewHierarchy(mem.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Protection = ProtSDO
	cfg.Model = Spectre
	cfg.LocPred = sdo.Static{Level: mem.L1}
	core := New(cfg, prog, data, h)
	st, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The victim load is tainted only while the guard is unresolved; its
	// Obl-Ld (L1-predicted) fails because the line is L2-resident.
	if st.OblFail == 0 {
		t.Fatalf("L1-predicted lookup of an L2-resident line must fail: %+v", st)
	}
	if st.Squashes[sqOblFail] == 0 {
		t.Errorf("fail should squash once safe: %v", st.SquashesByCause())
	}
	// After the squash the load re-executes normally and the program
	// completes with the correct value.
	if !core.Halted() {
		t.Fatal("did not halt after fail-squash-reissue")
	}
}

func TestInvariantsHoldDuringRun(t *testing.T) {
	// Step a protected core cycle-by-cycle over a gadget-heavy program and
	// check structural invariants every cycle.
	prog, init := taintedLoadGadget()
	for _, mdl := range []AttackModel{Spectre, Futuristic} {
		data := isa.NewMemory()
		init(data)
		h := mem.NewHierarchy(mem.DefaultConfig())
		cfg := DefaultConfig()
		cfg.Protection = ProtSDO
		cfg.Model = mdl
		cfg.LocPred = sdo.NewHybrid(512)
		core := New(cfg, prog, data, h)
		for !core.Halted() && core.Cycle() < 300_000 {
			if err := core.Step(); err != nil {
				t.Fatal(err)
			}
			if err := core.CheckInvariants(); err != nil {
				t.Fatalf("%v cycle %d: %v", mdl, core.Cycle(), err)
			}
		}
		if !core.Halted() {
			t.Fatalf("%v: did not halt", mdl)
		}
	}
}

func TestWatchdogFiresOnStuckCore(t *testing.T) {
	// A pathological configuration: zero-size IQ budget means nothing can
	// dispatch past the first instructions and the watchdog must trip
	// rather than hang.
	prog := isa.NewBuilder().
		MovI(isa.R1, 5).
		Add(isa.R2, isa.R1, isa.R1).
		Halt().
		MustBuild()
	cfg := DefaultConfig()
	cfg.IQSize = 0 // the ALU op can never dispatch
	cfg.WatchdogCycles = 500
	core := New(cfg, prog, isa.NewMemory(), mem.NewHierarchy(mem.DefaultConfig()))
	if _, err := core.Run(); err == nil {
		t.Fatal("watchdog should have fired")
	}
}

func TestMemPredictedLoadsRevertToDelay(t *testing.T) {
	// A predictor that always answers "DRAM" must produce zero Obl-Lds:
	// pure STT behaviour, no squashes from SDO.
	prog, init := taintedLoadGadget()
	data := isa.NewMemory()
	init(data)
	h := mem.NewHierarchy(mem.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Protection = ProtSDO
	cfg.Model = Futuristic
	cfg.LocPred = sdo.Static{Level: mem.LevelMem}
	core := New(cfg, prog, data, h)
	st, err := core.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.OblIssued != 0 {
		t.Fatalf("Mem-predicted loads must not issue Obl-Lds: %d", st.OblIssued)
	}
	if st.OblPredMem == 0 {
		t.Fatal("expected predicted-DRAM delays")
	}
	if st.Squashes[sqOblFail] != 0 {
		t.Fatal("delaying cannot cause obl-fail squashes")
	}
}

func TestSerializingRdCyc(t *testing.T) {
	// Two rdcyc reads bracketing a cold load must measure at least the
	// DRAM latency; bracketing nothing must measure almost nothing.
	prog := isa.NewBuilder().
		MovI(isa.R1, 0x9_0000).
		RdCyc(isa.R2).
		And(isa.R5, isa.R2, isa.R0). // dependence so the load can't hoist
		Add(isa.R6, isa.R1, isa.R5).
		Load(isa.R3, isa.R6, 0). // cold: DRAM
		RdCyc(isa.R4).
		RdCyc(isa.R7).
		RdCyc(isa.R8).
		Halt().
		MustBuild()
	core := New(DefaultConfig(), prog, isa.NewMemory(), mem.NewHierarchy(mem.DefaultConfig()))
	if _, err := core.Run(); err != nil {
		t.Fatal(err)
	}
	r := core.Regs()
	loadLat := r[isa.R4] - r[isa.R2]
	empty := r[isa.R8] - r[isa.R7]
	if loadLat < 100 {
		t.Errorf("bracketed cold load measured %d cycles, want >= 100", loadLat)
	}
	if empty > 20 {
		t.Errorf("empty bracket measured %d cycles, want small", empty)
	}
}

func TestAblationKnobs(t *testing.T) {
	// Each knob must change behaviour in the expected direction without
	// changing architectural results.
	prog, init := taintedLoadGadget()
	goldenMem := isa.NewMemory()
	init(goldenMem)
	golden, err := arch.Exec(prog, goldenMem, nil, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mut func(*Config)) (Stats, [isa.NumRegs]uint64) {
		data := isa.NewMemory()
		init(data)
		h := mem.NewHierarchy(mem.DefaultConfig())
		cfg := DefaultConfig()
		cfg.Protection = ProtSDO
		cfg.Model = Futuristic
		cfg.LocPred = sdo.NewHybrid(512)
		if mut != nil {
			mut(&cfg)
		}
		core := New(cfg, prog, data, h)
		st, err := core.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st, core.Regs()
	}
	check := func(name string, regs [isa.NumRegs]uint64) {
		t.Helper()
		for r := 0; r < isa.NumRegs; r++ {
			if regs[r] != golden.Regs[r] {
				t.Fatalf("%s: r%d = %d, golden %d", name, r, regs[r], golden.Regs[r])
			}
		}
	}

	base, regs := run(nil)
	check("base", regs)

	noEF, regs := run(func(c *Config) { c.DisableEarlyForward = true })
	check("no-early-forward", regs)
	if base.OblEarlyForward > 0 && noEF.OblEarlyForward != 0 {
		t.Errorf("early forwards still counted when disabled: %d", noEF.OblEarlyForward)
	}

	av, regs := run(func(c *Config) { c.AlwaysValidate = true })
	check("always-validate", regs)
	// Only store-forwarded Obl-Lds may still expose.
	if av.Exposures > av.OblIssued/10 && av.Exposures > base.Exposures {
		t.Errorf("always-validate should suppress exposures: %d vs base %d", av.Exposures, base.Exposures)
	}
	if av.Validations <= base.Validations {
		t.Errorf("always-validate should increase validations: %d vs %d", av.Validations, base.Validations)
	}

	noICP, regs := run(func(c *Config) { c.NoImplicitChannelProtection = true })
	check("no-implicit-channel-protection", regs)
	if noICP.DelayedResolutions != 0 {
		t.Errorf("implicit-channel protection off should never park resolutions: %d", noICP.DelayedResolutions)
	}

	dram, regs := run(func(c *Config) { c.OblDRAMVariant = true })
	check("obl-dram", regs)
	if dram.OblPredMem != 0 {
		t.Errorf("DO DRAM variant should never revert to delay: %d", dram.OblPredMem)
	}
}
