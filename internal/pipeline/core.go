package pipeline

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Core is one simulated out-of-order core executing a program against a
// memory image and a memory-system port.
type Core struct {
	cfg  Config
	prog *isa.Program
	data *isa.Memory
	port MemPort
	bp   *bpred.Predictor

	scheme      Scheme      // active protection scheme (never nil)
	schemeTaint bool        // cached scheme.TracksTaint()
	specPort    SpecMemPort // non-nil when specActive
	specActive  bool        // scheme.SpecMode() != SpecOff

	regs      [isa.NumRegs]uint64
	renameMap [isa.NumRegs]int64 // producer seq, -1 = committed regfile

	rob     []robEntry
	headSeq uint64 // oldest live seq
	tailSeq uint64 // next seq to allocate
	iq      []uint64
	lq      []uint64
	sq      []uint64
	parked  []parkedSquash
	fpPortsBusy,
	intPortsBusy,
	memPortsBusy int

	fetchPC         int
	fetchHalted     bool
	fetchStallUntil uint64
	fetchLine       uint64 // last I-cache line fetched (0 = none yet)
	fetchBuf        []fetchSlot

	obs *obs.Recorder

	cycle           uint64
	frontier        uint64
	lastCommitCycle uint64
	halted          bool

	stats    Stats
	interval intervalState
}

// parkedSquash is a squash whose application is delayed until its predicate
// untaints (STT's resolution-based implicit channel rule).
type parkedSquash struct {
	from    uint64 // squash everything >= from
	root    uint64 // apply once root < frontier (or, with vpSelf, once frontier >= from)
	vpSelf  bool   // the predicate is the squashed load's own visibility point
	cause   squashCause
	refetch int
}

type fetchSlot struct {
	pc         int
	in         isa.Instr
	predTaken  bool
	predTarget int
	snap       bpred.Snapshot
	isCond     bool
}

// New builds a core. prog is the program, data the architectural memory
// (shared with the functional golden model's semantics), port the memory
// system.
func New(cfg Config, prog *isa.Program, data *isa.Memory, port MemPort) *Core {
	if cfg.Width <= 0 {
		panic("pipeline: config must come from DefaultConfig")
	}
	if cfg.Scheme == nil {
		cfg.Scheme = schemeFor(cfg.Protection)
	}
	if _, sdo := cfg.Scheme.(schemeSDO); sdo && cfg.LocPred == nil {
		panic("pipeline: ProtSDO requires a location predictor")
	}
	if cfg.WatchdogCycles == 0 {
		cfg.WatchdogCycles = 200_000
	}
	c := &Core{
		cfg:    cfg,
		prog:   prog,
		data:   data,
		port:   port,
		bp:     bpred.New(cfg.BP),
		rob:    make([]robEntry, cfg.ROBSize),
		scheme: cfg.Scheme,
	}
	c.schemeTaint = c.scheme.TracksTaint()
	if m := c.scheme.SpecMode(); m != mem.SpecOff {
		sp, ok := port.(SpecMemPort)
		if !ok {
			panic(fmt.Sprintf("pipeline: scheme %s needs a SpecMemPort; %T does not implement it",
				c.scheme.Name(), port))
		}
		sp.SetSpecMode(m)
		c.specPort = sp
		c.specActive = true
	}
	for i := range c.renameMap {
		c.renameMap[i] = -1
	}
	c.headSeq, c.tailSeq = 1, 1
	c.frontier = 1
	if h, ok := port.(*mem.Hierarchy); ok {
		h.OnInvalidate = c.onInvalidate
	}
	return c
}

// SetInvalidateHook registers the core's consistency-snoop handler on a
// hierarchy that is not directly the port (e.g. a coherence.Core wrapper).
func (c *Core) SetInvalidateHook(h *mem.Hierarchy) { h.OnInvalidate = c.onInvalidate }

// Regs returns the committed architectural registers.
func (c *Core) Regs() [isa.NumRegs]uint64 { return c.regs }

// Predictor exposes the core's branch predictor (warmup checkpoint
// capture/restore and tests).
func (c *Core) Predictor() *bpred.Predictor { return c.bp }

// RestoreArch seeds the core's committed architectural state from a
// functional-warmup checkpoint: committed registers and the PC fetch
// resumes from. It must be called before the first Step. halted marks a
// program that already committed its halt during warmup; the core then
// starts (and stays) halted.
func (c *Core) RestoreArch(regs [isa.NumRegs]uint64, pc int, halted bool) {
	c.regs = regs
	c.fetchPC = pc
	if halted {
		c.halted = true
		c.fetchHalted = true
	}
}

// Stats returns the statistics gathered so far.
func (c *Core) Stats() Stats { return c.stats }

// Cycle returns the current cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// Halted reports whether the program has committed its halt.
func (c *Core) Halted() bool { return c.halted }

// entry returns the ROB entry for a live seq.
func (c *Core) entry(seq uint64) *robEntry { return &c.rob[seq%uint64(len(c.rob))] }

func (c *Core) live(seq uint64) bool { return seq >= c.headSeq && seq < c.tailSeq }

// pcAddr synthesises the byte address of an instruction index, feeding the
// branch predictor and I-cache.
func (c *Core) pcAddr(pc int) uint64 { return c.cfg.CodeBase + uint64(pc)*8 }

// Run simulates until halt or until a configured bound is hit, returning
// the final statistics.
func (c *Core) Run() (Stats, error) {
	for !c.halted {
		if c.cfg.MaxCycles > 0 && c.cycle >= c.cfg.MaxCycles {
			break
		}
		if c.cfg.MaxInstrs > 0 && c.stats.Committed >= c.cfg.MaxInstrs {
			break
		}
		if err := c.Step(); err != nil {
			return c.stats, err
		}
	}
	c.stats.Halted = c.halted
	return c.stats, nil
}

// checkInterval is how often (in cycles) Step polls Config.Check. A
// power of two so the test is one mask; ~4k cycles keeps wall-clock
// deadline/stall detection responsive at simulation speeds of millions
// of cycles per second while staying invisible in profiles.
const checkInterval = 4096

// Step advances the core by one cycle.
func (c *Core) Step() error {
	c.cycle++
	if c.cfg.Check != nil && c.cycle&(checkInterval-1) == 0 {
		if err := c.cfg.Check(c.cycle, c.stats.Committed); err != nil {
			return err
		}
	}
	if c.cycle-c.lastCommitCycle > c.cfg.WatchdogCycles {
		return fmt.Errorf("pipeline: watchdog: no commit for %d cycles at cycle %d (head=%d tail=%d head instr %v)",
			c.cfg.WatchdogCycles, c.cycle, c.headSeq, c.tailSeq, c.headInstrDesc())
	}
	c.stats.Cycles = c.cycle

	c.intPortsBusy, c.fpPortsBusy, c.memPortsBusy = 0, 0, 0

	c.commit()
	c.completeExecution()
	c.resolve() // frontier, branch/SDO resolution, parked squashes
	c.issue()
	c.rename()
	c.fetch()
	if c.interval.every != 0 {
		c.sampleInterval()
	}
	return nil
}

func (c *Core) headInstrDesc() string {
	if c.headSeq >= c.tailSeq {
		return "<empty ROB>"
	}
	e := c.entry(c.headSeq)
	return fmt.Sprintf("%v (state=%d obl=%d pc=%d)", e.in, e.state, e.obl, e.pc)
}

// --- Fetch ---

func (c *Core) fetch() {
	if c.fetchHalted || c.cycle < c.fetchStallUntil {
		return
	}
	fetched := 0
	for fetched < c.cfg.Width && len(c.fetchBuf) < 2*c.cfg.Width {
		addr := c.pcAddr(c.fetchPC)
		line := mem.LineAddr(addr)
		if line != c.fetchLine {
			r := c.port.FetchAccess(c.cycle, addr)
			c.fetchLine = line
			if r.Level != mem.L1 {
				// I-cache miss: fetch stalls until the line arrives.
				c.fetchStallUntil = r.Done
				return
			}
		}
		in := c.prog.At(c.fetchPC)
		slot := fetchSlot{pc: c.fetchPC, in: in}
		switch {
		case in.Op == isa.OpHalt:
			c.fetchBuf = append(c.fetchBuf, slot)
			c.fetchHalted = true
			c.stats.Fetched++
			return
		case in.Op == isa.OpJmp:
			slot.predTaken, slot.predTarget = true, in.Target
			c.fetchPC = in.Target
		case in.Op.IsCondBranch():
			taken, snap := c.bp.PredictDirection(addr)
			slot.isCond = true
			slot.predTaken, slot.snap = taken, snap
			if taken {
				slot.predTarget = in.Target
				c.fetchPC = in.Target
			} else {
				slot.predTarget = c.fetchPC + 1
				c.fetchPC++
			}
		default:
			c.fetchPC++
		}
		c.fetchBuf = append(c.fetchBuf, slot)
		c.stats.Fetched++
		fetched++
	}
}

// --- Rename / dispatch ---

func (c *Core) rename() {
	for n := 0; n < c.cfg.Width && len(c.fetchBuf) > 0; n++ {
		if c.tailSeq-c.headSeq >= uint64(c.cfg.ROBSize) {
			return // ROB full
		}
		slot := c.fetchBuf[0]
		in := slot.in
		needsIQ := in.Op != isa.OpNop && in.Op != isa.OpHalt && in.Op != isa.OpFlush && in.Op != isa.OpJmp
		if needsIQ && len(c.iq) >= c.cfg.IQSize {
			return
		}
		if in.Op.IsLoad() && len(c.lq) >= c.cfg.LQSize {
			return
		}
		if in.Op.IsStore() && len(c.sq) >= c.cfg.SQSize {
			return
		}
		if in.Op == isa.OpFlush && len(c.sq) >= c.cfg.SQSize {
			return // flushes order with stores via the SQ
		}
		c.fetchBuf = c.fetchBuf[1:]

		seq := c.tailSeq
		c.tailSeq++
		if c.obs.On(obs.ClassRename) {
			c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassRename, Kind: "rename",
				Seq: seq, PC: slot.pc,
				Detail: fmt.Sprintf("seq=%d pc=%d %v", seq, slot.pc, slot.in)})
		}
		e := c.entry(seq)
		*e = robEntry{
			seq: seq, pc: slot.pc, in: in,
			predTaken: slot.predTaken, predTarget: slot.predTarget,
			bpSnap: slot.snap, sqForward: -1, prevProd: -1,
		}
		srcs := in.SrcRegs(nil)
		e.nSrc = len(srcs)
		for i, r := range srcs {
			e.src[i] = operand{reg: r, producer: c.renameMap[r]}
		}
		if in.Op.WritesReg() {
			e.hasDest = true
			e.prevProd = c.renameMap[in.Rd]
			c.renameMap[in.Rd] = int64(seq)
		}
		switch {
		case in.Op == isa.OpNop || in.Op == isa.OpHalt:
			e.state = stDone
		case in.Op == isa.OpJmp:
			// Direct jump with a statically-known target: resolved at
			// dispatch, never mispredicts.
			e.state = stDone
			e.resolved, e.effectApplied = true, true
			e.actualTaken, e.actualTarget = true, in.Target
		case in.Op == isa.OpFlush:
			// Flushes carry an address source; they apply at commit. The
			// address is read at commit time from the committed regfile.
			e.state = stDone
			c.sq = append(c.sq, seq)
		default:
			c.iq = append(c.iq, seq)
		}
		if in.Op.IsLoad() {
			c.lq = append(c.lq, seq)
		}
		if in.Op.IsStore() {
			c.sq = append(c.sq, seq)
		}
	}
}

// operandInfo resolves an operand's current value, readiness, and taint
// root.
func (c *Core) operandInfo(o operand) (val uint64, ready bool, root uint64) {
	if o.producer < 0 || uint64(o.producer) < c.headSeq {
		return c.regs[o.reg], true, 0
	}
	p := c.entry(uint64(o.producer))
	if p.state != stDone {
		return 0, false, p.destRoot
	}
	root = p.destRoot
	if root < c.frontier {
		root = 0
	}
	return p.destVal, true, root
}

// srcsReady reports whether all of e's sources are ready, and the max root.
func (c *Core) srcsReady(e *robEntry) (ready bool, vals [2]uint64, root uint64) {
	ready = true
	for i := 0; i < e.nSrc; i++ {
		v, ok, r := c.operandInfo(e.src[i])
		if !ok {
			ready = false
		}
		vals[i] = v
		if r > root {
			root = r
		}
	}
	return ready, vals, root
}

// tainted reports whether a root is still speculative under the current
// frontier. Root 0 is the untainted sentinel.
func (c *Core) tainted(root uint64) bool { return root != 0 && root >= c.frontier }
