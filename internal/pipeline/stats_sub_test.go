package pipeline

import (
	"reflect"
	"testing"
)

// TestStatsSubSubtractsEveryNumericField guards Stats.Sub against the
// classic bug of adding a counter to Stats and forgetting to subtract it:
// warmup exclusion and interval deltas would silently absorb warmup
// activity. The test fills every numeric field of two Stats values with
// distinct numbers via reflection and checks Sub produces exactly
// cur-base in each — so it fails the moment a new field is added without
// updating Sub.
func TestStatsSubSubtractsEveryNumericField(t *testing.T) {
	var base, cur Stats
	bv := reflect.ValueOf(&base).Elem()
	cv := reflect.ValueOf(&cur).Elem()
	seed := uint64(1)
	fill := func(b, c reflect.Value) {
		// cur-base = 2*seed+3 while cur alone is 3*seed+3: a field that
		// Sub copies instead of subtracting cannot match its expectation.
		b.SetUint(seed)
		c.SetUint(3*seed + 3)
		seed++
	}
	for i := 0; i < bv.NumField(); i++ {
		f := bv.Type().Field(i)
		switch f.Type.Kind() {
		case reflect.Uint64:
			fill(bv.Field(i), cv.Field(i))
		case reflect.Array:
			if f.Type.Elem().Kind() != reflect.Uint64 {
				t.Fatalf("Stats.%s: array of %s — teach this test and Stats.Sub about it", f.Name, f.Type.Elem())
			}
			for j := 0; j < f.Type.Len(); j++ {
				fill(bv.Field(i).Index(j), cv.Field(i).Index(j))
			}
		case reflect.Bool:
			cv.Field(i).SetBool(true) // Halted: carried over, not subtracted
		default:
			t.Fatalf("Stats.%s: unhandled kind %s — teach this test and Stats.Sub about it", f.Name, f.Type.Kind())
		}
	}

	d := cur.Sub(base)
	dv := reflect.ValueOf(d)
	for i := 0; i < dv.NumField(); i++ {
		f := dv.Type().Field(i)
		switch f.Type.Kind() {
		case reflect.Uint64:
			got, want := dv.Field(i).Uint(), cv.Field(i).Uint()-bv.Field(i).Uint()
			if got != want {
				t.Errorf("Stats.Sub does not subtract %s: got %d, want %d", f.Name, got, want)
			}
		case reflect.Array:
			for j := 0; j < f.Type.Len(); j++ {
				got, want := dv.Field(i).Index(j).Uint(), cv.Field(i).Index(j).Uint()-bv.Field(i).Index(j).Uint()
				if got != want {
					t.Errorf("Stats.Sub does not subtract %s[%d]: got %d, want %d", f.Name, j, got, want)
				}
			}
		case reflect.Bool:
			if !dv.Field(i).Bool() {
				t.Errorf("Stats.Sub must carry over %s", f.Name)
			}
		}
	}
}
