package pipeline

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
)

// accessSize returns the byte width of a memory op.
func accessSize(op isa.Op) uint64 {
	if op == isa.OpLoadB || op == isa.OpStoreB {
		return 1
	}
	return 8
}

func rangesOverlap(a, as, b, bs uint64) bool { return a < b+bs && b < a+as }

func rangeContains(outer, outerSize, inner, innerSize uint64) bool {
	return outer <= inner && inner+innerSize <= outer+outerSize
}

// readMem reads the load's architectural value from memory.
func (c *Core) readMem(e *robEntry) uint64 {
	return isa.LoadValue(c.data, e.in.Op, e.addr)
}

// sqSearch scans older stores for forwarding. Outcomes:
//   - fwdOK: the youngest older containing store has ready data; val holds
//     the forwarded bytes, fwdSeq the store.
//   - stall: an older store overlaps in a way that cannot forward yet
//     (partial overlap, or data not ready): the load must wait.
//   - otherwise the load may read memory, speculating past any stores with
//     unknown (or tainted, see below) addresses.
//
// STT rule: a store whose address is known but *tainted* is treated as
// unknown — the address comparison is the predicate of an implicit branch
// and must not influence the load's timing before it untaints. Violations
// against such stores are detected when the store's address untaints.
func (c *Core) sqSearch(e *robEntry) (val uint64, fwdSeq int64, fwdOK, stall bool) {
	la, ls := e.addr, accessSize(e.in.Op)
	for i := len(c.sq) - 1; i >= 0; i-- {
		s := c.entry(c.sq[i])
		if s.seq >= e.seq || s.in.Op == isa.OpFlush {
			continue
		}
		if !s.addrValid {
			continue // speculate past unknown store addresses
		}
		if c.schemeTaint && c.tainted(s.addrRoot) {
			continue // tainted address: treated as unknown (see above)
		}
		sa, ss := s.addr, accessSize(s.in.Op)
		if !rangesOverlap(sa, ss, la, ls) {
			continue
		}
		if !rangeContains(sa, ss, la, ls) || !s.sqDataReady {
			return 0, -1, false, true
		}
		v := s.sqData >> (8 * (la - sa))
		if ls == 1 {
			v &= 0xff
		}
		return v, int64(s.seq), true, false
	}
	return 0, -1, false, false
}

// issueLoad handles a load leaving the issue queue: once the address
// resolves, the active protection scheme decides the path — normal fill
// (Unsafe and untainted loads), STT delay, SDO Obl-Ld (reverting to
// delay when the predictor says DRAM), or a shadow fill (SafeSpec /
// SpecBox).
func (c *Core) issueLoad(e *robEntry) bool {
	v, ok, root := c.operandInfo(e.src[0])
	if !ok {
		return false
	}
	e.addr = v + uint64(e.in.Imm)
	e.addrValid = true
	e.addrRoot = root
	return c.scheme.IssueLoad(c, e)
}

func (c *Core) issueNormalLoad(e *robEntry) bool {
	fv, fwdSeq, fwdOK, stall := c.sqSearch(e)
	if stall {
		return false
	}
	if c.memPortsBusy >= c.cfg.MemPorts {
		return false
	}
	c.memPortsBusy++
	c.stats.Loads++
	e.destRoot = e.seq // access instruction: output tainted until its VP
	if fwdOK {
		e.destVal = fv
		e.sqForward = fwdSeq
		e.memLevel = mem.L1 // store-queue forward: L1-equivalent timing
		e.doneAt = c.cycle + 1
		e.state = stExecuting
		c.emitIssueLoad(e)
		return true
	}
	tdone, _ := c.port.Translate(c.cycle, e.addr)
	r := c.port.Load(tdone, e.addr)
	e.destVal = c.readMem(e)
	e.memLevel = r.Level
	e.doneAt = r.Done
	e.state = stExecuting
	c.emitIssueLoad(e)
	if e.oblMemDelayed {
		// §V-C3: a predicted-DRAM load executes normally once safe; the
		// location predictor is trained with where the data actually was,
		// so it can unlearn "DRAM" when the line becomes cached.
		c.cfg.LocPred.Update(c.pcAddr(e.pc), r.Level)
	}
	return true
}

// issueSpecLoad issues a load under a shadow-structure scheme (SafeSpec
// / SpecBox): it may read any committed level tag-only, but its fill
// lands in the speculative shadow (mem/spec.go) and reaches the
// committed hierarchy only when the load retires (Scheme.OnCommit) —
// squashed fills are discarded without a trace.
func (c *Core) issueSpecLoad(e *robEntry) bool {
	fv, fwdSeq, fwdOK, stall := c.sqSearch(e)
	if stall {
		return false
	}
	if c.memPortsBusy >= c.cfg.MemPorts {
		return false
	}
	c.memPortsBusy++
	c.stats.Loads++
	e.destRoot = e.seq
	if fwdOK {
		e.destVal = fv
		e.sqForward = fwdSeq
		e.memLevel = mem.L1 // store-queue forward: L1-equivalent timing
		e.doneAt = c.cycle + 1
		e.state = stExecuting
		c.emitIssueLoad(e)
		return true
	}
	tdone, _ := c.specPort.SpecTranslate(c.cycle, e.addr, e.seq)
	r := c.specPort.SpecLoad(tdone, e.addr, e.seq)
	e.destVal = c.readMem(e)
	e.memLevel = r.Level
	e.doneAt = r.Done
	e.specFill = true
	e.state = stExecuting
	c.emitIssueLoad(e)
	return true
}

// emitIssueLoad reports a normal-path load issue (ClassIssue); span-shaped
// (Dur = issue-to-done) so trace viewers render the memory latency.
func (c *Core) emitIssueLoad(e *robEntry) {
	if !c.obs.On(obs.ClassIssue) {
		return
	}
	c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassIssue, Kind: "issue-load",
		Seq: e.seq, PC: e.pc, Addr: e.addr, Level: e.memLevel.String(), Dur: e.doneAt - c.cycle,
		Detail: fmt.Sprintf("seq=%d pc=%d addr=%#x", e.seq, e.pc, e.addr)})
}

// issueOblLoad issues the load as an Obl-Ld operation (§V-B). Resource
// usage from here on is a function of the prediction and public state only.
func (c *Core) issueOblLoad(e *robEntry, pred mem.Level) bool {
	fv, fwdSeq, fwdOK, stall := c.sqSearch(e)
	if stall {
		return false
	}
	if c.memPortsBusy >= c.cfg.MemPorts {
		return false
	}
	c.memPortsBusy++
	c.stats.Loads++
	c.stats.OblIssued++

	e.oblPred = pred
	e.oblTLBOK = c.port.TLBProbe(e.addr) // §V-B: L1-TLB lookup only; miss = ⊥
	if !e.oblTLBOK {
		c.stats.OblTLBMiss++
	}
	e.oblRes = c.port.OblLoad(c.cycle, e.addr, pred)
	e.obl = oblInFlight
	e.state = stExecuting
	e.doneAt = e.oblRes.Done // informational; binding happens in stepObl
	e.destRoot = e.seq

	if fwdOK {
		// §V-C3: the Obl-Ld issues unconditionally but correct data comes
		// from the store queue once the responses return.
		e.destVal = fv
		e.sqForward = fwdSeq
		e.exposure = true
	} else {
		e.destVal = c.readMem(e) // wait-buffer contents (if found)
		e.valSnapshot = e.destVal
		// §VI-A Validation/Exposure bit: an L1 hit retires without a
		// validation; the InvisiSpec reordering condition is re-checked
		// when the load becomes safe (see stepObl).
		e.exposure = e.oblRes.Found == mem.L1
	}
	if c.obs.On(obs.ClassSDO) {
		c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassSDO, Kind: "obl-issue",
			Seq: e.seq, PC: e.pc, Addr: e.addr, Level: pred.String(), Dur: e.oblRes.Done - c.cycle,
			Detail: fmt.Sprintf("seq=%d pc=%d addr=%#x pred=%v found=%v tlb-ok=%v",
				e.seq, e.pc, e.addr, pred, e.oblRes.Found, e.oblTLBOK)})
	}
	return true
}

// noOlderIncompleteLoads reports whether every load older than seq has its
// value bound: the TSO condition under which a speculative load cannot
// have been reordered with an older load, and hence may be exposed rather
// than validated (InvisiSpec [47, Appendix A]).
func (c *Core) noOlderIncompleteLoads(seq uint64) bool {
	for _, ls := range c.lq {
		if ls >= seq {
			break // the LQ is age-ordered
		}
		if e := c.entry(ls); e.state != stDone {
			return false
		}
	}
	return true
}

// oblSuccessful reports whether the Obl-Ld produced correct data: the
// translation hit the L1 TLB and either the data was forwarded from the
// store queue or some looked-up level held the line.
func (e *robEntry) oblSuccessful() bool {
	if e.sqForward >= 0 {
		return true
	}
	return e.oblTLBOK && e.oblRes.Found != mem.LevelNone
}

// oblActualLevel is the "Actual Level" field of §VI-A: the level that
// served the Obl-Ld, used to train the location predictor.
func (e *robEntry) oblActualLevel() mem.Level { return e.oblRes.Found }

// checkStoreViolation runs when a store's address resolves: any younger
// load that already executed, overlaps, and did not forward from this
// store read stale data (§V-C1 memory-order speculation). The squash is
// applied immediately in the Unsafe core, and parked until the predicate
// (both addresses) untaints under STT/SDO.
func (c *Core) checkStoreViolation(s *robEntry) {
	sa, ss := s.addr, accessSize(s.in.Op)
	var victim *robEntry
	for _, ls := range c.lq {
		e := c.entry(ls)
		if e.seq <= s.seq || !e.addrValid || e.state == stWaiting {
			continue
		}
		if !rangesOverlap(sa, ss, e.addr, accessSize(e.in.Op)) {
			continue
		}
		if e.sqForward == int64(s.seq) {
			continue // correctly forwarded
		}
		if e.sqForward > int64(s.seq) {
			continue // forwarded from a younger store: that store's data wins
		}
		if victim == nil || e.seq < victim.seq {
			victim = e
		}
	}
	if victim == nil {
		return
	}
	root := s.addrRoot
	if victim.addrRoot > root {
		root = victim.addrRoot
	}
	if c.schemeTaint && !c.cfg.NoImplicitChannelProtection && c.tainted(root) {
		victim.pendingSq = true
		c.parked = append(c.parked, parkedSquash{
			from: victim.seq, root: root, cause: sqMemOrder, refetch: victim.pc,
		})
		c.stats.PendingSquashDelays++
		return
	}
	c.squash(victim.seq, sqMemOrder, victim.pc)
}

// onInvalidate is the load-queue snoop (§V-C1): an external invalidation of
// a line read by an in-flight load may be a consistency violation. The
// squash is delayed until the load's address untaints (its own visibility
// point) under STT/SDO, and applied immediately in the Unsafe core.
func (c *Core) onInvalidate(lineAddr uint64) {
	for _, ls := range c.lq {
		e := c.entry(ls)
		if !e.addrValid || mem.LineAddr(e.addr) != lineAddr || e.state == stWaiting {
			continue
		}
		switch e.obl {
		case oblNone, oblResolved:
			if e.pendingSq {
				continue
			}
			if !c.schemeTaint || c.cfg.NoImplicitChannelProtection {
				c.squash(e.seq, sqConsistency, e.pc)
				return
			}
			e.pendingSq = true
			c.parked = append(c.parked, parkedSquash{
				from: e.seq, root: e.seq, vpSelf: true, cause: sqConsistency, refetch: e.pc,
			})
			c.stats.PendingSquashDelays++
		default:
			// Obl-Ld still resolving: force a full validation (not an
			// exposure) so the value comparison catches the change.
			e.pendingInval = true
			e.exposure = false
		}
	}
}

// stepOblAll advances every Obl-Ld state machine one cycle (§V-C2's event
// orderings). Called from resolve() after the frontier is computed.
func (c *Core) stepOblAll() {
	for _, ls := range c.lq {
		if ls >= c.tailSeq {
			break
		}
		e := c.entry(ls)
		if e.obl == oblNone || e.obl == oblResolved {
			continue
		}
		c.stepObl(e)
		if ls >= c.tailSeq {
			break // a squash removed this and younger entries
		}
	}
}

func (c *Core) stepObl(e *robEntry) {
	// The load reaches its visibility point when everything older is
	// non-speculative — i.e. the frontier scan passed every older entry
	// (the load itself may be the frontier blocker).
	safe := e.seq <= c.frontier // event C has occurred

	switch e.obl {
	case oblInFlight:
		if safe {
			// C before B (cases 2 and 3): issue the validation right away.
			c.startValidation(e)
			e.obl = oblSafeWaitB
			return
		}
		if c.cycle >= e.oblRes.Done {
			// B before C (case 1): forward unconditionally, tainted.
			c.bindOblValue(e, e.destVal)
			e.obl = oblComplete
			if !e.oblSuccessful() {
				e.pendingSq = true // squash once safe (§VI-A Pending Squash)
			}
		}

	case oblComplete:
		if !safe {
			return
		}
		if e.oblSuccessful() {
			c.stats.OblSuccess++
			c.recordPrediction(e, e.oblActualLevel())
			// InvisiSpec's exposure condition, evaluated now that the load
			// is safe: under TSO a consistency squash could only have been
			// required if an older load is still incomplete; otherwise the
			// validation can be replaced by an asynchronous exposure
			// ([47, Appendix A], §V-C1).
			if !e.exposure && !c.cfg.AlwaysValidate && c.noOlderIncompleteLoads(e.seq) {
				e.exposure = true
			}
			if c.cfg.AlwaysValidate && e.sqForward < 0 {
				e.exposure = false
			}
			if e.exposure && !e.pendingInval {
				c.stats.Exposures++
				c.port.Load(c.cycle, e.addr) // asynchronous line fill
				e.obl = oblResolved
				if c.obs.On(obs.ClassSDO) {
					c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassSDO, Kind: "obl-expose",
						Seq: e.seq, PC: e.pc, Addr: e.addr, Level: e.oblActualLevel().String(),
						Detail: fmt.Sprintf("seq=%d addr=%#x found=%v", e.seq, e.addr, e.oblActualLevel())})
				}
			} else {
				c.startValidation(e)
				e.obl = oblValidating
			}
			return
		}
		// Case 1 fail: squash starting at the load; it re-issues as a
		// normal load (its address is untainted now). The predictor is
		// trained with the level the data actually lives at (§V-C3; the
		// probe stands in for the validation's observation).
		cause := sqOblFail
		if !e.oblTLBOK {
			cause = sqTLB
		}
		c.stats.OblFail++
		if c.obs.On(obs.ClassSDO) {
			c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassSDO, Kind: "obl-fail",
				Seq: e.seq, PC: e.pc, Addr: e.addr, Level: e.oblPred.String(),
				Detail: fmt.Sprintf("seq=%d addr=%#x pred=%v cause=%s (squash)",
					e.seq, e.addr, e.oblPred, squashCauseNames[cause])})
		}
		c.recordPrediction(e, c.port.Probe(e.addr))
		e.obl = oblResolved
		c.squash(e.seq, cause, e.pc)

	case oblSafeWaitB:
		if c.cycle >= e.valDone {
			// D arrived (case 3, or case-2 fail waiting on the validation):
			// the validation result — a guaranteed success — completes the
			// load.
			if !e.oblDropped && !e.oblSuccessful() {
				c.stats.OblFail++
			} else if !e.oblDropped {
				c.stats.OblSuccess++
			}
			c.bindOblValue(e, c.readMem(e))
			e.valSnapshot = e.destVal
			e.memLevel = e.valLevel
			c.recordPrediction(e, e.valLevel)
			e.valInFlight = false
			e.obl = oblResolved
			return
		}
		if c.cycle >= e.oblRes.Done && !e.oblSuccessful() && !e.oblDropped {
			// Case 2 with fail: it is now safe to reveal the fail; drop
			// the Obl-Ld result and wait for the validation — no squash.
			c.stats.OblFail++
			e.oblDropped = true
			if c.obs.On(obs.ClassSDO) {
				c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassSDO, Kind: "obl-fail",
					Seq: e.seq, PC: e.pc, Addr: e.addr, Level: e.oblPred.String(),
					Detail: fmt.Sprintf("seq=%d addr=%#x pred=%v dropped; validation supplies value",
						e.seq, e.addr, e.oblPred)})
			}
			return
		}
		// Early forwarding (§V-C2 optimisation): once safe, a success
		// response can be forwarded without waiting for deeper levels.
		if c.cfg.DisableEarlyForward {
			return
		}
		if e.state != stDone && !e.oblDropped && e.oblSuccessful() && c.cycle >= e.oblRes.EarlyDone {
			if c.cycle < e.oblRes.Done {
				c.stats.OblEarlyForward++
				if c.obs.On(obs.ClassSDO) {
					c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassSDO, Kind: "obl-early-fwd",
						Seq: e.seq, PC: e.pc, Addr: e.addr, Level: e.oblActualLevel().String(),
						Detail: fmt.Sprintf("seq=%d addr=%#x found=%v saved=%d",
							e.seq, e.addr, e.oblActualLevel(), e.oblRes.Done-c.cycle)})
				}
			}
			c.stats.OblSuccess++
			c.bindOblValue(e, e.destVal)
			c.recordPrediction(e, e.oblActualLevel())
			e.obl = oblValidating // validation already in flight; compare at D
		}

	case oblValidating:
		if c.cycle < e.valDone {
			return
		}
		e.valInFlight = false
		if c.readMem(e) != e.valSnapshot {
			// Consistency violation detected by the validation (§V-C1).
			if c.obs.On(obs.ClassSDO) {
				c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassSDO, Kind: "obl-fail",
					Seq: e.seq, PC: e.pc, Addr: e.addr,
					Detail: fmt.Sprintf("seq=%d addr=%#x validation mismatch (squash)", e.seq, e.addr)})
			}
			e.obl = oblResolved
			c.squash(e.seq, sqValidation, e.pc)
			return
		}
		e.obl = oblResolved
	}
}

// bindOblValue makes the load's result available to dependents.
func (c *Core) bindOblValue(e *robEntry, v uint64) {
	if e.state == stDone {
		return
	}
	e.destVal = v
	e.state = stDone
}

// startValidation issues the validation access (a normal, filling load).
func (c *Core) startValidation(e *robEntry) {
	c.stats.Validations++
	r := c.port.Load(c.cycle, e.addr)
	e.valDone = r.Done
	e.valLevel = r.Level
	e.valInFlight = true
	if c.obs.On(obs.ClassSDO) {
		c.obs.Emit(obs.Event{Cycle: c.cycle, Class: obs.ClassSDO, Kind: "obl-validate",
			Seq: e.seq, PC: e.pc, Addr: e.addr, Level: r.Level.String(), Dur: r.Done - c.cycle,
			Detail: fmt.Sprintf("seq=%d addr=%#x level=%v", e.seq, e.addr, r.Level)})
	}
}

// recordPrediction accumulates Table III / Figure 7 statistics for one
// resolved Obl-Ld and trains the location predictor (§V-C3). actual is the
// level that held the data.
func (c *Core) recordPrediction(e *robEntry, actual mem.Level) {
	if e.sqForward >= 0 || actual == mem.LevelNone {
		return // store-forwarded: no meaningful level; predictor untouched
	}
	cfg := hierCfgOf(c.port)
	switch {
	case actual == e.oblPred:
		c.stats.PredPrecise++
	case actual < e.oblPred:
		c.stats.PredImprecise++
		c.stats.ImprecisionCycles += cfg.LatencyOf(e.oblPred) - cfg.LatencyOf(actual)
	default:
		c.stats.PredInaccurate++
	}
	c.cfg.LocPred.Update(c.pcAddr(e.pc), actual)
}

// hierCfgOf extracts the memory configuration for latency accounting.
func hierCfgOf(p MemPort) mem.Config {
	type configer interface{ Config() mem.Config }
	if h, ok := p.(configer); ok {
		return h.Config()
	}
	type hierarchyer interface{ Hierarchy() *mem.Hierarchy }
	if h, ok := p.(hierarchyer); ok {
		return h.Hierarchy().Config()
	}
	return mem.DefaultConfig()
}
