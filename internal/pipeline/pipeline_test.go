package pipeline

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sdo"
)

// runOn executes prog on a fresh single-core machine with the given
// protection/model/predictor and returns the core (for stats/regs) and its
// memory image.
func runOn(t *testing.T, prot Protection, model AttackModel, fpTx bool,
	predName string, prog *isa.Program, init func(*isa.Memory)) (*Core, *isa.Memory) {
	t.Helper()
	data := isa.NewMemory()
	if init != nil {
		init(data)
	}
	h := mem.NewHierarchy(mem.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Protection = prot
	cfg.Model = model
	cfg.FPTransmitters = fpTx
	if prot == ProtSDO {
		switch predName {
		case "perfect":
			cfg.LocPred = sdo.Perfect{Probe: h.Probe}
		case "hybrid":
			cfg.LocPred = sdo.NewHybrid(512)
		case "l1":
			cfg.LocPred = sdo.Static{Level: mem.L1}
		case "l3":
			cfg.LocPred = sdo.Static{Level: mem.L3}
		default:
			cfg.LocPred = sdo.Static{Level: mem.L2}
		}
	}
	core := New(cfg, prog, data, h)
	if _, err := core.Run(); err != nil {
		t.Fatalf("%v/%v/%s: %v", prot, model, predName, err)
	}
	if !core.Halted() {
		t.Fatalf("%v/%v/%s: did not halt", prot, model, predName)
	}
	return core, data
}

// allConfigs enumerates the interesting (protection, model, fpTx, pred)
// combinations.
type cfgTuple struct {
	prot Protection
	mod  AttackModel
	fpTx bool
	pred string
}

func allConfigs() []cfgTuple {
	var out []cfgTuple
	for _, m := range []AttackModel{Spectre, Futuristic} {
		out = append(out,
			cfgTuple{ProtNone, m, false, ""},
			cfgTuple{ProtSTT, m, false, ""},
			cfgTuple{ProtSTT, m, true, ""},
			cfgTuple{ProtSDO, m, true, "l1"},
			cfgTuple{ProtSDO, m, true, "l2"},
			cfgTuple{ProtSDO, m, true, "l3"},
			cfgTuple{ProtSDO, m, true, "hybrid"},
			cfgTuple{ProtSDO, m, true, "perfect"},
		)
	}
	return out
}

// checkEquivalence runs prog under every configuration and demands
// identical final architectural state to the functional golden model.
func checkEquivalence(t *testing.T, prog *isa.Program, init func(*isa.Memory)) {
	t.Helper()
	goldenMem := isa.NewMemory()
	if init != nil {
		init(goldenMem)
	}
	golden, err := arch.Exec(prog, goldenMem, nil, 10_000_000)
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	for _, cf := range allConfigs() {
		core, data := runOn(t, cf.prot, cf.mod, cf.fpTx, cf.pred, prog, init)
		regs := core.Regs()
		for r := 0; r < isa.NumRegs; r++ {
			if regs[r] != golden.Regs[r] {
				t.Fatalf("%v/%v/%s: r%d = %d, golden %d",
					cf.prot, cf.mod, cf.pred, r, regs[r], golden.Regs[r])
			}
		}
		if !data.Equal(goldenMem) {
			t.Fatalf("%v/%v/%s: memory diverged from golden", cf.prot, cf.mod, cf.pred)
		}
	}
}

func sumLoopProgram() *isa.Program {
	return isa.NewBuilder().
		MovI(isa.R1, 1).
		MovI(isa.R2, 101).
		MovI(isa.R3, 0).
		Label("loop").
		Add(isa.R3, isa.R3, isa.R1).
		AddI(isa.R1, isa.R1, 1).
		Blt(isa.R1, isa.R2, "loop").
		Halt().
		MustBuild()
}

func TestSumLoopAllConfigs(t *testing.T) {
	checkEquivalence(t, sumLoopProgram(), nil)
}

func TestMemoryChainAllConfigs(t *testing.T) {
	// A pointer chase through memory: each loaded value is the next
	// address — loads feed loads, so taint propagates through the chain.
	b := isa.NewBuilder().
		MovI(isa.R1, 0x1000).
		MovI(isa.R2, 0).
		MovI(isa.R3, 16).
		MovI(isa.R4, 0).
		Label("loop").
		Load(isa.R1, isa.R1, 0). // R1 = mem[R1]
		Add(isa.R4, isa.R4, isa.R1).
		AddI(isa.R2, isa.R2, 1).
		Blt(isa.R2, isa.R3, "loop").
		Halt()
	prog := b.MustBuild()
	init := func(m *isa.Memory) {
		// Build a 17-node cycle of pointers at 0x1000 + i*0x100.
		for i := 0; i < 17; i++ {
			m.Write64(uint64(0x1000+i*0x100), uint64(0x1000+(i+1)%17*0x100))
		}
	}
	checkEquivalence(t, prog, init)
}

func TestStoreLoadForwardingAllConfigs(t *testing.T) {
	b := isa.NewBuilder().
		MovI(isa.R1, 0x4000).
		MovI(isa.R2, 7).
		MovI(isa.R5, 0).
		MovI(isa.R6, 50).
		Label("loop").
		Mul(isa.R3, isa.R2, isa.R2).
		Store(isa.R3, isa.R1, 0).
		Load(isa.R4, isa.R1, 0). // forwarded from the store
		Add(isa.R2, isa.R4, isa.R2).
		AddI(isa.R5, isa.R5, 1).
		Blt(isa.R5, isa.R6, "loop").
		Halt()
	checkEquivalence(t, b.MustBuild(), nil)
}

func TestByteOpsAllConfigs(t *testing.T) {
	b := isa.NewBuilder().
		MovI(isa.R1, 0x5000).
		MovI(isa.R2, 0xAB).
		StoreB(isa.R2, isa.R1, 3).
		Load(isa.R3, isa.R1, 0). // 64-bit load over the stored byte: partial overlap
		LoadB(isa.R4, isa.R1, 3).
		Halt()
	checkEquivalence(t, b.MustBuild(), nil)
}

func TestDataDependentBranchesAllConfigs(t *testing.T) {
	// Branches whose predicates depend on loaded (tainted) data: exercises
	// STT's delayed branch resolution.
	b := isa.NewBuilder().
		MovI(isa.R1, 0x2000).
		MovI(isa.R2, 0). // i
		MovI(isa.R3, 64).
		MovI(isa.R4, 0). // count of odd values
		MovI(isa.R7, 1).
		Label("loop").
		Shl(isa.R5, isa.R2, isa.R7). // i*2... (R7=1) -> i*2
		Shl(isa.R5, isa.R5, isa.R7). // i*4
		Shl(isa.R5, isa.R5, isa.R7). // i*8
		Add(isa.R5, isa.R5, isa.R1).
		Load(isa.R6, isa.R5, 0).
		And(isa.R6, isa.R6, isa.R7).
		Beq(isa.R6, isa.R7, "odd").
		Jmp("next").
		Label("odd").
		AddI(isa.R4, isa.R4, 1).
		Label("next").
		AddI(isa.R2, isa.R2, 1).
		Blt(isa.R2, isa.R3, "loop").
		Halt()
	init := func(m *isa.Memory) {
		for i := 0; i < 64; i++ {
			m.Write64(uint64(0x2000+i*8), uint64(i*i+3))
		}
	}
	checkEquivalence(t, b.MustBuild(), init)
}

func TestFPSubnormalAllConfigs(t *testing.T) {
	// FP transmitters fed by loaded data, some subnormal: exercises the
	// SDO fast-path-predict / fail / squash route and STT{ld+fp} delays.
	b := isa.NewBuilder().
		MovI(isa.R1, 0x3000).
		MovI(isa.R2, 0).
		MovI(isa.R3, 32).
		MovI(isa.R8, 0). // accumulator bits
		ItoF(isa.R8, isa.R8).
		MovI(isa.R9, 3).
		ItoF(isa.R9, isa.R9).
		Label("loop").
		Load(isa.R4, isa.R1, 0).
		FMul(isa.R5, isa.R4, isa.R9).
		FAdd(isa.R8, isa.R8, isa.R5).
		AddI(isa.R1, isa.R1, 8).
		AddI(isa.R2, isa.R2, 1).
		Blt(isa.R2, isa.R3, "loop").
		Halt()
	init := func(m *isa.Memory) {
		for i := 0; i < 32; i++ {
			v := float64(i) * 1.5
			if i%7 == 3 {
				v = math.SmallestNonzeroFloat64 * float64(i+1) // subnormal
			}
			m.Write64(uint64(0x3000+i*8), math.Float64bits(v))
		}
	}
	checkEquivalence(t, b.MustBuild(), init)
}

// taintedLoadGadget builds a Spectre-shaped gadget: a branch whose
// predicate depends on a slow (cache-missing) load guards an access
// instruction feeding a dependent transmitter load. While the branch is
// unresolved, everything in its shadow is speculative, so the dependent
// load's address is tainted under both attack models.
func taintedLoadGadget() (*isa.Program, func(*isa.Memory)) {
	b := isa.NewBuilder().
		MovI(isa.R1, 0x6000).   // A: array of pointers
		MovI(isa.R2, 0).        // i
		MovI(isa.R3, 200).      // iterations
		MovI(isa.R4, 0).        // accumulator
		MovI(isa.R10, 0x40000). // bounds array, 64B stride: misses every time
		MovI(isa.R11, 0).
		Label("loop").
		Load(isa.R9, isa.R10, 0).     // slow load: branch predicate source
		AddI(isa.R10, isa.R10, 64).   // next line
		Beq(isa.R9, isa.R11, "skip"). // never taken, but resolves slowly
		Load(isa.R5, isa.R1, 0).      // access instruction (speculative)
		Load(isa.R6, isa.R5, 0).      // transmitter: tainted address
		Add(isa.R4, isa.R4, isa.R6).
		Label("skip").
		AddI(isa.R1, isa.R1, 8).
		AddI(isa.R2, isa.R2, 1).
		Blt(isa.R2, isa.R3, "loop").
		Halt()
	init := func(m *isa.Memory) {
		for i := 0; i < 200; i++ {
			m.Write64(uint64(0x6000+i*8), uint64(0x8000+(i%10)*64))
			m.Write64(uint64(0x40000+i*64), uint64(i+1)) // nonzero bounds
		}
		for i := 0; i < 10; i++ {
			m.Write64(uint64(0x8000+i*64), uint64(i))
		}
	}
	return b.MustBuild(), init
}

func TestSTTDelaysTaintedLoads(t *testing.T) {
	prog, init := taintedLoadGadget()
	for _, m := range []AttackModel{Spectre, Futuristic} {
		core, _ := runOn(t, ProtSTT, m, false, "", prog, init)
		st := core.Stats()
		if st.DelayedLoads == 0 {
			t.Errorf("%v: STT should delay dependent loads (got 0)", m)
		}
		if st.LoadDelayCycles == 0 {
			t.Errorf("%v: STT should accumulate delay cycles", m)
		}
	}
}

func TestSDOIssuesOblLoads(t *testing.T) {
	prog, init := taintedLoadGadget()
	for _, m := range []AttackModel{Spectre, Futuristic} {
		core, _ := runOn(t, ProtSDO, m, true, "l2", prog, init)
		st := core.Stats()
		if st.OblIssued == 0 {
			t.Errorf("%v: SDO should issue Obl-Lds", m)
		}
		if st.OblSuccess+st.OblFail == 0 {
			t.Errorf("%v: Obl-Lds should resolve", m)
		}
		if st.Validations+st.Exposures == 0 {
			t.Errorf("%v: resolved Obl-Lds need validations or exposures", m)
		}
	}
}

func TestUnsafeNeverDelaysOrObls(t *testing.T) {
	prog, init := taintedLoadGadget()
	core, _ := runOn(t, ProtNone, Spectre, false, "", prog, init)
	st := core.Stats()
	if st.DelayedLoads != 0 || st.OblIssued != 0 {
		t.Errorf("unsafe config ran protection machinery: %+v", st)
	}
}

func TestProtectionOrdering(t *testing.T) {
	// On a dependent-load workload: Unsafe <= SDO(perfect) <= STT in
	// execution time (allowing equality).
	prog, init := taintedLoadGadget()
	for _, m := range []AttackModel{Spectre, Futuristic} {
		unsafe, _ := runOn(t, ProtNone, m, false, "", prog, init)
		stt, _ := runOn(t, ProtSTT, m, false, "", prog, init)
		sdoP, _ := runOn(t, ProtSDO, m, true, "perfect", prog, init)
		cu, cs, cp := unsafe.Stats().Cycles, stt.Stats().Cycles, sdoP.Stats().Cycles
		if cu > cs {
			t.Errorf("%v: unsafe (%d) slower than STT (%d)", m, cu, cs)
		}
		if cp > cs+cs/20 {
			t.Errorf("%v: SDO-perfect (%d) much slower than STT (%d)", m, cp, cs)
		}
	}
}

func TestPerfectPredictorNeverSquashesOnOblFail(t *testing.T) {
	prog, init := taintedLoadGadget()
	for _, m := range []AttackModel{Spectre, Futuristic} {
		core, _ := runOn(t, ProtSDO, m, true, "perfect", prog, init)
		st := core.Stats()
		if st.Squashes[sqOblFail] != 0 {
			t.Errorf("%v: perfect predictor caused %d obl-fail squashes", m, st.Squashes[sqOblFail])
		}
		if st.PredInaccurate != 0 {
			t.Errorf("%v: perfect predictor recorded %d inaccurate predictions", m, st.PredInaccurate)
		}
	}
}

func TestStaticL1CausesFailSquashes(t *testing.T) {
	// The gadget's first loads stream through 200*8 bytes: cold misses
	// guarantee the L1 predictor fails sometimes (B before C happens under
	// Spectre because the loop branch depends on untainted counters).
	prog, init := taintedLoadGadget()
	core, _ := runOn(t, ProtSDO, Spectre, true, "l1", prog, init)
	st := core.Stats()
	if st.OblFail == 0 {
		t.Error("static L1 should see Obl-Ld failures on this workload")
	}
}

func TestBranchMispredictsRecover(t *testing.T) {
	// Alternating unpredictable branches based on loaded data.
	b := isa.NewBuilder().
		MovI(isa.R1, 0x9000).
		MovI(isa.R2, 0).
		MovI(isa.R3, 100).
		MovI(isa.R4, 0).
		MovI(isa.R7, 0).
		Label("loop").
		Load(isa.R5, isa.R1, 0).
		Beq(isa.R5, isa.R7, "zero").
		AddI(isa.R4, isa.R4, 2).
		Jmp("next").
		Label("zero").
		AddI(isa.R4, isa.R4, 1).
		Label("next").
		AddI(isa.R1, isa.R1, 8).
		AddI(isa.R2, isa.R2, 1).
		Blt(isa.R2, isa.R3, "loop").
		Halt()
	prog := b.MustBuild()
	// Pseudo-random pattern.
	init := func(m *isa.Memory) {
		x := uint64(12345)
		for i := 0; i < 100; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			m.Write64(uint64(0x9000+i*8), (x>>33)&1)
		}
	}
	checkEquivalence(t, prog, init)
	core, _ := runOn(t, ProtNone, Spectre, false, "", prog, init)
	if core.Stats().BranchMispredicts == 0 {
		t.Error("random branch pattern should mispredict sometimes")
	}
	if core.Stats().Squashes[sqBranch] == 0 {
		t.Error("mispredicts should squash")
	}
}

func TestMemOrderViolationDetected(t *testing.T) {
	// A store whose address arrives late (dependent on a slow divide),
	// with a younger load to the same address that executes earlier: the
	// load speculatively reads stale memory and must be squashed when the
	// store's address resolves.
	prog := isa.NewBuilder().
		MovI(isa.R1, 0x7000).
		MovI(isa.R3, 7).
		MovI(isa.R4, 49).
		MovI(isa.R8, 99).
		Div(isa.R5, isa.R4, isa.R3).     // 7, slow
		Mul(isa.R5, isa.R5, isa.R5).     // 49
		AddI(isa.R5, isa.R5, 0x7000-49). // 0x7000
		Store(isa.R8, isa.R5, 0).        // address resolves late
		Load(isa.R6, isa.R1, 0).         // must read 99
		Halt().
		MustBuild()
	checkEquivalence(t, prog, nil)
	core, _ := runOn(t, ProtNone, Spectre, false, "", prog, nil)
	if core.Regs()[isa.R6] != 99 {
		t.Fatalf("load read %d, want 99", core.Regs()[isa.R6])
	}
}

func TestHaltOnWrongPathDoesNotStopSim(t *testing.T) {
	// A mispredicted branch that falls through into Halt must not halt the
	// machine once the misprediction is repaired.
	b := isa.NewBuilder().
		MovI(isa.R1, 1).
		MovI(isa.R2, 1).
		Beq(isa.R1, isa.R2, "go"). // always taken; cold predictor says not-taken
		Halt().                    // wrong path
		Label("go").
		MovI(isa.R3, 42).
		Halt()
	prog := b.MustBuild()
	core, _ := runOn(t, ProtNone, Spectre, false, "", prog, nil)
	if core.Regs()[isa.R3] != 42 {
		t.Fatalf("R3 = %d, want 42", core.Regs()[isa.R3])
	}
}

func TestRdCycMonotone(t *testing.T) {
	prog := isa.NewBuilder().
		RdCyc(isa.R1).
		MovI(isa.R5, 1000).
		Label("spin").
		AddI(isa.R5, isa.R5, -1).
		MovI(isa.R9, 0).
		Bne(isa.R5, isa.R9, "spin").
		RdCyc(isa.R2).
		Halt().
		MustBuild()
	core, _ := runOn(t, ProtNone, Spectre, false, "", prog, nil)
	r := core.Regs()
	if r[isa.R2] <= r[isa.R1] {
		t.Fatalf("rdcyc not monotone: %d then %d", r[isa.R1], r[isa.R2])
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	s.Squashes[sqBranch] = 3
	s.Squashes[sqOblFail] = 2
	if s.TotalSquashes() != 5 {
		t.Fatal("TotalSquashes")
	}
	m := s.SquashesByCause()
	if m["branch"] != 3 || m["obl-fail"] != 2 {
		t.Fatalf("by cause: %v", m)
	}
	s.Cycles, s.Committed = 100, 250
	if s.IPC() != 2.5 {
		t.Fatalf("IPC = %v", s.IPC())
	}
}

func TestProtectionStrings(t *testing.T) {
	if ProtNone.String() != "Unsafe" || ProtSTT.String() != "STT" || ProtSDO.String() != "STT+SDO" {
		t.Fatal("protection names")
	}
	if Spectre.String() != "Spectre" || Futuristic.String() != "Futuristic" {
		t.Fatal("model names")
	}
}
