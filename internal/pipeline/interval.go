package pipeline

// Interval statistics (the time-series view of Stats): with sampling
// enabled, the core snapshots the cumulative counters every K cycles and
// hands the per-interval delta — plus average ROB/LQ occupancy over the
// interval — to a callback. The deltas partition the run exactly: summing
// every sample's Delta reproduces the cumulative Stats accrued since
// sampling was enabled (tested in interval_test.go), so warmup exclusion
// and interval decomposition cannot drift apart.
//
// The collector also maintains run-level ROB and LQ occupancy histograms
// (OccupancyBuckets equal-width buckets over each structure's capacity),
// fed once per cycle while sampling is enabled.

// OccupancyBuckets is the number of equal-width buckets in the ROB/LQ
// occupancy histograms.
const OccupancyBuckets = 8

// IntervalSample is one interval's statistics.
type IntervalSample struct {
	// Cycle is the cycle count at the end of the interval (monotonically
	// increasing across samples).
	Cycle uint64
	// Delta holds the counters accrued during this interval only
	// (cur.Sub(prev), so every Stats field participates).
	Delta Stats
	// AvgROBOcc and AvgLQOcc are the mean ROB / load-queue occupancy over
	// the interval's cycles.
	AvgROBOcc, AvgLQOcc float64
}

// intervalState is the per-core collector.
type intervalState struct {
	every     uint64 // 0: disabled
	fn        func(IntervalSample)
	last      Stats  // cumulative stats at the previous boundary
	lastCycle uint64 // cycle of the previous boundary
	robOccSum uint64
	lqOccSum  uint64
	robHist   [OccupancyBuckets]uint64
	lqHist    [OccupancyBuckets]uint64
}

// EnableIntervalSampling starts interval statistics: every `every` cycles
// the per-interval Stats delta is delivered to fn. Call after warmup so
// the series covers exactly the measurement window; call FlushInterval
// after the run to emit the trailing partial interval. Sampling costs two
// counter additions per cycle and one Stats copy per interval; with
// every == 0 it is disabled entirely.
func (c *Core) EnableIntervalSampling(every uint64, fn func(IntervalSample)) {
	c.interval = intervalState{every: every, fn: fn, last: c.stats, lastCycle: c.cycle}
}

// sampleInterval runs once per cycle while enabled (called from Step).
func (c *Core) sampleInterval() {
	iv := &c.interval
	rob := c.tailSeq - c.headSeq
	lq := uint64(len(c.lq))
	iv.robOccSum += rob
	iv.lqOccSum += lq
	iv.robHist[occBucket(rob, uint64(c.cfg.ROBSize))]++
	iv.lqHist[occBucket(lq, uint64(c.cfg.LQSize))]++
	if c.cycle-iv.lastCycle >= iv.every {
		c.emitInterval()
	}
}

// emitInterval closes the current interval and delivers it.
func (c *Core) emitInterval() {
	iv := &c.interval
	cycles := c.cycle - iv.lastCycle
	if cycles == 0 {
		return
	}
	s := IntervalSample{
		Cycle:     c.cycle,
		Delta:     c.stats.Sub(iv.last),
		AvgROBOcc: float64(iv.robOccSum) / float64(cycles),
		AvgLQOcc:  float64(iv.lqOccSum) / float64(cycles),
	}
	iv.last = c.stats
	iv.lastCycle = c.cycle
	iv.robOccSum, iv.lqOccSum = 0, 0
	if iv.fn != nil {
		iv.fn(s)
	}
}

// FlushInterval emits the trailing partial interval (if any cycles have
// accrued since the last boundary), so the sample deltas always sum to
// the full measurement window.
func (c *Core) FlushInterval() {
	if c.interval.every != 0 {
		c.emitInterval()
	}
}

// OccupancyHistograms returns the run-level ROB and load-queue occupancy
// histograms gathered while interval sampling was enabled: bucket i
// counts cycles with occupancy in [i, i+1)·capacity/OccupancyBuckets.
func (c *Core) OccupancyHistograms() (rob, lq [OccupancyBuckets]uint64) {
	return c.interval.robHist, c.interval.lqHist
}

// occBucket maps an occupancy in [0, cap] to a histogram bucket.
func occBucket(occ, capacity uint64) int {
	if capacity == 0 {
		return 0
	}
	b := int(occ * OccupancyBuckets / (capacity + 1))
	if b >= OccupancyBuckets {
		b = OccupancyBuckets - 1
	}
	return b
}
