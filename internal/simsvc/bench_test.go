package simsvc

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// benchSweep runs one full sweep on a fresh service and returns once the
// job is terminal.
func benchSweep(b *testing.B, cfg Config) {
	b.Helper()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	j, err := s.Submit(smallReq())
	if err != nil {
		b.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		b.Fatalf("sweep timed out: %+v", j.Status())
	}
	if st := j.Status(); st.State != JobDone {
		b.Fatalf("sweep state %s, err %q", st.State, st.Error)
	}
}

// BenchmarkSweepColdLocal is the baseline: a 4-cell sweep on a node with
// an empty cache and no peers — every cell simulated locally.
func BenchmarkSweepColdLocal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSweep(b, Config{Workers: 2})
	}
}

// BenchmarkSweepPeerHit is the same sweep on a cold node whose peer
// already holds every result: all cells are answered over the peering
// fabric, none simulated. The ratio to BenchmarkSweepColdLocal is the
// peering win for warm-fabric sweeps.
func BenchmarkSweepPeerHit(b *testing.B) {
	warm, err := New(Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer warm.Shutdown(context.Background())
	j, err := warm.Submit(smallReq())
	if err != nil {
		b.Fatal(err)
	}
	<-j.Done()
	srv := httptest.NewServer(warm.Handler())
	defer srv.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSweep(b, Config{Workers: 2, Peers: []string{srv.URL}, PeerProbeInterval: -1})
	}
}
