package simsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs/trace"
)

// The service side of cache peering. The wire format of GET /cache/{key}
// is exactly one persisted cache entry — {key, sum, result} with the
// same integrity checksum the on-disk cache carries — so a peer response
// is vetted by the same rule as a loaded cache file: re-compact the
// result, recompute the sum, drop on mismatch. A corrupt peer can cost a
// lookup, never poison the determinism guarantee.

// decodePeerEntry parses and verifies a peer /cache response body.
func decodePeerEntry(key string, body []byte) (core.Result, error) {
	var e cacheEntry
	if err := json.Unmarshal(body, &e); err != nil {
		return core.Result{}, fmt.Errorf("simsvc: peer entry: %w", err)
	}
	if e.Key != key {
		return core.Result{}, fmt.Errorf("simsvc: peer entry key mismatch (got %q)", e.Key)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, e.Result); err != nil {
		return core.Result{}, fmt.Errorf("simsvc: peer entry result: %w", err)
	}
	if entrySum(key, compact.Bytes()) != e.Sum {
		return core.Result{}, fmt.Errorf("simsvc: peer entry checksum mismatch")
	}
	var r core.Result
	if err := json.Unmarshal(e.Result, &r); err != nil {
		return core.Result{}, fmt.Errorf("simsvc: peer entry result: %w", err)
	}
	return r, nil
}

// validatePeerEntry is the fabric's Validate hook: a body that fails it
// counts as a peer failure (breaker food), not a hit.
func validatePeerEntry(key string, body []byte) error {
	_, err := decodePeerEntry(key, body)
	return err
}

// peerLookup consults the peer fabric for a content-addressed key under
// a peer-lookup trace span. Misses and every failure mode come back as
// (zero, false): the caller's fallback is local simulation.
func (s *Service) peerLookup(root *trace.Span, key string) (core.Result, string, bool) {
	if s.fab == nil {
		return core.Result{}, "", false
	}
	ps := root.Child(trace.PhasePeer)
	start := time.Now()
	body, peerURL, ok := s.fab.Lookup(s.ctx, key)
	s.peerDur.Observe(time.Since(start).Seconds())
	ps.Set("hit", strconv.FormatBool(ok))
	if ok {
		ps.Set("peer", peerURL)
	}
	ps.Finish()
	if !ok {
		return core.Result{}, "", false
	}
	// The fabric already ran validatePeerEntry on this body; a decode
	// failure here would be a programming error, and degrading to a miss
	// keeps even that failure-safe.
	r, err := decodePeerEntry(key, body)
	if err != nil {
		return core.Result{}, "", false
	}
	return r, peerURL, true
}
