package simsvc

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/obs/trace"
	"repro/internal/simpoint"
)

// Artifact peering (the cluster's third pillar). The expensive per-
// workload artifacts — functional-warmup checkpoints and SimPoint
// sampling plans — are content-addressed exactly like results: the
// on-disk store names each file by artifactName(key), a hash of the
// same key the in-memory tiers use. With Config.PeerArtifacts on, a
// node serves its store over GET /artifacts/{ckpt,plan}/{hash} and, on
// a local memory+disk miss, consults the fabric (same rendezvous
// ranking, breakers and hedging as result lookups, via LookupPath)
// before capturing or profiling from scratch. So a stolen or resumed
// cell never re-warms or re-profiles what any cluster peer already has.
//
// The wire format mirrors the result entries' integrity rule: an
// envelope carrying the hash, a checksum over (hash, gob bytes), and
// the gob payload. The receiver re-verifies the checksum, then gob-
// decodes and validates the artifact's build inputs (warmup budget,
// window, sampling config) exactly as ckptStore.load does for disk
// files — a corrupt or stale peer artifact degrades to a local
// capture, never a wrong simulation.

// artifactEntry is the wire form of one peered artifact.
type artifactEntry struct {
	// Hash is artifactName(key): the content address both sides use.
	Hash string `json:"hash"`
	// Sum is entrySum over (Hash, Data), verified on receipt.
	Sum string `json:"sum"`
	// Data is the raw gob encoding, as stored on disk.
	Data []byte `json:"data"`
}

// encodeArtifact wraps raw gob bytes for the wire.
func encodeArtifact(hash string, data []byte) ([]byte, error) {
	return json.Marshal(artifactEntry{Hash: hash, Sum: entrySum(hash, data), Data: data})
}

// decodeArtifact parses and checksums a peer artifact body.
func decodeArtifact(hash string, body []byte) ([]byte, error) {
	var e artifactEntry
	if err := json.Unmarshal(body, &e); err != nil {
		return nil, fmt.Errorf("simsvc: peer artifact: %w", err)
	}
	if e.Hash != hash {
		return nil, fmt.Errorf("simsvc: peer artifact hash mismatch (got %q)", e.Hash)
	}
	if entrySum(hash, e.Data) != e.Sum {
		return nil, fmt.Errorf("simsvc: peer artifact checksum mismatch")
	}
	return e.Data, nil
}

// validateArtifact is the fabric LookupPath validator for hash: a body
// that fails it counts as a peer failure, not a hit.
func validateArtifact(hash string, body []byte) error {
	_, err := decodeArtifact(hash, body)
	return err
}

// ArtifactEntry serves one stored artifact ("ckpt" or "plan") in wire
// form, for the /artifacts endpoints. False: not stored here.
func (s *Service) ArtifactEntry(kind, hash string) ([]byte, bool) {
	data, ok := s.ckstore.readArtifact(kind, hash)
	if !ok {
		return nil, false
	}
	body, err := encodeArtifact(hash, data)
	if err != nil {
		return nil, false
	}
	return body, true
}

// peerCheckpoint consults the fabric for the warmup checkpoint keyed by
// key, under a ckpt-peer-lookup span. Any failure — peering off, no
// peer holds it, corrupt body, warmup mismatch — is a miss; the caller
// captures locally.
func (s *Service) peerCheckpoint(parent *trace.Span, key string, warmup uint64) *arch.Checkpoint {
	if !s.cfg.PeerArtifacts || s.fab == nil {
		return nil
	}
	hash := artifactName(key)
	sp := parent.Child(trace.PhaseCkptPeer)
	sp.Set("kind", "ckpt")
	start := time.Now()
	body, peerURL, ok := s.fab.LookupPath(s.ctx, hash, "/artifacts/ckpt/"+hash, validateArtifact)
	s.peerDur.Observe(time.Since(start).Seconds())
	var ck *arch.Checkpoint
	if ok {
		if data, err := decodeArtifact(hash, body); err == nil {
			if c, err := arch.Decode(bytes.NewReader(data)); err == nil && c.WarmupInstrs == warmup {
				ck = c
			}
		}
	}
	sp.Set("hit", strconv.FormatBool(ck != nil))
	if ck != nil {
		sp.Set("peer", peerURL)
	}
	sp.Finish()
	if ck == nil {
		return nil
	}
	s.ckptPeerHits.Add(1)
	s.event("ckpt-peer-hit", fmt.Sprintf("%s from %s", key, peerURL))
	// Persist best-effort so the next restart (and our own peers) have it.
	if s.ckstore.enabled() {
		if err := s.ckstore.save(key, ck); err == nil {
			s.ckptsPersisted.Add(1)
		}
	}
	return ck
}

// peerPlan consults the fabric for the sampling plan keyed by key,
// under a ckpt-peer-lookup span, validating the plan's build inputs
// like a disk load. Any failure is a miss; the caller profiles locally.
func (s *Service) peerPlan(parent *trace.Span, key string, spec RunSpec, cfg simpoint.Config) *harness.SamplePlan {
	if !s.cfg.PeerArtifacts || s.fab == nil {
		return nil
	}
	hash := artifactName(key)
	sp := parent.Child(trace.PhaseCkptPeer)
	sp.Set("kind", "plan")
	start := time.Now()
	body, peerURL, ok := s.fab.LookupPath(s.ctx, hash, "/artifacts/plan/"+hash, validateArtifact)
	s.peerDur.Observe(time.Since(start).Seconds())
	var plan *harness.SamplePlan
	if ok {
		if data, err := decodeArtifact(hash, body); err == nil {
			var pf planFile
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&pf); err == nil &&
				pf.Plan != nil && pf.Warmup == spec.WarmupInstrs && pf.Window == spec.MaxInstrs &&
				pf.Cfg == cfg && len(pf.Checkpoints) == len(pf.Plan.Reps) {
				plan = &harness.SamplePlan{Plan: pf.Plan, Checkpoints: pf.Checkpoints}
			}
		}
	}
	sp.Set("hit", strconv.FormatBool(plan != nil))
	if plan != nil {
		sp.Set("peer", peerURL)
	}
	sp.Finish()
	if plan == nil {
		return nil
	}
	s.planPeerHits.Add(1)
	s.event("plan-peer-hit", fmt.Sprintf("%s from %s", key, peerURL))
	if s.ckstore.enabled() {
		if err := s.ckstore.savePlan(key, spec.WarmupInstrs, spec.MaxInstrs, cfg, plan); err == nil {
			s.plansPersisted.Add(1)
		}
	}
	return plan
}
