package simsvc

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/specexec"
)

// specReq is a one-cell sweep for speculation tests, parameterized by
// workload and variant so tests can build distinct-but-related requests.
func specReq(workload, variant string) SweepRequest {
	warmup := uint64(1000)
	return SweepRequest{
		Workloads:    []string{workload},
		Variants:     []string{variant},
		Models:       []string{"spectre"},
		MaxInstrs:    2000,
		WarmupInstrs: &warmup,
	}
}

func pollUntil(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// TestSpeculationHit is the end-to-end payoff path: a service that has
// seen the pattern A→B pre-executes B's cells after A arrives, and the
// demand submission of B is then served with zero re-simulation.
func TestSpeculationHit(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "history.jsonl")
	reqA := specReq("exchange2_r", "unsafe")
	reqB := specReq("exchange2_r", "hybrid")

	// Teach the pattern: one service sees A then B and journals it.
	s1 := newService(t, Config{Workers: 2, Speculate: true, SpecJournal: journal})
	submitAndWait(t, s1, reqA)
	submitAndWait(t, s1, reqB)
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A restarted service (fresh cache, same journal) predicts B from A.
	s2 := newService(t, Config{Workers: 2, Speculate: true, SpecJournal: journal})
	defer s2.Shutdown(context.Background())
	submitAndWait(t, s2, reqA)

	_, cellsB, err := s2.resolve(reqB)
	if err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "speculative pre-execution of B", 30*time.Second, func() bool {
		for _, c := range cellsB {
			key, err := c.CacheKey()
			if err != nil || !s2.cache.Contains(key) {
				return false
			}
		}
		return true
	})
	before := s2.Snapshot()
	if before.SpecCellsExecuted == 0 {
		t.Fatalf("no speculative cells executed: %+v", before)
	}

	j := submitAndWait(t, s2, reqB)
	after := s2.Snapshot()
	if after.RunsExecuted != before.RunsExecuted {
		t.Errorf("demand B re-simulated %d runs, want 0 (speculation hit)",
			after.RunsExecuted-before.RunsExecuted)
	}
	if st := j.Status(); st.Cached != st.Total {
		t.Errorf("B served %d/%d cells from cache", st.Cached, st.Total)
	}
	if after.SpecHits == 0 {
		t.Error("speculation hit not credited")
	}
	if gov := s2.SpecStatus().Governor; gov.UsefulCPUSeconds <= 0 {
		t.Errorf("governor credited no useful compute: %+v", gov)
	}
}

// writeJournal hand-writes a predictor journal teaching the transition
// chain docs[0] → docs[1] → …, using the same normalized documents the
// service's own observe path would have produced.
func writeJournal(t *testing.T, s *Service, path string, reqs ...SweepRequest) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, req := range reqs {
		opt, _, err := s.resolve(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(normalizedRequest(opt, req.Ablations))
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(specexec.Submission{Sig: specexec.Signature(raw), Raw: raw}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpeculationCancellation is the squash path: a running speculative
// cell is cancelled the moment a demand submission that does not need it
// arrives, its compute is accounted as waste, and — with a spent budget —
// the governor pins speculation off.
func TestSpeculationCancellation(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "history.jsonl")
	reqA := specReq("exchange2_r", "unsafe")
	reqC := specReq("deepsjeng_r", "unsafe") // the (mis)predicted follow-up
	reqD := specReq("exchange2_r", "hybrid") // what actually arrives

	scratch := newService(t, Config{Workers: 1})
	writeJournal(t, scratch, journal, reqA, reqC)
	if err := scratch.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Every cell attempt sleeps 3s before simulating (cancellably), so
	// the speculative run of C is reliably still in flight when D lands.
	inj := faults.New(faults.Config{Seed: 1, SlowProb: 1, SlowDelay: 3 * time.Second})
	s := newService(t, Config{
		Workers: 1, Speculate: true, SpecJournal: journal,
		SpecBudget: time.Nanosecond, // any waste exhausts the budget
		Faults:     inj,
	})
	defer s.Shutdown(context.Background())

	submitAndWait(t, s, reqA)
	pollUntil(t, "a speculative flight to start", 30*time.Second, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, f := range s.inflight {
			if f.spec {
				return true
			}
		}
		return false
	})

	// D needs none of C's cells: Submit preempts the speculative flight.
	submitAndWait(t, s, reqD)
	pollUntil(t, "the cancellation to be accounted", 10*time.Second, func() bool {
		return s.Snapshot().SpecCancellations >= 1
	})

	m := s.Snapshot()
	if m.SpecWastedCPUSeconds <= 0 {
		t.Errorf("cancelled speculation accounted no waste: %+v", m)
	}
	st := s.SpecStatus()
	if st.Governor.State != "exhausted" {
		t.Errorf("governor state = %q, want exhausted (budget %v, wasted %.3fs)",
			st.Governor.State, time.Nanosecond, st.Governor.WastedCPUSeconds)
	}
	// An exhausted governor launches nothing further.
	if got := s.Snapshot().SpecBacklog; got != 0 {
		t.Errorf("exhausted governor still has backlog %d", got)
	}
}

// TestSpeculationThrottleRecovers exercises the hit-rate throttle at the
// specexec layer as the service wires it: persistent misses throttle,
// later hits recover.
func TestSpeculationThrottle(t *testing.T) {
	gov := specexec.NewGovernor(specexec.GovernorConfig{MinSamples: 4, MinHitRate: 0.5})
	for i := 0; i < 4; i++ {
		gov.Waste(time.Millisecond)
	}
	if gov.Allow() {
		t.Fatal("governor allows speculation at 0% hit-rate")
	}
	if got := gov.State(); got != specexec.StateThrottled {
		t.Fatalf("state = %v, want throttled", got)
	}
	for i := 0; i < 8; i++ {
		gov.Hit(time.Millisecond)
	}
	if !gov.Allow() {
		t.Fatal("governor still throttled after hit-rate recovered")
	}
}

// TestSpeculationOffIsInvisible: without Speculate the service carries no
// speculation state, registers no /spec route and reports zero spec
// metrics — flag-off behavior is byte-identical to the pre-subsystem
// service.
func TestSpeculationOffIsInvisible(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())
	if s.spec != nil {
		t.Fatal("speculation engine exists without Speculate")
	}
	if st := s.SpecStatus(); st.Enabled {
		t.Fatal("SpecStatus claims enabled")
	}
	submitAndWait(t, s, specReq("exchange2_r", "unsafe"))
	m := s.Snapshot()
	if m.SpecPredictions != 0 || m.SpecCellsExecuted != 0 || m.SpecHits != 0 {
		t.Fatalf("spec metrics non-zero with speculation off: %+v", m)
	}
}

// TestSpecJournalDefault: with a cache path configured, the journal
// defaults to sitting next to it.
func TestSpecJournalDefault(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache.json")
	s := newService(t, Config{Workers: 1, Speculate: true, CachePath: cache})
	defer s.Shutdown(context.Background())
	if got, want := s.cfg.SpecJournal, cache+".history"; got != want {
		t.Fatalf("SpecJournal = %q, want %q", got, want)
	}
	submitAndWait(t, s, specReq("exchange2_r", "unsafe"))
	if _, err := os.Stat(cache + ".history"); err != nil {
		t.Fatalf("journal not written: %v", err)
	}
}
