package simsvc

import (
	"context"
	"errors"
	"sync"

	"repro/internal/core"
	"repro/internal/harness"
)

// JobState is a sweep job's lifecycle state.
type JobState string

const (
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// ErrCancelled marks cells abandoned because their job (or the service)
// was cancelled.
var ErrCancelled = errors.New("simsvc: job cancelled")

// Job is one submitted sweep: its resolved options, per-cell results as
// they arrive, and progress lines for streaming.
type Job struct {
	ID string

	opt    harness.Options
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     JobState
	total     int
	completed int
	cached    int
	progress  []string
	runs      map[harness.Key]core.Result
	err       error
	done      chan struct{}
}

// Options returns the job's resolved sweep options.
func (j *Job) Options() harness.Options { return j.opt }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel abandons the job: cells not yet started are skipped; a cell
// already simulating still completes (and populates the cache) but is no
// longer recorded against this job.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state == JobRunning {
		j.state = JobCancelled
		j.err = ErrCancelled
		close(j.done)
	}
	j.mu.Unlock()
	j.cancel()
}

// terminal reports whether the job has finished (under j.mu).
func (j *Job) terminal() bool { return j.state != JobRunning }

// deliver records one completed cell.
func (j *Job) deliver(k harness.Key, r core.Result, line string, fromCache bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal() {
		return
	}
	j.runs[k] = r
	j.completed++
	if fromCache {
		j.cached++
	}
	j.progress = append(j.progress, line)
	if j.completed == j.total {
		j.state = JobDone
		close(j.done)
	}
}

// fail moves the job to failed (or cancelled, for cancellation errors).
func (j *Job) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal() {
		return
	}
	j.err = err
	if errors.Is(err, context.Canceled) || errors.Is(err, ErrCancelled) {
		j.state = JobCancelled
	} else {
		j.state = JobFailed
	}
	close(j.done)
	j.cancel()
}

// skip abandons one cell because the job or service is shutting down.
func (j *Job) skip() { j.fail(ErrCancelled) }

// Status is a snapshot of the job's progress.
type Status struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Total     int      `json:"total_runs"`
	Completed int      `json:"completed_runs"`
	Cached    int      `json:"cached_runs"`
	Error     string   `json:"error,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		State:     j.state,
		Total:     j.total,
		Completed: j.completed,
		Cached:    j.cached,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// ProgressSince returns progress lines from index i on, plus the new
// high-water mark.
func (j *Job) ProgressSince(i int) ([]string, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i >= len(j.progress) {
		return nil, i
	}
	out := append([]string(nil), j.progress[i:]...)
	return out, len(j.progress)
}

// Results assembles the completed sweep in the harness's form, so the
// service's export is produced by exactly the code path the CLI uses.
func (j *Job) Results() (*harness.Results, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone {
		if j.err != nil {
			return nil, j.err
		}
		return nil, errors.New("simsvc: job still running")
	}
	runs := make(map[harness.Key]core.Result, len(j.runs))
	for k, r := range j.runs {
		runs[k] = r
	}
	return &harness.Results{Opt: j.opt, Runs: runs}, nil
}
