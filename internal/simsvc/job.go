package simsvc

import (
	"context"
	"errors"
	"sync"

	"repro/internal/core"
	"repro/internal/harness"
)

// JobState is a sweep job's lifecycle state.
type JobState string

const (
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// ErrCancelled marks cells abandoned because their job (or the service)
// was cancelled.
var ErrCancelled = errors.New("simsvc: job cancelled")

// Job is one submitted sweep: its resolved options, per-cell results as
// they arrive, and progress lines for streaming.
type Job struct {
	ID string

	opt    harness.Options
	ctx    context.Context
	cancel context.CancelFunc

	// ablation marks a design-space-study job: cells enumerate (model,
	// workload, ablation row) and results are recorded by cell index,
	// because the harness.Key (workload, Hybrid, model) repeats across the
	// rows and would collide in the runs map.
	ablation bool
	cellRes  []core.Result

	mu        sync.Mutex
	state     JobState
	total     int
	completed int
	cached    int
	progress  []string
	runs      map[harness.Key]core.Result
	err       error
	done      chan struct{}
}

// Ablation reports whether this is an ablation-study job (its export is
// the ablation table, not the sweep document).
func (j *Job) Ablation() bool { return j.ablation }

// Options returns the job's resolved sweep options.
func (j *Job) Options() harness.Options { return j.opt }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel abandons the job: cells not yet started are skipped; a cell
// already simulating still completes (and populates the cache) but is no
// longer recorded against this job.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state == JobRunning {
		j.state = JobCancelled
		j.err = ErrCancelled
		close(j.done)
	}
	j.mu.Unlock()
	j.cancel()
}

// terminal reports whether the job has finished (under j.mu).
func (j *Job) terminal() bool { return j.state != JobRunning }

// deliver records one completed cell. idx is the cell's index in the
// job's enumeration order (ablation jobs record by index; sweep jobs by
// harness.Key).
func (j *Job) deliver(idx int, k harness.Key, r core.Result, line string, fromCache bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal() {
		return
	}
	if j.ablation {
		j.cellRes[idx] = r
	} else {
		j.runs[k] = r
	}
	j.completed++
	if fromCache {
		j.cached++
	}
	j.progress = append(j.progress, line)
	if j.completed == j.total {
		j.state = JobDone
		close(j.done)
	}
}

// fail moves the job to failed (or cancelled, for cancellation errors).
func (j *Job) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal() {
		return
	}
	j.err = err
	if errors.Is(err, context.Canceled) || errors.Is(err, ErrCancelled) {
		j.state = JobCancelled
	} else {
		j.state = JobFailed
	}
	close(j.done)
	j.cancel()
}

// skip abandons one cell because the job or service is shutting down.
func (j *Job) skip() { j.fail(ErrCancelled) }

// Status is a snapshot of the job's progress.
type Status struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Total     int      `json:"total_runs"`
	Completed int      `json:"completed_runs"`
	Cached    int      `json:"cached_runs"`
	Error     string   `json:"error,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		State:     j.state,
		Total:     j.total,
		Completed: j.completed,
		Cached:    j.cached,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// ProgressSince returns progress lines from index i on, plus the new
// high-water mark.
func (j *Job) ProgressSince(i int) ([]string, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i >= len(j.progress) {
		return nil, i
	}
	out := append([]string(nil), j.progress[i:]...)
	return out, len(j.progress)
}

// Results assembles the completed sweep in the harness's form, so the
// service's export is produced by exactly the code path the CLI uses.
func (j *Job) Results() (*harness.Results, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ablation {
		return nil, errors.New("simsvc: ablation job has no sweep export (see Ablations)")
	}
	if j.state != JobDone {
		if j.err != nil {
			return nil, j.err
		}
		return nil, errors.New("simsvc: job still running")
	}
	runs := make(map[harness.Key]core.Result, len(j.runs))
	for k, r := range j.runs {
		runs[k] = r
	}
	return &harness.Results{Opt: j.opt, Runs: runs}, nil
}

// AblationSection is one attack model's ablation table.
type AblationSection struct {
	Model string                `json:"model"`
	Rows  []harness.AblationRow `json:"rows"`
}

// AblationExport is the machine-readable ablation-study document the
// export endpoint serves for ablation jobs.
type AblationExport struct {
	MaxInstrs    uint64            `json:"max_instrs"`
	WarmupInstrs uint64            `json:"warmup_instrs"`
	Sections     []AblationSection `json:"ablations"`
}

// Ablations aggregates a completed ablation job into per-model tables,
// using the same aggregation the CLI's RunAblations performs. Cell order
// (fixed by Submit) is model-major, then workload, then 1 Unsafe baseline
// followed by the harness's ablation rows.
func (j *Job) Ablations() (*AblationExport, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.ablation {
		return nil, errors.New("simsvc: not an ablation job")
	}
	if j.state != JobDone {
		if j.err != nil {
			return nil, j.err
		}
		return nil, errors.New("simsvc: job still running")
	}
	ex := &AblationExport{MaxInstrs: j.opt.MaxInstrs, WarmupInstrs: j.opt.WarmupInstrs}
	rowsPer := len(harness.AblationRows())
	perWorkload := 1 + rowsPer
	perModel := len(j.opt.Workloads) * perWorkload
	for mi, m := range j.opt.Models {
		rows := harness.AblationRows()
		cycles := make([][]uint64, len(j.opt.Workloads))
		for wi := range j.opt.Workloads {
			wc := make([]uint64, perWorkload)
			for ci := 0; ci < perWorkload; ci++ {
				wc[ci] = j.cellRes[mi*perModel+wi*perWorkload+ci].Cycles
			}
			cycles[wi] = wc
		}
		harness.AggregateAblations(rows, cycles)
		ex.Sections = append(ex.Sections, AblationSection{Model: m.String(), Rows: rows})
	}
	return ex, nil
}
