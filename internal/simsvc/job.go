package simsvc

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs/trace"
)

// JobState is a sweep job's lifecycle state.
type JobState string

const (
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
	// JobDegraded is a sweep that completed with some cells permanently
	// failed: the surviving cells are exportable (filtered to workloads
	// with no failures), the failures are itemized in Status.
	JobDegraded JobState = "degraded"
)

// Terminal reports whether a state is final.
func (s JobState) Terminal() bool { return s != JobRunning }

// ErrCancelled marks cells abandoned because their job (or the service)
// was cancelled.
var ErrCancelled = errors.New("simsvc: job cancelled")

// Failure itemizes one permanently-failed cell in a job's status.
type Failure struct {
	Cell     string `json:"cell"` // "workload/variant/model"
	Kind     string `json:"kind"` // exec | panic | timeout | stall
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
}

// Job is one submitted sweep: its resolved options, per-cell results as
// they arrive, and progress lines for streaming.
type Job struct {
	ID string

	opt    harness.Options
	ctx    context.Context
	cancel context.CancelFunc

	// ablation marks a design-space-study job: cells enumerate (model,
	// workload, ablation row) and results are recorded by cell index,
	// because the harness.Key (workload, Hybrid, model) repeats across the
	// rows and would collide in the runs map.
	ablation bool
	cellRes  []core.Result

	// jt is the job's span-tree trace (nil with tracing off). Set by
	// Submit before any cell is enqueued, immutable afterwards.
	jt *trace.JobTrace

	// resumed marks a job re-admitted from the job journal after a
	// restart (set before any cell is enqueued, immutable afterwards).
	// Resume accounting splits its cells into skipped (answered by the
	// persisted cache — work the previous life already did) and rerun.
	resumed bool

	// onTerminal, set by the service before the job starts, observes the
	// transition to a terminal state (persistence scheduling, registry
	// eviction). Called exactly once, outside j.mu.
	onTerminal func(*Job)

	mu            sync.Mutex
	state         JobState
	total         int
	completed     int
	cached        int
	resumeSkipped int // resumed job: cells answered from the persisted cache
	resumeRerun   int // resumed job: cells that had to re-simulate
	failed        int
	retries       uint64
	failures      []Failure
	failedIdx     map[int]bool    // ablation cells that failed (by index)
	failedWl      map[string]bool // workloads with ≥ 1 failed cell
	progress      []string
	runs          map[harness.Key]core.Result
	attrib        map[harness.Key]*trace.Attribution // per-cell breakdowns (tracing on, sweep jobs only)
	err           error
	finished      time.Time
	done          chan struct{}
}

// Ablation reports whether this is an ablation-study job (its export is
// the ablation table, not the sweep document).
func (j *Job) Ablation() bool { return j.ablation }

// Options returns the job's resolved sweep options.
func (j *Job) Options() harness.Options { return j.opt }

// Trace returns the job's span-tree trace (nil with tracing off).
func (j *Job) Trace() *trace.JobTrace { return j.jt }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// finish moves the job into a terminal state. Caller holds j.mu; the
// returned func (the onTerminal notification) must be invoked after j.mu
// is released.
func (j *Job) finish(state JobState, err error) func() {
	j.state = state
	j.err = err
	j.finished = time.Now()
	close(j.done)
	if j.onTerminal == nil {
		return func() {}
	}
	return func() { j.onTerminal(j) }
}

// TryCancel atomically cancels the job if it is still running. It returns
// whether this call performed the cancellation, plus the state afterwards
// — so callers can distinguish "cancelled now" (true, cancelled),
// "already cancelled" (false, cancelled — idempotent success) and
// "already finished" (false, done/failed/degraded — a conflict).
func (j *Job) TryCancel() (bool, JobState) {
	j.mu.Lock()
	if j.state != JobRunning {
		st := j.state
		j.mu.Unlock()
		return false, st
	}
	note := j.finish(JobCancelled, ErrCancelled)
	j.mu.Unlock()
	j.cancel()
	note()
	return true, JobCancelled
}

// Cancel abandons the job: cells not yet started are skipped; a cell
// already simulating is abandoned once no other live job waits on it.
func (j *Job) Cancel() { j.TryCancel() }

// terminal reports whether the job has finished (under j.mu).
func (j *Job) terminal() bool { return j.state != JobRunning }

// Terminal reports whether the job has finished.
func (j *Job) Terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminal()
}

// FinishedAt returns when the job reached a terminal state (zero while
// running).
func (j *Job) FinishedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// maybeFinish closes out the job when every cell is accounted for.
// Caller holds j.mu; returns the deferred onTerminal notification.
func (j *Job) maybeFinish() func() {
	if j.completed+j.failed < j.total {
		return func() {}
	}
	if j.failed == 0 {
		return j.finish(JobDone, nil)
	}
	if j.completed == 0 {
		return j.finish(JobFailed, errors.New("simsvc: every cell failed"))
	}
	return j.finish(JobDegraded, nil)
}

// deliver records one completed cell. idx is the cell's index in the
// job's enumeration order (ablation jobs record by index; sweep jobs by
// harness.Key). retries counts attempts beyond the first that the cell
// needed; att is the cell's latency attribution (nil with tracing off).
func (j *Job) deliver(idx int, k harness.Key, r core.Result, line string, fromCache bool, retries int, att *trace.Attribution) {
	j.mu.Lock()
	if j.terminal() {
		j.mu.Unlock()
		return
	}
	if j.ablation {
		j.cellRes[idx] = r
	} else {
		j.runs[k] = r
		if att != nil {
			if j.attrib == nil {
				j.attrib = make(map[harness.Key]*trace.Attribution)
			}
			j.attrib[k] = att
		}
	}
	j.completed++
	j.retries += uint64(retries)
	if fromCache {
		j.cached++
	}
	if j.resumed {
		if fromCache {
			j.resumeSkipped++
		} else {
			j.resumeRerun++
		}
	}
	j.progress = append(j.progress, line)
	note := j.maybeFinish()
	j.mu.Unlock()
	note()
}

// cellFail records one permanently-failed cell; the job keeps running and
// finishes degraded (or failed, if nothing succeeded) once every cell is
// accounted for.
func (j *Job) cellFail(idx int, k harness.Key, f Failure, line string, retries int) {
	j.mu.Lock()
	if j.terminal() {
		j.mu.Unlock()
		return
	}
	j.failed++
	j.retries += uint64(retries)
	if j.resumed {
		j.resumeRerun++
	}
	j.failures = append(j.failures, f)
	if j.failedIdx == nil {
		j.failedIdx = make(map[int]bool)
		j.failedWl = make(map[string]bool)
	}
	j.failedIdx[idx] = true
	j.failedWl[k.Workload] = true
	j.progress = append(j.progress, line)
	note := j.maybeFinish()
	j.mu.Unlock()
	note()
}

// fail moves the job to failed (or cancelled, for cancellation errors).
func (j *Job) fail(err error) {
	j.mu.Lock()
	if j.terminal() {
		j.mu.Unlock()
		return
	}
	var note func()
	if errors.Is(err, context.Canceled) || errors.Is(err, ErrCancelled) {
		note = j.finish(JobCancelled, err)
	} else {
		note = j.finish(JobFailed, err)
	}
	j.mu.Unlock()
	j.cancel()
	note()
}

// skip abandons one cell because the job or service is shutting down.
func (j *Job) skip() { j.fail(ErrCancelled) }

// Status is a snapshot of the job's progress.
type Status struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Total     int      `json:"total_runs"`
	Completed int      `json:"completed_runs"`
	Cached    int      `json:"cached_runs"`
	// Failed counts permanently-failed cells; Retries counts cell
	// attempts beyond the first across the job; Failures itemizes the
	// failed cells.
	Failed   int       `json:"failed_runs,omitempty"`
	Retries  uint64    `json:"retries,omitempty"`
	Failures []Failure `json:"failures,omitempty"`
	Error    string    `json:"error,omitempty"`
	// Resumed marks a job re-admitted from the job journal after a
	// restart; ResumeSkipped / ResumeRerun split its completed cells into
	// ones answered by the persisted cache versus re-simulated.
	Resumed       bool `json:"resumed,omitempty"`
	ResumeSkipped int  `json:"resume_cells_skipped,omitempty"`
	ResumeRerun   int  `json:"resume_cells_rerun,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		State:     j.state,
		Total:     j.total,
		Completed: j.completed,
		Cached:    j.cached,
		Failed:    j.failed,
		Retries:   j.retries,
		Failures:  append([]Failure(nil), j.failures...),

		Resumed:       j.resumed,
		ResumeSkipped: j.resumeSkipped,
		ResumeRerun:   j.resumeRerun,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// ProgressSince returns progress lines from index i on, plus the new
// high-water mark.
func (j *Job) ProgressSince(i int) ([]string, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i >= len(j.progress) {
		return nil, i
	}
	out := append([]string(nil), j.progress[i:]...)
	return out, len(j.progress)
}

// Results assembles the completed sweep in the harness's form, so the
// service's export is produced by exactly the code path the CLI uses. A
// degraded job exports the surviving configuration: workloads with any
// failed cell are dropped entirely (a partial workload would corrupt the
// normalized-time aggregation, which divides by the workload's Unsafe
// baseline), making the export byte-identical to a fault-free run of the
// remaining workloads.
func (j *Job) Results() (*harness.Results, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ablation {
		return nil, errors.New("simsvc: ablation job has no sweep export (see Ablations)")
	}
	if j.state != JobDone && j.state != JobDegraded {
		if j.err != nil {
			return nil, j.err
		}
		return nil, errors.New("simsvc: job still running")
	}
	opt := j.opt
	if len(j.failedWl) > 0 {
		opt.Workloads = nil
		for _, wl := range j.opt.Workloads {
			if !j.failedWl[wl.Name] {
				opt.Workloads = append(opt.Workloads, wl)
			}
		}
	}
	runs := make(map[harness.Key]core.Result, len(j.runs))
	for k, r := range j.runs {
		if j.failedWl[k.Workload] {
			continue
		}
		runs[k] = r
	}
	res := &harness.Results{Opt: opt, Runs: runs}
	if len(j.attrib) > 0 {
		res.Attrib = make(map[harness.Key]*trace.Attribution, len(j.attrib))
		for k, a := range j.attrib {
			if j.failedWl[k.Workload] {
				continue
			}
			res.Attrib[k] = a
		}
	}
	return res, nil
}

// AblationSection is one attack model's ablation table.
type AblationSection struct {
	Model string                `json:"model"`
	Rows  []harness.AblationRow `json:"rows"`
}

// AblationExport is the machine-readable ablation-study document the
// export endpoint serves for ablation jobs.
type AblationExport struct {
	MaxInstrs    uint64            `json:"max_instrs"`
	WarmupInstrs uint64            `json:"warmup_instrs"`
	Sections     []AblationSection `json:"ablations"`
}

// Ablations aggregates a completed ablation job into per-model tables,
// using the same aggregation the CLI's RunAblations performs. Cell order
// (fixed by Submit) is model-major, then workload, then 1 Unsafe baseline
// followed by the harness's ablation rows. In a degraded job, a workload
// block containing any failed cell is zeroed, which AggregateAblations
// skips — matching the CLI's tolerant-ablation behavior.
func (j *Job) Ablations() (*AblationExport, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.ablation {
		return nil, errors.New("simsvc: not an ablation job")
	}
	if j.state != JobDone && j.state != JobDegraded {
		if j.err != nil {
			return nil, j.err
		}
		return nil, errors.New("simsvc: job still running")
	}
	ex := &AblationExport{MaxInstrs: j.opt.MaxInstrs, WarmupInstrs: j.opt.WarmupInstrs}
	rowsPer := len(harness.AblationRows())
	perWorkload := 1 + rowsPer
	perModel := len(j.opt.Workloads) * perWorkload
	for mi, m := range j.opt.Models {
		rows := harness.AblationRows()
		cycles := make([][]uint64, len(j.opt.Workloads))
		for wi := range j.opt.Workloads {
			wc := make([]uint64, perWorkload)
			blockFailed := false
			for ci := 0; ci < perWorkload; ci++ {
				idx := mi*perModel + wi*perWorkload + ci
				if j.failedIdx[idx] {
					blockFailed = true
					break
				}
				wc[ci] = j.cellRes[idx].Cycles
			}
			if blockFailed {
				wc = make([]uint64, perWorkload)
			}
			cycles[wi] = wc
		}
		harness.AggregateAblations(rows, cycles)
		ex.Sections = append(ex.Sections, AblationSection{Model: m.String(), Rows: rows})
	}
	return ex, nil
}
