package simsvc

import (
	"encoding/json"
	"fmt"
)

// resumeJobs re-admits journal-replayed non-terminal sweeps at startup,
// each under its original ID, in submission (ID) order. The resume
// algorithm leans entirely on content addressing: a re-admitted job
// enqueues all of its cells, and every cell whose result survived in the
// persisted cache (or arrives from a peer) resolves as a cache hit —
// only the genuinely missing cells re-simulate. Resumed jobs bypass
// queue backpressure (they were admitted once already) and do not
// re-teach the speculation predictor.
//
// A request that no longer resolves (e.g. a workload was unregistered
// between lives) is journaled as failed rather than retried forever, so
// the journal converges instead of replaying a poison job on every
// restart.
func (s *Service) resumeJobs(jobs []journalJob) {
	for _, jb := range jobs {
		var req SweepRequest
		if err := json.Unmarshal(jb.req, &req); err != nil {
			s.journal.terminal(jb.id, JobFailed)
			s.event("resume-failed", fmt.Sprintf("%s: bad journaled request: %v", jb.id, err))
			continue
		}
		j, err := s.submit(req, submitOpts{id: jb.id, resumed: true})
		if err != nil {
			s.journal.terminal(jb.id, JobFailed)
			s.event("resume-failed", fmt.Sprintf("%s: %v", jb.id, err))
			continue
		}
		st := j.Status()
		s.event("resume-started", fmt.Sprintf("%s: %d cells re-admitted", st.ID, st.Total))
	}
}
