package simsvc

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/simpoint"
)

// ckptDirSuffix names the checkpoint directory next to the result cache:
// CachePath + ckptDirSuffix.
const ckptDirSuffix = ".ckpts"

// ckptStore persists functional-warmup checkpoints (gob, one file per
// checkpoint key) alongside the result cache, so a restarted server
// restores warm state from disk instead of re-simulating warmup. Files
// are content-addressed by the hash of the checkpoint key — the same key
// the in-memory tier uses, so a schema bump or a kernel edit changes the
// file name and stale checkpoints are simply never read again.
//
// The store is strictly best-effort: any failure to save or load is
// reported to the caller's metrics/events and the service falls back to
// capturing in-process, exactly as if the file did not exist.
type ckptStore struct {
	dir string // "" disables the store
	inj *faults.Injector
}

func newCkptStore(cachePath string, inj *faults.Injector) *ckptStore {
	st := &ckptStore{inj: inj}
	if cachePath != "" {
		st.dir = cachePath + ckptDirSuffix
	}
	return st
}

func (st *ckptStore) enabled() bool { return st.dir != "" }

// artifactName maps an artifact key to its content-addressed file base
// name. Keys carry workload names and schema strings; hashing keeps the
// name short, safe and stable — and URL-safe, so the same name addresses
// the artifact in the cluster's GET /artifacts/{kind}/{hash} endpoints.
func artifactName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16])
}

// path maps a checkpoint key to its file.
func (st *ckptStore) path(key string) string {
	return filepath.Join(st.dir, artifactName(key)+".ckpt")
}

// readArtifact returns the raw gob bytes of a stored artifact by kind
// ("ckpt" or "plan") and file base name, for serving to cluster peers.
// The hash is vetted as lowercase hex so a hostile path segment can
// never escape the store directory.
func (st *ckptStore) readArtifact(kind, hash string) ([]byte, bool) {
	if !st.enabled() || st.inj.LoadErr() != nil {
		return nil, false
	}
	if len(hash) != 32 {
		return nil, false
	}
	if _, err := hex.DecodeString(hash); err != nil {
		return nil, false
	}
	var ext string
	switch kind {
	case "ckpt", "plan":
		ext = "." + kind
	default:
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(st.dir, hash+ext))
	if err != nil {
		return nil, false
	}
	return b, true
}

// load reads and validates the checkpoint for key. Any failure — missing
// file, decode error, or a snapshot whose warmup budget does not match —
// yields nil and the caller re-captures.
func (st *ckptStore) load(key string, warmup uint64) *arch.Checkpoint {
	if !st.enabled() || st.inj.LoadErr() != nil {
		return nil
	}
	f, err := os.Open(st.path(key))
	if err != nil {
		return nil
	}
	defer f.Close()
	ck, err := arch.Decode(f)
	if err != nil || ck.WarmupInstrs != warmup {
		return nil
	}
	return ck
}

// planFile is the serialized (gob) form of one sampling plan: the plan
// itself, its representative checkpoints, and the inputs it was built
// from — validated on load so a stale or colliding file is rebuilt
// rather than trusted.
type planFile struct {
	Warmup, Window uint64
	Cfg            simpoint.Config
	Plan           *simpoint.Plan
	Checkpoints    []*arch.Checkpoint
}

// planPath maps a plan key to its file, next to the checkpoints.
func (st *ckptStore) planPath(key string) string {
	return filepath.Join(st.dir, artifactName(key)+".plan")
}

// loadPlan reads and validates the sampling plan for key. Any failure —
// missing file, decode error, or a plan built from different inputs —
// yields nil and the caller rebuilds (one BBV profile + clustering +
// capture pass, exactly as if the file did not exist).
func (st *ckptStore) loadPlan(key string, warmup, window uint64, cfg simpoint.Config) *harness.SamplePlan {
	if !st.enabled() || st.inj.LoadErr() != nil {
		return nil
	}
	f, err := os.Open(st.planPath(key))
	if err != nil {
		return nil
	}
	defer f.Close()
	var pf planFile
	if err := gob.NewDecoder(f).Decode(&pf); err != nil {
		return nil
	}
	if pf.Plan == nil || pf.Warmup != warmup || pf.Window != window || pf.Cfg != cfg ||
		len(pf.Checkpoints) != len(pf.Plan.Reps) {
		return nil
	}
	return &harness.SamplePlan{Plan: pf.Plan, Checkpoints: pf.Checkpoints}
}

// savePlan writes the sampling plan atomically (temp file + rename), so
// a restarted server skips the BBV re-profiling pass entirely.
func (st *ckptStore) savePlan(key string, warmup, window uint64, cfg simpoint.Config, sp *harness.SamplePlan) error {
	if !st.enabled() {
		return nil
	}
	if err := st.inj.SaveErr(); err != nil {
		return fmt.Errorf("simsvc: save plan: %w", err)
	}
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return fmt.Errorf("simsvc: save plan: %w", err)
	}
	tmp, err := os.CreateTemp(st.dir, ".plan-*")
	if err != nil {
		return fmt.Errorf("simsvc: save plan: %w", err)
	}
	defer os.Remove(tmp.Name())
	pf := planFile{Warmup: warmup, Window: window, Cfg: cfg, Plan: sp.Plan, Checkpoints: sp.Checkpoints}
	if err := gob.NewEncoder(tmp).Encode(&pf); err != nil {
		tmp.Close()
		return fmt.Errorf("simsvc: save plan: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("simsvc: save plan: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.planPath(key)); err != nil {
		return fmt.Errorf("simsvc: save plan: %w", err)
	}
	return nil
}

// save writes the checkpoint atomically (temp file + rename); a crash
// mid-save leaves either no file or the previous one.
func (st *ckptStore) save(key string, ck *arch.Checkpoint) error {
	if !st.enabled() {
		return nil
	}
	if err := st.inj.SaveErr(); err != nil {
		return fmt.Errorf("simsvc: save checkpoint: %w", err)
	}
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return fmt.Errorf("simsvc: save checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(st.dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("simsvc: save checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := ck.Encode(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("simsvc: save checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("simsvc: save checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.path(key)); err != nil {
		return fmt.Errorf("simsvc: save checkpoint: %w", err)
	}
	return nil
}
