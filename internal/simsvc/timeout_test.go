package simsvc

import (
	"context"
	"testing"
	"time"
)

// TestAutoTimeout exercises the per-cell deadline auto-tuner: static
// until enough runs are observed, then p99 × autoTimeoutFactor clamped
// to [1s, the configured CellTimeout].
func TestAutoTimeout(t *testing.T) {
	s := newService(t, Config{Workers: 1, AutoTimeout: true, CellTimeout: 45 * time.Second})
	defer s.Shutdown(context.Background())

	// Not enough history: the static configuration stands.
	if got := s.cellTimeout(); got != 45*time.Second {
		t.Fatalf("cold cellTimeout = %v, want the static 45s", got)
	}

	// Fast runs only: 0.1s p99 × 3 = 0.3s clamps up to the 1s floor.
	for i := 0; i < 30; i++ {
		s.runDur.Observe(0.1)
	}
	if got := s.cellTimeout(); got != time.Second {
		t.Fatalf("fast-run cellTimeout = %v, want the 1s floor", got)
	}

	// A slow tail dominates the p99: 30s × 3 = 90s clamps down to the
	// static 45s ceiling.
	for i := 0; i < 30; i++ {
		s.runDur.Observe(25)
	}
	if got := s.cellTimeout(); got != 45*time.Second {
		t.Fatalf("slow-tail cellTimeout = %v, want the 45s ceiling", got)
	}
}

func TestAutoTimeoutMidRange(t *testing.T) {
	// No static ceiling: the derived deadline is used as-is (the p99
	// bucket bound 2.5s × 3 = 7.5s sits inside [1s, 10m]).
	s := newService(t, Config{Workers: 1, AutoTimeout: true})
	defer s.Shutdown(context.Background())
	for i := 0; i < 25; i++ {
		s.runDur.Observe(2.4)
	}
	if got, want := s.cellTimeout(), 7500*time.Millisecond; got != want {
		t.Fatalf("cellTimeout = %v, want %v", got, want)
	}
}

func TestAutoTimeoutDisabled(t *testing.T) {
	s := newService(t, Config{Workers: 1, CellTimeout: 45 * time.Second})
	defer s.Shutdown(context.Background())
	for i := 0; i < 100; i++ {
		s.runDur.Observe(0.1)
	}
	if got := s.cellTimeout(); got != 45*time.Second {
		t.Fatalf("cellTimeout = %v, want the static 45s (auto-tuning off)", got)
	}
}
