package simsvc

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
)

// journalLine marshals one record the way the append path would.
func journalLine(t *testing.T, rec journalRecord) string {
	t.Helper()
	rec.V = journalVersion
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

func writeJournalFile(t *testing.T, path string, lines ...string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, jobs, maxN := openJournal(path, nil)
	if len(jobs) != 0 || maxN != 0 {
		t.Fatalf("fresh journal replayed %d jobs, maxN %d", len(jobs), maxN)
	}
	req1 := json.RawMessage(`{"workloads":["mcf_r"]}`)
	req2 := json.RawMessage(`{"workloads":["gcc_r"]}`)
	if !j.submit("sweep-1", req1) || !j.submit("sweep-2", req2) {
		t.Fatal("append failed on a healthy journal")
	}
	if !j.terminal("sweep-1", JobDone) {
		t.Fatal("terminal append failed")
	}
	j.close()

	// Reopen: sweep-1 reached a terminal state, sweep-2 is resumable.
	j2, jobs, maxN := openJournal(path, nil)
	defer j2.close()
	if len(jobs) != 1 || jobs[0].id != "sweep-2" {
		t.Fatalf("replayed jobs = %+v, want only sweep-2", jobs)
	}
	if string(jobs[0].req) != string(req2) {
		t.Fatalf("replayed request = %s, want %s", jobs[0].req, req2)
	}
	// The allocator floor covers the terminal job too: sweep-1's ID must
	// never be reused even though compaction dropped its records.
	if maxN != 2 {
		t.Fatalf("maxN = %d, want 2", maxN)
	}

	// Compaction rewrote the file as a next record plus live submits.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "sweep-1") {
		t.Fatalf("compacted journal still mentions the terminal job:\n%s", data)
	}
	if !strings.Contains(string(data), `"next_n":2`) {
		t.Fatalf("compacted journal missing allocator floor:\n%s", data)
	}
}

func TestJournalTruncatedLastLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	writeJournalFile(t, path,
		journalLine(t, journalRecord{Op: journalOpSubmit, ID: "sweep-1", Req: json.RawMessage(`{}`)}),
		journalLine(t, journalRecord{Op: journalOpSubmit, ID: "sweep-2", Req: json.RawMessage(`{}`)}),
		`{"v":1,"op":"submit","id":"sweep-3","req":{"work`, // torn mid-write by a crash
	)
	j, jobs, maxN := openJournal(path, nil)
	defer j.close()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want the 2 intact ones", len(jobs))
	}
	if _, _, _, skipped := j.stats(); skipped != 1 {
		t.Fatalf("skipped = %d, want the torn line counted", skipped)
	}
	if maxN != 2 {
		t.Fatalf("maxN = %d: the torn line must not advance the allocator", maxN)
	}
}

func TestJournalDuplicateTransitionsAreIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	writeJournalFile(t, path,
		journalLine(t, journalRecord{Op: journalOpSubmit, ID: "sweep-1", Req: json.RawMessage(`{"a":1}`)}),
		journalLine(t, journalRecord{Op: journalOpSubmit, ID: "sweep-1", Req: json.RawMessage(`{"a":2}`)}), // dup: first wins
		journalLine(t, journalRecord{Op: journalOpTerminal, ID: "sweep-1", State: "done"}),
		journalLine(t, journalRecord{Op: journalOpTerminal, ID: "sweep-1", State: "failed"}), // dup terminal
		journalLine(t, journalRecord{Op: journalOpTerminal, ID: "sweep-9", State: "done"}),   // terminal without submit
		journalLine(t, journalRecord{Op: journalOpSubmit, ID: "sweep-2", Req: json.RawMessage(`{}`)}),
	)
	j, jobs, maxN := openJournal(path, nil)
	defer j.close()
	if len(jobs) != 1 || jobs[0].id != "sweep-2" {
		t.Fatalf("replayed jobs = %+v, want only sweep-2 live", jobs)
	}
	// The orphan terminal for sweep-9 still advances the allocator floor.
	if maxN != 9 {
		t.Fatalf("maxN = %d, want 9", maxN)
	}
}

func TestJournalIgnoresUnknownFutureRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	writeJournalFile(t, path,
		// Future fields on a known op are ignored by encoding/json.
		`{"v":9,"op":"submit","id":"sweep-1","req":{},"shard":"us-east","priority":3}`+"\n",
		// A future op is skipped without failing replay.
		`{"v":9,"op":"lease","id":"sweep-1","holder":"node-b"}`+"\n",
	)
	j, jobs, _ := openJournal(path, nil)
	defer j.close()
	if len(jobs) != 1 || jobs[0].id != "sweep-1" {
		t.Fatalf("replayed jobs = %+v, want sweep-1 despite future fields", jobs)
	}
	if _, _, _, skipped := j.stats(); skipped != 0 {
		t.Fatalf("skipped = %d: future records must be ignored, not counted corrupt", skipped)
	}
}

// TestJournalCrashBetweenWriteAndFsync: an injected append failure
// (simulating a crash after write but before fsync) loses the record and
// — past the limit — degrades the journal to memory-only, but never
// resurrects a terminal job or fails the caller.
func TestJournalCrashBetweenWriteAndFsync(t *testing.T) {
	inj, err := faults.Parse("seed=3,journal-err=1")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, _, _ := openJournal(path, inj)
	for i := 0; i < journalFailLimit; i++ {
		if j.submit("sweep-1", json.RawMessage(`{}`)) {
			t.Fatal("append reported durable despite injected fsync failure")
		}
	}
	if !j.isDegraded() {
		t.Fatalf("journal not degraded after %d consecutive append failures", journalFailLimit)
	}
	if _, appendErrs, _, _ := j.stats(); appendErrs != journalFailLimit {
		t.Fatalf("appendErrs = %d, want %d", appendErrs, journalFailLimit)
	}
	j.close()

	// Nothing leaked to disk: replay finds no live jobs, so a restart
	// cannot resurrect state the fsync never made durable.
	j2, jobs, _ := openJournal(path, nil)
	defer j2.close()
	if len(jobs) != 0 {
		t.Fatalf("lost appends reappeared on replay: %+v", jobs)
	}
}

func TestJournalNilIsSafe(t *testing.T) {
	var j *jobJournal
	if j.submit("sweep-1", nil) || j.terminal("sweep-1", JobDone) {
		t.Fatal("nil journal accepted an append")
	}
	if j.isDegraded() {
		t.Fatal("nil journal reported degraded")
	}
	j.close() // must not panic
}

func TestJournalUnopenablePathDegrades(t *testing.T) {
	// A directory can't be opened for append: the journal degrades to
	// memory-only instead of failing startup.
	j, _, _ := openJournal(t.TempDir(), nil)
	defer j.close()
	if !j.isDegraded() {
		t.Fatal("journal at an unopenable path should be degraded")
	}
	if j.submit("sweep-1", json.RawMessage(`{}`)) {
		t.Fatal("degraded journal reported a durable append")
	}
}
