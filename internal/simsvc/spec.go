package simsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/specexec"
)

// speculation is the service's safe-prediction layer (ISSUE 6 / the
// paper's thesis applied one level up): it learns which sweeps tend to
// follow which from the submission history and pre-executes the
// predicted cells on idle workers into the content-addressed result
// cache. Mispredicted work is squashed by context cancellation the
// moment demand work needs the slot, leaving nothing behind but sound
// cache entries; the governor bounds the wasted compute.
type speculation struct {
	svc      *Service
	pred     *specexec.Predictor
	gov      *specexec.Governor
	track    *specexec.Tracker
	maxCells int

	mu        sync.Mutex
	stopped   bool
	launching bool
	pending   []RunSpec
	active    int
	wg        sync.WaitGroup

	predictions   atomic.Uint64 // candidates that contributed cells
	cellsExecuted atomic.Uint64 // speculative cells run to completion
	hits          atomic.Uint64 // demand cells served by speculation
	cancellations atomic.Uint64 // speculative cells squashed mid-run
	specNanos     atomic.Uint64 // wall time of speculative execution
	wastedNanos   atomic.Uint64 // the cancelled/failed/expired share
}

// newSpeculation wires the predictor, governor and tracker from the
// service config. Called only when cfg.Speculate is set.
func newSpeculation(s *Service) *speculation {
	maxCells := s.cfg.SpecMaxCells
	if maxCells <= 0 {
		maxCells = 64
	}
	return &speculation{
		svc: s,
		pred: specexec.NewPredictor(specexec.PredictorConfig{
			JournalPath:   s.cfg.SpecJournal,
			MinConfidence: s.cfg.SpecMinConfidence,
		}),
		gov: specexec.NewGovernor(specexec.GovernorConfig{
			BudgetCPU:  s.cfg.SpecBudget,
			MinHitRate: s.cfg.SpecMinHitRate,
		}),
		track:    specexec.NewTracker(0),
		maxCells: maxCells,
	}
}

// event emits a ClassSpec observability event.
func (sp *speculation) event(kind, detail string) {
	if sp.svc.rec.On(obs.ClassSpec) {
		sp.svc.rec.Emit(obs.Event{Class: obs.ClassSpec, Kind: kind, Detail: detail})
	}
}

// normalizedRequest rebuilds the canonical request document from
// resolved options, so equivalent submissions (explicit vs defaulted
// fields) sign identically in the predictor's history. Defaults are
// normalized to absent fields, matching the documents the predictor's
// mutation heuristics produce.
func normalizedRequest(opt harness.Options, ablations bool) SweepRequest {
	warm := opt.WarmupInstrs
	nr := SweepRequest{
		MaxInstrs:      opt.MaxInstrs,
		WarmupInstrs:   &warm,
		IntervalCycles: opt.IntervalCycles,
		Ablations:      ablations,
	}
	for _, wl := range opt.Workloads {
		nr.Workloads = append(nr.Workloads, wl.Name)
	}
	if !ablations {
		for _, v := range opt.Variants {
			nr.Variants = append(nr.Variants, v.String())
		}
	}
	for _, m := range opt.Models {
		nr.Models = append(nr.Models, m.String())
	}
	if opt.WarmupMode == core.WarmupFunctional {
		nr.WarmupMode = opt.WarmupMode.String()
	}
	if opt.SimMode == harness.SimSampled {
		nr.SimMode = string(opt.SimMode)
		nr.SampleIntervalInstrs = opt.Sample.IntervalInstrs
		nr.SampleMaxK = opt.Sample.MaxK
		nr.SampleSeed = opt.Sample.Seed
	}
	return nr
}

// observe records one demand submission in the predictor's history and
// advances the tracker's staleness round (entries no demand submission
// claims eventually expire as waste).
func (sp *speculation) observe(opt harness.Options, ablations bool) {
	raw, err := json.Marshal(normalizedRequest(opt, ablations))
	if err != nil {
		return
	}
	sub := specexec.Submission{Sig: specexec.Signature(raw), Raw: raw}
	sp.pred.Observe(sub)
	if expired, cpu := sp.track.Advance(); expired > 0 {
		per := cpu / time.Duration(expired)
		for i := 0; i < expired; i++ {
			sp.gov.Waste(per)
		}
		sp.wastedNanos.Add(uint64(cpu))
		sp.event("spec-expired", fmt.Sprintf("%d unclaimed entries expired (%s wasted)", expired, cpu.Round(time.Millisecond)))
	}
}

// preempt squashes speculative work the moment demand work arrives:
// queued-but-unstarted speculative cells are dropped, and running
// speculative cells whose key the demand submission does not need are
// cancelled (the in-pipeline check hook observes the context within a
// few thousand cycles — well under one cell boundary). Cells the new
// submission does need are left running; its demand cells will join
// them as waiters (a speculation hit).
func (sp *speculation) preempt(keep map[string]bool) {
	sp.mu.Lock()
	sp.pending = nil
	sp.mu.Unlock()
	s := sp.svc
	s.mu.Lock()
	for key, f := range s.inflight {
		if f.spec && !f.claimed && !keep[key] && f.cancel != nil {
			f.cancel()
		}
	}
	s.mu.Unlock()
}

// kick schedules a launch pass if one is not already running. Called
// whenever idle capacity may have appeared or prediction context may
// have changed: job completion and speculative-cell completion.
func (sp *speculation) kick() {
	sp.mu.Lock()
	if sp.stopped || sp.launching {
		sp.mu.Unlock()
		return
	}
	sp.launching = true
	sp.wg.Add(1)
	sp.mu.Unlock()
	go func() {
		defer sp.wg.Done()
		sp.launch()
	}()
}

// launch starts speculative cells while (and only while) the demand
// queue is empty and workers sit idle; it refills the backlog from the
// predictor when it runs dry.
func (sp *speculation) launch() {
	defer func() {
		sp.mu.Lock()
		sp.launching = false
		sp.mu.Unlock()
	}()
	s := sp.svc
	for {
		if s.ctx.Err() != nil || !sp.gov.Allow() || s.pool.QueueDepth() > 0 {
			return
		}
		sp.mu.Lock()
		if sp.stopped {
			sp.mu.Unlock()
			return
		}
		if len(sp.pending) == 0 {
			quiescent := sp.active == 0
			sp.mu.Unlock()
			// Refill only from a quiescent state: re-predicting while
			// cells from the last round still run would re-enqueue them.
			if !quiescent || !sp.refill() {
				return
			}
			sp.mu.Lock()
			if len(sp.pending) == 0 {
				sp.mu.Unlock()
				return
			}
		}
		idle := s.cfg.Workers - s.pool.Active() - sp.active
		if idle <= 0 {
			sp.mu.Unlock()
			return
		}
		spec := sp.pending[0]
		sp.pending = sp.pending[1:]
		sp.active++
		sp.wg.Add(1)
		sp.mu.Unlock()
		go func() {
			defer sp.wg.Done()
			sp.runCell(spec)
			sp.mu.Lock()
			sp.active--
			sp.mu.Unlock()
			sp.kick()
		}()
	}
}

// refill runs one prediction round: candidates are resolved through the
// same request-resolution path demand submissions use, their cells
// deduplicated against the cache and in-flight runs, and the remainder
// becomes the speculative backlog. Reports whether any work was added.
func (sp *speculation) refill() bool {
	s := sp.svc
	cands := sp.pred.Predict()
	if len(cands) == 0 {
		return false
	}
	seen := make(map[string]bool)
	var cells []RunSpec
	for _, cand := range cands {
		if len(cells) >= sp.maxCells {
			break
		}
		var req SweepRequest
		if err := json.Unmarshal(cand.Raw, &req); err != nil {
			continue
		}
		_, specs, err := s.resolve(req)
		if err != nil {
			continue
		}
		used := false
		for _, c := range specs {
			if len(cells) >= sp.maxCells {
				break
			}
			key, err := c.CacheKey()
			if err != nil || seen[key] || s.cache.Contains(key) {
				continue
			}
			s.mu.Lock()
			_, running := s.inflight[key]
			s.mu.Unlock()
			if running {
				continue
			}
			seen[key] = true
			cells = append(cells, c)
			used = true
		}
		if used {
			sp.predictions.Add(1)
			sp.event("predict", fmt.Sprintf("%s: sig %s conf %.2f", cand.Reason, cand.Sig, cand.Confidence))
		}
	}
	if len(cells) == 0 {
		return false
	}
	sp.mu.Lock()
	if sp.stopped {
		sp.mu.Unlock()
		return false
	}
	sp.pending = append(sp.pending, cells...)
	sp.mu.Unlock()
	return true
}

// runCell pre-executes one predicted cell. It registers a cancellable
// speculative flight under the same in-flight map demand cells use, so
// a demand cell arriving mid-run joins it (claiming it as a hit) instead
// of re-simulating; a completed unclaimed run lands in the cache and is
// tracked for later credit or expiry.
func (sp *speculation) runCell(spec RunSpec) {
	s := sp.svc
	key, err := spec.CacheKey()
	if err != nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if _, dup := s.inflight[key]; dup || s.cache.Contains(key) {
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.ctx)
	f := &flight{spec: true, cancel: cancel}
	s.inflight[key] = f
	s.mu.Unlock()
	defer cancel()

	k := spec.Key()
	sp.event("spec-start", fmt.Sprintf("%s/%v/%v", k.Workload, k.Variant, k.Model))
	// The pre-execution gets a standalone trace rooted at a spec-preexec
	// span (nil with tracing off). If the demand request it predicted
	// arrives, the whole tree is stitched under the demand cell's root.
	ct := s.tracer.StartSpecCell(cellName(k))
	// One attempt, no Abort hook: cancellation (squash) arrives through
	// the context, and a failed speculation is simply dropped — retries
	// are a demand-path luxury the governor should not pay for.
	pol := harness.RunPolicy{
		MaxAttempts:  1,
		CellTimeout:  s.cellTimeout(),
		StallTimeout: s.cfg.StallTimeout,
	}
	r, _, elapsed, err := s.execute(trace.NewContext(ctx, ct.Root()), spec, pol)

	s.mu.Lock()
	delete(s.inflight, key)
	waiters := f.waiters
	claimed := f.claimed
	s.mu.Unlock()

	sp.specNanos.Add(uint64(elapsed))
	line := func(note string) string { return harness.FormatProgress(k, r) + note }
	var ce *harness.CellError
	switch {
	case err == nil:
		s.cache.Put(key, r)
		sp.cellsExecuted.Add(1)
		ct.Root().Set("claimed", strconv.FormatBool(claimed))
		ct.Finish()
		if claimed {
			sp.gov.Hit(elapsed)
			for _, w := range waiters {
				w.await.Finish()
				w.ct.Stitch(ct)
				w.job.deliver(w.idx, w.key, r, line("  [speculated]"), false, 0,
					finishCell(w.ct, "speculated"))
			}
		} else {
			sp.track.Add(key, elapsed)
			s.tracer.TrackSpec(key, ct)
		}
		sp.event("spec-executed", fmt.Sprintf("%s/%v/%v in %s (claimed=%t)",
			k.Workload, k.Variant, k.Model, elapsed.Round(time.Millisecond), claimed))
	case errors.Is(err, context.Canceled):
		sp.cancellations.Add(1)
		sp.wastedNanos.Add(uint64(elapsed))
		sp.gov.Waste(elapsed)
		ct.Root().Set("squashed", "true")
		ct.Finish()
		for _, w := range waiters {
			w.await.Finish()
			finishCell(w.ct, "cancelled")
			w.job.skip()
		}
		sp.event("spec-cancelled", fmt.Sprintf("%s/%v/%v after %s",
			k.Workload, k.Variant, k.Model, elapsed.Round(time.Millisecond)))
	case errors.As(err, &ce) && claimed:
		// A claimed speculation that failed permanently degrades its
		// demand waiters exactly as a demand execution would have.
		sp.wastedNanos.Add(uint64(elapsed))
		sp.gov.Waste(elapsed)
		ct.Finish()
		s.deliverFailure(waiters, k, ce, 0)
		sp.event("spec-failed", ce.Error())
	default:
		sp.wastedNanos.Add(uint64(elapsed))
		sp.gov.Waste(elapsed)
		ct.Finish()
		for _, w := range waiters {
			w.await.Finish()
			finishCell(w.ct, "error")
			w.job.skip()
		}
		sp.event("spec-failed", fmt.Sprintf("%s/%v/%v: %v", k.Workload, k.Variant, k.Model, err))
	}
	if state := sp.gov.State(); state != specexec.StateOK {
		sp.event("spec-throttled", state.String())
	}
}

// stop drains the speculation engine: no new launches, pending work
// dropped, running cells cancelled, and every goroutine joined. Called
// from Shutdown after s.cancel() (which already cancels cell contexts).
func (sp *speculation) stop() {
	sp.mu.Lock()
	sp.stopped = true
	sp.pending = nil
	sp.mu.Unlock()
	s := sp.svc
	s.mu.Lock()
	for _, f := range s.inflight {
		if f.spec && f.cancel != nil {
			f.cancel()
		}
	}
	s.mu.Unlock()
	sp.wg.Wait()
}

// backlog reports queued-plus-running speculative cells (the CI smoke
// polls this to know when pre-execution settled).
func (sp *speculation) backlog() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.pending) + sp.active
}

// SpecStatus is the /spec document: predictor, governor and scheduler
// state plus the live candidate list.
type SpecStatus struct {
	Enabled       bool                   `json:"enabled"`
	Predictor     specexec.Stats         `json:"predictor"`
	Governor      specexec.GovernorStats `json:"governor"`
	Predictions   uint64                 `json:"predictions_total"`
	CellsExecuted uint64                 `json:"cells_preexecuted_total"`
	Hits          uint64                 `json:"hits_total"`
	Cancellations uint64                 `json:"cancellations_total"`
	Backlog       int                    `json:"backlog"`
	Unclaimed     int                    `json:"unclaimed_entries"`
	Candidates    []specexec.Candidate   `json:"candidates,omitempty"`
}

// SpecStatus snapshots the speculation engine (zero value when
// speculation is disabled).
func (s *Service) SpecStatus() SpecStatus {
	if s.spec == nil {
		return SpecStatus{}
	}
	sp := s.spec
	return SpecStatus{
		Enabled:       true,
		Predictor:     sp.pred.Snapshot(),
		Governor:      sp.gov.Snapshot(),
		Predictions:   sp.predictions.Load(),
		CellsExecuted: sp.cellsExecuted.Load(),
		Hits:          sp.hits.Load(),
		Cancellations: sp.cancellations.Load(),
		Backlog:       sp.backlog(),
		Unclaimed:     sp.track.Len(),
		Candidates:    sp.pred.Predict(),
	}
}

func (s *Service) handleSpec(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.SpecStatus())
}
