package simsvc

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
)

// cacheFileVersion versions the on-disk cache format (the JSON shape of
// core.Result). A mismatch discards the file rather than decoding stale
// counters into new fields.
const cacheFileVersion = 1

// Cache is a content-addressed store of completed simulation results,
// keyed by RunSpec.CacheKey. It is safe for concurrent use and keeps
// hit/miss counters for the service's /metrics endpoint.
type Cache struct {
	mu      sync.RWMutex
	entries map[string]core.Result
	hits    uint64
	misses  uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]core.Result)}
}

// Get looks up a result, counting the access as a hit or a miss.
func (c *Cache) Get(key string) (core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return r, ok
}

// Put stores a completed result.
func (c *Cache) Put(key string, r core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = r
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// cacheFile is the persisted form. Entries are a sorted list (not a map)
// so the file is byte-stable across saves of the same contents.
type cacheFile struct {
	Version int          `json:"version"`
	Entries []cacheEntry `json:"entries"`
}

type cacheEntry struct {
	Key    string      `json:"key"`
	Result core.Result `json:"result"`
}

// Save writes the cache atomically (temp file + rename) to path.
func (c *Cache) Save(path string) error {
	c.mu.RLock()
	f := cacheFile{Version: cacheFileVersion}
	for k, r := range c.entries {
		f.Entries = append(f.Entries, cacheEntry{Key: k, Result: r})
	}
	c.mu.RUnlock()
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].Key < f.Entries[j].Key })

	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("simsvc: encode cache: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".sdo-cache-*")
	if err != nil {
		return fmt.Errorf("simsvc: save cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("simsvc: save cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("simsvc: save cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("simsvc: save cache: %w", err)
	}
	return nil
}

// LoadCache reads a persisted cache. A missing file yields an empty
// cache; a version mismatch discards the contents (the counters would be
// meaningless under a different schema).
func LoadCache(path string) (*Cache, error) {
	c := NewCache()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("simsvc: load cache: %w", err)
	}
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("simsvc: load cache %s: %w", path, err)
	}
	if f.Version != cacheFileVersion {
		return c, nil
	}
	for _, e := range f.Entries {
		c.entries[e.Key] = e.Result
	}
	return c, nil
}
