package simsvc

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/faults"
)

// cacheFileVersion versions the on-disk cache format (the JSON shape of
// core.Result). A mismatch discards the file rather than decoding stale
// counters into new fields.
//
// v2: core.Result gained the interval time series (Intervals,
// ROBOccHist, LQOccHist) and RunSpec gained IntervalCycles.
// v3: per-entry integrity checksums (cacheEntry.Sum over the canonical
// result encoding), so a bit-flipped entry is detected and dropped
// instead of silently poisoning the determinism guarantee.
const cacheFileVersion = 3

// CorruptSuffix is appended to an unparseable cache file's name when the
// loader quarantines it (the file is kept for forensics, the cache starts
// empty).
const CorruptSuffix = ".corrupt"

// Cache is a content-addressed store of completed simulation results,
// keyed by RunSpec.CacheKey, with an optional LRU size bound. It is safe
// for concurrent use and keeps hit/miss/eviction/corruption counters for
// the service's /metrics endpoint.
type Cache struct {
	mu        sync.Mutex
	max       int   // entry bound (0: unbounded)
	maxBytes  int64 // byte bound over encoded entry sizes (0: unbounded)
	bytes     int64 // current total encoded size
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
	// evictedBytes sums the encoded sizes of evicted entries (both
	// bounds), for capacity planning via /metrics.
	evictedBytes uint64

	// corrupt counts entries dropped by checksum verification on load;
	// quarantined counts whole files renamed aside as unparseable.
	corrupt     uint64
	quarantined uint64

	// inj injects I/O faults into Save/load paths (nil in production).
	inj *faults.Injector
}

// lruEntry is one cached result with its key (for map removal on evict)
// and its encoded size (for the byte bound).
type lruEntry struct {
	key  string
	res  core.Result
	size int64
}

// entrySize is an entry's accounted size: key plus the canonical compact
// JSON encoding of the result — the same bytes the persisted file stores,
// so the byte bound tracks what the cache actually costs on disk.
func entrySize(key string, r core.Result) int64 {
	raw, err := json.Marshal(r)
	if err != nil {
		return int64(len(key))
	}
	return int64(len(key) + len(raw))
}

// NewCache returns an empty, unbounded cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*list.Element), order: list.New()}
}

// SetFaults attaches a fault injector to the cache's I/O paths (chaos
// testing; nil disables injection).
func (c *Cache) SetFaults(inj *faults.Injector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inj = inj
}

// SetMaxEntries bounds the cache to n results, evicting
// least-recently-used entries immediately if it is already over; n <= 0
// removes the bound.
func (c *Cache) SetMaxEntries(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.max = n
	c.evictOver()
}

// MaxEntries returns the current bound (0: unbounded).
func (c *Cache) MaxEntries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.max
}

// SetMaxBytes bounds the cache's total encoded size to n bytes, evicting
// least-recently-used entries immediately if it is already over; n <= 0
// removes the bound. The bound is over entry payloads (keys + canonical
// result encodings), i.e. what the persisted file stores, excluding the
// file's framing.
func (c *Cache) SetMaxBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.maxBytes = n
	c.evictOver()
}

// MaxBytes returns the current byte bound (0: unbounded).
func (c *Cache) MaxBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxBytes
}

// Bytes returns the total accounted size of the cached entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// EvictedBytes returns the cumulative accounted size of evicted entries.
func (c *Cache) EvictedBytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictedBytes
}

// evictOver drops LRU entries until both bounds are met. Caller holds mu.
func (c *Cache) evictOver() {
	over := func() bool {
		return (c.max > 0 && len(c.entries) > c.max) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)
	}
	for over() {
		back := c.order.Back()
		if back == nil {
			return
		}
		e := back.Value.(*lruEntry)
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.evictedBytes += uint64(e.size)
		c.evictions++
	}
}

// Get looks up a result, counting the access as a hit or a miss and
// refreshing the entry's recency.
func (c *Cache) Get(key string) (core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return core.Result{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// Contains reports whether key is cached, without touching the hit/miss
// counters or the LRU order — the speculation scheduler peeks at the
// cache to skip already-answered candidate cells, and a peek is not a
// demand lookup.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// PeekEncoded returns the wire form of a cached entry — key, integrity
// checksum, canonical compact result encoding — without touching the
// hit/miss counters or the LRU order. This is what GET /cache/{key}
// serves to peer nodes: a peer's lookup is not a demand access of this
// node's cache, so it must not skew the local hit-rate metrics.
func (c *Cache) PeekEncoded(key string) (cacheEntry, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	var res core.Result
	if ok {
		res = el.Value.(*lruEntry).res
	}
	c.mu.Unlock()
	if !ok {
		return cacheEntry{}, false
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return cacheEntry{}, false
	}
	return cacheEntry{Key: key, Sum: entrySum(key, raw), Result: raw}, true
}

// Put stores a completed result as the most recently used entry, evicting
// the least recently used one if the bound is exceeded.
func (c *Cache) Put(key string, r core.Result) {
	size := entrySize(key, r)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += size - e.size
		e.res, e.size = r, size
		c.order.MoveToFront(el)
		c.evictOver()
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, res: r, size: size})
	c.bytes += size
	c.evictOver()
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns how many entries the LRU bound has dropped.
func (c *Cache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// CorruptEntries returns how many persisted entries failed checksum
// verification and were dropped on load.
func (c *Cache) CorruptEntries() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corrupt
}

// QuarantinedFiles returns how many unparseable cache files the loader
// renamed aside (0 or 1 per load).
func (c *Cache) QuarantinedFiles() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined
}

// cacheFile is the persisted form. Entries are a sorted list (not a map)
// so the file is byte-stable across saves of the same contents.
type cacheFile struct {
	Version int          `json:"version"`
	Entries []cacheEntry `json:"entries"`
}

type cacheEntry struct {
	Key string `json:"key"`
	// Sum is entrySum over (Key, canonical Result encoding); verified on
	// load so a bit-flipped or hand-edited entry becomes a miss, not a
	// wrong answer.
	Sum    string          `json:"sum"`
	Result json.RawMessage `json:"result"`
}

// entrySum is the per-entry integrity checksum: sha256 over the key and
// the compact (canonical) JSON encoding of the result, truncated for
// file compactness — this is corruption detection, not cryptography.
func entrySum(key string, compactResult []byte) string {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{'|'})
	h.Write(compactResult)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Save writes the cache atomically (temp file + rename) to path, with a
// per-entry checksum. A crash mid-save leaves the previous file intact.
func (c *Cache) Save(path string) error {
	c.mu.Lock()
	inj := c.inj
	type kv struct {
		key string
		res core.Result
	}
	snap := make([]kv, 0, len(c.entries))
	for k, el := range c.entries {
		snap = append(snap, kv{k, el.Value.(*lruEntry).res})
	}
	c.mu.Unlock()
	if err := inj.SaveErr(); err != nil {
		return fmt.Errorf("simsvc: save cache: %w", err)
	}

	f := cacheFile{Version: cacheFileVersion}
	for _, e := range snap {
		raw, err := json.Marshal(e.res)
		if err != nil {
			return fmt.Errorf("simsvc: encode cache: %w", err)
		}
		f.Entries = append(f.Entries, cacheEntry{Key: e.key, Sum: entrySum(e.key, raw), Result: raw})
	}
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].Key < f.Entries[j].Key })

	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("simsvc: encode cache: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".sdo-cache-*")
	if err != nil {
		return fmt.Errorf("simsvc: save cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("simsvc: save cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("simsvc: save cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("simsvc: save cache: %w", err)
	}
	return nil
}

// LoadCache reads a persisted cache. A missing file yields an empty
// cache; a version mismatch discards the contents (the counters would be
// meaningless under a different schema); an unparseable (truncated,
// mangled) file is quarantined — renamed to path+CorruptSuffix — and
// treated as empty; individual entries whose checksum does not match are
// dropped. Only real I/O failures return an error.
func LoadCache(path string) (*Cache, error) {
	return loadCache(path, nil)
}

func loadCache(path string, inj *faults.Injector) (*Cache, error) {
	c := NewCache()
	c.inj = inj
	if err := inj.LoadErr(); err != nil {
		return nil, fmt.Errorf("simsvc: load cache %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("simsvc: load cache: %w", err)
	}
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		// The file is not valid JSON: quarantine it for forensics and
		// start empty. A failed rename only means we could not move it;
		// the cache still starts empty either way.
		c.quarantined++
		os.Rename(path, path+CorruptSuffix)
		return c, nil
	}
	if f.Version != cacheFileVersion {
		return c, nil
	}
	for _, e := range f.Entries {
		if _, ok := c.entries[e.Key]; ok {
			continue
		}
		// Re-compact before verifying: the raw bytes carry the file's
		// indentation, while the checksum is over the canonical compact
		// encoding.
		var compact bytes.Buffer
		if err := json.Compact(&compact, e.Result); err != nil || entrySum(e.Key, compact.Bytes()) != e.Sum {
			c.corrupt++
			continue
		}
		var r core.Result
		if err := json.Unmarshal(e.Result, &r); err != nil {
			c.corrupt++
			continue
		}
		size := int64(len(e.Key) + compact.Len())
		c.entries[e.Key] = c.order.PushFront(&lruEntry{key: e.Key, res: r, size: size})
		c.bytes += size
	}
	return c, nil
}
