package simsvc

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
)

// cacheFileVersion versions the on-disk cache format (the JSON shape of
// core.Result). A mismatch discards the file rather than decoding stale
// counters into new fields.
//
// v2: core.Result gained the interval time series (Intervals,
// ROBOccHist, LQOccHist) and RunSpec gained IntervalCycles.
const cacheFileVersion = 2

// Cache is a content-addressed store of completed simulation results,
// keyed by RunSpec.CacheKey, with an optional LRU size bound. It is safe
// for concurrent use and keeps hit/miss/eviction counters for the
// service's /metrics endpoint.
type Cache struct {
	mu        sync.Mutex
	max       int // 0: unbounded
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

// lruEntry is one cached result with its key (for map removal on evict).
type lruEntry struct {
	key string
	res core.Result
}

// NewCache returns an empty, unbounded cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*list.Element), order: list.New()}
}

// SetMaxEntries bounds the cache to n results, evicting
// least-recently-used entries immediately if it is already over; n <= 0
// removes the bound.
func (c *Cache) SetMaxEntries(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.max = n
	c.evictOver()
}

// MaxEntries returns the current bound (0: unbounded).
func (c *Cache) MaxEntries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.max
}

// evictOver drops LRU entries until the bound is met. Caller holds mu.
func (c *Cache) evictOver() {
	for c.max > 0 && len(c.entries) > c.max {
		back := c.order.Back()
		if back == nil {
			return
		}
		c.order.Remove(back)
		delete(c.entries, back.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Get looks up a result, counting the access as a hit or a miss and
// refreshing the entry's recency.
func (c *Cache) Get(key string) (core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return core.Result{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// Put stores a completed result as the most recently used entry, evicting
// the least recently used one if the bound is exceeded.
func (c *Cache) Put(key string, r core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).res = r
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, res: r})
	c.evictOver()
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns how many entries the LRU bound has dropped.
func (c *Cache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// cacheFile is the persisted form. Entries are a sorted list (not a map)
// so the file is byte-stable across saves of the same contents.
type cacheFile struct {
	Version int          `json:"version"`
	Entries []cacheEntry `json:"entries"`
}

type cacheEntry struct {
	Key    string      `json:"key"`
	Result core.Result `json:"result"`
}

// Save writes the cache atomically (temp file + rename) to path.
func (c *Cache) Save(path string) error {
	c.mu.Lock()
	f := cacheFile{Version: cacheFileVersion}
	for k, el := range c.entries {
		f.Entries = append(f.Entries, cacheEntry{Key: k, Result: el.Value.(*lruEntry).res})
	}
	c.mu.Unlock()
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].Key < f.Entries[j].Key })

	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("simsvc: encode cache: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".sdo-cache-*")
	if err != nil {
		return fmt.Errorf("simsvc: save cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("simsvc: save cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("simsvc: save cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("simsvc: save cache: %w", err)
	}
	return nil
}

// LoadCache reads a persisted cache. A missing file yields an empty
// cache; a version mismatch discards the contents (the counters would be
// meaningless under a different schema).
func LoadCache(path string) (*Cache, error) {
	c := NewCache()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("simsvc: load cache: %w", err)
	}
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("simsvc: load cache %s: %w", path, err)
	}
	if f.Version != cacheFileVersion {
		return c, nil
	}
	for _, e := range f.Entries {
		if _, ok := c.entries[e.Key]; ok {
			continue
		}
		c.entries[e.Key] = c.order.PushFront(&lruEntry{key: e.Key, res: e.Result})
	}
	return c, nil
}
