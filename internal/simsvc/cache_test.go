package simsvc

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

func spec(wl string, v core.Variant, m pipeline.AttackModel) RunSpec {
	return RunSpec{Workload: wl, Variant: v, Model: m, WarmupInstrs: 1000, MaxInstrs: 2000}
}

func TestCacheKeyStableAndDistinct(t *testing.T) {
	a := spec("mcf_r", core.Hybrid, pipeline.Spectre)
	k1, err := a.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := a.CacheKey()
	if k1 != k2 {
		t.Fatalf("key not stable: %s vs %s", k1, k2)
	}
	// Every dimension of the spec must change the key.
	variants := []RunSpec{
		spec("gcc_r", core.Hybrid, pipeline.Spectre),
		spec("mcf_r", core.StaticL1, pipeline.Spectre),
		spec("mcf_r", core.Hybrid, pipeline.Futuristic),
		{Workload: "mcf_r", Variant: core.Hybrid, Model: pipeline.Spectre, WarmupInstrs: 999, MaxInstrs: 2000},
		{Workload: "mcf_r", Variant: core.Hybrid, Model: pipeline.Spectre, WarmupInstrs: 1000, MaxInstrs: 2001},
		{Workload: "mcf_r", Variant: core.Hybrid, Model: pipeline.Spectre, WarmupInstrs: 1000, MaxInstrs: 2000,
			Ablate: core.Ablation{AlwaysValidate: true}},
	}
	seen := map[string]bool{k1: true}
	for _, s := range variants {
		k, err := s.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		if seen[k] {
			t.Fatalf("key collision for %+v", s)
		}
		seen[k] = true
	}
}

func TestCacheKeyUnknownWorkload(t *testing.T) {
	if _, err := spec("nope_r", core.Unsafe, pipeline.Spectre).CacheKey(); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestCacheSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")

	c := NewCache()
	r := core.Result{Variant: core.Hybrid, Model: pipeline.Futuristic}
	r.Cycles = 12345
	r.Committed = 6789
	r.Squashes[0] = 42
	r.L1DHits = 99
	c.Put("k1", r)
	c.Put("k2", core.Result{})
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}

	c2, err := LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 2 {
		t.Fatalf("reloaded %d entries, want 2", c2.Len())
	}
	got, ok := c2.Get("k1")
	if !ok || !reflect.DeepEqual(got, r) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, r)
	}

	// Saving identical contents twice must produce identical bytes
	// (sorted entries, no map-order dependence).
	path2 := filepath.Join(dir, "cache2.json")
	if err := c2.Save(path2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Fatal("cache file not byte-stable across saves")
	}
}

func TestCacheLoadMissingAndStale(t *testing.T) {
	c, err := LoadCache(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || c.Len() != 0 {
		t.Fatalf("missing file: got len=%d err=%v", c.Len(), err)
	}
	stale := filepath.Join(t.TempDir(), "stale.json")
	os.WriteFile(stale, []byte(`{"version": 999, "entries": [{"key":"x","result":{}}]}`), 0o644)
	c, err = LoadCache(stale)
	if err != nil || c.Len() != 0 {
		t.Fatalf("stale version must be discarded: got len=%d err=%v", c.Len(), err)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewCache()
	one := entrySize("key-00", core.Result{L1DHits: 1})
	// Room for three entries, not four.
	c.SetMaxBytes(3*one + one/2)
	for i := 0; i < 6; i++ {
		c.Put(fmt.Sprintf("key-%02d", i), core.Result{L1DHits: uint64(i + 1)})
	}
	if c.Len() != 3 {
		t.Fatalf("len %d, want 3", c.Len())
	}
	if c.Bytes() > c.MaxBytes() {
		t.Fatalf("bytes %d over bound %d", c.Bytes(), c.MaxBytes())
	}
	// Oldest-first: the three most recent keys survive.
	for i := 0; i < 3; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%02d", i)); ok {
			t.Errorf("old key-%02d survived the byte bound", i)
		}
	}
	for i := 3; i < 6; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%02d", i)); !ok {
			t.Errorf("recent key-%02d evicted", i)
		}
	}
	if got := c.EvictedBytes(); got != uint64(3*one) {
		t.Errorf("evicted %d bytes, want %d", got, 3*one)
	}
	if c.Evictions() != 3 {
		t.Errorf("evictions %d, want 3", c.Evictions())
	}

	// Overwriting an entry re-accounts its size instead of double counting.
	before := c.Bytes()
	c.Put("key-05", core.Result{L1DHits: 6})
	if c.Bytes() != before {
		t.Errorf("overwrite changed accounted bytes: %d -> %d", before, c.Bytes())
	}

	// The byte accounting survives a save/load round trip.
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Bytes() != c.Bytes() {
		t.Errorf("loaded bytes %d, want %d", loaded.Bytes(), c.Bytes())
	}
}
