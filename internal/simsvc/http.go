package simsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Handler returns the service's HTTP API:
//
//	POST   /sweeps               submit a sweep (SweepRequest JSON) -> Status;
//	                             429 + Retry-After when the queue is full
//	GET    /sweeps               list job statuses
//	GET    /sweeps/{id}          one job's status
//	DELETE /sweeps/{id}          cancel a job (idempotent: 200 while it can
//	                             be or already is cancelled, 409 once finished)
//	GET    /sweeps/{id}/progress stream per-run progress lines (text/plain)
//	GET    /sweeps/{id}/export   harness.Export JSON (blocks until done);
//	                             ablation jobs return AblationExport instead
//	GET    /sweeps/{id}/trace    span-tree trace JSON (?format=chrome for the
//	                             Chrome trace-event form); registered only
//	                             with tracing enabled
//	GET    /cache/{key}          one content-addressed cache entry in the
//	                             persisted wire form {key, sum, result};
//	                             404 on a miss. Internal: this is what
//	                             peer nodes (internal/fabric) consult on
//	                             their own cache misses
//	GET    /variants             registered protection schemes: name,
//	                             aliases, one-line description
//	GET    /debug/flight         flight recorder: the last N observability
//	                             events plus the binary's build identity
//	GET    /healthz              liveness probe: Health JSON; 200 while
//	                             serving ("ok"/"degraded"), 503 draining
//	GET    /metrics              Prometheus-style counters
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		code := http.StatusOK
		if h.Status == "draining" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.spec != nil {
		// GET /spec — speculation predictor/governor state. Registered
		// only with -speculate, so a disabled server's API surface is
		// exactly what it was before the subsystem existed.
		mux.HandleFunc("GET /spec", s.handleSpec)
	}
	mux.HandleFunc("POST /sweeps", s.handleSubmit)
	mux.HandleFunc("GET /sweeps", s.handleList)
	mux.HandleFunc("GET /sweeps/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /sweeps/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /sweeps/{id}/export", s.handleExport)
	if s.tracer != nil {
		// GET /sweeps/{id}/trace — registered only with -trace, so an
		// untraced server's API surface is unchanged.
		mux.HandleFunc("GET /sweeps/{id}/trace", s.handleTrace)
	}
	mux.HandleFunc("GET /cache/{key}", s.handleCacheGet)
	if s.cfg.PeerArtifacts {
		// GET /artifacts/{ckpt,plan}/{hash} — artifact peering for
		// cluster nodes. Registered only in cluster mode, so a
		// standalone server's API surface is unchanged.
		mux.HandleFunc("GET /artifacts/{kind}/{hash}", s.handleArtifact)
	}
	mux.HandleFunc("GET /variants", s.handleVariants)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	return mux
}

// handleArtifact serves one stored checkpoint or sample-plan gob to a
// cluster peer, wrapped in the checksummed artifact envelope. Like
// /cache, a miss is an authoritative 404 — the healthy "I don't have
// it" that keeps the peer's breaker closed.
func (s *Service) handleArtifact(w http.ResponseWriter, r *http.Request) {
	body, ok := s.ArtifactEntry(r.PathValue("kind"), r.PathValue("hash"))
	if !ok {
		http.Error(w, "unknown artifact", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleCacheGet serves one cache entry to a peer node, in exactly the
// persisted wire form (key + integrity checksum + canonical result
// encoding) so the peer vets it with the same rule as a loaded cache
// file. The lookup is a peek: peer traffic must not skew this node's
// demand hit/miss counters or LRU order.
func (s *Service) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	e, ok := s.cache.PeekEncoded(r.PathValue("key"))
	if !ok {
		http.Error(w, "unknown cache key", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, e)
}

// VariantInfo is one /variants row: a registered protection scheme as
// sweep submissions may name it.
type VariantInfo struct {
	Name        string   `json:"name"`
	Aliases     []string `json:"aliases,omitempty"`
	Description string   `json:"description"`
	SDO         bool     `json:"sdo,omitempty"`
	TableII     bool     `json:"table2,omitempty"`
}

// handleVariants lists the registered protection schemes — the open
// registry sdoctl and sweep authors discover valid variant names from.
func (s *Service) handleVariants(w http.ResponseWriter, r *http.Request) {
	schemes := core.Schemes()
	out := make([]VariantInfo, 0, len(schemes))
	for _, sc := range schemes {
		out = append(out, VariantInfo{
			Name: sc.Name, Aliases: sc.Aliases, Description: sc.Description,
			SDO: sc.SDO, TableII: sc.TableII,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	j, err := s.Submit(req)
	if err == ErrClosed {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	var oe *OverloadError
	if errors.As(err, &oe) {
		w.Header().Set("Retry-After", strconv.Itoa(int(oe.RetryAfter.Round(time.Second)/time.Second)))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

// job resolves {id} or writes a 404.
func (s *Service) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown sweep", http.StatusNotFound)
	}
	return j, ok
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// handleCancel cancels a job. DELETE is idempotent: cancelling a running
// job and re-cancelling an already-cancelled one both return 200 with the
// job's status; a job that already finished (done/failed/degraded) cannot
// be cancelled and returns 409 explaining why.
func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	did, state := j.TryCancel()
	if !did && state != JobCancelled {
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("sweep %s already finished (%s); nothing to cancel", j.ID, state),
			"state": string(state),
		})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleProgress streams progress lines as they are produced, one per
// completed run, until the job finishes or the client goes away.
func (s *Service) handleProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	fl, _ := w.(http.Flusher)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	i := 0
	flush := func() {
		var lines []string
		lines, i = j.ProgressSince(i)
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
		if len(lines) > 0 && fl != nil {
			fl.Flush()
		}
	}
	for {
		flush()
		select {
		case <-j.Done():
			flush()
			st := j.Status()
			trailer := fmt.Sprintf("# sweep %s: %s (%d/%d runs, %d cached",
				st.ID, st.State, st.Completed, st.Total, st.Cached)
			if st.Failed > 0 || st.Retries > 0 {
				trailer += fmt.Sprintf(", %d failed, %d retries", st.Failed, st.Retries)
			}
			fmt.Fprintln(w, trailer+")")
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}

// handleExport waits for the job and writes the harness.Export JSON —
// the exact document cmd/experiments -export produces for the same
// options. Ablation jobs write an AblationExport instead.
func (s *Service) handleExport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		return
	}
	if j.Ablation() {
		ex, err := j.Ablations()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, http.StatusOK, ex)
		return
	}
	res, err := j.Results()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	res.WriteJSON(w)
}

// handleTrace serves a job's span-tree trace. Safe while the job still
// runs (open spans report duration-so-far); ?format=chrome renders the
// Chrome trace-event form for chrome://tracing / Perfetto.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	jt := j.Trace()
	if jt == nil {
		http.Error(w, "no trace for this sweep (submitted before tracing was enabled, or evicted)",
			http.StatusNotFound)
		return
	}
	doc := jt.Doc()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		doc.WriteChrome(w)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// flightEvent is one flight-recorder event with the class rendered as
// its name (the raw obs.Event omits Class from JSON).
type flightEvent struct {
	obs.Event
	Class string `json:"class"`
}

// FlightDoc is the /debug/flight document: build identity plus the last
// N observability events from the always-on ring sink.
type FlightDoc struct {
	Build  obs.Build     `json:"build"`
	Events []flightEvent `json:"events"`
}

// handleFlight serves the flight recorder. Always registered: the ring
// runs whatever Recorder or tracing configuration is active, so there is
// a tail of evidence even on an otherwise-unobserved server.
func (s *Service) handleFlight(w http.ResponseWriter, r *http.Request) {
	evs := s.flight.Events()
	doc := FlightDoc{Build: obs.ReadBuild(), Events: make([]flightEvent, 0, len(evs))}
	for _, e := range evs {
		doc.Events = append(doc.Events, flightEvent{Event: e, Class: e.Class.String()})
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleMetrics writes the registry in the Prometheus text exposition
// format (no client library: stdlib only — see internal/obs).
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.ServeHTTP(w, r)
}
