package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/obs/trace"
)

// traceDoc fetches a job's trace document directly from the service.
func traceDoc(t *testing.T, j *Job) *trace.Doc {
	t.Helper()
	jt := j.Trace()
	if jt == nil {
		t.Fatalf("job %s has no trace", j.ID)
	}
	return jt.Doc()
}

// findSpans returns every span named name anywhere in the tree.
func findSpans(n *trace.Node, name string) []*trace.Node {
	if n == nil {
		return nil
	}
	var out []*trace.Node
	if n.Name == name {
		out = append(out, n)
	}
	for _, c := range n.Children {
		out = append(out, findSpans(c, name)...)
	}
	return out
}

// checkAttributionSums asserts the exact-sum invariant for one cell: the
// known phases plus Other equal the cell's reported wall clock.
func checkAttributionSums(t *testing.T, cell trace.CellDoc) {
	t.Helper()
	a := cell.Attribution
	if a == nil {
		t.Fatalf("cell %s has no attribution", cell.Cell)
	}
	sum := a.QueueUS + a.CacheUS + a.AwaitUS + a.PlanUS + a.CheckpointUS + a.SimulateUS + a.OtherUS
	if sum != a.WallUS {
		t.Errorf("cell %s: phase sum %dus != wall %dus (%+v)", cell.Cell, sum, a.WallUS, a)
	}
	if a.WallUS <= 0 {
		t.Errorf("cell %s: non-positive wall clock %dus", cell.Cell, a.WallUS)
	}
}

// TestTraceRetriedCell checks the span tree across a fault-injected,
// retried sweep: every cell has the queue/cache phase chain, the retried
// cell shows multiple attempt spans plus a backoff span under simulate,
// and every cell's attribution sums to its wall clock.
func TestTraceRetriedCell(t *testing.T) {
	seed := chaosSeed(t, 0.4, 3)
	s := newService(t, Config{
		Workers:      2,
		MaxAttempts:  3,
		RetryBackoff: time.Millisecond,
		Faults:       faults.New(faults.Config{Seed: seed, PanicProb: 0.4}),
		Trace:        true,
	})
	defer s.Shutdown(context.Background())

	j := submitAndWait(t, s, smallReq())
	if st := j.Status(); st.Retries == 0 {
		t.Fatalf("chaos sweep reported no retries: %+v", st)
	}
	doc := traceDoc(t, j)
	if len(doc.Cells) != 4 {
		t.Fatalf("trace has %d cells, want 4", len(doc.Cells))
	}
	retried := 0
	for _, cell := range doc.Cells {
		root := cell.Spans
		if root == nil || root.Name != trace.RootName {
			t.Fatalf("cell %s root = %+v", cell.Cell, root)
		}
		if len(findSpans(root, trace.PhaseQueue)) != 1 {
			t.Errorf("cell %s missing queue-wait span", cell.Cell)
		}
		if len(findSpans(root, trace.PhaseCache)) != 1 {
			t.Errorf("cell %s missing cache-lookup span", cell.Cell)
		}
		// Every executed cell simulates; none were cached in a fresh
		// service, so each has a simulate phase with >= 1 attempt.
		sims := findSpans(root, trace.PhaseSimulate)
		if len(sims) != 1 {
			t.Fatalf("cell %s has %d simulate spans, want 1", cell.Cell, len(sims))
		}
		attempts := findSpans(sims[0], trace.PhaseAttempt)
		if len(attempts) == 0 {
			t.Fatalf("cell %s simulate has no attempt spans", cell.Cell)
		}
		if len(attempts) > 1 {
			retried++
			if len(findSpans(sims[0], trace.PhaseBackoff)) == 0 {
				t.Errorf("cell %s retried without a retry-backoff span", cell.Cell)
			}
			if cell.Attribution.RetryUS <= 0 {
				t.Errorf("cell %s retried but attribution has no retry time: %+v",
					cell.Cell, cell.Attribution)
			}
			if got := attempts[0].Attrs["outcome"]; got != "panic" {
				t.Errorf("first attempt outcome = %q, want panic", got)
			}
			if got := attempts[len(attempts)-1].Attrs["outcome"]; got != "ok" {
				t.Errorf("last attempt outcome = %q, want ok", got)
			}
		}
		if cell.Attribution.Attempts != len(attempts) {
			t.Errorf("cell %s attribution attempts = %d, spans show %d",
				cell.Cell, cell.Attribution.Attempts, len(attempts))
		}
		checkAttributionSums(t, cell)
	}
	if retried == 0 {
		t.Fatal("chaos seed produced no cell with multiple attempt spans")
	}
}

// TestTraceSpeculationStitch checks that a speculative pre-execution
// later claimed as a demand cache hit is stitched into the demand cell's
// trace: the demand root gains a spec-preexec subtree and the
// attribution accounts it beside (not inside) the wall clock.
func TestTraceSpeculationStitch(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "history.jsonl")
	reqA := specReq("exchange2_r", "unsafe")
	reqB := specReq("exchange2_r", "hybrid")

	s1 := newService(t, Config{Workers: 2, Speculate: true, SpecJournal: journal})
	submitAndWait(t, s1, reqA)
	submitAndWait(t, s1, reqB)
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := newService(t, Config{Workers: 2, Speculate: true, SpecJournal: journal, Trace: true})
	defer s2.Shutdown(context.Background())
	submitAndWait(t, s2, reqA)

	_, cellsB, err := s2.resolve(reqB)
	if err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "speculative pre-execution of B", 30*time.Second, func() bool {
		for _, c := range cellsB {
			key, err := c.CacheKey()
			if err != nil || !s2.cache.Contains(key) {
				return false
			}
		}
		return true
	})

	j := submitAndWait(t, s2, reqB)
	if st := j.Status(); st.Cached != st.Total {
		t.Fatalf("B not served from cache: %+v", st)
	}
	doc := traceDoc(t, j)
	if len(doc.Cells) != 1 {
		t.Fatalf("trace has %d cells, want 1", len(doc.Cells))
	}
	cell := doc.Cells[0]
	stitched := findSpans(cell.Spans, trace.PhaseSpec)
	if len(stitched) != 1 {
		t.Fatalf("demand cell has %d spec-preexec spans, want 1 stitched: %+v",
			len(stitched), cell.Spans)
	}
	if stitched[0].Attrs["stitched"] != "true" {
		t.Errorf("stitched span not marked: %v", stitched[0].Attrs)
	}
	// The speculation simulated for real, so its subtree carries the
	// simulate/attempt chain and the attribution credits SpecUS.
	if len(findSpans(stitched[0], trace.PhaseSimulate)) != 1 {
		t.Errorf("stitched subtree has no simulate span")
	}
	if cell.Attribution.SpecUS <= 0 {
		t.Errorf("attribution spec_preexec_us = %d, want > 0", cell.Attribution.SpecUS)
	}
	checkAttributionSums(t, cell)
}

// TestTraceOffByteIdentical is the zero-cost-off contract: with tracing
// disabled the export carries no attribution and is byte-identical to
// the traced service's export once the opt-in attribution annotation is
// stripped — tracing must observe, never perturb.
func TestTraceOffByteIdentical(t *testing.T) {
	off := newService(t, Config{Workers: 2})
	defer off.Shutdown(context.Background())
	on := newService(t, Config{Workers: 2, Trace: true})
	defer on.Shutdown(context.Background())

	jOff := submitAndWait(t, off, smallReq())
	jOn := submitAndWait(t, on, smallReq())

	resOff, err := jOff.Results()
	if err != nil {
		t.Fatal(err)
	}
	var bufOff bytes.Buffer
	if err := resOff.WriteJSON(&bufOff); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(bufOff.Bytes(), []byte("attribution")) {
		t.Fatal("untraced export mentions attribution")
	}
	if jOff.Trace() != nil {
		t.Fatal("untraced job has a trace")
	}

	resOn, err := jOn.Results()
	if err != nil {
		t.Fatal(err)
	}
	exOn := resOn.Export()
	for i := range exOn.Runs {
		if exOn.Runs[i].Attribution == nil {
			t.Fatalf("traced run %s/%s has no attribution", exOn.Runs[i].Workload, exOn.Runs[i].Variant)
		}
		exOn.Runs[i].Attribution = nil
	}
	stripped, err := json.Marshal(exOn)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := json.Marshal(resOff.Export())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stripped, plain) {
		t.Error("traced export differs from untraced beyond the attribution annotation")
	}
}

// TestTraceHTTP exercises the HTTP surface: the trace endpoint JSON and
// chrome forms, its absence on an untraced server, and /debug/flight.
func TestTraceHTTP(t *testing.T) {
	s := newService(t, Config{Workers: 2, Trace: true})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	j := submitAndWait(t, s, smallReq())

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, body := get("/sweeps/" + j.ID + "/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %s: %s", resp.Status, body)
	}
	var doc trace.Doc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace document is not JSON: %v", err)
	}
	if doc.ID != j.ID || len(doc.Cells) != 4 {
		t.Fatalf("trace doc = id %s, %d cells", doc.ID, len(doc.Cells))
	}
	for _, cell := range doc.Cells {
		checkAttributionSums(t, cell)
	}

	resp, body = get("/sweeps/" + j.ID + "/trace?format=chrome")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET chrome trace: %s", resp.Status)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}

	resp, _ = get("/sweeps/no-such/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET trace of unknown sweep: %s, want 404", resp.Status)
	}

	resp, body = get("/debug/flight")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/flight: %s", resp.Status)
	}
	var flight struct {
		Build struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
		Events []struct {
			Class string `json:"class"`
			Kind  string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &flight); err != nil {
		t.Fatalf("flight document is not JSON: %v", err)
	}
	if flight.Build.GoVersion == "" {
		t.Error("flight recorder missing build info")
	}
	kinds := make(map[string]bool)
	for _, e := range flight.Events {
		kinds[e.Kind] = true
	}
	if !kinds["sweep-submitted"] || !kinds["sweep-finished"] {
		t.Errorf("flight recorder missing sweep lifecycle events: %v", kinds)
	}

	// An untraced server must not expose the trace route at all.
	plain := newService(t, Config{Workers: 1})
	defer plain.Shutdown(context.Background())
	srv2 := httptest.NewServer(plain.Handler())
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/sweeps/sweep-1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced server trace route: %s, want 404", resp2.Status)
	}
	// ... but the flight recorder is always on.
	resp3, err := http.Get(srv2.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("untraced server /debug/flight: %s, want 200", resp3.Status)
	}
}

// TestSlowCellNote checks the p99 slow-cell detector: silent until the
// duration histogram has enough samples, silent for in-distribution
// cells, one counted warning (with a ClassTrace flight event) for a
// cell beyond the p99.
func TestSlowCellNote(t *testing.T) {
	s := newService(t, Config{Workers: 1, Trace: true})
	defer s.Shutdown(context.Background())
	k := harness.Key{Workload: "exchange2_r"}

	s.noteSlowCell(k, time.Hour, nil)
	if n := s.slowCells.Load(); n != 0 {
		t.Fatalf("slow cell flagged with an empty histogram: %d", n)
	}
	for i := 0; i < slowCellMinSamples; i++ {
		s.runDur.Observe(0.010)
	}
	s.noteSlowCell(k, 5*time.Millisecond, nil)
	if n := s.slowCells.Load(); n != 0 {
		t.Fatalf("in-distribution cell flagged: %d", n)
	}
	s.noteSlowCell(k, time.Second, nil)
	if n := s.slowCells.Load(); n != 1 {
		t.Fatalf("slow cell not flagged: %d", n)
	}
	found := false
	for _, e := range s.flight.Events() {
		if e.Kind == "slow-cell" {
			found = true
		}
	}
	if !found {
		t.Error("slow-cell event missing from the flight recorder")
	}
}

// TestTraceCachedCell checks a repeated sweep's cells trace as cache
// hits: no simulate span, a cache-lookup with hit=true, and a sane
// attribution.
func TestTraceCachedCell(t *testing.T) {
	s := newService(t, Config{Workers: 2, Trace: true})
	defer s.Shutdown(context.Background())
	submitAndWait(t, s, smallReq())
	j := submitAndWait(t, s, smallReq())
	if st := j.Status(); st.Cached != st.Total {
		t.Fatalf("repeat sweep not fully cached: %+v", st)
	}
	doc := traceDoc(t, j)
	for _, cell := range doc.Cells {
		if n := len(findSpans(cell.Spans, trace.PhaseSimulate)); n != 0 {
			t.Errorf("cached cell %s has %d simulate spans", cell.Cell, n)
		}
		caches := findSpans(cell.Spans, trace.PhaseCache)
		if len(caches) != 1 || caches[0].Attrs["hit"] != "true" {
			t.Errorf("cached cell %s cache span = %+v", cell.Cell, caches)
		}
		if got := cell.Spans.Attrs["status"]; got != "cached" {
			t.Errorf("cached cell %s status = %q", cell.Cell, got)
		}
		checkAttributionSums(t, cell)
	}
	if !strings.HasPrefix(j.ID, "sweep-") {
		t.Fatalf("unexpected job id %s", j.ID)
	}
}
