package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// smallReqFaultKeys reproduces the harness's per-cell fault keys for
// smallReq's four cells (workload/variant/model; no ablation suffix).
func smallReqFaultKeys() []string {
	var fks []string
	for _, wl := range []string{"exchange2_r", "deepsjeng_r"} {
		for _, v := range []core.Variant{core.Unsafe, core.Hybrid} {
			fks = append(fks, fmt.Sprintf("%s/%v/%v", wl, v, pipeline.Spectre))
		}
	}
	return fks
}

// chaosSeed finds a seed where, at the given panic probability, at least
// one of smallReq's cells panics on its first attempt, and every cell
// succeeds within maxAttempts — so the sweep is guaranteed to complete
// with retries but without permanent failures.
func chaosSeed(t *testing.T, prob float64, maxAttempts int) uint64 {
	t.Helper()
	fks := smallReqFaultKeys()
seeds:
	for seed := uint64(0); seed < 10_000; seed++ {
		inj := faults.New(faults.Config{Seed: seed, PanicProb: prob})
		transient := false
		for _, fk := range fks {
			ok := false
			for a := 0; a < maxAttempts; a++ {
				if !inj.WouldPanic(fk, a) {
					ok = true
					break
				}
			}
			if !ok {
				continue seeds // this cell would fail permanently
			}
			if inj.WouldPanic(fk, 0) {
				transient = true
			}
		}
		if transient {
			return seed
		}
	}
	t.Fatal("no chaos seed found")
	return 0
}

// writeCorruptEntryCache writes a valid v3 cache file whose single entry
// has a mismatched checksum — the moral equivalent of a bit flip on disk.
func writeCorruptEntryCache(t *testing.T, path string) {
	t.Helper()
	file := fmt.Sprintf(`{"version":%d,"entries":[{"key":"bogus","sum":"0000000000000000","result":{"cycles":12345}}]}`,
		cacheFileVersion)
	if err := os.WriteFile(path, []byte(file), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChaosSweepSurvivesTransientFaults is the headline robustness
// scenario from the issue: with an injected first-attempt panic, every
// cell artificially slowed, a corrupted cache entry on disk and the first
// cache persist hitting a full disk, a sweep still completes, reports
// accurate retry counts, and exports byte-identically to a fault-free
// run — failure recovery must not perturb determinism.
func TestChaosSweepSurvivesTransientFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	writeCorruptEntryCache(t, path)

	seed := chaosSeed(t, 0.4, 3)
	inj := faults.New(faults.Config{
		Seed:             seed,
		PanicProb:        0.4,
		SlowProb:         1,
		SlowDelay:        2 * time.Millisecond,
		DiskFullPersists: 1,
	})
	s := newService(t, Config{
		Workers:      2,
		CachePath:    path,
		MaxAttempts:  3,
		RetryBackoff: time.Millisecond,
		Faults:       inj,
	})

	j := submitAndWait(t, s, smallReq())
	st := j.Status()
	if st.Retries == 0 {
		t.Fatalf("chaos sweep reported no retries: %+v", st)
	}
	if st.Failed != 0 || len(st.Failures) != 0 {
		t.Fatalf("chaos sweep has failures: %+v", st)
	}

	m := s.Snapshot()
	if m.CacheCorruptEntries != 1 {
		t.Fatalf("corrupt cache entries = %d, want 1", m.CacheCorruptEntries)
	}
	if m.CellPanics == 0 || m.Retries == 0 || m.FaultsInjected == 0 {
		t.Fatalf("fault metrics not counted: %+v", m)
	}

	// The export must be byte-identical to a fault-free CLI run of the
	// same options.
	res, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	var chaos bytes.Buffer
	if err := res.WriteJSON(&chaos); err != nil {
		t.Fatal(err)
	}
	clean, err := harness.Run(j.Options())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := clean.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chaos.Bytes(), want.Bytes()) {
		t.Fatal("chaos export differs from fault-free export")
	}

	// The write-behind persist after the job hits the injected disk-full
	// error (counted, not fatal) ...
	deadline := time.Now().Add(10 * time.Second)
	for s.Snapshot().PersistFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disk-full persist failure never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.Snapshot().CacheDegraded {
		t.Fatal("one persist failure should not degrade the cache")
	}
	// ... and the shutdown-time persist (disk-full budget exhausted)
	// succeeds, leaving a loadable cache with all four results.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != 4 {
		t.Fatalf("reloaded cache has %d entries, want 4", reloaded.Len())
	}
}

// TestChaosPermanentFailureDegrades: a workload that panics on every
// attempt exhausts its retries; the job finishes degraded (not failed),
// itemizes the failed cells, and exports the surviving workloads
// byte-identically to a sweep that never contained the failed one.
func TestChaosPermanentFailureDegrades(t *testing.T) {
	inj := faults.New(faults.Config{PanicKey: "deepsjeng_r"})
	s := newService(t, Config{
		Workers:      2,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
		Faults:       inj,
	})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	st := j.Status()
	if st.State != JobDegraded {
		t.Fatalf("state = %s, want degraded (%+v)", st.State, st)
	}
	if st.Failed != 2 || len(st.Failures) != 2 || st.Completed != 2 {
		t.Fatalf("degraded status: %+v", st)
	}
	for _, f := range st.Failures {
		if !strings.HasPrefix(f.Cell, "deepsjeng_r/") || f.Kind != "panic" || f.Attempts != 2 {
			t.Fatalf("failure record: %+v", f)
		}
	}
	if st.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (one per failed cell)", st.Retries)
	}
	if m := s.Snapshot(); m.CellsFailed != 2 {
		t.Fatalf("cells failed = %d, want 2", m.CellsFailed)
	}

	res, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	var degraded bytes.Buffer
	if err := res.WriteJSON(&degraded); err != nil {
		t.Fatal(err)
	}
	opt := j.Options()
	var kept []workload.Workload
	for _, wl := range opt.Workloads {
		if wl.Name != "deepsjeng_r" {
			kept = append(kept, wl)
		}
	}
	opt.Workloads = kept
	clean, err := harness.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := clean.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(degraded.Bytes(), want.Bytes()) {
		t.Fatal("degraded export differs from a sweep without the failed workload")
	}
}

// TestCacheBitFlippedEntryDropped: flipping bytes inside one persisted
// result invalidates its checksum; the loader drops that entry (a miss,
// not a wrong answer) and keeps the rest.
func TestCacheBitFlippedEntryDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c := NewCache()
	c.Put("cell-a", core.Result{Stats: pipeline.Stats{Cycles: 111, Committed: 11}})
	c.Put("cell-b", core.Result{Stats: pipeline.Stats{Cycles: 222, Committed: 22}})
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := bytes.Replace(data, []byte(`"Cycles": 111`), []byte(`"Cycles": 119`), 1)
	if bytes.Equal(mangled, data) {
		t.Fatalf("test bug: pattern not found in:\n%s", data)
	}
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CorruptEntries() != 1 {
		t.Fatalf("corrupt entries = %d, want 1", loaded.CorruptEntries())
	}
	if _, ok := loaded.Get("cell-a"); ok {
		t.Fatal("bit-flipped entry served from cache")
	}
	if r, ok := loaded.Get("cell-b"); !ok || r.Cycles != 222 {
		t.Fatalf("intact entry lost: %+v ok=%v", r, ok)
	}
}

// TestCacheTruncatedFileQuarantined: an unparseable (truncated) cache
// file is renamed aside for forensics and the cache starts empty.
func TestCacheTruncatedFileQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c := NewCache()
	c.Put("cell-a", core.Result{Stats: pipeline.Stats{Cycles: 111}})
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 || loaded.QuarantinedFiles() != 1 {
		t.Fatalf("len=%d quarantined=%d, want 0/1", loaded.Len(), loaded.QuarantinedFiles())
	}
	if _, err := os.Stat(path + CorruptSuffix); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("original corrupt file still present (err=%v)", err)
	}
}

// TestCacheReadFaultDegradesHealth: an injected cache read error at
// startup must not prevent the service from starting — it starts with an
// empty cache and reports degraded health until a persist succeeds.
func TestCacheReadFaultDegradesHealth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c := NewCache()
	c.Put("cell-a", core.Result{Stats: pipeline.Stats{Cycles: 111}})
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	inj := faults.New(faults.Config{CacheReadErrProb: 1})
	s := newService(t, Config{Workers: 1, CachePath: path, Faults: inj})
	defer s.Shutdown(context.Background())
	if s.Cache().Len() != 0 {
		t.Fatalf("cache loaded %d entries through an injected read error", s.Cache().Len())
	}
	h := s.Health()
	if h.Status != "degraded" || len(h.Reasons) == 0 {
		t.Fatalf("health = %+v, want degraded", h)
	}
}

// TestPersistFailuresDegradeToMemoryOnly: once consecutive persist
// failures cross the limit, the cache switches to memory-only mode,
// health reports degraded, and shutdown succeeds without touching disk.
func TestPersistFailuresDegradeToMemoryOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nodir", "cache.json") // parent missing: every save fails
	s := newService(t, Config{Workers: 2, CachePath: path, PersistFailureLimit: 2})
	for i := 0; i < 2; i++ {
		s.persistNow()
	}
	m := s.Snapshot()
	if m.PersistFailures != 2 || !m.CacheDegraded {
		t.Fatalf("persist failures=%d degraded=%v, want 2/true", m.PersistFailures, m.CacheDegraded)
	}
	if h := s.Health(); h.Status != "degraded" {
		t.Fatalf("health = %+v, want degraded", h)
	}
	// The degraded service still serves sweeps (memory-only) and shuts
	// down cleanly without attempting the final save.
	submitAndWait(t, s, smallReq())
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestJobRegistryBounds: finished jobs are evicted past MaxJobs and after
// JobTTL; running jobs are never evicted.
func TestJobRegistryBounds(t *testing.T) {
	s := newService(t, Config{Workers: 2, MaxJobs: 2})
	defer s.Shutdown(context.Background())
	var ids []string
	for i := 0; i < 3; i++ {
		j := submitAndWait(t, s, smallReq())
		ids = append(ids, j.ID)
	}
	if n := len(s.Jobs()); n > 2 {
		t.Fatalf("registry holds %d jobs, bound is 2", n)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Fatal("oldest finished job not evicted")
	}
	if m := s.Snapshot(); m.JobsEvicted == 0 {
		t.Fatal("evictions not counted")
	}
}

func TestJobTTLEviction(t *testing.T) {
	s := newService(t, Config{Workers: 2, JobTTL: 10 * time.Millisecond})
	defer s.Shutdown(context.Background())
	j1 := submitAndWait(t, s, smallReq())
	time.Sleep(30 * time.Millisecond)
	j2 := submitAndWait(t, s, smallReq())
	if _, ok := s.Job(j1.ID); ok {
		t.Fatal("expired job not evicted")
	}
	if _, ok := s.Job(j2.ID); !ok {
		t.Fatal("fresh job evicted")
	}
}

// TestBackpressure: a submission whose cells would overflow the bounded
// queue is rejected with a typed OverloadError carrying a retry hint, and
// nothing is registered.
func TestBackpressure(t *testing.T) {
	s := newService(t, Config{Workers: 1, MaxPendingCells: 2})
	defer s.Shutdown(context.Background())
	_, err := s.Submit(smallReq()) // 4 cells > bound of 2
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if oe.Limit != 2 || oe.RetryAfter < time.Second {
		t.Fatalf("overload error: %+v", oe)
	}
	if len(s.Jobs()) != 0 {
		t.Fatal("rejected submission left a job registered")
	}
	if m := s.Snapshot(); m.JobsRejected != 1 {
		t.Fatalf("rejections counted = %d, want 1", m.JobsRejected)
	}
}

// TestShutdownConcurrentWithSubmit races Submit against Shutdown under
// the race detector: every submission either registers a job that reaches
// a terminal state, or is refused with ErrClosed; nothing leaks.
func TestShutdownConcurrentWithSubmit(t *testing.T) {
	base := runtime.NumGoroutine()
	s := newService(t, Config{Workers: 2})
	var wg sync.WaitGroup
	jobs := make(chan *Job, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := s.Submit(smallReq())
			switch err {
			case nil:
				jobs <- j
			case ErrClosed:
			default:
				t.Error(err)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(jobs)
	for j := range jobs {
		waitJob(t, j)
		if st := j.Status(); !st.State.Terminal() {
			t.Fatalf("job %s not terminal after shutdown: %+v", j.ID, st)
		}
	}
	waitGoroutines(t, base)
}

// TestShutdownConcurrentWithCancel races a mid-sweep cancellation against
// shutdown. The job must end terminal, shutdown must return cleanly, and
// no goroutines (workers, watchdogs, persist timers) may leak.
func TestShutdownConcurrentWithCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	s := newService(t, Config{Workers: 2})
	j, err := s.Submit(SweepRequest{MaxInstrs: 60_000}) // full sweep, 224 cells
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let cells start
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		j.Cancel()
	}()
	go func() {
		defer wg.Done()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	waitJob(t, j)
	if st := j.Status(); st.State != JobCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	waitGoroutines(t, base)
}

// TestShutdownCompletesInFlightCells: cells already simulating when
// shutdown begins run to completion and their results are persisted, as
// long as their job is still alive (graceful drain, not a hard kill).
func TestShutdownCompletesInFlightCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	s := newService(t, Config{Workers: 4, CachePath: path})
	j, err := s.Submit(smallReq()) // 4 cells, 4 workers: all start immediately
	if err != nil {
		t.Fatal(err)
	}
	// Wait until every cell is past the cancellation check: either its
	// flight is registered (it will run to completion on the Background
	// context) or it has already delivered.
	for {
		s.mu.Lock()
		inflight := len(s.inflight)
		s.mu.Unlock()
		if inflight+j.Status().Completed >= 4 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if st := j.Status(); st.State != JobDone || st.Completed != 4 {
		t.Fatalf("in-flight cells not drained: %+v", st)
	}
	reloaded, err := LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != 4 {
		t.Fatalf("persisted %d results, want 4", reloaded.Len())
	}
}

// TestHTTPRobustness covers the HTTP surface added for fault tolerance:
// healthz states, backpressure's 429 + Retry-After, and idempotent
// DELETE semantics.
func TestHTTPRobustness(t *testing.T) {
	s := newService(t, Config{Workers: 1, MaxPendingCells: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})

	// Healthy service: 200 with status "ok".
	var h Health
	if err := json.Unmarshal(get(t, ts.URL+"/healthz", 200), &h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %+v err=%v", h, err)
	}

	// Over-bound submission: 429 with a Retry-After hint.
	body := strings.NewReader(`{"workloads":["exchange2_r","deepsjeng_r"],"max_instrs":2000}`)
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	// A small-enough sweep is accepted; DELETE is idempotent while the
	// job is cancellable. The budget is large so the job is reliably
	// still running when the DELETE lands (cancellation then aborts the
	// cell long before the budget is reached).
	warmup := uint64(1000)
	st := postSweep(t, ts, SweepRequest{
		Workloads: []string{"exchange2_r"}, Variants: []string{"unsafe"},
		Models: []string{"spectre"}, MaxInstrs: 10_000_000, WarmupInstrs: &warmup,
	})
	del := func(id string) *http.Response {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sweeps/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if code := del(st.ID).StatusCode; code != 200 {
		t.Fatalf("DELETE running job: %d, want 200", code)
	}
	if code := del(st.ID).StatusCode; code != 200 {
		t.Fatalf("repeated DELETE of cancelled job: %d, want 200 (idempotent)", code)
	}

	// DELETE of a finished job is a conflict with a clear body.
	st2 := postSweep(t, ts, SweepRequest{
		Workloads: []string{"exchange2_r"}, Variants: []string{"unsafe"},
		Models: []string{"spectre"}, MaxInstrs: 2000, WarmupInstrs: &warmup,
	})
	j2, _ := s.Job(st2.ID)
	waitJob(t, j2)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sweeps/"+st2.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var conflict map[string]string
	json.NewDecoder(resp.Body).Decode(&conflict)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE finished job: %d, want 409", resp.StatusCode)
	}
	if !strings.Contains(conflict["error"], "already finished") {
		t.Fatalf("409 body: %+v", conflict)
	}

	// Draining service: healthz 503.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	b := get(t, ts.URL+"/healthz", http.StatusServiceUnavailable)
	if err := json.Unmarshal(b, &h); err != nil || h.Status != "draining" {
		t.Fatalf("draining healthz: %s", b)
	}
}

// TestHealthDegradedReasons: each degradation source surfaces its reason.
func TestHealthDegradedReasons(t *testing.T) {
	s := newService(t, Config{Workers: 1, RetryStormThreshold: 2})
	defer s.Shutdown(context.Background())
	if h := s.Health(); h.Status != "ok" {
		t.Fatalf("fresh service health: %+v", h)
	}
	s.noteRetry()
	s.noteRetry()
	h := s.Health()
	if h.Status != "degraded" || !containsStr(h.Reasons, "retry-storm") {
		t.Fatalf("storm health: %+v", h)
	}
	s.cacheDegraded.Store(true)
	if h := s.Health(); !containsStr(h.Reasons, "cache-degraded") {
		t.Fatalf("degraded-cache health: %+v", h)
	}
}

func containsStr(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}
