package simsvc

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// functionalReq is smallReq in functional-warmup mode.
func functionalReq() SweepRequest {
	req := smallReq()
	req.WarmupMode = "functional"
	return req
}

func TestFunctionalWarmupCheckpointTier(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	defer s.Shutdown(context.Background())

	j := submitAndWait(t, s, functionalReq())
	if _, err := j.Results(); err != nil {
		t.Fatal(err)
	}

	// 4 cells over 2 workloads: one capture per (workload, warmup), every
	// other cell restores it. Warmup is simulated exactly once per
	// workload.
	m := s.Snapshot()
	if m.CheckpointsCaptured != 2 {
		t.Errorf("captured %d checkpoints, want 2", m.CheckpointsCaptured)
	}
	if m.CheckpointHits != 2 {
		t.Errorf("%d checkpoint hits, want 2", m.CheckpointHits)
	}
	if want := 2 * uint64(1000); m.WarmupInstrsSimulated != want {
		t.Errorf("simulated %d warmup instructions, want %d", m.WarmupInstrsSimulated, want)
	}

	// A repeated functional sweep answers from the result cache without
	// touching the checkpoint tier again.
	submitAndWait(t, s, functionalReq())
	if m2 := s.Snapshot(); m2.CheckpointsCaptured != 2 || m2.CheckpointHits != 2 {
		t.Errorf("cached re-sweep changed checkpoint counters: %+v", m2)
	}
}

func TestFunctionalModeMatchesHarness(t *testing.T) {
	// The service's checkpoint tier must be invisible in the results: a
	// functional-mode job's export equals a direct harness sweep with the
	// same options (which captures and reuses its own checkpoints).
	s := newService(t, Config{Workers: 2})
	defer s.Shutdown(context.Background())

	req := functionalReq()
	j := submitAndWait(t, s, req)
	got, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := s.resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Runs, want.Runs) {
		t.Fatal("service functional-mode results differ from direct harness run")
	}
	if got, want := mustJSON(t, got.Export()), mustJSON(t, want.Export()); got != want {
		t.Fatal("service export differs from harness export")
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCacheKeySeparatesWarmupModes(t *testing.T) {
	a := RunSpec{Workload: "mcf_r", WarmupInstrs: 1000, MaxInstrs: 2000}
	b := a
	b.WarmupMode = 1
	ka, err := a.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka == kb {
		t.Fatal("detailed and functional cells share a cache key")
	}
}

func TestCheckpointKeyIgnoresVariantModelAblation(t *testing.T) {
	a := RunSpec{Workload: "mcf_r", WarmupInstrs: 1000, MaxInstrs: 2000}
	b := a
	b.Variant = 6 // Hybrid
	b.Model = 1
	b.MaxInstrs = 9000
	b.Ablate.AlwaysValidate = true
	ka, err := a.CheckpointKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.CheckpointKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("checkpoint key depends on variant/model/ablation/budget")
	}
	c := a
	c.WarmupInstrs = 2000
	kc, err := c.CheckpointKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka == kc {
		t.Fatal("checkpoint key ignores the warmup budget")
	}
}

func TestAblationJob(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	defer s.Shutdown(context.Background())

	warmup := uint64(1000)
	req := SweepRequest{
		Workloads:    []string{"exchange2_r"},
		Models:       []string{"spectre"},
		MaxInstrs:    2000,
		WarmupInstrs: &warmup,
		WarmupMode:   "functional",
		Ablations:    true,
	}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if st := j.Status(); st.State != JobDone {
		t.Fatalf("job %s: state %s, err %q", j.ID, st.State, st.Error)
	}
	rowsPer := len(harness.AblationRows())
	if want := 1 + rowsPer; j.Status().Total != want {
		t.Fatalf("ablation job has %d cells, want %d", j.Status().Total, want)
	}
	if _, err := j.Results(); err == nil {
		t.Fatal("ablation job should refuse the sweep export")
	}
	ex, err := j.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Sections) != 1 || ex.Sections[0].Model != "Spectre" {
		t.Fatalf("sections: %+v", ex.Sections)
	}
	for _, r := range ex.Sections[0].Rows {
		if r.NormTime <= 0 {
			t.Fatalf("%s: no measurement", r.Name)
		}
	}

	// The aggregated rows equal the CLI path's (shared RunOne + shared
	// aggregation, and the same per-workload checkpoints semantics).
	opt, _, err := s.resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.RunAblations(opt, pipeline.Spectre)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ex.Sections[0].Rows, want) {
		t.Fatalf("service ablation rows differ from CLI rows:\nservice %+v\ncli     %+v", ex.Sections[0].Rows, want)
	}
}

func TestAblationsOverHTTP(t *testing.T) {
	_, ts := httpService(t)

	warmup := uint64(1000)
	st := postSweep(t, ts, SweepRequest{
		Workloads:    []string{"deepsjeng_r"},
		Models:       []string{"spectre", "futuristic"},
		MaxInstrs:    2000,
		WarmupInstrs: &warmup,
		Ablations:    true,
	})
	rowsPer := len(harness.AblationRows())
	if want := 2 * (1 + rowsPer); st.Total != want {
		t.Fatalf("ablation job has %d cells, want %d", st.Total, want)
	}
	body := get(t, fmt.Sprintf("%s/sweeps/%s/export", ts.URL, st.ID), 200)
	var ex AblationExport
	if err := json.Unmarshal(body, &ex); err != nil {
		t.Fatalf("export is not an ablation document: %v\n%s", err, body)
	}
	if len(ex.Sections) != 2 {
		t.Fatalf("export has %d sections, want 2", len(ex.Sections))
	}
	for _, sec := range ex.Sections {
		if len(sec.Rows) != rowsPer {
			t.Fatalf("%s: %d rows, want %d", sec.Model, len(sec.Rows), rowsPer)
		}
		for _, r := range sec.Rows {
			if r.NormTime <= 0 {
				t.Fatalf("%s/%s: no measurement", sec.Model, r.Name)
			}
		}
	}
}

// Guard against the ablation cell enumeration and the aggregation in
// Job.Ablations drifting apart: the cell order is a documented contract.
func TestAblationCellOrder(t *testing.T) {
	opt := harness.DefaultOptions()
	var wls []workload.Workload
	for _, n := range []string{"mcf_r", "xz_r"} {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, w)
	}
	opt.Workloads = wls
	opt.Models = []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic}
	cells := ablationCells(opt)
	rowsPer := len(harness.AblationRows())
	perWorkload := 1 + rowsPer
	if want := 2 * 2 * perWorkload; len(cells) != want {
		t.Fatalf("%d cells, want %d", len(cells), want)
	}
	// Model-major, workload-minor; first cell of each block is the Unsafe
	// baseline with no ablation.
	for mi, m := range opt.Models {
		for wi, wl := range opt.Workloads {
			base := cells[mi*2*perWorkload+wi*perWorkload]
			if base.Model != m || base.Workload != wl.Name || base.Variant != 0 {
				t.Fatalf("block (%d,%d) starts with %+v", mi, wi, base)
			}
		}
	}
}
