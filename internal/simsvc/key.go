// Package simsvc is a long-running simulation service over the experiment
// harness: it accepts sweep jobs (any subset of workloads × Table II
// variants × attack models × instruction budgets), schedules the
// individual runs on a bounded worker pool with context-based
// cancellation, deduplicates identical in-flight runs, and stores
// completed results in a content-addressed cache.
//
// Caching simulation results is sound because the simulator is fully
// deterministic (DESIGN.md "Determinism"): the same (workload, variant,
// model, warmup, budget, ablation) cell always produces bit-identical
// statistics, so a cached result is indistinguishable from a re-run.
package simsvc

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// keySchema versions the cache-key derivation. Bump it whenever anything
// that feeds a simulation but is not captured below changes semantics —
// in particular the workload kernels' *initial memory images* (their
// seeded PRNG fills live in init functions the key cannot observe; the
// program text itself is fingerprinted) or the simulated
// microarchitecture (pipeline/mem defaults).
// v2: RunSpec gained IntervalCycles (interval time series ride along in
// the cached core.Result, so two runs differing only in sampling
// cadence are distinct cache entries).
// v3: RunSpec gained WarmupMode (functional warmup produces different —
// exactly-bounded, non-speculative — warm state than detailed warmup, so
// the two modes are distinct cache entries). The same schema also keys
// the in-memory checkpoint tier (see Service.checkpoint).
// v4: RunSpec gained SimMode and the sampling parameters (interval
// length, max k, seed). A sampled result is a reconstruction, not a
// measurement, so it must never answer a detailed query (or vice versa),
// and two sampled runs with different sampling parameters are distinct
// entries. The same schema keys the sample-plan tier (Service.samplePlan).
// v5: the variant is keyed by its registered scheme NAME instead of its
// integer id. Variant ids beyond Table II are registration-order
// dependent (core.RegisterScheme), so a build that registers schemes in
// a different order must not alias another build's entries; names are
// order-independent. Old v4 entries are invalidated (never corrupted) —
// the schema string feeds the hash, so v4 and v5 keys cannot collide.
const keySchema = "sdo-cache-v5"

// RunSpec identifies one simulation cell, in the exact terms the cache
// key is derived from.
type RunSpec struct {
	Workload       string
	Variant        core.Variant
	Model          pipeline.AttackModel
	WarmupInstrs   uint64
	MaxInstrs      uint64
	IntervalCycles uint64
	WarmupMode     core.WarmupMode
	Ablate         core.Ablation

	// SimMode is detailed or sampled ("" means detailed). The sampling
	// parameters below are zero unless SimMode is sampled.
	SimMode        harness.SimMode
	SampleInterval uint64
	SampleMaxK     int
	SampleSeed     uint64
}

// simMode normalizes the zero value ("") to detailed, so specs built
// before SimMode existed (and ablation cells, which are always detailed)
// key identically to explicit detailed cells.
func (s RunSpec) simMode() harness.SimMode {
	if s.SimMode == "" {
		return harness.SimDetailed
	}
	return s.SimMode
}

// Key converts the spec to the harness's run key.
func (s RunSpec) Key() harness.Key {
	return harness.Key{Workload: s.Workload, Variant: s.Variant, Model: s.Model}
}

// fingerprints memoizes per-workload program fingerprints: Build is
// deterministic per name, so the fingerprint is a function of the name.
var fingerprints sync.Map // string -> string

// programFingerprint hashes a workload's generated program text: every
// instruction's opcode, registers, immediate and branch target. It makes
// the cache key content-addressed with respect to the kernel's code, so
// editing a kernel invalidates its cached results without a schema bump.
func programFingerprint(name string) (string, error) {
	if fp, ok := fingerprints.Load(name); ok {
		return fp.(string), nil
	}
	wl, err := workload.ByName(name)
	if err != nil {
		return "", err
	}
	prog, _ := wl.Build()
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, in := range prog.Instrs {
		writeInt(int64(in.Op))
		writeInt(int64(in.Rd))
		writeInt(int64(in.Rs))
		writeInt(int64(in.Rt))
		writeInt(in.Imm)
		writeInt(int64(in.Target))
	}
	fp := hex.EncodeToString(h.Sum(nil)[:16])
	fingerprints.Store(name, fp)
	return fp, nil
}

// CacheKey derives the content-addressed cache key: a SHA-256 over the
// canonical encoding of everything that determines a run's result —
// workload identity (name + program fingerprint), the registered
// protection scheme (by name, see the v5 note above), attack model,
// warmup and measurement budgets, and the ablation flags.
func (s RunSpec) CacheKey() (string, error) {
	fp, err := programFingerprint(s.Workload)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|wl=%s|prog=%s|scheme=%s|model=%d|warmup=%d|max=%d|interval=%d|wmode=%d|ablate=%t,%t,%t,%t|sim=%s|sinterval=%d|smaxk=%d|sseed=%d",
		keySchema, s.Workload, fp, s.Variant.String(), int(s.Model),
		s.WarmupInstrs, s.MaxInstrs, s.IntervalCycles, int(s.WarmupMode),
		s.Ablate.DisableEarlyForward, s.Ablate.AlwaysValidate,
		s.Ablate.NoImplicitChannelProtection, s.Ablate.OblDRAMVariant,
		s.simMode(), s.SampleInterval, s.SampleMaxK, s.SampleSeed)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CheckpointKey identifies the warmup checkpoint a functional-mode cell
// can restore from: workload identity (name + program fingerprint) and
// warmup budget — deliberately nothing else, because the checkpoint is
// variant/model/ablation-independent. Every cell of a sweep grid that
// shares (workload, warmup) shares one checkpoint-tier entry.
func (s RunSpec) CheckpointKey() (string, error) {
	fp, err := programFingerprint(s.Workload)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s|ckpt|wl=%s|prog=%s|warmup=%d", keySchema, s.Workload, fp, s.WarmupInstrs), nil
}

// PlanKey identifies the sampling plan a sampled-mode cell executes:
// workload identity, measurement window placement and the sampling
// parameters — deliberately not variant, model or ablation, because BBV
// profiling and clustering run on the functional emulator and are
// microarchitecture-independent. Every sampled cell of a sweep grid that
// shares (workload, warmup, window, sampling config) shares one
// plan-tier entry, checkpoints included.
func (s RunSpec) PlanKey() (string, error) {
	fp, err := programFingerprint(s.Workload)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s|plan|wl=%s|prog=%s|warmup=%d|window=%d|sinterval=%d|smaxk=%d|sseed=%d",
		keySchema, s.Workload, fp, s.WarmupInstrs, s.MaxInstrs,
		s.SampleInterval, s.SampleMaxK, s.SampleSeed), nil
}
