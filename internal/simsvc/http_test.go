package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func httpService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := newService(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts
}

func postSweep(t *testing.T, ts *httptest.Server, req SweepRequest) Status {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /sweeps: %d: %s", resp.StatusCode, b)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func get(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: %d (want %d): %s", url, resp.StatusCode, wantCode, b)
	}
	return b
}

func TestHTTPEndToEnd(t *testing.T) {
	_, ts := httpService(t)

	if got := string(get(t, ts.URL+"/healthz", 200)); !strings.Contains(got, "ok") {
		t.Fatalf("healthz: %q", got)
	}

	st := postSweep(t, ts, smallReq())
	if st.Total != 4 {
		t.Fatalf("submitted sweep has %d cells, want 4", st.Total)
	}

	// Export blocks until the job completes, then returns the full
	// harness document.
	exp1 := get(t, fmt.Sprintf("%s/sweeps/%s/export", ts.URL, st.ID), 200)
	var doc struct {
		Runs []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(exp1, &doc); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	if len(doc.Runs) != 4 {
		t.Fatalf("export has %d runs, want 4", len(doc.Runs))
	}

	// Status is now done; progress replays one line per run plus the
	// trailer.
	var done Status
	json.Unmarshal(get(t, fmt.Sprintf("%s/sweeps/%s", ts.URL, st.ID), 200), &done)
	if done.State != JobDone || done.Completed != 4 {
		t.Fatalf("status after export: %+v", done)
	}
	prog := string(get(t, fmt.Sprintf("%s/sweeps/%s/progress", ts.URL, st.ID), 200))
	if n := strings.Count(prog, "cycles"); n != 4 {
		t.Fatalf("progress has %d run lines, want 4:\n%s", n, prog)
	}
	if !strings.Contains(prog, "# sweep "+st.ID+": done") {
		t.Fatalf("progress missing trailer:\n%s", prog)
	}

	// A repeated sweep is served entirely from cache and its export is
	// byte-identical.
	st2 := postSweep(t, ts, smallReq())
	exp2 := get(t, fmt.Sprintf("%s/sweeps/%s/export", ts.URL, st2.ID), 200)
	if !bytes.Equal(exp1, exp2) {
		t.Fatal("cached sweep export differs from the original")
	}
	var st2done Status
	json.Unmarshal(get(t, fmt.Sprintf("%s/sweeps/%s", ts.URL, st2.ID), 200), &st2done)
	if st2done.Cached != 4 {
		t.Fatalf("second sweep: %d cells cached, want 4", st2done.Cached)
	}

	// Metrics expose the hit/miss and execution counters.
	metrics := string(get(t, ts.URL+"/metrics", 200))
	for _, want := range []string{
		"sdo_cache_hits_total 4",
		"sdo_cache_misses_total 4",
		"sdo_runs_executed_total 4",
		"sdo_queue_depth 0",
		"sdo_inflight_runs 0",
		"sdo_jobs_total 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// List shows both jobs.
	var list []Status
	json.Unmarshal(get(t, ts.URL+"/sweeps", 200), &list)
	if len(list) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(list))
	}

	// Unknown job and bad submissions are client errors.
	get(t, ts.URL+"/sweeps/sweep-999", 404)
	resp, err := http.Post(ts.URL+"/sweeps", "application/json",
		strings.NewReader(`{"workloads":["nope_r"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sweep: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPCancel(t *testing.T) {
	_, ts := httpService(t)
	st := postSweep(t, ts, SweepRequest{MaxInstrs: 60_000}) // big sweep
	delReq, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/sweeps/%s", ts.URL, st.ID), nil)
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.State != JobCancelled {
		t.Fatalf("after DELETE: state %s, want cancelled", got.State)
	}
	// Export of a cancelled sweep reports the conflict.
	get(t, fmt.Sprintf("%s/sweeps/%s/export", ts.URL, st.ID), http.StatusConflict)
}
