package simsvc

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Work stealing (the cluster's second pillar). When Config.WorkStealing
// is on, the service keeps a registry of cells that are enqueued but not
// yet picked up by a worker. An idle cluster peer (the thief) claims up
// to k of them via Service.StealCells, which hands each out under a
// lease: thief identity plus an expiry, written ahead to the job journal.
// The thief executes the cell through its own service (so it benefits
// from its own cache, checkpoint and plan tiers) and posts the
// content-addressed wire entry back via Service.CompleteSteal.
//
// Safety comes from the cache's content addressing, not from the lease:
// a lease only bounds how long the owner's worker waits before running
// the cell itself. If the thief is SIGKILL'd mid-claim the lease expires,
// the owner reclaims the cell by simulating locally, and a late
// completion from a resurrected thief is just a harmless duplicate Put
// of a byte-identical entry. Results are exactly-once by key, never by
// coordination.

// DefaultStealLeaseTTL bounds how long the owner waits on a stolen
// cell's result before reclaiming it.
const DefaultStealLeaseTTL = 30 * time.Second

// StolenCell is one leased unit of work handed to a thief.
type StolenCell struct {
	// Key is the cell's content-addressed cache key; CompleteSteal
	// expects the result posted back under it.
	Key string `json:"key"`
	// Spec is the full run specification; the thief re-derives Key from
	// it and refuses the claim on mismatch (schema-version skew guard).
	Spec RunSpec `json:"spec"`
	// Until is the lease expiry; past it the owner reclaims the cell.
	Until time.Time `json:"until"`
}

// pendingCell is a queued-but-not-started cell, stealable by peers.
// refs counts how many queued runCell invocations share the key.
type pendingCell struct {
	spec RunSpec
	refs int
}

// cellLease is one outstanding steal claim.
type cellLease struct {
	thief string
	until time.Time
	done  chan struct{} // closed by CompleteSteal
}

// stealState tracks pending (stealable) cells and outstanding leases.
// A nil *stealState is the stealing-off state: every method no-ops.
type stealState struct {
	mu      sync.Mutex
	pending map[string]*pendingCell
	order   []string // FIFO claim order (keys; may hold stale entries)
	leases  map[string]*cellLease
}

func newStealState() *stealState {
	return &stealState{
		pending: make(map[string]*pendingCell),
		leases:  make(map[string]*cellLease),
	}
}

// enqueue registers a queued cell as stealable.
func (st *stealState) enqueue(key string, spec RunSpec) {
	if st == nil {
		return
	}
	st.mu.Lock()
	if p, ok := st.pending[key]; ok {
		p.refs++
	} else {
		st.pending[key] = &pendingCell{spec: spec, refs: 1}
		st.order = append(st.order, key)
	}
	st.mu.Unlock()
}

// dequeue unregisters one queued instance of key (a worker picked it
// up); the key stops being stealable once the last instance is gone.
func (st *stealState) dequeue(key string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	if p, ok := st.pending[key]; ok {
		if p.refs--; p.refs <= 0 {
			delete(st.pending, key)
		}
	}
	st.mu.Unlock()
}

// lease returns the outstanding lease for key, if any.
func (st *stealState) lease(key string) (*cellLease, bool) {
	if st == nil {
		return nil, false
	}
	st.mu.Lock()
	l, ok := st.leases[key]
	st.mu.Unlock()
	return l, ok
}

// drop removes l from the lease table iff it is still the current lease
// for key, reporting whether it did (the caller then owns accounting).
func (st *stealState) drop(key string, l *cellLease) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if cur, ok := st.leases[key]; ok && cur == l {
		delete(st.leases, key)
		return true
	}
	return false
}

// StealCells claims up to max pending cells for thief under fresh
// leases. Cells already cached, in flight locally, or under an
// unexpired lease are not handed out. Returns nil when stealing is off
// or nothing is claimable.
func (s *Service) StealCells(thief string, max int) []StolenCell {
	st := s.steal
	if st == nil || max <= 0 || thief == "" {
		return nil
	}
	// Snapshot claimable candidates in FIFO order, then filter against
	// the cache and the inflight table outside st.mu (lock order: never
	// hold st.mu and s.mu together).
	now := time.Now()
	var expired []string
	var cands []StolenCell
	st.mu.Lock()
	live := st.order[:0]
	for _, key := range st.order {
		p, ok := st.pending[key]
		if !ok {
			continue // dequeued; drop from the order lazily
		}
		live = append(live, key)
		if l, leased := st.leases[key]; leased {
			if now.Before(l.until) {
				continue
			}
			// Expired and never completed: reclaim by re-stealing.
			delete(st.leases, key)
			expired = append(expired, key)
		}
		if len(cands) < max {
			cands = append(cands, StolenCell{Key: key, Spec: p.spec})
		}
	}
	st.order = live
	st.mu.Unlock()
	for _, key := range expired {
		s.leaseExpiries.Add(1)
		s.event("steal-lease-expired", key)
	}

	until := now.Add(s.cfg.StealLeaseTTL)
	var out []StolenCell
	for _, c := range cands {
		if s.cache.Contains(c.Key) {
			continue
		}
		s.mu.Lock()
		_, running := s.inflight[c.Key]
		s.mu.Unlock()
		if running {
			continue
		}
		st.mu.Lock()
		_, leased := st.leases[c.Key]
		_, stillPending := st.pending[c.Key]
		if !leased && stillPending {
			st.leases[c.Key] = &cellLease{thief: thief, until: until, done: make(chan struct{})}
		}
		st.mu.Unlock()
		if leased || !stillPending {
			continue
		}
		// Write-ahead: the lease is durable before the claim leaves the
		// node, so the journal always explains why a cell sat waiting.
		s.journal.lease(c.Key, thief, until)
		c.Until = until
		out = append(out, c)
		s.cellsStolen.Add(1)
	}
	if len(out) > 0 && s.rec.On(obs.ClassTrace) {
		s.rec.Emit(obs.Event{Class: obs.ClassTrace, Kind: "cells-stolen",
			Detail: fmt.Sprintf("%d cell(s) leased to %s until %s", len(out), thief, until.Format(time.RFC3339))})
	}
	return out
}

// CompleteSteal accepts a stolen cell's result: the body must be the
// content-addressed wire entry for key (same format and checksum as
// GET /cache/{key}), and is rejected — never cached — on any mismatch.
// Completing an expired or unknown lease is fine: the entry is still
// byte-identical by construction, so the Put is idempotent.
func (s *Service) CompleteSteal(key string, body []byte) error {
	if s.steal == nil {
		return fmt.Errorf("simsvc: work stealing disabled")
	}
	r, err := decodePeerEntry(key, body)
	if err != nil {
		return err
	}
	s.cache.Put(key, r)
	s.schedulePersist()
	s.stealCompleted.Add(1)
	st := s.steal
	st.mu.Lock()
	l, ok := st.leases[key]
	if ok {
		delete(st.leases, key)
	}
	st.mu.Unlock()
	if ok {
		close(l.done)
		s.journal.leaseDone(key)
		if s.rec.On(obs.ClassTrace) {
			s.rec.Emit(obs.Event{Class: obs.ClassTrace, Kind: "steal-complete",
				Detail: fmt.Sprintf("%s from %s", key, l.thief)})
		}
	}
	return nil
}

// stealWait blocks a worker that dequeued a leased (stolen) cell until
// the thief delivers or the lease expires, under a steal-claim span.
// Returns the result on delivery; an expiry reclaims the cell (the
// caller simulates locally, exactly as if it was never stolen).
func (s *Service) stealWait(root *trace.Span, key string) (core.Result, string, bool) {
	l, ok := s.steal.lease(key)
	if !ok {
		return core.Result{}, "", false
	}
	sp := root.Child(trace.PhaseStealClaim)
	sp.Set("thief", l.thief)
	wait := time.Until(l.until)
	if wait < 0 {
		wait = 0
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-l.done:
	case <-t.C:
	case <-s.ctx.Done():
	}
	if r, hit := s.cache.Get(key); hit {
		sp.Set("outcome", "completed")
		sp.Finish()
		return r, l.thief, true
	}
	sp.Set("outcome", "expired")
	sp.Finish()
	if s.steal.drop(key, l) {
		s.leaseExpiries.Add(1)
		s.event("steal-lease-expired", fmt.Sprintf("%s (thief %s); reclaimed locally", key, l.thief))
	}
	return core.Result{}, "", false
}

// RunStolen executes a stolen cell's spec on this (thief) node — local
// cache first, then the full execute path with its checkpoint/plan tiers
// and artifact peering — and returns the content-addressed wire entry to
// post back to the owner.
func (s *Service) RunStolen(ctx context.Context, spec RunSpec) ([]byte, error) {
	key, err := spec.CacheKey()
	if err != nil {
		return nil, err
	}
	if e, ok := s.cache.PeekEncoded(key); ok {
		return json.Marshal(e)
	}
	pol := harness.RunPolicy{
		MaxAttempts:  s.cfg.MaxAttempts,
		RetryBackoff: s.cfg.RetryBackoff,
		CellTimeout:  s.cellTimeout(),
		StallTimeout: s.cfg.StallTimeout,
		Notify:       s.cellEvent,
	}
	r, _, elapsed, err := s.execute(ctx, spec, pol)
	if elapsed > 0 {
		s.runNanos.Add(uint64(elapsed))
		s.runDur.Observe(elapsed.Seconds())
		s.runsExecuted.Add(1)
	}
	if err != nil {
		return nil, err
	}
	s.cache.Put(key, r)
	s.schedulePersist()
	e, ok := s.cache.PeekEncoded(key)
	if !ok {
		return nil, fmt.Errorf("simsvc: stolen cell %s: result not cacheable", key)
	}
	return json.Marshal(e)
}
