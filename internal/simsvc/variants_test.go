package simsvc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestHTTPVariants checks GET /variants lists every registered scheme —
// the Table II rows and the registered additions — with the metadata
// sdoctl renders (name, aliases, description).
func TestHTTPVariants(t *testing.T) {
	_, ts := httpService(t)

	var got []VariantInfo
	if err := json.Unmarshal(get(t, ts.URL+"/variants", 200), &got); err != nil {
		t.Fatalf("/variants is not JSON: %v", err)
	}
	if want := len(core.Registered()); len(got) != want {
		t.Fatalf("/variants listed %d schemes, want %d", len(got), want)
	}
	byName := make(map[string]VariantInfo, len(got))
	for _, v := range got {
		if v.Description == "" {
			t.Errorf("scheme %q has no description", v.Name)
		}
		byName[v.Name] = v
	}
	for _, want := range []string{"Unsafe", "STT{ld}", "Hybrid", "SafeSpec", "SpecBox"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("/variants missing scheme %q", want)
		}
	}
	if ss := byName["SafeSpec"]; !contains(ss.Aliases, "safespec") {
		t.Errorf("SafeSpec aliases = %v, want to include %q", ss.Aliases, "safespec")
	}
	if sb := byName["SpecBox"]; sb.TableII {
		t.Errorf("SpecBox marked as a Table II row; it is a registered addition")
	}
	if h := byName["Hybrid"]; !h.SDO || !h.TableII {
		t.Errorf("Hybrid flags = sdo:%t table2:%t, want both true", h.SDO, h.TableII)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestHTTPUnknownVariant checks a sweep naming an unknown scheme is
// rejected with 400 and an error body that lists every valid name, so
// the caller can self-correct without consulting /variants.
func TestHTTPUnknownVariant(t *testing.T) {
	_, ts := httpService(t)

	resp, err := http.Post(ts.URL+"/sweeps", "application/json",
		strings.NewReader(`{"workloads":["exchange2_r"],"variants":["nope"],"max_instrs":2000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown variant: status %d, want 400: %s", resp.StatusCode, body)
	}
	for _, want := range []string{`"nope"`, "Unsafe", "STT{ld}", "Hybrid", "Perfect", "SafeSpec", "SpecBox"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("400 body missing %q:\n%s", want, body)
		}
	}
}

// TestHTTPShadowSchemeSweep runs SafeSpec and SpecBox end to end over
// the HTTP API: the registry additions are sweepable exactly like the
// Table II rows, cache included.
func TestHTTPShadowSchemeSweep(t *testing.T) {
	_, ts := httpService(t)

	warmup := uint64(1000)
	req := SweepRequest{
		Workloads:    []string{"exchange2_r"},
		Variants:     []string{"safespec", "specbox"},
		Models:       []string{"spectre"},
		MaxInstrs:    2000,
		WarmupInstrs: &warmup,
	}
	st := postSweep(t, ts, req)
	if st.Total != 2 {
		t.Fatalf("shadow sweep has %d cells, want 2", st.Total)
	}
	exp := get(t, fmt.Sprintf("%s/sweeps/%s/export", ts.URL, st.ID), 200)
	var doc struct {
		Runs []struct {
			Variant   string `json:"variant"`
			Cycles    uint64 `json:"cycles"`
			Committed uint64 `json:"committed"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(exp, &doc); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	if len(doc.Runs) != 2 {
		t.Fatalf("export has %d runs, want 2", len(doc.Runs))
	}
	seen := map[string]bool{}
	for _, r := range doc.Runs {
		seen[r.Variant] = true
		if r.Cycles == 0 || r.Committed == 0 {
			t.Errorf("run %s: empty counters %+v", r.Variant, r)
		}
	}
	if !seen["SafeSpec"] || !seen["SpecBox"] {
		t.Fatalf("export variants = %v, want SafeSpec and SpecBox", seen)
	}

	// Resubmitting hits the v5 cache (scheme name keyed).
	st2 := postSweep(t, ts, req)
	var done Status
	json.Unmarshal(get(t, fmt.Sprintf("%s/sweeps/%s", ts.URL, st2.ID), 200), &done)
	get(t, fmt.Sprintf("%s/sweeps/%s/export", ts.URL, st2.ID), 200)
	json.Unmarshal(get(t, fmt.Sprintf("%s/sweeps/%s", ts.URL, st2.ID), 200), &done)
	if done.Cached != 2 {
		t.Fatalf("resubmitted shadow sweep: %d cells cached, want 2", done.Cached)
	}
}
