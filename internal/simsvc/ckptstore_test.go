package simsvc

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/harness"
)

func TestCheckpointStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")

	// First server: functional-mode sweep captures one checkpoint per
	// workload and persists each to the store.
	s1 := newService(t, Config{Workers: 2, CachePath: path})
	submitAndWait(t, s1, functionalReq())
	m1 := s1.Snapshot()
	if m1.CheckpointsCaptured != 2 || m1.CheckpointsPersisted != 2 || m1.CheckpointDiskHits != 0 {
		t.Fatalf("first server checkpoint counters: %+v", m1)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(path + ckptDirSuffix)
	if err != nil || len(files) != 2 {
		t.Fatalf("checkpoint dir: %d files, err %v; want 2", len(files), err)
	}

	// Restarted server, different measurement budget: the result cache
	// cannot answer (different cache keys), but warmup state restores
	// from the store — zero warmup instructions are re-simulated.
	s2 := newService(t, Config{Workers: 2, CachePath: path})
	defer s2.Shutdown(context.Background())
	req := functionalReq()
	req.MaxInstrs = 3000
	j := submitAndWait(t, s2, req)
	m2 := s2.Snapshot()
	if m2.CheckpointDiskHits != 2 || m2.CheckpointsCaptured != 0 {
		t.Errorf("restarted server did not restore from disk: %+v", m2)
	}
	if m2.WarmupInstrsSimulated != 0 {
		t.Errorf("restarted server re-simulated %d warmup instructions", m2.WarmupInstrsSimulated)
	}

	// Disk-restored checkpoints must be invisible in the results: equal
	// to a direct harness run with the same options.
	got, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := s2.resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Runs, want.Runs) {
		t.Fatal("results via disk-restored checkpoints differ from a fresh run")
	}
}

func TestCheckpointStoreRejectsBudgetMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")

	s1 := newService(t, Config{Workers: 2, CachePath: path})
	submitAndWait(t, s1, functionalReq())
	s1.Shutdown(context.Background())

	// Same workloads, different warmup budget: the checkpoint key embeds
	// the budget, so the persisted files are simply never found and fresh
	// captures happen.
	s2 := newService(t, Config{Workers: 2, CachePath: path})
	defer s2.Shutdown(context.Background())
	req := functionalReq()
	w := uint64(1500)
	req.WarmupInstrs = &w
	submitAndWait(t, s2, req)
	m := s2.Snapshot()
	if m.CheckpointDiskHits != 0 || m.CheckpointsCaptured != 2 {
		t.Errorf("budget change reused stale checkpoints: %+v", m)
	}
}

func TestCheckpointStoreDisabledWithoutCachePath(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())
	submitAndWait(t, s, functionalReq())
	if m := s.Snapshot(); m.CheckpointsPersisted != 0 {
		t.Errorf("memory-only service persisted checkpoints: %+v", m)
	}
}

func TestCkptStoreCorruptFileIgnored(t *testing.T) {
	dir := t.TempDir()
	st := newCkptStore(filepath.Join(dir, "cache.json"), nil)
	key := "some|ckpt|key"
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path(key), []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ck := st.load(key, 1000); ck != nil {
		t.Fatal("corrupt checkpoint file decoded")
	}
}
