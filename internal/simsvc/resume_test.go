package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// supersetReq extends smallReq by two more cells: after smallReq has run,
// exactly two of its four cells are already in the cache.
func supersetReq() SweepRequest {
	req := smallReq()
	req.Variants = []string{"unsafe", "hybrid", "static-l1", "static-l2"}
	return req
}

func exportBytes(t *testing.T, j *Job) []byte {
	t.Helper()
	res, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeAfterCrash is the acceptance scenario for durable resumable
// jobs: a service dies mid-sweep (simulated by its exact on-disk state —
// a journal holding a submit record with no terminal, and a result cache
// holding the cells that finished before the crash). The restarted
// service must re-admit the sweep under its original ID, re-simulate
// only the cells absent from the cache, and produce an export
// byte-identical to an uninterrupted run.
func TestResumeAfterCrash(t *testing.T) {
	// Reference: the same superset sweep, uninterrupted, on a fresh node.
	ref := newService(t, Config{Workers: 2})
	refExport := exportBytes(t, submitAndWait(t, ref, supersetReq()))
	ref.Shutdown(context.Background())

	dir := t.TempDir()
	cachePath := filepath.Join(dir, "cache.json")
	journalPath := filepath.Join(dir, "cache.json.jobs")

	// Life 1: run the 4-cell subset so its results persist, then stop.
	s1 := newService(t, Config{Workers: 2, CachePath: cachePath, JournalPath: journalPath})
	submitAndWait(t, s1, smallReq())
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash mid-sweep-2: the journal carries sweep-2's
	// write-ahead submit record but no terminal — exactly what a SIGKILL
	// between submission and completion leaves behind.
	raw, err := json.Marshal(supersetReq())
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(journalLine(t, journalRecord{Op: journalOpSubmit, ID: "sweep-2", Req: raw})); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Life 2: restart over the same cache + journal.
	s2 := newService(t, Config{Workers: 2, CachePath: cachePath, JournalPath: journalPath})
	defer s2.Shutdown(context.Background())

	// The sweep is back under its original ID.
	j, ok := s2.Job("sweep-2")
	if !ok {
		t.Fatal("restart did not re-admit sweep-2")
	}
	// While the replay runs, /healthz reports degraded + the count.
	if h := s2.Health(); h.ResumingJobs > 0 {
		if h.Status != "degraded" {
			t.Errorf("health during resume = %q, want degraded", h.Status)
		}
		found := false
		for _, r := range h.Reasons {
			found = found || r == "resuming"
		}
		if !found {
			t.Errorf("health reasons during resume = %v, want to include resuming", h.Reasons)
		}
	}
	waitJob(t, j)
	st := j.Status()
	if st.State != JobDone {
		t.Fatalf("resumed job state = %s, err %q", st.State, st.Error)
	}
	if !st.Resumed {
		t.Error("resumed job not marked resumed in its status")
	}
	// Only the 4 cells missing from the persisted cache were simulated;
	// the 4 from life 1 were answered by the cache.
	if st.ResumeSkipped != 4 {
		t.Errorf("resume_cells_skipped = %d, want 4", st.ResumeSkipped)
	}
	m := s2.Snapshot()
	if m.ResumedJobs != 1 {
		t.Errorf("ResumedJobs = %d, want 1", m.ResumedJobs)
	}
	if m.ResumeCellsSkipped != 4 {
		t.Errorf("ResumeCellsSkipped = %d, want 4", m.ResumeCellsSkipped)
	}
	if m.RunsExecuted != 4 {
		t.Errorf("RunsExecuted = %d, want only the 4 missing cells", m.RunsExecuted)
	}
	if m.ResumingJobs != 0 {
		t.Errorf("ResumingJobs after completion = %d, want 0", m.ResumingJobs)
	}
	if h := s2.Health(); h.Status != "ok" {
		t.Errorf("health after resume = %q (%v), want ok", h.Status, h.Reasons)
	}

	// Determinism makes the interruption invisible: byte-identical export.
	if got := exportBytes(t, j); !bytes.Equal(got, refExport) {
		t.Errorf("resumed export differs from uninterrupted export (%d vs %d bytes)", len(got), len(refExport))
	}

	// A job submitted after the restart must not reuse sweep-2's ID.
	j3, err := s2.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID != "sweep-3" {
		t.Errorf("post-resume submission got ID %s, want sweep-3", j3.ID)
	}
	waitJob(t, j3)
}

// TestResumeCompletedSweepIsDropped: a journal whose submit has a
// matching terminal record replays nothing — restart after a clean run
// resumes no jobs.
func TestResumeCompletedSweepIsDropped(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2,
		CachePath:   filepath.Join(dir, "cache.json"),
		JournalPath: filepath.Join(dir, "cache.json.jobs")}
	s1 := newService(t, cfg)
	submitAndWait(t, s1, smallReq())
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := newService(t, cfg)
	defer s2.Shutdown(context.Background())
	if m := s2.Snapshot(); m.ResumedJobs != 0 {
		t.Fatalf("clean restart resumed %d jobs, want 0", m.ResumedJobs)
	}
	if _, ok := s2.Job("sweep-1"); ok {
		t.Fatal("terminal sweep resurrected after restart")
	}
}

// TestResumeBadRequestConvergesToFailed: a journaled request that no
// longer validates must not replay forever — the restart marks it
// terminal so the next restart ignores it.
func TestResumeBadRequestConvergesToFailed(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "jobs.jsonl")
	writeJournalFile(t, journalPath,
		journalLine(t, journalRecord{Op: journalOpSubmit, ID: "sweep-1",
			Req: json.RawMessage(`{"workloads":["no_such_workload"]}`)}),
	)
	s1 := newService(t, Config{Workers: 1, JournalPath: journalPath})
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The poison job was journaled terminal: the next life resumes nothing.
	s2 := newService(t, Config{Workers: 1, JournalPath: journalPath})
	defer s2.Shutdown(context.Background())
	if m := s2.Snapshot(); m.ResumedJobs != 0 {
		t.Fatalf("poison job replayed again: ResumedJobs = %d", m.ResumedJobs)
	}
}

// TestJournalDegradedSurfacesInHealth: an unopenable journal path
// degrades to memory-only and reports it, instead of failing startup.
func TestJournalDegradedSurfacesInHealth(t *testing.T) {
	s := newService(t, Config{Workers: 1, JournalPath: t.TempDir()}) // a directory: unopenable
	defer s.Shutdown(context.Background())
	if !s.Snapshot().JournalDegraded {
		t.Fatal("metrics do not report the degraded journal")
	}
	h := s.Health()
	if h.Status != "degraded" {
		t.Fatalf("health = %q, want degraded", h.Status)
	}
	found := false
	for _, r := range h.Reasons {
		found = found || r == "journal-degraded"
	}
	if !found {
		t.Fatalf("health reasons = %v, want journal-degraded", h.Reasons)
	}
}
