package simsvc

import (
	"bufio"
	"encoding/json"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
)

// The job journal is the durable half of resumable sweeps: a write-ahead
// JSONL log alongside the result cache. Every submission appends (and
// fsyncs) a record carrying the job's ID and its normalized request
// BEFORE any cell is enqueued; every terminal transition appends (and
// fsyncs) a matching terminal record. On restart the service replays the
// journal, re-admits every job that was submitted but never reached a
// terminal state under its original ID, and lets the content-addressed
// result cache answer the cells that already completed — only the missing
// cells are re-simulated (see resume.go).
//
// The format shares the specexec submission journal's robustness rules:
// one self-describing JSON object per line, unknown fields ignored (so
// future versions can add fields), malformed or truncated lines skipped
// on replay instead of failing startup, and the whole file compacted
// (terminal jobs dropped) atomically via temp+rename on load. Appends
// that fail degrade the journal to memory-only — availability over
// durability, surfaced through /healthz — rather than failing
// submissions.

// Journal record operations.
const (
	journalOpSubmit    = "submit"     // job admitted; Req carries the SweepRequest
	journalOpTerminal  = "terminal"   // job reached a terminal state
	journalOpNext      = "next"       // ID allocator floor (written by compaction)
	journalOpLease     = "lease"      // cell leased to a work-stealing peer
	journalOpLeaseDone = "lease-done" // leased cell's result delivered back
)

// journalVersion stamps each record; readers ignore records from a newer
// major version they cannot interpret (none exist yet — v1 only).
const journalVersion = 1

// journalFailLimit is how many consecutive append failures switch the
// journal to memory-only mode.
const journalFailLimit = 3

// journalRecord is one JSONL line.
type journalRecord struct {
	V     int             `json:"v"`
	Op    string          `json:"op"`
	ID    string          `json:"id,omitempty"`
	State string          `json:"state,omitempty"`  // terminal records
	Req   json.RawMessage `json:"req,omitempty"`    // submit records
	NextN int             `json:"next_n,omitempty"` // next records
	Key   string          `json:"key,omitempty"`    // lease records: cell cache key
	Thief string          `json:"thief,omitempty"`  // lease records: claiming node
	Until time.Time       `json:"until,omitempty"`  // lease records: expiry
	Time  time.Time       `json:"time,omitempty"`
}

// journalJob is a replayed job: submitted, possibly terminal.
type journalJob struct {
	id    string
	req   json.RawMessage
	state string // "" while non-terminal
}

// jobJournal is the append side. All methods are nil-receiver safe so the
// service pays one nil check when journaling is disabled.
type jobJournal struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	inj      *faults.Injector
	errs     int  // consecutive append failures
	degraded bool // memory-only after journalFailLimit failures

	appends   uint64 // successful fsynced appends
	appendErr uint64 // failed appends (record lost)
	recovered int    // records replayed at open
	skipped   int    // malformed/truncated lines skipped at open
}

// openJournal replays the journal at path (tolerating a corrupt tail),
// compacts it (terminal jobs dropped, allocator floor preserved), and
// returns the append handle plus the replayed jobs in submission order
// and the highest job number ever allocated. It never fails startup: an
// unreadable file means an empty history; an unopenable file means a
// degraded (memory-only) journal.
func openJournal(path string, inj *faults.Injector) (*jobJournal, []journalJob, int) {
	j := &jobJournal{path: path, inj: inj}
	jobs, maxN := j.replayFile()
	// Compact: rewrite only the live (non-terminal) submissions plus the
	// allocator floor, atomically. A failed compaction keeps the old file
	// — correct, just longer.
	live := make([]journalJob, 0, len(jobs))
	for _, jb := range jobs {
		if jb.state == "" {
			live = append(live, jb)
		}
	}
	j.compact(live, maxN)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.degraded = true
		return j, live, maxN
	}
	j.f = f
	return j, live, maxN
}

// replayFile reads every parseable record. Lines that fail to parse —
// including a torn final line from a crash mid-write — are counted and
// skipped; duplicate submits and duplicate terminal transitions are
// idempotent (first submit wins, any terminal wins).
func (j *jobJournal) replayFile() ([]journalJob, int) {
	f, err := os.Open(j.path)
	if err != nil {
		return nil, 0
	}
	defer f.Close()
	byID := make(map[string]*journalJob)
	var order []string
	maxN := 0
	noteID := func(id string) {
		if n, ok := jobIDNumber(id); ok && n > maxN {
			maxN = n
		}
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			j.skipped++
			continue
		}
		j.recovered++
		switch rec.Op {
		case journalOpSubmit:
			if rec.ID == "" || len(rec.Req) == 0 {
				j.skipped++
				continue
			}
			noteID(rec.ID)
			if _, dup := byID[rec.ID]; dup {
				continue
			}
			byID[rec.ID] = &journalJob{id: rec.ID, req: rec.Req}
			order = append(order, rec.ID)
		case journalOpTerminal:
			noteID(rec.ID)
			if jb, ok := byID[rec.ID]; ok && jb.state == "" {
				jb.state = rec.State
			}
			// A terminal for an unknown job (its submit line was torn) is
			// harmless: there is nothing to resume.
		case journalOpNext:
			if rec.NextN > maxN {
				maxN = rec.NextN
			}
		case journalOpLease, journalOpLeaseDone:
			// Steal-lease audit records: leases do not survive an owner
			// restart — the resumed job's cache-backed replay re-runs any
			// cell whose result never came back, and the content-addressed
			// cache keeps a late thief completion exactly-once.
		default:
			// Future record type: ignore, never fail.
		}
	}
	jobs := make([]journalJob, 0, len(order))
	for _, id := range order {
		jobs = append(jobs, *byID[id])
	}
	// Defensive: submission order should already be ID order, but resume
	// re-admission relies on it, so sort by job number.
	sort.SliceStable(jobs, func(a, b int) bool {
		na, _ := jobIDNumber(jobs[a].id)
		nb, _ := jobIDNumber(jobs[b].id)
		return na < nb
	})
	return jobs, maxN
}

// compact atomically rewrites the journal as an allocator-floor record
// plus the live submissions. Failure is non-fatal (old file kept).
func (j *jobJournal) compact(live []journalJob, maxN int) {
	if maxN == 0 && len(live) == 0 {
		if _, err := os.Stat(j.path); err != nil {
			return // nothing on disk, nothing to write
		}
	}
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	enc := json.NewEncoder(f)
	ok := enc.Encode(journalRecord{V: journalVersion, Op: journalOpNext, NextN: maxN}) == nil
	for _, jb := range live {
		if !ok {
			break
		}
		ok = enc.Encode(journalRecord{V: journalVersion, Op: journalOpSubmit, ID: jb.id, Req: jb.req}) == nil
	}
	if ok {
		ok = f.Sync() == nil
	}
	if err := f.Close(); err != nil || !ok {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
	}
}

// append writes one record and fsyncs it — the fsync is the transition's
// durability point. A failure (real or injected) loses the record;
// journalFailLimit consecutive failures degrade the journal to
// memory-only. Returns whether the record is durable.
func (j *jobJournal) append(rec journalRecord) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded || j.f == nil {
		return false
	}
	rec.V = journalVersion
	rec.Time = time.Now().UTC()
	err := j.inj.JournalErr()
	if err == nil {
		var b []byte
		if b, err = json.Marshal(rec); err == nil {
			if _, err = j.f.Write(append(b, '\n')); err == nil {
				err = j.f.Sync()
			}
		}
	}
	if err != nil {
		j.appendErr++
		j.errs++
		if j.errs >= journalFailLimit {
			j.degraded = true
		}
		return false
	}
	j.errs = 0
	j.appends++
	return true
}

// submit journals a job admission (write-ahead: call before enqueuing any
// cell).
func (j *jobJournal) submit(id string, req json.RawMessage) bool {
	return j.append(journalRecord{Op: journalOpSubmit, ID: id, Req: req})
}

// terminal journals a job's terminal transition.
func (j *jobJournal) terminal(id string, state JobState) bool {
	return j.append(journalRecord{Op: journalOpTerminal, ID: id, State: string(state)})
}

// lease journals a cell's claim by a work-stealing peer (write-ahead:
// call before the claim is handed out).
func (j *jobJournal) lease(key, thief string, until time.Time) bool {
	return j.append(journalRecord{Op: journalOpLease, Key: key, Thief: thief, Until: until})
}

// leaseDone journals a leased cell's result landing back in the cache.
func (j *jobJournal) leaseDone(key string) bool {
	return j.append(journalRecord{Op: journalOpLeaseDone, Key: key})
}

// isDegraded reports whether the journal fell back to memory-only mode.
func (j *jobJournal) isDegraded() bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// stats snapshots the journal counters (zeroes on nil).
func (j *jobJournal) stats() (appends, appendErrs uint64, recovered, skippedLines int) {
	if j == nil {
		return 0, 0, 0, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends, j.appendErr, j.recovered, j.skipped
}

// close releases the append handle.
func (j *jobJournal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// jobIDNumber extracts N from "sweep-N".
func jobIDNumber(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "sweep-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
