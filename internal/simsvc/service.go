package simsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pipeline"
	"repro/internal/simpoint"
	"repro/internal/workload"
)

// Config configures a Service.
type Config struct {
	// Workers bounds concurrent simulations (0: GOMAXPROCS).
	Workers int
	// CachePath persists the result cache across restarts ("" disables
	// persistence; the in-memory cache still works).
	CachePath string
	// CacheMaxEntries bounds the result cache; least-recently-used
	// results are evicted past the bound (0: unbounded).
	CacheMaxEntries int
	// CacheMaxBytes bounds the result cache's total encoded size in
	// bytes; least-recently-used results are evicted past the bound
	// (0: unbounded). Both bounds may be set; eviction satisfies both.
	CacheMaxBytes int64

	// MaxAttempts bounds attempts per cell: transiently-failed cells
	// (panic, timeout, stall) are retried with exponential backoff up to
	// this many total attempts (0: default 3; 1: no retries).
	MaxAttempts int
	// RetryBackoff is the base retry delay, doubling per attempt with
	// deterministic jitter (0: default 200ms).
	RetryBackoff time.Duration
	// CellTimeout is a wall-clock deadline per cell attempt (0: none).
	CellTimeout time.Duration
	// StallTimeout kills a cell attempt whose committed-instruction count
	// stops advancing for this long (0: no stall watchdog).
	StallTimeout time.Duration
	// MaxPendingCells bounds the pending work queue: a submission whose
	// cells would push the queue past this bound is rejected with an
	// *OverloadError (HTTP 429 + Retry-After). 0: unbounded.
	MaxPendingCells int
	// JobTTL evicts finished jobs from the registry this long after they
	// reach a terminal state (0: no TTL eviction).
	JobTTL time.Duration
	// MaxJobs bounds the job registry; the oldest finished jobs are
	// evicted past the bound (0: default 4096). Running jobs are never
	// evicted.
	MaxJobs int
	// PersistFailureLimit is how many consecutive cache-persist failures
	// switch the cache to memory-only mode (0: default 3).
	PersistFailureLimit int
	// RetryStormThreshold marks health degraded when at least this many
	// retries happen within one minute (0: default 50).
	RetryStormThreshold int
	// Faults injects chaos faults into cell execution and cache I/O
	// (nil in production: zero cost).
	Faults *faults.Injector
	// Recorder, when non-nil, receives ClassFault events (cell failures,
	// retries, quarantine, persistence degradation) and, with speculation
	// enabled, ClassSpec events.
	Recorder *obs.Recorder

	// Trace enables the sweep-lifecycle span model (internal/obs/trace):
	// GET /sweeps/{id}/trace serves a span tree per cell, exports carry a
	// per-cell latency attribution, and slow cells log a span breakdown.
	// Off by default; when off the tracer is nil and every span call in
	// the hot path degrades to a single nil check — results and exports
	// are byte-identical to a build without the subsystem.
	Trace bool
	// TraceMaxJobs bounds retained job traces (0: trace.DefaultMaxJobs).
	TraceMaxJobs int
	// FlightEvents sizes the /debug/flight ring buffer: the last N
	// observability events are always retained in memory, whatever
	// Recorder is configured (0: default 256).
	FlightEvents int

	// JournalPath persists the job journal as JSONL ("" disables): every
	// submission is written ahead of execution and every terminal
	// transition is fsynced, so a crashed service re-admits its
	// non-terminal sweeps on restart under their original IDs, re-running
	// only the cells absent from the persisted result cache (see
	// journal.go / resume.go).
	JournalPath string

	// Peers is the static peer list for failure-aware cache peering
	// (base URLs of other sdoserver nodes). On a local cache miss the
	// service consults peers by rendezvous-hashed key over GET
	// /cache/{key} before simulating; every peer failure degrades to
	// local simulation (see internal/fabric). Empty: peering off.
	Peers []string
	// PeerTimeout bounds each peer HTTP request (0: fabric default).
	PeerTimeout time.Duration
	// PeerHedgeDelay is how long the best-ranked peer gets before the
	// lookup hedges to the next one (0: fabric default).
	PeerHedgeDelay time.Duration
	// PeerProbeInterval is the background peer health-probe period
	// (0: fabric default; negative: no prober).
	PeerProbeInterval time.Duration
	// PeerMaxFanout bounds peers consulted per lookup (0: fabric
	// default).
	PeerMaxFanout int

	// OwnsID, when non-nil, restricts job-ID allocation to IDs it
	// accepts: the allocator skips numbers whose "sweep-N" this node does
	// not own. The cluster layer sets it to the rendezvous-ownership
	// predicate so distinct nodes allocate disjoint ID subsequences and
	// any node can resolve any ID's owner without coordination. Nil (the
	// default): every ID is owned — byte-identical single-node behavior.
	OwnsID func(id string) bool
	// PeerArtifacts extends cache peering to the checkpoint and sample-
	// plan artifacts: the service serves its <cache>.ckpts/ store over
	// GET /artifacts/{ckpt,plan}/{hash} and consults peers (checksum-
	// validated, same fabric machinery) before capturing or profiling
	// locally. Off by default; requires Peers.
	PeerArtifacts bool
	// WorkStealing keeps a registry of queued-but-unstarted cells that
	// cluster peers may claim under a journaled lease via
	// Service.StealCells (see steal.go). Off by default.
	WorkStealing bool
	// StealLeaseTTL bounds how long the owner waits on a stolen cell
	// before reclaiming it locally (0: DefaultStealLeaseTTL).
	StealLeaseTTL time.Duration

	// AutoTimeout derives each cell attempt's wall-clock deadline from
	// the observed run-duration histogram (p99 × autoTimeoutFactor,
	// clamped to [1s, CellTimeout-or-10m]) once enough runs have been
	// observed, instead of the one static CellTimeout. Off by default.
	AutoTimeout bool

	// Speculate enables predictive pre-execution: the service learns
	// from the submission history which sweeps tend to follow which and
	// runs the predicted cells on idle workers into the result cache
	// (see internal/specexec). Off by default; when off, behavior is
	// identical to a build without the subsystem.
	Speculate bool
	// SpecJournal persists the submission history as JSONL ("" with
	// CachePath set: derived as CachePath+".history"; "" otherwise:
	// in-memory history only).
	SpecJournal string
	// SpecBudget bounds cumulative wasted speculative compute; once
	// cancelled/failed/expired speculation exceeds it, speculation is
	// disabled for the life of the process (0: default 5m).
	SpecBudget time.Duration
	// SpecMinConfidence drops predictions scored below it (0: 0.2).
	SpecMinConfidence float64
	// SpecMinHitRate throttles speculation while the hit-rate over
	// resolved speculations sits below it (0: 0.25).
	SpecMinHitRate float64
	// SpecMaxCells bounds cells pre-executed per prediction round
	// (0: 64).
	SpecMaxCells int
}

// withDefaults fills the zero-value policy knobs.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = harness.Options{Parallel: true}.Workers()
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 200 * time.Millisecond
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.PersistFailureLimit <= 0 {
		c.PersistFailureLimit = 3
	}
	if c.RetryStormThreshold <= 0 {
		c.RetryStormThreshold = 50
	}
	if c.FlightEvents <= 0 {
		c.FlightEvents = 256
	}
	if c.Speculate && c.SpecJournal == "" && c.CachePath != "" {
		c.SpecJournal = c.CachePath + ".history"
	}
	if c.StealLeaseTTL <= 0 {
		c.StealLeaseTTL = DefaultStealLeaseTTL
	}
	return c
}

// ErrClosed is returned by Submit after Shutdown has begun.
var ErrClosed = errors.New("simsvc: service is shut down")

// OverloadError rejects a submission that would overflow the bounded
// pending-cell queue. RetryAfter estimates when capacity should free up.
type OverloadError struct {
	Pending    int
	Limit      int
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("simsvc: overloaded: %d cells pending (limit %d); retry in ~%s",
		e.Pending, e.Limit, e.RetryAfter.Round(time.Second))
}

// retryWindow is the sliding window for retry-storm detection.
const retryWindow = time.Minute

// persistDebounce batches terminal-job persist triggers: results landing
// within this window of each other are written in one save.
const persistDebounce = 100 * time.Millisecond

// Service schedules sweep jobs over the shared harness worker pool,
// deduplicates identical in-flight runs, and answers repeated cells from
// the content-addressed result cache.
type Service struct {
	cfg     Config
	cache   *Cache
	ckstore *ckptStore
	pool    *harness.Pool
	ctx     context.Context
	cancel  context.CancelFunc
	inj     *faults.Injector
	rec     *obs.Recorder
	spec    *speculation      // nil unless cfg.Speculate
	tracer  *trace.Tracer     // nil unless cfg.Trace
	flight  *obs.SafeRingSink // /debug/flight ring (always on)
	journal *jobJournal       // nil unless cfg.JournalPath
	fab     *fabric.Client    // nil unless cfg.Peers
	steal   *stealState       // nil unless cfg.WorkStealing

	mu       sync.Mutex
	closed   bool
	nextID   int
	jobs     map[string]*Job
	order    []string
	inflight map[string]*flight

	// Checkpoint tier: one functional-warmup checkpoint per (workload
	// fingerprint, warmup budget), captured once under singleflight and
	// restored by every functional-mode cell that shares it. Unbounded,
	// but entries exist only per distinct (workload, warmup) pair — a
	// handful per deployment.
	ckMu  sync.Mutex
	ckpts map[string]*ckFlight

	// Sample-plan tier: one BBV profile + clustering + checkpoint series
	// per (workload fingerprint, window, sampling config), built once
	// under singleflight and executed by every sampled-mode cell that
	// shares it (see RunSpec.PlanKey). The expensive part of sampled mode
	// — one functional profiling pass plus k-means — is thereby paid once
	// per workload per sweep shape, like the checkpoint tier above.
	planMu sync.Mutex
	plans  map[string]*planFlight

	// Write-behind cache persistence: schedulePersist debounces a
	// background save after each terminal job; repeated failures flip
	// the cache to memory-only (cacheDegraded).
	persistMu      sync.Mutex
	persistPending bool
	persistStopped bool
	bg             sync.WaitGroup

	// Retry-storm detection: timestamps of recent retries.
	retryMu    sync.Mutex
	retryTimes []time.Time

	// Metrics (see /metrics).
	runsExecuted atomic.Uint64 // simulations actually run
	runsDeduped  atomic.Uint64 // cells that joined an in-flight identical run
	runsSkipped  atomic.Uint64 // cells abandoned by cancellation/shutdown
	runNanos     atomic.Uint64 // cumulative wall time of executed runs
	jobsTotal    atomic.Uint64

	retriesTotal atomic.Uint64 // cell attempts beyond the first
	cellsFailed  atomic.Uint64 // cells that failed permanently
	slowCells    atomic.Uint64 // executed cells that exceeded the p99 run duration
	cellPanics   atomic.Uint64 // attempts that panicked (recovered)
	cellTimeouts atomic.Uint64 // attempts killed by the wall-clock deadline
	cellStalls   atomic.Uint64 // attempts killed by the stall watchdog
	jobsRejected atomic.Uint64 // submissions refused by backpressure
	jobsEvicted  atomic.Uint64 // finished jobs dropped from the registry

	persistFailures   atomic.Uint64 // cache persist failures (total)
	persistFailStreak atomic.Uint64 // consecutive persist failures
	cacheDegraded     atomic.Bool   // persistence disabled (memory-only)
	cacheLoadFailed   atomic.Bool   // startup cache load failed (started empty)

	resumedJobs   atomic.Uint64 // jobs re-admitted from the journal on startup
	resumeSkipped atomic.Uint64 // resumed cells answered by the persisted cache
	resumeReruns  atomic.Uint64 // resumed cells that had to re-simulate
	resuming      atomic.Int64  // resumed jobs not yet terminal (healthz: degraded)

	ckptsCaptured   atomic.Uint64 // warmup checkpoints captured
	ckptHits        atomic.Uint64 // cells that restored an existing checkpoint
	warmupSimulated atomic.Uint64 // warmup instructions actually simulated
	ckptsPersisted  atomic.Uint64 // checkpoints written to the disk store
	ckptDiskHits    atomic.Uint64 // checkpoint-tier misses answered from disk

	ckptPeerHits   atomic.Uint64 // checkpoint-tier misses answered by a cluster peer
	planPeerHits   atomic.Uint64 // plan-tier misses answered by a cluster peer
	cellsStolen    atomic.Uint64 // queued cells leased out to work-stealing peers
	stealCompleted atomic.Uint64 // stolen-cell results delivered back (either side)
	leaseExpiries  atomic.Uint64 // steal leases that expired unfulfilled (cell reclaimed)

	plansBuilt     atomic.Uint64 // sample plans built (profile + cluster + checkpoints)
	planHits       atomic.Uint64 // sampled cells that reused an existing plan
	sampledCells   atomic.Uint64 // cells executed in sampled mode
	sampledInstrs  atomic.Uint64 // detailed instructions executed by sampled cells
	profiledInstrs atomic.Uint64 // functional instructions spent profiling BBVs
	plansPersisted atomic.Uint64 // sample plans written to the disk store
	planDiskHits   atomic.Uint64 // plan-tier misses answered from disk

	reg      *obs.Registry
	runDur   *obs.Histogram // per-run wall time
	queueLat *obs.Histogram // submit-to-start latency per cell
	planDur  *obs.Histogram // sample-plan build wall time
	peerDur  *obs.Histogram // peer-lookup wall time (nil unless peering)
}

// flight is one in-progress simulation with every (job, cell) waiting on
// it; the executing worker delivers the result to all of them. A
// speculative flight additionally carries its cancellation (squash)
// hook; a demand cell that joins one claims it, which both counts as a
// speculation hit and protects it from preemption.
type flight struct {
	waiters []delivery
	spec    bool               // pre-executing a predicted cell
	claimed bool               // a demand cell joined a speculative flight
	cancel  context.CancelFunc // squashes a speculative flight (spec only)
}

type delivery struct {
	job *Job
	idx int // cell index in the job's enumeration order
	key harness.Key

	// Tracing state (nil with tracing off): the waiter's cell trace, and
	// — for waiters that joined an existing flight rather than executing
	// — the open await-inflight span the deliverer finishes.
	ct    *trace.CellTrace
	await *trace.Span
}

// ckFlight is one checkpoint-tier entry: the first cell to need it
// captures while later cells block on done.
type ckFlight struct {
	done chan struct{}
	ck   *arch.Checkpoint
}

// planFlight is one sample-plan-tier entry: the first sampled cell to
// need it profiles/clusters/captures while later cells block on done.
type planFlight struct {
	done chan struct{}
	sp   *harness.SamplePlan
	err  error
}

// New starts a service. The persisted cache at cfg.CachePath, if any, is
// loaded so a restarted server answers repeated sweeps from cache; an
// unreadable cache never prevents startup — the service starts with an
// empty cache and reports degraded health until the next successful
// persist.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	loadFailed := false
	cache := NewCache()
	if cfg.CachePath != "" {
		if loaded, err := loadCache(cfg.CachePath, cfg.Faults); err == nil {
			cache = loaded
		} else {
			loadFailed = true
		}
	}
	cache.SetFaults(cfg.Faults)
	cache.SetMaxEntries(cfg.CacheMaxEntries)
	cache.SetMaxBytes(cfg.CacheMaxBytes)
	ctx, cancel := context.WithCancel(context.Background())
	// The flight recorder always runs: every event the service emits
	// lands in a bounded ring served by /debug/flight, with the
	// configured Recorder (whose own class mask still applies) fanned in
	// behind it.
	ring := obs.NewSafeRingSink(cfg.FlightEvents)
	sinks := []obs.Sink{ring}
	if cfg.Recorder != nil {
		sinks = append(sinks, cfg.Recorder)
	}
	s := &Service{
		cfg:      cfg,
		cache:    cache,
		ckstore:  newCkptStore(cfg.CachePath, cfg.Faults),
		ctx:      ctx,
		cancel:   cancel,
		inj:      cfg.Faults,
		rec:      obs.NewRecorder(obs.ClassAll, sinks...),
		flight:   ring,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*flight),
		ckpts:    make(map[string]*ckFlight),
		plans:    make(map[string]*planFlight),
	}
	if cfg.Trace {
		s.tracer = trace.New(cfg.TraceMaxJobs)
	}
	if loadFailed {
		s.cacheLoadFailed.Store(true)
		s.event("cache-load-failed", cfg.CachePath)
	}
	s.pool = harness.NewPool(ctx, cfg.Workers)
	if cfg.Speculate {
		s.spec = newSpeculation(s)
	}
	if cfg.WorkStealing {
		s.steal = newStealState()
	}
	if len(cfg.Peers) > 0 {
		s.fab = fabric.New(fabric.Config{
			Peers:         cfg.Peers,
			Timeout:       cfg.PeerTimeout,
			HedgeDelay:    cfg.PeerHedgeDelay,
			MaxFanout:     cfg.PeerMaxFanout,
			ProbeInterval: cfg.PeerProbeInterval,
			Validate:      validatePeerEntry,
			Faults:        cfg.Faults,
			Event:         s.event,
		})
	}
	// Durable resumable jobs: replay the write-ahead job journal and
	// re-admit every sweep that was submitted but never reached a
	// terminal state, under its original ID. The content-addressed
	// result cache answers the cells the previous life already
	// completed; only the missing ones re-simulate.
	var resumable []journalJob
	if cfg.JournalPath != "" {
		var maxN int
		s.journal, resumable, maxN = openJournal(cfg.JournalPath, cfg.Faults)
		s.nextID = maxN
		if s.journal.isDegraded() {
			s.event("journal-degraded", cfg.JournalPath)
		}
	}
	s.registerMetrics()
	s.resumeJobs(resumable)
	return s, nil
}

// event emits a ClassFault observability event (nil recorder: one nil
// check, no allocation).
func (s *Service) event(kind, detail string) {
	if s.rec.On(obs.ClassFault) {
		s.rec.Emit(obs.Event{Class: obs.ClassFault, Kind: kind, Detail: detail})
	}
}

// registerMetrics builds the /metrics registry. Counter/gauge values
// that already live in atomics or subcomponents are sampled at scrape
// time; the latency distributions are real histograms.
func (s *Service) registerMetrics() {
	r := obs.NewRegistry()
	ctr := func(name, help string, fn func() float64) { r.NewCounterFunc(name, help, fn) }
	gau := func(name, help string, fn func() float64) { r.NewGaugeFunc(name, help, fn) }

	ctr("sdo_cache_hits_total", "Result-cache hits.",
		func() float64 { h, _ := s.cache.Stats(); return float64(h) })
	ctr("sdo_cache_misses_total", "Result-cache misses.",
		func() float64 { _, m := s.cache.Stats(); return float64(m) })
	ctr("sdo_cache_evictions_total", "Results evicted by the LRU size bound.",
		func() float64 { return float64(s.cache.Evictions()) })
	gau("sdo_cache_entries", "Results currently cached.",
		func() float64 { return float64(s.cache.Len()) })
	gau("sdo_cache_max_entries", "Configured result-cache bound (0: unbounded).",
		func() float64 { return float64(s.cache.MaxEntries()) })
	gau("sdo_cache_bytes", "Total encoded size of cached results.",
		func() float64 { return float64(s.cache.Bytes()) })
	gau("sdo_cache_max_bytes", "Configured result-cache byte bound (0: unbounded).",
		func() float64 { return float64(s.cache.MaxBytes()) })
	ctr("sdo_cache_evicted_bytes_total", "Encoded bytes evicted by the cache bounds.",
		func() float64 { return float64(s.cache.EvictedBytes()) })
	ctr("sdo_cache_corrupt_entries_total", "Persisted entries dropped by checksum verification.",
		func() float64 { return float64(s.cache.CorruptEntries()) })
	ctr("sdo_cache_quarantined_files_total", "Unparseable cache files quarantined (renamed aside).",
		func() float64 { return float64(s.cache.QuarantinedFiles()) })
	ctr("sdo_cache_persist_failures_total", "Cache persist attempts that failed.",
		func() float64 { return float64(s.persistFailures.Load()) })
	gau("sdo_cache_persistence_enabled", "1 while the cache persists to disk, 0 when memory-only.",
		func() float64 {
			if s.cfg.CachePath == "" || s.cacheDegraded.Load() {
				return 0
			}
			return 1
		})
	gau("sdo_queue_depth", "Cells waiting for a worker.",
		func() float64 { return float64(s.pool.QueueDepth()) })
	gau("sdo_inflight_runs", "Cells currently executing.",
		func() float64 { return float64(s.pool.Active()) })
	gau("sdo_workers", "Worker-pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	ctr("sdo_runs_executed_total", "Simulations actually run.",
		func() float64 { return float64(s.runsExecuted.Load()) })
	ctr("sdo_runs_deduped_total", "Cells coalesced onto an identical in-flight run.",
		func() float64 { return float64(s.runsDeduped.Load()) })
	ctr("sdo_runs_skipped_total", "Cells abandoned by cancellation or shutdown.",
		func() float64 { return float64(s.runsSkipped.Load()) })
	ctr("sdo_run_seconds_total", "Cumulative wall time of executed simulations.",
		func() float64 { return float64(s.runNanos.Load()) / 1e9 })
	ctr("sdo_runs_retried_total", "Cell attempts beyond the first (transient-failure retries).",
		func() float64 { return float64(s.retriesTotal.Load()) })
	ctr("sdo_cells_failed_total", "Cells that failed permanently (retries exhausted or non-retryable).",
		func() float64 { return float64(s.cellsFailed.Load()) })
	ctr("sdo_slow_cells_total", "Executed cells whose wall time exceeded the observed p99 run duration.",
		func() float64 { return float64(s.slowCells.Load()) })
	ctr("sdo_cell_panics_total", "Cell attempts that panicked (recovered in isolation).",
		func() float64 { return float64(s.cellPanics.Load()) })
	ctr("sdo_cell_timeouts_total", "Cell attempts killed by the per-cell deadline.",
		func() float64 { return float64(s.cellTimeouts.Load()) })
	ctr("sdo_cell_stalls_total", "Cell attempts killed by the progress-based stall watchdog.",
		func() float64 { return float64(s.cellStalls.Load()) })
	ctr("sdo_jobs_total", "Sweep jobs submitted.",
		func() float64 { return float64(s.jobsTotal.Load()) })
	ctr("sdo_jobs_rejected_total", "Submissions rejected by queue backpressure (HTTP 429).",
		func() float64 { return float64(s.jobsRejected.Load()) })
	ctr("sdo_jobs_evicted_total", "Finished jobs evicted from the registry (TTL or count bound).",
		func() float64 { return float64(s.jobsEvicted.Load()) })
	gau("sdo_jobs_tracked", "Jobs currently in the registry.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.jobs))
		})
	ctr("sdo_faults_injected_total", "Chaos faults injected (0 unless fault injection is enabled).",
		func() float64 { return float64(s.inj.Stats().Total()) })
	ctr("sdo_checkpoints_captured_total", "Functional-warmup checkpoints captured.",
		func() float64 { return float64(s.ckptsCaptured.Load()) })
	ctr("sdo_checkpoint_hits_total", "Cells that restored an existing warmup checkpoint.",
		func() float64 { return float64(s.ckptHits.Load()) })
	ctr("sdo_warmup_instrs_simulated_total", "Warmup instructions actually simulated (checkpoint reuse keeps this at one warmup per workload).",
		func() float64 { return float64(s.warmupSimulated.Load()) })
	ctr("sdo_checkpoints_persisted_total", "Warmup checkpoints written to the on-disk store.",
		func() float64 { return float64(s.ckptsPersisted.Load()) })
	ctr("sdo_checkpoint_disk_hits_total", "Checkpoint-tier misses answered from the on-disk store (warmup skipped across restarts).",
		func() float64 { return float64(s.ckptDiskHits.Load()) })
	ctr("sdo_sample_plans_built_total", "Sampling plans built (BBV profile + clustering + checkpoint series).",
		func() float64 { return float64(s.plansBuilt.Load()) })
	ctr("sdo_sample_plan_hits_total", "Sampled cells that reused an existing sampling plan.",
		func() float64 { return float64(s.planHits.Load()) })
	ctr("sdo_sampled_cells_total", "Cells executed in sampled (SimPoint) mode.",
		func() float64 { return float64(s.sampledCells.Load()) })
	ctr("sdo_sampled_detailed_instrs_total", "Detailed instructions executed by sampled cells (vs. max_instrs per cell in detailed mode).",
		func() float64 { return float64(s.sampledInstrs.Load()) })
	ctr("sdo_profiled_instrs_total", "Functional instructions spent on BBV profiling passes.",
		func() float64 { return float64(s.profiledInstrs.Load()) })
	ctr("sdo_sample_plans_persisted_total", "Sampling plans written to the on-disk store.",
		func() float64 { return float64(s.plansPersisted.Load()) })
	ctr("sdo_sample_plan_disk_hits_total", "Plan-tier misses answered from the on-disk store (BBV re-profiling skipped across restarts).",
		func() float64 { return float64(s.planDiskHits.Load()) })
	s.runDur = r.NewHistogram("sdo_run_duration_seconds",
		"Wall time of individual executed simulations.", obs.DefaultLatencyBuckets())
	s.queueLat = r.NewHistogram("sdo_queue_latency_seconds",
		"Submit-to-start latency of scheduled cells.", obs.DefaultLatencyBuckets())
	s.planDur = r.NewHistogram("sdo_sample_plan_seconds",
		"Wall time of sampling-plan builds (profile + cluster + checkpoints).", obs.DefaultLatencyBuckets())
	if s.cfg.AutoTimeout {
		gau("sdo_cell_timeout_seconds", "Current auto-tuned per-cell deadline (0: none yet).",
			func() float64 { return s.cellTimeout().Seconds() })
	}
	if sp := s.spec; sp != nil {
		ctr("sdo_spec_predictions_total", "Prediction candidates that contributed pre-executable cells.",
			func() float64 { return float64(sp.predictions.Load()) })
		ctr("sdo_spec_cells_preexecuted_total", "Speculative cells run to completion into the result cache.",
			func() float64 { return float64(sp.cellsExecuted.Load()) })
		ctr("sdo_spec_hits_total", "Demand cells served by speculative pre-execution.",
			func() float64 { return float64(sp.hits.Load()) })
		ctr("sdo_spec_cancellations_total", "Speculative cells squashed mid-run by demand arrival or shutdown.",
			func() float64 { return float64(sp.cancellations.Load()) })
		ctr("sdo_spec_cpu_seconds_total", "Wall time spent executing speculative cells.",
			func() float64 { return float64(sp.specNanos.Load()) / 1e9 })
		ctr("sdo_spec_wasted_cpu_seconds_total", "Speculative wall time wasted (cancelled, failed or expired unclaimed).",
			func() float64 { return float64(sp.wastedNanos.Load()) / 1e9 })
		gau("sdo_spec_throttle_state", "Speculation governor state: 0 ok, 1 throttled (low hit-rate), 2 exhausted (budget spent).",
			func() float64 { return float64(sp.gov.State()) })
		gau("sdo_spec_backlog", "Speculative cells queued or running.",
			func() float64 { return float64(sp.backlog()) })
	}
	if s.tracer != nil {
		gau("sdo_trace_jobs", "Job traces currently retained.",
			func() float64 { return float64(s.tracer.Jobs()) })
	}
	if s.journal != nil {
		ctr("sdo_resume_jobs_total", "Non-terminal jobs re-admitted from the job journal on startup.",
			func() float64 { return float64(s.resumedJobs.Load()) })
		ctr("sdo_resume_cells_skipped_total", "Resumed-job cells answered by the persisted result cache (work the previous life already did).",
			func() float64 { return float64(s.resumeSkipped.Load()) })
		ctr("sdo_resume_cells_rerun_total", "Resumed-job cells re-simulated because the persisted cache lacked them.",
			func() float64 { return float64(s.resumeReruns.Load()) })
		gau("sdo_resume_jobs_active", "Resumed jobs still replaying (healthz reports degraded while > 0).",
			func() float64 { return float64(s.resuming.Load()) })
		ctr("sdo_journal_appends_total", "Job-journal records durably appended (fsynced).",
			func() float64 { a, _, _, _ := s.journal.stats(); return float64(a) })
		ctr("sdo_journal_append_failures_total", "Job-journal appends that failed (record lost; journal degrades past the limit).",
			func() float64 { _, e, _, _ := s.journal.stats(); return float64(e) })
		ctr("sdo_journal_corrupt_lines_total", "Malformed or torn journal lines skipped during replay.",
			func() float64 { _, _, _, sk := s.journal.stats(); return float64(sk) })
		gau("sdo_journal_enabled", "1 while the job journal persists to disk, 0 when degraded to memory-only.",
			func() float64 {
				if s.journal.isDegraded() {
					return 0
				}
				return 1
			})
	}
	if s.fab != nil {
		ctr("sdo_peer_hits_total", "Cache misses answered by a peer node.",
			func() float64 { return float64(s.fab.Stats().Hits) })
		ctr("sdo_peer_misses_total", "Peer lookups no peer could answer (fell back to local simulation).",
			func() float64 { return float64(s.fab.Stats().Misses) })
		ctr("sdo_peer_errors_total", "Peer request failures (down, slow, HTTP error, corrupt response).",
			func() float64 { return float64(s.fab.Stats().Errors) })
		ctr("sdo_peer_hedges_total", "Peer lookups hedged to a second peer after the hedge delay.",
			func() float64 { return float64(s.fab.Stats().Hedges) })
		gau("sdo_peers_configured", "Peers in the static peer list.",
			func() float64 { return float64(s.fab.Peers()) })
		gau("sdo_peers_available", "Peers whose circuit breaker currently admits lookups.",
			func() float64 { return float64(s.fab.Available()) })
		s.peerDur = r.NewHistogram("sdo_peer_lookup_seconds",
			"Wall time of peer cache lookups (hit or miss).", obs.DefaultLatencyBuckets())
	}
	if s.cfg.PeerArtifacts {
		ctr("sdo_cluster_ckpt_peer_hits_total", "Checkpoint-tier misses answered by a cluster peer (warmup skipped).",
			func() float64 { return float64(s.ckptPeerHits.Load()) })
		ctr("sdo_cluster_plan_peer_hits_total", "Sample-plan-tier misses answered by a cluster peer (BBV profiling skipped).",
			func() float64 { return float64(s.planPeerHits.Load()) })
	}
	if s.steal != nil {
		ctr("sdo_cluster_cells_stolen_total", "Queued cells leased out to work-stealing cluster peers.",
			func() float64 { return float64(s.cellsStolen.Load()) })
		ctr("sdo_cluster_steal_completions_total", "Stolen-cell results accepted back into the cache.",
			func() float64 { return float64(s.stealCompleted.Load()) })
		ctr("sdo_cluster_lease_expiries_total", "Steal leases that expired unfulfilled (cell reclaimed locally).",
			func() float64 { return float64(s.leaseExpiries.Load()) })
	}
	obs.RegisterProcessMetrics(r)
	s.reg = r
}

// Registry exposes the service's metrics registry (the /metrics
// document), e.g. for embedding additional process-level collectors.
func (s *Service) Registry() *obs.Registry { return s.reg }

// Cache exposes the service's result cache (read-mostly: tests and
// metrics).
func (s *Service) Cache() *Cache { return s.cache }

// Health is the /healthz document.
type Health struct {
	// Status is "ok", "degraded" (serving, but impaired — see Reasons)
	// or "draining" (shutdown underway; not serving new work).
	Status  string   `json:"status"`
	Reasons []string `json:"reasons,omitempty"`
	// ResumingJobs counts journal-resumed jobs that have not yet reached
	// a terminal state; the status is degraded while any remain, so
	// load balancers and scripts can tell a replaying node from a warm
	// one.
	ResumingJobs int `json:"resuming_jobs,omitempty"`
	// Peers reports per-peer fabric state (breaker, probe verdict,
	// counters) when cache peering is configured.
	Peers []fabric.PeerStatus `json:"peers,omitempty"`
}

// Health reports the service's operational state: "draining" once
// shutdown has begun, "degraded" while impaired (cache fell back to
// memory-only, startup cache load failed, the job journal degraded, a
// post-restart resume replay is still running, or a retry storm is
// underway), otherwise "ok". Peer failures never degrade the status —
// peering degrades to local simulation by design — but per-peer state is
// reported.
func (s *Service) Health() Health {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return Health{Status: "draining"}
	}
	h := Health{
		ResumingJobs: int(s.resuming.Load()),
		Peers:        s.fab.Snapshot(),
	}
	if s.cacheDegraded.Load() {
		h.Reasons = append(h.Reasons, "cache-degraded")
	}
	if s.cacheLoadFailed.Load() {
		h.Reasons = append(h.Reasons, "cache-load-failed")
	}
	if s.journal.isDegraded() {
		h.Reasons = append(h.Reasons, "journal-degraded")
	}
	if h.ResumingJobs > 0 {
		h.Reasons = append(h.Reasons, "resuming")
	}
	if s.retryStorm() {
		h.Reasons = append(h.Reasons, "retry-storm")
	}
	h.Status = "ok"
	if len(h.Reasons) > 0 {
		h.Status = "degraded"
	}
	return h
}

// noteRetry records a retry timestamp for storm detection.
func (s *Service) noteRetry() {
	now := time.Now()
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	cut := 0
	for cut < len(s.retryTimes) && now.Sub(s.retryTimes[cut]) > retryWindow {
		cut++
	}
	s.retryTimes = append(s.retryTimes[cut:], now)
}

// retryStorm reports whether retries within the window exceed the
// configured threshold.
func (s *Service) retryStorm() bool {
	now := time.Now()
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	n := 0
	for _, t := range s.retryTimes {
		if now.Sub(t) <= retryWindow {
			n++
		}
	}
	return n >= s.cfg.RetryStormThreshold
}

// SweepRequest selects a sweep. Empty lists mean "all"; a zero MaxInstrs
// means the default budget; a nil WarmupInstrs means the default warmup
// (a pointer so an explicit 0 — no warmup — is expressible, mirroring
// cmd/experiments -warmup).
type SweepRequest struct {
	Workloads    []string `json:"workloads,omitempty"`
	Variants     []string `json:"variants,omitempty"`
	Models       []string `json:"models,omitempty"`
	MaxInstrs    uint64   `json:"max_instrs,omitempty"`
	WarmupInstrs *uint64  `json:"warmup_instrs,omitempty"`
	// IntervalCycles samples an interval statistics point every N cycles
	// of each run's measurement window into the export (0: off).
	IntervalCycles uint64 `json:"interval_cycles,omitempty"`
	// WarmupMode is "detailed" (default) or "functional". Functional-mode
	// cells restore a per-(workload, warmup) checkpoint from the service's
	// checkpoint tier instead of re-simulating warmup.
	WarmupMode string `json:"warmup_mode,omitempty"`
	// SimMode is "detailed" (default: cycle-accurate whole window) or
	// "sampled" (SimPoint-style: BBV-cluster the window, run only the
	// representative interval of each phase, reconstruct whole-window
	// stats from the weighted per-instruction rates). Sampled jobs share
	// one sampling plan per workload via the service's plan tier and are
	// cached under sampling-aware keys, distinct from detailed results.
	SimMode string `json:"sim_mode,omitempty"`
	// SampleIntervalInstrs, SampleMaxK and SampleSeed are the sampled-mode
	// parameters (0 means the simpoint package defaults: 5000 / 8 / 1).
	SampleIntervalInstrs uint64 `json:"sample_interval_instrs,omitempty"`
	SampleMaxK           int    `json:"sample_max_k,omitempty"`
	SampleSeed           uint64 `json:"sample_seed,omitempty"`
	// Ablations turns the job into a design-space study: per model and
	// workload it runs the Unsafe baseline plus the harness's ablation
	// rows on Hybrid (Variants is ignored), and the export endpoint serves
	// the aggregated ablation tables.
	Ablations bool `json:"ablations,omitempty"`
}

// parseModel maps a request string to an attack model.
func parseModel(name string) (pipeline.AttackModel, error) {
	for _, m := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		if name == m.String() || name == "spectre" && m == pipeline.Spectre ||
			name == "futuristic" && m == pipeline.Futuristic {
			return m, nil
		}
	}
	return 0, fmt.Errorf("simsvc: unknown attack model %q", name)
}

// resolve turns a request into normalized harness options (the same
// resolution the CLI performs) plus the deduplicated cell list.
func (s *Service) resolve(req SweepRequest) (harness.Options, []RunSpec, error) {
	opt := harness.DefaultOptions()
	if req.MaxInstrs != 0 {
		opt.MaxInstrs = req.MaxInstrs
	}
	if req.WarmupInstrs != nil {
		opt.WarmupInstrs = *req.WarmupInstrs
	}
	opt.IntervalCycles = req.IntervalCycles
	wm, err := core.ParseWarmupMode(req.WarmupMode)
	if err != nil {
		return opt, nil, err
	}
	opt.WarmupMode = wm
	sm, err := harness.ParseSimMode(req.SimMode)
	if err != nil {
		return opt, nil, err
	}
	opt.SimMode = sm
	if sm == harness.SimSampled {
		if req.Ablations {
			return opt, nil, errors.New(`simsvc: ablation studies run detailed simulation; use sim_mode "detailed"`)
		}
		opt.Sample = simpoint.Config{
			IntervalInstrs: req.SampleIntervalInstrs,
			MaxK:           req.SampleMaxK,
			Seed:           req.SampleSeed,
		}
	}
	if len(req.Workloads) > 0 {
		var wls []workload.Workload
		for _, name := range req.Workloads {
			w, err := workload.ByName(name)
			if err != nil {
				return opt, nil, err
			}
			wls = append(wls, w)
		}
		opt.Workloads = wls
	}
	if len(req.Variants) > 0 {
		var vs []core.Variant
		for _, name := range req.Variants {
			v, err := core.ParseVariant(name)
			if err != nil {
				return opt, nil, err
			}
			vs = append(vs, v)
		}
		opt.Variants = vs
	}
	if len(req.Models) > 0 {
		var ms []pipeline.AttackModel
		for _, name := range req.Models {
			m, err := parseModel(name)
			if err != nil {
				return opt, nil, err
			}
			ms = append(ms, m)
		}
		opt.Models = ms
	}
	opt = opt.Normalized()
	if req.Ablations {
		return opt, ablationCells(opt), nil
	}
	seen := make(map[harness.Key]bool)
	var cells []RunSpec
	for _, k := range opt.Cells() {
		if seen[k] {
			continue
		}
		seen[k] = true
		c := RunSpec{
			Workload:       k.Workload,
			Variant:        k.Variant,
			Model:          k.Model,
			WarmupInstrs:   opt.WarmupInstrs,
			MaxInstrs:      opt.MaxInstrs,
			IntervalCycles: opt.IntervalCycles,
			WarmupMode:     opt.WarmupMode,
			SimMode:        opt.SimMode,
		}
		if opt.SimMode == harness.SimSampled {
			// Unset sampling fields resolve through the per-workload tuning
			// table (request parameters always win); stamping the resolved
			// values into the spec makes the cache key explicit about what
			// actually ran.
			cfg := harness.TunedSampleConfig(k.Workload, opt.Sample)
			c.SampleInterval = cfg.IntervalInstrs
			c.SampleMaxK = cfg.MaxK
			c.SampleSeed = cfg.Seed
		}
		cells = append(cells, c)
	}
	return opt, cells, nil
}

// ablationCells enumerates a design-space-study job: model-major, then
// workload, then the Unsafe baseline followed by the harness's ablation
// rows on Hybrid. Job.Ablations relies on exactly this order.
func ablationCells(opt harness.Options) []RunSpec {
	rows := harness.AblationRows()
	var cells []RunSpec
	for _, m := range opt.Models {
		for _, wl := range opt.Workloads {
			base := RunSpec{
				Workload:     wl.Name,
				Variant:      core.Unsafe,
				Model:        m,
				WarmupInstrs: opt.WarmupInstrs,
				MaxInstrs:    opt.MaxInstrs,
				WarmupMode:   opt.WarmupMode,
			}
			cells = append(cells, base)
			for _, row := range rows {
				c := base
				c.Variant = core.Hybrid
				c.Ablate = row.Ablate
				cells = append(cells, c)
			}
		}
	}
	return cells
}

// retryAfter estimates how long until MaxPendingCells of queue depth
// drains: pending cells divided across the workers at the observed mean
// run time (1s when nothing has run yet), clamped to [1s, 5m].
func (s *Service) retryAfter(pending int) time.Duration {
	avg := time.Second
	if n := s.runsExecuted.Load(); n > 0 {
		avg = time.Duration(s.runNanos.Load() / n)
	}
	d := time.Duration(pending) * avg / time.Duration(s.cfg.Workers)
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// Submit validates, registers and enqueues a sweep job. When the pending
// queue is over the configured bound, it returns an *OverloadError
// without registering anything.
func (s *Service) Submit(req SweepRequest) (*Job, error) {
	return s.submit(req, submitOpts{})
}

// submitOpts distinguishes a fresh submission from a journal-resumed
// re-admission.
type submitOpts struct {
	// id reuses a fixed job ID ("" allocates the next one) — resumed
	// jobs keep the ID sdoctl already holds.
	id string
	// resumed re-admissions bypass queue backpressure (the work was
	// already admitted once), skip the write-ahead journal append (their
	// submit record already survives in the journal) and skip the
	// speculation predictor (the original submission already taught it).
	resumed bool
}

// submit is the shared admission path for fresh and resumed sweeps.
func (s *Service) submit(req SweepRequest, so submitOpts) (*Job, error) {
	opt, cells, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return nil, errors.New("simsvc: empty sweep")
	}
	jctx, jcancel := context.WithCancel(s.ctx)
	j := &Job{
		opt:      opt,
		ctx:      jctx,
		cancel:   jcancel,
		state:    JobRunning,
		total:    len(cells),
		runs:     make(map[harness.Key]core.Result, len(cells)),
		done:     make(chan struct{}),
		ablation: req.Ablations,
		resumed:  so.resumed,
	}
	if j.ablation {
		j.cellRes = make([]core.Result, len(cells))
	}
	j.onTerminal = s.jobFinished

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		jcancel()
		return nil, ErrClosed
	}
	s.evictJobsLocked()
	if lim := s.cfg.MaxPendingCells; lim > 0 && !so.resumed {
		if pending := s.pool.QueueDepth(); pending+len(cells) > lim {
			s.mu.Unlock()
			jcancel()
			s.jobsRejected.Add(1)
			return nil, &OverloadError{Pending: pending, Limit: lim, RetryAfter: s.retryAfter(pending + len(cells))}
		}
	}
	if so.id != "" {
		if _, exists := s.jobs[so.id]; exists {
			s.mu.Unlock()
			jcancel()
			return nil, fmt.Errorf("simsvc: job %s already registered", so.id)
		}
		j.ID = so.id
	} else {
		// In a cluster, OwnsID partitions the "sweep-N" sequence: each
		// node skips the numbers it does not own under the rendezvous
		// hash, so nodes allocate disjoint IDs and any node can resolve
		// any ID's owner with the same hash (see internal/cluster).
		for {
			s.nextID++
			j.ID = fmt.Sprintf("sweep-%d", s.nextID)
			if s.cfg.OwnsID == nil || s.cfg.OwnsID(j.ID) {
				break
			}
		}
	}
	j.jt = s.tracer.StartJob(j.ID)
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.jobsTotal.Add(1)
	if so.resumed {
		s.resumedJobs.Add(1)
		s.resuming.Add(1)
	} else if s.journal != nil {
		// Write-ahead: the admission record is durable before any cell
		// is enqueued, so a crash from here on leaves a resumable job,
		// never a lost one. An append failure degrades the journal
		// (health: degraded) but keeps serving — availability over
		// durability.
		if raw, err := json.Marshal(req); err == nil {
			if !s.journal.submit(j.ID, raw) {
				s.event("journal-append-failed", j.ID)
			}
		}
	}
	if s.rec.On(obs.ClassTrace) {
		kind := "sweep-submitted"
		if so.resumed {
			kind = "sweep-resumed"
		}
		s.rec.Emit(obs.Event{Class: obs.ClassTrace, Kind: kind,
			Detail: fmt.Sprintf("%s: %d cells", j.ID, len(cells))})
	}

	if s.spec != nil && !so.resumed {
		// Demand preempts speculation: squash speculative cells this
		// submission does not need (keeping ones it does — their demand
		// cells will join the running flight as a hit), then teach the
		// predictor the new transition.
		keep := make(map[string]bool, len(cells))
		for _, c := range cells {
			if k, err := c.CacheKey(); err == nil {
				keep[k] = true
			}
		}
		s.spec.preempt(keep)
		s.spec.observe(opt, req.Ablations)
	}

	enqueued := time.Now()
	for i, c := range cells {
		i, c := i, c
		if s.steal != nil {
			if k, err := c.CacheKey(); err == nil {
				s.steal.enqueue(k, c)
			}
		}
		s.pool.Submit(func(ctx context.Context) { s.runCell(ctx, j, i, c, enqueued) })
	}
	return j, nil
}

// jobFinished observes a job reaching a terminal state: the result cache
// is persisted write-behind, the registry bound is enforced, and the
// speculation engine is kicked — the pool is likely idle now, and the
// just-finished job is fresh prediction context.
func (s *Service) jobFinished(j *Job) {
	st := j.Status()
	if s.rec.On(obs.ClassTrace) {
		s.rec.Emit(obs.Event{Class: obs.ClassTrace, Kind: "sweep-finished",
			Detail: fmt.Sprintf("%s: %s (%d/%d runs, %d cached, %d failed)",
				st.ID, st.State, st.Completed, st.Total, st.Cached, st.Failed)})
	}
	// The terminal transition is fsynced before anything can observe the
	// job as finished-and-persisted: a crash right after this point must
	// not resurrect the job on restart.
	if !s.journal.terminal(st.ID, st.State) && s.journal != nil && !s.journal.isDegraded() {
		s.event("journal-append-failed", st.ID)
	}
	if j.resumed {
		s.resuming.Add(-1)
		s.resumeSkipped.Add(uint64(st.ResumeSkipped))
		s.resumeReruns.Add(uint64(st.ResumeRerun))
		s.event("resume-complete", fmt.Sprintf("%s: %s (%d cells skipped via cache, %d re-run)",
			st.ID, st.State, st.ResumeSkipped, st.ResumeRerun))
	}
	s.mu.Lock()
	s.evictJobsLocked()
	s.mu.Unlock()
	s.schedulePersist()
	if s.spec != nil {
		s.spec.kick()
	}
}

// evictJobsLocked enforces the registry bounds (caller holds s.mu):
// finished jobs past JobTTL are dropped, then the oldest finished jobs
// until MaxJobs is met. Running jobs are never evicted.
func (s *Service) evictJobsLocked() {
	now := time.Now()
	evict := func(pred func(*Job) bool) {
		kept := s.order[:0]
		for _, id := range s.order {
			j := s.jobs[id]
			if j.Terminal() && pred(j) {
				delete(s.jobs, id)
				s.jobsEvicted.Add(1)
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
	if ttl := s.cfg.JobTTL; ttl > 0 {
		evict(func(j *Job) bool { return now.Sub(j.FinishedAt()) > ttl })
	}
	if max := s.cfg.MaxJobs; max > 0 && len(s.order) > max {
		over := len(s.order) - max
		evict(func(*Job) bool { over--; return over >= 0 })
	}
}

// checkpoint returns the warmup checkpoint for key: from the in-memory
// tier, else from the on-disk store (a restarted server restores warm
// state instead of re-simulating warmup), else captured fresh — under
// singleflight, so concurrent cells for the same workload block until the
// one load/capture finishes. A freshly-captured checkpoint is persisted
// best-effort for the next restart. A panicking capture is isolated: this
// cell (and any that were blocked on the flight) gets nil and falls back
// to in-place warmup; the flight is dropped so a later cell can retry.
func (s *Service) checkpoint(parent *trace.Span, key string, wl workload.Workload, warmup uint64) *arch.Checkpoint {
	s.ckMu.Lock()
	f, ok := s.ckpts[key]
	if !ok {
		f = &ckFlight{done: make(chan struct{})}
		s.ckpts[key] = f
		s.ckMu.Unlock()
		fromDisk, fromPeer := false, false
		func() {
			defer func() {
				if r := recover(); r != nil {
					s.event("checkpoint-panic", fmt.Sprintf("%s: %v", key, r))
				}
				close(f.done)
			}()
			if ck := s.ckstore.load(key, warmup); ck != nil {
				f.ck, fromDisk = ck, true
				return
			}
			if ck := s.peerCheckpoint(parent, key, warmup); ck != nil {
				f.ck, fromPeer = ck, true
				return
			}
			f.ck = harness.CaptureCheckpoint(wl, warmup)
		}()
		if f.ck == nil {
			s.ckMu.Lock()
			delete(s.ckpts, key)
			s.ckMu.Unlock()
			return nil
		}
		if fromDisk {
			s.ckptDiskHits.Add(1)
			return f.ck
		}
		if fromPeer {
			// peerCheckpoint already counted the hit and persisted it.
			return f.ck
		}
		s.ckptsCaptured.Add(1)
		s.warmupSimulated.Add(f.ck.Arch.Instrs)
		if s.ckstore.enabled() {
			if err := s.ckstore.save(key, f.ck); err != nil {
				s.event("checkpoint-persist-failed", err.Error())
			} else {
				s.ckptsPersisted.Add(1)
			}
		}
		return f.ck
	}
	s.ckMu.Unlock()
	<-f.done
	if f.ck != nil {
		s.ckptHits.Add(1)
	}
	return f.ck
}

// samplePlan returns the sampling plan for key: from the in-memory
// tier, else from the on-disk store (a restarted server skips the BBV
// re-profiling pass), else built fresh — under singleflight, so
// concurrent sampled cells for the same workload block until the one
// load/build finishes. A freshly-built plan is persisted best-effort
// next to the checkpoints for the next restart. A failed or panicking
// build fails this cell and any blocked on the flight; the flight is
// dropped so a later cell can retry.
func (s *Service) samplePlan(parent *trace.Span, key string, wl workload.Workload, spec RunSpec) (*harness.SamplePlan, error) {
	s.planMu.Lock()
	f, ok := s.plans[key]
	if !ok {
		f = &planFlight{done: make(chan struct{})}
		s.plans[key] = f
		s.planMu.Unlock()
		start := time.Now()
		cfg := simpoint.Config{IntervalInstrs: spec.SampleInterval, MaxK: spec.SampleMaxK, Seed: spec.SampleSeed}
		fromDisk, fromPeer := false, false
		func() {
			defer func() {
				if r := recover(); r != nil {
					f.err = fmt.Errorf("simsvc: sample plan for %s panicked: %v", spec.Workload, r)
					s.event("plan-panic", fmt.Sprintf("%s: %v", key, r))
				}
				close(f.done)
			}()
			if sp := s.ckstore.loadPlan(key, spec.WarmupInstrs, spec.MaxInstrs, cfg); sp != nil {
				f.sp, fromDisk = sp, true
				return
			}
			if sp := s.peerPlan(parent, key, spec, cfg); sp != nil {
				f.sp, fromPeer = sp, true
				return
			}
			f.sp, f.err = harness.BuildSamplePlan(wl, spec.WarmupInstrs, spec.MaxInstrs, cfg)
		}()
		if f.err != nil {
			s.planMu.Lock()
			delete(s.plans, key)
			s.planMu.Unlock()
			return nil, f.err
		}
		if fromDisk {
			s.planDiskHits.Add(1)
			return f.sp, nil
		}
		if fromPeer {
			// peerPlan already counted the hit and persisted it.
			return f.sp, nil
		}
		s.planDur.Observe(time.Since(start).Seconds())
		s.plansBuilt.Add(1)
		s.profiledInstrs.Add(f.sp.Plan.ProfiledInstrs)
		s.ckptsCaptured.Add(uint64(len(f.sp.Checkpoints)))
		if n := len(f.sp.Checkpoints); n > 0 {
			// One continuous capture pass warms to the last boundary.
			s.warmupSimulated.Add(f.sp.Checkpoints[n-1].Arch.Instrs)
		}
		if s.ckstore.enabled() {
			if err := s.ckstore.savePlan(key, spec.WarmupInstrs, spec.MaxInstrs, cfg, f.sp); err != nil {
				s.event("plan-persist-failed", err.Error())
			} else {
				s.plansPersisted.Add(1)
			}
		}
		if s.rec.On(obs.ClassSample) {
			s.rec.Emit(obs.Event{Class: obs.ClassSample, Kind: "plan-built",
				Detail: fmt.Sprintf("%s: k=%d/%d intervals, sampled %d/%d instrs, err-est %.3f",
					spec.Workload, f.sp.Plan.K, f.sp.Plan.NumIntervals,
					f.sp.Plan.SampledInstrs(), f.sp.Plan.WindowInstrs, f.sp.Plan.ErrEstimate)})
		}
		return f.sp, nil
	}
	s.planMu.Unlock()
	<-f.done
	if f.sp != nil {
		s.planHits.Add(1)
	}
	return f.sp, f.err
}

// Job returns a submitted job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// flightAbandoned reports whether no job waiting on the in-flight run
// keyed by key is still alive — the condition under which a mid-run cell
// is aborted rather than finished.
func (s *Service) flightAbandoned(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.inflight[key]
	if !ok {
		return false
	}
	for _, w := range f.waiters {
		if !w.job.Terminal() {
			return false
		}
	}
	return true
}

// cellEvent counts per-attempt outcomes from the harness (metrics +
// observability).
func (s *Service) cellEvent(ev harness.CellEvent) {
	switch ev.Kind {
	case "retry":
		s.retriesTotal.Add(1)
		s.noteRetry()
	case "panic":
		s.cellPanics.Add(1)
	case "timeout":
		s.cellTimeouts.Add(1)
	case "stall":
		s.cellStalls.Add(1)
	}
	if s.rec.On(obs.ClassFault) {
		s.rec.Emit(obs.Event{Class: obs.ClassFault, Kind: "cell-" + ev.Kind,
			Detail: fmt.Sprintf("%s/%v/%v attempt %d: %v",
				ev.Key.Workload, ev.Key.Variant, ev.Key.Model, ev.Attempt, ev.Err)})
	}
}

// runCell executes (or resolves from cache / an identical in-flight run)
// one cell on a pool worker. idx is the cell's index in its job's
// enumeration order. Execution is hardened: panics are isolated, the
// configured deadline/stall watchdog applies, and transient failures
// retry with backoff; a permanent failure degrades the waiting jobs
// instead of killing them.
func (s *Service) runCell(ctx context.Context, j *Job, idx int, spec RunSpec, enqueued time.Time) {
	s.queueLat.Observe(time.Since(enqueued).Seconds())
	if s.steal != nil {
		// A worker picked the cell up: it is no longer stealable (on every
		// exit path, including skip below).
		if k, err := spec.CacheKey(); err == nil {
			s.steal.dequeue(k)
		}
	}
	if ctx.Err() != nil || j.ctx.Err() != nil {
		s.runsSkipped.Add(1)
		j.skip()
		return
	}
	key, err := spec.CacheKey()
	if err != nil {
		j.fail(err)
		return
	}
	k := spec.Key()
	// ct is nil with tracing off: every span call below degrades to one
	// nil check. The root span starts at enqueue, so its duration is the
	// cell's reported wall clock; queue-wait is recorded retroactively.
	ct := j.jt.StartCell(cellName(k), enqueued)
	if j.resumed {
		ct.Root().Set("resumed", "true")
	}
	ct.Root().ChildAt(trace.PhaseQueue, enqueued).Finish()
	line := func(r core.Result, note string) string {
		return harness.FormatProgress(k, r) + note
	}
	cs := ct.Root().Child(trace.PhaseCache)
	r, hit := s.cache.Get(key)
	cs.Set("hit", strconv.FormatBool(hit))
	cs.Finish()
	if hit {
		note := "  [cached]"
		if s.spec != nil {
			if cpu, wasSpec := s.spec.track.Claim(key); wasSpec {
				// The entry was pre-executed speculatively and this is
				// the demand request it was predicted for: credit the
				// governor with the compute the hit just saved, and
				// stitch the pre-execution's spans into this trace.
				s.spec.hits.Add(1)
				s.spec.gov.Hit(cpu)
				ct.Stitch(s.tracer.ClaimSpec(key))
				note = "  [cached, speculated]"
				s.spec.event("spec-hit", fmt.Sprintf("%s/%v/%v (saved %s)",
					k.Workload, k.Variant, k.Model, cpu.Round(time.Millisecond)))
			}
		}
		j.deliver(idx, k, r, line(r, note), true, 0, finishCell(ct, "cached"))
		return
	}
	s.mu.Lock()
	if f, ok := s.inflight[key]; ok {
		await := ct.Root().Child(trace.PhaseAwait)
		f.waiters = append(f.waiters, delivery{job: j, idx: idx, key: k, ct: ct, await: await})
		claimedNow := f.spec && !f.claimed
		if claimedNow {
			// Joining a still-running speculative flight claims it: it
			// now counts as a hit and is immune to preemption.
			f.claimed = true
		}
		s.mu.Unlock()
		s.runsDeduped.Add(1)
		if claimedNow {
			s.spec.hits.Add(1)
			s.spec.event("spec-hit", fmt.Sprintf("%s/%v/%v (joined in flight)",
				k.Workload, k.Variant, k.Model))
		}
		return
	}
	f := &flight{waiters: []delivery{{job: j, idx: idx, key: k, ct: ct}}}
	s.inflight[key] = f
	s.mu.Unlock()

	// Work stealing: if a peer claimed this cell under a still-live
	// lease, wait (bounded by the lease expiry) for its result to land
	// in the cache instead of duplicating the run. An expired lease
	// reclaims the cell — execution continues below exactly as if it
	// was never stolen.
	if s.steal != nil {
		if r, thief, ok := s.stealWait(ct.Root(), key); ok {
			s.mu.Lock()
			delete(s.inflight, key)
			waiters := f.waiters
			s.mu.Unlock()
			for _, w := range waiters {
				w.await.Finish()
				w.job.deliver(w.idx, w.key, r, line(r, "  [stolen]"), true, 0, finishCell(w.ct, "stolen"))
			}
			if s.rec.On(obs.ClassTrace) {
				s.rec.Emit(obs.Event{Class: obs.ClassTrace, Kind: "steal-hit",
					Detail: fmt.Sprintf("%s from thief %s", cellName(k), thief)})
			}
			return
		}
	}

	// Cache peering: before simulating, ask the fabric whether a peer
	// already holds this content-addressed key. Any peer failure (down,
	// slow, corrupt) resolves to a miss and the cell simulates locally —
	// the fabric can make a sweep faster, never break it. All waiters on
	// this flight share the one lookup.
	if r, peerURL, ok := s.peerLookup(ct.Root(), key); ok {
		s.cache.Put(key, r)
		s.schedulePersist()
		s.mu.Lock()
		delete(s.inflight, key)
		waiters := f.waiters
		s.mu.Unlock()
		for _, w := range waiters {
			w.await.Finish()
			w.job.deliver(w.idx, w.key, r, line(r, "  [peer]"), true, 0, finishCell(w.ct, "peer"))
		}
		if s.rec.On(obs.ClassTrace) {
			s.rec.Emit(obs.Event{Class: obs.ClassTrace, Kind: "peer-hit",
				Detail: fmt.Sprintf("%s from %s", cellName(k), peerURL)})
		}
		return
	}

	pol := harness.RunPolicy{
		MaxAttempts:  s.cfg.MaxAttempts,
		RetryBackoff: s.cfg.RetryBackoff,
		CellTimeout:  s.cellTimeout(),
		StallTimeout: s.cfg.StallTimeout,
		Abort:        func() bool { return s.flightAbandoned(key) },
		Notify:       s.cellEvent,
	}
	// The cell runs under a non-cancelling context: shutdown drains
	// in-flight cells (complete-and-persist), and a cancelled job's
	// cells abort via pol.Abort only once no other live job waits on
	// them. The executing waiter's root span rides along so the harness
	// nests its attempt/interval spans under this cell's simulate phase.
	r, retries, elapsed, err := s.execute(trace.NewContext(context.Background(), ct.Root()), spec, pol)
	if elapsed > 0 {
		s.runNanos.Add(uint64(elapsed))
		s.runDur.Observe(elapsed.Seconds())
		s.runsExecuted.Add(1)
		s.noteSlowCell(k, elapsed, ct)
	}
	if err == nil {
		s.cache.Put(key, r)
		if s.journal != nil {
			// With resumable jobs on, each completed cell schedules a
			// (debounced) cache persist: the persisted cache is what a
			// restarted service re-derives surviving cells from, so a
			// crash loses at most the debounce window of results, not
			// the whole in-flight sweep.
			s.schedulePersist()
		}
	}

	s.mu.Lock()
	delete(s.inflight, key)
	waiters := f.waiters
	s.mu.Unlock()

	var ce *harness.CellError
	switch {
	case err == nil:
		for _, w := range waiters {
			w.await.Finish()
			w.job.deliver(w.idx, w.key, r, line(r, ""), false, retries, finishCell(w.ct, "done"))
		}
	case errors.As(err, &ce):
		s.deliverFailure(waiters, k, ce, retries)
	case errors.Is(err, harness.ErrCellAbandoned):
		s.runsSkipped.Add(1)
		for _, w := range waiters {
			w.await.Finish()
			finishCell(w.ct, "abandoned")
			w.job.skip()
		}
	default:
		// Infrastructure error (cancellation, unknown workload, bad
		// checkpoint key): fail the waiting jobs outright.
		for _, w := range waiters {
			w.await.Finish()
			finishCell(w.ct, "error")
			w.job.fail(fmt.Errorf("simsvc: %s/%v/%v: %w", spec.Workload, spec.Variant, spec.Model, err))
		}
	}
}

// cellName renders a harness key as the "workload/variant/model" label
// span trees and slow-cell warnings use.
func cellName(k harness.Key) string {
	return fmt.Sprintf("%s/%v/%v", k.Workload, k.Variant, k.Model)
}

// finishCell closes a cell trace's root span with a terminal status and
// returns its attribution (nil with tracing off — the delivery path then
// records nothing).
func finishCell(ct *trace.CellTrace, status string) *trace.Attribution {
	if ct == nil {
		return nil
	}
	ct.Root().Set("status", status)
	ct.Finish()
	return ct.Attribution()
}

// slowCellMinSamples is how many executed runs the duration histogram
// must hold before the slow-cell detector trusts its p99.
const slowCellMinSamples = 32

// noteSlowCell emits one structured warning line (stderr JSON, plus a
// ClassTrace event into the flight ring) for a cell whose execution
// exceeded the p99 of the run-duration histogram. With tracing on, the
// line carries the cell's span breakdown.
func (s *Service) noteSlowCell(k harness.Key, elapsed time.Duration, ct *trace.CellTrace) {
	if s.runDur.Count() < slowCellMinSamples {
		return
	}
	p99 := s.runDur.Quantile(0.99)
	if p99 <= 0 || elapsed.Seconds() <= p99 {
		return
	}
	s.slowCells.Add(1)
	breakdown := ct.Attribution().Summary() // snapshot; the root span is still open
	warn := struct {
		Level     string  `json:"level"`
		Msg       string  `json:"msg"`
		Cell      string  `json:"cell"`
		Seconds   float64 `json:"seconds"`
		P99       float64 `json:"p99_seconds"`
		Breakdown string  `json:"breakdown,omitempty"`
	}{"warn", "slow-cell", cellName(k), elapsed.Seconds(), p99, breakdown}
	if b, err := json.Marshal(warn); err == nil {
		fmt.Fprintln(os.Stderr, string(b))
	}
	if s.rec.On(obs.ClassTrace) {
		s.rec.Emit(obs.Event{Class: obs.ClassTrace, Kind: "slow-cell",
			Detail: fmt.Sprintf("%s took %s (p99 %.2fs) %s",
				cellName(k), elapsed.Round(time.Millisecond), p99, breakdown)})
	}
}

// execute runs one cell's simulation — workload lookup, the sample-plan
// or checkpoint tier, then the harness call under pol — and returns the
// result, retry count, and how long the harness call itself took
// (0 when the tiers failed before any simulation ran). Both the demand
// path (runCell) and the speculative path (speculation.runCell) execute
// cells through here, so a speculative result is bit-identical to the
// demand result for the same key.
func (s *Service) execute(ctx context.Context, spec RunSpec, pol harness.RunPolicy) (core.Result, int, time.Duration, error) {
	parent := trace.FromContext(ctx)
	wl, err := workload.ByName(spec.Workload)
	if err != nil {
		return core.Result{}, 0, 0, err
	}
	p := harness.RunParams{
		WarmupInstrs:   spec.WarmupInstrs,
		MaxInstrs:      spec.MaxInstrs,
		IntervalCycles: spec.IntervalCycles,
		WarmupMode:     spec.WarmupMode,
	}
	var sp *harness.SamplePlan
	if spec.simMode() == harness.SimSampled {
		// Sampled cells execute a shared per-workload sampling plan;
		// warmup accounting happens once, at plan-build time.
		ps := parent.Child(trace.PhasePlan)
		var planKey string
		if planKey, err = spec.PlanKey(); err == nil {
			sp, err = s.samplePlan(ps, planKey, wl, spec)
		}
		ps.Finish()
		if err != nil {
			return core.Result{}, 0, 0, err
		}
	} else if spec.WarmupMode == core.WarmupFunctional && spec.WarmupInstrs > 0 {
		var ckKey string
		if ckKey, err = spec.CheckpointKey(); err != nil {
			return core.Result{}, 0, 0, err
		}
		cks := parent.Child(trace.PhaseCheckpoint)
		if p.Checkpoint = s.checkpoint(cks, ckKey, wl, spec.WarmupInstrs); p.Checkpoint == nil {
			// Capture failed: degrade to in-place functional warmup for
			// this cell (bit-identical, just slower).
			s.warmupSimulated.Add(spec.WarmupInstrs)
		}
		cks.Set("restored", strconv.FormatBool(p.Checkpoint != nil))
		cks.Finish()
	} else if spec.WarmupInstrs > 0 {
		s.warmupSimulated.Add(spec.WarmupInstrs)
	}
	var r core.Result
	var retries int
	sim := parent.Child(trace.PhaseSimulate)
	simCtx := trace.NewContext(ctx, sim)
	start := time.Now()
	if sp != nil {
		// Representative intervals run serially within the cell
		// (workers=1): the service pool already parallelizes across
		// cells, and each interval is its own fault-isolated RunCell
		// attempt.
		r, retries, err = harness.RunSampledCell(simCtx, 1,
			wl, spec.Variant, spec.Model, spec.Ablate, sp, p, pol, s.inj)
		if err == nil {
			s.sampledCells.Add(1)
			s.sampledInstrs.Add(sp.Plan.SampledInstrs())
		}
	} else {
		r, retries, err = harness.RunCell(simCtx, wl, spec.Variant, spec.Model, spec.Ablate, p, pol, s.inj)
	}
	elapsed := time.Since(start)
	sim.Finish()
	return r, retries, elapsed, err
}

// deliverFailure records one permanently-failed cell and degrades every
// waiting job rather than killing it.
func (s *Service) deliverFailure(waiters []delivery, k harness.Key, ce *harness.CellError, retries int) {
	s.cellsFailed.Add(1)
	s.event("cell-failed", ce.Error())
	fail := Failure{
		Cell:     fmt.Sprintf("%s/%v/%v", k.Workload, k.Variant, k.Model),
		Kind:     string(ce.Kind),
		Attempts: ce.Attempts,
		Error:    ce.Err.Error(),
	}
	failLine := fmt.Sprintf("%-14s %-11s %-10s FAILED: %s after %d attempt(s): %v",
		k.Workload, k.Variant, k.Model, ce.Kind, ce.Attempts, ce.Err)
	for _, w := range waiters {
		w.await.Finish()
		finishCell(w.ct, "failed")
		w.job.cellFail(w.idx, w.key, fail, failLine, retries)
	}
}

// autoTimeoutFactor scales the observed p99 run duration into the
// auto-tuned per-cell deadline.
const autoTimeoutFactor = 3

// autoTimeoutMinSamples is how many runs must have been observed before
// auto-tuning trusts the histogram over the static configuration.
const autoTimeoutMinSamples = 20

// cellTimeout returns the per-cell deadline for the next attempt: the
// static CellTimeout, or — with AutoTimeout enabled and enough history —
// p99 of observed run durations × autoTimeoutFactor, clamped to
// [1s, CellTimeout] (10m when no static ceiling is configured). The
// derived deadline adapts to the deployment's real workload mix instead
// of requiring one hand-tuned number to fit both microbenchmarks and
// hour-long cells.
func (s *Service) cellTimeout() time.Duration {
	if !s.cfg.AutoTimeout {
		return s.cfg.CellTimeout
	}
	if s.runDur.Count() < autoTimeoutMinSamples {
		return s.cfg.CellTimeout
	}
	d := time.Duration(s.runDur.Quantile(0.99) * autoTimeoutFactor * float64(time.Second))
	floor, ceil := time.Second, s.cfg.CellTimeout
	if ceil <= 0 {
		ceil = 10 * time.Minute
	}
	if d < floor {
		d = floor
	}
	if d > ceil {
		d = ceil
	}
	return d
}

// schedulePersist queues a debounced write-behind save of the result
// cache (after each job reaches a terminal state), so a crash loses at
// most the most recent debounce window, not the whole run's results.
func (s *Service) schedulePersist() {
	if s.cfg.CachePath == "" || s.cacheDegraded.Load() {
		return
	}
	s.persistMu.Lock()
	if s.persistStopped || s.persistPending {
		s.persistMu.Unlock()
		return
	}
	s.persistPending = true
	s.bg.Add(1)
	s.persistMu.Unlock()
	go func() {
		defer s.bg.Done()
		time.Sleep(persistDebounce)
		s.persistMu.Lock()
		s.persistPending = false
		if s.persistStopped {
			s.persistMu.Unlock()
			return
		}
		s.persistMu.Unlock()
		s.persistNow()
	}()
}

// persistNow saves the cache, tracking consecutive failures; past the
// configured limit the cache degrades to memory-only mode (health:
// degraded) instead of hammering a dead disk.
func (s *Service) persistNow() {
	err := s.cache.Save(s.cfg.CachePath)
	if err == nil {
		s.persistFailStreak.Store(0)
		s.cacheLoadFailed.Store(false) // a fresh good file now exists
		return
	}
	s.persistFailures.Add(1)
	streak := s.persistFailStreak.Add(1)
	s.event("persist-failed", err.Error())
	if int(streak) >= s.cfg.PersistFailureLimit && s.cacheDegraded.CompareAndSwap(false, true) {
		s.event("cache-degraded",
			fmt.Sprintf("persistence disabled after %d consecutive failures: %v", streak, err))
	}
}

// Shutdown stops intake, cancels queued-but-unstarted cells, lets
// in-flight simulations finish (a cell all of whose waiting jobs died is
// aborted), then persists the cache. The pool is always waited for
// (nothing leaks); if ctx expires during that wait the cache is still
// persisted and ctx.Err() is reported.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.cancel() // queued cells skip; running cells finish
	s.fab.Close()
	if s.spec != nil {
		// Speculative work is squashable by definition: cancel it all
		// and join the goroutines before draining demand cells.
		s.spec.stop()
	}
	s.pool.Close()
	done := make(chan struct{})
	go func() {
		s.pool.Wait()
		close(done)
	}()
	var waitErr error
	select {
	case <-done:
	case <-ctx.Done():
		waitErr = ctx.Err()
		<-done
	}
	// Stop write-behind persists, wait for any in-flight one, then do
	// one final synchronous save — unless persistence already degraded.
	s.persistMu.Lock()
	s.persistStopped = true
	s.persistMu.Unlock()
	s.bg.Wait()
	if s.cfg.CachePath != "" && !s.cacheDegraded.Load() {
		if err := s.cache.Save(s.cfg.CachePath); err != nil {
			s.persistFailures.Add(1)
			s.journal.close()
			return err
		}
	}
	s.journal.close()
	return waitErr
}

// Metrics is a point-in-time snapshot of the service counters.
type Metrics struct {
	CacheHits         uint64
	CacheMisses       uint64
	CacheEvictions    uint64
	CacheEntries      int
	CacheBytes        int64
	CacheEvictedBytes uint64
	QueueDepth        int
	InFlight          int
	Workers           int
	RunsExecuted      uint64
	RunsDeduped       uint64
	RunsSkipped       uint64
	RunSeconds        float64
	JobsTotal         uint64

	Retries      uint64
	CellsFailed  uint64
	CellPanics   uint64
	CellTimeouts uint64
	CellStalls   uint64
	JobsRejected uint64
	JobsEvicted  uint64
	JobsTracked  int

	CacheCorruptEntries   uint64
	CacheQuarantinedFiles uint64
	PersistFailures       uint64
	CacheDegraded         bool
	FaultsInjected        uint64

	// Resumable-job counters (zero unless Config.JournalPath).
	ResumedJobs         uint64
	ResumeCellsSkipped  uint64
	ResumeCellsRerun    uint64
	ResumingJobs        int64
	JournalAppends      uint64
	JournalAppendFails  uint64
	JournalCorruptLines int
	JournalDegraded     bool

	// Cache-peering counters (zero unless Config.Peers).
	PeerHits        uint64
	PeerMisses      uint64
	PeerErrors      uint64
	PeerHedges      uint64
	PeersConfigured int
	PeersAvailable  int

	CheckpointsCaptured   uint64
	CheckpointHits        uint64
	WarmupInstrsSimulated uint64
	CheckpointsPersisted  uint64
	CheckpointDiskHits    uint64

	SamplePlansBuilt      uint64
	SamplePlanHits        uint64
	SampledCells          uint64
	SampledDetailedInstrs uint64
	ProfiledInstrs        uint64
	SamplePlansPersisted  uint64
	SamplePlanDiskHits    uint64

	// Speculation counters (zero unless Config.Speculate).
	SpecPredictions      uint64
	SpecCellsExecuted    uint64
	SpecHits             uint64
	SpecCancellations    uint64
	SpecCPUSeconds       float64
	SpecWastedCPUSeconds float64
	SpecThrottleState    string
	SpecBacklog          int
	SpecUnclaimed        int
}

// Snapshot gathers the current metrics.
func (s *Service) Snapshot() Metrics {
	hits, misses := s.cache.Stats()
	s.mu.Lock()
	tracked := len(s.jobs)
	s.mu.Unlock()
	m := Metrics{
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheEvictions:    s.cache.Evictions(),
		CacheEntries:      s.cache.Len(),
		CacheBytes:        s.cache.Bytes(),
		CacheEvictedBytes: s.cache.EvictedBytes(),
		QueueDepth:        s.pool.QueueDepth(),
		InFlight:          s.pool.Active(),
		Workers:           s.cfg.Workers,
		RunsExecuted:      s.runsExecuted.Load(),
		RunsDeduped:       s.runsDeduped.Load(),
		RunsSkipped:       s.runsSkipped.Load(),
		RunSeconds:        float64(s.runNanos.Load()) / 1e9,
		JobsTotal:         s.jobsTotal.Load(),

		Retries:      s.retriesTotal.Load(),
		CellsFailed:  s.cellsFailed.Load(),
		CellPanics:   s.cellPanics.Load(),
		CellTimeouts: s.cellTimeouts.Load(),
		CellStalls:   s.cellStalls.Load(),
		JobsRejected: s.jobsRejected.Load(),
		JobsEvicted:  s.jobsEvicted.Load(),
		JobsTracked:  tracked,

		CacheCorruptEntries:   s.cache.CorruptEntries(),
		CacheQuarantinedFiles: s.cache.QuarantinedFiles(),
		PersistFailures:       s.persistFailures.Load(),
		CacheDegraded:         s.cacheDegraded.Load(),
		FaultsInjected:        s.inj.Stats().Total(),

		CheckpointsCaptured:   s.ckptsCaptured.Load(),
		CheckpointHits:        s.ckptHits.Load(),
		WarmupInstrsSimulated: s.warmupSimulated.Load(),
		CheckpointsPersisted:  s.ckptsPersisted.Load(),
		CheckpointDiskHits:    s.ckptDiskHits.Load(),

		SamplePlansBuilt:      s.plansBuilt.Load(),
		SamplePlanHits:        s.planHits.Load(),
		SampledCells:          s.sampledCells.Load(),
		SampledDetailedInstrs: s.sampledInstrs.Load(),
		ProfiledInstrs:        s.profiledInstrs.Load(),
		SamplePlansPersisted:  s.plansPersisted.Load(),
		SamplePlanDiskHits:    s.planDiskHits.Load(),
	}
	if jn := s.journal; jn != nil {
		m.ResumedJobs = s.resumedJobs.Load()
		m.ResumeCellsSkipped = s.resumeSkipped.Load()
		m.ResumeCellsRerun = s.resumeReruns.Load()
		m.ResumingJobs = s.resuming.Load()
		a, e, _, sk := jn.stats()
		m.JournalAppends = a
		m.JournalAppendFails = e
		m.JournalCorruptLines = sk
		m.JournalDegraded = jn.isDegraded()
	}
	if f := s.fab; f != nil {
		fs := f.Stats()
		m.PeerHits = fs.Hits
		m.PeerMisses = fs.Misses
		m.PeerErrors = fs.Errors
		m.PeerHedges = fs.Hedges
		m.PeersConfigured = f.Peers()
		m.PeersAvailable = f.Available()
	}
	if sp := s.spec; sp != nil {
		m.SpecPredictions = sp.predictions.Load()
		m.SpecCellsExecuted = sp.cellsExecuted.Load()
		m.SpecHits = sp.hits.Load()
		m.SpecCancellations = sp.cancellations.Load()
		m.SpecCPUSeconds = float64(sp.specNanos.Load()) / 1e9
		m.SpecWastedCPUSeconds = float64(sp.wastedNanos.Load()) / 1e9
		m.SpecThrottleState = sp.gov.State().String()
		m.SpecBacklog = sp.backlog()
		m.SpecUnclaimed = sp.track.Len()
	}
	return m
}
