package simsvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Config configures a Service.
type Config struct {
	// Workers bounds concurrent simulations (0: GOMAXPROCS).
	Workers int
	// CachePath persists the result cache across restarts ("" disables
	// persistence; the in-memory cache still works).
	CachePath string
	// CacheMaxEntries bounds the result cache; least-recently-used
	// results are evicted past the bound (0: unbounded).
	CacheMaxEntries int
}

// ErrClosed is returned by Submit after Shutdown has begun.
var ErrClosed = errors.New("simsvc: service is shut down")

// Service schedules sweep jobs over the shared harness worker pool,
// deduplicates identical in-flight runs, and answers repeated cells from
// the content-addressed result cache.
type Service struct {
	cfg    Config
	cache  *Cache
	pool   *harness.Pool
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	closed   bool
	nextID   int
	jobs     map[string]*Job
	order    []string
	inflight map[string]*flight

	// Checkpoint tier: one functional-warmup checkpoint per (workload
	// fingerprint, warmup budget), captured once under singleflight and
	// restored by every functional-mode cell that shares it. Unbounded,
	// but entries exist only per distinct (workload, warmup) pair — a
	// handful per deployment.
	ckMu  sync.Mutex
	ckpts map[string]*ckFlight

	// Metrics (see /metrics).
	runsExecuted atomic.Uint64 // simulations actually run
	runsDeduped  atomic.Uint64 // cells that joined an in-flight identical run
	runsSkipped  atomic.Uint64 // cells abandoned by cancellation/shutdown
	runNanos     atomic.Uint64 // cumulative wall time of executed runs
	jobsTotal    atomic.Uint64

	ckptsCaptured   atomic.Uint64 // warmup checkpoints captured
	ckptHits        atomic.Uint64 // cells that restored an existing checkpoint
	warmupSimulated atomic.Uint64 // warmup instructions actually simulated

	reg      *obs.Registry
	runDur   *obs.Histogram // per-run wall time
	queueLat *obs.Histogram // submit-to-start latency per cell
}

// flight is one in-progress simulation with every (job, cell) waiting on
// it; the executing worker delivers the result to all of them.
type flight struct {
	waiters []delivery
}

type delivery struct {
	job *Job
	idx int // cell index in the job's enumeration order
	key harness.Key
}

// ckFlight is one checkpoint-tier entry: the first cell to need it
// captures while later cells block on done.
type ckFlight struct {
	done chan struct{}
	ck   *arch.Checkpoint
}

// New starts a service. The persisted cache at cfg.CachePath, if any, is
// loaded so a restarted server answers repeated sweeps from cache.
func New(cfg Config) (*Service, error) {
	cache := NewCache()
	if cfg.CachePath != "" {
		var err error
		if cache, err = LoadCache(cfg.CachePath); err != nil {
			return nil, err
		}
	}
	cache.SetMaxEntries(cfg.CacheMaxEntries)
	if cfg.Workers <= 0 {
		cfg.Workers = harness.Options{Parallel: true}.Workers()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:      cfg,
		cache:    cache,
		ctx:      ctx,
		cancel:   cancel,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*flight),
		ckpts:    make(map[string]*ckFlight),
	}
	s.pool = harness.NewPool(ctx, cfg.Workers)
	s.registerMetrics()
	return s, nil
}

// registerMetrics builds the /metrics registry. Counter/gauge values
// that already live in atomics or subcomponents are sampled at scrape
// time; the latency distributions are real histograms.
func (s *Service) registerMetrics() {
	r := obs.NewRegistry()
	ctr := func(name, help string, fn func() float64) { r.NewCounterFunc(name, help, fn) }
	gau := func(name, help string, fn func() float64) { r.NewGaugeFunc(name, help, fn) }

	ctr("sdo_cache_hits_total", "Result-cache hits.",
		func() float64 { h, _ := s.cache.Stats(); return float64(h) })
	ctr("sdo_cache_misses_total", "Result-cache misses.",
		func() float64 { _, m := s.cache.Stats(); return float64(m) })
	ctr("sdo_cache_evictions_total", "Results evicted by the LRU size bound.",
		func() float64 { return float64(s.cache.Evictions()) })
	gau("sdo_cache_entries", "Results currently cached.",
		func() float64 { return float64(s.cache.Len()) })
	gau("sdo_cache_max_entries", "Configured result-cache bound (0: unbounded).",
		func() float64 { return float64(s.cache.MaxEntries()) })
	gau("sdo_queue_depth", "Cells waiting for a worker.",
		func() float64 { return float64(s.pool.QueueDepth()) })
	gau("sdo_inflight_runs", "Cells currently executing.",
		func() float64 { return float64(s.pool.Active()) })
	gau("sdo_workers", "Worker-pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	ctr("sdo_runs_executed_total", "Simulations actually run.",
		func() float64 { return float64(s.runsExecuted.Load()) })
	ctr("sdo_runs_deduped_total", "Cells coalesced onto an identical in-flight run.",
		func() float64 { return float64(s.runsDeduped.Load()) })
	ctr("sdo_runs_skipped_total", "Cells abandoned by cancellation or shutdown.",
		func() float64 { return float64(s.runsSkipped.Load()) })
	ctr("sdo_run_seconds_total", "Cumulative wall time of executed simulations.",
		func() float64 { return float64(s.runNanos.Load()) / 1e9 })
	ctr("sdo_jobs_total", "Sweep jobs submitted.",
		func() float64 { return float64(s.jobsTotal.Load()) })
	ctr("sdo_checkpoints_captured_total", "Functional-warmup checkpoints captured.",
		func() float64 { return float64(s.ckptsCaptured.Load()) })
	ctr("sdo_checkpoint_hits_total", "Cells that restored an existing warmup checkpoint.",
		func() float64 { return float64(s.ckptHits.Load()) })
	ctr("sdo_warmup_instrs_simulated_total", "Warmup instructions actually simulated (checkpoint reuse keeps this at one warmup per workload).",
		func() float64 { return float64(s.warmupSimulated.Load()) })
	s.runDur = r.NewHistogram("sdo_run_duration_seconds",
		"Wall time of individual executed simulations.", obs.DefaultLatencyBuckets())
	s.queueLat = r.NewHistogram("sdo_queue_latency_seconds",
		"Submit-to-start latency of scheduled cells.", obs.DefaultLatencyBuckets())
	s.reg = r
}

// Registry exposes the service's metrics registry (the /metrics
// document), e.g. for embedding additional process-level collectors.
func (s *Service) Registry() *obs.Registry { return s.reg }

// Cache exposes the service's result cache (read-mostly: tests and
// metrics).
func (s *Service) Cache() *Cache { return s.cache }

// SweepRequest selects a sweep. Empty lists mean "all"; a zero MaxInstrs
// means the default budget; a nil WarmupInstrs means the default warmup
// (a pointer so an explicit 0 — no warmup — is expressible, mirroring
// cmd/experiments -warmup).
type SweepRequest struct {
	Workloads    []string `json:"workloads,omitempty"`
	Variants     []string `json:"variants,omitempty"`
	Models       []string `json:"models,omitempty"`
	MaxInstrs    uint64   `json:"max_instrs,omitempty"`
	WarmupInstrs *uint64  `json:"warmup_instrs,omitempty"`
	// IntervalCycles samples an interval statistics point every N cycles
	// of each run's measurement window into the export (0: off).
	IntervalCycles uint64 `json:"interval_cycles,omitempty"`
	// WarmupMode is "detailed" (default) or "functional". Functional-mode
	// cells restore a per-(workload, warmup) checkpoint from the service's
	// checkpoint tier instead of re-simulating warmup.
	WarmupMode string `json:"warmup_mode,omitempty"`
	// Ablations turns the job into a design-space study: per model and
	// workload it runs the Unsafe baseline plus the harness's ablation
	// rows on Hybrid (Variants is ignored), and the export endpoint serves
	// the aggregated ablation tables.
	Ablations bool `json:"ablations,omitempty"`
}

// parseModel maps a request string to an attack model.
func parseModel(name string) (pipeline.AttackModel, error) {
	for _, m := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		if name == m.String() || name == "spectre" && m == pipeline.Spectre ||
			name == "futuristic" && m == pipeline.Futuristic {
			return m, nil
		}
	}
	return 0, fmt.Errorf("simsvc: unknown attack model %q", name)
}

// resolve turns a request into normalized harness options (the same
// resolution the CLI performs) plus the deduplicated cell list.
func (s *Service) resolve(req SweepRequest) (harness.Options, []RunSpec, error) {
	opt := harness.DefaultOptions()
	if req.MaxInstrs != 0 {
		opt.MaxInstrs = req.MaxInstrs
	}
	if req.WarmupInstrs != nil {
		opt.WarmupInstrs = *req.WarmupInstrs
	}
	opt.IntervalCycles = req.IntervalCycles
	wm, err := core.ParseWarmupMode(req.WarmupMode)
	if err != nil {
		return opt, nil, err
	}
	opt.WarmupMode = wm
	if len(req.Workloads) > 0 {
		var wls []workload.Workload
		for _, name := range req.Workloads {
			w, err := workload.ByName(name)
			if err != nil {
				return opt, nil, err
			}
			wls = append(wls, w)
		}
		opt.Workloads = wls
	}
	if len(req.Variants) > 0 {
		var vs []core.Variant
		for _, name := range req.Variants {
			v, err := core.ParseVariant(name)
			if err != nil {
				return opt, nil, err
			}
			vs = append(vs, v)
		}
		opt.Variants = vs
	}
	if len(req.Models) > 0 {
		var ms []pipeline.AttackModel
		for _, name := range req.Models {
			m, err := parseModel(name)
			if err != nil {
				return opt, nil, err
			}
			ms = append(ms, m)
		}
		opt.Models = ms
	}
	opt = opt.Normalized()
	if req.Ablations {
		return opt, ablationCells(opt), nil
	}
	seen := make(map[harness.Key]bool)
	var cells []RunSpec
	for _, k := range opt.Cells() {
		if seen[k] {
			continue
		}
		seen[k] = true
		cells = append(cells, RunSpec{
			Workload:       k.Workload,
			Variant:        k.Variant,
			Model:          k.Model,
			WarmupInstrs:   opt.WarmupInstrs,
			MaxInstrs:      opt.MaxInstrs,
			IntervalCycles: opt.IntervalCycles,
			WarmupMode:     opt.WarmupMode,
		})
	}
	return opt, cells, nil
}

// ablationCells enumerates a design-space-study job: model-major, then
// workload, then the Unsafe baseline followed by the harness's ablation
// rows on Hybrid. Job.Ablations relies on exactly this order.
func ablationCells(opt harness.Options) []RunSpec {
	rows := harness.AblationRows()
	var cells []RunSpec
	for _, m := range opt.Models {
		for _, wl := range opt.Workloads {
			base := RunSpec{
				Workload:     wl.Name,
				Variant:      core.Unsafe,
				Model:        m,
				WarmupInstrs: opt.WarmupInstrs,
				MaxInstrs:    opt.MaxInstrs,
				WarmupMode:   opt.WarmupMode,
			}
			cells = append(cells, base)
			for _, row := range rows {
				c := base
				c.Variant = core.Hybrid
				c.Ablate = row.Ablate
				cells = append(cells, c)
			}
		}
	}
	return cells
}

// Submit validates, registers and enqueues a sweep job.
func (s *Service) Submit(req SweepRequest) (*Job, error) {
	opt, cells, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return nil, errors.New("simsvc: empty sweep")
	}
	jctx, jcancel := context.WithCancel(s.ctx)
	j := &Job{
		opt:      opt,
		ctx:      jctx,
		cancel:   jcancel,
		state:    JobRunning,
		total:    len(cells),
		runs:     make(map[harness.Key]core.Result, len(cells)),
		done:     make(chan struct{}),
		ablation: req.Ablations,
	}
	if j.ablation {
		j.cellRes = make([]core.Result, len(cells))
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		jcancel()
		return nil, ErrClosed
	}
	s.nextID++
	j.ID = fmt.Sprintf("sweep-%d", s.nextID)
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.jobsTotal.Add(1)

	enqueued := time.Now()
	for i, c := range cells {
		i, c := i, c
		s.pool.Submit(func(ctx context.Context) { s.runCell(ctx, j, i, c, enqueued) })
	}
	return j, nil
}

// checkpoint returns the warmup checkpoint for key, capturing it on first
// use (singleflight: concurrent cells for the same workload block until
// the one capture finishes).
func (s *Service) checkpoint(key string, wl workload.Workload, warmup uint64) *arch.Checkpoint {
	s.ckMu.Lock()
	f, ok := s.ckpts[key]
	if !ok {
		f = &ckFlight{done: make(chan struct{})}
		s.ckpts[key] = f
		s.ckMu.Unlock()
		f.ck = harness.CaptureCheckpoint(wl, warmup)
		s.ckptsCaptured.Add(1)
		s.warmupSimulated.Add(f.ck.Arch.Instrs)
		close(f.done)
		return f.ck
	}
	s.ckMu.Unlock()
	<-f.done
	s.ckptHits.Add(1)
	return f.ck
}

// Job returns a submitted job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// runCell executes (or resolves from cache / an identical in-flight run)
// one cell on a pool worker. idx is the cell's index in its job's
// enumeration order.
func (s *Service) runCell(ctx context.Context, j *Job, idx int, spec RunSpec, enqueued time.Time) {
	s.queueLat.Observe(time.Since(enqueued).Seconds())
	if ctx.Err() != nil || j.ctx.Err() != nil {
		s.runsSkipped.Add(1)
		j.skip()
		return
	}
	key, err := spec.CacheKey()
	if err != nil {
		j.fail(err)
		return
	}
	line := func(r core.Result, note string) string {
		return harness.FormatProgress(spec.Key(), r) + note
	}
	if r, ok := s.cache.Get(key); ok {
		j.deliver(idx, spec.Key(), r, line(r, "  [cached]"), true)
		return
	}
	s.mu.Lock()
	if f, ok := s.inflight[key]; ok {
		f.waiters = append(f.waiters, delivery{job: j, idx: idx, key: spec.Key()})
		s.mu.Unlock()
		s.runsDeduped.Add(1)
		return
	}
	f := &flight{waiters: []delivery{{job: j, idx: idx, key: spec.Key()}}}
	s.inflight[key] = f
	s.mu.Unlock()

	wl, err := workload.ByName(spec.Workload)
	var r core.Result
	if err == nil {
		p := harness.RunParams{
			WarmupInstrs:   spec.WarmupInstrs,
			MaxInstrs:      spec.MaxInstrs,
			IntervalCycles: spec.IntervalCycles,
			WarmupMode:     spec.WarmupMode,
		}
		if spec.WarmupMode == core.WarmupFunctional && spec.WarmupInstrs > 0 {
			var ckKey string
			if ckKey, err = spec.CheckpointKey(); err == nil {
				p.Checkpoint = s.checkpoint(ckKey, wl, spec.WarmupInstrs)
			}
		} else if spec.WarmupInstrs > 0 {
			s.warmupSimulated.Add(spec.WarmupInstrs)
		}
		if err == nil {
			start := time.Now()
			r, err = harness.RunOne(wl, spec.Variant, spec.Model, spec.Ablate, p)
			elapsed := time.Since(start)
			s.runNanos.Add(uint64(elapsed))
			s.runDur.Observe(elapsed.Seconds())
			s.runsExecuted.Add(1)
		}
	}
	if err == nil {
		s.cache.Put(key, r)
	}

	s.mu.Lock()
	delete(s.inflight, key)
	waiters := f.waiters
	s.mu.Unlock()
	for _, w := range waiters {
		if err != nil {
			w.job.fail(fmt.Errorf("simsvc: %s/%v/%v: %w", spec.Workload, spec.Variant, spec.Model, err))
		} else {
			w.job.deliver(w.idx, w.key, r, line(r, ""), false)
		}
	}
}

// Shutdown stops intake, cancels queued-but-unstarted cells, lets
// in-flight simulations finish, then persists the cache. Simulations are
// not interruptible, so the pool is always waited for (nothing leaks);
// if ctx expires during that wait the cache is still persisted and
// ctx.Err() is reported.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.cancel() // queued cells skip; running cells finish
	s.pool.Close()
	done := make(chan struct{})
	go func() {
		s.pool.Wait()
		close(done)
	}()
	var waitErr error
	select {
	case <-done:
	case <-ctx.Done():
		waitErr = ctx.Err()
		<-done
	}
	if s.cfg.CachePath != "" {
		if err := s.cache.Save(s.cfg.CachePath); err != nil {
			return err
		}
	}
	return waitErr
}

// Metrics is a point-in-time snapshot of the service counters.
type Metrics struct {
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	CacheEntries   int
	QueueDepth     int
	InFlight       int
	Workers        int
	RunsExecuted   uint64
	RunsDeduped    uint64
	RunsSkipped    uint64
	RunSeconds     float64
	JobsTotal      uint64

	CheckpointsCaptured   uint64
	CheckpointHits        uint64
	WarmupInstrsSimulated uint64
}

// Snapshot gathers the current metrics.
func (s *Service) Snapshot() Metrics {
	hits, misses := s.cache.Stats()
	return Metrics{
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: s.cache.Evictions(),
		CacheEntries:   s.cache.Len(),
		QueueDepth:     s.pool.QueueDepth(),
		InFlight:       s.pool.Active(),
		Workers:        s.cfg.Workers,
		RunsExecuted:   s.runsExecuted.Load(),
		RunsDeduped:    s.runsDeduped.Load(),
		RunsSkipped:    s.runsSkipped.Load(),
		RunSeconds:     float64(s.runNanos.Load()) / 1e9,
		JobsTotal:      s.jobsTotal.Load(),

		CheckpointsCaptured:   s.ckptsCaptured.Load(),
		CheckpointHits:        s.ckptHits.Load(),
		WarmupInstrsSimulated: s.warmupSimulated.Load(),
	}
}
