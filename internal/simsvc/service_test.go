package simsvc

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/harness"
)

// smallReq is a fast sweep: 2 workloads x 2 variants x 1 model = 4 cells.
func smallReq() SweepRequest {
	warmup := uint64(1000)
	return SweepRequest{
		Workloads:    []string{"exchange2_r", "deepsjeng_r"},
		Variants:     []string{"unsafe", "hybrid"},
		Models:       []string{"spectre"},
		MaxInstrs:    2000,
		WarmupInstrs: &warmup,
	}
}

func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s timed out: %+v", j.ID, j.Status())
	}
}

func submitAndWait(t *testing.T, s *Service, req SweepRequest) *Job {
	t.Helper()
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if st := j.Status(); st.State != JobDone {
		t.Fatalf("job %s: state %s, err %q", j.ID, st.State, st.Error)
	}
	return j
}

// TestDeterminismIsCacheSoundness is the core soundness argument: because
// the simulator is deterministic, answering a repeated cell from cache is
// indistinguishable from re-running it. Submit the same sweep twice: the
// second must be answered entirely from cache, and — re-simulating to
// check — the cached counters must be bit-identical to a fresh run's.
func TestDeterminismIsCacheSoundness(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	defer s.Shutdown(context.Background())

	j1 := submitAndWait(t, s, smallReq())
	execAfterFirst := s.Snapshot().RunsExecuted
	if execAfterFirst != 4 {
		t.Fatalf("first sweep executed %d runs, want 4", execAfterFirst)
	}

	j2 := submitAndWait(t, s, smallReq())
	m := s.Snapshot()
	if m.RunsExecuted != execAfterFirst {
		t.Fatalf("second sweep ran %d simulations, want 0", m.RunsExecuted-execAfterFirst)
	}
	if st := j2.Status(); st.Cached != st.Total {
		t.Fatalf("second sweep: %d/%d cells from cache", st.Cached, st.Total)
	}
	if m.CacheHits != 4 {
		t.Fatalf("cache hits = %d, want 4", m.CacheHits)
	}

	// Bit-identical ExportRun counters between the two jobs.
	r1, err := j1.Results()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := j2.Results()
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := r1.Export(), r2.Export()
	if len(e1.Runs) != len(e2.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(e1.Runs), len(e2.Runs))
	}
	for i := range e1.Runs {
		if !reflect.DeepEqual(e1.Runs[i], e2.Runs[i]) {
			t.Fatalf("run %d differs:\n fresh:  %+v\n cached: %+v", i, e1.Runs[i], e2.Runs[i])
		}
	}
}

// TestExportMatchesHarness: the service's export is byte-identical to
// what the CLI path (harness.Run + WriteJSON) produces for the same
// options — the shared-execution-path guarantee.
func TestExportMatchesHarness(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	defer s.Shutdown(context.Background())
	j := submitAndWait(t, s, smallReq())
	res, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	var svcBuf bytes.Buffer
	if err := res.WriteJSON(&svcBuf); err != nil {
		t.Fatal(err)
	}

	cli, err := harness.Run(j.Options())
	if err != nil {
		t.Fatal(err)
	}
	var cliBuf bytes.Buffer
	if err := cli.WriteJSON(&cliBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(svcBuf.Bytes(), cliBuf.Bytes()) {
		t.Fatal("service export differs from CLI export for identical options")
	}
}

// TestSingleflight: two identical sweeps submitted concurrently must not
// simulate any cell twice — a cell is either cached or joined in-flight.
func TestSingleflight(t *testing.T) {
	s := newService(t, Config{Workers: 4})
	defer s.Shutdown(context.Background())
	j1, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j1)
	waitJob(t, j2)
	if st := j1.Status(); st.State != JobDone {
		t.Fatalf("j1: %+v", st)
	}
	if st := j2.Status(); st.State != JobDone {
		t.Fatalf("j2: %+v", st)
	}
	if m := s.Snapshot(); m.RunsExecuted != 4 {
		t.Fatalf("executed %d simulations for two identical 4-cell sweeps, want 4", m.RunsExecuted)
	}
	ra, _ := j1.Results()
	rb, _ := j2.Results()
	for k, r := range ra.Runs {
		if !reflect.DeepEqual(rb.Runs[k], r) {
			t.Fatalf("%v: results differ between deduplicated jobs", k)
		}
	}
}

// waitGoroutines polls until the goroutine count returns to within
// `slack` of base, tolerating runtime bookkeeping noise.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCancellationNoLeakedGoroutines: cancelling a large sweep mid-flight
// and shutting the service down leaves no goroutines behind.
func TestCancellationNoLeakedGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	s := newService(t, Config{Workers: 2})
	req := SweepRequest{MaxInstrs: 60_000} // full default sweep: 224 cells
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one cell start, then cancel mid-sweep.
	time.Sleep(50 * time.Millisecond)
	j.Cancel()
	waitJob(t, j)
	if st := j.Status(); st.State != JobCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m := s.Snapshot(); m.RunsExecuted+m.RunsSkipped+m.RunsDeduped == 0 {
		t.Fatal("expected some cells to be accounted for")
	}
	waitGoroutines(t, base)
}

// TestShutdownPersistsAndReloadsCache: graceful shutdown writes the cache
// to disk; a restarted service answers the same sweep with zero
// simulations.
func TestShutdownPersistsAndReloadsCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")

	s1 := newService(t, Config{Workers: 2, CachePath: path})
	j1 := submitAndWait(t, s1, smallReq())
	res1, _ := j1.Results()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := newService(t, Config{Workers: 2, CachePath: path})
	defer s2.Shutdown(context.Background())
	if s2.Cache().Len() != 4 {
		t.Fatalf("reloaded cache has %d entries, want 4", s2.Cache().Len())
	}
	j2 := submitAndWait(t, s2, smallReq())
	if m := s2.Snapshot(); m.RunsExecuted != 0 {
		t.Fatalf("restarted service executed %d simulations, want 0", m.RunsExecuted)
	}
	res2, _ := j2.Results()
	for k, r := range res1.Runs {
		if !reflect.DeepEqual(res2.Runs[k], r) {
			t.Fatalf("%v: persisted result differs from live result", k)
		}
	}
}

// TestSubmitAfterShutdown: intake is refused once shutdown has begun.
func TestSubmitAfterShutdown(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(smallReq()); err != ErrClosed {
		t.Fatalf("Submit after shutdown: err = %v, want ErrClosed", err)
	}
}

// TestBadRequests: unknown names are rejected up front.
func TestBadRequests(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())
	for _, req := range []SweepRequest{
		{Workloads: []string{"nope_r"}},
		{Variants: []string{"turbo"}},
		{Models: []string{"meltdown"}},
	} {
		if _, err := s.Submit(req); err == nil {
			t.Fatalf("Submit(%+v) succeeded, want error", req)
		}
	}
}
