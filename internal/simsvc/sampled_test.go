package simsvc

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/harness"
)

// sampledReq is smallReq in sampled mode: a 6000-instruction window cut
// into 2000-instruction intervals, so clustering has real work to do.
func sampledReq() SweepRequest {
	req := smallReq()
	req.MaxInstrs = 6000
	req.SimMode = "sampled"
	req.SampleIntervalInstrs = 2000
	return req
}

func TestSampledSweep(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	defer s.Shutdown(context.Background())

	j := submitAndWait(t, s, sampledReq())
	res, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(res.Runs))
	}
	for k, r := range res.Runs {
		if r.Committed == 0 || r.Cycles == 0 {
			t.Errorf("%v: empty reconstructed result: %+v", k, r)
		}
	}

	// 4 cells over 2 workloads: one plan build per workload, every other
	// sampled cell joins the plan flight.
	m := s.Snapshot()
	if m.SamplePlansBuilt != 2 {
		t.Errorf("built %d sample plans, want 2", m.SamplePlansBuilt)
	}
	if m.SamplePlanHits != 2 {
		t.Errorf("%d plan hits, want 2", m.SamplePlanHits)
	}
	if m.SampledCells != 4 {
		t.Errorf("%d sampled cells, want 4", m.SampledCells)
	}
	if m.SampledDetailedInstrs == 0 || m.ProfiledInstrs == 0 {
		t.Errorf("sampled instruction accounting missing: %+v", m)
	}

	// A repeated sampled sweep answers entirely from the result cache:
	// nothing runs, no plan is rebuilt.
	submitAndWait(t, s, sampledReq())
	m2 := s.Snapshot()
	if m2.RunsExecuted != m.RunsExecuted || m2.SamplePlansBuilt != 2 || m2.SamplePlanHits != 2 {
		t.Errorf("cached sampled re-sweep ran work: %+v", m2)
	}
}

func TestSampledMatchesHarness(t *testing.T) {
	// The service's plan tier must be invisible in the results: a sampled
	// job's runs equal a direct sampled harness sweep with the same
	// options (sampling is deterministic end to end).
	s := newService(t, Config{Workers: 2})
	defer s.Shutdown(context.Background())

	req := sampledReq()
	j := submitAndWait(t, s, req)
	got, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := s.resolve(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Runs, want.Runs) {
		t.Fatal("service sampled-mode results differ from direct harness run")
	}
}

// TestSamplePlanPersistence: sampling plans survive restarts on disk
// next to the checkpoints, so a restarted server skips the BBV
// re-profiling pass for workloads it has already planned.
func TestSamplePlanPersistence(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "cache.json")

	s1 := newService(t, Config{Workers: 2, CachePath: cache})
	submitAndWait(t, s1, sampledReq())
	m1 := s1.Snapshot()
	if m1.SamplePlansBuilt != 2 {
		t.Fatalf("built %d plans, want 2", m1.SamplePlansBuilt)
	}
	if m1.SamplePlansPersisted != 2 {
		t.Fatalf("persisted %d plans, want 2: %+v", m1.SamplePlansPersisted, m1)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A restarted server running a different variant grid (cells not in
	// the result cache, but the same plan keys) loads plans from disk
	// instead of re-profiling.
	s2 := newService(t, Config{Workers: 2, CachePath: cache})
	defer s2.Shutdown(context.Background())
	req := sampledReq()
	req.Variants = []string{"stt"}
	j := submitAndWait(t, s2, req)
	if st := j.Status(); st.Cached != 0 {
		t.Fatalf("restart sweep unexpectedly cached: %+v", st)
	}
	m2 := s2.Snapshot()
	if m2.SamplePlansBuilt != 0 {
		t.Errorf("restarted server re-built %d plans, want 0", m2.SamplePlansBuilt)
	}
	if m2.SamplePlanDiskHits != 2 {
		t.Errorf("plan disk hits = %d, want 2", m2.SamplePlanDiskHits)
	}
	if m2.ProfiledInstrs != 0 {
		t.Errorf("restarted server re-profiled %d instrs, want 0", m2.ProfiledInstrs)
	}

	// Determinism: disk-restored plans reconstruct the same results a
	// fresh build would (the first server's runs are in the cache — a
	// re-submission of the original grid must be answered from it with
	// no new simulation).
	j2 := submitAndWait(t, s2, sampledReq())
	if st := j2.Status(); st.Cached != st.Total {
		t.Errorf("original grid not fully cached after restart: %+v", st)
	}
}

// TestSampledIntervalSeries: a sampled job with interval_cycles gets
// per-representative-window time series (with reconstruction weights)
// instead of the whole-window Intervals a detailed run would carry.
func TestSampledIntervalSeries(t *testing.T) {
	s := newService(t, Config{Workers: 2})
	defer s.Shutdown(context.Background())

	req := sampledReq()
	req.IntervalCycles = 200
	j := submitAndWait(t, s, req)
	res, err := j.Results()
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range res.Runs {
		if len(r.SampledWindows) == 0 {
			t.Fatalf("%v: no sampled windows", k)
		}
		if r.Intervals != nil {
			t.Errorf("%v: sampled run carries a whole-window series", k)
		}
		if r.IntervalCycles != 200 {
			t.Errorf("%v: IntervalCycles = %d, want 200", k, r.IntervalCycles)
		}
		var weight float64
		for _, w := range r.SampledWindows {
			if len(w.Intervals) == 0 {
				t.Errorf("%v: window @%d has no interval points", k, w.Start)
			}
			if w.Len == 0 || w.Weight <= 0 {
				t.Errorf("%v: window @%d malformed: len=%d weight=%g", k, w.Start, w.Len, w.Weight)
			}
			weight += w.Weight
		}
		if weight < 0.999 || weight > 1.001 {
			t.Errorf("%v: window weights sum to %g, want ~1", k, weight)
		}
	}

	// Interval sampling is part of the cache key: the same sweep without
	// it must not be served the windowed results.
	j2 := submitAndWait(t, s, sampledReq())
	res2, err := j2.Results()
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range res2.Runs {
		if len(r.SampledWindows) != 0 {
			t.Errorf("%v: interval-free sampled run carries windows", k)
		}
	}
}

func TestCacheKeySeparatesSimModes(t *testing.T) {
	detailed := RunSpec{Workload: "mcf_r", WarmupInstrs: 1000, MaxInstrs: 2000}
	sampled := detailed
	sampled.SimMode = harness.SimSampled
	sampled.SampleInterval, sampled.SampleMaxK, sampled.SampleSeed = 5000, 8, 1
	kd, err := detailed.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := sampled.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if kd == ks {
		t.Fatal("detailed and sampled cells share a cache key")
	}
	// The zero SimMode means detailed: pre-v4 shaped specs and explicit
	// detailed specs must key identically.
	explicit := detailed
	explicit.SimMode = harness.SimDetailed
	ke, err := explicit.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if ke != kd {
		t.Fatal(`zero SimMode and explicit "detailed" key differently`)
	}
	// Sampling parameters are part of the key.
	reseeded := sampled
	reseeded.SampleSeed = 2
	kr, err := reseeded.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if kr == ks {
		t.Fatal("sampled cells with different seeds share a cache key")
	}
}

func TestPlanKeyIgnoresVariantModelAblation(t *testing.T) {
	a := RunSpec{Workload: "mcf_r", WarmupInstrs: 1000, MaxInstrs: 6000,
		SimMode: harness.SimSampled, SampleInterval: 2000, SampleMaxK: 8, SampleSeed: 1}
	b := a
	b.Variant = 6 // Hybrid
	b.Model = 1
	b.Ablate.AlwaysValidate = true
	ka, err := a.PlanKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.PlanKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("plan key depends on variant/model/ablation")
	}
	c := a
	c.SampleInterval = 1000
	kc, err := c.PlanKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka == kc {
		t.Fatal("plan key ignores the sampling interval")
	}
}

func TestSampledRequestValidation(t *testing.T) {
	s := newService(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())

	bad := sampledReq()
	bad.Ablations = true
	if _, err := s.Submit(bad); err == nil {
		t.Error("sampled ablation job accepted")
	}
	bad = sampledReq()
	bad.SimMode = "fast"
	if _, err := s.Submit(bad); err == nil {
		t.Error("unknown sim_mode accepted")
	}
}
