package simsvc

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faults"
)

// newPeerNode starts a full service behind httptest — the stack another
// node's fabric client dials.
func newPeerNode(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := newService(t, cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Shutdown(context.Background())
	})
	return svc, srv
}

// TestPeerHitServesSweepWithoutSimulating: node A has run the sweep;
// node B, configured with A as a peer, answers the same sweep entirely
// over the peering fabric — zero local simulations, byte-identical
// export.
func TestPeerHitServesSweepWithoutSimulating(t *testing.T) {
	a, srvA := newPeerNode(t, Config{Workers: 2})
	ja := submitAndWait(t, a, smallReq())

	b := newService(t, Config{Workers: 2, Peers: []string{srvA.URL}, PeerProbeInterval: -1})
	defer b.Shutdown(context.Background())
	jb := submitAndWait(t, b, smallReq())

	m := b.Snapshot()
	if m.PeerHits != 4 {
		t.Fatalf("PeerHits = %d, want all 4 cells from the peer", m.PeerHits)
	}
	if m.RunsExecuted != 0 {
		t.Fatalf("RunsExecuted = %d, want 0 (peer answered everything)", m.RunsExecuted)
	}
	if got, want := exportBytes(t, jb), exportBytes(t, ja); !bytes.Equal(got, want) {
		t.Fatal("peer-served export differs from the origin node's export")
	}
	// Peer traffic is a peek: A's demand hit/miss counters are untouched.
	if ma := a.Snapshot(); ma.CacheHits != 0 {
		t.Fatalf("peer lookups skewed A's demand cache hits: %d", ma.CacheHits)
	}
	// The fabric surfaces in B's health document.
	h := b.Health()
	if len(h.Peers) != 1 || h.Peers[0].Hits != 4 {
		t.Fatalf("healthz peers = %+v, want A with 4 hits", h.Peers)
	}
}

// TestPeerDownFallsBackToLocal: a dead peer costs lookups, never cells —
// the sweep completes by local simulation and health stays ok.
func TestPeerDownFallsBackToLocal(t *testing.T) {
	srv := httptest.NewServer(nil)
	srv.Close() // connection refused from here on

	b := newService(t, Config{Workers: 2, Peers: []string{srv.URL},
		PeerTimeout: 500 * time.Millisecond, PeerProbeInterval: -1})
	defer b.Shutdown(context.Background())
	j := submitAndWait(t, b, smallReq())

	m := b.Snapshot()
	if st := j.Status(); st.Failed != 0 {
		t.Fatalf("dead peer failed %d cells", st.Failed)
	}
	if m.RunsExecuted != 4 {
		t.Fatalf("RunsExecuted = %d, want all 4 locally", m.RunsExecuted)
	}
	if m.PeerErrors == 0 {
		t.Fatal("dead peer produced no peer errors")
	}
	// Peer trouble never degrades the node's own health.
	if h := b.Health(); h.Status != "ok" {
		t.Fatalf("health with a dead peer = %q (%v), want ok", h.Status, h.Reasons)
	}
}

// TestPeerFaultInjectionNeverFailsCells: under injected peer chaos —
// down, slow, corrupt — every cell still completes (locally or via a
// delayed hit). This is the -race acceptance scenario for the lookup
// path.
func TestPeerFaultInjectionNeverFailsCells(t *testing.T) {
	a, srvA := newPeerNode(t, Config{Workers: 2})
	submitAndWait(t, a, smallReq())

	for _, spec := range []string{
		"seed=11,peer-err=1",
		"seed=11,peer-slow=1,peer-slow-delay=30ms",
		"seed=11,peer-corrupt=1",
		"seed=11,peer-err=0.5,peer-slow=0.5,peer-slow-delay=20ms,peer-corrupt=0.5",
	} {
		inj, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		b := newService(t, Config{Workers: 2, Peers: []string{srvA.URL},
			PeerTimeout: time.Second, PeerProbeInterval: -1, Faults: inj})
		j := submitAndWait(t, b, smallReq())
		if st := j.Status(); st.Failed != 0 {
			t.Errorf("%s: %d cells failed", spec, st.Failed)
		}
		m := b.Snapshot()
		if m.PeerHits+uint64(m.RunsExecuted) < 4 {
			t.Errorf("%s: cells unaccounted for: %d peer hits + %d local runs", spec, m.PeerHits, m.RunsExecuted)
		}
		b.Shutdown(context.Background())
	}
}

// TestPeerCorruptResponseCannotPoison: a peer serving a tampered body
// fails checksum validation inside the fabric; the cell is simulated
// locally and the result is the true one.
func TestPeerCorruptResponseCannotPoison(t *testing.T) {
	a, srvA := newPeerNode(t, Config{Workers: 2})
	ja := submitAndWait(t, a, smallReq())

	inj, err := faults.Parse("seed=5,peer-corrupt=1")
	if err != nil {
		t.Fatal(err)
	}
	b := newService(t, Config{Workers: 2, Peers: []string{srvA.URL},
		PeerProbeInterval: -1, Faults: inj})
	defer b.Shutdown(context.Background())
	jb := submitAndWait(t, b, smallReq())

	m := b.Snapshot()
	if m.PeerHits != 0 {
		t.Fatalf("corrupt peer bodies produced %d hits", m.PeerHits)
	}
	if m.RunsExecuted != 4 {
		t.Fatalf("RunsExecuted = %d, want all 4 locally after corrupt responses", m.RunsExecuted)
	}
	if got, want := exportBytes(t, jb), exportBytes(t, ja); !bytes.Equal(got, want) {
		t.Fatal("corrupt peer changed the final export")
	}
}
