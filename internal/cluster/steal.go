package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/obs/trace"
	"repro/internal/simsvc"
)

// stealLoop periodically polls peers for queued cells while this node
// has idle workers. Stolen cells run through the local service's
// RunStolen path (own cache, artifact peering, fault policy) and post
// their content-addressed wire entries back to the owner, which
// validates the checksum before settling the lease — a thief can waste
// a lease but never corrupt a result.
func (n *Node) stealLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.StealInterval)
	defer t.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-t.C:
			n.stealOnce()
		}
	}
}

// stealOnce polls each peer in rotated order until the idle-worker
// budget is spent. The budget is conservative: locally queued cells
// count against it, so stealing never delays the node's own work.
func (n *Node) stealOnce() {
	m := n.svc.Snapshot()
	idle := m.Workers - m.InFlight - m.QueueDepth
	if idle <= 0 {
		return
	}
	for _, mem := range n.others() {
		if idle <= 0 || n.ctx.Err() != nil {
			return
		}
		want := n.cfg.StealMax
		if want > idle {
			want = idle
		}
		cells, err := n.claimFrom(mem, want)
		if err != nil {
			n.logf("cluster: steal poll %s: %v", mem.ID, err)
			continue
		}
		if len(cells) == 0 {
			continue
		}
		var wg sync.WaitGroup
		for _, c := range cells {
			wg.Add(1)
			go func(c simsvc.StolenCell) {
				defer wg.Done()
				n.runStolen(mem, c)
			}(c)
		}
		wg.Wait()
		idle -= len(cells)
	}
}

// claimFrom asks one peer for up to max queued cells.
func (n *Node) claimFrom(m Member, max int) ([]simsvc.StolenCell, error) {
	u := fmt.Sprintf("%s/cluster/steal?max=%d&thief=%s", m.URL, max, url.QueryEscape(n.self.ID))
	req, err := http.NewRequestWithContext(n.ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.boundedClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, errStatus(resp.StatusCode)
	}
	var cells []simsvc.StolenCell
	if err := json.NewDecoder(resp.Body).Decode(&cells); err != nil {
		return nil, err
	}
	// Trust but verify: the key must be the spec's own cache key, or the
	// completed result would be filed (and journaled) under a lie.
	ok := cells[:0]
	for _, c := range cells {
		if k, err := c.Spec.CacheKey(); err == nil && k == c.Key {
			ok = append(ok, c)
		} else {
			n.logf("cluster: steal from %s: key/spec mismatch for %s", m.ID, c.Key)
		}
	}
	return ok, nil
}

// runStolen executes one stolen cell and posts the result back. The run
// is bounded by the lease deadline: past it the owner reclaims the cell
// and any further local work here is wasted, so stop instead.
func (n *Node) runStolen(owner Member, c simsvc.StolenCell) {
	var sp *trace.Span
	if n.jt != nil {
		ct := n.jt.StartCell("steal "+c.Key, time.Now())
		sp = ct.Root().Child(trace.PhaseStealClaim)
		sp.Set("owner", owner.ID)
		sp.Set("key", c.Key)
		defer func() { sp.Finish(); ct.Finish() }()
	}
	ctx := n.ctx
	if !c.Until.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, c.Until)
		defer cancel()
	}
	wire, err := n.svc.RunStolen(ctx, c.Spec)
	if err != nil {
		n.stealErrors.Inc()
		if sp != nil {
			sp.Set("outcome", "run-failed")
		}
		n.logf("cluster: stolen cell %s from %s: %v", c.Key, owner.ID, err)
		return
	}
	if err := n.postComplete(ctx, owner, c.Key, wire); err != nil {
		n.stealErrors.Inc()
		if sp != nil {
			sp.Set("outcome", "post-failed")
		}
		n.logf("cluster: post stolen %s to %s: %v", c.Key, owner.ID, err)
		return
	}
	n.steals.Inc()
	if sp != nil {
		sp.Set("outcome", "completed")
	}
}

// postComplete returns the wire entry to the owner.
func (n *Node) postComplete(ctx context.Context, owner Member, key string, wire []byte) error {
	u := owner.URL + "/cluster/complete?key=" + url.QueryEscape(key)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(wire))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.boundedClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
