package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simsvc"
)

// swapHandler lets a httptest server start before the Node that will
// serve it exists (members need every node's URL up front).
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type testNode struct {
	id   string
	srv  *httptest.Server
	swap *swapHandler
	svc  *simsvc.Service
	node *Node
}

// startCluster builds an in-process cluster of len(ids) nodes, each a
// full simsvc.Service wrapped by a cluster Node behind its own test
// server. mut customizes the i-th node's configs before construction;
// stealing loops default to off so tests opt in explicitly.
func startCluster(t *testing.T, ids []string, mut func(i int, scfg *simsvc.Config, ncfg *Config)) []*testNode {
	t.Helper()
	nodes := make([]*testNode, len(ids))
	members := make([]Member, len(ids))
	for i, id := range ids {
		sw := &swapHandler{}
		srv := httptest.NewServer(sw)
		t.Cleanup(srv.Close)
		nodes[i] = &testNode{id: id, srv: srv, swap: sw}
		members[i] = Member{ID: id, URL: srv.URL}
	}
	for i, id := range ids {
		var peers []string
		for j, m := range members {
			if j != i {
				peers = append(peers, m.URL)
			}
		}
		scfg := simsvc.Config{
			Workers:       2,
			OwnsID:        Owns(id, ids),
			PeerArtifacts: true,
			WorkStealing:  true,
			Peers:         peers,
		}
		ncfg := Config{Self: id, Members: members, StealInterval: -1}
		if mut != nil {
			mut(i, &scfg, &ncfg)
		}
		svc, err := simsvc.New(scfg)
		if err != nil {
			t.Fatal(err)
		}
		ncfg.Service = svc
		node, err := New(ncfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i].svc, nodes[i].node = svc, node
		nodes[i].swap.set(node.Handler())
		t.Cleanup(func() {
			node.Close()
			svc.Shutdown(context.Background())
		})
	}
	return nodes
}

// smallReq is a fast sweep: 2 workloads x 2 variants x 1 model = 4 cells.
func smallReq() simsvc.SweepRequest {
	warmup := uint64(1000)
	return simsvc.SweepRequest{
		Workloads:    []string{"exchange2_r", "deepsjeng_r"},
		Variants:     []string{"unsafe", "hybrid"},
		Models:       []string{"spectre"},
		MaxInstrs:    2000,
		WarmupInstrs: &warmup,
	}
}

func postSweep(t *testing.T, url string, req simsvc.SweepRequest) simsvc.Status {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /sweeps: %d: %s", resp.StatusCode, b)
	}
	var st simsvc.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func get(t *testing.T, url string, wantCode int) ([]byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: %d (want %d): %s", url, resp.StatusCode, wantCode, b)
	}
	return b, resp.Header
}

// metric scrapes one counter value from a node's /metrics document.
func metric(t *testing.T, url, name string) float64 {
	t.Helper()
	b, _ := get(t, url+"/metrics", 200)
	for _, line := range strings.Split(string(b), "\n") {
		if f := strings.Fields(line); len(f) == 2 && f[0] == name {
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	return 0
}

// idOwnedBy finds a job ID of the standard sweep-N form that the given
// member owns — what that node's own OwnsID allocation would produce.
func idOwnedBy(t *testing.T, owner string, ids []string) string {
	t.Helper()
	for n := 1; n < 10_000; n++ {
		id := fmt.Sprintf("sweep-%d", n)
		if OwnerOf(id, ids) == owner {
			return id
		}
	}
	t.Fatalf("no sweep-N id owned by %s", owner)
	return ""
}

func TestOwnershipPartition(t *testing.T) {
	ids := []string{"a", "b", "c"}
	owned := map[string]int{}
	for n := 1; n <= 300; n++ {
		id := fmt.Sprintf("sweep-%d", n)
		o := OwnerOf(id, ids)
		owned[o]++
		// Every node computes the same owner, and exactly one owns it.
		for _, self := range ids {
			if got := Owns(self, ids)(id); got != (self == o) {
				t.Fatalf("Owns(%s)(%s) = %v, owner %s", self, id, got, o)
			}
		}
	}
	for _, id := range ids {
		if owned[id] == 0 {
			t.Errorf("member %s owns no IDs of 300 (distribution %v)", id, owned)
		}
	}
}

// TestClusterProxyServesPeerJobs is the single-logical-service pillar:
// a sweep submitted to one node is fully observable from every other,
// with byte-identical exports.
func TestClusterProxyServesPeerJobs(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b", "c"}, nil)
	a, b := nodes[0], nodes[1]

	st := postSweep(t, b.srv.URL, smallReq())
	if owner := OwnerOf(st.ID, []string{"a", "b", "c"}); owner != "b" {
		t.Fatalf("node b allocated %s owned by %s", st.ID, owner)
	}

	direct, _ := get(t, b.srv.URL+"/sweeps/"+st.ID+"/export", 200)
	proxied, hdr := get(t, a.srv.URL+"/sweeps/"+st.ID+"/export", 200)
	if !bytes.Equal(direct, proxied) {
		t.Fatalf("proxied export differs from owner's export (%d vs %d bytes)", len(proxied), len(direct))
	}
	if via := hdr.Get(ViaHeader); via != "b" {
		t.Errorf("proxied export Via = %q, want b", via)
	}

	// Status and cancel-after-done work through the proxy too.
	body, _ := get(t, a.srv.URL+"/sweeps/"+st.ID, 200)
	var got simsvc.Status
	if err := json.Unmarshal(body, &got); err != nil || got.ID != st.ID {
		t.Fatalf("proxied status: %v (%s)", err, body)
	}
	if v := metric(t, a.srv.URL, "sdo_cluster_proxied_requests_total"); v < 2 {
		t.Errorf("node a proxied %v requests, want >= 2", v)
	}
}

// TestClusterProxyLoopPrevention pins the hop header contract: a
// request that already hopped once is answered locally, never
// re-forwarded — so two nodes that disagree about ownership produce a
// 404, not a proxy cycle.
func TestClusterProxyLoopPrevention(t *testing.T) {
	var peerHits atomic.Int32
	nodes := startCluster(t, []string{"a", "b"}, nil)
	a, b := nodes[0], nodes[1]

	// Count every request reaching node b.
	inner := b.node.Handler()
	b.swap.set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		peerHits.Add(1)
		inner.ServeHTTP(w, r)
	}))

	unknown := idOwnedBy(t, "b", []string{"a", "b"})
	req, _ := http.NewRequest(http.MethodGet, a.srv.URL+"/sweeps/"+unknown, nil)
	req.Header.Set(HopHeader, "b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("hopped unknown-job request: %d, want 404", resp.StatusCode)
	}
	if n := peerHits.Load(); n != 0 {
		t.Fatalf("hopped request was re-forwarded %d times", n)
	}

	// Without the hop header the peer IS consulted — and the request it
	// receives carries the header, so it terminates there.
	get(t, a.srv.URL+"/sweeps/"+unknown, 404)
	if n := peerHits.Load(); n < 1 {
		t.Fatal("un-hopped unknown-job request never reached the peer")
	}
}

// TestClusterOwnerUnreachable is honest degradation: when the owning
// node is down, a request for its job fails fast with a 503 naming the
// owner instead of hanging or pretending the job does not exist.
func TestClusterOwnerUnreachable(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b"}, nil)
	a, b := nodes[0], nodes[1]
	id := idOwnedBy(t, "b", []string{"a", "b"})
	b.srv.Close()

	resp, err := http.Get(a.srv.URL + "/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("owner-down request: %d, want 503: %s", resp.StatusCode, body)
	}
	if own := resp.Header.Get(OwnerHeader); !strings.HasPrefix(own, "b ") {
		t.Errorf("503 owner header %q does not name owner b", own)
	}
	var doc map[string]string
	if err := json.Unmarshal(body, &doc); err != nil || doc["owner"] != "b" {
		t.Errorf("503 body does not identify the owner: %s", body)
	}
	if v := metric(t, a.srv.URL, "sdo_cluster_proxy_errors_total"); v < 1 {
		t.Errorf("proxy error not counted: %v", v)
	}
}

// TestClusterScatterGatherListing: GET /sweeps merges every member's
// jobs; a down member degrades the listing honestly via the Partial
// header rather than failing it.
func TestClusterScatterGatherListing(t *testing.T) {
	nodes := startCluster(t, []string{"a", "b", "c"}, nil)
	a, b, c := nodes[0], nodes[1], nodes[2]

	stA := postSweep(t, a.srv.URL, smallReq())
	stB := postSweep(t, b.srv.URL, smallReq())
	get(t, a.srv.URL+"/sweeps/"+stA.ID+"/export", 200)
	get(t, b.srv.URL+"/sweeps/"+stB.ID+"/export", 200)

	listIDs := func(body []byte) []string {
		var sts []simsvc.Status
		if err := json.Unmarshal(body, &sts); err != nil {
			t.Fatalf("listing: %v: %s", err, body)
		}
		var ids []string
		for _, st := range sts {
			ids = append(ids, st.ID)
		}
		return ids
	}

	body, hdr := get(t, c.srv.URL+"/sweeps", 200)
	ids := listIDs(body)
	if len(ids) != 2 || !(ids[0] == stA.ID || ids[1] == stA.ID) || !(ids[0] == stB.ID || ids[1] == stB.ID) {
		t.Fatalf("full listing from c: %v, want {%s, %s}", ids, stA.ID, stB.ID)
	}
	if p := hdr.Get(PartialHeader); p != "" {
		t.Errorf("healthy cluster listing marked partial: %q", p)
	}

	c.srv.Close()
	body, hdr = get(t, a.srv.URL+"/sweeps", 200)
	ids = listIDs(body)
	if len(ids) != 2 {
		t.Fatalf("listing with c down: %v, want both jobs", ids)
	}
	if p := hdr.Get(PartialHeader); p != "c" {
		t.Errorf("partial header %q, want c", p)
	}
}

// TestClusterWorkStealing: an idle node drains a busy peer's queue, the
// owner's export stays byte-identical to a standalone run, and the
// steal metrics account for the transfer.
func TestClusterWorkStealing(t *testing.T) {
	req := smallReq()
	req.Workloads = []string{"exchange2_r", "deepsjeng_r", "xz_r", "mcf_r"}
	req.MaxInstrs = 20_000 // slow the cells so the thief's poll lands mid-queue

	// Standalone golden: same request, isolated node.
	solo := startCluster(t, []string{"solo"}, nil)[0]
	stSolo := postSweep(t, solo.srv.URL, req)
	golden, _ := get(t, solo.srv.URL+"/sweeps/"+stSolo.ID+"/export", 200)

	nodes := startCluster(t, []string{"a", "b"}, func(i int, scfg *simsvc.Config, ncfg *Config) {
		if i == 0 {
			scfg.Workers = 1 // the victim: a long queue
		} else {
			scfg.Workers = 4
			ncfg.StealInterval = 20 * time.Millisecond
			ncfg.StealMax = 2
		}
	})
	a, b := nodes[0], nodes[1]

	st := postSweep(t, a.srv.URL, req)
	export, _ := get(t, a.srv.URL+"/sweeps/"+st.ID+"/export", 200)
	if !bytes.Equal(export, golden) {
		t.Fatalf("stolen sweep export differs from standalone golden (%d vs %d bytes)",
			len(export), len(golden))
	}
	if v := metric(t, b.srv.URL, "sdo_cluster_steals_total"); v < 1 {
		t.Errorf("thief completed %v steals, want >= 1", v)
	}
	if v := metric(t, a.srv.URL, "sdo_cluster_cells_stolen_total"); v < 1 {
		t.Errorf("owner leased out %v cells, want >= 1", v)
	}
	if v := metric(t, a.srv.URL, "sdo_cluster_steal_completions_total"); v < 1 {
		t.Errorf("owner accepted %v steal completions, want >= 1", v)
	}
}

// TestClusterArtifactPeering: checkpoints and sampling plans built by
// one node are fetched by peers instead of rebuilt, and a peer-warmed
// sweep's export is byte-identical to a standalone run's.
func TestClusterArtifactPeering(t *testing.T) {
	// Two artifact kinds, two scenarios on the same pair of nodes:
	// functional-warmup detailed sweeps share per-workload checkpoints,
	// sampled sweeps share per-workload plans (whose checkpoints ride
	// inside the plan file). The warm/probe requests differ only in
	// variant, so result cache keys miss while artifact keys match.
	ckptReq := smallReq()
	ckptReq.Variants = []string{"unsafe"}
	ckptReq.WarmupMode = "functional"
	planReq := smallReq()
	planReq.Variants = []string{"unsafe"}
	planReq.SimMode = "sampled"

	solo := startCluster(t, []string{"solo"}, func(i int, scfg *simsvc.Config, ncfg *Config) {
		scfg.CachePath = filepath.Join(t.TempDir(), "cache.json")
	})[0]
	nodes := startCluster(t, []string{"a", "b"}, func(i int, scfg *simsvc.Config, ncfg *Config) {
		scfg.CachePath = filepath.Join(t.TempDir(), "cache.json")
	})
	a, b := nodes[0], nodes[1]

	for _, tc := range []struct {
		name, metric string
		req          simsvc.SweepRequest
	}{
		{"checkpoint", "sdo_cluster_ckpt_peer_hits_total", ckptReq},
		{"plan", "sdo_cluster_plan_peer_hits_total", planReq},
	} {
		probe := tc.req
		probe.Variants = []string{"hybrid"}

		// Standalone golden for the probe sweep.
		stSolo := postSweep(t, solo.srv.URL, probe)
		golden, _ := get(t, solo.srv.URL+"/sweeps/"+stSolo.ID+"/export", 200)

		// Node a builds (and persists) the artifacts.
		stA := postSweep(t, a.srv.URL, tc.req)
		get(t, a.srv.URL+"/sweeps/"+stA.ID+"/export", 200)

		// Node b's sweep misses the result cache but peers the artifacts.
		stB := postSweep(t, b.srv.URL, probe)
		export, _ := get(t, b.srv.URL+"/sweeps/"+stB.ID+"/export", 200)
		if !bytes.Equal(export, golden) {
			t.Fatalf("%s: peer-warmed export differs from standalone golden (%d vs %d bytes)",
				tc.name, len(export), len(golden))
		}
		if v := metric(t, b.srv.URL, tc.metric); v < 1 {
			t.Errorf("%s peer hits = %v, want >= 1", tc.name, v)
		}
	}
}

// TestClusterStealLeaseExpiryReclamation is the crash-safety pillar: a
// thief claims cells and dies (never completes), and after the lease
// TTL the owner reclaims and finishes them itself — the sweep still
// completes exactly.
func TestClusterStealLeaseExpiryReclamation(t *testing.T) {
	req := smallReq()
	req.MaxInstrs = 10_000

	solo := startCluster(t, []string{"solo"}, nil)[0]
	stSolo := postSweep(t, solo.srv.URL, req)
	golden, _ := get(t, solo.srv.URL+"/sweeps/"+stSolo.ID+"/export", 200)

	nodes := startCluster(t, []string{"a"}, func(i int, scfg *simsvc.Config, ncfg *Config) {
		scfg.Workers = 1
		scfg.StealLeaseTTL = 250 * time.Millisecond
	})
	a := nodes[0]

	st := postSweep(t, a.srv.URL, req)
	// The "thief" claims queued cells over the wire and is then
	// SIGKILLed: no completion ever arrives.
	body, _ := get(t, a.srv.URL+"/cluster/steal?max=3&thief=doomed", 200)
	var cells []simsvc.StolenCell
	if err := json.Unmarshal(body, &cells); err != nil {
		t.Fatalf("steal claim: %v: %s", err, body)
	}
	if len(cells) == 0 {
		t.Fatal("no cells claimable right after submit (workers=1, 4 cells)")
	}

	export, _ := get(t, a.srv.URL+"/sweeps/"+st.ID+"/export", 200)
	if !bytes.Equal(export, golden) {
		t.Fatalf("post-reclamation export differs from golden (%d vs %d bytes)",
			len(export), len(golden))
	}
	if v := metric(t, a.srv.URL, "sdo_cluster_lease_expiries_total"); v < 1 {
		t.Errorf("lease expiries = %v, want >= 1 (dead thief must be reclaimed)", v)
	}
	if v := metric(t, a.srv.URL, "sdo_cluster_steal_completions_total"); v != 0 {
		t.Errorf("steal completions = %v, want 0 (thief never reported back)", v)
	}
}
