// Package cluster federates N sdoserver nodes into one logical sweep
// service. Every node answers every /sweeps request: job IDs are
// partitioned by rendezvous hashing over the member set, requests for a
// job the local node does not hold are transparently proxied to the
// ranked owner, and GET /sweeps is answered by scatter-gather across
// the membership. Idle nodes steal queued cells from busy peers under
// journaled leases, and checkpoint/plan artifacts are fetched from
// peers before being rebuilt locally (wired in simsvc, enabled here).
//
// The layer is strictly additive: with a single member (or no cluster
// flags at all) the wrapped service behaves byte-identically to a
// standalone sdoserver.
package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/simsvc"
)

// Cluster-routing headers. Hop marks a request already forwarded once:
// the receiver answers locally and never forwards again, so membership
// disagreement degrades to a 404 instead of a proxy loop. Owner names
// the unreachable owner on an honest-degradation 503. Via names the
// node that served a proxied response, Partial the peers a scatter-
// gather listing could not reach.
const (
	HopHeader     = "X-Sdo-Cluster-Hop"
	OwnerHeader   = "X-Sdo-Cluster-Owner"
	ViaHeader     = "X-Sdo-Cluster-Via"
	PartialHeader = "X-Sdo-Cluster-Partial"
)

// Defaults for Config zero values.
const (
	DefaultStealInterval = 2 * time.Second
	DefaultStealMax      = 4
	DefaultDialTimeout   = 3 * time.Second
	DefaultFanoutTimeout = 10 * time.Second
)

// Member is one node of the cluster.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// ParseMembers parses a comma-separated "id=url" membership list, e.g.
//
//	a=http://node-a:8347,b=http://node-b:8347,c=http://node-c:8347
//
// IDs and URLs must be unique; trailing slashes on URLs are dropped so
// joined request paths stay canonical.
func ParseMembers(spec string) ([]Member, error) {
	var out []Member
	ids := make(map[string]bool)
	urls := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		id, u = strings.TrimSpace(id), strings.TrimSuffix(strings.TrimSpace(u), "/")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("cluster: malformed member %q (want id=url)", part)
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("cluster: member %s: url %q must be http(s)", id, u)
		}
		if ids[id] {
			return nil, fmt.Errorf("cluster: duplicate member id %q", id)
		}
		if urls[u] {
			return nil, fmt.Errorf("cluster: duplicate member url %q", u)
		}
		ids[id], urls[u] = true, true
		out = append(out, Member{ID: id, URL: u})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	return out, nil
}

// OwnerOf returns the member ID that owns jobID under rendezvous
// hashing — the same ranking simsvc's OwnsID hook and the proxy path
// use, so every node computes the same owner for every job.
func OwnerOf(jobID string, memberIDs []string) string {
	r := fabric.Rank(jobID, memberIDs)
	if len(r) == 0 {
		return ""
	}
	return r[0]
}

// Owns returns the OwnsID predicate for simsvc.Config: self owns
// exactly the jobs rendezvous-ranked onto it.
func Owns(self string, memberIDs []string) func(id string) bool {
	ids := append([]string(nil), memberIDs...)
	return func(id string) bool { return OwnerOf(id, ids) == self }
}

// Config configures a cluster node.
type Config struct {
	Self    string          // this node's member ID (must appear in Members)
	Members []Member        // full membership, self included
	Service *simsvc.Service // the wrapped local sweep service

	Trace bool // record proxy / steal-claim spans, served at GET /cluster/trace

	StealInterval time.Duration // peer-poll period; 0: default, <0: stealing off
	StealMax      int           // max cells claimed per poll (0: default)

	DialTimeout   time.Duration // proxy connect budget (0: default)
	FanoutTimeout time.Duration // scatter-gather / steal RPC budget (0: default)

	Logf func(format string, args ...any) // optional diagnostics
}

// Node wires one local Service into the cluster: request routing,
// scatter-gather listing, the steal endpoints, and the thief loop.
type Node struct {
	cfg  Config
	svc  *simsvc.Service
	ids  []string // member IDs, config order
	byID map[string]Member
	self Member

	// proxyClient carries per-job proxied requests. No overall timeout:
	// /sweeps/{id}/export blocks until the job finishes and /progress
	// streams, so only the dial is bounded — a dead owner fails fast, a
	// slow sweep does not. boundedClient carries the short RPCs
	// (scatter-gather, steal claims, completions).
	proxyClient   *http.Client
	boundedClient *http.Client

	tr *trace.Tracer
	jt *trace.JobTrace

	proxied     *obs.Counter // requests served for a peer-owned job
	proxyErrors *obs.Counter // owner-unreachable 503s
	scatters    *obs.Counter // scatter-gather listings fanned out
	steals      *obs.Counter // cells stolen from peers and completed
	stealErrors *obs.Counter // stolen cells that failed to run or post back

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New validates cfg and starts the node's background stealing loop
// (when stealing is enabled and the cluster has peers to steal from).
// Close stops it.
func New(cfg Config) (*Node, error) {
	if cfg.Service == nil {
		return nil, fmt.Errorf("cluster: nil service")
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	if cfg.StealInterval == 0 {
		cfg.StealInterval = DefaultStealInterval
	}
	if cfg.StealMax <= 0 {
		cfg.StealMax = DefaultStealMax
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.FanoutTimeout <= 0 {
		cfg.FanoutTimeout = DefaultFanoutTimeout
	}
	n := &Node{
		cfg:  cfg,
		svc:  cfg.Service,
		byID: make(map[string]Member, len(cfg.Members)),
	}
	for _, m := range cfg.Members {
		n.ids = append(n.ids, m.ID)
		n.byID[m.ID] = m
		if m.ID == cfg.Self {
			n.self = m
		}
	}
	if n.self.ID == "" {
		return nil, fmt.Errorf("cluster: self %q not in member list", cfg.Self)
	}
	dial := (&net.Dialer{Timeout: cfg.DialTimeout}).DialContext
	n.proxyClient = &http.Client{Transport: &http.Transport{DialContext: dial}}
	n.boundedClient = &http.Client{
		Transport: &http.Transport{DialContext: dial},
		Timeout:   cfg.FanoutTimeout,
	}
	if cfg.Trace {
		n.tr = trace.New(4)
		n.jt = n.tr.StartJob("cluster")
	}
	reg := n.svc.Registry()
	n.proxied = reg.NewCounter("sdo_cluster_proxied_requests_total",
		"Requests for peer-owned jobs this node proxied to their owner.")
	n.proxyErrors = reg.NewCounter("sdo_cluster_proxy_errors_total",
		"Proxied requests that failed because the owning node was unreachable.")
	n.scatters = reg.NewCounter("sdo_cluster_scatter_listings_total",
		"GET /sweeps listings answered by scatter-gather across the membership.")
	n.steals = reg.NewCounter("sdo_cluster_steals_total",
		"Queued cells this node stole from peers and completed back to their owner.")
	n.stealErrors = reg.NewCounter("sdo_cluster_steal_errors_total",
		"Stolen cells that failed to execute or to post back to their owner.")
	n.ctx, n.cancel = context.WithCancel(context.Background())
	if cfg.StealInterval > 0 && len(cfg.Members) > 1 {
		n.wg.Add(1)
		go n.stealLoop()
	}
	return n, nil
}

// Close stops the stealing loop. The wrapped Service is not shut down;
// the caller owns its lifecycle.
func (n *Node) Close() {
	n.cancel()
	n.wg.Wait()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// others returns the membership minus self, rotated to start just past
// self's own position so concurrent thieves spread their first polls
// across different victims.
func (n *Node) others() []Member {
	var selfAt int
	for i, id := range n.ids {
		if id == n.self.ID {
			selfAt = i
			break
		}
	}
	out := make([]Member, 0, len(n.ids)-1)
	for i := 1; i < len(n.ids); i++ {
		out = append(out, n.byID[n.ids[(selfAt+i)%len(n.ids)]])
	}
	return out
}

// jobSortKey orders "sweep-N" IDs numerically so a merged cluster
// listing reads like one node's listing.
func jobSortKey(id string) (int, string) {
	if num, ok := strings.CutPrefix(id, "sweep-"); ok {
		if v, err := strconv.Atoi(num); err == nil {
			return v, id
		}
	}
	return int(^uint(0) >> 1), id // non-standard IDs sort last, lexically
}

func sortStatuses(sts []simsvc.Status) {
	sort.Slice(sts, func(i, j int) bool {
		ni, si := jobSortKey(sts[i].ID)
		nj, sj := jobSortKey(sts[j].ID)
		if ni != nj {
			return ni < nj
		}
		return si < sj
	})
}
