package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs/trace"
	"repro/internal/simsvc"
)

// Handler returns the node's HTTP handler: the wrapped service's full
// API plus cluster routing (proxy + scatter-gather) and the /cluster
// control endpoints.
func (n *Node) Handler() http.Handler {
	base := n.svc.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster", n.handleInfo)
	mux.HandleFunc("GET /cluster/steal", n.handleSteal)
	mux.HandleFunc("POST /cluster/complete", n.handleComplete)
	if n.tr != nil {
		mux.HandleFunc("GET /cluster/trace", n.handleClusterTrace)
	}
	mux.Handle("/", n.route(base))
	return mux
}

// route wraps the service handler with cluster routing:
//
//   - GET /sweeps fans out to every member and merges (scatter-gather),
//     unless the request already hopped here from a peer.
//   - /sweeps/{id}... for a job the local service holds is served
//     locally — ownership is a partition of the ID space, so holding
//     the job means being its home.
//   - /sweeps/{id}... for an unknown job is proxied along the job's
//     rendezvous ranking. A request carrying the hop header is never
//     forwarded again (loop prevention): it gets the local 404.
func (n *Node) route(base http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/sweeps" &&
			r.Header.Get(HopHeader) == "" && len(n.cfg.Members) > 1 {
			n.scatterList(w, r)
			return
		}
		id := sweepID(r.URL.Path)
		if id == "" {
			base.ServeHTTP(w, r)
			return
		}
		if _, ok := n.svc.Job(id); ok {
			base.ServeHTTP(w, r)
			return
		}
		if r.Header.Get(HopHeader) != "" {
			// Already forwarded once; answer locally (a 404) rather
			// than risk a proxy cycle under membership disagreement.
			base.ServeHTTP(w, r)
			return
		}
		n.proxyJob(w, r, id)
	})
}

// sweepID extracts {id} from a /sweeps/{id}[/...] path, or "".
func sweepID(path string) string {
	rest, ok := strings.CutPrefix(path, "/sweeps/")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// proxyJob forwards a per-job request along the job's rendezvous
// ranking. The top-ranked member is the owner: if it is unreachable the
// client gets an honest 503 naming it, not a hang. Lower-ranked members
// are only consulted after a clean 404 (membership drift: a job
// admitted under an older member set may live off its current ranking).
func (n *Node) proxyJob(w http.ResponseWriter, r *http.Request, id string) {
	order := fabric.Rank(id, n.ids)
	owner := order[0]
	var sp *trace.Span
	if n.jt != nil {
		ct := n.jt.StartCell(r.Method+" "+r.URL.Path, time.Now())
		sp = ct.Root().Child(trace.PhaseProxy)
		sp.Set("job", id)
		sp.Set("owner", owner)
		defer func() { sp.Finish(); ct.Finish() }()
	}

	// Per-job requests carry no meaningful body (submit is POST /sweeps,
	// always local), but buffer defensively so ranked retries never
	// replay a half-consumed stream.
	var body []byte
	if r.Body != nil {
		body, _ = io.ReadAll(io.LimitReader(r.Body, 1<<20))
	}

	for _, mid := range order {
		if mid == n.self.ID {
			continue // already missed locally
		}
		m := n.byID[mid]
		resp, err := n.forward(r, m, body)
		if err != nil {
			if mid == owner {
				n.proxyErrors.Inc()
				if sp != nil {
					sp.Set("outcome", "owner-unreachable")
				}
				w.Header().Set(OwnerHeader, owner+" "+m.URL)
				writeJSON(w, http.StatusServiceUnavailable, map[string]string{
					"error":     "cluster owner unreachable",
					"owner":     owner,
					"owner_url": m.URL,
					"detail":    err.Error(),
				})
				return
			}
			n.logf("cluster: proxy %s %s to %s: %v", r.Method, r.URL.Path, mid, err)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		n.proxied.Inc()
		if sp != nil {
			sp.Set("served-by", mid)
			sp.Set("status", strconv.Itoa(resp.StatusCode))
		}
		copyResponse(w, resp, mid)
		resp.Body.Close()
		return
	}
	if sp != nil {
		sp.Set("outcome", "unknown-job")
	}
	http.Error(w, "unknown job", http.StatusNotFound)
}

// forward replays r against member m with the hop header set.
func (n *Node) forward(r *http.Request, m Member, body []byte) (*http.Response, error) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		m.URL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	out.Header = r.Header.Clone()
	out.Header.Set(HopHeader, n.self.ID)
	return n.proxyClient.Do(out)
}

// copyResponse relays a proxied response, flushing after every chunk so
// streaming endpoints (/progress) stay live through the proxy.
func copyResponse(w http.ResponseWriter, resp *http.Response, via string) {
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	h.Set(ViaHeader, via)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		nr, err := resp.Body.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// scatterList answers GET /sweeps with the merged listing of every
// member. Unreachable peers degrade the answer, honestly: the response
// still succeeds with what was gathered, and the Partial header names
// the nodes whose jobs may be missing.
func (n *Node) scatterList(w http.ResponseWriter, r *http.Request) {
	n.scatters.Inc()
	merged := make(map[string]simsvc.Status)
	for _, j := range n.svc.Jobs() {
		st := j.Status()
		merged[st.ID] = st
	}

	others := n.others()
	lists := make([][]simsvc.Status, len(others))
	errs := make([]error, len(others))
	var wg sync.WaitGroup
	for i, m := range others {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			lists[i], errs[i] = n.fetchList(r, m)
		}(i, m)
	}
	wg.Wait()

	var down []string
	for i, m := range others {
		if errs[i] != nil {
			n.logf("cluster: list from %s: %v", m.ID, errs[i])
			down = append(down, m.ID)
			continue
		}
		for _, st := range lists[i] {
			// Local state wins on ID collisions: this node is the
			// authority for every job it holds.
			if _, ok := merged[st.ID]; !ok {
				merged[st.ID] = st
			}
		}
	}

	out := make([]simsvc.Status, 0, len(merged))
	for _, st := range merged {
		out = append(out, st)
	}
	sortStatuses(out)
	if len(down) > 0 {
		w.Header().Set(PartialHeader, strings.Join(down, ","))
	}
	writeJSON(w, http.StatusOK, out)
}

func (n *Node) fetchList(r *http.Request, m Member) ([]simsvc.Status, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, m.URL+"/sweeps", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(HopHeader, n.self.ID)
	resp, err := n.boundedClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, errStatus(resp.StatusCode)
	}
	var sts []simsvc.Status
	if err := json.NewDecoder(resp.Body).Decode(&sts); err != nil {
		return nil, err
	}
	return sts, nil
}

type errStatus int

func (e errStatus) Error() string { return "http status " + strconv.Itoa(int(e)) }

// handleInfo describes the membership and this node's place in it.
func (n *Node) handleInfo(w http.ResponseWriter, _ *http.Request) {
	type memberInfo struct {
		Member
		Self bool `json:"self,omitempty"`
	}
	out := struct {
		Self     string       `json:"self"`
		Members  []memberInfo `json:"members"`
		Stealing bool         `json:"stealing"`
	}{Self: n.self.ID, Stealing: n.cfg.StealInterval > 0 && len(n.cfg.Members) > 1}
	for _, m := range n.cfg.Members {
		out.Members = append(out.Members, memberInfo{Member: m, Self: m.ID == n.self.ID})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSteal hands out lease-protected queued cells to a polling
// thief. An empty list is the normal answer on an idle or drained node.
func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	max := n.cfg.StealMax
	if v, err := strconv.Atoi(r.URL.Query().Get("max")); err == nil && v > 0 {
		max = v
	}
	thief := r.URL.Query().Get("thief")
	if thief == "" {
		thief = r.RemoteAddr
	}
	cells := n.svc.StealCells(thief, max)
	if cells == nil {
		cells = []simsvc.StolenCell{}
	}
	writeJSON(w, http.StatusOK, cells)
}

// handleComplete accepts a thief's finished cell (the content-addressed
// wire entry) and settles the lease.
func (n *Node) handleComplete(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := n.svc.CompleteSteal(key, body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleClusterTrace serves the node's cluster-layer span tree (proxy
// and steal-claim spans). Registered only with tracing on.
func (n *Node) handleClusterTrace(w http.ResponseWriter, r *http.Request) {
	doc := n.jt.Doc()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		doc.WriteChrome(w)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
