// Package isa defines the small RISC-like instruction set executed by the
// simulator, together with a sparse 64-bit memory, an assembler-style
// program builder, and a functional (architectural, timing-free) executor
// that serves as the golden model for differential testing.
//
// The ISA is deliberately minimal: it contains exactly the instruction
// classes the SDO paper's evaluation depends on — integer ALU operations,
// floating-point operations with operand-dependent latency classes
// (normal/subnormal), loads and stores, conditional branches, a cache-line
// flush (clflush), and a cycle-counter read (rdtsc) used by the in-simulator
// Spectre penetration test.
package isa

import "fmt"

// Reg names an architectural register. The machine has NumRegs 64-bit
// general registers; floating-point operations reinterpret register bits as
// IEEE-754 float64 values.
type Reg uint8

// NumRegs is the number of architectural registers.
const NumRegs = 32

// Convenient register aliases for hand-written programs.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// Op enumerates the instruction opcodes.
type Op uint8

const (
	// OpNop does nothing.
	OpNop Op = iota
	// OpHalt stops the program.
	OpHalt

	// OpMovI sets Rd = Imm.
	OpMovI
	// OpAddI sets Rd = Rs + Imm.
	OpAddI
	// OpAdd sets Rd = Rs + Rt.
	OpAdd
	// OpSub sets Rd = Rs - Rt.
	OpSub
	// OpMul sets Rd = Rs * Rt.
	OpMul
	// OpDiv sets Rd = Rs / Rt (0 if Rt == 0).
	OpDiv
	// OpAnd sets Rd = Rs & Rt.
	OpAnd
	// OpOr sets Rd = Rs | Rt.
	OpOr
	// OpXor sets Rd = Rs ^ Rt.
	OpXor
	// OpShl sets Rd = Rs << (Rt & 63).
	OpShl
	// OpShr sets Rd = Rs >> (Rt & 63) (logical).
	OpShr

	// OpFAdd sets Rd = float64(Rs) + float64(Rt).
	OpFAdd
	// OpFSub sets Rd = float64(Rs) - float64(Rt).
	OpFSub
	// OpFMul sets Rd = float64(Rs) * float64(Rt). Transmitter: latency
	// depends on whether an operand or the result is subnormal.
	OpFMul
	// OpFDiv sets Rd = float64(Rs) / float64(Rt). Transmitter, like OpFMul.
	OpFDiv
	// OpFSqrt sets Rd = sqrt(float64(Rs)). Transmitter, like OpFMul.
	OpFSqrt
	// OpItoF converts the signed integer in Rs to float64 in Rd.
	OpItoF
	// OpFtoI truncates the float64 in Rs to a signed integer in Rd.
	OpFtoI

	// OpLoad sets Rd = mem64[Rs + Imm]. Access instruction and transmitter.
	OpLoad
	// OpLoadB sets Rd = zext(mem8[Rs + Imm]). Access instruction and
	// transmitter.
	OpLoadB
	// OpStore sets mem64[Rs + Imm] = Rt.
	OpStore
	// OpStoreB sets mem8[Rs + Imm] = low8(Rt).
	OpStoreB

	// OpBeq branches to Target if Rs == Rt.
	OpBeq
	// OpBne branches to Target if Rs != Rt.
	OpBne
	// OpBlt branches to Target if int64(Rs) < int64(Rt).
	OpBlt
	// OpBge branches to Target if int64(Rs) >= int64(Rt).
	OpBge
	// OpJmp branches to Target unconditionally.
	OpJmp

	// OpFlush evicts the cache line containing address Rs + Imm from the
	// whole hierarchy (clflush). Architecturally a no-op.
	OpFlush
	// OpRdCyc sets Rd to the current cycle count (rdtsc). In the functional
	// executor it returns the dynamic instruction count instead.
	OpRdCyc

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpHalt: "halt",
	OpMovI: "movi", OpAddI: "addi", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFSqrt: "fsqrt", OpItoF: "itof", OpFtoI: "ftoi",
	OpLoad: "ld", OpLoadB: "ldb", OpStore: "st", OpStoreB: "stb",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge", OpJmp: "jmp",
	OpFlush: "flush", OpRdCyc: "rdcyc",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one decoded instruction. Branch targets are absolute indices
// into the program's instruction slice.
type Instr struct {
	Op     Op
	Rd     Reg   // destination register
	Rs, Rt Reg   // source registers
	Imm    int64 // immediate / address offset
	Target int   // branch target (program index)
}

// String renders the instruction in a readable assembly-like form.
func (i Instr) String() string {
	switch {
	case i.Op == OpNop || i.Op == OpHalt:
		return i.Op.String()
	case i.Op.IsBranch() && i.Op != OpJmp:
		return fmt.Sprintf("%s r%d, r%d, @%d", i.Op, i.Rs, i.Rt, i.Target)
	case i.Op == OpJmp:
		return fmt.Sprintf("jmp @%d", i.Target)
	case i.Op.IsLoad():
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rd, i.Imm, i.Rs)
	case i.Op.IsStore():
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rt, i.Imm, i.Rs)
	case i.Op == OpFlush:
		return fmt.Sprintf("flush %d(r%d)", i.Imm, i.Rs)
	case i.Op == OpMovI:
		return fmt.Sprintf("movi r%d, %d", i.Rd, i.Imm)
	case i.Op == OpAddI:
		return fmt.Sprintf("addi r%d, r%d, %d", i.Rd, i.Rs, i.Imm)
	case i.Op == OpRdCyc, i.Op == OpFSqrt, i.Op == OpItoF, i.Op == OpFtoI:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Rd, i.Rs)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs, i.Rt)
	}
}

// IsBranch reports whether the opcode is a control-flow instruction.
func (o Op) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp:
		return true
	}
	return false
}

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool { return o.IsBranch() && o != OpJmp }

// IsLoad reports whether the opcode reads memory. Loads are the paper's
// canonical access instructions and transmitters.
func (o Op) IsLoad() bool { return o == OpLoad || o == OpLoadB }

// IsStore reports whether the opcode writes memory.
func (o Op) IsStore() bool { return o == OpStore || o == OpStoreB }

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsFP reports whether the opcode is a floating-point arithmetic operation.
func (o Op) IsFP() bool {
	switch o {
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFSqrt:
		return true
	}
	return false
}

// IsFPTransmitter reports whether the opcode is one of the floating-point
// micro-ops the paper treats as transmitters in the STT{ld+fp} and SDO
// configurations (fmult/div/fsqrt: their latency depends on operand values).
func (o Op) IsFPTransmitter() bool {
	return o == OpFMul || o == OpFDiv || o == OpFSqrt
}

// WritesReg reports whether instructions with this opcode produce a
// register result.
func (o Op) WritesReg() bool {
	switch o {
	case OpNop, OpHalt, OpStore, OpStoreB, OpBeq, OpBne, OpBlt, OpBge,
		OpJmp, OpFlush:
		return false
	}
	return true
}

// SrcRegs appends the source registers read by instruction i to dst and
// returns the extended slice. dst may be nil.
func (i Instr) SrcRegs(dst []Reg) []Reg {
	switch i.Op {
	case OpNop, OpHalt, OpMovI, OpJmp, OpRdCyc:
		return dst
	case OpAddI, OpItoF, OpFtoI, OpFSqrt, OpLoad, OpLoadB, OpFlush:
		return append(dst, i.Rs)
	case OpStore, OpStoreB, OpBeq, OpBne, OpBlt, OpBge:
		return append(dst, i.Rs, i.Rt)
	default: // three-operand ALU / FP
		return append(dst, i.Rs, i.Rt)
	}
}

// Program is an executable sequence of instructions. Labels records the
// instruction index of each label defined during building (useful for
// tests and attack code that needs to locate specific gadgets).
type Program struct {
	Instrs []Instr
	Labels map[string]int
}

// Len returns the number of instructions in the program.
func (p *Program) Len() int { return len(p.Instrs) }

// At returns the instruction at index pc; fetching past the end returns
// OpHalt so runaway fetch terminates cleanly.
func (p *Program) At(pc int) Instr {
	if pc < 0 || pc >= len(p.Instrs) {
		return Instr{Op: OpHalt}
	}
	return p.Instrs[pc]
}

// Validate checks structural invariants: all branch targets must be within
// [0, Len()], and registers must be < NumRegs (guaranteed by the Reg type,
// but immediate-constructed programs are checked anyway).
func (p *Program) Validate() error {
	for idx, in := range p.Instrs {
		if in.Op >= numOps {
			return fmt.Errorf("isa: instruction %d has invalid opcode %d", idx, in.Op)
		}
		if in.Op.IsBranch() {
			if in.Target < 0 || in.Target > len(p.Instrs) {
				return fmt.Errorf("isa: instruction %d (%s) branches to %d, outside [0,%d]",
					idx, in, in.Target, len(p.Instrs))
			}
		}
		if in.Rd >= NumRegs || in.Rs >= NumRegs || in.Rt >= NumRegs {
			return fmt.Errorf("isa: instruction %d (%s) names register >= %d", idx, in, NumRegs)
		}
	}
	return nil
}
