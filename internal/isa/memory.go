package isa

import "encoding/binary"

// pageBits is log2 of the backing-store page size. Pages are allocated
// lazily so programs can use sparse, far-apart address regions (heaps,
// secret arrays, probe arrays) without reserving the whole address space.
const pageBits = 12

const pageSize = 1 << pageBits

type page [pageSize]byte

// Memory is a sparse, byte-addressable 64-bit physical memory. The zero
// value is ready to use. Reads of never-written locations return zero.
//
// Memory is purely functional state: all timing (caches, DRAM) lives in
// internal/mem. Both the golden executor and the cycle-level pipeline share
// this type so architectural results are directly comparable.
type Memory struct {
	pages map[uint64]*page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{pages: make(map[uint64]*page)} }

func (m *Memory) pageFor(addr uint64, alloc bool) *page {
	if m.pages == nil {
		if !alloc {
			return nil
		}
		m.pages = make(map[uint64]*page)
	}
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil && alloc {
		p = new(page)
		m.pages[pn] = p
	}
	return p
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint64, v byte) {
	m.pageFor(addr, true)[addr&(pageSize-1)] = v
}

// Read64 returns the little-endian 64-bit word at addr. Accesses that
// straddle a page boundary are assembled byte-by-byte.
func (m *Memory) Read64(addr uint64) uint64 {
	off := addr & (pageSize - 1)
	if off <= pageSize-8 {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off : off+8])
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(m.Read8(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write64 stores the little-endian 64-bit word v at addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	off := addr & (pageSize - 1)
	if off <= pageSize-8 {
		binary.LittleEndian.PutUint64(m.pageFor(addr, true)[off:off+8], v)
		return
	}
	for i := 0; i < 8; i++ {
		m.Write8(addr+uint64(i), byte(v>>(8*i)))
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.Write8(addr+uint64(i), v)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = m.Read8(addr + uint64(i))
	}
	return b
}

// Clone returns a deep copy of the memory, used to run the same initial
// image through multiple simulator configurations.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pn, p := range m.pages {
		cp := *p
		c.pages[pn] = &cp
	}
	return c
}

// Pages returns the number of allocated backing pages (for tests).
func (m *Memory) Pages() int { return len(m.pages) }

// Image returns a deep copy of the memory contents as a page-number →
// page-bytes map, omitting all-zero pages (which are indistinguishable
// from absent pages). The image is the serializable form of the memory
// used by warmup checkpoints (internal/arch).
func (m *Memory) Image() map[uint64][]byte {
	img := make(map[uint64][]byte, len(m.pages))
	for pn, p := range m.pages {
		if *p == (page{}) {
			continue
		}
		b := make([]byte, pageSize)
		copy(b, p[:])
		img[pn] = b
	}
	return img
}

// SetImage replaces the memory contents with the given page image (as
// produced by Image). Pages longer than the backing page size are
// truncated; shorter pages are zero-extended.
func (m *Memory) SetImage(img map[uint64][]byte) {
	m.pages = make(map[uint64]*page, len(img))
	for pn, b := range img {
		p := new(page)
		copy(p[:], b)
		m.pages[pn] = p
	}
}

// Equal reports whether two memories have identical contents. Zero-filled
// pages are treated the same as absent pages.
func (m *Memory) Equal(o *Memory) bool {
	return m.coveredBy(o) && o.coveredBy(m)
}

func (m *Memory) coveredBy(o *Memory) bool {
	for pn, p := range m.pages {
		op := o.pages[pn]
		if op == nil {
			if *p != (page{}) {
				return false
			}
			continue
		}
		if *p != *op {
			return false
		}
	}
	return true
}
