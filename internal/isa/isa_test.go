package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                                       Op
		branch, load, store, fp, fpTx, writesReg bool
	}{
		{OpNop, false, false, false, false, false, false},
		{OpHalt, false, false, false, false, false, false},
		{OpAdd, false, false, false, false, false, true},
		{OpMovI, false, false, false, false, false, true},
		{OpFAdd, false, false, false, true, false, true},
		{OpFMul, false, false, false, true, true, true},
		{OpFDiv, false, false, false, true, true, true},
		{OpFSqrt, false, false, false, true, true, true},
		{OpLoad, false, true, false, false, false, true},
		{OpLoadB, false, true, false, false, false, true},
		{OpStore, false, false, true, false, false, false},
		{OpStoreB, false, false, true, false, false, false},
		{OpBeq, true, false, false, false, false, false},
		{OpJmp, true, false, false, false, false, false},
		{OpFlush, false, false, false, false, false, false},
		{OpRdCyc, false, false, false, false, false, true},
	}
	for _, c := range cases {
		if got := c.op.IsBranch(); got != c.branch {
			t.Errorf("%v.IsBranch() = %v, want %v", c.op, got, c.branch)
		}
		if got := c.op.IsLoad(); got != c.load {
			t.Errorf("%v.IsLoad() = %v, want %v", c.op, got, c.load)
		}
		if got := c.op.IsStore(); got != c.store {
			t.Errorf("%v.IsStore() = %v, want %v", c.op, got, c.store)
		}
		if got := c.op.IsFP(); got != c.fp {
			t.Errorf("%v.IsFP() = %v, want %v", c.op, got, c.fp)
		}
		if got := c.op.IsFPTransmitter(); got != c.fpTx {
			t.Errorf("%v.IsFPTransmitter() = %v, want %v", c.op, got, c.fpTx)
		}
		if got := c.op.WritesReg(); got != c.writesReg {
			t.Errorf("%v.WritesReg() = %v, want %v", c.op, got, c.writesReg)
		}
	}
}

func TestCondBranchClassification(t *testing.T) {
	for _, op := range []Op{OpBeq, OpBne, OpBlt, OpBge} {
		if !op.IsCondBranch() {
			t.Errorf("%v should be a conditional branch", op)
		}
	}
	if OpJmp.IsCondBranch() {
		t.Error("jmp must not be a conditional branch")
	}
}

func TestSrcRegs(t *testing.T) {
	got := Instr{Op: OpAdd, Rd: R1, Rs: R2, Rt: R3}.SrcRegs(nil)
	if len(got) != 2 || got[0] != R2 || got[1] != R3 {
		t.Errorf("add srcs = %v", got)
	}
	got = Instr{Op: OpLoad, Rd: R1, Rs: R4}.SrcRegs(nil)
	if len(got) != 1 || got[0] != R4 {
		t.Errorf("load srcs = %v", got)
	}
	got = Instr{Op: OpMovI, Rd: R1}.SrcRegs(nil)
	if len(got) != 0 {
		t.Errorf("movi srcs = %v", got)
	}
	got = Instr{Op: OpStore, Rs: R1, Rt: R2}.SrcRegs(nil)
	if len(got) != 2 {
		t.Errorf("store srcs = %v", got)
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Write64(0x1000, 0xdeadbeefcafebabe)
	if got := m.Read64(0x1000); got != 0xdeadbeefcafebabe {
		t.Fatalf("Read64 = %#x", got)
	}
	if got := m.Read8(0x1000); got != 0xbe {
		t.Fatalf("little-endian low byte = %#x", got)
	}
	// Unwritten memory reads zero.
	if got := m.Read64(0x999000); got != 0 {
		t.Fatalf("unwritten read = %#x", got)
	}
	// Page-straddling word.
	m.Write64(pageSize-3, 0x1122334455667788)
	if got := m.Read64(pageSize - 3); got != 0x1122334455667788 {
		t.Fatalf("straddling Read64 = %#x", got)
	}
}

func TestMemoryZeroValueUsable(t *testing.T) {
	var m Memory
	if got := m.Read64(64); got != 0 {
		t.Fatalf("zero-value read = %d", got)
	}
	m.Write8(5, 7)
	if got := m.Read8(5); got != 7 {
		t.Fatalf("zero-value write/read = %d", got)
	}
}

func TestMemoryCloneAndEqual(t *testing.T) {
	m := NewMemory()
	m.Write64(0x40, 1234)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.Write64(0x40, 5678)
	if m.Equal(c) {
		t.Fatal("diverged clone should not equal original")
	}
	if m.Read64(0x40) != 1234 {
		t.Fatal("clone write leaked into original")
	}
	// A page of explicit zeros equals an absent page.
	d := m.Clone()
	d.Write64(0x77000, 0)
	if !m.Equal(d) || !d.Equal(m) {
		t.Fatal("zero-filled page must equal absent page")
	}
}

func TestMemoryPropertyRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint64) bool {
		addr &= 0xffffff // keep the page map small
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryPropertyBytesCompose64(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint64) bool {
		addr &= 0xffffff
		m.Write64(addr, v)
		var composed uint64
		for i := 0; i < 8; i++ {
			composed |= uint64(m.Read8(addr+uint64(i))) << (8 * i)
		}
		return composed == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderLabelsAndBranches(t *testing.T) {
	p, err := NewBuilder().
		MovI(R1, 0).
		MovI(R2, 10).
		Label("loop").
		AddI(R1, R1, 1).
		Blt(R1, R2, "loop").
		Halt().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["loop"] != 2 {
		t.Fatalf("loop label = %d, want 2", p.Labels["loop"])
	}
	if p.Instrs[3].Target != 2 {
		t.Fatalf("branch target = %d, want 2", p.Instrs[3].Target)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().Jmp("missing").Build(); err == nil {
		t.Error("undefined label should fail")
	}
	if _, err := NewBuilder().Label("a").Label("a").Build(); err == nil {
		t.Error("duplicate label should fail")
	}
}

func TestValidateRejectsBadTarget(t *testing.T) {
	p := &Program{Instrs: []Instr{{Op: OpJmp, Target: 99}}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range target should fail validation")
	}
}

func TestProgramAtOutOfRangeHalts(t *testing.T) {
	p := &Program{Instrs: []Instr{{Op: OpNop}}}
	if got := p.At(5).Op; got != OpHalt {
		t.Errorf("At(5).Op = %v, want halt", got)
	}
	if got := p.At(-1).Op; got != OpHalt {
		t.Errorf("At(-1).Op = %v, want halt", got)
	}
}

func TestEvalALUDivByZero(t *testing.T) {
	if got := EvalALU(Instr{Op: OpDiv}, 10, 0, 0); got != 0 {
		t.Fatalf("div by zero = %d, want 0", got)
	}
}

func TestEvalALUFloat(t *testing.T) {
	fb := math.Float64bits
	got := EvalALU(Instr{Op: OpFMul}, fb(3), fb(4), 0)
	if math.Float64frombits(got) != 12 {
		t.Fatalf("3*4 = %v", math.Float64frombits(got))
	}
	got = EvalALU(Instr{Op: OpFSqrt}, fb(81), 0, 0)
	if math.Float64frombits(got) != 9 {
		t.Fatalf("sqrt(81) = %v", math.Float64frombits(got))
	}
	got = EvalALU(Instr{Op: OpItoF}, uint64(7), 0, 0)
	if math.Float64frombits(got) != 7 {
		t.Fatalf("itof(7) = %v", math.Float64frombits(got))
	}
	got = EvalALU(Instr{Op: OpFtoI}, fb(9.75), 0, 0)
	if int64(got) != 9 {
		t.Fatalf("ftoi(9.75) = %d", int64(got))
	}
	got = EvalALU(Instr{Op: OpFtoI}, fb(math.NaN()), 0, 0)
	if got != 0 {
		t.Fatalf("ftoi(NaN) = %d, want 0", got)
	}
}

func TestSubnormalDetection(t *testing.T) {
	sub := math.Float64bits(math.SmallestNonzeroFloat64)
	if !IsSubnormalBits(sub) {
		t.Error("smallest nonzero float64 is subnormal")
	}
	if IsSubnormalBits(math.Float64bits(1.0)) {
		t.Error("1.0 is not subnormal")
	}
	if IsSubnormalBits(0) {
		t.Error("+0.0 is not subnormal")
	}
	if IsSubnormalBits(math.Float64bits(math.Inf(1))) {
		t.Error("+Inf is not subnormal")
	}
	// fmul with a subnormal operand takes the slow path.
	if !FPSlowPath(OpFMul, sub, math.Float64bits(1.0), sub) {
		t.Error("fmul with subnormal operand should be slow")
	}
	// fmul producing a subnormal result takes the slow path.
	tiny := math.Float64bits(1e-300)
	small := math.Float64bits(1e-15)
	res := EvalALU(Instr{Op: OpFMul}, tiny, small, 0)
	if !IsSubnormalBits(res) {
		t.Fatal("test setup: product should be subnormal")
	}
	if !FPSlowPath(OpFMul, tiny, small, res) {
		t.Error("fmul producing subnormal should be slow")
	}
	if FPSlowPath(OpFMul, math.Float64bits(2), math.Float64bits(3), EvalALU(Instr{Op: OpFMul}, math.Float64bits(2), math.Float64bits(3), 0)) {
		t.Error("normal fmul should be fast")
	}
	if FPSlowPath(OpAdd, sub, sub, sub) {
		t.Error("integer ops never take the FP slow path")
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op     Op
		rs, rt uint64
		want   bool
	}{
		{OpBeq, 5, 5, true},
		{OpBeq, 5, 6, false},
		{OpBne, 5, 6, true},
		{OpBlt, ^uint64(0), 1, true}, // -1 < 1 signed
		{OpBge, 1, ^uint64(0), true}, // 1 >= -1 signed
		{OpJmp, 0, 0, true},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.rs, c.rt); got != c.want {
			t.Errorf("BranchTaken(%v, %d, %d) = %v, want %v", c.op, c.rs, c.rt, got, c.want)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpMovI, Rd: R1, Imm: 5}, "movi r1, 5"},
		{Instr{Op: OpLoad, Rd: R2, Rs: R3, Imm: 8}, "ld r2, 8(r3)"},
		{Instr{Op: OpStore, Rt: R2, Rs: R3, Imm: 8}, "st r2, 8(r3)"},
		{Instr{Op: OpBlt, Rs: R1, Rt: R2, Target: 7}, "blt r1, r2, @7"},
		{Instr{Op: OpJmp, Target: 3}, "jmp @3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEvalALUAlgebraicProperties(t *testing.T) {
	// Property checks over the shared ALU evaluator.
	add := func(a, b uint64) bool {
		x := EvalALU(Instr{Op: OpAdd}, a, b, 0)
		y := EvalALU(Instr{Op: OpAdd}, b, a, 0)
		return x == y // commutativity
	}
	if err := quick.Check(add, nil); err != nil {
		t.Error(err)
	}
	xorInv := func(a, b uint64) bool {
		x := EvalALU(Instr{Op: OpXor}, a, b, 0)
		return EvalALU(Instr{Op: OpXor}, x, b, 0) == a // involution
	}
	if err := quick.Check(xorInv, nil); err != nil {
		t.Error(err)
	}
	shifts := func(a uint64, s uint8) bool {
		n := uint64(s) & 63
		l := EvalALU(Instr{Op: OpShl}, a, n, 0)
		return l == a<<n
	}
	if err := quick.Check(shifts, nil); err != nil {
		t.Error(err)
	}
	divMul := func(a uint64, b uint64) bool {
		if b == 0 {
			return EvalALU(Instr{Op: OpDiv}, a, b, 0) == 0
		}
		q := EvalALU(Instr{Op: OpDiv}, a, b, 0)
		r := int64(a) - int64(q)*int64(b)
		// |remainder| < |divisor| for Go truncated division.
		ab := int64(b)
		if ab < 0 {
			ab = -ab
		}
		ar := r
		if ar < 0 {
			ar = -ar
		}
		return ar < ab
	}
	if err := quick.Check(divMul, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalALUFtoIClamps(t *testing.T) {
	huge := math.Float64bits(1e300)
	if got := EvalALU(Instr{Op: OpFtoI}, huge, 0, 0); got != uint64(math.MaxInt64) {
		t.Fatalf("ftoi(1e300) = %#x, want MaxInt64", got)
	}
	negHuge := math.Float64bits(-1e300)
	if got := EvalALU(Instr{Op: OpFtoI}, negHuge, 0, 0); got != uint64(1)<<63 {
		t.Fatalf("ftoi(-1e300) = %#x, want MinInt64", got)
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on undefined label")
		}
	}()
	NewBuilder().Jmp("nowhere").MustBuild()
}
