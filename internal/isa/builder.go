package isa

import "fmt"

// Builder assembles a Program with symbolic labels, resolving forward
// references at Build time. Methods append one instruction each and return
// the builder for chaining. The zero value is not usable; call NewBuilder.
type Builder struct {
	instrs []Instr
	labels map[string]int
	// fixups records instruction indices whose Target must be patched to
	// the final location of the named label.
	fixups map[int]string
	err    error
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

// Label defines a label at the current position. Defining the same label
// twice is an error reported by Build.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.instrs)
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("isa: "+format, args...)
	}
}

func (b *Builder) emit(in Instr) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

func (b *Builder) emitBranch(op Op, rs, rt Reg, label string) *Builder {
	b.fixups[len(b.instrs)] = label
	return b.emit(Instr{Op: op, Rs: rs, Rt: rt})
}

// Nop appends a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNop}) }

// Halt appends a halt.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: OpHalt}) }

// MovI appends rd = imm.
func (b *Builder) MovI(rd Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpMovI, Rd: rd, Imm: imm})
}

// AddI appends rd = rs + imm.
func (b *Builder) AddI(rd, rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpAddI, Rd: rd, Rs: rs, Imm: imm})
}

// Add appends rd = rs + rt.
func (b *Builder) Add(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpAdd, Rd: rd, Rs: rs, Rt: rt})
}

// Sub appends rd = rs - rt.
func (b *Builder) Sub(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpSub, Rd: rd, Rs: rs, Rt: rt})
}

// Mul appends rd = rs * rt.
func (b *Builder) Mul(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpMul, Rd: rd, Rs: rs, Rt: rt})
}

// Div appends rd = rs / rt.
func (b *Builder) Div(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpDiv, Rd: rd, Rs: rs, Rt: rt})
}

// And appends rd = rs & rt.
func (b *Builder) And(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpAnd, Rd: rd, Rs: rs, Rt: rt})
}

// Or appends rd = rs | rt.
func (b *Builder) Or(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpOr, Rd: rd, Rs: rs, Rt: rt})
}

// Xor appends rd = rs ^ rt.
func (b *Builder) Xor(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpXor, Rd: rd, Rs: rs, Rt: rt})
}

// Shl appends rd = rs << rt.
func (b *Builder) Shl(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpShl, Rd: rd, Rs: rs, Rt: rt})
}

// Shr appends rd = rs >> rt.
func (b *Builder) Shr(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpShr, Rd: rd, Rs: rs, Rt: rt})
}

// FAdd appends rd = rs + rt (float64).
func (b *Builder) FAdd(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpFAdd, Rd: rd, Rs: rs, Rt: rt})
}

// FSub appends rd = rs - rt (float64).
func (b *Builder) FSub(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpFSub, Rd: rd, Rs: rs, Rt: rt})
}

// FMul appends rd = rs * rt (float64).
func (b *Builder) FMul(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpFMul, Rd: rd, Rs: rs, Rt: rt})
}

// FDiv appends rd = rs / rt (float64).
func (b *Builder) FDiv(rd, rs, rt Reg) *Builder {
	return b.emit(Instr{Op: OpFDiv, Rd: rd, Rs: rs, Rt: rt})
}

// FSqrt appends rd = sqrt(rs) (float64).
func (b *Builder) FSqrt(rd, rs Reg) *Builder {
	return b.emit(Instr{Op: OpFSqrt, Rd: rd, Rs: rs})
}

// ItoF appends rd = float64(int64(rs)).
func (b *Builder) ItoF(rd, rs Reg) *Builder {
	return b.emit(Instr{Op: OpItoF, Rd: rd, Rs: rs})
}

// FtoI appends rd = int64(float64(rs)).
func (b *Builder) FtoI(rd, rs Reg) *Builder {
	return b.emit(Instr{Op: OpFtoI, Rd: rd, Rs: rs})
}

// Load appends rd = mem64[rs + imm].
func (b *Builder) Load(rd, rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpLoad, Rd: rd, Rs: rs, Imm: imm})
}

// LoadB appends rd = mem8[rs + imm].
func (b *Builder) LoadB(rd, rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpLoadB, Rd: rd, Rs: rs, Imm: imm})
}

// Store appends mem64[rs + imm] = rt.
func (b *Builder) Store(rt, rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpStore, Rt: rt, Rs: rs, Imm: imm})
}

// StoreB appends mem8[rs + imm] = rt.
func (b *Builder) StoreB(rt, rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpStoreB, Rt: rt, Rs: rs, Imm: imm})
}

// Beq appends a branch to label if rs == rt.
func (b *Builder) Beq(rs, rt Reg, label string) *Builder {
	return b.emitBranch(OpBeq, rs, rt, label)
}

// Bne appends a branch to label if rs != rt.
func (b *Builder) Bne(rs, rt Reg, label string) *Builder {
	return b.emitBranch(OpBne, rs, rt, label)
}

// Blt appends a branch to label if rs < rt (signed).
func (b *Builder) Blt(rs, rt Reg, label string) *Builder {
	return b.emitBranch(OpBlt, rs, rt, label)
}

// Bge appends a branch to label if rs >= rt (signed).
func (b *Builder) Bge(rs, rt Reg, label string) *Builder {
	return b.emitBranch(OpBge, rs, rt, label)
}

// Jmp appends an unconditional branch to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emitBranch(OpJmp, 0, 0, label)
}

// Flush appends a clflush of the line containing rs + imm.
func (b *Builder) Flush(rs Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpFlush, Rs: rs, Imm: imm})
}

// RdCyc appends rd = current cycle.
func (b *Builder) RdCyc(rd Reg) *Builder {
	return b.emit(Instr{Op: OpRdCyc, Rd: rd})
}

// Raw appends a pre-constructed instruction verbatim.
func (b *Builder) Raw(in Instr) *Builder { return b.emit(in) }

// Build resolves labels and returns the finished, validated program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	instrs := make([]Instr, len(b.instrs))
	copy(instrs, b.instrs)
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q at instruction %d", label, idx)
		}
		instrs[idx].Target = target
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	p := &Program{Instrs: instrs, Labels: labels}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for statically-known programs.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
