package isa

import (
	"errors"
	"math"
)

// IsSubnormalBits reports whether bits encodes a subnormal (denormal)
// float64: zero exponent with a non-zero mantissa. Subnormal operands and
// results put floating-point transmitters on their slow (microcoded) path,
// which is the operand-dependent timing channel from the paper's §I-A.
func IsSubnormalBits(bits uint64) bool {
	exp := (bits >> 52) & 0x7ff
	mant := bits & ((1 << 52) - 1)
	return exp == 0 && mant != 0
}

// FPSlowPath reports whether an FP transmitter with the given operand bits
// executes on the slow path. Following [Andrysco et al., S&P'15] both
// subnormal inputs and subnormal outputs trigger it; checking the inputs
// plus the computed result covers both.
func FPSlowPath(op Op, rs, rt, result uint64) bool {
	switch op {
	case OpFMul, OpFDiv:
		return IsSubnormalBits(rs) || IsSubnormalBits(rt) || IsSubnormalBits(result)
	case OpFSqrt:
		return IsSubnormalBits(rs) || IsSubnormalBits(result)
	}
	return false
}

// EvalALU computes the result of a non-memory, non-branch, register-writing
// instruction given its source operand values. cycle supplies the value for
// OpRdCyc. Both the functional executor and the cycle-level pipeline call
// this single definition so their architectural semantics cannot diverge.
func EvalALU(in Instr, rs, rt, cycle uint64) uint64 {
	f := func(x uint64) float64 { return math.Float64frombits(x) }
	fb := math.Float64bits
	switch in.Op {
	case OpMovI:
		return uint64(in.Imm)
	case OpAddI:
		return rs + uint64(in.Imm)
	case OpAdd:
		return rs + rt
	case OpSub:
		return rs - rt
	case OpMul:
		return rs * rt
	case OpDiv:
		if rt == 0 {
			return 0
		}
		return uint64(int64(rs) / int64(rt))
	case OpAnd:
		return rs & rt
	case OpOr:
		return rs | rt
	case OpXor:
		return rs ^ rt
	case OpShl:
		return rs << (rt & 63)
	case OpShr:
		return rs >> (rt & 63)
	case OpFAdd:
		return fb(f(rs) + f(rt))
	case OpFSub:
		return fb(f(rs) - f(rt))
	case OpFMul:
		return fb(f(rs) * f(rt))
	case OpFDiv:
		return fb(f(rs) / f(rt))
	case OpFSqrt:
		return fb(math.Sqrt(f(rs)))
	case OpItoF:
		return fb(float64(int64(rs)))
	case OpFtoI:
		v := f(rs)
		switch {
		case math.IsNaN(v):
			return 0
		case v >= float64(math.MaxInt64):
			// Clamp out-of-range conversions: Go leaves them
			// implementation-specific, and the simulator must be
			// deterministic across platforms.
			return uint64(math.MaxInt64)
		case v <= float64(math.MinInt64):
			return uint64(1) << 63 // math.MinInt64
		}
		return uint64(int64(v))
	case OpRdCyc:
		return cycle
	}
	return 0
}

// BranchTaken evaluates a conditional branch predicate.
func BranchTaken(op Op, rs, rt uint64) bool {
	switch op {
	case OpBeq:
		return rs == rt
	case OpBne:
		return rs != rt
	case OpBlt:
		return int64(rs) < int64(rt)
	case OpBge:
		return int64(rs) >= int64(rt)
	case OpJmp:
		return true
	}
	return false
}

// ExecResult summarises a functional execution.
type ExecResult struct {
	Regs      [NumRegs]uint64
	Instrs    uint64 // dynamic instructions executed (including the halt)
	Halted    bool   // false if the step budget ran out first
	LoadCount uint64
	StoreCount,
	BranchCount uint64
}

// ErrStepBudget is returned by Exec when the program did not halt within
// the given number of dynamic instructions.
var ErrStepBudget = errors.New("isa: step budget exhausted before halt")

// Exec runs the program on the golden functional model: in-order,
// one-instruction-at-a-time, no speculation, no timing. It mutates mem and
// returns the final architectural registers. regs gives initial register
// values (may be nil for all-zero). OpRdCyc yields the dynamic instruction
// count, which is the functional model's only notion of time.
//
// Exec is the reference against which every cycle-level configuration is
// differentially tested: a correct defense changes timing, never
// architectural results.
func Exec(p *Program, mem *Memory, regs *[NumRegs]uint64, maxInstrs uint64) (ExecResult, error) {
	var r ExecResult
	if regs != nil {
		r.Regs = *regs
	}
	pc := 0
	for r.Instrs < maxInstrs {
		in := p.At(pc)
		r.Instrs++
		switch {
		case in.Op == OpHalt:
			r.Halted = true
			return r, nil
		case in.Op == OpNop || in.Op == OpFlush:
			pc++
		case in.Op.IsBranch():
			r.BranchCount++
			if BranchTaken(in.Op, r.Regs[in.Rs], r.Regs[in.Rt]) {
				pc = in.Target
			} else {
				pc++
			}
		case in.Op == OpLoad:
			r.LoadCount++
			r.Regs[in.Rd] = mem.Read64(r.Regs[in.Rs] + uint64(in.Imm))
			pc++
		case in.Op == OpLoadB:
			r.LoadCount++
			r.Regs[in.Rd] = uint64(mem.Read8(r.Regs[in.Rs] + uint64(in.Imm)))
			pc++
		case in.Op == OpStore:
			r.StoreCount++
			mem.Write64(r.Regs[in.Rs]+uint64(in.Imm), r.Regs[in.Rt])
			pc++
		case in.Op == OpStoreB:
			r.StoreCount++
			mem.Write8(r.Regs[in.Rs]+uint64(in.Imm), byte(r.Regs[in.Rt]))
			pc++
		default:
			r.Regs[in.Rd] = EvalALU(in, r.Regs[in.Rs], r.Regs[in.Rt], r.Instrs)
			pc++
		}
	}
	return r, ErrStepBudget
}
