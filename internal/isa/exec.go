package isa

import "math"

// IsSubnormalBits reports whether bits encodes a subnormal (denormal)
// float64: zero exponent with a non-zero mantissa. Subnormal operands and
// results put floating-point transmitters on their slow (microcoded) path,
// which is the operand-dependent timing channel from the paper's §I-A.
func IsSubnormalBits(bits uint64) bool {
	exp := (bits >> 52) & 0x7ff
	mant := bits & ((1 << 52) - 1)
	return exp == 0 && mant != 0
}

// FPSlowPath reports whether an FP transmitter with the given operand bits
// executes on the slow path. Following [Andrysco et al., S&P'15] both
// subnormal inputs and subnormal outputs trigger it; checking the inputs
// plus the computed result covers both.
func FPSlowPath(op Op, rs, rt, result uint64) bool {
	switch op {
	case OpFMul, OpFDiv:
		return IsSubnormalBits(rs) || IsSubnormalBits(rt) || IsSubnormalBits(result)
	case OpFSqrt:
		return IsSubnormalBits(rs) || IsSubnormalBits(result)
	}
	return false
}

// EvalALU computes the result of a non-memory, non-branch, register-writing
// instruction given its source operand values. cycle supplies the value for
// OpRdCyc. Both the functional executor and the cycle-level pipeline call
// this single definition so their architectural semantics cannot diverge.
func EvalALU(in Instr, rs, rt, cycle uint64) uint64 {
	f := func(x uint64) float64 { return math.Float64frombits(x) }
	fb := math.Float64bits
	switch in.Op {
	case OpMovI:
		return uint64(in.Imm)
	case OpAddI:
		return rs + uint64(in.Imm)
	case OpAdd:
		return rs + rt
	case OpSub:
		return rs - rt
	case OpMul:
		return rs * rt
	case OpDiv:
		if rt == 0 {
			return 0
		}
		return uint64(int64(rs) / int64(rt))
	case OpAnd:
		return rs & rt
	case OpOr:
		return rs | rt
	case OpXor:
		return rs ^ rt
	case OpShl:
		return rs << (rt & 63)
	case OpShr:
		return rs >> (rt & 63)
	case OpFAdd:
		return fb(f(rs) + f(rt))
	case OpFSub:
		return fb(f(rs) - f(rt))
	case OpFMul:
		return fb(f(rs) * f(rt))
	case OpFDiv:
		return fb(f(rs) / f(rt))
	case OpFSqrt:
		return fb(math.Sqrt(f(rs)))
	case OpItoF:
		return fb(float64(int64(rs)))
	case OpFtoI:
		v := f(rs)
		switch {
		case math.IsNaN(v):
			return 0
		case v >= float64(math.MaxInt64):
			// Clamp out-of-range conversions: Go leaves them
			// implementation-specific, and the simulator must be
			// deterministic across platforms.
			return uint64(math.MaxInt64)
		case v <= float64(math.MinInt64):
			return uint64(1) << 63 // math.MinInt64
		}
		return uint64(int64(v))
	case OpRdCyc:
		return cycle
	}
	return 0
}

// BranchTaken evaluates a conditional branch predicate.
func BranchTaken(op Op, rs, rt uint64) bool {
	switch op {
	case OpBeq:
		return rs == rt
	case OpBne:
		return rs != rt
	case OpBlt:
		return int64(rs) < int64(rt)
	case OpBge:
		return int64(rs) >= int64(rt)
	case OpJmp:
		return true
	}
	return false
}

// LoadValue reads the architectural value a load of the given opcode
// returns from addr. Like EvalALU/BranchTaken this is the single
// definition of the opcode's memory semantics, shared by the cycle-level
// pipeline and the functional emulator (internal/arch).
func LoadValue(m *Memory, op Op, addr uint64) uint64 {
	if op == OpLoadB {
		return uint64(m.Read8(addr))
	}
	return m.Read64(addr)
}

// StoreValue applies the architectural effect of a store of the given
// opcode: val's low byte for OpStoreB, the full word otherwise.
func StoreValue(m *Memory, op Op, addr, val uint64) {
	if op == OpStoreB {
		m.Write8(addr, byte(val))
		return
	}
	m.Write64(addr, val)
}
