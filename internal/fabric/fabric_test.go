package fabric

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

// fastCfg keeps every timer short so breaker/hedge tests run in
// milliseconds. The prober is off: tests drive state transitions
// explicitly.
func fastCfg(peers ...string) Config {
	return Config{
		Peers:             peers,
		Timeout:           500 * time.Millisecond,
		HedgeDelay:        10 * time.Millisecond,
		BreakerBackoff:    30 * time.Millisecond,
		BreakerMaxBackoff: 200 * time.Millisecond,
		ProbeInterval:     -1,
	}
}

// cacheServer serves /cache/{key} from a fixed map, counting requests.
func cacheServer(t *testing.T, entries map[string]string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var reqs atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		if body, ok := entries[r.URL.Path]; ok {
			fmt.Fprint(w, body)
			return
		}
		http.Error(w, "unknown cache key", http.StatusNotFound)
	}))
	t.Cleanup(srv.Close)
	return srv, &reqs
}

func TestNilClientMisses(t *testing.T) {
	var c *Client
	if _, _, ok := c.Lookup(context.Background(), "k"); ok {
		t.Fatal("nil client returned a hit")
	}
	if c.Peers() != 0 || c.Available() != 0 || c.Snapshot() != nil {
		t.Fatal("nil client reported peers")
	}
	c.Close() // must not panic
	if New(Config{}) != nil {
		t.Fatal("New with no peers should return nil")
	}
}

func TestLookupHitAndMiss(t *testing.T) {
	srv, _ := cacheServer(t, map[string]string{"/cache/k1": "body-1"})
	c := New(fastCfg(srv.URL))
	defer c.Close()

	body, url, ok := c.Lookup(context.Background(), "k1")
	if !ok || string(body) != "body-1" || url != srv.URL {
		t.Fatalf("hit = %q %q %v, want body-1 from %s", body, url, ok, srv.URL)
	}
	if _, _, ok := c.Lookup(context.Background(), "absent"); ok {
		t.Fatal("404 key returned a hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 0 errors", st)
	}
	// A 404 is an authoritative healthy miss, never breaker food.
	if ps := c.Snapshot()[0]; ps.State != "ok" || ps.ConsecutiveFails != 0 {
		t.Fatalf("peer state after 404 = %+v, want closed breaker", ps)
	}
}

func TestDownPeerFallsThroughToNext(t *testing.T) {
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close() // connection refused from here on
	up, _ := cacheServer(t, map[string]string{"/cache/k1": "body-1"})

	c := New(fastCfg(down.URL, up.URL))
	defer c.Close()
	body, url, ok := c.Lookup(context.Background(), "k1")
	if !ok || string(body) != "body-1" || url != up.URL {
		t.Fatalf("lookup with one dead peer = %q %q %v, want fallthrough hit", body, url, ok)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want the hit recorded", st)
	}
}

func TestValidateRejectionIsAPeerFailure(t *testing.T) {
	srv, _ := cacheServer(t, map[string]string{"/cache/k1": "garbage"})
	cfg := fastCfg(srv.URL)
	cfg.Validate = func(key string, body []byte) error {
		return fmt.Errorf("checksum mismatch for %s", key)
	}
	c := New(cfg)
	defer c.Close()
	if _, _, ok := c.Lookup(context.Background(), "k1"); ok {
		t.Fatal("corrupt body passed validation")
	}
	st := c.Stats()
	if st.Errors == 0 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want the rejection counted as an error", st)
	}
}

func TestBreakerOpensHalfOpensAndCloses(t *testing.T) {
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close()
	c := New(fastCfg(down.URL))
	defer c.Close()

	// DefaultBreakerOpens consecutive failures open the breaker.
	for i := 0; i < DefaultBreakerOpens; i++ {
		if _, _, ok := c.Lookup(context.Background(), "k"); ok {
			t.Fatal("dead peer returned a hit")
		}
	}
	if ps := c.Snapshot()[0]; ps.State != "open" {
		t.Fatalf("peer state after %d failures = %q, want open", DefaultBreakerOpens, ps.State)
	}
	if c.Available() != 0 {
		t.Fatal("open breaker still counted available")
	}
	// While open, lookups don't even dial: request count stays flat.
	errsBefore := c.Stats().Errors
	if _, _, ok := c.Lookup(context.Background(), "k"); ok {
		t.Fatal("open breaker returned a hit")
	}
	if errs := c.Stats().Errors; errs != errsBefore {
		t.Fatalf("lookup through an open breaker dialed the peer (%d -> %d errors)", errsBefore, errs)
	}

	// Past the backoff the breaker half-opens and admits a trial.
	time.Sleep(2 * c.cfg.BreakerBackoff)
	if ps := c.Snapshot()[0]; ps.State != "half-open" {
		t.Fatalf("peer state past backoff = %q, want half-open", ps.State)
	}
	if c.Available() != 1 {
		t.Fatal("half-open breaker not available for a trial")
	}

	// A recovered peer closes the breaker on the next successful trial.
	revived, _ := cacheServer(t, map[string]string{"/cache/k": "body"})
	c.peers[0].url = revived.URL // swap the address: same peer, now alive
	time.Sleep(2 * c.cfg.BreakerBackoff)
	if _, _, ok := c.Lookup(context.Background(), "k"); !ok {
		t.Fatal("half-open trial against a live peer missed")
	}
	if ps := c.Snapshot()[0]; ps.State != "ok" || ps.ConsecutiveFails != 0 {
		t.Fatalf("peer state after successful trial = %+v, want closed", ps)
	}
}

func TestHedgedLookupWinsOnSlowPrimary(t *testing.T) {
	fast, _ := cacheServer(t, map[string]string{"/cache/khedge": "fast-body"})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		fmt.Fprint(w, "slow-body")
	}))
	defer slow.Close()

	// Make the slow server the rendezvous primary for the key; if the
	// hash happens to rank fast first the test still passes but exercises
	// nothing, so pick whichever ordering puts slow first by probing both.
	c := New(fastCfg(slow.URL, fast.URL))
	defer c.Close()
	ranked := c.rank("khedge")
	if ranked[0].url != slow.URL {
		// Fall back to a key that ranks slow first.
		for i := 0; i < 64; i++ {
			k := fmt.Sprintf("khedge-%d", i)
			if c.rank(k)[0].url == slow.URL {
				c.Close()
				fast2, _ := cacheServer(t, map[string]string{"/cache/" + k: "fast-body"})
				c = New(fastCfg(slow.URL, fast2.URL))
				body, _, ok := c.Lookup(context.Background(), k)
				if !ok || string(body) != "fast-body" {
					t.Fatalf("hedged lookup = %q %v, want fast-body", body, ok)
				}
				if c.Stats().Hedges == 0 {
					t.Fatal("no hedge recorded despite slow primary")
				}
				return
			}
		}
		t.Fatal("could not find a key ranking the slow peer first")
	}
	body, _, ok := c.Lookup(context.Background(), "khedge")
	if !ok || string(body) != "fast-body" {
		t.Fatalf("hedged lookup = %q %v, want fast-body from the hedge", body, ok)
	}
	if c.Stats().Hedges == 0 {
		t.Fatal("no hedge recorded despite slow primary")
	}
}

func TestRendezvousRankIsStableAndSpread(t *testing.T) {
	c := New(fastCfg("http://a", "http://b", "http://c"))
	defer c.Close()
	// Stable: same key, same order, every time.
	for i := 0; i < 10; i++ {
		a := urls(c.rank("some-key"))
		b := urls(c.rank("some-key"))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("rank not deterministic: %v vs %v", a, b)
		}
	}
	// Agreement is order-independent: a client configured with the peers
	// in a different order ranks each key identically.
	c2 := New(fastCfg("http://c", "http://a", "http://b"))
	defer c2.Close()
	first := map[string]int{}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%d", i)
		r1, r2 := urls(c.rank(k)), urls(c2.rank(k))
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("clients disagree on rank for %s: %v vs %v", k, r1, r2)
		}
		first[r1[0]]++
	}
	// Spread: no peer owns everything.
	for u, n := range first {
		if n == 64 {
			t.Fatalf("peer %s ranked first for all keys — not spreading", u)
		}
	}
}

func TestInjectedPeerFaultsResolveToMisses(t *testing.T) {
	srv, _ := cacheServer(t, map[string]string{"/cache/k1": "body-1"})
	for _, spec := range []string{"seed=7,peer-err=1", "seed=7,peer-corrupt=1"} {
		inj, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastCfg(srv.URL)
		cfg.Faults = inj
		cfg.Validate = func(key string, body []byte) error {
			if string(body) != "body-1" {
				return fmt.Errorf("corrupt")
			}
			return nil
		}
		c := New(cfg)
		if _, _, ok := c.Lookup(context.Background(), "k1"); ok {
			t.Fatalf("%s: injected fault still produced a hit", spec)
		}
		if st := c.Stats(); st.Errors == 0 {
			t.Fatalf("%s: fault not counted as error: %+v", spec, st)
		}
		c.Close()
	}
	// peer-slow below the timeout delays but still answers.
	inj, err := faults.Parse("seed=7,peer-slow=1,peer-slow-delay=20ms")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg(srv.URL)
	cfg.Faults = inj
	c := New(cfg)
	defer c.Close()
	body, _, ok := c.Lookup(context.Background(), "k1")
	if !ok || string(body) != "body-1" {
		t.Fatalf("slow peer under the timeout = %q %v, want a delayed hit", body, ok)
	}
}

func TestProbeClosesBreakerOnRecovery(t *testing.T) {
	srv, _ := cacheServer(t, map[string]string{})
	cfg := fastCfg(srv.URL)
	cfg.ProbeInterval = 20 * time.Millisecond
	c := New(cfg)
	defer c.Close()
	// Force the breaker open, then let the prober observe the healthy
	// /healthz (any response counts) and close it.
	for i := 0; i < DefaultBreakerOpens; i++ {
		c.peers[0].fail(time.Now(), c.cfg)
	}
	if ps := c.Snapshot()[0]; ps.State != "open" {
		t.Fatalf("setup: breaker state %q, want open", ps.State)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if ps := c.Snapshot()[0]; ps.State == "ok" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("prober never closed the breaker: %+v", c.Snapshot()[0])
}

func urls(ps []*peer) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.url
	}
	return out
}
