// Package fabric is the failure-aware cache-peering layer of the sweep
// fabric: a client that answers content-addressed cache misses from a
// static set of peer nodes before the local node falls back to
// simulating.
//
// The content-addressed key schema (SHA-256 over the normalized cell
// spec, see simsvc.RunSpec.CacheKey) makes every entry
// location-independent: any node that holds the key holds the answer.
// Peers are ranked per key by rendezvous (highest-random-weight)
// hashing, so every node agrees on which peer is the likely owner of a
// key without any coordination, and the load of misses spreads evenly.
//
// The client is built for peers that fail: every peer carries a
// circuit breaker (consecutive failures open it; it reopens for trials
// after an exponentially-growing backoff), a background prober marks
// unreachable peers unhealthy and closes breakers when they return, and
// lookups are hedged — if the best-ranked peer has not answered within
// HedgeDelay, the second-ranked peer is asked concurrently, bounded by
// MaxFanout. Every failure mode (connection refused, timeout, HTTP
// error, corrupt body) resolves to a cache miss, never an error: the
// caller simulates locally and the sweep proceeds.
package fabric

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
)

// Defaults for the zero-value Config knobs.
const (
	DefaultTimeout        = 2 * time.Second
	DefaultHedgeDelay     = 75 * time.Millisecond
	DefaultMaxFanout      = 2
	DefaultBreakerOpens   = 3
	DefaultBreakerBackoff = time.Second
	DefaultBreakerMax     = 30 * time.Second
	DefaultProbeInterval  = 5 * time.Second
)

// maxEntryBytes bounds a peer response body (a single encoded cell
// result is a few KB; this is a defensive ceiling, not a tuning knob).
const maxEntryBytes = 32 << 20

// Config configures a peering client.
type Config struct {
	// Peers is the static peer list (base URLs, e.g.
	// "http://10.0.0.2:8347"). Empty: New returns nil, and a nil *Client
	// answers every Lookup with a miss at the cost of one nil check.
	Peers []string
	// Timeout bounds each peer HTTP request (0: DefaultTimeout).
	Timeout time.Duration
	// HedgeDelay is how long the best-ranked peer gets to answer before
	// the lookup is hedged to the next-ranked peer (0:
	// DefaultHedgeDelay).
	HedgeDelay time.Duration
	// MaxFanout bounds peers consulted (sequentially or hedged) per
	// lookup (0: DefaultMaxFanout).
	MaxFanout int
	// BreakerThreshold opens a peer's circuit breaker after this many
	// consecutive failures (0: DefaultBreakerOpens).
	BreakerThreshold int
	// BreakerBackoff is the initial open duration, doubling per
	// consecutive open up to BreakerMaxBackoff (0: DefaultBreakerBackoff
	// / DefaultBreakerMax).
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	// ProbeInterval is the background health-probe period; a reachable
	// /healthz closes the peer's breaker (0: DefaultProbeInterval;
	// negative: no prober — breakers then reopen only via the
	// half-open-trial path).
	ProbeInterval time.Duration
	// Validate, when non-nil, vets a 200 response body before it is
	// returned; an error counts as a peer failure (corrupt response) and
	// the lookup falls through. The caller owns the format of /cache
	// bodies, so it owns validation too.
	Validate func(key string, body []byte) error
	// Faults injects peer-down / peer-slow / peer-corrupt chaos (nil in
	// production: zero cost).
	Faults *faults.Injector
	// Event, when non-nil, receives observability events
	// (kind, detail) — peer errors, breaker transitions, probe state
	// changes.
	Event func(kind, detail string)
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = DefaultHedgeDelay
	}
	if c.MaxFanout <= 0 {
		c.MaxFanout = DefaultMaxFanout
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerOpens
	}
	if c.BreakerBackoff <= 0 {
		c.BreakerBackoff = DefaultBreakerBackoff
	}
	if c.BreakerMaxBackoff <= 0 {
		c.BreakerMaxBackoff = DefaultBreakerMax
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	return c
}

// PeerStatus is one peer's operational state, served via /healthz.
type PeerStatus struct {
	URL string `json:"url"`
	// State is "ok" (breaker closed), "open" (breaker open, peer
	// skipped) or "half-open" (open but past backoff: next lookup is a
	// trial).
	State string `json:"state"`
	// Healthy is the last background probe's verdict (true before the
	// first probe completes, so an unprobed peer is not shunned).
	Healthy          bool   `json:"healthy"`
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
	Hits             uint64 `json:"hits"`
	Misses           uint64 `json:"misses"`
	Errors           uint64 `json:"errors"`
}

// Stats aggregates lookup-level counters.
type Stats struct {
	Hits, Misses, Errors, Hedges uint64
}

type peer struct {
	url string

	mu        sync.Mutex
	fails     int           // consecutive failures
	openUntil time.Time     // breaker open until (zero: closed)
	backoff   time.Duration // next open duration
	unhealthy bool          // last probe failed

	hits, misses, errors atomic.Uint64
}

// allow reports whether the breaker admits a request now: closed, or
// open-past-backoff (a half-open trial).
func (p *peer) allow(now time.Time, threshold int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fails < threshold || now.After(p.openUntil)
}

// ok closes the breaker.
func (p *peer) ok() {
	p.mu.Lock()
	p.fails = 0
	p.openUntil = time.Time{}
	p.backoff = 0
	p.mu.Unlock()
}

// fail records a failure; at the threshold the breaker opens for an
// exponentially-growing backoff. Reports whether this call opened it.
func (p *peer) fail(now time.Time, cfg Config) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails++
	if p.fails < cfg.BreakerThreshold {
		return false
	}
	if p.backoff == 0 {
		p.backoff = cfg.BreakerBackoff
	}
	opened := now.After(p.openUntil)
	p.openUntil = now.Add(p.backoff)
	if p.backoff *= 2; p.backoff > cfg.BreakerMaxBackoff {
		p.backoff = cfg.BreakerMaxBackoff
	}
	return opened
}

func (p *peer) status(now time.Time, threshold int) PeerStatus {
	p.mu.Lock()
	st := PeerStatus{
		URL:              p.url,
		State:            "ok",
		Healthy:          !p.unhealthy,
		ConsecutiveFails: p.fails,
	}
	if p.fails >= threshold {
		if now.After(p.openUntil) {
			st.State = "half-open"
		} else {
			st.State = "open"
		}
	}
	p.mu.Unlock()
	st.Hits = p.hits.Load()
	st.Misses = p.misses.Load()
	st.Errors = p.errors.Load()
	return st
}

// Client performs failure-aware peer cache lookups. A nil *Client is
// valid and always misses.
type Client struct {
	cfg   Config
	hc    *http.Client
	peers []*peer

	hits, misses, errors atomic.Uint64
	hedges               atomic.Uint64

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a client for cfg and starts its background health prober.
// Returns nil when cfg.Peers is empty.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	if len(cfg.Peers) == 0 {
		return nil
	}
	c := &Client{
		cfg:  cfg,
		hc:   &http.Client{Timeout: cfg.Timeout},
		stop: make(chan struct{}),
	}
	for _, u := range cfg.Peers {
		c.peers = append(c.peers, &peer{url: strings.TrimRight(u, "/")})
	}
	if cfg.ProbeInterval > 0 {
		c.wg.Add(1)
		go c.probeLoop()
	}
	return c
}

// Close stops the health prober. Lookups in flight complete; later
// lookups still work (probing just stops).
func (c *Client) Close() {
	if c == nil {
		return
	}
	c.closeOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Peers returns the configured peer count (0 on nil).
func (c *Client) Peers() int {
	if c == nil {
		return 0
	}
	return len(c.peers)
}

// Stats snapshots the lookup-level counters (zeroes on nil).
func (c *Client) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Errors: c.errors.Load(),
		Hedges: c.hedges.Load(),
	}
}

// Snapshot reports per-peer state for /healthz (nil on nil).
func (c *Client) Snapshot() []PeerStatus {
	if c == nil {
		return nil
	}
	now := time.Now()
	out := make([]PeerStatus, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, p.status(now, c.cfg.BreakerThreshold))
	}
	return out
}

// Available counts peers whose breaker currently admits requests.
func (c *Client) Available() int {
	if c == nil {
		return 0
	}
	now := time.Now()
	n := 0
	for _, p := range c.peers {
		if p.allow(now, c.cfg.BreakerThreshold) {
			n++
		}
	}
	return n
}

// rendezvousScore is the shared HRW hash: fnv64a over "key|member".
func rendezvousScore(key, member string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	io.WriteString(h, "|")
	io.WriteString(h, member)
	return h.Sum64()
}

// Rank orders members for key by rendezvous (highest-random-weight)
// hashing. Every node that evaluates the same (key, member set) gets
// the same order, so a cluster agrees on each key's owner — Rank(...)
// [0] — with no coordination or shared state. The members slice is not
// modified.
func Rank(key string, members []string) []string {
	out := append([]string(nil), members...)
	sort.SliceStable(out, func(a, b int) bool {
		return rendezvousScore(key, out[a]) > rendezvousScore(key, out[b])
	})
	return out
}

// rank orders the peers for key by rendezvous hashing: every node
// hashes (key, peer) identically, so the cluster agrees on each key's
// preferred owner with no coordination or shared state.
func (c *Client) rank(key string) []*peer {
	type scored struct {
		p *peer
		s uint64
	}
	sc := make([]scored, len(c.peers))
	for i, p := range c.peers {
		sc[i] = scored{p: p, s: rendezvousScore(key, p.url)}
	}
	sort.Slice(sc, func(a, b int) bool { return sc[a].s > sc[b].s })
	out := make([]*peer, len(sc))
	for i, s := range sc {
		out[i] = s.p
	}
	return out
}

type lookupRes struct {
	body []byte
	url  string
	ok   bool
}

// Lookup asks the peers for key and returns the first validated body,
// with the answering peer's URL. Any failure — no peers, breakers all
// open, peers down, slow, or corrupt — is reported as a miss (false),
// never an error: the caller's fallback is local simulation.
func (c *Client) Lookup(ctx context.Context, key string) ([]byte, string, bool) {
	if c == nil {
		return nil, "", false
	}
	return c.LookupPath(ctx, key, "/cache/"+key, c.cfg.Validate)
}

// LookupPath is Lookup generalized to any content-addressed GET
// endpoint: the peers are still ranked (and their breakers tripped) by
// key, but the request path and the response validator are the
// caller's. This is how artifact peering (checkpoints, sample plans)
// reuses the same hedging + breaker machinery as result lookups.
func (c *Client) LookupPath(ctx context.Context, key, path string, validate func(key string, body []byte) error) ([]byte, string, bool) {
	if c == nil {
		return nil, "", false
	}
	now := time.Now()
	var cands []*peer
	for _, p := range c.rank(key) {
		if p.allow(now, c.cfg.BreakerThreshold) {
			cands = append(cands, p)
			if len(cands) == c.cfg.MaxFanout {
				break
			}
		}
	}
	if len(cands) == 0 {
		c.misses.Add(1)
		return nil, "", false
	}
	// Bound the whole lookup: worst case is every candidate timing out
	// in sequence, and the answer to "peers are slow" is local
	// simulation, not waiting.
	ctx, cancel := context.WithTimeout(ctx,
		time.Duration(len(cands))*c.cfg.Timeout+c.cfg.HedgeDelay)
	defer cancel()

	ch := make(chan lookupRes, len(cands))
	launch := func(p *peer) {
		go func() { ch <- c.fetch(ctx, p, key, path, validate) }()
	}
	launch(cands[0])
	inflight, next := 1, 1
	var hedge <-chan time.Time
	if len(cands) > 1 {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		hedge = t.C
	}
	for inflight > 0 {
		select {
		case r := <-ch:
			inflight--
			if r.ok {
				c.hits.Add(1)
				return r.body, r.url, true
			}
			if inflight == 0 && next < len(cands) {
				launch(cands[next])
				next++
				inflight++
			}
		case <-hedge:
			hedge = nil
			if next < len(cands) {
				c.hedges.Add(1)
				launch(cands[next])
				next++
				inflight++
			}
		case <-ctx.Done():
			c.misses.Add(1)
			return nil, "", false
		}
	}
	c.misses.Add(1)
	return nil, "", false
}

// fetch asks one peer for one key. Failures trip the peer's breaker; a
// 404 is an authoritative (healthy) miss.
func (c *Client) fetch(ctx context.Context, p *peer, key, path string, validate func(key string, body []byte) error) lookupRes {
	fail := func(why string) lookupRes {
		p.errors.Add(1)
		c.errors.Add(1)
		if p.fail(time.Now(), c.cfg) {
			c.event("peer-breaker-open", p.url)
		}
		c.event("peer-error", fmt.Sprintf("%s: %s", p.url, why))
		return lookupRes{}
	}
	if err := c.cfg.Faults.PeerErr(p.url, key); err != nil {
		return fail(err.Error())
	}
	if d := c.cfg.Faults.PeerDelay(p.url, key); d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return fail("injected delay exceeded lookup deadline")
		}
	}
	rctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, p.url+path, nil)
	if err != nil {
		return fail(err.Error())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fail(err.Error())
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxEntryBytes))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes))
		if err != nil {
			return fail(err.Error())
		}
		if c.cfg.Faults.PeerCorrupt(p.url, key) && len(body) > 0 {
			body[len(body)/2] ^= 0xff
		}
		if v := validate; v != nil {
			if err := v(key, body); err != nil {
				return fail("corrupt response: " + err.Error())
			}
		}
		p.ok()
		p.hits.Add(1)
		return lookupRes{body: body, url: p.url, ok: true}
	case resp.StatusCode == http.StatusNotFound:
		// The peer is healthy, it just does not hold the key.
		p.ok()
		p.misses.Add(1)
		return lookupRes{}
	default:
		return fail(fmt.Sprintf("HTTP %d", resp.StatusCode))
	}
}

// probeLoop periodically probes every peer's /healthz. Any HTTP
// response at all (even 503: a draining peer can still serve its
// cache) marks the peer healthy and closes its breaker, so recovered
// peers rejoin lookups without waiting for a half-open trial.
func (c *Client) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			for _, p := range c.peers {
				c.probe(p)
			}
		}
	}
}

func (c *Client) probe(p *peer) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := c.hc.Do(req)
	reachable := err == nil
	if reachable {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}
	p.mu.Lock()
	was := p.unhealthy
	p.unhealthy = !reachable
	p.mu.Unlock()
	if reachable {
		if was {
			c.event("peer-recovered", p.url)
		}
		p.ok()
	} else if !was {
		c.event("peer-unreachable", fmt.Sprintf("%s: %v", p.url, err))
	}
}

// event emits an observability event through the configured hook.
func (c *Client) event(kind, detail string) {
	if c.cfg.Event != nil {
		c.cfg.Event(kind, detail)
	}
}
