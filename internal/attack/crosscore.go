package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

// Cross-core attack layout (§II's CrossCore attacker): the attacker runs on
// a different core and observes the victim's transient transmission through
// the *shared* L3 and the coherence directory, not through private caches.
// The two programs synchronise through flag lines in shared memory, which
// also exercises the MESI + consistency-squash machinery end to end.
const (
	ccFlagGo   = 0x8000 // attacker -> victim: round k is armed (value k+1)
	ccFlagDone = 0x8040 // victim -> attacker: round k transmitted (value k+1)
)

// buildCrossCoreVictim generates the victim: for each secret byte it waits
// for the attacker's signal, flushes the probe array and the bound chain
// (standing in for the victim's natural cache churn), runs the 8-train +
// 1-out-of-bounds gadget rounds, and signals completion.
func buildCrossCoreVictim(numSecrets int) *isa.Program {
	b := isa.NewBuilder()
	b.MovI(rZero, 0)
	b.MovI(rSix, 6)
	b.MovI(rEight, 8)
	b.MovI(rNine, 9)
	b.MovI(rR256, probeLines)
	b.MovI(rBoundPtr, boundAddr)
	b.MovI(rBBase, probeArray)
	b.MovI(rABase, arrayA)
	b.MovI(rFifteen, lenA-1)
	b.MovI(rThree, 3)
	b.MovI(rAllOnes, -1)
	b.MovI(rK, 0)
	b.MovI(rNK, int64(numSecrets))
	b.MovI(isa.R31, ccFlagGo)

	b.Label("k_loop")
	// Wait for the attacker to arm round k (flagGo == k+1).
	b.AddI(rT1, rK, 1)
	b.Label("wait_go")
	b.Load(rT2, isa.R31, 0)
	b.Bne(rT2, rT1, "wait_go")

	b.MovI(rJ, 0)
	b.Label("j_loop")
	b.MovI(rI, 0)
	b.Label("flush_loop")
	b.Shl(rTmp, rI, rSix)
	b.Add(rTmp, rTmp, rBBase)
	b.Flush(rTmp, 0)
	b.AddI(rI, rI, 1)
	b.Blt(rI, rR256, "flush_loop")
	b.Flush(rBoundPtr, 0)
	b.Flush(rBoundPtr, 0x100)
	b.Flush(rBoundPtr, 0x200)
	// Branchless train/attack address select (see spectre.go).
	b.Shr(rSel, rJ, rThree)
	b.Sub(rMask, rZero, rSel)
	b.AddI(rOOB, rK, secretOff)
	b.And(rOOB, rOOB, rMask)
	b.Xor(rSel, rMask, rAllOnes)
	b.And(rAddr, rJ, rFifteen)
	b.And(rAddr, rAddr, rSel)
	b.Or(rAddr, rAddr, rOOB)

	// The gadget (identical shape to the SameThread victim).
	b.RdCyc(rSer)
	b.And(rSer, rSer, rZero)
	b.Add(rAddr, rAddr, rSer)
	b.Add(rTmp, rBoundPtr, rSer)
	b.Load(rBound, rTmp, 0)
	b.Load(rBound, rBound, 0)
	b.Load(rBound, rBound, 0)
	b.Bge(rAddr, rBound, "out")
	b.Add(rTmp, rABase, rAddr)
	b.LoadB(rSecret, rTmp, 0)
	b.Shl(rSecret, rSecret, rSix)
	b.Add(rTmp, rBBase, rSecret)
	b.Load(rProbe, rTmp, 0)
	b.Label("out")
	b.AddI(rJ, rJ, 1)
	b.Blt(rJ, rNine, "j_loop")

	// Signal the attacker: round k transmitted.
	b.AddI(rT1, rK, 1)
	b.MovI(rTmp, ccFlagDone)
	b.Store(rT1, rTmp, 0)
	b.AddI(rK, rK, 1)
	b.Blt(rK, rNK, "k_loop")
	b.Halt()
	return b.MustBuild()
}

// buildCrossCoreAttacker generates the attacker: it flushes its own probe
// copies, arms the round, waits for the victim, then times its own probe
// loads — a shared-L3 flush+reload.
func buildCrossCoreAttacker(numSecrets int) *isa.Program {
	b := isa.NewBuilder()
	b.MovI(rZero, 0)
	b.MovI(rSix, 6)
	b.MovI(rR256, probeLines)
	b.MovI(rBBase, probeArray)
	b.MovI(rResult, resultBase)
	b.MovI(rThree, 3)
	b.MovI(rK, 0)
	b.MovI(rNK, int64(numSecrets))
	b.MovI(isa.R31, ccFlagDone)

	b.Label("k_loop")
	// Drop our own stale probe copies, then arm the round.
	b.MovI(rI, 0)
	b.Label("flush_loop")
	b.Shl(rTmp, rI, rSix)
	b.Add(rTmp, rTmp, rBBase)
	b.Flush(rTmp, 0)
	b.AddI(rI, rI, 1)
	b.Blt(rI, rR256, "flush_loop")
	b.AddI(rT1, rK, 1)
	b.MovI(rTmp, ccFlagGo)
	b.Store(rT1, rTmp, 0)
	// Wait for the victim to finish transmitting round k.
	b.Label("wait_done")
	b.Load(rT2, isa.R31, 0)
	b.Bne(rT2, rT1, "wait_done")

	// Probe: time our own loads of every B line. The victim's transient
	// fill (if any) is visible as a shared-L3 hit instead of a DRAM miss.
	b.MovI(rBest, 1<<30)
	b.MovI(rBestIdx, 0)
	b.MovI(rI, 0)
	b.Label("probe_loop")
	b.Shl(rTmp, rI, rSix)
	b.Add(rTmp, rTmp, rBBase)
	b.RdCyc(rT1)
	b.And(rSer, rT1, rZero)
	b.Add(rTmp, rTmp, rSer)
	b.Load(rProbe, rTmp, 0)
	b.RdCyc(rT2)
	b.Sub(rDT, rT2, rT1)
	b.Bge(rDT, rBest, "not_best")
	b.Add(rBest, rDT, rZero)
	b.Add(rBestIdx, rI, rZero)
	b.Label("not_best")
	b.AddI(rI, rI, 1)
	b.Blt(rI, rR256, "probe_loop")

	b.Shl(rTmp, rK, rThree)
	b.Add(rTmp, rTmp, rResult)
	b.Store(rBestIdx, rTmp, 0)
	b.AddI(rK, rK, 1)
	b.Blt(rK, rNK, "k_loop")
	b.Halt()
	return b.MustBuild()
}

// RunCrossCore runs the two-core attack: victim on core 0, attacker on
// core 1, sharing one coherent memory system. Both cores run the same
// defense configuration.
func RunCrossCore(variant core.Variant, model pipeline.AttackModel, secret []byte) (Outcome, error) {
	victim := buildCrossCoreVictim(len(secret))
	attacker := buildCrossCoreAttacker(len(secret))
	init := func(m *isa.Memory) {
		m.Write64(boundAddr, boundAddr+0x100)
		m.Write64(boundAddr+0x100, boundAddr+0x200)
		m.Write64(boundAddr+0x200, lenA)
		for i := 0; i < lenA; i++ {
			m.Write8(arrayA+uint64(i), byte(i))
		}
		for k, s := range secret {
			m.Write8(arrayA+secretOff+uint64(k), s)
		}
		for i := 0; i < probeLines; i++ {
			m.Write8(probeArray+uint64(i*64), 1)
		}
	}
	mc := core.NewMulticore(core.Config{Variant: variant, Model: model},
		[]*isa.Program{victim, attacker}, init)
	if err := mc.Run(20_000_000); err != nil {
		return Outcome{}, fmt.Errorf("attack: cross-core: %w", err)
	}
	out := Outcome{Variant: variant, Model: model, Secret: secret,
		Stats: mc.Core(0).Stats()}
	out.Leaked = true
	for k := range secret {
		got := byte(mc.Memory().Read64(resultBase + uint64(k*8)))
		out.Recovered = append(out.Recovered, got)
		if got != secret[k] {
			out.Leaked = false
		}
	}
	return out, nil
}
