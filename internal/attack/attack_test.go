package attack

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

var testSecret = []byte{0x42, 0xA7, 0x13}

func TestSpectreV1LeaksOnUnsafe(t *testing.T) {
	for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		out, err := RunSpectreV1(core.Unsafe, model, testSecret)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Leaked {
			t.Fatalf("%v: attack failed on the insecure baseline: recovered %v, want %v",
				model, out.Recovered, out.Secret)
		}
	}
}

func TestSpectreV1BlockedByAllDefenses(t *testing.T) {
	variants := []core.Variant{
		core.STTLd, core.STTLdFp,
		core.StaticL1, core.StaticL2, core.StaticL3, core.Hybrid, core.Perfect,
	}
	for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		for _, v := range variants {
			out, err := RunSpectreV1(v, model, testSecret)
			if err != nil {
				t.Fatalf("%v/%v: %v", v, model, err)
			}
			if out.Leaked {
				t.Errorf("%v/%v: SECRET LEAKED: recovered %v", v, model, out.Recovered)
			}
			// Stronger check than "not all bytes": no byte should be
			// recovered (a uniform timing surface resolves to index 0, and
			// the secret contains no zero bytes).
			for k, got := range out.Recovered {
				if got == out.Secret[k] {
					t.Errorf("%v/%v: byte %d recovered exactly (%#x)", v, model, k, got)
				}
			}
		}
	}
}

func TestSpectreV1TransientExecutionHappens(t *testing.T) {
	// Sanity: the attack relies on real transient execution — the
	// mispredicted bounds check must actually squash each attack round.
	out, err := RunSpectreV1(core.Unsafe, pipeline.Spectre, testSecret)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.BranchMispredicts < uint64(len(testSecret)) {
		t.Fatalf("expected >= %d mispredicts, got %d", len(testSecret), out.Stats.BranchMispredicts)
	}
}

func TestSpectreV1SDORunsOblLds(t *testing.T) {
	// Under SDO the transient transmitter executes early as an Obl-Ld.
	out, err := RunSpectreV1(core.StaticL2, pipeline.Spectre, testSecret)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.OblIssued == 0 {
		t.Fatal("SDO run issued no Obl-Lds: the transmitter was not exercised")
	}
}

func TestFPChannelOpenOnUnsafe(t *testing.T) {
	sub := math.SmallestNonzeroFloat64 * 3
	normal := 1.5

	outSub, err := RunFPChannel(core.Unsafe, pipeline.Spectre, sub)
	if err != nil {
		t.Fatal(err)
	}
	outNorm, err := RunFPChannel(core.Unsafe, pipeline.Spectre, normal)
	if err != nil {
		t.Fatal(err)
	}
	// The transient multiply's resource usage depends on the secret.
	if outSub.SlowPathExecs == 0 {
		t.Error("unsafe: subnormal transient fmul should take the slow path")
	}
	if outNorm.SlowPathExecs != 0 {
		t.Error("unsafe: normal transient fmul should not take the slow path")
	}
}

func TestFPChannelClosedByDefenses(t *testing.T) {
	sub := math.SmallestNonzeroFloat64 * 3
	for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
		for _, v := range []core.Variant{core.STTLdFp, core.StaticL2, core.Hybrid, core.Perfect} {
			out, err := RunFPChannel(v, model, sub)
			if err != nil {
				t.Fatalf("%v/%v: %v", v, model, err)
			}
			if out.SlowPathExecs != 0 {
				t.Errorf("%v/%v: transient fmul executed on the operand-dependent slow path %d times",
					v, model, out.SlowPathExecs)
			}
		}
	}
}

func TestFPChannelSDOExecutesTransientFP(t *testing.T) {
	// SDO must close the channel by executing the FP op data-obliviously,
	// not by delaying it (that would be STT).
	sub := math.SmallestNonzeroFloat64 * 3
	out, err := RunFPChannel(core.StaticL2, pipeline.Spectre, sub)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.FPSDOIssued == 0 {
		t.Fatal("SDO should have issued the transient fmul as a DO operation")
	}
}

func TestCrossCoreLeaksOnUnsafe(t *testing.T) {
	out, err := RunCrossCore(core.Unsafe, pipeline.Spectre, testSecret)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked {
		t.Fatalf("cross-core attack failed on the insecure baseline: recovered %x, want %x",
			out.Recovered, out.Secret)
	}
}

func TestCrossCoreBlockedByDefenses(t *testing.T) {
	for _, v := range []core.Variant{core.STTLd, core.StaticL2, core.Hybrid} {
		out, err := RunCrossCore(v, pipeline.Spectre, testSecret[:2])
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		for k, got := range out.Recovered {
			if got == out.Secret[k] {
				t.Errorf("%v: byte %d recovered cross-core (%#x)", v, k, got)
			}
		}
	}
}
