package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

// Load-value injection (LVI): instead of steering a victim branch at an
// out-of-bounds index, the attacker injects a *value* into a victim
// load. Inside the transient window a store to the victim's pointer
// slot is in the store queue when the victim's load issues, so
// store-to-load forwarding hands the victim the attacker's pointer
// instead of the architectural one. The victim's own dereference +
// transmit gadget then reads the secret and leaves it in the oracle
// array, recovered with the same flush+reload cycle-probe scan as
// Spectre V1. The injecting store is squashed — architecturally nothing
// ever changed — but on an unprotected machine the cache footprint
// survives.
//
// The defenses block it at the same choke points: under STT the
// forwarded load is an access instruction whose output stays tainted,
// so the dependent dereference never executes early; under SDO it runs
// data-obliviously with no footprint; SafeSpec/SpecBox discard the
// shadow fills on squash.

// Memory layout of the LVI image (bound chain, oracle and results are
// shared with the Spectre V1 image).
const (
	lviSlotAddr   = 0xE000 // the victim's pointer slot (holds lviPubAddr)
	lviPubAddr    = 0xD000 // the public byte the slot legitimately points at
	lviSecretBase = 0xC000 // secret bytes (never architecturally read)
)

// Extra registers; everything else reuses the Spectre V1 assignments.
const (
	rSlot = isa.R12 // &slot (reuses rABase: this gadget has no array A)
	rInj  = isa.R31 // injected value: &secret[k] when attacking, &pub when training
)

// BuildLVI generates the load-value-injection program for the given
// secret. After a run, recovered byte k is at resultBase + 8k.
func BuildLVI(secret []byte) (*isa.Program, func(*isa.Memory)) {
	b := isa.NewBuilder()
	b.MovI(rZero, 0)
	b.MovI(rSix, 6)
	b.MovI(rNine, 9)
	b.MovI(rR256, probeLines)
	b.MovI(rBoundPtr, boundAddr)
	b.MovI(rBBase, probeArray)
	b.MovI(rSlot, lviSlotAddr)
	b.MovI(rResult, resultBase)
	b.MovI(rFifteen, lenA-1)
	b.MovI(rThree, 3)
	b.MovI(rAllOnes, -1)
	b.MovI(rK, 0)
	b.MovI(rNK, int64(len(secret)))

	b.Label("k_loop")

	// --- per-secret-byte: 8 training rounds + 1 injection round ---
	// The same branchless select as Spectre V1 keeps the branch-history
	// context identical across rounds; training rounds "inject" the
	// pointer the slot already holds, so their committed store is an
	// architectural no-op.
	b.MovI(rJ, 0)
	b.Label("j_loop")
	b.MovI(rI, 0)
	b.Label("flush_loop")
	b.Shl(rTmp, rI, rSix)
	b.Add(rTmp, rTmp, rBBase)
	b.Flush(rTmp, 0)
	b.AddI(rI, rI, 1)
	b.Blt(rI, rR256, "flush_loop")
	b.Flush(rBoundPtr, 0)
	b.Flush(rBoundPtr, 0x100)
	b.Flush(rBoundPtr, 0x200)
	b.Shr(rSel, rJ, rThree)     // 1 iff j == 8
	b.Sub(rMask, rZero, rSel)   // all-ones iff injecting
	b.AddI(rOOB, rK, secretOff) // out-of-bounds index, >= bound: mispredicts
	b.And(rOOB, rOOB, rMask)
	b.Xor(rSel, rMask, rAllOnes)
	b.And(rAddr, rJ, rFifteen) // in-bounds training index
	b.And(rAddr, rAddr, rSel)
	b.Or(rAddr, rAddr, rOOB)
	b.MovI(rTmp, lviSecretBase) // rInj = attacking ? &secret[k] : &pub
	b.Add(rOOB, rTmp, rK)
	b.And(rOOB, rOOB, rMask)
	b.MovI(rTmp, lviPubAddr)
	b.And(rTmp, rTmp, rSel)
	b.Or(rInj, rOOB, rTmp)

	// --- the victim gadget behind a slow bounds check ---
	// Serialise so the flushes have committed, then chase the flushed
	// three-hop bound chain: the check resolves only after ~3 DRAM
	// accesses, holding the transient window open.
	b.RdCyc(rSer)
	b.And(rSer, rSer, rZero)
	b.Add(rAddr, rAddr, rSer)
	b.Add(rTmp, rBoundPtr, rSer)
	b.Load(rBound, rTmp, 0)
	b.Load(rBound, rBound, 0)
	b.Load(rBound, rBound, 0)
	b.Bge(rAddr, rBound, "out") // mispredicted on the injection round
	b.Store(rInj, rSlot, 0)     // the injecting store (squashed when attacking)
	b.Load(rTmp, rSlot, 0)      // victim load: forwards the injected pointer
	b.LoadB(rSecret, rTmp, 0)   // victim dereference (reads the secret)
	b.Shl(rSecret, rSecret, rSix)
	b.Add(rTmp, rBBase, rSecret)
	b.Load(rProbe, rTmp, 0) // transmitter: oracle[secret*64]
	b.Label("out")
	b.AddI(rJ, rJ, 1)
	b.Blt(rJ, rNine, "j_loop")

	// --- flush+reload probe scan (identical to Spectre V1) ---
	b.MovI(rBest, 1<<30)
	b.MovI(rBestIdx, 0)
	b.MovI(rI, 0)
	b.Label("probe_loop")
	b.Shl(rTmp, rI, rSix)
	b.Add(rTmp, rTmp, rBBase)
	b.RdCyc(rT1)
	b.And(rSer, rT1, rZero)
	b.Add(rTmp, rTmp, rSer)
	b.Load(rProbe, rTmp, 0)
	b.RdCyc(rT2)
	b.Sub(rDT, rT2, rT1)
	b.Bge(rDT, rBest, "not_best")
	b.Add(rBest, rDT, rZero)
	b.Add(rBestIdx, rI, rZero)
	b.Label("not_best")
	b.AddI(rI, rI, 1)
	b.Blt(rI, rR256, "probe_loop")

	b.Shl(rTmp, rK, rThree)
	b.Add(rTmp, rTmp, rResult)
	b.Store(rBestIdx, rTmp, 0)
	b.AddI(rK, rK, 1)
	b.Blt(rK, rNK, "k_loop")
	b.Halt()

	prog := b.MustBuild()
	init := func(m *isa.Memory) {
		m.Write64(boundAddr, boundAddr+0x100)
		m.Write64(boundAddr+0x100, boundAddr+0x200)
		m.Write64(boundAddr+0x200, lenA)
		m.Write64(lviSlotAddr, lviPubAddr)
		m.Write8(lviPubAddr, 0) // the test secret has no zero bytes
		for k, s := range secret {
			m.Write8(lviSecretBase+uint64(k), s)
		}
		for i := 0; i < probeLines; i++ {
			m.Write8(probeArray+uint64(i*64), 1)
		}
	}
	return prog, init
}

// RunLVI runs the load-value-injection attack against one configuration
// and reports what the attacker recovered.
func RunLVI(variant core.Variant, model pipeline.AttackModel, secret []byte) (Outcome, error) {
	prog, init := BuildLVI(secret)
	m := core.NewMachine(core.Config{Variant: variant, Model: model}, prog, init)
	res, err := m.Run()
	if err != nil {
		return Outcome{}, fmt.Errorf("attack: lvi: %w", err)
	}
	if !res.Halted {
		return Outcome{}, fmt.Errorf("attack: lvi: program did not halt")
	}
	out := Outcome{Variant: variant, Model: model, Secret: secret, Stats: res.Stats}
	out.Leaked = true
	for k := range secret {
		got := byte(m.Memory().Read64(resultBase + uint64(k*8)))
		out.Recovered = append(out.Recovered, got)
		if got != secret[k] {
			out.Leaked = false
		}
	}
	return out, nil
}
