package attack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// TestAttackDefenseMatrix runs the full attack × defense grid over every
// registered protection scheme: Spectre V1 (same thread), the cross-core
// flush+reload, and load-value injection against all of them. Unsafe
// must leak the secret exactly (the attacks are real); every defense —
// STT, the SDO rows, SafeSpec and SpecBox — must leave a
// secret-independent timing surface. New RegisterScheme additions are
// pulled in automatically.
func TestAttackDefenseMatrix(t *testing.T) {
	secret := testSecret[:2]
	for _, v := range core.Registered() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			same, err := RunSpectreV1(v, pipeline.Spectre, secret)
			if err != nil {
				t.Fatalf("spectre-v1: %v", err)
			}
			cross, err := RunCrossCore(v, pipeline.Spectre, secret)
			if err != nil {
				t.Fatalf("cross-core: %v", err)
			}
			lvi, err := RunLVI(v, pipeline.Spectre, secret)
			if err != nil {
				t.Fatalf("lvi: %v", err)
			}
			outcomes := map[string]Outcome{"spectre-v1": same, "cross-core": cross, "lvi": lvi}
			if v == core.Unsafe {
				for name, out := range outcomes {
					if !out.Leaked {
						t.Errorf("%s: insecure baseline failed to leak: recovered %x, want %x",
							name, out.Recovered, out.Secret)
					}
				}
				return
			}
			for name, out := range outcomes {
				// No byte may be recovered even by chance: a uniform timing
				// surface resolves to index 0 and the secret has no zero bytes.
				for k, got := range out.Recovered {
					if got == out.Secret[k] {
						t.Errorf("%s: byte %d recovered exactly (%#x)", name, k, got)
					}
				}
			}
		})
	}
}

// TestShadowSchemesExerciseShadow pins down *why* SafeSpec and SpecBox
// block: the transient transmitter really executes (unlike STT, which
// delays it) and really fills the shadow, and the squash really discards
// those fills.
func TestShadowSchemesExerciseShadow(t *testing.T) {
	for _, v := range []core.Variant{core.SafeSpec, core.SpecBox} {
		out, err := RunSpectreV1(v, pipeline.Spectre, testSecret)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if out.Stats.BranchMispredicts < uint64(len(testSecret)) {
			t.Errorf("%v: no transient execution (%d mispredicts)", v, out.Stats.BranchMispredicts)
		}
		if out.Stats.DelayedLoads != 0 {
			t.Errorf("%v: delayed %d loads; shadow schemes must execute speculative loads immediately",
				v, out.Stats.DelayedLoads)
		}
	}
}
