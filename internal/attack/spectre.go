// Package attack implements the paper's §VIII-A penetration test: a
// complete Spectre V1 attack (Figure 1) that runs *inside* the simulator.
// The attacker and victim share a program (the SameThread model): the
// attacker trains the bounds-check branch, flushes the probe array and the
// bound, triggers a transient out-of-bounds access whose value indexes a
// cache-line-granular probe array, and then recovers the secret with a
// flush+reload timing scan using the serialising cycle counter.
//
// On the Unsafe machine the attack recovers the secret bytes exactly. On
// STT the transmitter never executes while tainted; on STT+SDO it executes
// as an Obl-Ld that leaves no cache footprint. Either way the probe scan
// sees a uniform (secret-independent) timing surface.
package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

// Memory layout of the attack image.
const (
	boundAddr  = 0x9000   // the bounds variable (value: len(A))
	arrayA     = 0xA000   // the victim array A
	lenA       = 16       //
	secretOff  = 64       // secret bytes live at A+secretOff (out of bounds)
	probeArray = 0xB_0000 // B: 256 cache lines, one per byte value
	resultBase = 0xF_0000 // recovered bytes, one 64-bit word each
	probeLines = 256
)

// Registers used by the generated attack program.
const (
	rAddr     = isa.R1  // gadget input: index into A
	rBound    = isa.R2  // loaded bound
	rSecret   = isa.R3  // transiently loaded byte
	rProbe    = isa.R4  // transmitter result
	rZero     = isa.R5  // constant 0
	rSix      = isa.R6  // constant 6 (shift to line granularity)
	rJ        = isa.R7  // training-loop counter
	rEight    = isa.R8  // constant 8
	rSer      = isa.R9  // serialisation scratch
	rBoundPtr = isa.R10 // &bound
	rBBase    = isa.R11 // &B
	rABase    = isa.R12 // &A
	rI        = isa.R13 // probe counter
	rT1       = isa.R14
	rT2       = isa.R15
	rDT       = isa.R16
	rBest     = isa.R17 // best (lowest) probe latency
	rBestIdx  = isa.R18 // its index = recovered byte
	rK        = isa.R19 // secret byte index
	rNK       = isa.R20 // number of secret bytes
	rTmp      = isa.R21
	rNine     = isa.R22
	rR256     = isa.R23
	rResult   = isa.R24
	rFifteen  = isa.R25
	rThree    = isa.R26
	rAllOnes  = isa.R27
	rMask     = isa.R28 // all-ones on the attack round, zero when training
	rSel      = isa.R29
	rOOB      = isa.R30
)

// BuildSpectreV1 generates the attack program for the given secret. The
// returned init function installs the victim data (bound, A, secret) into
// memory. After a run, recovered byte k is at resultBase + 8k.
func BuildSpectreV1(secret []byte) (*isa.Program, func(*isa.Memory)) {
	b := isa.NewBuilder()
	b.MovI(rZero, 0)
	b.MovI(rSix, 6)
	b.MovI(rEight, 8)
	b.MovI(rNine, 9)
	b.MovI(rR256, probeLines)
	b.MovI(rBoundPtr, boundAddr)
	b.MovI(rBBase, probeArray)
	b.MovI(rABase, arrayA)
	b.MovI(rResult, resultBase)
	b.MovI(rFifteen, lenA-1)
	b.MovI(rThree, 3)
	b.MovI(rAllOnes, -1)
	b.MovI(rK, 0)
	b.MovI(rNK, int64(len(secret)))

	b.Label("k_loop")

	// --- per-secret-byte: 8 training calls + 1 attack call, same PC ---
	// Every round runs the same flush phase, so the branch-history context
	// reaching the gadget is identical when training and when attacking —
	// otherwise the attack round's context would stay trained "taken" from
	// the previous secret byte and the bounds check would stop
	// mispredicting.
	b.MovI(rJ, 0)
	b.Label("j_loop")
	b.MovI(rI, 0)
	b.Label("flush_loop")
	b.Shl(rTmp, rI, rSix)
	b.Add(rTmp, rTmp, rBBase)
	b.Flush(rTmp, 0)
	b.AddI(rI, rI, 1)
	b.Blt(rI, rR256, "flush_loop")
	b.Flush(rBoundPtr, 0)
	b.Flush(rBoundPtr, 0x100)
	b.Flush(rBoundPtr, 0x200)
	// Branchless round-address select: rounds 0..7 train with j&15, round
	// 8 attacks with 64+k. Using arithmetic instead of a branch keeps the
	// branch-history context reaching the gadget identical in training and
	// attack rounds, so the mistraining actually lands.
	b.Shr(rSel, rJ, rThree)      // 1 iff j == 8
	b.Sub(rMask, rZero, rSel)    // all-ones iff attacking
	b.AddI(rOOB, rK, secretOff)  // out-of-bounds index: A[64+k] = secret[k]
	b.And(rOOB, rOOB, rMask)     //
	b.Xor(rSel, rMask, rAllOnes) // ^mask
	b.And(rAddr, rJ, rFifteen)   // in-bounds training index
	b.And(rAddr, rAddr, rSel)    //
	b.Or(rAddr, rAddr, rOOB)     //

	// --- the victim gadget (one static location, so the branch trains) ---
	// Serialise: rdcyc issues only at the head of the ROB, so every older
	// flush has committed; the gadget's inputs data-depend on it so the
	// bound load cannot hoist above the flushes.
	b.RdCyc(rSer)
	b.And(rSer, rSer, rZero)
	b.Add(rAddr, rAddr, rSer)
	b.Add(rTmp, rBoundPtr, rSer)
	// The bound sits behind a three-hop pointer chase; with the chain
	// flushed, the bounds check resolves only after ~3 DRAM accesses,
	// keeping the transient window comfortably longer than the secret
	// access + transmit chain (as a victim with a deep dependence chain
	// before the check would).
	b.Load(rBound, rTmp, 0)       // hop 1
	b.Load(rBound, rBound, 0)     // hop 2
	b.Load(rBound, rBound, 0)     // the bound itself
	b.Bge(rAddr, rBound, "out")   // the mispredicted bounds check
	b.Add(rTmp, rABase, rAddr)    //
	b.LoadB(rSecret, rTmp, 0)     // access instruction (reads the secret)
	b.Shl(rSecret, rSecret, rSix) //
	b.Add(rTmp, rBBase, rSecret)  //
	b.Load(rProbe, rTmp, 0)       // transmitter: B[secret*64]
	b.Label("out")
	b.AddI(rJ, rJ, 1)
	b.Blt(rJ, rNine, "j_loop")

	// --- flush+reload probe scan ---
	b.MovI(rBest, 1<<30)
	b.MovI(rBestIdx, 0)
	b.MovI(rI, 0)
	b.Label("probe_loop")
	b.Shl(rTmp, rI, rSix)
	b.Add(rTmp, rTmp, rBBase)
	b.RdCyc(rT1)
	// The probed address data-depends on t1 (which is serialising), so the
	// load cannot run ahead of its timing bracket — the in-simulator
	// equivalent of the lfence a real flush+reload attack needs.
	b.And(rSer, rT1, rZero)
	b.Add(rTmp, rTmp, rSer)
	b.Load(rProbe, rTmp, 0)
	b.RdCyc(rT2)
	b.Sub(rDT, rT2, rT1)
	b.Bge(rDT, rBest, "not_best")
	b.Add(rBest, rDT, rZero)
	b.Add(rBestIdx, rI, rZero)
	b.Label("not_best")
	b.AddI(rI, rI, 1)
	b.Blt(rI, rR256, "probe_loop")

	// Record the recovered byte and advance to the next one.
	b.Shl(rTmp, rK, rThree)
	b.Add(rTmp, rTmp, rResult)
	b.Store(rBestIdx, rTmp, 0)
	b.AddI(rK, rK, 1)
	b.Blt(rK, rNK, "k_loop")
	b.Halt()

	prog := b.MustBuild()
	init := func(m *isa.Memory) {
		m.Write64(boundAddr, boundAddr+0x100)
		m.Write64(boundAddr+0x100, boundAddr+0x200)
		m.Write64(boundAddr+0x200, lenA)
		for i := 0; i < lenA; i++ {
			m.Write8(arrayA+uint64(i), byte(i))
		}
		for k, s := range secret {
			m.Write8(arrayA+secretOff+uint64(k), s)
		}
		// Touch the probe array so its pages exist (values irrelevant).
		for i := 0; i < probeLines; i++ {
			m.Write8(probeArray+uint64(i*64), 1)
		}
	}
	return prog, init
}

// Outcome reports one penetration-test run.
type Outcome struct {
	Variant   core.Variant
	Model     pipeline.AttackModel
	Secret    []byte
	Recovered []byte
	// Leaked is true when every byte was recovered exactly.
	Leaked bool
	Stats  pipeline.Stats
}

// RunSpectreV1 runs the attack against one configuration and reports what
// the attacker recovered.
func RunSpectreV1(variant core.Variant, model pipeline.AttackModel, secret []byte) (Outcome, error) {
	prog, init := BuildSpectreV1(secret)
	m := core.NewMachine(core.Config{Variant: variant, Model: model}, prog, init)
	res, err := m.Run()
	if err != nil {
		return Outcome{}, fmt.Errorf("attack: %w", err)
	}
	if !res.Halted {
		return Outcome{}, fmt.Errorf("attack: program did not halt")
	}
	out := Outcome{Variant: variant, Model: model, Secret: secret, Stats: res.Stats}
	out.Leaked = true
	for k := range secret {
		got := byte(m.Memory().Read64(resultBase + uint64(k*8)))
		out.Recovered = append(out.Recovered, got)
		if got != secret[k] {
			out.Leaked = false
		}
	}
	return out, nil
}
