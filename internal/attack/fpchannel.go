package attack

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

// FP-channel image layout.
const (
	fpChainBase  = 0x2_0000 // two-hop pointer chain delaying the guard
	fpSecretAddr = 0x3_0000 // the speculatively-accessed float64
)

// BuildFPChannel builds the floating-point variant of the attack (§I-A):
// a doomed-to-squash fmul consumes a speculatively-accessed float64. If
// the machine lets the transient multiply run on its operand-dependent
// slow path, the hardware resource usage depends on whether the secret is
// subnormal — precisely the channel STT{ld+fp} and SDO close. The leak is
// observed via Stats.FPSlowPathExecs (the resource-usage ground truth).
func BuildFPChannel(secret float64) (*isa.Program, func(*isa.Memory)) {
	b := isa.NewBuilder()
	b.MovI(isa.R10, fpChainBase)
	b.MovI(isa.R11, fpSecretAddr)
	b.MovI(isa.R12, 64) // out-of-bounds index (any value >= the loaded bound)
	// Guard value arrives after a two-hop cold pointer chase (~2x DRAM),
	// keeping the transient window comfortably longer than the secret load.
	b.Load(isa.R1, isa.R10, 0) // first hop
	b.Load(isa.R2, isa.R1, 0)  // second hop: the bound
	b.Bge(isa.R12, isa.R2, "out").
		// Transient path: load the secret float and multiply it.
		Load(isa.R3, isa.R11, 0).
		FMul(isa.R4, isa.R3, isa.R3).
		FMul(isa.R5, isa.R4, isa.R3)
	b.Label("out")
	b.Halt()
	prog := b.MustBuild()
	init := func(m *isa.Memory) {
		m.Write64(fpChainBase, fpChainBase+0x4000)
		m.Write64(fpChainBase+0x4000, 16) // bound: 64 >= 16 => branch taken
		m.Write64(fpSecretAddr, math.Float64bits(secret))
	}
	return prog, init
}

// FPOutcome reports one FP-channel run.
type FPOutcome struct {
	Variant core.Variant
	Model   pipeline.AttackModel
	// SlowPathExecs counts transient operand-dependent slow-path FP
	// executions: non-zero means the channel is open.
	SlowPathExecs uint64
	Stats         pipeline.Stats
}

// RunFPChannel runs the transient-FP experiment for one configuration.
func RunFPChannel(variant core.Variant, model pipeline.AttackModel, secret float64) (FPOutcome, error) {
	prog, init := BuildFPChannel(secret)
	m := core.NewMachine(core.Config{Variant: variant, Model: model}, prog, init)
	res, err := m.Run()
	if err != nil {
		return FPOutcome{}, fmt.Errorf("attack: %w", err)
	}
	if !res.Halted {
		return FPOutcome{}, fmt.Errorf("attack: FP-channel program did not halt")
	}
	return FPOutcome{
		Variant:       variant,
		Model:         model,
		SlowPathExecs: res.FPSlowPathExecs,
		Stats:         res.Stats,
	}, nil
}
