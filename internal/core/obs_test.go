package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// TestMachineChromeTraceIsValidJSON runs a whole machine with the Chrome
// trace sink attached and checks the output is a well-formed trace-event
// document of the shape Perfetto / chrome://tracing load.
func TestMachineChromeTraceIsValidJSON(t *testing.T) {
	prog, init := testProgram()
	m := NewMachine(Config{Variant: Hybrid, Model: pipeline.Futuristic}, prog, init)
	var buf bytes.Buffer
	rec := obs.NewRecorder(obs.ClassAll, obs.NewChromeSink(&buf))
	m.SetObserver(rec)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Cat   string `json:"cat"`
			Phase string `json:"ph"`
			TS    uint64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace is empty for a full-class run")
	}
	cats := map[string]bool{}
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Cat == "" {
			t.Fatalf("event %d lacks name/cat: %+v", i, e)
		}
		if e.Phase != "X" && e.Phase != "i" {
			t.Fatalf("event %d: phase %q, want X or i", i, e.Phase)
		}
		cats[e.Cat] = true
	}
	// A Hybrid run commits, issues loads and touches the caches at least.
	for _, want := range []string{"commit", "issue", "cache"} {
		if !cats[want] {
			t.Errorf("no %q events in machine-level trace (got %v)", want, cats)
		}
	}
}

// TestMachineJSONLTraceParses: every line of a machine-level JSONL trace
// is one valid JSON event.
func TestMachineJSONLTraceParses(t *testing.T) {
	prog, init := testProgram()
	m := NewMachine(Config{Variant: Hybrid, Model: pipeline.Spectre}, prog, init)
	var buf bytes.Buffer
	rec := obs.NewRecorder(obs.ClassSDO|obs.ClassSquash, obs.NewJSONLSink(&buf))
	m.SetObserver(rec)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var e struct {
			Class string `json:"class"`
			Kind  string `json:"kind"`
			Cycle uint64 `json:"cycle"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v\n%s", lines, err, sc.Text())
		}
		if e.Class != "sdo" && e.Class != "squash" {
			t.Fatalf("line %d: class %q leaked through an sdo,squash mask", lines, e.Class)
		}
	}
	if lines == 0 {
		t.Fatal("no SDO/squash events from a Hybrid run")
	}
}

// TestTracedRunEquivalence: attaching an observer must not perturb the
// simulation — a traced run and an untraced run of the same machine
// produce bit-identical Results. This is what licenses the traced copy of
// the memory walk (mem.walkTraced) existing at all: any drift between the
// instrumented and pristine bodies shows up here as a counter diff.
func TestTracedRunEquivalence(t *testing.T) {
	prog, init := testProgram()
	for _, v := range []Variant{Unsafe, STTLdFp, Hybrid} {
		cfg := Config{Variant: v, Model: pipeline.Futuristic, WarmupInstrs: 200, IntervalCycles: 128}

		plain := NewMachine(cfg, prog, init)
		want, err := plain.Run()
		if err != nil {
			t.Fatal(err)
		}

		traced := NewMachine(cfg, prog, init)
		traced.SetObserver(obs.NewRecorder(obs.ClassAll, obs.NewRingSink(32)))
		got, err := traced.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: tracing perturbed the run:\n traced:   %+v\n untraced: %+v", v, got, want)
		}
		if traced.Regs() != plain.Regs() {
			t.Errorf("%v: tracing perturbed architectural state", v)
		}
	}
}

// TestMachineObserverMaskAndRing: the class mask filters at the machine
// level, and the ring sink keeps the most recent events for postmortems.
func TestMachineObserverMaskAndRing(t *testing.T) {
	prog, init := testProgram()
	m := NewMachine(Config{Variant: Unsafe, Model: pipeline.Spectre}, prog, init)
	ring := obs.NewRingSink(16)
	m.SetObserver(obs.NewRecorder(obs.ClassCommit, ring))
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	if len(evs) != 16 {
		t.Fatalf("ring holds %d events, want 16 (committed %d)", len(evs), res.Committed)
	}
	for i, e := range evs {
		if e.ClassName() != "commit" {
			t.Fatalf("event %d: class %q leaked through a commit-only mask", i, e.ClassName())
		}
		if i > 0 && e.Cycle < evs[i-1].Cycle {
			t.Fatalf("ring events out of order: %d after %d", e.Cycle, evs[i-1].Cycle)
		}
	}
}
