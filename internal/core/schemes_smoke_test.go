package core

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workload"
)

func TestShadowSchemesRunSmoke(t *testing.T) {
	w, err := workload.ByName("mcf_r")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{SafeSpec, SpecBox} {
		for _, m := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
			prog, init := w.Build()
			mach := NewMachine(Config{Variant: v, Model: m, WarmupInstrs: 1000, MaxInstrs: 3000}, prog, init)
			r, err := mach.Run()
			if err != nil {
				t.Fatalf("%v/%v: %v", v, m, err)
			}
			if r.Committed == 0 || r.Cycles == 0 {
				t.Fatalf("%v/%v: empty result %+v", v, m, r)
			}
			h := mach.Hierarchy()
			if h.SpecLoads == 0 {
				t.Errorf("%v/%v: no loads took the shadow path", v, m)
			}
			if h.SpecCommits == 0 {
				t.Errorf("%v/%v: no shadow fills promoted at commit", v, m)
			}
			t.Logf("%v/%v: cycles=%d committed=%d specLoads=%d hits=%d commits=%d discards=%d evict=%d tlbwalks=%d",
				v, m, r.Cycles, r.Committed, h.SpecLoads, h.SpecShadowHits, h.SpecCommits, h.SpecDiscards, h.SpecEvictions, h.SpecTLBWalks)
		}
	}
}
