package core

import (
	"reflect"
	"testing"

	"repro/internal/pipeline"
)

// TestIntervalSeriesPartition: the interval time series must partition the
// measurement window exactly — cycle stamps strictly increase, and summing
// the per-interval counters reproduces the run-level Result. This is the
// invariant that lets figures built from the series agree with the tables
// built from the totals.
func TestIntervalSeriesPartition(t *testing.T) {
	prog, init := testProgram()
	m := NewMachine(Config{
		Variant: Hybrid, Model: pipeline.Futuristic,
		WarmupInstrs: 100, IntervalCycles: 64,
	}, prog, init)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IntervalCycles != 64 {
		t.Fatalf("Result.IntervalCycles = %d, want 64", res.IntervalCycles)
	}
	if len(res.Intervals) < 2 {
		t.Fatalf("only %d interval samples for a %d-cycle window", len(res.Intervals), res.Cycles)
	}

	var cycles, committed, squashes, oblIssued, oblSuccess, oblFail, l1dMisses uint64
	prev := uint64(0)
	for i, p := range res.Intervals {
		if p.Cycle <= prev {
			t.Fatalf("interval %d: cycle stamp %d not after %d", i, p.Cycle, prev)
		}
		prev = p.Cycle
		if p.Cycles == 0 {
			t.Fatalf("interval %d: zero-length interval emitted", i)
		}
		if i < len(res.Intervals)-1 && p.Cycles != 64 {
			t.Fatalf("interval %d: length %d, want 64 (only the trailing interval may be partial)", i, p.Cycles)
		}
		if want := float64(p.Committed) / float64(p.Cycles); p.IPC != want {
			t.Fatalf("interval %d: IPC %g inconsistent with committed/cycles %g", i, p.IPC, want)
		}
		cycles += p.Cycles
		committed += p.Committed
		squashes += p.Squashes
		oblIssued += p.OblIssued
		oblSuccess += p.OblSuccess
		oblFail += p.OblFail
		l1dMisses += p.L1DMisses
	}
	if cycles != res.Cycles {
		t.Errorf("sum of interval cycles = %d, want measured window %d", cycles, res.Cycles)
	}
	if committed != res.Committed {
		t.Errorf("sum of interval committed = %d, want %d", committed, res.Committed)
	}
	if squashes != res.TotalSquashes() {
		t.Errorf("sum of interval squashes = %d, want %d", squashes, res.TotalSquashes())
	}
	if oblIssued != res.OblIssued || oblSuccess != res.OblSuccess || oblFail != res.OblFail {
		t.Errorf("interval Obl sums = %d/%d/%d, want %d/%d/%d",
			oblIssued, oblSuccess, oblFail, res.OblIssued, res.OblSuccess, res.OblFail)
	}
	// Result.L1DMisses includes warmup; the series covers only the window.
	if l1dMisses > res.L1DMisses {
		t.Errorf("interval L1D misses %d exceed run total %d", l1dMisses, res.L1DMisses)
	}

	// Occupancy histograms: one increment per measured cycle.
	if len(res.ROBOccHist) != pipeline.OccupancyBuckets || len(res.LQOccHist) != pipeline.OccupancyBuckets {
		t.Fatalf("histogram lengths %d/%d, want %d", len(res.ROBOccHist), len(res.LQOccHist), pipeline.OccupancyBuckets)
	}
	var robN, lqN uint64
	for i := range res.ROBOccHist {
		robN += res.ROBOccHist[i]
		lqN += res.LQOccHist[i]
	}
	if robN != res.Cycles || lqN != res.Cycles {
		t.Errorf("histogram totals %d/%d, want one sample per measured cycle (%d)", robN, lqN, res.Cycles)
	}
}

// TestIntervalDeltasSumToStats drives pipeline interval sampling directly
// (no warmup, so the series starts at cycle 0) and checks — field by
// field, via reflection — that adding up every sample's Delta reproduces
// the final cumulative Stats. Together with the Stats.Sub reflection test
// this pins the partition invariant for every present and future counter.
func TestIntervalDeltasSumToStats(t *testing.T) {
	prog, init := testProgram()
	m := NewMachine(Config{Variant: Hybrid, Model: pipeline.Spectre}, prog, init)
	c := m.Core()

	var sum pipeline.Stats
	n := 0
	c.EnableIntervalSampling(32, func(s pipeline.IntervalSample) {
		n++
		sv := reflect.ValueOf(&sum).Elem()
		dv := reflect.ValueOf(s.Delta)
		for i := 0; i < sv.NumField(); i++ {
			switch sv.Field(i).Kind() {
			case reflect.Uint64:
				sv.Field(i).SetUint(sv.Field(i).Uint() + dv.Field(i).Uint())
			case reflect.Array:
				for j := 0; j < sv.Field(i).Len(); j++ {
					sv.Field(i).Index(j).SetUint(sv.Field(i).Index(j).Uint() + dv.Field(i).Index(j).Uint())
				}
			case reflect.Bool:
				sv.Field(i).SetBool(dv.Field(i).Bool())
			}
		}
	})
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	c.FlushInterval()
	if n < 2 {
		t.Fatalf("only %d interval samples", n)
	}
	if !reflect.DeepEqual(sum, st) {
		t.Errorf("interval deltas do not sum to the cumulative Stats:\n sum:   %+v\n stats: %+v", sum, st)
	}
}

// TestIntervalDisabled: without IntervalCycles the Result carries no
// series and no histograms (and pays no sampling cost).
func TestIntervalDisabled(t *testing.T) {
	prog, init := testProgram()
	m := NewMachine(Config{Variant: Hybrid, Model: pipeline.Spectre}, prog, init)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IntervalCycles != 0 || res.Intervals != nil || res.ROBOccHist != nil || res.LQOccHist != nil {
		t.Fatalf("disabled sampling still produced series: %+v", res)
	}
}
