package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestRestoreEquivalence asserts the checkpoint soundness contract:
// capturing functional warmup once and restoring it into a fresh machine
// yields bit-identical results to performing the functional warmup in
// place — for every variant and attack model sharing the checkpoint.
func TestRestoreEquivalence(t *testing.T) {
	wl, err := workload.ByName("mcf_r")
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		WarmupInstrs: 10_000,
		WarmupMode:   WarmupFunctional,
		MaxInstrs:    5_000,
	}
	prog, init := wl.Build()
	ck := CaptureCheckpoint(base, prog, init)
	if ck.Arch.Instrs != base.WarmupInstrs {
		t.Fatalf("checkpoint executed %d warmup instructions, want exactly %d",
			ck.Arch.Instrs, base.WarmupInstrs)
	}

	// Round-trip the checkpoint through its serialized form so the restore
	// path under test is the one a persisted checkpoint would take.
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	ck, err = arch.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}

	for _, v := range []Variant{Unsafe, STTLd, Hybrid, Perfect} {
		for _, m := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
			cfg := base
			cfg.Variant, cfg.Model = v, m

			inPlace := NewMachine(cfg, prog, init)
			want, err := inPlace.Run()
			if err != nil {
				t.Fatalf("%v/%v in-place: %v", v, m, err)
			}

			restored := NewMachine(cfg, prog, init)
			if err := restored.Restore(ck); err != nil {
				t.Fatalf("%v/%v restore: %v", v, m, err)
			}
			got, err := restored.Run()
			if err != nil {
				t.Fatalf("%v/%v restored run: %v", v, m, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%v/%v: restored result differs from in-place warmup:\nwant %+v\ngot  %+v", v, m, want, got)
			}
		}
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	wl, err := workload.ByName("xz_r")
	if err != nil {
		t.Fatal(err)
	}
	prog, init := wl.Build()
	ck := CaptureCheckpoint(Config{WarmupInstrs: 1000}, prog, init)

	detailed := NewMachine(Config{WarmupInstrs: 1000, MaxInstrs: 100}, prog, init)
	if err := detailed.Restore(ck); err == nil {
		t.Error("Restore accepted a detailed-warmup machine")
	}
	wrongBudget := NewMachine(Config{WarmupInstrs: 2000, WarmupMode: WarmupFunctional, MaxInstrs: 100}, prog, init)
	if err := wrongBudget.Restore(ck); err == nil {
		t.Error("Restore accepted a mismatched warmup budget")
	}
}

// TestFunctionalWarmupExactWindow asserts the handoff is exact: with
// functional warmup the detailed pipeline's budget is the measurement
// window alone, so it commits at least MaxInstrs (detailed warmup can
// eat up to commit-width instructions out of the window).
func TestFunctionalWarmupExactWindow(t *testing.T) {
	wl, err := workload.ByName("deepsjeng_r")
	if err != nil {
		t.Fatal(err)
	}
	prog, init := wl.Build()
	cfg := Config{
		Variant:      Hybrid,
		WarmupInstrs: 20_000,
		WarmupMode:   WarmupFunctional,
		MaxInstrs:    8_000,
	}
	m := NewMachine(cfg, prog, init)
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed < cfg.MaxInstrs {
		t.Fatalf("measurement window committed %d < budget %d", r.Committed, cfg.MaxInstrs)
	}
}
