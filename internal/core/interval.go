// Interval time-series: with Config.IntervalCycles > 0 the machine
// snapshots the pipeline and memory-system counters every K cycles of the
// measurement window (warmup excluded) and derives the per-interval rates
// the paper's figures are built from. The interval deltas partition the
// window exactly — summing the raw counters across points reproduces the
// run-level Result (tested in interval_test.go).
package core

import (
	"repro/internal/mem"
	"repro/internal/pipeline"
)

// IntervalPoint is one interval of a run's time series. Counter fields
// are per-interval deltas; rate fields are derived from them.
type IntervalPoint struct {
	// Cycle is the measurement-window cycle at the end of the interval
	// (monotonically increasing across points).
	Cycle uint64 `json:"cycle"`
	// Cycles is the interval length (== IntervalCycles except for the
	// trailing partial interval).
	Cycles    uint64  `json:"cycles"`
	Committed uint64  `json:"committed"`
	IPC       float64 `json:"ipc"`

	// Squash activity.
	Squashes       uint64  `json:"squashes"`
	SquashedInstrs uint64  `json:"squashed_instrs"`
	SquashPKI      float64 `json:"squash_pki"` // squashes per kilo-instruction

	// Protection-induced stalls.
	TaintStallCycles      uint64 `json:"taint_stall_cycles"` // load + FP transmitter delay
	ValidationStallCycles uint64 `json:"validation_stall_cycles"`

	// SDO Obl-Ld activity.
	OblIssued  uint64 `json:"obl_issued"`
	OblSuccess uint64 `json:"obl_success"`
	OblFail    uint64 `json:"obl_fail"`

	// Cache misses per kilo-instruction, from the per-interval miss deltas.
	L1DMisses uint64  `json:"l1d_misses"`
	L2Misses  uint64  `json:"l2_misses"`
	LLCMisses uint64  `json:"llc_misses"`
	L1DMPKI   float64 `json:"l1d_mpki"`
	L2MPKI    float64 `json:"l2_mpki"`
	LLCMPKI   float64 `json:"llc_mpki"`

	// Mean ROB / load-queue occupancy over the interval.
	AvgROBOcc float64 `json:"avg_rob_occ"`
	AvgLQOcc  float64 `json:"avg_lq_occ"`
}

// perKilo returns n per 1000 committed instructions.
func perKilo(n, committed uint64) float64 {
	if committed == 0 {
		return 0
	}
	return float64(n) * 1000 / float64(committed)
}

// intervalCollector turns pipeline.IntervalSample deltas plus
// memory-hierarchy counter deltas into IntervalPoints.
type intervalCollector struct {
	hier *mem.Hierarchy
	// Previous-boundary memory counters (cumulative).
	l1dMisses, l2Misses, llcMisses uint64
	points                         []IntervalPoint
}

func newIntervalCollector(h *mem.Hierarchy) *intervalCollector {
	ic := &intervalCollector{hier: h}
	ic.l1dMisses, ic.l2Misses, ic.llcMisses = ic.memMisses()
	return ic
}

func (ic *intervalCollector) memMisses() (l1d, l2, llc uint64) {
	_, llc = ic.hier.Shared().LLCStats()
	return ic.hier.L1D().Misses, ic.hier.L2().Misses, llc
}

// collect is the pipeline's interval callback: it runs synchronously at
// each interval boundary, so the memory counters it reads are exactly the
// boundary values.
func (ic *intervalCollector) collect(s pipeline.IntervalSample) {
	l1d, l2, llc := ic.memMisses()
	d := s.Delta
	p := IntervalPoint{
		Cycle:     s.Cycle,
		Cycles:    d.Cycles,
		Committed: d.Committed,
		IPC:       d.IPC(),

		Squashes:       d.TotalSquashes(),
		SquashedInstrs: d.SquashedInstrs,
		SquashPKI:      perKilo(d.TotalSquashes(), d.Committed),

		TaintStallCycles:      d.LoadDelayCycles + d.FPDelayCycles,
		ValidationStallCycles: d.ValidationStall,

		OblIssued:  d.OblIssued,
		OblSuccess: d.OblSuccess,
		OblFail:    d.OblFail,

		L1DMisses: l1d - ic.l1dMisses,
		L2Misses:  l2 - ic.l2Misses,
		LLCMisses: llc - ic.llcMisses,

		AvgROBOcc: s.AvgROBOcc,
		AvgLQOcc:  s.AvgLQOcc,
	}
	p.L1DMPKI = perKilo(p.L1DMisses, d.Committed)
	p.L2MPKI = perKilo(p.L2Misses, d.Committed)
	p.LLCMPKI = perKilo(p.LLCMisses, d.Committed)
	ic.l1dMisses, ic.l2Misses, ic.llcMisses = l1d, l2, llc
	ic.points = append(ic.points, p)
}
